// Package dsp is the public API of the DSP reproduction: efficient
// sampling-based GNN training with multiple (simulated) GPUs, after
// "DSP: Efficient GNN Training with Multiple GPUs" (PPoPP 2023).
//
// A typical session:
//
//	ds := dsp.Standard("products", 4)         // scaled stand-in dataset
//	data := dsp.Prepare(ds.Dataset(), 4, 1)    // partition for 4 GPUs
//	sys, err := dsp.New(dsp.Options{
//	        Data:        data,
//	        RealCompute: true,
//	        Pipeline:    true,
//	        UseCCC:      true,
//	})
//	stats, err := sys.RunEpoch(0)
//	acc := dsp.Evaluate(data, sys.Model(), sys.Opts.Sample, 1000, 7)
//
// The package wraps the internal building blocks — the DES hardware model
// (internal/hw, internal/sim), the collective sampling primitive
// (internal/csp), the partitioned data layout (internal/partition,
// internal/featstore), the training pipeline (internal/pipeline) and the
// baseline systems (internal/baselines) — behind a small, stable surface.
package dsp

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/serve"
	"repro/internal/train"
)

// Core data types, re-exported from the internal packages.
type (
	// Graph is a CSR adjacency structure (in-neighbour lists).
	Graph = graph.CSR
	// NodeID is a graph node identifier.
	NodeID = graph.NodeID
	// Dataset is a generated graph with features, labels and splits.
	Dataset = gen.Dataset
	// DatasetConfig controls synthetic dataset generation.
	DatasetConfig = gen.Config
	// Data is a dataset prepared (partitioned + renumbered) for n GPUs.
	Data = train.Data
	// Options configures a training system.
	Options = train.Options
	// EpochStats reports one epoch's timing, accuracy and traffic.
	EpochStats = train.EpochStats
	// System is a runnable GNN training system (DSP or a baseline).
	System = train.System
	// SampleConfig selects the graph-sampling scheme (paper Table 2).
	SampleConfig = sample.Config
	// ModelConfig selects the GNN architecture and sizes.
	ModelConfig = nn.Config
	// MiniBatch is a multi-layer graph sample.
	MiniBatch = sample.MiniBatch
	// Model is a GNN with manual backpropagation.
	Model = nn.Model
	// Trainer is the DSP system type returned by New.
	Trainer = core.DSP
)

// Model architectures.
const (
	GraphSAGE = nn.SAGE
	GCN       = nn.GCN
	// GAT is a single-head graph attention network (extension beyond the
	// paper's evaluated models).
	GAT = nn.GAT
)

// Generate builds a synthetic power-law community dataset.
func Generate(cfg DatasetConfig) *Dataset { return gen.Generate(cfg) }

// StandardSpec describes one of the paper's evaluation datasets scaled for
// this repository.
type StandardSpec = gen.Standard

// Standard returns the scaled stand-in spec for "products", "papers" or
// "friendster"; shrink > 1 shrinks further for quick experiments.
func Standard(name string, shrink int) StandardSpec {
	return gen.StandardDataset(name, shrink)
}

// StandardData generates and prepares a standard dataset for nGPU simulated
// GPUs in one call, with the registry's memory scaling applied.
func StandardData(name string, nGPU, shrink int) *Data {
	std := gen.StandardDataset(name, shrink)
	d := gen.Generate(std.Config)
	td := train.Prepare(d, nGPU, 13, true)
	td.ScaleFactor = std.ScaleFactor
	td.GPUMemBytes = std.GPUMemBytes()
	td.BenchBatch = std.BenchBatch
	return td
}

// Prepare partitions a dataset into nGPU patches with METIS-style
// partitioning, renumbers it into layout order and co-partitions the seeds.
func Prepare(d *Dataset, nGPU int, seed uint64) *Data {
	return train.Prepare(d, nGPU, seed, true)
}

// PrepareHash is Prepare with locality-free hash partitioning (ablation).
func PrepareHash(d *Dataset, nGPU int, seed uint64) *Data {
	return train.Prepare(d, nGPU, seed, false)
}

// New builds a DSP system (the paper's full design: partitioned topology,
// partitioned feature cache, CSP sampling, pipelined workers under CCC).
func New(opts Options) (*Trainer, error) { return core.New(opts) }

// MultiTrainer is the multi-machine DSP system (paper §3.2).
type MultiTrainer = core.MultiDSP

// NetworkSpec describes the inter-machine interconnect.
type NetworkSpec = hw.NetworkSpec

// InfiniBandEDR returns the default 100 Gb/s cluster interconnect.
func InfiniBandEDR() NetworkSpec { return hw.InfiniBandEDR() }

// NewMulti builds DSP across machines identical simulated servers: topology
// and hot features replicate per machine, cold features partition across
// machines, gradients synchronise hierarchically.
func NewMulti(opts Options, machines int, net NetworkSpec) (*MultiTrainer, error) {
	return core.NewMulti(opts, machines, net)
}

// NewBaseline builds one of the comparison systems by name: "pyg",
// "dgl-cpu", "dgl-uva", "quiver" or "fastgcn".
func NewBaseline(name string, opts Options) (System, error) {
	switch strings.ToLower(name) {
	case "pyg":
		return baselines.New(baselines.PyG, opts)
	case "dgl-cpu", "dglcpu":
		return baselines.New(baselines.DGLCPU, opts)
	case "dgl-uva", "dgluva":
		return baselines.New(baselines.DGLUVA, opts)
	case "quiver":
		return baselines.New(baselines.Quiver, opts)
	case "fastgcn":
		return baselines.New(baselines.FastGCN, opts)
	default:
		return nil, fmt.Errorf("dsp: unknown baseline %q", name)
	}
}

// Evaluate computes validation accuracy of a trained model (maxNodes <= 0
// evaluates the full validation split).
func Evaluate(d *Data, m *Model, cfg SampleConfig, maxNodes int, seed uint64) float64 {
	return train.Evaluate(d, m, cfg, maxNodes, seed)
}

// SampleReference draws a mini-batch on a single address space — the oracle
// the distributed CSP matches bit-for-bit (useful for testing custom
// sampling configurations).
func SampleReference(g *Graph, seeds []NodeID, cfg SampleConfig, batchSeed uint64) *MiniBatch {
	return sample.Reference(g, seeds, cfg, batchSeed)
}

// Online inference serving, re-exported from internal/serve.
type (
	// ServeConfig describes one online-inference serving run.
	ServeConfig = serve.Config
	// ServeReport summarises a serving run: latency percentiles,
	// throughput, shed rate and cache hit rate.
	ServeReport = serve.Report
	// ServeBatching selects the micro-batching policy.
	ServeBatching = serve.Batching
)

// Micro-batching policies for online serving.
const (
	// BatchDynamic flushes on a full batch or a max-wait timeout.
	BatchDynamic = serve.BatchDynamic
	// BatchSingle dispatches every request alone (ablation baseline).
	BatchSingle = serve.BatchSingle
	// BatchFixed flushes only on a full batch.
	BatchFixed = serve.BatchFixed
)

// Serve runs online GNN inference on the simulated fleet: a seeded Poisson
// request stream with power-law node popularity, micro-batched per the
// configured policy onto collective sample/gather/forward rounds.
func Serve(cfg ServeConfig) (*ServeReport, error) { return serve.Serve(cfg) }
