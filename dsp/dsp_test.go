package dsp_test

import (
	"testing"

	"repro/dsp"
)

func quickData(t *testing.T) *dsp.Data {
	t.Helper()
	ds := dsp.Generate(dsp.DatasetConfig{
		Name: "api", Nodes: 4000, AvgDegree: 10, FeatDim: 8, NumClasses: 4, Seed: 2,
	})
	return dsp.Prepare(ds, 2, 1)
}

func quickOpts(data *dsp.Data) dsp.Options {
	return dsp.Options{
		Data:      data,
		Model:     dsp.ModelConfig{Arch: dsp.GraphSAGE, InDim: 8, Hidden: 8, Classes: 4, Layers: 2},
		Sample:    dsp.SampleConfig{Fanout: []int{4, 4}},
		BatchSize: 128,
		Pipeline:  true,
		UseCCC:    true,
		Seed:      3,
	}
}

func TestPublicAPITrainingRoundTrip(t *testing.T) {
	data := quickData(t)
	o := quickOpts(data)
	o.RealCompute = true
	sys, err := dsp.New(o)
	if err != nil {
		t.Fatal(err)
	}
	var accs []float64
	for e := 0; e < 3; e++ {
		st, err := sys.RunEpoch(e)
		if err != nil {
			t.Fatal(err)
		}
		if st.EpochTime <= 0 {
			t.Fatal("no time elapsed")
		}
		accs = append(accs, dsp.Evaluate(data, sys.Model(), o.Sample, 300, 5))
	}
	if accs[len(accs)-1] <= 0.3 {
		t.Fatalf("no learning through the public API: %v", accs)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	data := quickData(t)
	for _, name := range []string{"pyg", "dgl-cpu", "dgl-uva", "quiver"} {
		sys, err := dsp.NewBaseline(name, quickOpts(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sys.RunEpoch(0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := dsp.NewBaseline("nope", quickOpts(data)); err == nil {
		t.Fatal("unknown baseline accepted")
	}
	// FastGCN builds but only supports sampling epochs.
	o := quickOpts(data)
	o.Sample = dsp.SampleConfig{Fanout: []int{50, 50}, LayerWise: true}
	fg, err := dsp.NewBaseline("fastgcn", o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fg.RunSampleEpoch(0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIStandardData(t *testing.T) {
	data := dsp.StandardData("products", 2, 20)
	if data.NumGPUs() != 2 {
		t.Fatalf("gpus %d", data.NumGPUs())
	}
	if data.ScaleFactor <= 1 || data.GPUMemBytes <= 0 {
		t.Fatal("registry scaling not applied")
	}
	spec := dsp.Standard("papers", 10)
	if spec.Config.Nodes != 22000 {
		t.Fatalf("papers shrink-10 nodes %d", spec.Config.Nodes)
	}
}

func TestPublicAPISampleReference(t *testing.T) {
	data := quickData(t)
	mb := dsp.SampleReference(data.G, data.Shards[0][:8], dsp.SampleConfig{Fanout: []int{3}}, 1)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mb.Blocks) != 1 {
		t.Fatalf("blocks %d", len(mb.Blocks))
	}
}

func TestPublicAPIHashPrepare(t *testing.T) {
	ds := dsp.Generate(dsp.DatasetConfig{
		Name: "h", Nodes: 1000, AvgDegree: 8, FeatDim: 4, NumClasses: 2, Seed: 1,
	})
	data := dsp.PrepareHash(ds, 4, 1)
	if data.NumGPUs() != 4 {
		t.Fatal("hash prepare broken")
	}
}
