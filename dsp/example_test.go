package dsp_test

import (
	"fmt"

	"repro/dsp"
)

// ExampleNew demonstrates the smallest end-to-end training run: generate a
// learnable community graph, partition it for two simulated GPUs, train one
// epoch with real math, and evaluate.
func ExampleNew() {
	ds := dsp.Generate(dsp.DatasetConfig{
		Name: "example", Nodes: 2000, AvgDegree: 10,
		FeatDim: 8, NumClasses: 4, Seed: 1,
	})
	data := dsp.Prepare(ds, 2, 1)
	sys, err := dsp.New(dsp.Options{
		Data:        data,
		Model:       dsp.ModelConfig{Arch: dsp.GraphSAGE, InDim: 8, Hidden: 16, Classes: 4, Layers: 2},
		Sample:      dsp.SampleConfig{Fanout: []int{5, 5}},
		BatchSize:   128,
		RealCompute: true,
		Pipeline:    true,
		UseCCC:      true,
		LR:          0.01,
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := sys.RunEpoch(epoch); err != nil {
			panic(err)
		}
	}
	acc := dsp.Evaluate(data, sys.Model(), dsp.SampleConfig{Fanout: []int{5, 5}}, 200, 3)
	fmt.Println("learned:", acc > 0.5)
	// Output: learned: true
}

// ExampleSampleReference shows the deterministic sampling oracle: the same
// batch seed always yields the same multi-layer graph sample.
func ExampleSampleReference() {
	ds := dsp.Generate(dsp.DatasetConfig{
		Name: "s", Nodes: 500, AvgDegree: 8, FeatDim: 4, NumClasses: 2, Seed: 3,
	})
	seeds := ds.TrainIdx[:4]
	a := dsp.SampleReference(ds.G, seeds, dsp.SampleConfig{Fanout: []int{3, 2}}, 42)
	b := dsp.SampleReference(ds.G, seeds, dsp.SampleConfig{Fanout: []int{3, 2}}, 42)
	fmt.Println("layers:", len(a.Blocks), "deterministic:", a.NumSampledEdges() == b.NumSampledEdges())
	// Output: layers: 2 deterministic: true
}

// ExampleNewBaseline runs the same workload on a baseline system for
// comparison; all systems consume identical batches.
func ExampleNewBaseline() {
	ds := dsp.Generate(dsp.DatasetConfig{
		Name: "b", Nodes: 10000, AvgDegree: 14, FeatDim: 32, NumClasses: 4, Seed: 1,
	})
	data := dsp.Prepare(ds, 2, 1)
	opts := dsp.Options{
		Data:      data,
		Model:     dsp.ModelConfig{Arch: dsp.GCN, InDim: 32, Hidden: 32, Classes: 4, Layers: 2},
		Sample:    dsp.SampleConfig{Fanout: []int{10, 8}},
		BatchSize: 256,
		Pipeline:  true,
		UseCCC:    true,
		Seed:      2,
	}
	fast, _ := dsp.New(opts)
	slow, _ := dsp.NewBaseline("dgl-cpu", opts)
	a, _ := fast.RunEpoch(0)
	b, _ := slow.RunEpoch(0)
	fmt.Println("DSP faster:", a.EpochTime < b.EpochTime)
	// Output: DSP faster: true
}
