// Multi-machine DSP (paper §3.2): scale the papers workload from one to
// four simulated 4-GPU machines. Topology and hot features replicate per
// machine; cold features partition across machines; machines communicate
// only cold feature rows and gradients.
//
//	go run ./examples/multimachine
package main

import (
	"fmt"
	"log"

	"repro/dsp"
)

func main() {
	data := dsp.StandardData("papers", 4, 8)
	fmt.Printf("papers stand-in: %d nodes on 4 GPUs per machine\n\n", data.G.NumNodes())

	opts := dsp.Options{
		Data:      data,
		Model:     dsp.ModelConfig{Arch: dsp.GraphSAGE, InDim: data.FeatDim, Hidden: 256, Classes: data.NumClasses, Layers: 3},
		Sample:    dsp.SampleConfig{Fanout: []int{15, 10, 5}},
		BatchSize: 64,
		Pipeline:  true,
		UseCCC:    true,
		Seed:      21,
	}

	fmt.Println("machines  GPUs  epoch(ms)  speedup  NIC-MB (cold feats + grads)")
	var base float64
	for _, machines := range []int{1, 2, 4} {
		sys, err := dsp.NewMulti(opts, machines, dsp.InfiniBandEDR())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.RunEpoch(0); err != nil { // warm-up
			log.Fatal(err)
		}
		st, err := sys.RunEpoch(1)
		if err != nil {
			log.Fatal(err)
		}
		epoch := float64(st.EpochTime)
		if machines == 1 {
			base = epoch
		}
		fmt.Printf("%8d  %4d  %9.3f  %6.2fx  %8.1f\n",
			machines, machines*4, 1e3*epoch, base/epoch, float64(st.InterWire)/(1<<20))
	}
	fmt.Println("\nEach machine consumes a stride of the seeds, so epoch time drops near-")
	fmt.Println("linearly; only cold-feature rows and gradient ring chunks cross the NICs.")
}
