// Serving: run online GNN inference on four simulated GPUs — a Poisson
// request stream with power-law node popularity, dynamically micro-batched
// onto collective sample/gather/forward rounds — and read the tail-latency
// report. Run with:
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"repro/dsp"
)

func main() {
	// The products-sim stand-in (shrunk for a fast run), partitioned for
	// four GPUs exactly as for training: METIS-style patches, renumbered
	// so each GPU owns a consecutive id range.
	data := dsp.StandardData("products", 4, 4)

	// Serve 30 virtual seconds of traffic. Requests arrive open-loop at
	// 2000 req/s; targets follow a power-law over the degree ranking, so
	// the partitioned feature caches see a realistic hot set. Dynamic
	// micro-batching flushes a GPU's queue on a full batch or after a
	// 2 ms max-wait, whichever comes first.
	rep, err := dsp.Serve(dsp.ServeConfig{
		Data:     data,
		Seed:     7,
		Duration: 30,
		Rate:     2000,
		Skew:     0.8,
		Batching: dsp.BatchDynamic,
		UseCCC:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(rep)
	fmt.Printf("\np99/p50 tail ratio %.2fx  mean batch %.1f req/GPU-round\n",
		rep.Latency.P99()/rep.Latency.P50(), rep.MeanBatch)
}
