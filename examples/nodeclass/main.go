// Node classification on the Papers100M stand-in — the paper's motivating
// workload (citation-graph paper-topic classification, Figure 9) — trained
// to convergence with DSP on eight simulated GPUs, then compared against
// DGL-UVA on the accuracy-versus-time axis.
//
//	go run ./examples/nodeclass
package main

import (
	"fmt"
	"log"

	"repro/dsp"
)

func main() {
	// The papers stand-in at 1/8 scale keeps real fp32 training quick on a
	// laptop host; the simulated GPU memory shrinks with it so the cache
	// behaviour matches the full benchmark.
	data := dsp.StandardData("papers", 8, 8)
	fmt.Printf("papers stand-in: %d nodes, %d adjacency entries, %d classes\n",
		data.G.NumNodes(), data.G.NumEdges(), data.NumClasses)

	mkOpts := func() dsp.Options {
		return dsp.Options{
			Data:        data,
			Model:       dsp.ModelConfig{Arch: dsp.GraphSAGE, InDim: data.FeatDim, Hidden: 32, Classes: data.NumClasses, Layers: 2},
			Sample:      dsp.SampleConfig{Fanout: []int{10, 5}},
			BatchSize:   256,
			RealCompute: true,
			Pipeline:    true,
			UseCCC:      true,
			LR:          0.01,
			Seed:        11,
		}
	}

	dspSys, err := dsp.New(mkOpts())
	if err != nil {
		log.Fatal(err)
	}
	uvaSys, err := dsp.NewBaseline("dgl-uva", mkOpts())
	if err != nil {
		log.Fatal(err)
	}

	const epochs = 4
	fmt.Println("\nepoch  system    cum-sim-time(ms)  val-acc")
	var tDSP, tUVA float64
	for e := 0; e < epochs; e++ {
		for _, s := range []struct {
			sys  dsp.System
			name string
			cum  *float64
		}{{dspSys, "DSP", &tDSP}, {uvaSys, "DGL-UVA", &tUVA}} {
			st, err := s.sys.RunEpoch(e)
			if err != nil {
				log.Fatal(err)
			}
			*s.cum += float64(st.EpochTime)
			acc := dsp.Evaluate(data, s.sys.Model(), dsp.SampleConfig{Fanout: []int{10, 5}}, 1000, 3)
			fmt.Printf("%5d  %-8s  %16.2f  %7.3f\n", e, s.name, 1e3**s.cum, acc)
		}
	}
	fmt.Println("\nBoth systems reach identical accuracy at equal batch counts (same BSP")
	fmt.Println("updates); DSP gets there in less simulated time — the paper's Figure 9.")
}
