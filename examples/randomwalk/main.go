// DeepWalk-style random walks with the collective sampling primitive:
// CSP's task-push paradigm expresses random walks as fan-out-1 sampling
// whose tasks migrate with the walk across GPUs (paper Section 4.2).
//
//	go run ./examples/randomwalk
package main

import (
	"fmt"
	"log"

	"repro/dsp"
)

func main() {
	ds := dsp.Generate(dsp.DatasetConfig{
		Name:       "walks",
		Nodes:      12000,
		AvgDegree:  18,
		FeatDim:    8,
		NumClasses: 12,
		Seed:       5,
	})
	data := dsp.Prepare(ds, 4, 1)
	sys, err := dsp.New(dsp.Options{
		Data:      data,
		Model:     dsp.ModelConfig{Arch: dsp.GraphSAGE, InDim: 8, Hidden: 8, Classes: 12, Layers: 1},
		Sample:    dsp.SampleConfig{Fanout: []int{1}},
		BatchSize: 256,
		Pipeline:  true,
		UseCCC:    true,
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}

	const walkLen = 20
	paths, simTime, err := sys.RandomWalkEpoch(walkLen)
	if err != nil {
		log.Fatal(err)
	}

	var walks, hops int
	hist := map[int]int{}
	for _, ranksPaths := range paths {
		for _, p := range ranksPaths {
			walks++
			hops += len(p) - 1
			hist[len(p)-1]++
		}
	}
	fmt.Printf("ran %d walks of target length %d on 4 simulated GPUs\n", walks, walkLen)
	fmt.Printf("total hops: %d (%.1f avg; shorter walks hit dead ends)\n", hops, float64(hops)/float64(walks))
	fmt.Printf("virtual time: %.3f ms  (%.0f hops per sim-second)\n", 1e3*float64(simTime), float64(hops)/float64(simTime))

	// Co-occurrence sanity: consecutive walk nodes should share a community
	// far more often than random pairs would — the property DeepWalk
	// embeddings exploit.
	same, total := 0, 0
	for _, ranksPaths := range paths {
		for _, p := range ranksPaths {
			for h := 1; h < len(p); h++ {
				total++
				if ds.Labels[p[h-1]] == ds.Labels[p[h]] {
					same++
				}
			}
		}
	}
	fmt.Printf("community coherence: %.1f%% of hops stay in-community (chance: %.1f%%)\n",
		100*float64(same)/float64(total), 100.0/float64(ds.NumClasses))
}
