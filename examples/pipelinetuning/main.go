// Pipeline tuning walkthrough: how much of DSP's speedup comes from the
// producer-consumer pipeline, and how the queue capacity affects it — the
// design discussion of paper Section 5 ("setting the queue capacity limit
// to 2 is sufficient").
//
//	go run ./examples/pipelinetuning
package main

import (
	"fmt"
	"log"

	"repro/dsp"
)

func main() {
	data := dsp.StandardData("papers", 8, 8)
	base := dsp.Options{
		Data:      data,
		Sample:    dsp.SampleConfig{Fanout: []int{15, 10, 5}},
		BatchSize: 64,
		Pipeline:  true,
		UseCCC:    true,
		Seed:      3,
	}

	run := func(opts dsp.Options) (epoch float64, util float64) {
		sys, err := dsp.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.RunEpoch(0); err != nil { // warm-up
			log.Fatal(err)
		}
		st, err := sys.RunEpoch(1)
		if err != nil {
			log.Fatal(err)
		}
		var u float64
		for _, x := range st.Utilization {
			u += x
		}
		return float64(st.EpochTime), u / float64(len(st.Utilization))
	}

	seq := base
	seq.Pipeline = false
	seqTime, seqUtil := run(seq)
	fmt.Printf("%-22s  epoch %8.3f ms   util %5.1f%%   speedup %5.2fx\n",
		"DSP-Seq (no pipeline)", 1e3*seqTime, 100*seqUtil, 1.0)

	for _, cap := range []int{1, 2, 4, 8} {
		o := base
		o.QueueCap = cap
		tm, util := run(o)
		fmt.Printf("%-22s  epoch %8.3f ms   util %5.1f%%   speedup %5.2fx\n",
			fmt.Sprintf("pipeline, queue cap %d", cap), 1e3*tm, 100*util, seqTime/tm)
	}
	fmt.Println("\nCapacity 2 captures essentially all of the overlap (the paper's choice);")
	fmt.Println("deeper queues only hold more in-flight batches in GPU memory.")
}
