// Quickstart: train a GraphSAGE model with DSP on four simulated GPUs and
// watch it learn. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/dsp"
)

func main() {
	// A small synthetic community graph: labels are community ids and
	// features are noisy class centroids, so the task is genuinely
	// learnable.
	ds := dsp.Generate(dsp.DatasetConfig{
		Name:       "quickstart",
		Nodes:      8000,
		AvgDegree:  14,
		FeatDim:    32,
		NumClasses: 8,
		Seed:       1,
	})

	// Partition the graph into four patches (METIS-style), renumber so each
	// GPU owns a consecutive id range, and co-partition the training seeds.
	data := dsp.Prepare(ds, 4, 1)

	// Build the DSP system: partitioned topology + partitioned feature
	// cache, collective sampling, pipelined sampler/loader/trainer workers
	// under centralized communication coordination.
	sys, err := dsp.New(dsp.Options{
		Data:        data,
		Model:       dsp.ModelConfig{Arch: dsp.GraphSAGE, InDim: 32, Hidden: 32, Classes: 8, Layers: 2},
		Sample:      dsp.SampleConfig{Fanout: []int{10, 5}},
		BatchSize:   256,
		RealCompute: true,
		Pipeline:    true,
		UseCCC:      true,
		LR:          0.01,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  sim-time(ms)  train-acc  val-acc")
	for epoch := 0; epoch < 5; epoch++ {
		st, err := sys.RunEpoch(epoch)
		if err != nil {
			log.Fatal(err)
		}
		val := dsp.Evaluate(data, sys.Model(), sys.Opts.Sample, 800, 3)
		fmt.Printf("%5d  %12.3f  %9.3f  %7.3f\n",
			epoch, 1e3*float64(st.EpochTime), st.Acc(), val)
	}
}
