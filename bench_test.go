// Package repro's root benchmarks regenerate every table and figure of the
// paper via the internal/bench harness — one testing.B benchmark per
// artifact. Wall-clock ns/op measures the simulator itself; the scientific
// result is the virtual-time metrics each benchmark reports (sim-seconds,
// ratios), which mirror the paper's reported numbers in shape.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Benchmarks default to shrunken stand-ins so a full pass stays tractable;
// use cmd/dspbench for full benchmark-scale tables.
package repro

import (
	"testing"

	"repro/internal/bench"
)

// benchCfg is the scale used by the testing.B harness.
var benchCfg = bench.RunConfig{Shrink: 8, Warmup: 0, Measure: 1}

func runExperiment(b *testing.B, fn func(bench.RunConfig) (*bench.Table, error)) *bench.Table {
	b.Helper()
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := fn(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	return last
}

// BenchmarkTable1Bandwidth validates the Table 1 fabric model.
func BenchmarkTable1Bandwidth(b *testing.B) {
	t := runExperiment(b, bench.Table1)
	b.ReportMetric(t.Get("NVLink", "8-GPU"), "NVLink-8GPU-GBps")
	b.ReportMetric(t.Get("PCIe", "8-GPU"), "PCIe-8GPU-GBps")
}

// BenchmarkFig1CommVolume measures sampling communication volume ratios.
func BenchmarkFig1CommVolume(b *testing.B) {
	t := runExperiment(b, bench.Fig1)
	b.ReportMetric(t.Get("UVA", "papers"), "UVA-over-ideal-x")
	b.ReportMetric(t.Get("CSP", "papers"), "CSP-over-ideal-x")
}

// BenchmarkFig2KernelScaling sweeps kernel thread allocations.
func BenchmarkFig2KernelScaling(b *testing.B) {
	t := runExperiment(b, bench.Fig2)
	b.ReportMetric(t.Get("sampling", "5120")/t.Get("sampling", "256"), "plateau-ratio")
}

// BenchmarkTable4EpochTime runs the headline GraphSAGE comparison.
func BenchmarkTable4EpochTime(b *testing.B) {
	t := runExperiment(b, bench.Table4)
	b.ReportMetric(t.Get("DGL-UVA", "papers/8")/t.Get("DSP", "papers/8"), "DSP-speedup-papers8-x")
	b.ReportMetric(t.Get("PyG", "friendster/8")/t.Get("DSP", "friendster/8"), "DSP-speedup-vs-PyG-x")
}

// BenchmarkTable5GCN runs the GCN comparison at 8 GPUs.
func BenchmarkTable5GCN(b *testing.B) {
	t := runExperiment(b, bench.Table5)
	b.ReportMetric(t.Get("DGL-UVA", "papers/8")/t.Get("DSP", "papers/8"), "DSP-speedup-papers8-x")
}

// BenchmarkTable6Sampling measures sampling-only epochs.
func BenchmarkTable6Sampling(b *testing.B) {
	t := runExperiment(b, bench.Table6)
	b.ReportMetric(t.Get("DGL-UVA", "papers/8")/t.Get("DSP", "papers/8"), "CSP-vs-UVA-x")
	b.ReportMetric(t.Get("DGL-CPU", "papers/8")/t.Get("DSP", "papers/8"), "CSP-vs-CPU-x")
}

// BenchmarkTable7LayerWise compares layer-wise sampling with FastGCN.
func BenchmarkTable7LayerWise(b *testing.B) {
	t := runExperiment(b, bench.Table7)
	b.ReportMetric(t.Get("FastGCN", "papers")/t.Get("DSP", "papers"), "DSP-vs-FastGCN-x")
}

// BenchmarkFig6Utilization measures pipeline vs sequential utilization.
func BenchmarkFig6Utilization(b *testing.B) {
	t := runExperiment(b, bench.Fig6)
	b.ReportMetric(t.Get("DSP", "papers/8"), "pipeline-util-pct")
	b.ReportMetric(t.Get("DSP-Seq", "papers/8"), "seq-util-pct")
}

// BenchmarkFig9TrainingQuality trains for real and reports final accuracy.
func BenchmarkFig9TrainingQuality(b *testing.B) {
	t := runExperiment(b, bench.Fig9)
	last := t.Cols[len(t.Cols)-1]
	b.ReportMetric(t.Get("DSP/acc", last), "final-val-acc")
	b.ReportMetric(t.Get("DGL-UVA/time", last)/t.Get("DSP/time", last), "time-to-acc-speedup-x")
}

// BenchmarkFig10CacheSplit sweeps the topology/feature cache split.
func BenchmarkFig10CacheSplit(b *testing.B) {
	t := runExperiment(b, bench.Fig10)
	b.ReportMetric(t.Get("papers", t.Cols[0])/t.Get("papers", t.Cols[2]), "left-flank-x")
	b.ReportMetric(t.Get("papers/sampling", t.Cols[len(t.Cols)-1])/t.Get("papers/sampling", t.Cols[0]), "spill-sampling-x")
}

// BenchmarkFig11TaskPush compares CSP against the data-pull alternative.
func BenchmarkFig11TaskPush(b *testing.B) {
	t := runExperiment(b, bench.Fig11)
	b.ReportMetric(t.Get("PullData", "friendster")/t.Get("CSP", "friendster"), "push-vs-pull-x")
}

// BenchmarkFig12PipelineSpeedup measures DSP over DSP-Seq.
func BenchmarkFig12PipelineSpeedup(b *testing.B) {
	t := runExperiment(b, bench.Fig12)
	b.ReportMetric(t.Get("papers", "8-GPU"), "speedup-8GPU-x")
}

// BenchmarkAblationLayout compares METIS vs hash partitioning.
func BenchmarkAblationLayout(b *testing.B) {
	t := runExperiment(b, bench.AblationPartition)
	b.ReportMetric(t.Get("hash/sample-MB", "papers")/t.Get("metis/sample-MB", "papers"), "metis-traffic-cut-x")
}

// BenchmarkAblationQueueCap sweeps pipeline queue capacities.
func BenchmarkAblationQueueCap(b *testing.B) {
	t := runExperiment(b, bench.AblationQueueCap)
	b.ReportMetric(t.Get("papers", "cap=1")/t.Get("papers", "cap=2"), "cap2-over-cap1-x")
}

// BenchmarkAblationCache compares partitioned vs replicated caching.
func BenchmarkAblationCache(b *testing.B) {
	t := runExperiment(b, bench.AblationReplicatedCache)
	b.ReportMetric(t.Get("replicated/uva-MB", "papers")/(t.Get("partitioned/uva-MB", "papers")+1e-9), "uva-traffic-ratio-x")
}

// BenchmarkServeThroughput runs the online-inference load sweep and reports
// the batching ablation at the highest offered load.
func BenchmarkServeThroughput(b *testing.B) {
	t := runExperiment(b, bench.ServeLoad)
	hi := t.Cols[len(t.Cols)-1]
	b.ReportMetric(t.Get("dynamic p99", hi), "dynamic-p99-ms")
	b.ReportMetric(t.Get("batch=1 p99", hi), "batch1-p99-ms")
	b.ReportMetric(t.Get("batch=1 shed%", hi), "batch1-shed-pct")
}

// BenchmarkFaultSweep serves under seeded random fault schedules and reports
// degraded-mode health at the highest crash rate.
func BenchmarkFaultSweep(b *testing.B) {
	t := runExperiment(b, bench.FaultSweep)
	hi := t.Cols[len(t.Cols)-1]
	b.ReportMetric(t.Get("throughput req/s", hi), "degraded-throughput-rps")
	b.ReportMetric(t.Get("mean MTTR ms", hi), "mean-mttr-ms")
	b.ReportMetric(t.Get("unanswered %", hi), "unanswered-pct")
}
