// Command dsppart partitions a synthetic graph the way DSP's data layout
// does and reports quality metrics: edge cut, balance, and the locality a
// GPU would see during collective sampling, for both the METIS-style
// multilevel partitioner and the hash baseline.
//
// Usage:
//
//	dsppart -dataset papers -gpus 8
//	dsppart -nodes 50000 -degree 20 -gpus 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		dsName = flag.String("dataset", "", "standard dataset (products, papers, friendster); empty = custom")
		nodes  = flag.Int("nodes", 20000, "custom graph node count")
		degree = flag.Float64("degree", 16, "custom graph average degree")
		gpus   = flag.Int("gpus", 4, "number of patches")
		shrink = flag.Int("shrink", 4, "standard dataset shrink divisor")
		seed   = flag.Uint64("seed", 1, "partitioner seed")
	)
	flag.Parse()

	var d *gen.Dataset
	if *dsName != "" {
		std := gen.StandardDataset(*dsName, *shrink)
		fmt.Printf("dataset %s: %d nodes, avg degree %.1f\n", std.Config.Name, std.Config.Nodes, std.Config.AvgDegree)
		d = gen.Generate(std.Config)
	} else {
		d = gen.Generate(gen.Config{
			Name: "custom", Nodes: *nodes, AvgDegree: *degree,
			FeatDim: 8, NumClasses: 16, Seed: *seed,
		})
	}
	g := d.G
	fmt.Printf("graph: %d nodes, %d adjacency entries\n\n", g.NumNodes(), g.NumEdges())

	fmt.Printf("%-8s  %10s  %8s  %9s  %s\n", "method", "edge-cut", "cut-frac", "imbalance", "part sizes")
	for _, method := range []string{"metis", "hash"} {
		var res *partition.Result
		if method == "metis" {
			res = partition.Metis(g, *gpus, *seed)
		} else {
			res = partition.Hash(g, *gpus)
		}
		if err := res.Validate(g.NumNodes()); err != nil {
			fmt.Fprintf(os.Stderr, "dsppart: %v\n", err)
			os.Exit(1)
		}
		cut, frac := partition.EdgeCut(g, res)
		fmt.Printf("%-8s  %10d  %7.1f%%  %9.3f  %v\n",
			method, cut, 100*frac, res.Imbalance(), res.PartSizes())
	}

	// Locality preview: fraction of a simulated frontier whose adjacency is
	// patch-local under the METIS layout (what CSP exploits).
	res := partition.Metis(g, *gpus, *seed)
	ren := partition.BuildRenumbering(res)
	lg := ren.ApplyToGraph(g)
	var local, total int64
	for v := 0; v < lg.NumNodes(); v++ {
		p := ren.Owner(graph.NodeID(v))
		for _, u := range lg.Neighbors(graph.NodeID(v)) {
			total++
			if ren.Owner(u) == p {
				local++
			}
		}
	}
	fmt.Printf("\nCSP locality under METIS layout: %.1f%% of neighbour references stay on the owning GPU\n",
		100*float64(local)/float64(total))
}
