// Command dspmon renders the telemetry documents the -telemetry flag of
// dspserve and dsptrain writes (dsp-telemetry/1 JSON): ASCII sparkline
// dashboards for terminals and Prometheus text exposition for scrapers.
//
// Usage:
//
//	dspmon render telemetry.json        # sparkline dashboard
//	dspmon prom telemetry.json          # Prometheus text format on stdout
//	dspmon alerts telemetry.json        # alert/rule summary only
//
// Exit status: 0 when no burn-rate alert fired during the run, 1 when any
// did — so a CI job can gate on `dspmon render f.json` directly.
package main

import (
	"fmt"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	doc, err := telemetry.ReadDocFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspmon: %v\n", err)
		os.Exit(2)
	}
	if err := doc.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "dspmon: %s: %v\n", path, err)
		os.Exit(2)
	}
	switch cmd {
	case "render":
		err = doc.Render(os.Stdout)
	case "prom":
		err = doc.WriteProm(os.Stdout)
	case "alerts":
		err = renderAlerts(doc)
	default:
		fmt.Fprintf(os.Stderr, "dspmon: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspmon: %v\n", err)
		os.Exit(2)
	}
	if len(doc.Alerts) > 0 {
		fmt.Fprintf(os.Stderr, "dspmon: %d alert(s) fired\n", len(doc.Alerts))
		os.Exit(1)
	}
}

func renderAlerts(doc *telemetry.Doc) error {
	for _, r := range doc.Rules {
		fmt.Printf("rule %-8s short=%.3gs long=%.3gs burn>%.3g fired=%d\n",
			r.Name, r.Short, r.Long, r.Burn, r.Fired)
	}
	for _, a := range doc.Alerts {
		fmt.Printf("alert %-8s [%.4gs, %.4gs] peak burn %.3g\n",
			a.Rule, a.Start, a.End, a.Peak)
	}
	if len(doc.Alerts) == 0 {
		fmt.Println("no alerts fired")
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dspmon render <telemetry.json>   sparkline dashboard (exit 1 if alerts fired)
  dspmon prom <telemetry.json>     Prometheus text exposition format
  dspmon alerts <telemetry.json>   rule and alert summary`)
}
