// Command dspbench regenerates the paper's tables and figures on the
// simulated multi-GPU machine.
//
// Usage:
//
//	dspbench -exp table4              # one experiment
//	dspbench -exp all                 # everything (takes a while)
//	dspbench -list                    # available experiment ids
//	dspbench -exp fig10 -shrink 4     # smaller stand-ins for a quick look
//	dspbench -exp table4 -warmup 5 -measure 10   # the paper's methodology
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		shrink  = flag.Int("shrink", 1, "dataset shrink divisor (1 = benchmark scale)")
		warmup  = flag.Int("warmup", 1, "warm-up epochs per configuration")
		measure = flag.Int("measure", 2, "measured epochs per configuration")
		report  = flag.String("report", "", "run the canonical perf workload and write its run report JSON here")
		par     = flag.Int("parallel", 1, "OS threads for offloaded simulator data work (results are bitwise identical at any value)")
		asJSON  = flag.Bool("json", false, "emit result tables as JSON objects instead of aligned text")
		tele    = flag.Bool("telemetry", false, "attach the telemetry hub to serving sweeps and fail if the burn-rate alert engine fires on a healthy baseline row")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.ExperimentNames() {
			fmt.Println(name)
		}
		return
	}
	cfg := bench.RunConfig{Shrink: *shrink, Warmup: *warmup, Measure: *measure, Parallel: *par, JSON: *asJSON, Telemetry: *tele}
	if *report != "" {
		r, err := bench.PerfReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspbench: perf: %v\n", err)
			os.Exit(1)
		}
		if err := r.WriteFile(*report); err != nil {
			fmt.Fprintf(os.Stderr, "dspbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote perf run report to %s\n", *report)
		if *exp == "" {
			return
		}
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "dspbench: -exp required (use -list to enumerate)")
		os.Exit(2)
	}
	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		runner, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "dspbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		if err := runner(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dspbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if s := bench.SweepByName(name); s != nil {
			if a, ok := s.(bench.Asserter); ok {
				if err := a.Assert(); err != nil {
					fmt.Fprintf(os.Stderr, "dspbench: %s: assert: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
		if !*asJSON {
			fmt.Printf("[%s finished in %v wall time]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
}
