// Command dspserve runs online GNN inference serving on the simulated
// multi-GPU machine: a seeded Poisson request stream with power-law node
// popularity is micro-batched onto the fleet, and the run reports
// end-to-end latency percentiles, throughput, shed rate and cache hit rate.
//
// Usage:
//
//	dspserve -dataset products -gpus 4 -duration 1 -rate 4000
//	dspserve -rate 20000 -mode single          # batching ablation: no batching
//	dspserve -rate 4000 -skew 1.2 -real        # hotter skew, real fp32 forward
//	dspserve -rate 8000 -trace serve.json      # per-request Chrome trace
//	dspserve -drift-every 0.1 -cache lfu       # adaptive cache vs popularity drift
//
// Fault injection: -faults drives degraded-mode serving — a crashed GPU's
// requests re-route to the next live replica and the fleet keeps answering.
//
//	dspserve -duration 0.5 -faults 'crash@gpu2:t=0.2'
//	dspserve -faults 'linkdown@gpu0-gpu1:t=0.1+50ms,stall@gpu3:t=0.3+20ms'
//
// Replicated serving: -fleets N puts a router in front of N full replicas
// sharing one virtual clock, with -router picking the dispatch policy,
// -tenants adding token-bucket admission quotas, -slo goodput accounting and
// -autoscale SLO-band scaling. The -faults grammar becomes fleet-scoped.
//
//	dspserve -fleets 3 -router least-loaded -slo 0.005
//	dspserve -fleets 3 -faults 'crash@fleet1:t=0.2' -slo 0.005
//	dspserve -fleets 1 -autoscale 1:4 -slo 0.005 -rate 40000
//	dspserve -fleets 2 -tenants 'free:4:500,pro:1'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliopts"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	var (
		dsName   = flag.String("dataset", "products", "dataset: products, papers, friendster")
		gpus     = flag.Int("gpus", 4, "simulated GPU count (1-8)")
		shrink   = flag.Int("shrink", 4, "dataset shrink divisor")
		dataIn   = flag.String("data", "", "load a prepared .dspd dataset (from dspdata) instead of generating")
		duration = flag.Float64("duration", 1.0, "arrival window in virtual seconds")
		rate     = flag.Float64("rate", 4000, "offered load in requests per virtual second")
		skew     = flag.Float64("skew", 0.8, "power-law popularity exponent (0 = uniform)")
		mode     = flag.String("mode", "dynamic", "batching policy: dynamic, single, fixed")
		maxBatch = flag.Int("maxbatch", 32, "max requests per GPU per round")
		maxWait  = flag.Float64("maxwait", 2e-3, "max queueing delay before a dynamic flush (virtual seconds)")
		queue    = flag.Int("queue", 0, "admission queue depth per GPU (0 = 4x maxbatch)")
		seed     = flag.Uint64("seed", 1, "run seed")
		real     = flag.Bool("real", false, "run the real fp32 forward pass and report predictions")
		rebEvery = flag.Float64("rebalance-every", 25e-3, "cache rebalance period in virtual seconds")
		drift    = flag.Float64("drift-every", 0, "re-draw the popularity assignment at this virtual period (0 = static popularity)")
		traceTo  = flag.String("trace", "", "write a Chrome trace of the run to this file")
	)
	common := cliopts.Register(flag.CommandLine)
	fleetOpts := cliopts.RegisterFleet(flag.CommandLine)
	graphOpts := cliopts.RegisterGraph(flag.CommandLine)
	teleOpts := cliopts.RegisterTelemetry(flag.CommandLine)
	flag.Parse()

	var td *train.Data
	if *dataIn != "" {
		var err error
		td, err = graphio.LoadFile(*dataIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		*gpus = td.NumGPUs()
		fmt.Printf("loaded %s: %d nodes, %d patches\n", *dataIn, td.G.NumNodes(), *gpus)
	} else {
		if *gpus < 1 || *gpus > 8 {
			fmt.Fprintf(os.Stderr, "dspserve: -gpus must be 1-8 (DGX-1), got %d\n", *gpus)
			os.Exit(2)
		}
		std := gen.StandardDataset(*dsName, *shrink)
		fmt.Printf("generating %s (%d nodes, scale factor %.0fx)...\n",
			std.Config.Name, std.Config.Nodes, std.ScaleFactor)
		d := gen.Generate(std.Config)
		fmt.Printf("partitioning into %d patches...\n", *gpus)
		td = train.Prepare(d, *gpus, 13, true)
		td.ScaleFactor = std.ScaleFactor
		td.GPUMemBytes = std.GPUMemBytes()
	}

	fleetMode := fleetOpts.FleetMode()
	routerPolicy, err := fleetOpts.Policy()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(2)
	}
	autoscale, err := fleetOpts.Autoscale()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(2)
	}
	tenants, err := fleetOpts.Tenants()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(2)
	}

	built := fleetOpts.N()
	if autoscale.Max > built {
		built = autoscale.Max
	}
	var faults []fault.Fault
	var fleetFaults []fault.FleetFault
	if fleetMode {
		// With a router in front, -faults speaks the fleet-scoped grammar.
		fleetFaults, err = common.FleetFaultSchedule(built, *gpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(2)
		}
	} else {
		faults, err = common.FaultSchedule(*gpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(2)
		}
		crashed := map[int]bool{}
		for _, f := range faults {
			if f.Kind == fault.Crash {
				crashed[f.GPU] = true
			}
		}
		if len(crashed) >= *gpus {
			fmt.Fprintf(os.Stderr, "dspserve: fault schedule crashes all %d GPUs; at least one must survive\n", *gpus)
			os.Exit(2)
		}
	}

	var batching serve.Batching
	switch strings.ToLower(*mode) {
	case "dynamic":
		batching = serve.BatchDynamic
	case "single", "batch=1":
		batching = serve.BatchSingle
	case "fixed":
		batching = serve.BatchFixed
	default:
		fmt.Fprintf(os.Stderr, "dspserve: unknown batching mode %q\n", *mode)
		os.Exit(2)
	}

	policy, err := common.Policy()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(2)
	}
	kind, err := common.StrategyKind()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(2)
	}
	featCodec, err := common.FeatCodec(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(2)
	}
	if featCodec != nil {
		fmt.Printf("compression: feat=%s\n", compress.Name(featCodec))
	}

	cfg := serve.Config{
		Data:               td,
		RealCompute:        *real,
		Seed:               *seed,
		Parallel:           common.Parallel(),
		Duration:           sim.Time(*duration),
		Rate:               *rate,
		Skew:               *skew,
		Batching:           batching,
		MaxBatch:           *maxBatch,
		MaxWait:            sim.Time(*maxWait),
		QueueDepth:         *queue,
		UseCCC:             true,
		FeatureCacheBudget: common.CacheBudget(),
		DynamicCache:       policy,
		RebalanceEvery:     sim.Time(*rebEvery),
		DriftEvery:         sim.Time(*drift),
		FeatCodec:          featCodec,
		Strategy:           string(kind),
		Faults:             faults,
		Tenants:            tenants,
		SLO:                fleetOpts.SLO(),
		CompressTopology:   graphOpts.Compress(),
		OOC:                graphOpts.OOC(),
		OOCBudget:          graphOpts.OOCBudget(),
		OOCNoPrefetch:      graphOpts.OOCNoPrefetch(),
	}
	if desc := graphOpts.Describe(); desc != "" {
		fmt.Printf("graph storage: %s\n", desc)
	}

	hub := teleOpts.Hub(fleetOpts.SLO())
	cfg.Telemetry = hub

	if fleetMode {
		if *traceTo != "" {
			fmt.Fprintf(os.Stderr, "dspserve: -trace is not supported with a fleet router (per-request spans would interleave %d replicas)\n", built)
			os.Exit(2)
		}
		router, err := fleet.NewRouter(fleet.Config{
			Serve:     cfg,
			Fleets:    fleetOpts.N(),
			Policy:    routerPolicy,
			Autoscale: autoscale,
			Faults:    fleetFaults,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("serving %s on %d fleets x %d GPUs: %s routing, %s batching, %.0f req/s for %.2fs...\n",
			td.Name, built, *gpus, routerPolicy, batching, *rate, *duration)
		rep, err := router.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		doc, err := teleOpts.Finish(hub, rep.Makespan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		meta := serve.ReportMeta{
			Dataset: td.Name, GPUs: built * *gpus, Seed: *seed,
			Shrink: reportShrink(*dataIn, *shrink),
		}
		if doc != nil {
			meta.Telemetry = doc.Section()
		}
		if err := common.WriteReport(rep.RunReport(meta)); err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// -report profiles the run from trace events, so it records an
	// in-memory trace even when -trace was not requested.
	if *traceTo != "" || common.ReportPath() != "" {
		cfg.Tracer = trace.New()
		cfg.Tracer.SetMaxEvents(common.TraceMaxEvents())
	}

	fmt.Printf("serving %s on %d GPUs: %s batching, %.0f req/s for %.2fs...\n",
		td.Name, *gpus, batching, *rate, *duration)
	rep, err := serve.Serve(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)

	doc, err := teleOpts.Finish(hub, rep.Makespan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(1)
	}
	meta := serve.ReportMeta{
		Dataset: td.Name, GPUs: *gpus, Seed: *seed,
		Shrink: reportShrink(*dataIn, *shrink), Tracer: cfg.Tracer,
	}
	if doc != nil {
		meta.Telemetry = doc.Section()
	}
	if err := common.WriteReport(rep.RunReport(meta)); err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(1)
	}

	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		if err := cfg.Tracer.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceTo, cfg.Tracer.Len())
	}
}

// reportShrink is the shrink divisor recorded in the run report: the flag
// value for generated datasets, 0 when loading a prepared file (unknown).
func reportShrink(dataIn string, shrink int) int {
	if dataIn != "" {
		return 0
	}
	return shrink
}
