// Command dspdata generates, partitions and stores datasets on disk — the
// equivalent of the paper artifact's preprocessing step ("partition.sh
// products 4 ... The partitioned graph is stored under /data/ds/"). The
// saved .dspd file carries the layout-ordered graph, features, labels,
// per-GPU seed shards and the memory-scaling metadata, and can be loaded by
// dsptrain via -data.
//
// Usage:
//
//	dspdata -dataset papers -gpus 8 -out papers-8.dspd
//	dspdata -inspect papers-8.dspd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/train"
)

func main() {
	var (
		dsName  = flag.String("dataset", "products", "dataset: products, papers, friendster")
		gpus    = flag.Int("gpus", 4, "number of patches (1-8)")
		shrink  = flag.Int("shrink", 4, "dataset shrink divisor")
		out     = flag.String("out", "", "output path (default <dataset>-<gpus>.dspd)")
		hash    = flag.Bool("hash", false, "hash partitioning instead of METIS")
		inspect = flag.String("inspect", "", "print a stored file's summary and exit")
		seed    = flag.Uint64("seed", 13, "partitioner seed")
	)
	flag.Parse()

	if *inspect != "" {
		td, err := graphio.LoadFile(*inspect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspdata: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d nodes, %d adjacency entries, dim %d, %d classes\n",
			td.Name, td.G.NumNodes(), td.G.NumEdges(), td.FeatDim, td.NumClasses)
		fmt.Printf("patches: %d, scale factor %.0fx, GPU mem %.1f MB, bench batch %d\n",
			td.NumGPUs(), td.ScaleFactor, float64(td.GPUMemBytes)/(1<<20), td.BenchBatch)
		for g, s := range td.Shards {
			lo, hi := td.Offsets[g], td.Offsets[g+1]
			fmt.Printf("  patch %d: nodes [%d,%d), %d seeds\n", g, lo, hi, len(s))
		}
		return
	}

	std := gen.StandardDataset(*dsName, *shrink)
	fmt.Printf("generating %s (%d nodes)...\n", std.Config.Name, std.Config.Nodes)
	d := gen.Generate(std.Config)
	fmt.Printf("partitioning into %d patches (metis=%v)...\n", *gpus, !*hash)
	td := train.Prepare(d, *gpus, *seed, !*hash)
	td.ScaleFactor = std.ScaleFactor
	td.GPUMemBytes = std.GPUMemBytes()
	td.BenchBatch = std.BenchBatch

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%d.dspd", *dsName, *gpus)
	}
	if err := graphio.SaveFile(path, td); err != nil {
		fmt.Fprintf(os.Stderr, "dspdata: %v\n", err)
		os.Exit(1)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB)\n", path, float64(info.Size())/(1<<20))
}
