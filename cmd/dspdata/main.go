// Command dspdata generates, partitions and stores datasets on disk — the
// equivalent of the paper artifact's preprocessing step ("partition.sh
// products 4 ... The partitioned graph is stored under /data/ds/"). The
// saved .dspd file carries the layout-ordered graph, features, labels,
// per-GPU seed shards and the memory-scaling metadata, and can be loaded by
// dsptrain via -data.
//
// Usage:
//
//	dspdata -dataset papers -gpus 8 -out papers-8.dspd
//	dspdata -inspect papers-8.dspd
//	dspdata -preview papers-8.dspd -skew 1.2 -drift-every 0.1   # serving workload preview
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliopts"
	"repro/internal/featstore"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/train"
)

func main() {
	var (
		dsName  = flag.String("dataset", "products", "dataset: products, papers, friendster")
		gpus    = flag.Int("gpus", 4, "number of patches (1-8)")
		shrink  = flag.Int("shrink", 4, "dataset shrink divisor")
		out     = flag.String("out", "", "output path (default <dataset>-<gpus>.dspd)")
		hash    = flag.Bool("hash", false, "hash partitioning instead of METIS")
		inspect = flag.String("inspect", "", "print a stored file's summary and exit")
		preview = flag.String("preview", "", "preview the serving workload of a stored file and exit")
		skew    = flag.Float64("skew", 0.8, "preview: power-law popularity exponent")
		drift   = flag.Float64("drift-every", 0, "preview: popularity re-draw period in virtual seconds (0 = static)")
		draws   = flag.Int("draws", 20000, "preview: samples per phase")
		phases  = flag.Int("phases", 3, "preview: number of drift phases to sample")
		seed    = flag.Uint64("seed", 13, "partitioner (or preview) seed")
	)
	graphOpts := cliopts.RegisterGraph(flag.CommandLine)
	flag.Parse()

	if *preview != "" {
		td, err := graphio.LoadFile(*preview)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspdata: %v\n", err)
			os.Exit(1)
		}
		previewMemory(td.G)
		previewFeatureLayouts(td)
		previewWorkload(td, *skew, sim.Time(*drift), *draws, *phases, *seed)
		return
	}

	if *inspect != "" {
		td, err := graphio.LoadFile(*inspect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspdata: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d nodes, %d adjacency entries, dim %d, %d classes\n",
			td.Name, td.G.NumNodes(), td.G.NumEdges(), td.FeatDim, td.NumClasses)
		fmt.Printf("patches: %d, scale factor %.0fx, GPU mem %.1f MB, bench batch %d\n",
			td.NumGPUs(), td.ScaleFactor, float64(td.GPUMemBytes)/(1<<20), td.BenchBatch)
		for g, s := range td.Shards {
			lo, hi := td.Offsets[g], td.Offsets[g+1]
			fmt.Printf("  patch %d: nodes [%d,%d), %d seeds\n", g, lo, hi, len(s))
		}
		return
	}

	std := gen.StandardDataset(*dsName, *shrink)
	fmt.Printf("generating %s (%d nodes)...\n", std.Config.Name, std.Config.Nodes)
	d := gen.Generate(std.Config)
	fmt.Printf("partitioning into %d patches (metis=%v)...\n", *gpus, !*hash)
	td := train.Prepare(d, *gpus, *seed, !*hash)
	td.ScaleFactor = std.ScaleFactor
	td.GPUMemBytes = std.GPUMemBytes()
	td.BenchBatch = std.BenchBatch
	if graphOpts.Compress() {
		previewMemory(td.G)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%d.dspd", *dsName, *gpus)
	}
	if err := graphio.SaveFile(path, td); err != nil {
		fmt.Fprintf(os.Stderr, "dspdata: %v\n", err)
		os.Exit(1)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB)\n", path, float64(info.Size())/(1<<20))
}

// previewMemory prints the flat-vs-compressed topology storage estimate: what
// the adjacency costs as raw CSR versus delta-sorted varint blocks, so an
// operator can judge whether -graph-compress (or the -ooc tier) pays off
// before committing to a training run.
func previewMemory(g *graph.CSR) {
	flat := g.TopologyBytes()
	comp := graph.Compress(g).TopologyBytes()
	ratio := float64(flat) / float64(comp)
	fmt.Printf("topology: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("  flat CSR       %8.1f MB\n", float64(flat)/(1<<20))
	fmt.Printf("  compressed     %8.1f MB  (%.2fx smaller, delta-sorted varint)\n",
		float64(comp)/(1<<20), ratio)
}

// previewFeatureLayouts prints the per-GPU resident feature bytes under the
// two execution-strategy layouts — row partition (-strategy dsp: each GPU
// holds its patch's rows at full width) versus dimension slices (-strategy
// p3: each GPU holds every row of an F/world column slice) — so an operator
// can see which layout fits the fleet before picking a strategy.
func previewFeatureLayouts(td *train.Data) {
	n := td.NumGPUs()
	fmt.Printf("feature layouts: %d rows x dim %d (%.1f MB total)\n",
		td.G.NumNodes(), td.FeatDim,
		float64(td.G.NumNodes())*float64(td.RowBytes())/(1<<20))
	ds := featstore.BuildDimSliced(td.Feats, td.FeatDim, n)
	for g := 0; g < n; g++ {
		rows := int64(td.Offsets[g+1] - td.Offsets[g])
		rowBytes := rows * int64(td.RowBytes())
		fmt.Printf("  gpu%d: rows [%d,%d) %8.1f MB row-partitioned (dsp)  |  %d cols %8.1f MB dim-sliced (p3)\n",
			g, td.Offsets[g], td.Offsets[g+1], float64(rowBytes)/(1<<20),
			ds.SliceDim(g), float64(ds.CacheBytes(g))/(1<<20))
	}
}

// previewWorkload samples the serving popularity distribution per drift phase
// and prints how concentrated the traffic is (share of draws hitting the top
// 1% of nodes) and how it lands across the patches — the numbers that decide
// whether a static cache placement can hold up or the adaptive rebalancer has
// work to do.
func previewWorkload(td *train.Data, skew float64, drift sim.Time, draws, phases int, seed uint64) {
	w := serve.NewWorkload(td, skew)
	if drift > 0 {
		w.EnableDrift(drift, rng.Mix(seed, 0xD21F7))
	} else {
		phases = 1
	}
	n := td.G.NumNodes()
	top := n / 100
	if top < 1 {
		top = 1
	}
	fmt.Printf("workload preview: skew %.2f, drift every %gs, %d draws per phase\n",
		skew, float64(drift), draws)
	for ph := 0; ph < phases; ph++ {
		now := (sim.Time(ph) + 0.5) * drift
		r := rng.New(rng.Mix(seed, uint64(ph), 0x9E37))
		freq := make(map[graph.NodeID]int, draws)
		perGPU := make([]int, td.NumGPUs())
		for i := 0; i < draws; i++ {
			v := w.Draw(r, now)
			freq[v]++
			perGPU[w.Owner(v)]++
		}
		counts := make([]int, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		hot := 0
		for i := 0; i < len(counts) && i < top; i++ {
			hot += counts[i]
		}
		fmt.Printf("  phase %d: %d distinct nodes, top-1%% share %.1f%%, per-patch", ph, len(freq),
			100*float64(hot)/float64(draws))
		for g, c := range perGPU {
			fmt.Printf("  p%d %.0f%%", g, 100*float64(c)/float64(draws))
		}
		fmt.Println()
	}
}
