// Command dspprof analyses DSP runs: Chrome traces (from -trace) and run
// reports (from -report) feed the same pipeline profiler, which answers
// where the virtual time went — per-lane utilisation, queue/CCC stall
// attribution, the critical path, and comm/compute overlap — and A/B-diffs
// two reports as a perf-regression gate.
//
// Usage:
//
//	dspprof summary run.json            # trace or run report
//	dspprof critical-path trace.json    # what bounded the wall time
//	dspprof top trace.json -n 10        # hottest spans by self time
//	dspprof diff base.json cand.json -threshold 0.15   # exit 1 on regression
//	dspprof validate report.json        # schema check
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "critical-path":
		err = cmdCriticalPath(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "dspprof: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspprof: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dspprof summary <file>                      profile overview (trace or run report)
  dspprof critical-path <file> [-n N]         critical-path segments and decomposition
  dspprof top <file> [-n N]                   hottest spans by self time
  dspprof diff <base> <candidate> [-threshold T]  compare reports; exit 1 on regression
  dspprof validate <file>                     check a run report against the schema`)
}

// load reads a file and returns its profile plus, for run reports, the
// report itself (nil for raw traces). Traces are analysed on the spot.
func load(path string) (*prof.Profile, *prof.RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if prof.IsReportJSON(data) {
		r, err := prof.ParseReport(data)
		if err != nil {
			return nil, nil, err
		}
		return r.Profile, r, nil
	}
	t, err := prof.ParseTrace(data)
	if err != nil {
		return nil, nil, err
	}
	return prof.Analyze(t), nil, nil
}

// parseMixed parses args allowing flags and positional arguments in any
// order (stdlib flag stops at the first positional), returning the
// positionals.
func parseMixed(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return pos, nil
		}
		pos = append(pos, rest[0])
		args = rest[1:]
	}
}

func one(args []string, fs *flag.FlagSet) (string, error) {
	pos, err := parseMixed(fs, args)
	if err != nil {
		return "", err
	}
	if len(pos) != 1 {
		return "", fmt.Errorf("expected exactly one input file")
	}
	return pos[0], nil
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	path, err := one(args, fs)
	if err != nil {
		return err
	}
	p, r, err := load(path)
	if err != nil {
		return err
	}
	if r != nil {
		fmt.Printf("%s run: %s on %s, %d GPUs, seed %d\n", r.Command, r.System, r.Dataset, r.GPUs, r.Seed)
		fmt.Printf("wall time %.6gs\n", r.WallTime)
		if len(r.Stages) > 0 {
			keys := sortedKeys(r.Stages)
			fmt.Print("stage time ")
			for _, k := range keys {
				fmt.Printf(" %s %.4gs", k, r.Stages[k])
			}
			fmt.Println()
		}
		if r.Latency != nil {
			fmt.Printf("latency p50 %.4gms  p95 %.4gms  p99 %.4gms (n=%d)\n",
				1e3*r.Latency.P50, 1e3*r.Latency.P95, 1e3*r.Latency.P99, r.Latency.Count)
		}
		if r.Cache != nil {
			fmt.Printf("cache hit %.1f%% (local %d, peer %d, host %d)\n",
				100*r.Cache.HitRate, r.Cache.Local, r.Cache.Peer, r.Cache.Host)
		}
		if s := r.Strategy; s != nil {
			fmt.Printf("strategy %s: feature dim %d, slices %v\n", s.Name, s.FeatureDim, s.SliceDims)
			fmt.Printf("strategy %s: push %.2f MB  pull %.2f MB  partial %.3g flops  reduce %.2f MB  sharded params %d\n",
				s.Name, float64(s.PushBytes)/1e6, float64(s.PullBytes)/1e6,
				float64(s.PartialFlops), float64(s.ReduceBytes)/1e6, s.ShardedParams)
		}
		if s := r.Store; s != nil {
			comp := ""
			if s.Compressed {
				comp = ", compressed topology"
			}
			fmt.Printf("ooc store: %d blocks (%d topo%s), %.2f MB over a %.2f MB cache\n",
				s.Blocks, s.TopoBlocks, comp,
				float64(s.BlockBytes)/1e6, float64(s.CacheBytes)/1e6)
			fmt.Printf("ooc store: hit %.1f%% (%d/%d)  demand %.2f MB  stall %.4gs\n",
				100*s.HitRate, s.Hits, s.Hits+s.Misses, float64(s.DemandBytes)/1e6, s.StallTime)
			if s.PrefetchIssued > 0 {
				fmt.Printf("ooc store: prefetch %d issued, %d used (%.1f%% accuracy), %.2f MB\n",
					s.PrefetchIssued, s.PrefetchUsed, 100*s.PrefetchAccuracy,
					float64(s.PrefetchBytes)/1e6)
			}
		}
		if r.Serving != nil {
			fmt.Printf("serving: throughput %.0f req/s  shed %.1f%%  rounds %d\n",
				r.Serving.Throughput, 100*r.Serving.ShedRate, r.Serving.Rounds)
			if g := r.Serving.Goodput; g != nil {
				fmt.Printf("goodput: %d/%d within %.4gms SLO (%.1f%%)  %.0f good req/s\n",
					g.Good, g.Total, 1e3*g.SLO, 100*g.Fraction, g.Rate)
			}
			for _, tc := range r.Serving.Tenants {
				fmt.Printf("tenant %-10s admitted %d  rejected %d\n", tc.Name, tc.Admitted, tc.Rejected)
			}
		}
		if f := r.Fleet; f != nil {
			fmt.Printf("fleet router: %s policy, %d built, %d active at end, %d rerouted\n",
				f.Policy, f.Built, f.Active, f.Rerouted)
			if len(f.DeadFleets) > 0 {
				fmt.Printf("dead fleets: %v\n", f.DeadFleets)
			}
			for _, e := range f.PerFleet {
				fmt.Printf("  fleet%d %-8s routed %-6d completed %-6d p99 %.4gms",
					e.ID, e.State, e.Routed, e.Completed, 1e3*e.P99)
				if e.Rerouted > 0 || e.Lost > 0 {
					fmt.Printf("  rerouted %d  lost %d", e.Rerouted, e.Lost)
				}
				fmt.Println()
			}
			for _, e := range f.Scale {
				if e.Reason != "" {
					fmt.Printf("  scale %.4gs %s fleet%d (%s, p99 %.4gms)\n", e.At, e.Action, e.Fleet, e.Reason, 1e3*e.P99)
				} else {
					fmt.Printf("  scale %.4gs %s fleet%d (p99 %.4gms)\n", e.At, e.Action, e.Fleet, 1e3*e.P99)
				}
			}
		}
		if r.Faults != nil {
			fmt.Printf("faults: %d recoveries, mean MTTR %.4gms\n",
				len(r.Faults.Recoveries), 1e3*r.Faults.MeanMTTR)
		}
		if t := r.Telemetry; t != nil {
			fmt.Printf("telemetry: %d series, %d scrapes @ %.4gms cadence, %d samples retained",
				t.Series, t.Scrapes, 1e3*t.Interval, t.Samples)
			if t.Dropped > 0 {
				fmt.Printf(" (%d dropped)", t.Dropped)
			}
			fmt.Println()
			if t.Requests > 0 || t.Shed > 0 {
				fmt.Printf("telemetry: %d requests observed, %d shed, bad fraction %.4g, %d exemplars\n",
					t.Requests, t.Shed, t.BadFraction, t.Exemplars)
			}
			for _, ru := range t.Rules {
				fmt.Printf("  rule %-8s burn>%.3g over %.3gs/%.3gs windows  fired %d\n",
					ru.Name, ru.Burn, ru.Short, ru.Long, ru.Fired)
			}
			for _, a := range t.Alerts {
				fmt.Printf("  alert %-8s [%.4gs, %.4gs] peak burn %.3g\n",
					a.Rule, a.Start, a.End, a.Peak)
			}
		}
	}
	if p == nil {
		if r != nil {
			fmt.Println("(no profile section — rerun with -trace or -report)")
			return nil
		}
		return fmt.Errorf("no profile available")
	}
	fmt.Printf("profile window [%.6g, %.6g]s\n", p.Window.Start, p.Window.End)
	fmt.Printf("pipeline overlap %.1f%%  comm/compute overlap %.1f%%\n",
		100*p.PipelineOverlap, 100*p.CommComputeOverlap)
	fmt.Printf("stalls: queue %.4gs  ccc %.4gs  (%d events)\n",
		p.Stalls.QueueWait, p.Stalls.CCCWait, p.Stalls.Count)
	if len(p.Lanes) > 0 {
		fmt.Printf("%-10s %-16s %10s %10s %7s %8s\n", "gpu", "lane", "busy(s)", "stall(s)", "util", "spans")
		for _, l := range p.Lanes {
			fmt.Printf("%-10s %-16s %10.4g %10.4g %6.1f%% %8d\n",
				l.GPU, l.Lane, l.Busy, l.Stall, 100*l.Util, l.Count)
		}
	}
	return nil
}

func cmdCriticalPath(args []string) error {
	fs := flag.NewFlagSet("critical-path", flag.ContinueOnError)
	n := fs.Int("n", 30, "max segments to print (0 = all)")
	path, err := one(args, fs)
	if err != nil {
		return err
	}
	p, _, err := load(path)
	if err != nil {
		return err
	}
	if p == nil {
		return fmt.Errorf("no profile section in %s", path)
	}
	fmt.Printf("critical path: %d segments over [%.6g, %.6g]s\n",
		len(p.CriticalPath), p.Window.Start, p.Window.End)
	if len(p.CriticalPathByCat) > 0 {
		fmt.Print("by category:")
		for _, k := range sortedKeys(p.CriticalPathByCat) {
			fmt.Printf("  %s %.4gs", k, p.CriticalPathByCat[k])
		}
		fmt.Println()
	}
	if len(p.CriticalPathByLane) > 0 {
		type kv struct {
			k string
			v float64
		}
		lanes := make([]kv, 0, len(p.CriticalPathByLane))
		for k, v := range p.CriticalPathByLane {
			lanes = append(lanes, kv{k, v})
		}
		sort.Slice(lanes, func(i, j int) bool {
			if lanes[i].v != lanes[j].v {
				return lanes[i].v > lanes[j].v
			}
			return lanes[i].k < lanes[j].k
		})
		fmt.Println("by lane:")
		for _, l := range lanes {
			fmt.Printf("  %-28s %.4gs\n", l.k, l.v)
		}
	}
	segs := p.CriticalPath
	if *n > 0 && len(segs) > *n {
		fmt.Printf("segments (first %d of %d):\n", *n, len(segs))
		segs = segs[:*n]
	} else {
		fmt.Println("segments:")
	}
	for _, s := range segs {
		where := s.Cat
		if s.Cat != "idle" {
			where = s.GPU + "/" + s.Lane
		}
		fmt.Printf("  [%.6g, %.6g] %-10.4g %-28s %s\n", s.Start, s.End, s.End-s.Start, where, s.Name)
	}
	return nil
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	n := fs.Int("n", 20, "rows to print")
	cat := fs.String("cat", "", "only spans in this category (e.g. kernel, comm, serve)")
	pid := fs.Int("pid", -1, "only spans on this process lane / GPU id (raw traces only)")
	path, err := one(args, fs)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []prof.SpanAgg
	if prof.IsReportJSON(data) {
		if *pid >= 0 {
			return fmt.Errorf("top -pid requires a raw trace (a report's span table is aggregated across lanes)")
		}
		r, err := prof.ParseReport(data)
		if err != nil {
			return err
		}
		if r.Profile == nil {
			return fmt.Errorf("no profile section in %s", path)
		}
		rows = r.Profile.TopSpans
		if *cat != "" {
			kept := rows[:0:0]
			for _, a := range rows {
				if a.Cat == *cat {
					kept = append(kept, a)
				}
			}
			rows = kept
		}
	} else {
		t, err := prof.ParseTrace(data)
		if err != nil {
			return err
		}
		rows = prof.FilteredTopSpans(t, *cat, *pid, 0)
	}
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}
	fmt.Printf("%-32s %-8s %8s %12s %12s\n", "name", "cat", "count", "total(s)", "self(s)")
	for _, a := range rows {
		fmt.Printf("%-32s %-8s %8d %12.4g %12.4g\n", a.Name, a.Cat, a.Count, a.Total, a.Self)
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "tolerated relative worsening before a metric counts as a regression")
	pos, err := parseMixed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 2 {
		return fmt.Errorf("diff needs exactly two run-report files")
	}
	a, err := prof.ReadReportFile(pos[0])
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	b, err := prof.ReadReportFile(pos[1])
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	d := prof.Diff(a, b, *threshold)
	d.WriteText(os.Stdout)
	if d.Regressions > 0 {
		os.Exit(1)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	path, err := one(args, fs)
	if err != nil {
		return err
	}
	r, err := prof.ReadReportFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid %s report (%s on %s, wall time %.6gs)\n",
		path, r.Schema, r.Command, r.Dataset, r.WallTime)
	if r.Profile != nil && r.Profile.DroppedEvents > 0 {
		fmt.Printf("warning: trace ring dropped %d events; span aggregates undercount the run (raise -trace-max-events)\n",
			r.Profile.DroppedEvents)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
