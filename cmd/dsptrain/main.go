// Command dsptrain trains a GNN end to end with DSP on the simulated
// multi-GPU machine and reports per-epoch progress: virtual epoch time,
// training accuracy and validation accuracy.
//
// Usage:
//
//	dsptrain -dataset products -gpus 4 -epochs 5
//	dsptrain -dataset papers -gpus 8 -arch gcn -shrink 8
//	dsptrain -system dgl-uva -dataset products -gpus 2
//
// Fault tolerance (-system dsp only): -faults injects a deterministic fault
// schedule and -ckpt-every sets the checkpoint cadence; a GPU crash restarts
// the fleet from the last checkpoint and replays, converging to the same
// final model as a crash-free run.
//
//	dsptrain -faults 'crash@gpu2:t=1.5' -ckpt-every 50
//	dsptrain -faults 'stall@gpu0:t=0.8+50ms,degrade@gpu1-gpu2:t=0.3+20ms:x4'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/cliopts"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/prof"
	"repro/internal/sample"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	var (
		dsName  = flag.String("dataset", "products", "dataset: products, papers, friendster")
		gpus    = flag.Int("gpus", 4, "simulated GPU count (1-8)")
		epochs  = flag.Int("epochs", 5, "training epochs")
		archStr = flag.String("arch", "sage", "model: sage or gcn")
		hidden  = flag.Int("hidden", 64, "hidden units (paper uses 256; smaller is faster on the host)")
		batch   = flag.Int("batch", 512, "batch size")
		shrink  = flag.Int("shrink", 4, "dataset shrink divisor")
		sysName = flag.String("system", "dsp", "system: dsp, dsp-seq, pyg, dgl-cpu, dgl-uva, quiver")
		seed    = flag.Uint64("seed", 1, "run seed")
		traceTo = flag.String("trace", "", "write a Chrome trace of the run to this file")
		dataIn  = flag.String("data", "", "load a prepared .dspd dataset (from dspdata) instead of generating")
		saveTo  = flag.String("save", "", "write the trained model checkpoint to this file")
		loadFm  = flag.String("load", "", "initialise the model from a checkpoint before training")
		ckptEv  = flag.Int("ckpt-every", 0,
			"checkpoint cadence in steps, 0 = epoch boundaries only (with -faults or alone to measure overhead)")
		ckptTo = flag.String("ckpt-file", "", "mirror every committed training checkpoint to this file")
	)
	common := cliopts.Register(flag.CommandLine)
	common.RegisterGrad(flag.CommandLine)
	graphOpts := cliopts.RegisterGraph(flag.CommandLine)
	teleOpts := cliopts.RegisterTelemetry(flag.CommandLine)
	flag.Parse()

	var td *train.Data
	if *dataIn != "" {
		var err error
		td, err = graphio.LoadFile(*dataIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
			os.Exit(1)
		}
		*gpus = td.NumGPUs()
		fmt.Printf("loaded %s: %d nodes, %d patches\n", *dataIn, td.G.NumNodes(), *gpus)
	} else {
		std := gen.StandardDataset(*dsName, *shrink)
		fmt.Printf("generating %s (%d nodes, scale factor %.0fx)...\n",
			std.Config.Name, std.Config.Nodes, std.ScaleFactor)
		d := gen.Generate(std.Config)
		fmt.Printf("partitioning into %d patches...\n", *gpus)
		td = train.Prepare(d, *gpus, 13, true)
		td.ScaleFactor = std.ScaleFactor
		td.GPUMemBytes = std.GPUMemBytes()
	}

	faults, err := common.FaultSchedule(*gpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(2)
	}
	ftMode := len(faults) > 0 || *ckptEv > 0 || *ckptTo != ""
	if ftMode && !strings.HasPrefix(strings.ToLower(*sysName), "dsp") {
		fmt.Fprintf(os.Stderr, "dsptrain: -faults/-ckpt-every/-ckpt-file require -system dsp or dsp-seq\n")
		os.Exit(2)
	}

	arch := nn.SAGE
	if strings.EqualFold(*archStr, "gcn") {
		arch = nn.GCN
	}
	opts := train.Options{
		Data:        td,
		Model:       nn.Config{Arch: arch, InDim: td.FeatDim, Hidden: *hidden, Classes: td.NumClasses, Layers: 3},
		Sample:      sample.Config{Fanout: []int{10, 10, 5}},
		BatchSize:   *batch,
		RealCompute: true,
		Pipeline:    true,
		UseCCC:      true,
		LR:          0.003,
		Seed:        *seed,
		Faults:      faults,
		Parallel:    common.Parallel(),
	}
	opts.DynamicCache, err = common.Policy()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(2)
	}
	opts.FeatureCacheBudget = common.CacheBudget()
	kind, err := common.StrategyKind()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(2)
	}
	if kind == strategy.KindP3 && strings.ToLower(*sysName) != "dsp" {
		fmt.Fprintf(os.Stderr, "dsptrain: -strategy p3 requires -system dsp\n")
		os.Exit(2)
	}
	opts.Strategy = string(kind)
	if opts.GradCodec, err = common.GradCodec(*seed); err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(2)
	}
	if opts.FeatCodec, err = common.FeatCodec(*seed); err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(2)
	}
	if opts.GradCodec != nil || opts.FeatCodec != nil {
		fmt.Printf("compression: grad=%s feat=%s\n",
			compress.Name(opts.GradCodec), compress.Name(opts.FeatCodec))
	}
	opts.CompressTopology = graphOpts.Compress()
	opts.OOC = graphOpts.OOC()
	opts.OOCBudget = graphOpts.OOCBudget()
	opts.OOCNoPrefetch = graphOpts.OOCNoPrefetch()
	if desc := graphOpts.Describe(); desc != "" {
		fmt.Printf("graph storage: %s\n", desc)
	}

	var sys train.System
	switch strings.ToLower(*sysName) {
	case "dsp":
		sys, err = core.New(opts)
	case "dsp-seq":
		opts.Pipeline = false
		sys, err = core.New(opts)
	case "pyg":
		sys, err = baselines.New(baselines.PyG, opts)
	case "dgl-cpu":
		sys, err = baselines.New(baselines.DGLCPU, opts)
	case "dgl-uva":
		sys, err = baselines.New(baselines.DGLUVA, opts)
	case "quiver":
		sys, err = baselines.New(baselines.Quiver, opts)
	default:
		fmt.Fprintf(os.Stderr, "dsptrain: unknown system %q\n", *sysName)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(1)
	}

	// -report profiles the run from trace events, so it records an
	// in-memory trace even when -trace was not requested.
	var tracer *trace.Tracer
	if *traceTo != "" || common.ReportPath() != "" {
		tracer = trace.New()
		tracer.SetMaxEvents(common.TraceMaxEvents())
		sys.Machine().SetTracer(tracer)
	}

	hub := teleOpts.Hub(0)
	if hub.Enabled() {
		if ftMode {
			// The fault-tolerant driver rebuilds a fresh engine per recovery
			// attempt; the hub's scraper daemon would die with the first one.
			fmt.Fprintf(os.Stderr, "dsptrain: -telemetry is incompatible with -faults/-ckpt-every/-ckpt-file\n")
			os.Exit(2)
		}
		at, ok := sys.(interface{ AttachTelemetry(*telemetry.Hub) })
		if !ok {
			fmt.Fprintf(os.Stderr, "dsptrain: -telemetry requires -system dsp or dsp-seq\n")
			os.Exit(2)
		}
		at.AttachTelemetry(hub)
	}
	if *loadFm != "" {
		ck, err := nn.LoadFile(*loadFm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
			os.Exit(1)
		}
		if ck.Cfg != opts.Model {
			fmt.Fprintf(os.Stderr, "dsptrain: checkpoint config %+v does not match model %+v\n", ck.Cfg, opts.Model)
			os.Exit(1)
		}
		// Every replica starts from the checkpoint (BSP keeps them equal).
		buf := make([]float32, ck.ParamCount())
		ck.ParamVector(buf)
		for _, m := range trainerModels(sys) {
			i := 0
			for _, p := range m.Params {
				copy(p.W.Data, buf[i:i+len(p.W.Data)])
				i += len(p.W.Data)
			}
		}
		fmt.Printf("loaded checkpoint %s\n", *loadFm)
	}

	fmt.Printf("training %s with %s on %d simulated GPUs\n", opts.Model.Arch, sys.Name(), *gpus)
	if ftMode {
		rec, ok := sys.(train.Recoverable)
		if !ok {
			fmt.Fprintf(os.Stderr, "dsptrain: %s does not support the fault-tolerant driver\n", sys.Name())
			os.Exit(2)
		}
		if len(faults) > 0 {
			fmt.Printf("fault schedule: %s\n", fault.FormatSpec(faults))
		}
		mgr := &ckpt.Manager{EverySteps: *ckptEv, Path: *ckptTo}
		rep, err := train.RunRecoverable(rec, *epochs, mgr,
			func() (train.Recoverable, error) {
				ns, err := core.New(opts)
				if err == nil && tracer != nil {
					ns.Machine().SetTracer(tracer)
				}
				return ns, err
			})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("epoch  sim-time(s)  train-acc  sample-MB  feature-MB")
		var cum float64
		for e, st := range rep.Epochs {
			cum += float64(st.EpochTime)
			fmt.Printf("%5d  %11.4g  %9.3f  %9.1f  %10.1f\n",
				e, cum, st.Acc(), float64(st.SampleWire)/(1<<20), float64(st.FeatureWire)/(1<<20))
		}
		fmt.Printf("total virtual time %.4gs  checkpoints %d (%.1f MB, overhead %.2f%%)\n",
			float64(rep.TotalTime), rep.Ckpt.Checkpoints,
			float64(rep.Ckpt.Bytes)/(1<<20), rep.Ckpt.OverheadPercent(rep.TotalTime))
		for _, rc := range rep.Recoveries {
			fmt.Printf("crash gpu%d at %.4gs: restore %.3gms, replayed %d steps, MTTR %.3gms\n",
				rc.GPU, float64(rc.CrashAt), 1e3*float64(rc.RestoreTime), rc.ReplaySteps, 1e3*float64(rc.MTTR))
		}
		if n := len(rep.Recoveries); n > 0 {
			fmt.Printf("recovered from %d crash(es), mean MTTR %.3gms\n", n, 1e3*float64(rep.MTTR()))
		}
		// The final model lives in the last committed checkpoint (the running
		// system may have been rebuilt since sys was constructed).
		final := nn.NewModel(opts.Model, opts.Seed)
		if last := mgr.Last(); last != nil && last.Params != nil {
			final.SetParamVector(last.Params)
		}
		fmt.Printf("final validation accuracy %.3f\n", train.Evaluate(td, final, opts.Sample, 2000, 99))
		if *saveTo != "" {
			if err := final.SaveFile(*saveTo); err != nil {
				fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("saved model checkpoint to %s\n", *saveTo)
		}
		if err := common.WriteReport(train.BuildRunReport(train.ReportInput{
			Command: "dsptrain", System: sys.Name(), Dataset: td.Name,
			GPUs: *gpus, Seed: *seed, Shrink: reportShrink(*dataIn, *shrink),
			CachePolicy: opts.DynamicCache,
			Epochs:      rep.Epochs, FT: rep,
			Tracer: tracer, Compression: compressionOf(sys),
			Store: oocStatsOf(sys), Strategy: strategySectionOf(sys),
		})); err != nil {
			fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
			os.Exit(1)
		}
		writeTrace(tracer, *traceTo)
		return
	}
	fmt.Println("epoch  sim-time(s)  train-acc  val-acc   sample-MB  feature-MB")
	var (
		cum      float64
		allStats []train.EpochStats
		valAccs  []float64
	)
	for e := 0; e < *epochs; e++ {
		st, err := sys.RunEpoch(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsptrain: epoch %d: %v\n", e, err)
			os.Exit(1)
		}
		cum += float64(st.EpochTime)
		valAcc := train.Evaluate(td, sys.Model(), opts.Sample, 2000, 99)
		allStats = append(allStats, st)
		valAccs = append(valAccs, valAcc)
		fmt.Printf("%5d  %11.4g  %9.3f  %7.3f  %9.1f  %10.1f\n",
			e, cum, st.Acc(), valAcc,
			float64(st.SampleWire)/(1<<20), float64(st.FeatureWire)/(1<<20))
		if total := st.CacheLocal + st.CachePeer + st.CacheHost; total > 0 && opts.DynamicCache != cache.Static {
			fmt.Printf("       cache hit %.1f%% (local %d, nvlink %d, host %d)  promoted %d rows, %.1f MB, %.3gms\n",
				100*float64(st.CacheLocal+st.CachePeer)/float64(total),
				st.CacheLocal, st.CachePeer, st.CacheHost,
				st.CachePromoted, float64(st.RebalanceBytes)/(1<<20), 1e3*float64(st.RebalanceTime))
		}
	}
	if *saveTo != "" {
		if err := sys.Model().SaveFile(*saveTo); err != nil {
			fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved model checkpoint to %s\n", *saveTo)
	}
	doc, err := teleOpts.Finish(hub, sys.Machine().Eng.Now())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(1)
	}
	in := train.ReportInput{
		Command: "dsptrain", System: sys.Name(), Dataset: td.Name,
		GPUs: *gpus, Seed: *seed, Shrink: reportShrink(*dataIn, *shrink),
		CachePolicy: opts.DynamicCache,
		Epochs:      allStats, ValAcc: valAccs,
		Tracer: tracer, Compression: compressionOf(sys),
		Store: oocStatsOf(sys), Strategy: strategySectionOf(sys),
	}
	if doc != nil {
		in.Telemetry = doc.Section()
	}
	if err := common.WriteReport(train.BuildRunReport(in)); err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(1)
	}
	writeTrace(tracer, *traceTo)
}

// reportShrink is the shrink divisor recorded in the run report: the flag
// value for generated datasets, 0 when loading a prepared file (unknown).
func reportShrink(dataIn string, shrink int) int {
	if dataIn != "" {
		return 0
	}
	return shrink
}

// oocStatsOf extracts out-of-core store accounting from systems that have the
// tier (DSP with -ooc; zero Stats otherwise).
func oocStatsOf(sys train.System) store.Stats {
	if h, ok := sys.(interface{ OOCStats() store.Stats }); ok {
		return h.OOCStats()
	}
	return store.Stats{}
}

// strategySectionOf extracts the execution strategy's report section from
// systems that carry one (DSP; nil for the default dsp strategy, whose
// reports stay byte-identical to the pre-strategy-layer schema).
func strategySectionOf(sys train.System) *prof.StrategySection {
	if h, ok := sys.(interface{ StrategySection() *prof.StrategySection }); ok {
		return h.StrategySection()
	}
	return nil
}

// compressionOf extracts codec accounting from systems that track it (DSP).
func compressionOf(sys train.System) map[hw.TrafficClass]comm.CompressionStats {
	if c, ok := sys.(interface {
		Compression() map[hw.TrafficClass]comm.CompressionStats
	}); ok {
		return c.Compression()
	}
	return nil
}

// writeTrace dumps the Chrome trace, if tracing was requested (-report alone
// records in memory without writing a trace file).
func writeTrace(tracer *trace.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(1)
	}
	if err := tracer.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "dsptrain: %v\n", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %d trace spans to %s (open in chrome://tracing)\n", tracer.Len(), path)
}

// trainerModels returns every model replica of a system so a checkpoint can
// be broadcast into all of them.
func trainerModels(sys train.System) []*nn.Model {
	type replicaHolder interface{ Replicas() []*nn.Model }
	if h, ok := sys.(replicaHolder); ok {
		return h.Replicas()
	}
	if m := sys.Model(); m != nil {
		return []*nn.Model{m}
	}
	return nil
}
