// Package nn implements the dense math for GNN training: a small matrix
// library, GraphSAGE and GCN models with manual backpropagation, losses and
// optimizers. The math is real — Figure 9's learning curves come from
// genuine gradient descent — and every floating-point operation executed is
// counted so the simulated GPUs can be charged the equivalent kernel time.
package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	R, C int
	Data []float32
}

// NewMatrix allocates a zero matrix.
func NewMatrix(r, c int) *Matrix {
	return &Matrix{R: r, C: c, Data: make([]float32, r*c)}
}

// Row returns row i as a slice view.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.C : (i+1)*m.C] }

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// GlorotInit fills the matrix with Glorot-uniform values.
func (m *Matrix) GlorotInit(r *rng.RNG) {
	limit := float32(math.Sqrt(6.0 / float64(m.R+m.C)))
	for i := range m.Data {
		m.Data[i] = (2*float32(r.Float64()) - 1) * limit
	}
}

// flops accumulates the floating-point operations executed by this package;
// callers snapshot it around a training step to charge simulated kernels.
// It is package-level because model forward/backward spans many helpers; the
// simulator is single-threaded per step so no synchronisation is needed.
var flops int64

// FlopCount returns the cumulative FLOPs executed so far.
func FlopCount() int64 { return flops }

// MatMul computes out = a @ b (a: m×k, b: k×n). out must be m×n and is
// overwritten. The inner loops are ordered i-k-j for streaming access.
func MatMul(out, a, b *Matrix) {
	if a.C != b.R || out.R != a.R || out.C != b.C {
		panic(fmt.Sprintf("nn: matmul shape (%dx%d)@(%dx%d)->(%dx%d)", a.R, a.C, b.R, b.C, out.R, out.C))
	}
	out.Zero()
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k := 0; k < a.C; k++ {
			av := ar[k]
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j := range br {
				or[j] += av * br[j]
			}
		}
	}
	flops += 2 * int64(a.R) * int64(a.C) * int64(b.C)
}

// MatMulAT computes out = aᵀ @ b (a: k×m, b: k×n, out: m×n) — the weight-
// gradient product of backprop.
func MatMulAT(out, a, b *Matrix) {
	if a.R != b.R || out.R != a.C || out.C != b.C {
		panic("nn: matmulAT shape")
	}
	out.Zero()
	for k := 0; k < a.R; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := out.Row(i)
			for j := range br {
				or[j] += av * br[j]
			}
		}
	}
	flops += 2 * int64(a.R) * int64(a.C) * int64(b.C)
}

// MatMulBT computes out = a @ bᵀ (a: m×k, b: n×k, out: m×n) — the input-
// gradient product of backprop.
func MatMulBT(out, a, b *Matrix) {
	if a.C != b.C || out.R != a.R || out.C != b.R {
		panic("nn: matmulBT shape")
	}
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for j := 0; j < b.R; j++ {
			br := b.Row(j)
			var s float32
			for k := range ar {
				s += ar[k] * br[k]
			}
			or[j] = s
		}
	}
	flops += 2 * int64(a.R) * int64(a.C) * int64(b.R)
}

// AddBiasInPlace adds bias (1×C) to every row of m.
func AddBiasInPlace(m *Matrix, bias []float32) {
	for i := 0; i < m.R; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] += bias[j]
		}
	}
	flops += int64(m.R) * int64(m.C)
}

// ReLUInPlace applies max(0, x); mask records the active entries for the
// backward pass.
func ReLUInPlace(m *Matrix, mask []bool) {
	for i, v := range m.Data {
		if v > 0 {
			mask[i] = true
		} else {
			mask[i] = false
			m.Data[i] = 0
		}
	}
	flops += int64(len(m.Data))
}

// ReLUBackwardInPlace zeroes gradient entries where the activation was
// clamped.
func ReLUBackwardInPlace(g *Matrix, mask []bool) {
	for i := range g.Data {
		if !mask[i] {
			g.Data[i] = 0
		}
	}
}

// SoftmaxCrossEntropy computes mean cross-entropy loss and accuracy over
// logits (rows) vs labels, and writes dlogits = (softmax - onehot)/rows.
func SoftmaxCrossEntropy(logits *Matrix, labels []int32, dlogits *Matrix) (loss float64, correct int) {
	rows := logits.R
	if rows == 0 {
		return 0, 0
	}
	for i := 0; i < rows; i++ {
		lr := logits.Row(i)
		dr := dlogits.Row(i)
		maxV, argmax := lr[0], 0
		for j, v := range lr {
			if v > maxV {
				maxV, argmax = v, j
			}
		}
		if int32(argmax) == labels[i] {
			correct++
		}
		var sum float64
		for j, v := range lr {
			e := math.Exp(float64(v - maxV))
			dr[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dr {
			dr[j] *= inv
		}
		loss += -math.Log(float64(dr[labels[i]]) + 1e-12)
		dr[labels[i]] -= 1
		for j := range dr {
			dr[j] /= float32(rows)
		}
	}
	flops += 5 * int64(rows) * int64(logits.C)
	return loss / float64(rows), correct
}
