package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sample"
)

// Arch selects the GNN architecture.
type Arch int

const (
	// SAGE is GraphSAGE with mean aggregation and a separate self weight.
	SAGE Arch = iota
	// GCN uses a single weight over the degree-normalised sum of self and
	// neighbours — computationally lighter than GraphSAGE, as the paper
	// notes when explaining Table 5.
	GCN
	// GAT is a single-head graph attention network — per-edge attention
	// makes it computationally heavier than GraphSAGE (see gat.go).
	GAT
)

func (a Arch) String() string {
	switch a {
	case GCN:
		return "GCN"
	case GAT:
		return "GAT"
	default:
		return "GraphSAGE"
	}
}

// Config describes a model: Layers hops with Hidden units and a final
// Classes-way output. The paper's default is a 3-layer GraphSAGE with
// hidden size 256.
type Config struct {
	Arch    Arch
	InDim   int
	Hidden  int
	Classes int
	Layers  int
}

func (c Config) dims(l int) (in, out int) {
	in = c.Hidden
	if l == 0 {
		in = c.InDim
	}
	out = c.Hidden
	if l == c.Layers-1 {
		out = c.Classes
	}
	return in, out
}

// Param is one weight matrix with its gradient accumulator.
type Param struct {
	Name string
	W    *Matrix
	G    *Matrix
}

// Model is a GNN with manual backpropagation.
type Model struct {
	Cfg    Config
	Params []*Param

	// Per-layer parameter handles.
	wSelf, wNeigh, bias []*Param // wSelf unused for GCN/GAT
	// attSrc/attDst are GAT's attention vectors (nil otherwise).
	attSrc, attDst []*Param
}

// NewModel builds a model with Glorot-initialised weights, deterministically
// from seed.
func NewModel(cfg Config, seed uint64) *Model {
	if cfg.Layers < 1 {
		panic("nn: model needs at least one layer")
	}
	m := &Model{Cfg: cfg}
	r := rng.New(seed)
	addParam := func(name string, rows, cols int) *Param {
		p := &Param{Name: name, W: NewMatrix(rows, cols), G: NewMatrix(rows, cols)}
		p.W.GlorotInit(r)
		m.Params = append(m.Params, p)
		return p
	}
	for l := 0; l < cfg.Layers; l++ {
		in, out := cfg.dims(l)
		if cfg.Arch == SAGE {
			m.wSelf = append(m.wSelf, addParam(fmt.Sprintf("l%d.self", l), in, out))
		} else {
			m.wSelf = append(m.wSelf, nil)
		}
		m.wNeigh = append(m.wNeigh, addParam(fmt.Sprintf("l%d.neigh", l), in, out))
		if cfg.Arch == GAT {
			m.attSrc = append(m.attSrc, addParam(fmt.Sprintf("l%d.attsrc", l), 1, out))
			m.attDst = append(m.attDst, addParam(fmt.Sprintf("l%d.attdst", l), 1, out))
		} else {
			m.attSrc = append(m.attSrc, nil)
			m.attDst = append(m.attDst, nil)
		}
		m.bias = append(m.bias, addParam(fmt.Sprintf("l%d.bias", l), 1, out))
	}
	return m
}

// ParamCount returns the total number of scalar parameters.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Params {
		n += len(p.W.Data)
	}
	return n
}

// GradVector copies all gradients into buf (len ParamCount) for allreduce.
func (m *Model) GradVector(buf []float32) {
	i := 0
	for _, p := range m.Params {
		copy(buf[i:], p.G.Data)
		i += len(p.G.Data)
	}
}

// SetGradVector writes buf back into the gradient matrices.
func (m *Model) SetGradVector(buf []float32) {
	i := 0
	for _, p := range m.Params {
		copy(p.G.Data, buf[i:i+len(p.G.Data)])
		i += len(p.G.Data)
	}
}

// ParamVector copies all weights into buf (for replica-equality checks).
func (m *Model) ParamVector(buf []float32) {
	i := 0
	for _, p := range m.Params {
		copy(buf[i:], p.W.Data)
		i += len(p.W.Data)
	}
}

// SetParamVector writes buf (len ParamCount, ParamVector layout) back into
// the weight matrices — checkpoint restore and replica broadcast.
func (m *Model) SetParamVector(buf []float32) {
	i := 0
	for _, p := range m.Params {
		copy(p.W.Data, buf[i:i+len(p.W.Data)])
		i += len(p.W.Data)
	}
}

// ZeroGrads clears all gradient accumulators.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params {
		p.G.Zero()
	}
}

// layerCache holds forward intermediates needed by backward.
type layerCache struct {
	block  *sample.Block
	x      *Matrix // layer input (inputNodes × in)
	self   *Matrix // rows of x at DstLocal (dst × in)
	agg    *Matrix // aggregated neighbours (dst × in)
	mask   []bool  // ReLU mask (nil on the output layer)
	counts []int32 // per-dst sample counts
	gat    *gatCache
}

// Forward computes logits for the batch seeds. feats holds the raw features
// of mb.InputNodes() in order, row-major with m.Cfg.InDim columns. The
// returned cache drives Backward.
func (m *Model) Forward(mb *sample.MiniBatch, feats []float32) (*Matrix, []*layerCache) {
	inputs := mb.InputNodes()
	x := &Matrix{R: len(inputs), C: m.Cfg.InDim, Data: feats}
	caches := make([]*layerCache, 0, m.Cfg.Layers)
	for l, block := range mb.Blocks {
		in, out := m.Cfg.dims(l)
		if x.C != in {
			panic(fmt.Sprintf("nn: layer %d input dim %d, want %d", l, x.C, in))
		}
		if m.Cfg.Arch == GAT {
			h, gc := m.forwardGAT(l, block, x)
			caches = append(caches, &layerCache{gat: gc})
			x = h
			continue
		}
		c := &layerCache{block: block, x: x}
		c.counts = make([]int32, len(block.Dst))
		for i := range block.Dst {
			c.counts[i] = block.SrcPtr[i+1] - block.SrcPtr[i]
		}
		// Gather self rows and aggregate neighbour rows.
		c.self = NewMatrix(len(block.Dst), in)
		c.agg = NewMatrix(len(block.Dst), in)
		for i := range block.Dst {
			copy(c.self.Row(i), x.Row(int(block.DstLocal[i])))
			ar := c.agg.Row(i)
			for e := block.SrcPtr[i]; e < block.SrcPtr[i+1]; e++ {
				xr := x.Row(int(block.SrcLocal[e]))
				for j := range ar {
					ar[j] += xr[j]
				}
			}
			switch m.Cfg.Arch {
			case SAGE:
				if c.counts[i] > 0 {
					inv := 1 / float32(c.counts[i])
					for j := range ar {
						ar[j] *= inv
					}
				}
			case GCN:
				// Normalised sum including self.
				sr := c.self.Row(i)
				inv := 1 / float32(c.counts[i]+1)
				for j := range ar {
					ar[j] = (ar[j] + sr[j]) * inv
				}
			}
		}
		flops += 2 * int64(len(block.Src)) * int64(in)
		// Dense transform.
		h := NewMatrix(len(block.Dst), out)
		if m.Cfg.Arch == SAGE {
			MatMul(h, c.self, m.wSelf[l].W)
			tmp := NewMatrix(len(block.Dst), out)
			MatMul(tmp, c.agg, m.wNeigh[l].W)
			for i := range h.Data {
				h.Data[i] += tmp.Data[i]
			}
			flops += int64(len(h.Data))
		} else {
			MatMul(h, c.agg, m.wNeigh[l].W)
		}
		AddBiasInPlace(h, m.bias[l].W.Data)
		if l < m.Cfg.Layers-1 {
			c.mask = make([]bool, len(h.Data))
			ReLUInPlace(h, c.mask)
		}
		caches = append(caches, c)
		x = h
	}
	return x, caches
}

// Backward propagates dlogits through the cached layers, accumulating
// parameter gradients.
func (m *Model) Backward(caches []*layerCache, dlogits *Matrix) {
	dh := dlogits
	for l := len(caches) - 1; l >= 0; l-- {
		c := caches[l]
		if c.gat != nil {
			dh = m.backwardGAT(l, c.gat, dh)
			continue
		}
		in, _ := m.Cfg.dims(l)
		if c.mask != nil {
			ReLUBackwardInPlace(dh, c.mask)
		}
		// Bias gradient: column sums.
		bg := m.bias[l].G
		for i := 0; i < dh.R; i++ {
			r := dh.Row(i)
			for j := range r {
				bg.Data[j] += r[j]
			}
		}
		flops += int64(dh.R) * int64(dh.C)
		dSelf := NewMatrix(dh.R, in)
		dAgg := NewMatrix(dh.R, in)
		if m.Cfg.Arch == SAGE {
			gw := NewMatrix(in, dh.C)
			MatMulAT(gw, c.self, dh)
			addInto(m.wSelf[l].G, gw)
			MatMulAT(gw, c.agg, dh)
			addInto(m.wNeigh[l].G, gw)
			MatMulBT(dSelf, dh, m.wSelf[l].W)
			MatMulBT(dAgg, dh, m.wNeigh[l].W)
		} else {
			gw := NewMatrix(in, dh.C)
			MatMulAT(gw, c.agg, dh)
			addInto(m.wNeigh[l].G, gw)
			MatMulBT(dAgg, dh, m.wNeigh[l].W)
		}
		// Scatter into dX.
		dx := NewMatrix(c.x.R, in)
		block := c.block
		for i := range block.Dst {
			ar := dAgg.Row(i)
			switch m.Cfg.Arch {
			case SAGE:
				dr := dx.Row(int(block.DstLocal[i]))
				sr := dSelf.Row(i)
				for j := range dr {
					dr[j] += sr[j]
				}
				if c.counts[i] > 0 {
					inv := 1 / float32(c.counts[i])
					for e := block.SrcPtr[i]; e < block.SrcPtr[i+1]; e++ {
						xr := dx.Row(int(block.SrcLocal[e]))
						for j := range xr {
							xr[j] += ar[j] * inv
						}
					}
				}
			case GCN:
				inv := 1 / float32(c.counts[i]+1)
				dr := dx.Row(int(block.DstLocal[i]))
				for j := range dr {
					dr[j] += ar[j] * inv
				}
				for e := block.SrcPtr[i]; e < block.SrcPtr[i+1]; e++ {
					xr := dx.Row(int(block.SrcLocal[e]))
					for j := range xr {
						xr[j] += ar[j] * inv
					}
				}
			}
		}
		flops += 2 * int64(len(block.Src)) * int64(in)
		dh = dx
	}
}

func addInto(dst, src *Matrix) {
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
	flops += int64(len(dst.Data))
}

// TrainStep runs forward, loss and backward for one batch, accumulating
// gradients (call ZeroGrads first). labels are the seed labels in order.
// It returns the mean loss, the number of correct predictions, and the
// FLOPs executed.
func (m *Model) TrainStep(mb *sample.MiniBatch, feats []float32, labels []int32) (loss float64, correct int, stepFlops int64) {
	start := flops
	logits, caches := m.Forward(mb, feats)
	dlogits := NewMatrix(logits.R, logits.C)
	loss, correct = SoftmaxCrossEntropy(logits, labels, dlogits)
	m.Backward(caches, dlogits)
	return loss, correct, flops - start
}

// Evaluate runs forward only and returns loss and accuracy.
func (m *Model) Evaluate(mb *sample.MiniBatch, feats []float32, labels []int32) (loss float64, correct int) {
	logits, _ := m.Forward(mb, feats)
	dl := NewMatrix(logits.R, logits.C)
	return SoftmaxCrossEntropy(logits, labels, dl)
}

// NominalFlops estimates the forward+backward FLOPs a batch would execute
// under cfg without running the math — used by the cost-only trainer mode
// in the large timing sweeps, where the paper-scale hidden size (256) would
// be too slow to execute for real on the host.
func NominalFlops(cfg Config, mb *sample.MiniBatch) int64 {
	var total int64
	for l, b := range mb.Blocks {
		in, out := cfg.dims(l)
		var dense, agg int64
		switch cfg.Arch {
		case GAT:
			// Projection over ALL input nodes plus per-edge attention.
			dense = 2 * int64(len(b.InputNodes)) * int64(in) * int64(out)
			agg = 12 * int64(len(b.Src)) * int64(out)
		case SAGE:
			dense = 4 * int64(len(b.Dst)) * int64(in) * int64(out) // self + neigh
			agg = 2 * int64(len(b.Src)) * int64(in)
		default:
			dense = 2 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		}
		// Forward + two backward matmuls per forward matmul.
		total += 3*dense + 2*agg
	}
	return total
}

// NominalForwardFlops estimates the floating-point work of a forward-only
// (inference) pass: the same per-layer dense and aggregation terms as
// NominalFlops without the two backward matmuls per forward matmul.
func NominalForwardFlops(cfg Config, mb *sample.MiniBatch) int64 {
	var total int64
	for l, b := range mb.Blocks {
		in, out := cfg.dims(l)
		var dense, agg int64
		switch cfg.Arch {
		case GAT:
			dense = 2 * int64(len(b.InputNodes)) * int64(in) * int64(out)
			agg = 12 * int64(len(b.Src)) * int64(out)
		case SAGE:
			dense = 4 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		default:
			dense = 2 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		}
		total += dense + agg
	}
	return total
}

// NominalAggBytes estimates the memory traffic of the aggregation kernels
// (edges × feature width), charged to the gather cost model.
func NominalAggBytes(cfg Config, mb *sample.MiniBatch) int64 {
	var total int64
	for l, b := range mb.Blocks {
		in, _ := cfg.dims(l)
		total += int64(len(b.Src)) * int64(in) * 4
	}
	return total
}
