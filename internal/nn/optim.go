package nn

import "math"

// Optimizer updates model parameters from accumulated gradients.
type Optimizer interface {
	// Step applies the current gradients (already averaged across replicas)
	// and advances the optimizer state.
	Step(m *Model)
}

// OptState is a flattened optimizer-state snapshot for checkpointing. Data
// layout is optimizer-specific but always concatenates per-parameter slices
// in Model.Params order, so a state restored into an identically-shaped
// model resumes bit-identically. Empty Data means "never stepped".
type OptState struct {
	// Step is Adam's bias-correction step count (0 for SGD).
	Step int
	// Data holds the moment/velocity vectors.
	Data []float32
}

// StatefulOptimizer is an Optimizer whose internal state can be captured
// and restored for checkpoint/resume.
type StatefulOptimizer interface {
	Optimizer
	// CaptureState snapshots the optimizer state (a deep copy).
	CaptureState() OptState
	// RestoreState replaces the optimizer state. m provides the parameter
	// shapes; st must come from an optimizer over an identical model.
	RestoreState(m *Model, st OptState)
}

// flatten concatenates per-parameter state vectors.
func flatten(vecs [][]float32) []float32 {
	n := 0
	for _, v := range vecs {
		n += len(v)
	}
	out := make([]float32, 0, n)
	for _, v := range vecs {
		out = append(out, v...)
	}
	return out
}

// unflatten splits buf back into per-parameter vectors shaped like m.
func unflatten(m *Model, buf []float32) [][]float32 {
	out := make([][]float32, len(m.Params))
	i := 0
	for pi, p := range m.Params {
		n := len(p.W.Data)
		out[pi] = append([]float32(nil), buf[i:i+n]...)
		i += n
	}
	if i != len(buf) {
		panic("nn: optimizer state size does not match model")
	}
	return out
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity [][]float32
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step implements Optimizer.
func (o *SGD) Step(m *Model) {
	if o.velocity == nil && o.Momentum != 0 {
		o.velocity = make([][]float32, len(m.Params))
		for i, p := range m.Params {
			o.velocity[i] = make([]float32, len(p.W.Data))
		}
	}
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	for i, p := range m.Params {
		if o.Momentum == 0 {
			for j := range p.W.Data {
				p.W.Data[j] -= lr * p.G.Data[j]
			}
			continue
		}
		v := o.velocity[i]
		for j := range p.W.Data {
			v[j] = mu*v[j] + p.G.Data[j]
			p.W.Data[j] -= lr * v[j]
		}
	}
}

// CaptureState implements StatefulOptimizer (velocity vectors; empty until
// the first momentum step).
func (o *SGD) CaptureState() OptState {
	if o.velocity == nil {
		return OptState{}
	}
	return OptState{Data: flatten(o.velocity)}
}

// RestoreState implements StatefulOptimizer.
func (o *SGD) RestoreState(m *Model, st OptState) {
	if len(st.Data) == 0 {
		o.velocity = nil
		return
	}
	o.velocity = unflatten(m, st.Data)
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m1, m2                [][]float32
}

// NewAdam creates an Adam optimizer with standard defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(m *Model) {
	if o.m1 == nil {
		o.m1 = make([][]float32, len(m.Params))
		o.m2 = make([][]float32, len(m.Params))
		for i, p := range m.Params {
			o.m1[i] = make([]float32, len(p.W.Data))
			o.m2[i] = make([]float32, len(p.W.Data))
		}
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	b1, b2 := float32(o.Beta1), float32(o.Beta2)
	for i, p := range m.Params {
		m1, m2 := o.m1[i], o.m2[i]
		for j := range p.W.Data {
			g := p.G.Data[j]
			m1[j] = b1*m1[j] + (1-b1)*g
			m2[j] = b2*m2[j] + (1-b2)*g*g
			mh := float64(m1[j]) / c1
			vh := float64(m2[j]) / c2
			p.W.Data[j] -= float32(o.LR * mh / (math.Sqrt(vh) + o.Eps))
		}
	}
}

// CaptureState implements StatefulOptimizer (step count plus first and
// second moments, concatenated; empty until the first step).
func (o *Adam) CaptureState() OptState {
	if o.m1 == nil {
		return OptState{Step: o.t}
	}
	return OptState{Step: o.t, Data: append(flatten(o.m1), flatten(o.m2)...)}
}

// RestoreState implements StatefulOptimizer.
func (o *Adam) RestoreState(m *Model, st OptState) {
	o.t = st.Step
	if len(st.Data) == 0 {
		o.m1, o.m2 = nil, nil
		return
	}
	half := len(st.Data) / 2
	o.m1 = unflatten(m, st.Data[:half])
	o.m2 = unflatten(m, st.Data[half:])
}
