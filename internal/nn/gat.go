package nn

import (
	"math"

	"repro/internal/sample"
)

// GAT support: a single-head graph attention layer (Velickovic et al.,
// ICLR 2018), the third GNN variant the paper's introduction names. The
// layer computes, for destination i with sampled neighbours j (self
// included):
//
//	z_v     = x_v @ W
//	e_ij    = LeakyReLU(aSrc·z_j + aDst·z_i)
//	alpha_i = softmax_j(e_ij)
//	h_i     = sum_j alpha_ij * z_j       (ReLU on hidden layers)
//
// Attention makes the per-edge compute heavier than GraphSAGE, which is the
// interesting regime for DSP's communication savings (the inverse of the
// GCN comparison in Table 5).

const leakySlope = 0.2

// gatCache holds forward intermediates for the backward pass.
type gatCache struct {
	block *sample.Block
	x     *Matrix // layer input (inputNodes x in)
	z     *Matrix // projected input (inputNodes x out)
	// Per destination: attention weights over its self+neighbour slots.
	alpha [][]float32
	// eRaw are pre-activation attention logits (for LeakyReLU backward).
	eRaw [][]float32
	mask []bool
}

// forwardGAT computes one attention layer.
func (m *Model) forwardGAT(l int, block *sample.Block, x *Matrix) (*Matrix, *gatCache) {
	in, out := m.Cfg.dims(l)
	_ = in
	c := &gatCache{block: block, x: x}
	// Project every input node once.
	c.z = NewMatrix(x.R, out)
	MatMul(c.z, x, m.wNeigh[l].W)
	aSrc := m.attSrc[l].W.Data
	aDst := m.attDst[l].W.Data
	h := NewMatrix(len(block.Dst), out)
	c.alpha = make([][]float32, len(block.Dst))
	c.eRaw = make([][]float32, len(block.Dst))
	for i := range block.Dst {
		// Slot 0 is the self edge; slots 1.. are sampled neighbours.
		n := int(block.SrcPtr[i+1] - block.SrcPtr[i])
		slots := make([]int32, 0, n+1)
		slots = append(slots, block.DstLocal[i])
		slots = append(slots, block.SrcLocal[block.SrcPtr[i]:block.SrcPtr[i+1]]...)
		e := make([]float32, len(slots))
		zDstScore := dot(c.z.Row(int(block.DstLocal[i])), aDst)
		for k, s := range slots {
			e[k] = leakyReLU(dot(c.z.Row(int(s)), aSrc) + zDstScore)
		}
		c.eRaw[i] = e
		a := softmax(e)
		c.alpha[i] = a
		hr := h.Row(i)
		for k, s := range slots {
			zr := c.z.Row(int(s))
			for j := range hr {
				hr[j] += a[k] * zr[j]
			}
		}
		flops += int64(len(slots)) * int64(out) * 4
	}
	AddBiasInPlace(h, m.bias[l].W.Data)
	if l < m.Cfg.Layers-1 {
		c.mask = make([]bool, len(h.Data))
		ReLUInPlace(h, c.mask)
	}
	return h, c
}

// backwardGAT propagates gradients through the attention layer, returning
// the input gradient.
func (m *Model) backwardGAT(l int, c *gatCache, dh *Matrix) *Matrix {
	in, out := m.Cfg.dims(l)
	block := c.block
	if c.mask != nil {
		ReLUBackwardInPlace(dh, c.mask)
	}
	bg := m.bias[l].G
	for i := 0; i < dh.R; i++ {
		r := dh.Row(i)
		for j := range r {
			bg.Data[j] += r[j]
		}
	}
	dz := NewMatrix(c.z.R, out)
	daSrc := m.attSrc[l].G.Data
	daDst := m.attDst[l].G.Data
	aSrc := m.attSrc[l].W.Data
	aDst := m.attDst[l].W.Data
	for i := range block.Dst {
		slots := make([]int32, 0, 1+int(block.SrcPtr[i+1]-block.SrcPtr[i]))
		slots = append(slots, block.DstLocal[i])
		slots = append(slots, block.SrcLocal[block.SrcPtr[i]:block.SrcPtr[i+1]]...)
		a := c.alpha[i]
		dhr := dh.Row(i)
		// dh/dz via the weighted sum, and dh/dalpha.
		dAlpha := make([]float32, len(slots))
		for k, s := range slots {
			zr := c.z.Row(int(s))
			dzr := dz.Row(int(s))
			var da float32
			for j := range dhr {
				dzr[j] += a[k] * dhr[j]
				da += dhr[j] * zr[j]
			}
			dAlpha[k] = da
		}
		// Softmax backward: de_k = a_k * (dAlpha_k - sum_j a_j dAlpha_j).
		var mix float32
		for k := range a {
			mix += a[k] * dAlpha[k]
		}
		dstLocal := int(block.DstLocal[i])
		var dDstScore float32
		for k, s := range slots {
			de := a[k] * (dAlpha[k] - mix)
			de *= leakyGrad(c.eRaw[i][k])
			// e = aSrc·z_s + aDst·z_dst (pre-activation).
			zr := c.z.Row(int(s))
			dzr := dz.Row(int(s))
			for j := range zr {
				daSrc[j] += de * zr[j]
				dzr[j] += de * aSrc[j]
			}
			dDstScore += de
		}
		zd := c.z.Row(dstLocal)
		dzd := dz.Row(dstLocal)
		for j := range zd {
			daDst[j] += dDstScore * zd[j]
			dzd[j] += dDstScore * aDst[j]
		}
		flops += int64(len(slots)) * int64(out) * 8
	}
	// z = x @ W.
	gw := NewMatrix(in, out)
	MatMulAT(gw, c.x, dz)
	addInto(m.wNeigh[l].G, gw)
	dx := NewMatrix(c.x.R, in)
	MatMulBT(dx, dz, m.wNeigh[l].W)
	return dx
}

func dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	flops += int64(2 * len(a))
	return s
}

func leakyReLU(x float32) float32 {
	if x >= 0 {
		return x
	}
	return leakySlope * x
}

// leakyGrad returns d LeakyReLU(raw)/d raw given the POST-activation value
// stored in eRaw (sign is preserved by LeakyReLU, so the branch is valid).
func leakyGrad(post float32) float32 {
	if post >= 0 {
		return 1
	}
	return leakySlope
}

func softmax(e []float32) []float32 {
	maxV := e[0]
	for _, v := range e {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float32, len(e))
	var sum float64
	for i, v := range e {
		x := math.Exp(float64(v - maxV))
		out[i] = float32(x)
		sum += x
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}
