package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpointing: models serialise to a small versioned binary format so
// trained parameters survive across runs (dsptrain -save/-load).

const ckptMagic = "DSPM"
const ckptVersion = 1

// Save writes the model configuration and parameters to w.
func (m *Model) Save(dst io.Writer) error {
	w := bufio.NewWriter(dst)
	if _, err := w.WriteString(ckptMagic); err != nil {
		return err
	}
	u32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := w.Write(b[:])
		return err
	}
	for _, v := range []uint32{ckptVersion, uint32(m.Cfg.Arch), uint32(m.Cfg.InDim),
		uint32(m.Cfg.Hidden), uint32(m.Cfg.Classes), uint32(m.Cfg.Layers),
		uint32(m.ParamCount())} {
		if err := u32(v); err != nil {
			return err
		}
	}
	buf := make([]float32, m.ParamCount())
	m.ParamVector(buf)
	for _, v := range buf {
		if err := u32(math.Float32bits(v)); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a model saved by Save.
func Load(src io.Reader) (*Model, error) {
	r := bufio.NewReader(src)
	head := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if string(head) != ckptMagic {
		return nil, fmt.Errorf("nn: bad checkpoint magic %q", head)
	}
	u32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	var vals [7]uint32
	for i := range vals {
		v, err := u32()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	if vals[0] != ckptVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", vals[0])
	}
	cfg := Config{
		Arch: Arch(vals[1]), InDim: int(vals[2]), Hidden: int(vals[3]),
		Classes: int(vals[4]), Layers: int(vals[5]),
	}
	if cfg.Layers < 1 || cfg.Layers > 64 || cfg.InDim < 1 || cfg.Classes < 1 {
		return nil, fmt.Errorf("nn: implausible checkpoint config %+v", cfg)
	}
	m := NewModel(cfg, 0)
	if int(vals[6]) != m.ParamCount() {
		return nil, fmt.Errorf("nn: checkpoint has %d params, model needs %d", vals[6], m.ParamCount())
	}
	buf := make([]float32, m.ParamCount())
	for i := range buf {
		v, err := u32()
		if err != nil {
			return nil, err
		}
		buf[i] = math.Float32frombits(v)
	}
	i := 0
	for _, p := range m.Params {
		copy(p.W.Data, buf[i:i+len(p.W.Data)])
		i += len(p.W.Data)
	}
	return m, nil
}

// SaveFile writes a checkpoint to path atomically.
func (m *Model) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
