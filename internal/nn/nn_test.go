package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sample"
)

func TestMatMulCorrect(t *testing.T) {
	a := &Matrix{R: 2, C: 3, Data: []float32{1, 2, 3, 4, 5, 6}}
	b := &Matrix{R: 3, C: 2, Data: []float32{7, 8, 9, 10, 11, 12}}
	out := NewMatrix(2, 2)
	MatMul(out, a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("matmul = %v, want %v", out.Data, want)
		}
	}
}

func TestMatMulTransposesAgree(t *testing.T) {
	r := rng.New(3)
	a := NewMatrix(5, 4)
	b := NewMatrix(5, 6)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(r.NormFloat64())
	}
	// aT @ b via MatMulAT == transpose(a) @ b via MatMul.
	at := NewMatrix(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			at.Data[j*5+i] = a.Data[i*4+j]
		}
	}
	want := NewMatrix(4, 6)
	MatMul(want, at, b)
	got := NewMatrix(4, 6)
	MatMulAT(got, a, b)
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-4 {
			t.Fatalf("MatMulAT mismatch at %d", i)
		}
	}
	// a @ bT via MatMulBT.
	bt := NewMatrix(6, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 6; j++ {
			bt.Data[j*5+i] = b.Data[i*6+j]
		}
	}
	want2 := NewMatrix(4, 5)
	MatMul(want2, got, bt) // (4x6)@(6x5)
	got2 := NewMatrix(4, 5)
	MatMulBT(got2, got, b)
	for i := range want2.Data {
		if math.Abs(float64(want2.Data[i]-got2.Data[i])) > 1e-3 {
			t.Fatalf("MatMulBT mismatch at %d: %v vs %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := &Matrix{R: 2, C: 3, Data: []float32{10, 0, 0, 0, 10, 0}}
	d := NewMatrix(2, 3)
	loss, correct := SoftmaxCrossEntropy(logits, []int32{0, 1}, d)
	if correct != 2 {
		t.Fatalf("correct=%d", correct)
	}
	if loss > 0.01 {
		t.Fatalf("confident correct predictions, loss=%v", loss)
	}
	// Gradient rows sum to ~0 (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range d.Row(i) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("dlogits row %d sums to %v", i, s)
		}
	}
}

// tinyBatch builds a small deterministic minibatch for gradient checks.
func tinyBatch(t *testing.T, layers int) (*sample.MiniBatch, []float32, []int32, int) {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "t", Nodes: 200, AvgDegree: 8, FeatDim: 5, NumClasses: 3, Seed: 12,
	})
	fan := make([]int, layers)
	for i := range fan {
		fan[i] = 3
	}
	seeds := d.TrainIdx[:6]
	mb := sample.Reference(d.G, seeds, sample.Config{Fanout: fan}, 9)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	inputs := mb.InputNodes()
	feats := make([]float32, len(inputs)*d.FeatDim)
	for i, v := range inputs {
		copy(feats[i*d.FeatDim:(i+1)*d.FeatDim], d.Feature(v))
	}
	labels := make([]int32, len(seeds))
	for i, s := range seeds {
		labels[i] = d.Labels[s]
	}
	return mb, feats, labels, d.FeatDim
}

func gradCheck(t *testing.T, arch Arch) {
	mb, feats, labels, inDim := tinyBatch(t, 2)
	cfg := Config{Arch: arch, InDim: inDim, Hidden: 4, Classes: 3, Layers: 2}
	m := NewModel(cfg, 42)
	m.ZeroGrads()
	featsCopy := append([]float32(nil), feats...)
	m.TrainStep(mb, featsCopy, labels)

	lossAt := func() float64 {
		f := append([]float32(nil), feats...)
		loss, _ := m.Evaluate(mb, f, labels)
		return loss
	}
	central := func(p *Param, j int, eps float32) float64 {
		orig := p.W.Data[j]
		p.W.Data[j] = orig + eps
		lp := lossAt()
		p.W.Data[j] = orig - eps
		lm := lossAt()
		p.W.Data[j] = orig
		return (lp - lm) / (2 * float64(eps))
	}
	const eps = 1e-2
	checked := 0
	r := rng.New(5)
	for _, p := range m.Params {
		for trial := 0; trial < 4; trial++ {
			j := r.Intn(len(p.W.Data))
			numeric := central(p, j, eps)
			analytic := float64(p.G.Data[j])
			scale := math.Max(math.Abs(numeric), math.Abs(analytic))
			if scale < 1e-4 {
				continue // both ~zero
			}
			// Richardson consistency: if halving eps moves the estimate a
			// lot, the loss is not smooth here (a ReLU kink inside the
			// probe interval) — the comparison is meaningless, skip it.
			if refined := central(p, j, eps/2); math.Abs(refined-numeric)/scale > 0.05 {
				continue
			}
			if math.Abs(numeric-analytic)/scale > 0.08 {
				t.Errorf("%s[%d]: numeric %v vs analytic %v", p.Name, j, numeric, analytic)
			}
			checked++
		}
	}
	if checked < 8 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestGradCheckSAGE(t *testing.T) { gradCheck(t, SAGE) }
func TestGradCheckGCN(t *testing.T)  { gradCheck(t, GCN) }

func TestTrainingLearns(t *testing.T) {
	// End-to-end: GraphSAGE on the community dataset should comfortably
	// beat chance within a few dozen steps.
	d := gen.Generate(gen.Config{
		Name: "t", Nodes: 2000, AvgDegree: 10, FeatDim: 16, NumClasses: 5, Seed: 33,
	})
	cfg := Config{Arch: SAGE, InDim: 16, Hidden: 32, Classes: 5, Layers: 2}
	m := NewModel(cfg, 7)
	opt := NewAdam(0.01)
	scfg := sample.Config{Fanout: []int{5, 5}}
	batch := 128
	gather := func(mb *sample.MiniBatch) ([]float32, []int32) {
		inputs := mb.InputNodes()
		feats := make([]float32, len(inputs)*d.FeatDim)
		for i, v := range inputs {
			copy(feats[i*d.FeatDim:(i+1)*d.FeatDim], d.Feature(v))
		}
		labels := make([]int32, len(mb.Seeds))
		for i, s := range mb.Seeds {
			labels[i] = d.Labels[s]
		}
		return feats, labels
	}
	step := 0
	for epoch := 0; epoch < 4; epoch++ {
		for off := 0; off+batch <= len(d.TrainIdx); off += batch {
			seeds := d.TrainIdx[off : off+batch]
			mb := sample.Reference(d.G, seeds, scfg, rng.Mix(1, uint64(step)))
			feats, labels := gather(mb)
			m.ZeroGrads()
			m.TrainStep(mb, feats, labels)
			opt.Step(m)
			step++
		}
	}
	// Validation accuracy.
	val := d.ValIdx[:200]
	mb := sample.Reference(d.G, val, scfg, 999)
	feats, labels := gather(mb)
	_, correct := m.Evaluate(mb, feats, labels)
	acc := float64(correct) / float64(len(val))
	if acc < 0.6 {
		t.Fatalf("validation accuracy %.2f after training, want >0.6 (chance 0.2)", acc)
	}
}

func TestGCNFlopsLighterThanSAGE(t *testing.T) {
	mb, _, _, inDim := tinyBatch(t, 3)
	sage := NominalFlops(Config{Arch: SAGE, InDim: inDim, Hidden: 64, Classes: 3, Layers: 3}, mb)
	gcn := NominalFlops(Config{Arch: GCN, InDim: inDim, Hidden: 64, Classes: 3, Layers: 3}, mb)
	if gcn >= sage {
		t.Fatalf("GCN flops %d not below GraphSAGE %d", gcn, sage)
	}
}

func TestNominalFlopsTracksRealFlops(t *testing.T) {
	mb, feats, labels, inDim := tinyBatch(t, 2)
	cfg := Config{Arch: SAGE, InDim: inDim, Hidden: 8, Classes: 3, Layers: 2}
	m := NewModel(cfg, 1)
	m.ZeroGrads()
	_, _, real := m.TrainStep(mb, feats, labels)
	nominal := NominalFlops(cfg, mb)
	ratio := float64(real) / float64(nominal)
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("nominal flops %d vs real %d (ratio %.2f) — cost model off", nominal, real, ratio)
	}
}

func TestGradVectorRoundTrip(t *testing.T) {
	cfg := Config{Arch: SAGE, InDim: 4, Hidden: 4, Classes: 2, Layers: 2}
	m := NewModel(cfg, 1)
	n := m.ParamCount()
	buf := make([]float32, n)
	for i := range buf {
		buf[i] = float32(i)
	}
	m.SetGradVector(buf)
	out := make([]float32, n)
	m.GradVector(out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("grad vector round trip broken at %d", i)
		}
	}
}

func TestModelsDeterministic(t *testing.T) {
	cfg := Config{Arch: GCN, InDim: 4, Hidden: 4, Classes: 2, Layers: 2}
	a, b := NewModel(cfg, 5), NewModel(cfg, 5)
	pa := make([]float32, a.ParamCount())
	pb := make([]float32, b.ParamCount())
	a.ParamVector(pa)
	b.ParamVector(pb)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different init")
		}
	}
}

func TestSGDMomentumMoves(t *testing.T) {
	cfg := Config{Arch: GCN, InDim: 2, Hidden: 2, Classes: 2, Layers: 1}
	m := NewModel(cfg, 1)
	before := make([]float32, m.ParamCount())
	m.ParamVector(before)
	g := make([]float32, m.ParamCount())
	for i := range g {
		g[i] = 1
	}
	opt := NewSGD(0.1, 0.9)
	m.SetGradVector(g)
	opt.Step(m)
	opt.Step(m)
	after := make([]float32, m.ParamCount())
	m.ParamVector(after)
	// Two steps with momentum: delta = 0.1*(1) + 0.1*(1.9) = 0.29.
	for i := range after {
		if math.Abs(float64(before[i]-after[i])-0.29) > 1e-5 {
			t.Fatalf("momentum update wrong: delta %v", before[i]-after[i])
		}
	}
}

func TestAdamReducesLossFast(t *testing.T) {
	// Single-parameter sanity: Adam drives a quadratic toward zero.
	cfg := Config{Arch: GCN, InDim: 1, Hidden: 1, Classes: 2, Layers: 1}
	m := NewModel(cfg, 2)
	opt := NewAdam(0.05)
	// Fake gradient = parameter value (minimising 0.5*w^2).
	for it := 0; it < 200; it++ {
		for _, p := range m.Params {
			copy(p.G.Data, p.W.Data)
		}
		opt.Step(m)
	}
	v := make([]float32, m.ParamCount())
	m.ParamVector(v)
	for i, x := range v {
		if math.Abs(float64(x)) > 0.05 {
			t.Fatalf("param %d did not converge: %v", i, x)
		}
	}
}

func TestEmptySeedBatchSafe(t *testing.T) {
	d := gen.Generate(gen.Config{
		Name: "t", Nodes: 100, AvgDegree: 6, FeatDim: 3, NumClasses: 2, Seed: 8,
	})
	mb := sample.Reference(d.G, []graph.NodeID{}, sample.Config{Fanout: []int{2}}, 1)
	m := NewModel(Config{Arch: SAGE, InDim: 3, Hidden: 2, Classes: 2, Layers: 1}, 1)
	m.ZeroGrads()
	loss, correct, _ := m.TrainStep(mb, nil, nil)
	if loss != 0 || correct != 0 {
		t.Fatalf("empty batch: loss=%v correct=%d", loss, correct)
	}
}

func TestGradCheckGAT(t *testing.T) { gradCheck(t, GAT) }

func TestGATTrainingLearns(t *testing.T) {
	d := gen.Generate(gen.Config{
		Name: "gat", Nodes: 1500, AvgDegree: 10, FeatDim: 12, NumClasses: 4, Seed: 55,
	})
	cfg := Config{Arch: GAT, InDim: 12, Hidden: 16, Classes: 4, Layers: 2}
	m := NewModel(cfg, 3)
	opt := NewAdam(0.01)
	scfg := sample.Config{Fanout: []int{5, 5}}
	step := 0
	for epoch := 0; epoch < 5; epoch++ {
		for off := 0; off+64 <= len(d.TrainIdx); off += 64 {
			seeds := d.TrainIdx[off : off+64]
			mb := sample.Reference(d.G, seeds, scfg, rng.Mix(2, uint64(step)))
			inputs := mb.InputNodes()
			feats := make([]float32, len(inputs)*d.FeatDim)
			for i, v := range inputs {
				copy(feats[i*d.FeatDim:(i+1)*d.FeatDim], d.Feature(v))
			}
			labels := make([]int32, len(seeds))
			for i, s := range seeds {
				labels[i] = d.Labels[s]
			}
			m.ZeroGrads()
			m.TrainStep(mb, feats, labels)
			opt.Step(m)
			step++
		}
	}
	val := d.ValIdx[:150]
	mb := sample.Reference(d.G, val, scfg, 77)
	inputs := mb.InputNodes()
	feats := make([]float32, len(inputs)*d.FeatDim)
	for i, v := range inputs {
		copy(feats[i*d.FeatDim:(i+1)*d.FeatDim], d.Feature(v))
	}
	labels := make([]int32, len(val))
	for i, s := range val {
		labels[i] = d.Labels[s]
	}
	_, correct := m.Evaluate(mb, feats, labels)
	if acc := float64(correct) / float64(len(val)); acc < 0.5 {
		t.Fatalf("GAT validation accuracy %.2f, want >0.5 (chance 0.25)", acc)
	}
}

func TestGATHeavierThanSAGE(t *testing.T) {
	mb, _, _, inDim := tinyBatch(t, 2)
	sage := NominalFlops(Config{Arch: SAGE, InDim: inDim, Hidden: 64, Classes: 3, Layers: 2}, mb)
	gat := NominalFlops(Config{Arch: GAT, InDim: inDim, Hidden: 64, Classes: 3, Layers: 2}, mb)
	if gat <= sage {
		t.Fatalf("GAT nominal flops %d not above GraphSAGE %d (projection covers all input nodes)", gat, sage)
	}
}

func TestGATAttentionWeightsNormalized(t *testing.T) {
	mb, feats, _, inDim := tinyBatch(t, 1)
	cfg := Config{Arch: GAT, InDim: inDim, Hidden: 4, Classes: 3, Layers: 1}
	m := NewModel(cfg, 9)
	_, caches := m.Forward(mb, feats)
	gc := caches[0].gat
	if gc == nil {
		t.Fatal("no GAT cache")
	}
	for i, a := range gc.alpha {
		var sum float64
		for _, v := range a {
			if v < 0 {
				t.Fatalf("negative attention weight at dst %d", i)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("attention weights at dst %d sum to %v", i, sum)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Arch: GAT, InDim: 7, Hidden: 5, Classes: 3, Layers: 2}
	m := NewModel(cfg, 77)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != cfg {
		t.Fatalf("config %+v, want %+v", got.Cfg, cfg)
	}
	a := make([]float32, m.ParamCount())
	b := make([]float32, got.ParamCount())
	m.ParamVector(a)
	got.ParamVector(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d differs", i)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("LOL"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("DSPM\x63\x00\x00\x00"))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestCheckpointPredictionsSurvive(t *testing.T) {
	mb, feats, labels, inDim := tinyBatch(t, 2)
	cfg := Config{Arch: SAGE, InDim: inDim, Hidden: 8, Classes: 3, Layers: 2}
	m := NewModel(cfg, 5)
	lossA, correctA := m.Evaluate(mb, append([]float32(nil), feats...), labels)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lossB, correctB := got.Evaluate(mb, append([]float32(nil), feats...), labels)
	if lossA != lossB || correctA != correctB {
		t.Fatalf("predictions changed: %v/%d vs %v/%d", lossA, correctA, lossB, correctB)
	}
}
