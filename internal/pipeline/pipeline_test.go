package pipeline

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// mkStages builds stages with fixed virtual durations and a trace log.
func mkStages(batches int, sampleT, loadT, trainT sim.Time, trace *[]string) Stages {
	return Stages{
		NumBatches: batches,
		Sample: func(p *sim.Proc, step int) interface{} {
			p.Sleep(sampleT)
			return step * 10
		},
		Load: func(p *sim.Proc, step int, v interface{}) interface{} {
			if v.(int) != step*10 {
				panic("load got wrong payload")
			}
			p.Sleep(loadT)
			return step * 100
		},
		Train: func(p *sim.Proc, step int, v interface{}) {
			if v.(int) != step*100 {
				panic("train got wrong payload")
			}
			p.Sleep(trainT)
			if trace != nil {
				*trace = append(*trace, "t")
			}
		},
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// 10 batches, each stage 1s. Sequential: 30s. Pipelined: ~12s.
	run := func(pipelined bool) sim.Time {
		eng := sim.NewEngine()
		done := eng.NewEvent()
		s := mkStages(10, 1, 1, 1, nil)
		if pipelined {
			RunPipelined(eng, "gpu0", s, 2, done)
		} else {
			RunSequential(eng, "gpu0", s, done)
		}
		end, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !done.Fired() {
			t.Fatal("epoch did not complete")
		}
		return end
	}
	seq := run(false)
	pipe := run(true)
	if seq != 30 {
		t.Fatalf("sequential end %v, want 30", seq)
	}
	if pipe > 13 {
		t.Fatalf("pipelined end %v, want ~12", pipe)
	}
}

func TestPipelinePreservesOrder(t *testing.T) {
	eng := sim.NewEngine()
	done := eng.NewEvent()
	var trace []string
	// Uneven stage times stress reordering; trainer asserts order itself.
	RunPipelined(eng, "g", mkStages(20, 0.1, 0.5, 0.2, &trace), 2, done)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 20 {
		t.Fatalf("trained %d batches", len(trace))
	}
}

func TestQueueCapacityBoundsRunAhead(t *testing.T) {
	// With a fast sampler and slow trainer, the sampler can be at most
	// queueCap*2+1 steps ahead (both queues full + one in flight).
	eng := sim.NewEngine()
	done := eng.NewEvent()
	var sampled, trained int
	maxAhead := 0
	s := Stages{
		NumBatches: 30,
		Sample: func(p *sim.Proc, step int) interface{} {
			sampled++
			if ahead := sampled - trained; ahead > maxAhead {
				maxAhead = ahead
			}
			p.Sleep(0.01)
			return nil
		},
		Load: func(p *sim.Proc, step int, v interface{}) interface{} { return nil },
		Train: func(p *sim.Proc, step int, v interface{}) {
			p.Sleep(1)
			trained++
		},
	}
	RunPipelined(eng, "g", s, 2, done)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if maxAhead > 7 {
		t.Fatalf("sampler ran %d steps ahead with capacity 2", maxAhead)
	}
}

func TestCoordinatorUncoordinatedDeadlocks(t *testing.T) {
	// Figure 8: GPU 0 launches worker A then B; GPU 1 launches B then A.
	// Each collective body waits for its peer on the other GPU.
	eng := sim.NewEngine()
	c := NewCoordinator(eng, 2, false, 1)
	barA := eng.NewBarrier(2)
	barB := eng.NewBarrier(2)
	launch := func(gpu int, first, second int, firstBar, secondBar *sim.Barrier) {
		eng.Go("gpu", func(p *sim.Proc) {
			c.Communicate(p, gpu, first, func(p *sim.Proc) { firstBar.Arrive(p) })
		})
		eng.Go("gpu", func(p *sim.Proc) {
			p.Sleep(0.1)
			c.Communicate(p, gpu, second, func(p *sim.Proc) { secondBar.Arrive(p) })
		})
	}
	launch(0, 0, 1, barA, barB) // GPU 0: A first
	launch(1, 1, 0, barB, barA) // GPU 1: B first
	_, err := eng.Run()
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestCoordinatorCCCResolvesDeadlock(t *testing.T) {
	// The same launch pattern with CCC completes: the leader's order (A
	// then B) is imposed on GPU 1.
	eng := sim.NewEngine()
	c := NewCoordinator(eng, 2, true, 1)
	barA := eng.NewBarrier(2)
	barB := eng.NewBarrier(2)
	completed := 0
	comm := func(gpu, worker int, bar *sim.Barrier, delay sim.Time) {
		eng.Go("w", func(p *sim.Proc) {
			p.Sleep(delay)
			c.Communicate(p, gpu, worker, func(p *sim.Proc) {
				bar.Arrive(p)
				p.Sleep(0.05)
			})
			completed++
		})
	}
	comm(0, 0, barA, 0)    // leader submits A first
	comm(0, 1, barB, 0.1)  // then B
	comm(1, 1, barB, 0)    // GPU 1 is ready with B first...
	comm(1, 0, barA, 0.02) // ...but must launch A first
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 4 {
		t.Fatalf("completed %d of 4 collectives", completed)
	}
}

func TestCCCKernelsStillOverlapAcrossGPUs(t *testing.T) {
	// CCC orders launches; it must not serialize independent collectives
	// into lockstep rounds longer than necessary. Two workers x 2 GPUs,
	// each collective 1s, same submission order: total should be ~2s
	// (B starts after A on each GPU), not 4s.
	eng := sim.NewEngine()
	c := NewCoordinator(eng, 2, true, 1)
	barA := eng.NewBarrier(2)
	barB := eng.NewBarrier(2)
	for gpu := 0; gpu < 2; gpu++ {
		gpu := gpu
		eng.Go("a", func(p *sim.Proc) {
			c.Communicate(p, gpu, 0, func(p *sim.Proc) {
				barA.Arrive(p)
				p.Sleep(1)
			})
		})
		eng.Go("b", func(p *sim.Proc) {
			c.Communicate(p, gpu, 1, func(p *sim.Proc) {
				barB.Arrive(p)
				p.Sleep(1)
			})
		})
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end > 2.01 {
		t.Fatalf("CCC run took %v, want ~2", end)
	}
}

func TestCoordinatorManyRoundsNoDeadlock(t *testing.T) {
	// Stress: 4 GPUs x 3 workers x 10 rounds with jittered readiness.
	eng := sim.NewEngine()
	c := NewCoordinator(eng, 4, true, 1)
	bars := []*sim.Barrier{eng.NewBarrier(4), eng.NewBarrier(4), eng.NewBarrier(4)}
	total := 0
	for gpu := 0; gpu < 4; gpu++ {
		for w := 0; w < 3; w++ {
			gpu, w := gpu, w
			eng.Go("w", func(p *sim.Proc) {
				for round := 0; round < 10; round++ {
					// Jitter readiness differently per gpu/worker/round.
					p.Sleep(sim.Time(float64((gpu*7+w*13+round*3)%5) * 0.001))
					c.Communicate(p, gpu, w, func(p *sim.Proc) {
						bars[w].Arrive(p)
						p.Sleep(0.002)
					})
				}
				total++
			})
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 12 {
		t.Fatalf("finished %d of 12 workers", total)
	}
}

func TestCoordinatorString(t *testing.T) {
	eng := sim.NewEngine()
	if s := NewCoordinator(eng, 4, true, 1).String(); !strings.Contains(s, "CCC") {
		t.Errorf("String() = %q", s)
	}
	if s := NewCoordinator(eng, 4, false, 1).String(); !strings.Contains(s, "uncoordinated") {
		t.Errorf("String() = %q", s)
	}
}

func TestSequentialMatchesPipelineResults(t *testing.T) {
	// The two execution modes must produce identical trainer input
	// sequences (BSP equivalence); only timing differs.
	collect := func(pipelined bool) []int {
		eng := sim.NewEngine()
		done := eng.NewEvent()
		var got []int
		s := Stages{
			NumBatches: 15,
			Sample:     func(p *sim.Proc, step int) interface{} { p.Sleep(0.2); return step },
			Load:       func(p *sim.Proc, step int, v interface{}) interface{} { p.Sleep(0.1); return v.(int) * 2 },
			Train: func(p *sim.Proc, step int, v interface{}) {
				p.Sleep(0.3)
				got = append(got, v.(int))
			},
		}
		if pipelined {
			RunPipelined(eng, "g", s, 2, done)
		} else {
			RunSequential(eng, "g", s, done)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := collect(true), collect(false)
	if len(a) != len(b) {
		t.Fatal("different batch counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: pipeline %d vs seq %d", i, a[i], b[i])
		}
	}
}
