package pipeline

import (
	"fmt"

	"repro/internal/sim"
)

// MultiStages describes a pipeline with several sampler and loader worker
// instances per GPU — the multi-instance design the paper considers and
// rejects in Section 5 ("it consumes more memory for in-flight works...
// with more workers on each GPU, the resource contention for both CPU and
// GPU is more severe"). Sampler instance i processes steps i, i+S, i+2S...;
// each instance function typically closes over its own communicator.
// The trainer stays single (multiple trainers would violate BSP) and
// reorders batches back into step order before consuming them.
type MultiStages struct {
	NumBatches int
	Samplers   []func(p *sim.Proc, step int) interface{}
	Loaders    []func(p *sim.Proc, step int, v interface{}) interface{}
	Train      func(p *sim.Proc, step int, v interface{})
}

// RunPipelinedMulti spawns len(Samplers) sampler workers and len(Loaders)
// loader workers joined by shared bounded queues, plus one reordering
// trainer. done fires when the trainer has consumed every step in order.
func RunPipelinedMulti(eng *sim.Engine, name string, s MultiStages, queueCap int, done *sim.Event) {
	if len(s.Samplers) == 0 || len(s.Loaders) == 0 {
		panic("pipeline: MultiStages needs at least one sampler and loader")
	}
	if queueCap < 1 {
		queueCap = 1
	}
	// Steps are assigned to worker instances by index (step mod workers),
	// NOT by queue availability: loader instance j is a peer group across
	// GPUs with its own communicator, so all GPUs must route the same steps
	// to the same instance or the collectives would misalign.
	nL := len(s.Loaders)
	loadQs := make([]*sim.Queue, nL)
	for j := range loadQs {
		loadQs[j] = eng.NewQueue(queueCap)
	}
	trainQ := eng.NewQueue(queueCap)
	samplersLeft := len(s.Samplers)
	loadersLeft := nL
	for i, fn := range s.Samplers {
		i, fn := i, fn
		eng.Go(fmt.Sprintf("%s/sampler%d", name, i), func(p *sim.Proc) {
			for step := i; step < s.NumBatches; step += len(s.Samplers) {
				v := fn(p, step)
				loadQs[step%nL].Put(p, queueItem{step, v})
			}
			samplersLeft--
			if samplersLeft == 0 {
				for _, q := range loadQs {
					q.Close()
				}
			}
		})
	}
	for j, fn := range s.Loaders {
		j, fn := j, fn
		eng.Go(fmt.Sprintf("%s/loader%d", name, j), func(p *sim.Proc) {
			// Consume strictly in this instance's step order (j, j+L, ...)
			// even if samplers deliver out of order, so instance j's
			// collectives stay step-aligned across GPUs.
			pending := map[int]interface{}{}
			want := j
			for {
				item, ok := loadQs[j].Get(p)
				if !ok {
					loadersLeft--
					if loadersLeft == 0 {
						trainQ.Close()
					}
					return
				}
				qi := item.(queueItem)
				pending[qi.step] = qi.v
				for {
					v, ok := pending[want]
					if !ok {
						break
					}
					delete(pending, want)
					out := fn(p, want, v)
					trainQ.Put(p, queueItem{want, out})
					want += nL
				}
			}
		})
	}
	eng.Go(name+"/trainer", func(p *sim.Proc) {
		pending := map[int]interface{}{}
		want := 0
		for {
			item, ok := trainQ.Get(p)
			if !ok {
				break
			}
			qi := item.(queueItem)
			pending[qi.step] = qi.v
			for {
				v, ok := pending[want]
				if !ok {
					break
				}
				delete(pending, want)
				s.Train(p, want, v)
				want++
			}
		}
		if want != s.NumBatches {
			panic(fmt.Sprintf("pipeline: multi trainer consumed %d of %d steps", want, s.NumBatches))
		}
		done.Trigger()
	})
}
