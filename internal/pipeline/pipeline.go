package pipeline

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Stages holds the per-GPU stage implementations for one training epoch.
// Each function is called with the mini-batch step index; the value returned
// by Sample flows to Load, and Load's result flows to Train — the queues in
// between are what allow steps to overlap.
type Stages struct {
	NumBatches int
	// FirstBatch is the step the epoch starts at (non-zero when replaying the
	// tail of an epoch after restoring a mid-epoch checkpoint). Steps
	// [FirstBatch, NumBatches) run.
	FirstBatch int
	// Sample constructs the graph samples for step (the sampler worker).
	Sample func(p *sim.Proc, step int) interface{}
	// Load fetches features for the step's samples (the loader worker).
	Load func(p *sim.Proc, step int, sampled interface{}) interface{}
	// Train consumes the loaded batch (the trainer worker). Steps arrive
	// strictly in order, preserving BSP semantics.
	Train func(p *sim.Proc, step int, loaded interface{})
	// Tracer, when set, records "queue-wait" stall spans (cat "stall") on
	// Pid's stage lanes whenever a worker blocks on a full or empty queue —
	// the per-mini-batch stall attribution internal/prof consumes.
	Tracer *trace.Tracer
	Pid    int
}

// queueItem tags payloads with their step so ordering violations are caught.
type queueItem struct {
	step int
	v    interface{}
}

// stall records the time a worker spent parked on a queue operation as a
// zero-work span on the worker's own stage lane. Queue waits happen strictly
// between stage executions, so stall spans never overlap stage spans.
func (s Stages) stall(tid int, kind string, step int, start, end sim.Time) {
	if !s.Tracer.Enabled() || end <= start {
		return
	}
	s.Tracer.Complete("queue-wait", "stall", s.Pid, tid,
		float64(start), float64(end),
		map[string]string{"op": kind, "step": fmt.Sprint(step)})
}

// RunPipelined spawns the three workers for one GPU, joined by bounded
// queues of the given capacity (the paper finds capacity 2 sufficient).
// done is triggered when the trainer finishes the epoch.
func RunPipelined(eng *sim.Engine, name string, s Stages, queueCap int, done *sim.Event) {
	if queueCap < 1 {
		queueCap = 1
	}
	loadQ := eng.NewQueue(queueCap)
	trainQ := eng.NewQueue(queueCap)
	eng.Go(name+"/sampler", func(p *sim.Proc) {
		for step := s.FirstBatch; step < s.NumBatches; step++ {
			v := s.Sample(p, step)
			t0 := p.Now()
			loadQ.Put(p, queueItem{step, v})
			s.stall(trace.LaneSampler, "put", step, t0, p.Now())
		}
		loadQ.Close()
	})
	eng.Go(name+"/loader", func(p *sim.Proc) {
		for {
			t0 := p.Now()
			item, ok := loadQ.Get(p)
			if !ok {
				trainQ.Close()
				return
			}
			qi := item.(queueItem)
			s.stall(trace.LaneLoader, "get", qi.step, t0, p.Now())
			v := s.Load(p, qi.step, qi.v)
			t1 := p.Now()
			trainQ.Put(p, queueItem{qi.step, v})
			s.stall(trace.LaneLoader, "put", qi.step, t1, p.Now())
		}
	})
	eng.Go(name+"/trainer", func(p *sim.Proc) {
		want := s.FirstBatch
		for {
			t0 := p.Now()
			item, ok := trainQ.Get(p)
			if !ok {
				break
			}
			qi := item.(queueItem)
			s.stall(trace.LaneTrainer, "get", qi.step, t0, p.Now())
			if qi.step != want {
				panic(fmt.Sprintf("pipeline: trainer got step %d, want %d (BSP violation)", qi.step, want))
			}
			want++
			s.Train(p, qi.step, qi.v)
		}
		if want != s.NumBatches {
			panic(fmt.Sprintf("pipeline: trainer saw %d of %d steps", want, s.NumBatches))
		}
		done.Trigger()
	})
}

// RunSequential executes the stages of each step back to back in a single
// worker — the DSP-Seq configuration the pipeline is compared against.
func RunSequential(eng *sim.Engine, name string, s Stages, done *sim.Event) {
	eng.Go(name+"/seq", func(p *sim.Proc) {
		for step := s.FirstBatch; step < s.NumBatches; step++ {
			v := s.Sample(p, step)
			v = s.Load(p, step, v)
			s.Train(p, step, v)
		}
		done.Trigger()
	})
}
