package pipeline

import (
	"fmt"

	"repro/internal/sim"
)

// Stages holds the per-GPU stage implementations for one training epoch.
// Each function is called with the mini-batch step index; the value returned
// by Sample flows to Load, and Load's result flows to Train — the queues in
// between are what allow steps to overlap.
type Stages struct {
	NumBatches int
	// FirstBatch is the step the epoch starts at (non-zero when replaying the
	// tail of an epoch after restoring a mid-epoch checkpoint). Steps
	// [FirstBatch, NumBatches) run.
	FirstBatch int
	// Sample constructs the graph samples for step (the sampler worker).
	Sample func(p *sim.Proc, step int) interface{}
	// Load fetches features for the step's samples (the loader worker).
	Load func(p *sim.Proc, step int, sampled interface{}) interface{}
	// Train consumes the loaded batch (the trainer worker). Steps arrive
	// strictly in order, preserving BSP semantics.
	Train func(p *sim.Proc, step int, loaded interface{})
}

// queueItem tags payloads with their step so ordering violations are caught.
type queueItem struct {
	step int
	v    interface{}
}

// RunPipelined spawns the three workers for one GPU, joined by bounded
// queues of the given capacity (the paper finds capacity 2 sufficient).
// done is triggered when the trainer finishes the epoch.
func RunPipelined(eng *sim.Engine, name string, s Stages, queueCap int, done *sim.Event) {
	if queueCap < 1 {
		queueCap = 1
	}
	loadQ := eng.NewQueue(queueCap)
	trainQ := eng.NewQueue(queueCap)
	eng.Go(name+"/sampler", func(p *sim.Proc) {
		for step := s.FirstBatch; step < s.NumBatches; step++ {
			v := s.Sample(p, step)
			loadQ.Put(p, queueItem{step, v})
		}
		loadQ.Close()
	})
	eng.Go(name+"/loader", func(p *sim.Proc) {
		for {
			item, ok := loadQ.Get(p)
			if !ok {
				trainQ.Close()
				return
			}
			qi := item.(queueItem)
			v := s.Load(p, qi.step, qi.v)
			trainQ.Put(p, queueItem{qi.step, v})
		}
	})
	eng.Go(name+"/trainer", func(p *sim.Proc) {
		want := s.FirstBatch
		for {
			item, ok := trainQ.Get(p)
			if !ok {
				break
			}
			qi := item.(queueItem)
			if qi.step != want {
				panic(fmt.Sprintf("pipeline: trainer got step %d, want %d (BSP violation)", qi.step, want))
			}
			want++
			s.Train(p, qi.step, qi.v)
		}
		if want != s.NumBatches {
			panic(fmt.Sprintf("pipeline: trainer saw %d of %d steps", want, s.NumBatches))
		}
		done.Trigger()
	})
}

// RunSequential executes the stages of each step back to back in a single
// worker — the DSP-Seq configuration the pipeline is compared against.
func RunSequential(eng *sim.Engine, name string, s Stages, done *sim.Event) {
	eng.Go(name+"/seq", func(p *sim.Proc) {
		for step := s.FirstBatch; step < s.NumBatches; step++ {
			v := s.Sample(p, step)
			v = s.Load(p, step, v)
			s.Train(p, step, v)
		}
		done.Trigger()
	})
}
