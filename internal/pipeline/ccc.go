// Package pipeline implements DSP's training pipeline: producer-consumer
// queues that let the sampler, loader and trainer of DIFFERENT mini-batches
// run concurrently on each GPU, and the Centralized Communication
// Coordination (CCC) scheme that makes concurrent collectives deadlock-free.
//
// The deadlock hazard (paper Figure 8): communication kernels hold GPU
// resources irrevocably and an all-to-all can only proceed once its peer
// kernels have launched on every GPU. If GPU 1 launches the sampler's
// collective first while GPU 2 launches the loader's first, each holds the
// resource the other's peer needs — a cycle. CCC designates GPU 0 the
// leader: collectives launch everywhere in the order the leader's own
// workers submitted them, which eliminates cycles by construction.
package pipeline

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Coordinator arbitrates communication-kernel launches across GPUs.
type Coordinator struct {
	eng *sim.Engine
	n   int
	// UseCCC selects leader-ordered launches; without it, launches acquire
	// resources in arrival order and can deadlock.
	UseCCC bool

	// Tracer, when set, resolves the tracer current at launch time (the CLIs
	// attach tracers after the system is built) so Enter can record
	// "ccc-wait" stall spans — the time a communication kernel waited for
	// its leader-ordered turn plus the kernel-slot acquisition.
	Tracer func() *trace.Tracer

	// slot[g] models the irrevocable SM allocation of the in-flight
	// communication kernel on GPU g.
	slot []*sim.Resource

	// Leader state: the global grant order (worker ids in leader submission
	// order) and each GPU's progress through it.
	granted   []int
	nextGrant []int
	cond      []*sim.Event // per-GPU "state advanced" condition

	// view, when set, enables leader failover: the leader is the lowest
	// LIVE GPU, and a death resets the grant log (every in-flight collective
	// aborts and re-submits under the new membership generation).
	view *fault.View
}

// NewCoordinator creates a coordinator for n GPUs. slotCap is the number of
// communication kernels that can hold GPU resources simultaneously on one
// GPU (capacity 1 makes the Figure 8 hazard deterministic in tests; DSP runs
// with capacity 2 so sampler and loader collectives overlap).
func NewCoordinator(eng *sim.Engine, n int, useCCC bool, slotCap int) *Coordinator {
	if slotCap < 1 {
		slotCap = 1
	}
	c := &Coordinator{eng: eng, n: n, UseCCC: useCCC}
	for g := 0; g < n; g++ {
		c.slot = append(c.slot, eng.NewResource(slotCap))
		c.cond = append(c.cond, eng.NewEvent())
	}
	c.nextGrant = make([]int, n)
	return c
}

// SetView enables CCC leader failover driven by a fleet-membership view.
// When any GPU dies the grant log resets: collectives in flight abort (via
// the communicator's own view handling), retry, and re-submit to the new
// leader — the lowest live GPU — so the global launch order stays total.
func (c *Coordinator) SetView(v *fault.View) {
	c.view = v
	v.OnChange(func() {
		c.granted = c.granted[:0]
		for g := range c.nextGrant {
			c.nextGrant[g] = 0
		}
		c.notifyAll()
	})
}

// Leader returns the grant-issuing GPU: 0, or the lowest live GPU under a
// membership view.
func (c *Coordinator) Leader() int {
	if c.view != nil {
		return c.view.LowestLive()
	}
	return 0
}

// notify wakes every process waiting on GPU g's condition.
func (c *Coordinator) notify(g int) {
	ev := c.cond[g]
	c.cond[g] = c.eng.NewEvent()
	ev.Trigger()
}

// notifyAll broadcasts a state change to all GPUs (leader grants are global).
func (c *Coordinator) notifyAll() {
	for g := 0; g < c.n; g++ {
		c.notify(g)
	}
}

// Enter is the launch protocol of worker workerID's communication kernel on
// GPU gpu: under CCC it waits for the kernel's turn in the leader-decided
// global order, then claims the GPU's (irrevocable) kernel resources.
func (c *Coordinator) Enter(p *sim.Proc, gpu, workerID int) {
	t0 := c.eng.Now()
	if c.UseCCC {
		gen := -1
		if c.view != nil {
			gen = c.view.Gen()
		}
		// Leader: submitting IS granting.
		if gpu == c.Leader() {
			c.granted = append(c.granted, workerID)
			c.notifyAll()
		}
		// Wait for this worker's turn in the global order.
		for {
			if c.nextGrant[gpu] < len(c.granted) && c.granted[c.nextGrant[gpu]] == workerID {
				c.nextGrant[gpu]++
				c.notify(gpu) // others on this GPU may now be up
				break
			}
			c.cond[gpu].Wait(p)
			if c.view != nil && c.view.Gen() != gen {
				// A GPU died and the grant log was reset mid-wait: this
				// launch belongs to an aborted collective. Unwind; the
				// caller retries and re-submits under the new leader.
				panic(fault.Aborted{Gen: gen})
			}
		}
	}
	c.slot[gpu].Acquire(p, 1)
	if c.Tracer != nil {
		if tr := c.Tracer(); tr.Enabled() && c.eng.Now() > t0 {
			tr.Complete("ccc-wait", "stall", gpu, trace.LaneCCC,
				float64(t0), float64(c.eng.Now()),
				map[string]string{"worker": fmt.Sprint(workerID)})
		}
	}
}

// Exit releases the kernel resources claimed by Enter.
func (c *Coordinator) Exit(gpu int) {
	c.slot[gpu].Release(1)
}

// Communicate runs body as worker workerID's communication kernel on GPU
// gpu. The body typically performs a collective (which internally blocks on
// peers). Under CCC the kernel launches in leader order; without CCC it
// launches immediately on resource availability, reproducing the hazard.
func (c *Coordinator) Communicate(p *sim.Proc, gpu, workerID int, body func(*sim.Proc)) {
	c.Enter(p, gpu, workerID)
	body(p)
	c.Exit(gpu)
}

// WorkerGate is a comm.Gate view of the coordinator bound to one worker id:
// install one per worker-group communicator with SetGate.
type WorkerGate struct {
	C        *Coordinator
	WorkerID int
}

// Enter implements the gate protocol for this worker.
func (g WorkerGate) Enter(p *sim.Proc, gpu int) { g.C.Enter(p, gpu, g.WorkerID) }

// Exit releases the kernel resources.
func (g WorkerGate) Exit(gpu int) { g.C.Exit(gpu) }

// Gate returns the gate for one worker id.
func (c *Coordinator) Gate(workerID int) WorkerGate {
	return WorkerGate{C: c, WorkerID: workerID}
}

// String describes the coordinator mode.
func (c *Coordinator) String() string {
	if c.UseCCC {
		return fmt.Sprintf("CCC(leader=%d, n=%d)", c.Leader(), c.n)
	}
	return fmt.Sprintf("uncoordinated(n=%d)", c.n)
}
