package pipeline

import (
	"testing"

	"repro/internal/sim"
)

func TestMultiPipelineCompletesInOrder(t *testing.T) {
	eng := sim.NewEngine()
	done := eng.NewEvent()
	var got []int
	ms := MultiStages{
		NumBatches: 23,
		Train: func(p *sim.Proc, step int, v interface{}) {
			if v.(int) != step*100 {
				t.Errorf("step %d payload %v", step, v)
			}
			p.Sleep(0.05)
			got = append(got, step)
		},
	}
	for i := 0; i < 3; i++ {
		i := i
		ms.Samplers = append(ms.Samplers, func(p *sim.Proc, step int) interface{} {
			// Different instances run at different speeds: reordering must
			// still deliver steps in order.
			p.Sleep(sim.Time(0.1 * float64(i+1)))
			return step
		})
	}
	for j := 0; j < 2; j++ {
		ms.Loaders = append(ms.Loaders, func(p *sim.Proc, step int, v interface{}) interface{} {
			p.Sleep(0.02)
			return v.(int) * 100
		})
	}
	RunPipelinedMulti(eng, "g", ms, 2, done)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done.Fired() {
		t.Fatal("did not complete")
	}
	if len(got) != 23 {
		t.Fatalf("trained %d steps", len(got))
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestMultiPipelineLoaderInstanceOrdering(t *testing.T) {
	// Loader instance j must see steps j, j+L, j+2L... strictly in order.
	eng := sim.NewEngine()
	done := eng.NewEvent()
	const L = 3
	seen := make([][]int, L)
	ms := MultiStages{
		NumBatches: 17,
		Train:      func(p *sim.Proc, step int, v interface{}) {},
	}
	ms.Samplers = append(ms.Samplers, func(p *sim.Proc, step int) interface{} {
		p.Sleep(0.01)
		return nil
	})
	for j := 0; j < L; j++ {
		j := j
		ms.Loaders = append(ms.Loaders, func(p *sim.Proc, step int, v interface{}) interface{} {
			seen[j] = append(seen[j], step)
			return v
		})
	}
	RunPipelinedMulti(eng, "g", ms, 2, done)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < L; j++ {
		for i, s := range seen[j] {
			if s != j+i*L {
				t.Fatalf("loader %d saw %v", j, seen[j])
			}
		}
	}
}

func TestMultiPipelinePanicsWithoutWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty worker set")
		}
	}()
	RunPipelinedMulti(sim.NewEngine(), "g", MultiStages{NumBatches: 1}, 2, nil)
}
