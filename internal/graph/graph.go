// Package graph provides the compressed-sparse-row (CSR) graph structures
// used throughout the system. Following the paper's implementation section,
// a node's adjacency list stores its in-neighbours (the nodes aggregated
// from during GNN message passing), which is the list graph sampling draws
// from.
package graph

import (
	"fmt"
	"sort"
)

// NodeID is a global node identifier.
type NodeID = int32

// CSR is an adjacency structure in compressed sparse row format.
// Neighbours of node v are Indices[Indptr[v]:Indptr[v+1]]. Weights, if
// non-nil, holds one non-negative sampling weight per adjacency entry
// (biased sampling stores the neighbour's node weight alongside each edge so
// weight lookups are local, as DSP does during data preparation).
type CSR struct {
	Indptr  []int64
	Indices []NodeID
	Weights []float32
}

// NumNodes returns the node count.
func (g *CSR) NumNodes() int { return len(g.Indptr) - 1 }

// NumEdges returns the adjacency entry count.
func (g *CSR) NumEdges() int64 { return g.Indptr[len(g.Indptr)-1] }

// Degree returns the adjacency list length of v.
func (g *CSR) Degree(v NodeID) int { return int(g.Indptr[v+1] - g.Indptr[v]) }

// Neighbors returns the adjacency list of v (a view; do not mutate).
func (g *CSR) Neighbors(v NodeID) []NodeID {
	return g.Indices[g.Indptr[v]:g.Indptr[v+1]]
}

// NeighborWeights returns the weights aligned with Neighbors(v), or nil for
// unweighted graphs.
func (g *CSR) NeighborWeights(v NodeID) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Indptr[v]:g.Indptr[v+1]]
}

// WeightSum returns the total sampling weight of v's adjacency list; for
// unweighted graphs it is the degree.
func (g *CSR) WeightSum(v NodeID) float64 {
	if g.Weights == nil {
		return float64(g.Degree(v))
	}
	var s float64
	for _, w := range g.NeighborWeights(v) {
		s += float64(w)
	}
	return s
}

// TopologyBytes returns the simulated memory footprint of the CSR arrays.
// Adjacency entries are counted at 8 bytes each — the paper's artifact
// stores 64-bit node ids (25.6 GB for Papers' 3.2B edges) — even though
// this repository's in-process representation uses 32-bit ids.
func (g *CSR) TopologyBytes() int64 {
	b := int64(len(g.Indptr))*8 + int64(len(g.Indices))*8
	if g.Weights != nil {
		b += int64(len(g.Weights)) * 4
	}
	return b
}

// Validate checks structural invariants and returns the first violation.
func (g *CSR) Validate() error {
	if len(g.Indptr) == 0 {
		return fmt.Errorf("graph: empty indptr")
	}
	if g.Indptr[0] != 0 {
		return fmt.Errorf("graph: indptr[0] = %d, want 0", g.Indptr[0])
	}
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if g.Indptr[v+1] < g.Indptr[v] {
			return fmt.Errorf("graph: indptr not monotone at %d", v)
		}
	}
	if g.Indptr[n] != int64(len(g.Indices)) {
		return fmt.Errorf("graph: indptr[n]=%d != len(indices)=%d", g.Indptr[n], len(g.Indices))
	}
	for i, u := range g.Indices {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("graph: indices[%d]=%d out of range [0,%d)", i, u, n)
		}
	}
	if g.Weights != nil {
		if len(g.Weights) != len(g.Indices) {
			return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Indices))
		}
		for i, w := range g.Weights {
			if w < 0 {
				return fmt.Errorf("graph: negative weight at %d", i)
			}
		}
	}
	return nil
}

// FromEdges builds a CSR with n nodes from directed edges (src -> dst means
// src appears in dst's adjacency list, i.e. src is an in-neighbour of dst).
func FromEdges(n int, src, dst []NodeID) *CSR {
	if len(src) != len(dst) {
		panic("graph: src/dst length mismatch")
	}
	if err := CheckScale(int64(n), int64(len(src))); err != nil {
		panic(err)
	}
	indptr := make([]int64, n+1)
	for _, d := range dst {
		indptr[d+1]++
	}
	for i := 1; i <= n; i++ {
		indptr[i] += indptr[i-1]
	}
	indices := make([]NodeID, len(src))
	cursor := make([]int64, n)
	copy(cursor, indptr[:n])
	for i, d := range dst {
		indices[cursor[d]] = src[i]
		cursor[d]++
	}
	return &CSR{Indptr: indptr, Indices: indices}
}

// InDegrees returns per-node adjacency list lengths (which are in-degrees
// under this package's storage convention).
func (g *CSR) InDegrees() []int32 {
	n := g.NumNodes()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(NodeID(v)))
	}
	return deg
}

// NodesByDegreeDesc returns node ids sorted by descending degree (stable:
// ties broken by ascending id) — the paper's default hot-node criterion.
func (g *CSR) NodesByDegreeDesc() []NodeID {
	n := g.NumNodes()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids
}

// PageRank computes PageRank scores with the given damping over iters
// iterations (one of the alternative hot-node criteria in the paper). The
// stored adjacency is in-neighbours, so the standard pull formulation
// applies directly: rank flows from in-neighbours.
func (g *CSR) PageRank(damping float64, iters int) []float64 {
	n := g.NumNodes()
	rank := make([]float64, n)
	next := make([]float64, n)
	outdeg := make([]int32, n)
	for _, u := range g.Indices {
		outdeg[u]++
	}
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if outdeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				next[v] += damping * rank[u] / float64(outdeg[u])
			}
		}
		rank, next = next, rank
	}
	return rank
}

// Reverse returns the transposed graph (out-neighbour lists), used for the
// reverse-PageRank hot-node criterion.
func (g *CSR) Reverse() *CSR {
	n := g.NumNodes()
	src := make([]NodeID, 0, len(g.Indices))
	dst := make([]NodeID, 0, len(g.Indices))
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			src = append(src, NodeID(v))
			dst = append(dst, u)
		}
	}
	return FromEdges(n, src, dst)
}

// Subgraph extracts the adjacency lists of the given nodes as a patch: a
// map from the node's position in nodes to its (global-id) adjacency list.
// The paper stores global ids in patch adjacency lists to avoid converting
// sampled nodes back from local ids.
type Patch struct {
	// Nodes are the global ids owned by this patch, ascending.
	Nodes []NodeID
	// CSR holds the adjacency lists of Nodes in order; indices are GLOBAL.
	Adj CSR
}

// ExtractPatch builds a patch for the given owned nodes (must be sorted
// ascending and unique). The source may be flat or compressed; a compressed
// source yields sorted adjacency lists.
func ExtractPatch(g Topology, nodes []NodeID) *Patch {
	p := &Patch{Nodes: nodes}
	p.Adj.Indptr = make([]int64, len(nodes)+1)
	var total int64
	for i, v := range nodes {
		total += int64(g.Degree(v))
		p.Adj.Indptr[i+1] = total
	}
	p.Adj.Indices = make([]NodeID, 0, total)
	for _, v := range nodes {
		p.Adj.Indices = append(p.Adj.Indices, g.Neighbors(v)...)
	}
	if g.Weighted() {
		p.Adj.Weights = make([]float32, 0, total)
		for _, v := range nodes {
			p.Adj.Weights = append(p.Adj.Weights, g.NeighborWeights(v)...)
		}
	}
	return p
}
