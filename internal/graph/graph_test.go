package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// triangle returns a small directed test graph:
// adjacency (in-neighbour) lists: 0:[1 2], 1:[0], 2:[0 1], 3:[].
func triangle() *CSR {
	return FromEdges(4,
		[]NodeID{1, 2, 0, 0, 1},
		[]NodeID{0, 0, 1, 2, 2})
}

func TestFromEdgesBasics(t *testing.T) {
	g := triangle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	nb := append([]NodeID(nil), g.Neighbors(0)...)
	sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
}

func TestFromEdgesPreservesMultiplicity(t *testing.T) {
	g := FromEdges(2, []NodeID{0, 0, 0}, []NodeID{1, 1, 1})
	if g.Degree(1) != 3 {
		t.Fatalf("multi-edge degree = %d, want 3", g.Degree(1))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := triangle()
	g.Indices[0] = 99
	if g.Validate() == nil {
		t.Fatal("out-of-range index not caught")
	}
	g = triangle()
	g.Indptr[1] = -1
	if g.Validate() == nil {
		t.Fatal("non-monotone indptr not caught")
	}
	g = triangle()
	g.Weights = []float32{1}
	if g.Validate() == nil {
		t.Fatal("weight length mismatch not caught")
	}
	g = triangle()
	g.Weights = []float32{1, 1, 1, 1, -1}
	if g.Validate() == nil {
		t.Fatal("negative weight not caught")
	}
}

func TestWeightSum(t *testing.T) {
	g := triangle()
	if got := g.WeightSum(0); got != 2 {
		t.Fatalf("unweighted WeightSum = %v, want degree 2", got)
	}
	g.Weights = []float32{0.5, 1.5, 1, 1, 1}
	if got := g.WeightSum(0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("weighted WeightSum = %v, want 2.0", got)
	}
}

func TestFromEdgesProperty(t *testing.T) {
	// Property: every emitted edge appears exactly once in the CSR.
	r := rng.New(7)
	check := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 2 + rr.Intn(50)
		m := rr.Intn(200)
		src := make([]NodeID, m)
		dst := make([]NodeID, m)
		count := map[[2]NodeID]int{}
		for i := 0; i < m; i++ {
			src[i] = NodeID(rr.Intn(n))
			dst[i] = NodeID(rr.Intn(n))
			count[[2]NodeID{src[i], dst[i]}]++
		}
		g := FromEdges(n, src, dst)
		if g.Validate() != nil || g.NumEdges() != int64(m) {
			return false
		}
		got := map[[2]NodeID]int{}
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				got[[2]NodeID{u, NodeID(v)}]++
			}
		}
		if len(got) != len(count) {
			return false
		}
		for k, c := range count {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(s uint64) bool { return check(s) }, &quick.Config{MaxCount: 50, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestNodesByDegreeDesc(t *testing.T) {
	g := triangle()
	order := g.NodesByDegreeDesc()
	if len(order) != 4 {
		t.Fatalf("len=%d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i]) > g.Degree(order[i-1]) {
			t.Fatalf("not descending at %d: %v", i, order)
		}
	}
	// Ties broken by ascending id: nodes 0 and 2 both have degree 2.
	if order[0] != 0 || order[1] != 2 {
		t.Fatalf("tie-break wrong: %v", order)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := triangle()
	pr := g.PageRank(0.85, 30)
	var sum float64
	for _, p := range pr {
		if p < 0 {
			t.Fatal("negative pagerank")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pagerank sum = %v", sum)
	}
}

func TestPageRankFavorsHubs(t *testing.T) {
	// Star: node 0 has in-edges from everyone.
	n := 20
	var src, dst []NodeID
	for i := 1; i < n; i++ {
		src = append(src, NodeID(i))
		dst = append(dst, 0)
		// Back edges so nothing dangles completely.
		src = append(src, 0)
		dst = append(dst, NodeID(i))
	}
	g := FromEdges(n, src, dst)
	pr := g.PageRank(0.85, 50)
	for i := 1; i < n; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub rank %v not above leaf rank %v", pr[0], pr[i])
		}
	}
}

func TestReverseIsInvolution(t *testing.T) {
	g := triangle()
	rr := g.Reverse().Reverse()
	if rr.NumNodes() != g.NumNodes() || rr.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed size")
	}
	for v := 0; v < g.NumNodes(); v++ {
		a := append([]NodeID(nil), g.Neighbors(NodeID(v))...)
		b := append([]NodeID(nil), rr.Neighbors(NodeID(v))...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			t.Fatalf("node %d: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: %v vs %v", v, a, b)
			}
		}
	}
}

func TestExtractPatch(t *testing.T) {
	g := triangle()
	g.Weights = []float32{1, 2, 3, 4, 5}
	p := ExtractPatch(g, []NodeID{0, 2})
	if len(p.Nodes) != 2 || p.Adj.NumNodes() != 2 {
		t.Fatalf("patch size wrong")
	}
	// Local node 0 is global 0: neighbours {1,2}, weights {1,2}.
	if got := p.Adj.Neighbors(0); len(got) != 2 {
		t.Fatalf("patch adjacency wrong: %v", got)
	}
	if got := p.Adj.NeighborWeights(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("patch weights wrong: %v", got)
	}
	// Local node 1 is global 2: neighbours {0,1}, weights {4,5}.
	if got := p.Adj.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("patch adjacency for local 1 wrong: %v", got)
	}
}

func TestTopologyBytes(t *testing.T) {
	g := triangle()
	want := int64(5*8 + 5*8) // 64-bit adjacency entries (see TopologyBytes)
	if got := g.TopologyBytes(); got != want {
		t.Fatalf("TopologyBytes=%d want %d", got, want)
	}
	g.Weights = make([]float32, 5)
	if got := g.TopologyBytes(); got != want+20 {
		t.Fatalf("weighted TopologyBytes=%d want %d", got, want+20)
	}
}
