package graph

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// randomCSR builds a random graph with controlled pathologies: node 0 has an
// empty adjacency list and node 1 carries the maximum degree.
func randomCSR(t *testing.T, n int, weighted bool, seed uint64) *CSR {
	t.Helper()
	r := rng.New(seed)
	var src, dst []NodeID
	maxDeg := 3 * n / 2
	for v := 0; v < n; v++ {
		var deg int
		switch v {
		case 0:
			deg = 0
		case 1:
			deg = maxDeg
		default:
			deg = r.Intn(8)
		}
		for k := 0; k < deg; k++ {
			src = append(src, NodeID(r.Intn(n)))
			dst = append(dst, NodeID(v))
		}
	}
	g := FromEdges(n, src, dst)
	if weighted {
		g.Weights = make([]float32, len(g.Indices))
		for i := range g.Weights {
			g.Weights[i] = float32(r.Float64()) + 1e-3
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("random graph invalid: %v", err)
	}
	return g
}

// TestCompressedRoundTrip is the property test of the compressed encoding:
// for random graphs (including an empty-adjacency node and a max-degree
// node), Decompress(Compress(g)) yields identical Indptr/Indices/Weights and
// identical per-node Neighbors views versus the canonical sorted flat CSR,
// at several decode block sizes.
func TestCompressedRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n         int
		weighted  bool
		blockSize int
		seed      uint64
	}{
		{1, false, 1, 1},
		{17, false, 1, 2},
		{64, false, 4, 3},
		{64, true, 1, 4},
		{200, true, 8, 5},
		{333, false, 7, 6},
	} {
		g := randomCSR(t, tc.n, tc.weighted, tc.seed)
		want := g.Sorted()
		c := CompressBlocks(g, tc.blockSize)
		if c.NumNodes() != want.NumNodes() || c.NumEdges() != want.NumEdges() {
			t.Fatalf("n=%d: size mismatch: %d/%d nodes, %d/%d edges",
				tc.n, c.NumNodes(), want.NumNodes(), c.NumEdges(), want.NumEdges())
		}
		back := c.Decompress()
		if !reflect.DeepEqual(back.Indptr, want.Indptr) {
			t.Fatalf("n=%d: indptr mismatch", tc.n)
		}
		if !equalIDs(back.Indices, want.Indices) {
			t.Fatalf("n=%d: indices mismatch", tc.n)
		}
		if (back.Weights == nil) != (want.Weights == nil) || !equalF32(back.Weights, want.Weights) {
			t.Fatalf("n=%d: weights mismatch", tc.n)
		}
		for v := 0; v < tc.n; v++ {
			id := NodeID(v)
			if c.Degree(id) != want.Degree(id) {
				t.Fatalf("n=%d node %d: degree %d != %d", tc.n, v, c.Degree(id), want.Degree(id))
			}
			if got, exp := c.Neighbors(id), want.Neighbors(id); !equalIDs(got, exp) {
				t.Fatalf("n=%d node %d: neighbors %v != %v", tc.n, v, got, exp)
			}
			if got, exp := c.NeighborWeights(id), want.NeighborWeights(id); !equalF32(got, exp) {
				t.Fatalf("n=%d node %d: weights %v != %v", tc.n, v, got, exp)
			}
			if math.Abs(c.WeightSum(id)-want.WeightSum(id)) > 1e-9 {
				t.Fatalf("n=%d node %d: weight sum %g != %g", tc.n, v, c.WeightSum(id), want.WeightSum(id))
			}
		}
	}
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompressionRatio checks that a community-structured graph (small id
// gaps) compresses well below the 8-bytes-per-edge flat accounting.
func TestCompressionRatio(t *testing.T) {
	g := randomCSR(t, 500, false, 7)
	c := Compress(g)
	flat, comp := g.TopologyBytes(), c.TopologyBytes()
	if comp >= flat {
		t.Fatalf("compressed %d >= flat %d bytes", comp, flat)
	}
}

// TestRangeBytes asserts the per-range accounting tiles the whole graph.
func TestRangeBytes(t *testing.T) {
	g := randomCSR(t, 96, true, 9)
	for _, bs := range []int{1, 8, 32} {
		c := CompressBlocks(g, bs)
		var sum int64
		for lo := 0; lo < 96; lo += bs {
			hi := lo + bs
			if hi > 96 {
				hi = 96
			}
			sum += c.RangeBytes(NodeID(lo), NodeID(hi))
		}
		if sum != c.TopologyBytes() {
			t.Fatalf("block size %d: range bytes sum %d != topology bytes %d", bs, sum, c.TopologyBytes())
		}
	}
	var sum int64
	for lo := 0; lo < 96; lo += 16 {
		sum += g.RangeBytes(NodeID(lo), NodeID(lo+16))
	}
	if sum != g.TopologyBytes() {
		t.Fatalf("flat range bytes sum %d != topology bytes %d", sum, g.TopologyBytes())
	}
}

// TestNodeBytes asserts per-node encoded sizes tile each block exactly.
func TestNodeBytes(t *testing.T) {
	g := randomCSR(t, 64, false, 11)
	for _, bs := range []int{1, 4} {
		c := CompressBlocks(g, bs)
		var sum int64
		for v := 0; v < 64; v++ {
			sum += c.NodeBytes(NodeID(v))
		}
		if sum != int64(len(c.Data)) {
			t.Fatalf("block size %d: node bytes sum %d != data len %d", bs, sum, len(c.Data))
		}
	}
}

// TestCheckScale exercises the 100M+-scale overflow guards.
func TestCheckScale(t *testing.T) {
	if err := CheckScale(150_000_000, 5_000_000_000); err != nil {
		t.Fatalf("valid 150M-node scale rejected: %v", err)
	}
	if err := CheckScale(int64(math.MaxInt32), 0); err == nil {
		t.Fatal("node count beyond int32 id space accepted")
	}
	if err := CheckScale(1000, MaxEdges+1); err == nil {
		t.Fatal("edge count beyond MaxEdges accepted")
	}
	if err := CheckScale(-1, 0); err == nil {
		t.Fatal("negative node count accepted")
	}
}

// TestSortedPreservesPairs asserts Sorted keeps (id, weight) pairs intact.
func TestSortedPreservesPairs(t *testing.T) {
	g := randomCSR(t, 50, true, 13)
	s := g.Sorted()
	if err := s.Validate(); err != nil {
		t.Fatalf("sorted graph invalid: %v", err)
	}
	for v := NodeID(0); int(v) < 50; v++ {
		type pair struct {
			id NodeID
			w  float32
		}
		orig := map[pair]int{}
		for i, u := range g.Neighbors(v) {
			orig[pair{u, g.NeighborWeights(v)[i]}]++
		}
		got := map[pair]int{}
		ids := s.Neighbors(v)
		for i, u := range ids {
			got[pair{u, s.NeighborWeights(v)[i]}]++
			if i > 0 && ids[i-1] > u {
				t.Fatalf("node %d: sorted adjacency out of order", v)
			}
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("node %d: (id, weight) multiset changed", v)
		}
	}
}
