package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
)

// MaxNodes is the largest node count a graph may carry: NodeID is int32, so
// ids must fit in [0, MaxInt32). Edge counts and byte offsets are int64
// throughout and are checked against MaxEdges.
const MaxNodes = math.MaxInt32 - 1

// MaxEdges bounds total adjacency entries so byte-offset arithmetic
// (8 bytes/entry in the flat accounting) cannot overflow int64 and slice
// sizing cannot overflow int on 64-bit hosts.
const MaxEdges = int64(1) << 40

// CheckScale validates a (node count, edge count) pair against the storage
// limits. gen and FromEdges call it before sizing any slice, so 100M+-node
// configurations fail loudly instead of corrupting int32 ids.
func CheckScale(nodes int64, edges int64) error {
	if nodes < 0 || edges < 0 {
		return fmt.Errorf("graph: negative scale (%d nodes, %d edges)", nodes, edges)
	}
	if nodes > MaxNodes {
		return fmt.Errorf("graph: %d nodes exceeds MaxNodes %d (NodeID is int32)", nodes, MaxNodes)
	}
	if edges > MaxEdges {
		return fmt.Errorf("graph: %d edges exceeds MaxEdges %d", edges, MaxEdges)
	}
	return nil
}

// Topology is the read interface over a graph's adjacency structure. The
// sampling layers (internal/sample, internal/csp) consume it instead of the
// concrete *CSR so the compressed representation is a drop-in: both return
// identical neighbour lists for the same canonical (sorted) graph.
type Topology interface {
	NumNodes() int
	NumEdges() int64
	Degree(v NodeID) int
	// Neighbors returns v's adjacency list. CSR returns a view into its
	// arrays; CompressedCSR decodes a fresh slice. Callers must not mutate.
	Neighbors(v NodeID) []NodeID
	// NeighborWeights returns the weights aligned with Neighbors(v), or nil
	// for unweighted graphs.
	NeighborWeights(v NodeID) []float32
	WeightSum(v NodeID) float64
	// Weighted reports whether the graph carries per-edge sampling weights.
	Weighted() bool
	// TopologyBytes is the simulated memory footprint of the representation.
	TopologyBytes() int64
}

var (
	_ Topology = (*CSR)(nil)
	_ Topology = (*CompressedCSR)(nil)
)

// Weighted implements Topology.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// Sorted returns a copy of g with every adjacency list sorted by neighbour
// id (weights permuted alongside) — the canonical form the compressed
// encoding stores. Sampling draws depend on adjacency order, so systems that
// compare against the compressed representation must sample the sorted flat
// graph.
func (g *CSR) Sorted() *CSR {
	n := g.NumNodes()
	out := &CSR{Indptr: append([]int64(nil), g.Indptr...)}
	out.Indices = append([]NodeID(nil), g.Indices...)
	if g.Weights != nil {
		out.Weights = append([]float32(nil), g.Weights...)
	}
	for v := 0; v < n; v++ {
		lo, hi := out.Indptr[v], out.Indptr[v+1]
		ids := out.Indices[lo:hi]
		if out.Weights == nil {
			slices.Sort(ids)
			continue
		}
		sort.Stable(idWeightPairs{ids, out.Weights[lo:hi]})
	}
	return out
}

// idWeightPairs sorts an id slice and its aligned weight slice together.
type idWeightPairs struct {
	ids []NodeID
	ws  []float32
}

func (p idWeightPairs) Len() int           { return len(p.ids) }
func (p idWeightPairs) Less(a, b int) bool { return p.ids[a] < p.ids[b] }
func (p idWeightPairs) Swap(a, b int) {
	p.ids[a], p.ids[b] = p.ids[b], p.ids[a]
	p.ws[a], p.ws[b] = p.ws[b], p.ws[a]
}

// CompressedCSR stores adjacency lists delta-sorted and varint-encoded, the
// FastSample-style format: per node, a uvarint degree, the first neighbour
// id as a uvarint, then successive gaps (id[i] - id[i-1]) as uvarints.
// Sorted lists make every gap non-negative and small inside communities, so
// typical social/citation graphs encode in 1-2 bytes per edge against the 8
// bytes per edge the flat accounting charges.
//
// Offsets holds byte offsets into Data at BlockSize-node granularity
// (BlockSize 1 = per-node decode; larger blocks trade offset memory for a
// short in-block walk). EdgeOff mirrors it with first-edge indices so
// weighted graphs can locate their raw float32 weight runs.
type CompressedCSR struct {
	N         int
	Edges     int64
	BlockSize int
	Offsets   []int64
	EdgeOff   []int64
	Data      []byte
	// Weights, when non-nil, holds per-edge sampling weights in the same
	// sorted order as the encoded ids (weights do not delta-compress).
	Weights []float32
}

// Compress encodes g (canonicalised with Sorted) with per-node offsets.
func Compress(g *CSR) *CompressedCSR { return CompressBlocks(g, 1) }

// CompressBlocks encodes g with offsets every blockSize nodes.
func CompressBlocks(g *CSR, blockSize int) *CompressedCSR {
	if blockSize < 1 {
		blockSize = 1
	}
	n := g.NumNodes()
	enc := NewEncoder(n, blockSize, g.Weights != nil)
	ids := make([]NodeID, 0, 64)
	var ws []float32
	for v := 0; v < n; v++ {
		ids = append(ids[:0], g.Neighbors(NodeID(v))...)
		if g.Weights != nil {
			ws = append(ws[:0], g.NeighborWeights(NodeID(v))...)
			sort.Stable(idWeightPairs{ids, ws})
		} else {
			slices.Sort(ids)
			ws = nil
		}
		enc.AppendNode(ids, ws)
	}
	return enc.Finish()
}

// Encoder streams adjacency lists into a CompressedCSR one node at a time,
// in ascending node order, without ever materialising the flat arrays —
// internal/gen uses it to emit 100M+-node graphs directly in compressed
// form.
type Encoder struct {
	c      *CompressedCSR
	next   int
	varbuf [binary.MaxVarintLen64]byte
}

// NewEncoder starts an encoder for n nodes.
func NewEncoder(n, blockSize int, weighted bool) *Encoder {
	if blockSize < 1 {
		blockSize = 1
	}
	if err := CheckScale(int64(n), 0); err != nil {
		panic(err)
	}
	nb := 0
	if n > 0 {
		nb = (n + blockSize - 1) / blockSize
	}
	c := &CompressedCSR{N: n, BlockSize: blockSize,
		Offsets: make([]int64, 1, nb+1), EdgeOff: make([]int64, 1, nb+1)}
	if weighted {
		c.Weights = []float32{}
	}
	return &Encoder{c: c}
}

// AppendNode encodes the next node's adjacency list. ids must be sorted
// ascending; weights must be nil for unweighted encoders and id-aligned
// otherwise.
func (e *Encoder) AppendNode(ids []NodeID, weights []float32) {
	if e.next >= e.c.N {
		panic("graph: Encoder.AppendNode past node count")
	}
	if e.c.Weights == nil && len(weights) > 0 {
		panic("graph: weights passed to unweighted Encoder")
	}
	if e.c.Weights != nil && len(weights) != len(ids) {
		panic("graph: Encoder weights not aligned with ids")
	}
	c := e.c
	k := binary.PutUvarint(e.varbuf[:], uint64(len(ids)))
	c.Data = append(c.Data, e.varbuf[:k]...)
	prev := NodeID(0)
	for i, u := range ids {
		if i > 0 && u < prev {
			panic("graph: Encoder.AppendNode ids not sorted")
		}
		delta := uint64(u)
		if i > 0 {
			delta = uint64(u - prev)
		}
		k = binary.PutUvarint(e.varbuf[:], delta)
		c.Data = append(c.Data, e.varbuf[:k]...)
		prev = u
	}
	if weights != nil {
		c.Weights = append(c.Weights, weights...)
	}
	c.Edges += int64(len(ids))
	e.next++
	if e.next%c.BlockSize == 0 || e.next == c.N {
		c.Offsets = append(c.Offsets, int64(len(c.Data)))
		c.EdgeOff = append(c.EdgeOff, c.Edges)
	}
	if err := CheckScale(int64(c.N), c.Edges); err != nil {
		panic(err)
	}
}

// Finish returns the encoded graph; the encoder must have seen all n nodes.
func (e *Encoder) Finish() *CompressedCSR {
	if e.next != e.c.N {
		panic(fmt.Sprintf("graph: Encoder finished at node %d of %d", e.next, e.c.N))
	}
	return e.c
}

// NumNodes implements Topology.
func (c *CompressedCSR) NumNodes() int { return c.N }

// NumEdges implements Topology.
func (c *CompressedCSR) NumEdges() int64 { return c.Edges }

// Weighted implements Topology.
func (c *CompressedCSR) Weighted() bool { return c.Weights != nil }

// seek walks to node v inside its block and returns the byte position of
// v's encoded list, its first-edge index, and its degree.
func (c *CompressedCSR) seek(v NodeID) (pos int64, edge int64, deg int) {
	b := int(v) / c.BlockSize
	pos, edge = c.Offsets[b], c.EdgeOff[b]
	for u := NodeID(b * c.BlockSize); ; u++ {
		d, k := binary.Uvarint(c.Data[pos:])
		if k <= 0 {
			panic("graph: corrupt compressed adjacency")
		}
		if u == v {
			return pos + int64(k), edge, int(d)
		}
		pos += int64(k)
		for i := uint64(0); i < d; i++ {
			_, k = binary.Uvarint(c.Data[pos:])
			if k <= 0 {
				panic("graph: corrupt compressed adjacency")
			}
			pos += int64(k)
		}
		edge += int64(d)
	}
}

// Degree implements Topology by decoding the degree varint.
func (c *CompressedCSR) Degree(v NodeID) int {
	_, _, deg := c.seek(v)
	return deg
}

// Neighbors implements Topology: it decodes v's sorted adjacency list into
// a fresh slice.
func (c *CompressedCSR) Neighbors(v NodeID) []NodeID {
	pos, _, deg := c.seek(v)
	out := make([]NodeID, deg)
	prev := NodeID(0)
	for i := 0; i < deg; i++ {
		d, k := binary.Uvarint(c.Data[pos:])
		if k <= 0 {
			panic("graph: corrupt compressed adjacency")
		}
		pos += int64(k)
		if i == 0 {
			prev = NodeID(d)
		} else {
			prev += NodeID(d)
		}
		out[i] = prev
	}
	return out
}

// NeighborWeights implements Topology (a view into the sorted weight run).
func (c *CompressedCSR) NeighborWeights(v NodeID) []float32 {
	if c.Weights == nil {
		return nil
	}
	_, edge, deg := c.seek(v)
	return c.Weights[edge : edge+int64(deg)]
}

// WeightSum implements Topology.
func (c *CompressedCSR) WeightSum(v NodeID) float64 {
	if c.Weights == nil {
		return float64(c.Degree(v))
	}
	var s float64
	for _, w := range c.NeighborWeights(v) {
		s += float64(w)
	}
	return s
}

// TopologyBytes implements Topology: the encoded bytes plus the offset
// tables (and raw weights when present). This is what actually sits in
// memory, against the 8-bytes-per-edge flat accounting.
func (c *CompressedCSR) TopologyBytes() int64 {
	b := int64(len(c.Data)) + int64(len(c.Offsets))*8 + int64(len(c.EdgeOff))*8
	if c.Weights != nil {
		b += int64(len(c.Weights)) * 4
	}
	return b
}

// NodeBytes returns the encoded size of v's adjacency list (degree varint
// included) — the decode work a sampler touching v pays.
func (c *CompressedCSR) NodeBytes(v NodeID) int64 {
	pos, _, deg := c.seek(v)
	end := pos
	for i := 0; i < deg; i++ {
		_, k := binary.Uvarint(c.Data[end:])
		end += int64(k)
	}
	// seek already skipped the degree varint; charge it too.
	b := int(v) / c.BlockSize
	if int(v) == b*c.BlockSize {
		return end - c.Offsets[b]
	}
	return end - pos + varintLen(uint64(deg))
}

func varintLen(x uint64) int64 {
	n := int64(1)
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// RangeBytes returns the resident bytes of nodes [lo, hi): encoded
// adjacency plus the per-block offset-table share plus weights. lo and hi
// must be BlockSize-aligned (hi may be N) so block boundaries are exact —
// the out-of-core store aligns its blocks to the encoding.
func (c *CompressedCSR) RangeBytes(lo, hi NodeID) int64 {
	bl, bh := c.blockIndex(lo, "lo"), c.blockIndex(hi, "hi")
	b := c.Offsets[bh] - c.Offsets[bl] + int64(bh-bl)*16
	if bh == len(c.Offsets)-1 {
		b += 16 // the trailing offset-table sentinel lives with the last range
	}
	if c.Weights != nil {
		b += (c.EdgeOff[bh] - c.EdgeOff[bl]) * 4
	}
	return b
}

func (c *CompressedCSR) blockIndex(v NodeID, what string) int {
	if int(v) == c.N {
		return len(c.Offsets) - 1
	}
	if int(v)%c.BlockSize != 0 {
		panic(fmt.Sprintf("graph: RangeBytes %s=%d not aligned to block size %d", what, v, c.BlockSize))
	}
	return int(v) / c.BlockSize
}

// RangeBytes returns the flat resident bytes of nodes [lo, hi) (indptr
// share plus 8-byte adjacency entries, plus weights), mirroring
// TopologyBytes' accounting.
func (g *CSR) RangeBytes(lo, hi NodeID) int64 {
	edges := g.Indptr[hi] - g.Indptr[lo]
	b := int64(hi-lo)*8 + edges*8
	if int(hi) == g.NumNodes() {
		b += 8 // the trailing indptr sentinel lives with the last range
	}
	if g.Weights != nil {
		b += edges * 4
	}
	return b
}

// Decompress expands the graph back to flat CSR (adjacency lists sorted, as
// stored). The property test asserts Decompress(Compress(g)) equals
// g.Sorted() byte for byte.
func (c *CompressedCSR) Decompress() *CSR {
	g := &CSR{Indptr: make([]int64, c.N+1), Indices: make([]NodeID, 0, c.Edges)}
	for v := 0; v < c.N; v++ {
		g.Indices = append(g.Indices, c.Neighbors(NodeID(v))...)
		g.Indptr[v+1] = int64(len(g.Indices))
	}
	if c.Weights != nil {
		g.Weights = append([]float32(nil), c.Weights...)
	}
	return g
}
