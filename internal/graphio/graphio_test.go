package graphio

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/train"
)

func sampleData(t *testing.T, weighted bool) *train.Data {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "io", Nodes: 1500, AvgDegree: 9, FeatDim: 6, NumClasses: 5, Seed: 17,
	})
	if weighted {
		d.AttachUniformWeights(3)
	}
	td := train.Prepare(d, 3, 2, true)
	td.ScaleFactor = 123.5
	td.GPUMemBytes = 1 << 26
	td.BenchBatch = 96
	return td
}

func equalData(t *testing.T, a, b *train.Data) {
	t.Helper()
	if a.Name != b.Name || a.FeatDim != b.FeatDim || a.NumClasses != b.NumClasses {
		t.Fatal("metadata differs")
	}
	if a.ScaleFactor != b.ScaleFactor || a.GPUMemBytes != b.GPUMemBytes || a.BenchBatch != b.BenchBatch {
		t.Fatal("scaling metadata differs")
	}
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("graph shape differs")
	}
	for i := range a.G.Indices {
		if a.G.Indices[i] != b.G.Indices[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
	if (a.G.Weights == nil) != (b.G.Weights == nil) {
		t.Fatal("weights presence differs")
	}
	for i := range a.G.Weights {
		if a.G.Weights[i] != b.G.Weights[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
	for i := range a.Feats {
		if a.Feats[i] != b.Feats[i] {
			t.Fatalf("features differ at %d", i)
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
	if len(a.Shards) != len(b.Shards) {
		t.Fatal("shard count differs")
	}
	for g := range a.Shards {
		for i := range a.Shards[g] {
			if a.Shards[g][i] != b.Shards[g][i] {
				t.Fatalf("shard %d differs at %d", g, i)
			}
		}
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatal("offsets differ")
		}
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("val split differs")
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		td := sampleData(t, weighted)
		var buf bytes.Buffer
		if err := WriteData(&buf, td); err != nil {
			t.Fatal(err)
		}
		got, err := ReadData(&buf)
		if err != nil {
			t.Fatal(err)
		}
		equalData(t, td, got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	td := sampleData(t, false)
	path := filepath.Join(t.TempDir(), "papers.dspd")
	if err := SaveFile(path, td); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalData(t, td, got)
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadData(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedFile(t *testing.T) {
	td := sampleData(t, false)
	var buf bytes.Buffer
	if err := WriteData(&buf, td); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		cut := buf.Bytes()[:buf.Len()/frac]
		if _, err := ReadData(bytes.NewReader(cut)); err == nil {
			t.Fatalf("truncation at 1/%d accepted", frac)
		}
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	td := sampleData(t, false)
	var buf bytes.Buffer
	if err := WriteData(&buf, td); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first length field (the name length, right after the
	// 4-byte magic + 4-byte version) to an absurd value.
	for i := 8; i < 16; i++ {
		b[i] = 0xff
	}
	if _, err := ReadData(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestLoadedDataTrains(t *testing.T) {
	// A round-tripped dataset must be usable end to end.
	td := sampleData(t, false)
	var buf bytes.Buffer
	if err := WriteData(&buf, td); err != nil {
		t.Fatal(err)
	}
	got, err := ReadData(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sched := train.NewSchedule(got, 64)
	if sched.Steps == 0 {
		t.Fatal("no steps")
	}
	seeds := sched.Batch(got, 1, 0, 0, 0)
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
}
