package graphio

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/train"
)

// FuzzReadData hardens the binary parser against corrupt inputs: it must
// return an error or a valid dataset, never panic or over-allocate.
func FuzzReadData(f *testing.F) {
	d := gen.Generate(gen.Config{
		Name: "fz", Nodes: 60, AvgDegree: 4, FeatDim: 2, NumClasses: 2, Seed: 9,
	})
	td := train.Prepare(d, 2, 1, false)
	var buf bytes.Buffer
	if err := WriteData(&buf, td); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("DSPD"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadData(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid.
		if err := got.G.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		if len(got.Feats) != got.G.NumNodes()*got.FeatDim {
			t.Fatal("accepted inconsistent features")
		}
	})
}
