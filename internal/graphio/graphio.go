// Package graphio persists datasets and prepared (partitioned, renumbered)
// training data in a compact binary format, mirroring the paper artifact's
// preprocessing step: "partition.sh ... The partitioned graph is stored on
// disk, which is used as the default data directory in subsequent
// experiments". Generating and partitioning large stand-ins is the most
// expensive host-side step, so benchmarks and CLIs can do it once.
//
// Format (little-endian, versioned):
//
//	magic "DSPG" | version u32 | name | graph CSR | feat dim | features |
//	labels | classes | splits / shards | offsets | scaling metadata
//
// Strings and slices are length-prefixed (u64).
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/train"
)

const (
	magic   = "DSPD"
	version = 1
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u32(v uint32) {
	if w.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, w.err = w.w.Write(b[:])
}

func (w *writer) u64(v uint64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, w.err = w.w.Write(b[:])
}

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *writer) i64s(s []int64) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.u64(uint64(v))
	}
}

func (w *writer) i32s(s []int32) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.u32(uint32(v))
	}
}

func (w *writer) f32s(s []float32) {
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.u32(math.Float32bits(v))
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// maxLen bounds any single slice in a file (2^34 elements) to fail fast on
// corrupt headers instead of attempting absurd loops.
const maxLen = 1 << 34

// allocChunk bounds the UP-FRONT allocation for a claimed length: slices
// grow by appending as bytes actually arrive, so a corrupt header cannot
// trigger a giant allocation — the read fails at end-of-input first.
const allocChunk = 1 << 16

func (r *reader) length() int {
	n := r.u64()
	if r.err == nil && n > maxLen {
		r.err = fmt.Errorf("graphio: implausible length %d (corrupt file?)", n)
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

func initialCap(n int) int {
	if n > allocChunk {
		return allocChunk
	}
	return n
}

func (r *reader) str() string {
	n := r.length()
	if r.err != nil {
		return ""
	}
	b := make([]byte, 0, initialCap(n))
	var chunk [4096]byte
	for len(b) < n && r.err == nil {
		want := n - len(b)
		if want > len(chunk) {
			want = len(chunk)
		}
		var read int
		read, r.err = io.ReadFull(r.r, chunk[:want])
		b = append(b, chunk[:read]...)
	}
	return string(b)
}

func (r *reader) i64s() []int64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int64, 0, initialCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int64(r.u64()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) i32s() []int32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int32, 0, initialCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int32(r.u32()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) f32s() []float32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]float32, 0, initialCap(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, math.Float32frombits(r.u32()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

// WriteData serialises prepared training data (layout order, shards,
// offsets, scaling metadata) to w.
func WriteData(dst io.Writer, d *train.Data) error {
	w := &writer{w: bufio.NewWriterSize(dst, 1<<20)}
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	w.u32(version)
	w.str(d.Name)
	// Graph.
	w.i64s(d.G.Indptr)
	w.i32s(d.G.Indices)
	if d.G.Weights != nil {
		w.u32(1)
		w.f32s(d.G.Weights)
	} else {
		w.u32(0)
	}
	// Features, labels, meta.
	w.u32(uint32(d.FeatDim))
	w.f32s(d.Feats)
	w.i32s(d.Labels)
	w.u32(uint32(d.NumClasses))
	// Layout.
	w.i64s(d.Offsets)
	w.u64(uint64(len(d.Shards)))
	for _, s := range d.Shards {
		w.i32s(s)
	}
	w.i32s(d.Val)
	w.u64(math.Float64bits(d.ScaleFactor))
	w.u64(uint64(d.GPUMemBytes))
	w.u32(uint32(d.BenchBatch))
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ReadData deserialises prepared training data and validates the graph.
func ReadData(src io.Reader) (*train.Data, error) {
	r := &reader{r: bufio.NewReaderSize(src, 1<<20)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, fmt.Errorf("graphio: bad magic %q", head)
	}
	if v := r.u32(); r.err == nil && v != version {
		return nil, fmt.Errorf("graphio: unsupported version %d", v)
	}
	d := &train.Data{}
	d.Name = r.str()
	g := &graph.CSR{}
	g.Indptr = r.i64s()
	g.Indices = r.i32s()
	if r.u32() == 1 {
		g.Weights = r.f32s()
	}
	d.G = g
	d.FeatDim = int(r.u32())
	d.Feats = r.f32s()
	d.Labels = r.i32s()
	d.NumClasses = int(r.u32())
	d.Offsets = r.i64s()
	nShards := r.length()
	for i := 0; i < nShards && r.err == nil; i++ {
		d.Shards = append(d.Shards, r.i32s())
	}
	d.Val = r.i32s()
	d.ScaleFactor = math.Float64frombits(r.u64())
	d.GPUMemBytes = int64(r.u64())
	d.BenchBatch = int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if len(d.Feats) != g.NumNodes()*d.FeatDim {
		return nil, fmt.Errorf("graphio: %d features for %d nodes x %d dims",
			len(d.Feats), g.NumNodes(), d.FeatDim)
	}
	if len(d.Labels) != g.NumNodes() {
		return nil, fmt.Errorf("graphio: %d labels for %d nodes", len(d.Labels), g.NumNodes())
	}
	if len(d.Offsets) != len(d.Shards)+1 {
		return nil, fmt.Errorf("graphio: %d offsets for %d shards", len(d.Offsets), len(d.Shards))
	}
	return d, nil
}

// SaveFile writes prepared data to path (atomically via a temp file).
func SaveFile(path string, d *train.Data) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteData(f, d); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads prepared data from path.
func LoadFile(path string) (*train.Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadData(f)
}
