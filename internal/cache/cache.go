// Package cache is the adaptive feature-cache subsystem layered over
// featstore: an always-on access tracker, an epoch-boundary (training) or
// interval (serving) shard rebalancer, and tiered hit accounting.
//
// DSP's tailored data layout picks each GPU's hot rows once, offline, by a
// presample score (degree by default). Under workload drift — popularity
// shifts in serving, frontier skew across training epochs — that static
// placement decays toward host-fetch latency. The manager here closes the
// loop: every gather feeds EWMA-decayed per-row hotness counters, and at
// rebalance points the hottest cold rows of each GPU's own id range are
// promoted into its shard while the coldest cached rows are demoted, keeping
// the per-GPU row budget constant. Promotion traffic is charged to the
// simulated PCIe fabric (hw.TrafficCache), so adaptation overhead is visible
// in virtual time, not free.
//
// Everything is deterministic: counters are plain per-node float64 slices,
// candidate rankings break ties by node id, and rebalances run at seeded
// virtual times — two same-seed runs produce bit-identical placements, tier
// counts and migration byte totals.
package cache

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/featstore"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Policy selects how the rebalancer ranks candidate rows.
type Policy int

const (
	// Static keeps the offline presample placement: the tracker still
	// records accesses (for accounting) but no rebalancing happens. This is
	// the DSP-paper baseline.
	Static Policy = iota
	// LFUDecay ranks rows purely by the EWMA-decayed access frequency.
	LFUDecay
	// DegreeHybrid blends the decayed frequency with a normalized degree
	// prior, so rows with no observations yet still rank by the offline
	// score (useful early, before the tracker warms up).
	DegreeHybrid
)

func (p Policy) String() string {
	switch p {
	case LFUDecay:
		return "lfu-decay"
	case DegreeHybrid:
		return "degree-hybrid"
	default:
		return "static"
	}
}

// ParsePolicy maps CLI spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static", "":
		return Static, nil
	case "lfu", "lfu-decay":
		return LFUDecay, nil
	case "hybrid", "degree-hybrid":
		return DegreeHybrid, nil
	default:
		return Static, fmt.Errorf("cache: unknown policy %q (want static, lfu or hybrid)", s)
	}
}

// Tiers counts feature-row reads by placement tier: the requesting GPU's own
// cache, a peer GPU's cache over NVLink, or host memory over PCIe.
type Tiers struct {
	Local, Peer, Host int64
}

// Total is the number of rows read.
func (t Tiers) Total() int64 { return t.Local + t.Peer + t.Host }

// HitRate is the fraction served by any GPU cache (local or peer).
func (t Tiers) HitRate() float64 {
	if tot := t.Total(); tot > 0 {
		return float64(t.Local+t.Peer) / float64(tot)
	}
	return 0
}

// Add accumulates o into t.
func (t *Tiers) Add(o Tiers) {
	t.Local += o.Local
	t.Peer += o.Peer
	t.Host += o.Host
}

// Config tunes the manager. The zero value is a valid always-on tracker with
// the Static (no-rebalance) policy.
type Config struct {
	Policy Policy
	// Decay multiplies every hotness counter at each rebalance (EWMA with a
	// per-rebalance half-life; default 0.5). Must be in (0, 1].
	Decay float64
	// MaxMovesPerGPU caps promotions per GPU per rebalance, bounding the
	// migration burst a single rebalance may charge (default 1024).
	MaxMovesPerGPU int
	// DegreeWeight scales the degree prior under DegreeHybrid: a max-degree
	// row with no observations ranks like a row observed DegreeWeight times
	// (default 1).
	DegreeWeight float64
}

func (c Config) defaults() Config {
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.5
	}
	if c.MaxMovesPerGPU <= 0 {
		c.MaxMovesPerGPU = 1024
	}
	if c.DegreeWeight <= 0 {
		c.DegreeWeight = 1
	}
	return c
}

// Stats is the manager's cumulative accounting.
type Stats struct {
	// Tiers are fleet-total committed read counts; PerGPU the per-requester
	// components they sum from.
	Tiers  Tiers
	PerGPU []Tiers
	// Rebalances counts rebalance passes; Promoted/Demoted the rows moved
	// in/out of GPU shards; MovedBytes the promotion bytes charged to PCIe;
	// RebalanceTime the virtual time spent migrating.
	Rebalances    int
	Promoted      int64
	Demoted       int64
	MovedBytes    int64
	RebalanceTime sim.Time
}

// Clone returns a deep copy (PerGPU is a fresh slice).
func (s Stats) Clone() Stats {
	s.PerGPU = append([]Tiers(nil), s.PerGPU...)
	return s
}

// Manager owns the adaptive cache state for one store. All methods run in
// engine context (the simulation is single-threaded), so no locking.
type Manager struct {
	store   *featstore.Store
	cfg     Config
	offsets []int64
	// counts[v] is v's EWMA-decayed access frequency; prior[v] the
	// normalized degree prior.
	counts []float64
	prior  []float64
	view   *fault.View
	tracer *trace.Tracer
	pid    int
	stats  Stats
}

// New builds a manager over a store. g supplies the degree prior; offsets
// are the per-GPU ownership ranges of the layout (promotion candidates for
// GPU g are its own range, as in the partitioned layout).
func New(store *featstore.Store, g *graph.CSR, offsets []int64, cfg Config) *Manager {
	n := store.NumRows()
	m := &Manager{
		store:   store,
		cfg:     cfg.defaults(),
		offsets: offsets,
		counts:  make([]float64, n),
		prior:   make([]float64, n),
	}
	maxDeg := 1
	for v := 0; v < n; v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	for v := 0; v < n; v++ {
		m.prior[v] = float64(g.Degree(graph.NodeID(v))) / float64(maxDeg)
	}
	m.stats.PerGPU = make([]Tiers, store.NumGPUs)
	return m
}

// SetView attaches the fleet-membership view: dead GPUs are skipped by the
// rebalancer, and Split re-routes reads of their shards to host memory.
func (m *Manager) SetView(v *fault.View) { m.view = v }

// SetTracer attaches a tracer; rebalances emit counter samples and instant
// markers on process lane pid.
func (m *Manager) SetTracer(t *trace.Tracer, pid int) {
	m.tracer = t
	m.pid = pid
}

// Policy returns the configured policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

// Dynamic reports whether rebalancing is active: a non-static policy over a
// partitioned store (the other layouts have no per-GPU shards to rebalance).
func (m *Manager) Dynamic() bool {
	return m.cfg.Policy != Static && m.store.Layout == featstore.Partitioned
}

// Split is the tracked replacement for featstore.Store.Split: it records
// every requested row into the hotness counters, classifies the request by
// placement for requesting GPU g, and — when a membership view is attached —
// re-routes rows cached on dead GPUs to the host tier (the shard is
// unreachable; the master copy in host RAM is not).
//
// Tier counts are NOT committed here: compute them from the returned lists
// and call Account when the read actually completes, so aborted collective
// attempts do not double-count (the hotness counters deliberately do count
// every attempt — the access pattern is real even if the round retries).
func (m *Manager) Split(ids []graph.NodeID, g int) (local []graph.NodeID, remote [][]graph.NodeID, host []graph.NodeID) {
	for _, v := range ids {
		m.counts[v]++
	}
	local, remote, host = m.store.Split(ids, g)
	if m.view != nil {
		for q := range remote {
			if len(remote[q]) > 0 && !m.view.Alive(q) {
				host = append(host, remote[q]...)
				remote[q] = nil
			}
		}
	}
	return local, remote, host
}

// CountTiers folds a Split result into tier counts.
func CountTiers(local []graph.NodeID, remote [][]graph.NodeID, host []graph.NodeID) Tiers {
	t := Tiers{Local: int64(len(local)), Host: int64(len(host))}
	for _, rq := range remote {
		t.Peer += int64(len(rq))
	}
	return t
}

// Account commits tier counts for requesting GPU g (call once per completed
// read; serving calls it when a round survives its collective attempts).
func (m *Manager) Account(g int, t Tiers) {
	m.stats.PerGPU[g].Add(t)
	m.stats.Tiers.Add(t)
}

// Stats returns a snapshot of the cumulative accounting.
func (m *Manager) Stats() Stats { return m.stats.Clone() }

// score ranks row v for shard residency under the configured policy.
func (m *Manager) score(v int) float64 {
	if m.cfg.Policy == DegreeHybrid {
		return m.counts[v] + m.cfg.DegreeWeight*m.prior[v]
	}
	return m.counts[v]
}

// Rebalance runs one adaptation pass: for every live GPU, promote the
// hottest uncached rows of its own id range into its shard and demote the
// coldest cached rows, one-for-one, so the row budget set at build time
// never changes. Promotions are staged host→GPU copies charged to the PCIe
// fabric as hw.TrafficCache; demotions are free (the row is dropped, its
// master copy lives in host memory). After the pass every hotness counter
// decays by cfg.Decay, so the tracker follows drift instead of averaging
// over all history. A no-op under Static policy or non-partitioned layouts.
func (m *Manager) Rebalance(p *sim.Proc, fab *hw.Fabric) {
	if !m.Dynamic() {
		return
	}
	t0 := p.Now()
	var promoted int64
	for g := 0; g < m.store.NumGPUs; g++ {
		if m.view != nil && !m.view.Alive(g) {
			continue // dead shard: unreachable, reads already fall back to host
		}
		promoted += m.rebalanceGPU(p, fab, g)
	}
	for v := range m.counts {
		m.counts[v] *= m.cfg.Decay
	}
	m.stats.Rebalances++
	m.stats.RebalanceTime += p.Now() - t0
	if m.tracer.Enabled() {
		m.tracer.Counter("cache-tiers", m.pid, float64(p.Now()), map[string]float64{
			"local": float64(m.stats.Tiers.Local),
			"peer":  float64(m.stats.Tiers.Peer),
			"host":  float64(m.stats.Tiers.Host),
		})
		m.tracer.Instant("rebalance", "cache", m.pid, 0, float64(p.Now()), "g",
			map[string]string{
				"promoted": fmt.Sprint(promoted),
				"bytes":    fmt.Sprint(promoted * int64(m.store.RowBytes())),
			})
	}
}

// rebalanceGPU adapts GPU g's shard and returns the number of promoted rows.
func (m *Manager) rebalanceGPU(p *sim.Proc, fab *hw.Fabric, g int) int64 {
	lo, hi := m.offsets[g], m.offsets[g+1]
	budget := m.store.CachedRows[g]
	if budget <= 0 || budget >= hi-lo {
		return 0 // empty shard, or the whole range already fits
	}
	ids := make([]graph.NodeID, 0, hi-lo)
	for v := lo; v < hi; v++ {
		ids = append(ids, graph.NodeID(v))
	}
	// Hottest first. Score ties rank currently-held rows above unheld ones
	// (hysteresis: a row is never displaced without evidence, so unobserved
	// rows keep their offline placement), then break by id for determinism.
	sort.SliceStable(ids, func(a, b int) bool {
		sa, sb := m.score(int(ids[a])), m.score(int(ids[b]))
		if sa != sb {
			return sa > sb
		}
		ha, hb := m.store.Holder(ids[a]) == g, m.store.Holder(ids[b]) == g
		if ha != hb {
			return ha
		}
		return ids[a] < ids[b]
	})
	// The target shard is the top `budget` rows. Promotions are target rows
	// not yet held; each is paired with the coldest held row outside the
	// target, so the shard size is invariant.
	var promote, demote []graph.NodeID
	for _, v := range ids[:budget] {
		if m.store.Holder(v) != g {
			promote = append(promote, v)
		}
	}
	for i := len(ids) - 1; i >= int(budget); i-- { // coldest first
		if m.store.Holder(ids[i]) == g {
			demote = append(demote, ids[i])
		}
	}
	moves := len(promote) // == len(demote) by construction
	if moves > m.cfg.MaxMovesPerGPU {
		moves = m.cfg.MaxMovesPerGPU
	}
	if moves == 0 {
		return 0
	}
	for i := 0; i < moves; i++ {
		m.store.Demote(demote[i])
		m.store.Promote(promote[i], g)
	}
	bytes := int64(moves) * int64(m.store.RowBytes())
	fab.HostDMA(p, g, bytes, hw.TrafficCache)
	m.stats.Promoted += int64(moves)
	m.stats.Demoted += int64(moves)
	m.stats.MovedBytes += bytes
	return int64(moves)
}
