package cache

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/featstore"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/partition"
	"repro/internal/sim"
)

type fixture struct {
	g       *graph.CSR
	feats   []float32
	dim     int
	offsets []int64
}

func build(t *testing.T, k int) *fixture {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "cache-t", Nodes: 1200, AvgDegree: 8, FeatDim: 8, NumClasses: 4, Seed: 5,
	})
	res := partition.Metis(d.G, k, 1)
	ren := partition.BuildRenumbering(res)
	return &fixture{
		g:       ren.ApplyToGraph(d.G),
		feats:   ren.ApplyToFeatures(d.Features, d.FeatDim),
		dim:     d.FeatDim,
		offsets: ren.Offsets,
	}
}

func (f *fixture) store(budgetRows int64) *featstore.Store {
	return featstore.BuildPartitioned(f.g, f.feats, f.dim, f.offsets,
		budgetRows*int64(f.dim*4), featstore.ByDegree)
}

// runSim executes fn in a simulation process on a fresh 2-GPU machine and
// returns the machine.
func runSim(t *testing.T, n int, fn func(p *sim.Proc, m *hw.Machine)) *hw.Machine {
	t.Helper()
	m := hw.NewMachine(n, hw.V100(), hw.XeonE5())
	m.Eng.Go("test", func(p *sim.Proc) { fn(p, m) })
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// coldIDs returns n uncached rows of GPU g's range.
func coldIDs(s *featstore.Store, offsets []int64, g, n int) []graph.NodeID {
	var out []graph.NodeID
	for v := offsets[g]; v < offsets[g+1] && len(out) < n; v++ {
		if s.Holder(graph.NodeID(v)) < 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

func TestRebalancePromotesObservedHotRows(t *testing.T) {
	f := build(t, 2)
	s := f.store(50)
	mgr := New(s, f.g, f.offsets, Config{Policy: LFUDecay})
	hot := coldIDs(s, f.offsets, 0, 10)
	if len(hot) != 10 {
		t.Fatalf("fixture has only %d cold rows", len(hot))
	}
	runSim(t, 2, func(p *sim.Proc, m *hw.Machine) {
		for i := 0; i < 5; i++ {
			mgr.Split(hot, 0) // hammer the cold rows
		}
		mgr.Rebalance(p, m.Fabric)
	})
	for _, v := range hot {
		if s.Holder(v) != 0 {
			t.Fatalf("hot row %d not promoted to GPU 0 (holder %d)", v, s.Holder(v))
		}
	}
	for g := 0; g < 2; g++ {
		if s.CachedRows[g] != 50 {
			t.Fatalf("GPU %d shard grew to %d rows (budget 50)", g, s.CachedRows[g])
		}
	}
	st := mgr.Stats()
	if st.Promoted != 10 || st.Demoted != 10 {
		t.Fatalf("promoted %d demoted %d, want 10/10", st.Promoted, st.Demoted)
	}
	if want := int64(10 * f.dim * 4); st.MovedBytes != want {
		t.Fatalf("moved %d bytes, want %d", st.MovedBytes, want)
	}
	if st.Rebalances != 1 || st.RebalanceTime <= 0 {
		t.Fatalf("rebalances %d time %v", st.Rebalances, st.RebalanceTime)
	}
}

func TestStaticPolicyNeverMoves(t *testing.T) {
	f := build(t, 2)
	s := f.store(50)
	mgr := New(s, f.g, f.offsets, Config{Policy: Static})
	if mgr.Dynamic() {
		t.Fatal("static manager claims to be dynamic")
	}
	hot := coldIDs(s, f.offsets, 0, 10)
	before := append([]int64(nil), s.CachedRows...)
	runSim(t, 2, func(p *sim.Proc, m *hw.Machine) {
		for i := 0; i < 20; i++ {
			mgr.Split(hot, 0)
		}
		mgr.Rebalance(p, m.Fabric)
	})
	st := mgr.Stats()
	if st.Promoted != 0 || st.MovedBytes != 0 || st.Rebalances != 0 {
		t.Fatalf("static policy moved rows: %+v", st)
	}
	for g := range before {
		if s.CachedRows[g] != before[g] {
			t.Fatalf("GPU %d shard changed under static policy", g)
		}
	}
	for _, v := range hot {
		if s.Holder(v) >= 0 {
			t.Fatalf("row %d promoted under static policy", v)
		}
	}
}

func TestRebalanceSkipsDeadGPUAndReroutesReads(t *testing.T) {
	f := build(t, 2)
	s := f.store(50)
	mgr := New(s, f.g, f.offsets, Config{Policy: LFUDecay})
	view := fault.NewView(2)
	mgr.SetView(view)
	hot0 := coldIDs(s, f.offsets, 0, 5)
	hot1 := coldIDs(s, f.offsets, 1, 5)
	// A row cached on GPU 1, to be read from GPU 0 after the death.
	var onGPU1 graph.NodeID = -1
	for v := f.offsets[1]; v < f.offsets[2]; v++ {
		if s.Holder(graph.NodeID(v)) == 1 {
			onGPU1 = graph.NodeID(v)
			break
		}
	}
	runSim(t, 2, func(p *sim.Proc, m *hw.Machine) {
		mgr.Split(append(append([]graph.NodeID(nil), hot0...), hot1...), 0)
		view.Kill(1)
		local, remote, host := mgr.Split([]graph.NodeID{onGPU1}, 0)
		if len(local) != 0 || len(remote[1]) != 0 || len(host) != 1 {
			t.Errorf("dead-holder read not rerouted to host: %v %v %v", local, remote, host)
		}
		mgr.Rebalance(p, m.Fabric)
	})
	for _, v := range hot1 {
		if s.Holder(v) >= 0 {
			t.Fatalf("dead GPU 1's shard was rebalanced (row %d)", v)
		}
	}
	promoted := 0
	for _, v := range hot0 {
		if s.Holder(v) == 0 {
			promoted++
		}
	}
	if promoted != 5 {
		t.Fatalf("live GPU promoted %d of 5 hot rows", promoted)
	}
}

func TestMaxMovesCapAndDecay(t *testing.T) {
	f := build(t, 2)
	s := f.store(50)
	mgr := New(s, f.g, f.offsets, Config{Policy: LFUDecay, MaxMovesPerGPU: 3, Decay: 0.5})
	hot := coldIDs(s, f.offsets, 0, 10)
	runSim(t, 2, func(p *sim.Proc, m *hw.Machine) {
		mgr.Split(hot, 0)
		c0 := mgr.counts[hot[0]]
		mgr.Rebalance(p, m.Fabric)
		if got := mgr.counts[hot[0]]; got != c0*0.5 {
			t.Errorf("counter not decayed: %g -> %g", c0, got)
		}
	})
	if st := mgr.Stats(); st.Promoted != 3 {
		t.Fatalf("promoted %d rows, cap is 3", st.Promoted)
	}
}

func TestAccountTiersAndHitRate(t *testing.T) {
	f := build(t, 2)
	s := f.store(50)
	mgr := New(s, f.g, f.offsets, Config{})
	mgr.Account(0, Tiers{Local: 6, Peer: 2, Host: 2})
	mgr.Account(1, Tiers{Local: 1, Peer: 0, Host: 4})
	st := mgr.Stats()
	if st.Tiers != (Tiers{Local: 7, Peer: 2, Host: 6}) {
		t.Fatalf("fleet tiers %+v", st.Tiers)
	}
	if st.PerGPU[0] != (Tiers{Local: 6, Peer: 2, Host: 2}) {
		t.Fatalf("per-GPU tiers %+v", st.PerGPU[0])
	}
	if got, want := st.Tiers.HitRate(), 9.0/15.0; got != want {
		t.Fatalf("hit rate %g, want %g", got, want)
	}
	if (Tiers{}).HitRate() != 0 {
		t.Fatal("empty tiers hit rate not 0")
	}
}

func TestRebalanceDeterminism(t *testing.T) {
	f := build(t, 2)
	run := func() ([]int, Stats) {
		s := f.store(40)
		mgr := New(s, f.g, f.offsets, Config{Policy: DegreeHybrid})
		runSim(t, 2, func(p *sim.Proc, m *hw.Machine) {
			for i := 0; i < 3; i++ {
				mgr.Split(coldIDs(s, f.offsets, 0, 20), 0)
				mgr.Split(coldIDs(s, f.offsets, 1, 7), 1)
				mgr.Rebalance(p, m.Fabric)
			}
		})
		holders := make([]int, f.g.NumNodes())
		for v := range holders {
			holders[v] = s.Holder(graph.NodeID(v))
		}
		return holders, mgr.Stats()
	}
	h1, s1 := run()
	h2, s2 := run()
	for v := range h1 {
		if h1[v] != h2[v] {
			t.Fatalf("placement diverged at row %d: %d vs %d", v, h1[v], h2[v])
		}
	}
	if s1.Promoted != s2.Promoted || s1.MovedBytes != s2.MovedBytes ||
		s1.RebalanceTime != s2.RebalanceTime {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Promoted == 0 {
		t.Fatal("determinism test moved nothing")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"static": Static, "": Static,
		"lfu": LFUDecay, "lfu-decay": LFUDecay,
		"hybrid": DegreeHybrid, "degree-hybrid": DegreeHybrid,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
