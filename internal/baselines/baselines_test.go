package baselines

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/train"
)

func testOpts(t *testing.T, nGPU int) train.Options {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "bl", Nodes: 8000, AvgDegree: 12, FeatDim: 16, NumClasses: 8, Seed: 31,
	})
	td := train.Prepare(d, nGPU, 3, true)
	return train.Options{
		Data:      td,
		Model:     nn.Config{Arch: nn.SAGE, InDim: 16, Hidden: 16, Classes: 8, Layers: 2},
		Sample:    sample.Config{Fanout: []int{8, 4}},
		BatchSize: 256,
		Seed:      5,
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		PyG: "PyG", DGLCPU: "DGL-CPU", DGLUVA: "DGL-UVA",
		Quiver: "Quiver", FastGCN: "FastGCN",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

func TestCPUSystemsSampleOnHost(t *testing.T) {
	for _, kind := range []Kind{PyG, DGLCPU} {
		sys, err := New(kind, testOpts(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunSampleEpoch(0); err != nil {
			t.Fatal(err)
		}
		// CPU sampling produces no sampling wire traffic at all.
		if got := sys.Machine().Fabric.Counters.TotalWire(hw.TrafficSample); got != 0 {
			t.Errorf("%v: CPU sampling moved %d wire bytes", kind, got)
		}
	}
}

func TestUVASystemsPayAmplification(t *testing.T) {
	for _, kind := range []Kind{DGLUVA, Quiver} {
		sys, err := New(kind, testOpts(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunSampleEpoch(0); err != nil {
			t.Fatal(err)
		}
		c := sys.Machine().Fabric.Counters
		wire := c.PCIeBytes[hw.TrafficSample]
		useful := c.UsefulBytes[hw.TrafficSample]
		if wire == 0 {
			t.Fatalf("%v: no UVA sampling traffic", kind)
		}
		if float64(wire) < 2*float64(useful) {
			t.Errorf("%v: amplification only %.2fx", kind, float64(wire)/float64(useful))
		}
	}
}

func TestQuiverPaysMallocOverhead(t *testing.T) {
	opts := testOpts(t, 2)
	quiver, err := New(Quiver, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quiver.RunSampleEpoch(0); err != nil {
		t.Fatal(err)
	}
	if quiver.Machine().GPUs[0].Mallocs() == 0 {
		t.Error("Quiver performed no cudaMalloc calls")
	}
	uva, err := New(DGLUVA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uva.RunSampleEpoch(0); err != nil {
		t.Fatal(err)
	}
	if uva.Machine().GPUs[0].Mallocs() != 0 {
		t.Error("DGL-UVA should use a caching allocator (no mallocs)")
	}
}

func TestDGLUVACachesFeaturesWhenTheyFit(t *testing.T) {
	opts := testOpts(t, 2)
	// Features fit the default 16 GB GPU: all-local gathers, no feature
	// PCIe traffic.
	sys, err := New(DGLUVA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	if got := sys.Machine().Fabric.Counters.PCIeBytes[hw.TrafficFeature]; got != 0 {
		t.Errorf("cached DGL-UVA moved %d feature bytes over PCIe", got)
	}
	// With a GPU too small for the features, caching is disabled entirely
	// and every row crosses PCIe.
	small := testOpts(t, 2)
	small.GPU = hw.V100()
	small.GPU.MemBytes = small.Data.FeatureBytes() / 2
	sys2, err := New(DGLUVA, small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	if sys2.Machine().Fabric.Counters.PCIeBytes[hw.TrafficFeature] == 0 {
		t.Error("uncached DGL-UVA moved no feature bytes over PCIe")
	}
}

func TestFastGCNOnlySamples(t *testing.T) {
	opts := testOpts(t, 2)
	opts.Sample = sample.Config{Fanout: []int{100, 100}, LayerWise: true}
	opts.Model.Layers = 2
	sys, err := New(FastGCN, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunEpoch(0); err == nil {
		t.Fatal("FastGCN RunEpoch should be unsupported")
	}
	st, err := sys.RunSampleEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampleTime <= 0 {
		t.Fatal("no sampling time")
	}
}

func TestBaselinesBitwiseIdenticalModels(t *testing.T) {
	// All baselines run the same BSP logic: identical models after an epoch
	// of real training.
	var ref []float32
	for _, kind := range []Kind{DGLUVA, Quiver, DGLCPU} {
		o := testOpts(t, 2)
		o.RealCompute = true
		sys, err := New(kind, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunEpoch(0); err != nil {
			t.Fatal(err)
		}
		buf := make([]float32, sys.Model().ParamCount())
		sys.Model().ParamVector(buf)
		if ref == nil {
			ref = buf
			continue
		}
		for i := range buf {
			if buf[i] != ref[i] {
				t.Fatalf("%v model diverges at %d", kind, i)
			}
		}
	}
}

func TestPyGSlowerThanDGLCPU(t *testing.T) {
	// Same sampling work, but PyG's Python path is less efficient.
	opts := testOpts(t, 2)
	times := map[Kind]float64{}
	for _, kind := range []Kind{PyG, DGLCPU} {
		sys, err := New(kind, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		times[kind] = float64(st.EpochTime)
	}
	if times[PyG] <= times[DGLCPU] {
		t.Errorf("PyG (%g) not slower than DGL-CPU (%g)", times[PyG], times[DGLCPU])
	}
}
