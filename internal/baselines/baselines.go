// Package baselines implements the four GNN training systems the paper
// compares DSP against, plus the FastGCN CPU implementation used for the
// layer-wise sampling comparison (Table 7). All baselines execute the same
// BSP training logic as DSP on the same prepared data — identical graph
// samples, identical gradients — and differ only in WHERE sampling runs and
// HOW data moves:
//
//	PyG       — CPU sampling (PyTorch-Geometric efficiency), CPU feature
//	            gather, staged PCIe copies to the GPUs, sequential stages.
//	DGL-CPU   — CPU sampling with DGL's faster kernels, otherwise as PyG.
//	DGL-UVA   — GPU sampling over UVA (zero-copy reads of CPU-resident
//	            topology, full read amplification); features cached on GPU
//	            only when ALL of them fit one GPU, else UVA per row.
//	Quiver    — UVA sampling like DGL-UVA plus a replicated hot-feature
//	            cache, paying cudaMalloc/cudaFree overhead per batch (the
//	            inefficiency the paper measured).
//	FastGCN   — TensorFlow-style CPU layer-wise sampling: per batch and
//	            layer it scans every node's probability, which is why the
//	            paper reports runtimes orders of magnitude above DSP.
package baselines

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/train"
)

// Kind selects a baseline system.
type Kind int

const (
	// PyG is PyTorch Geometric v2.0 (CPU sampling).
	PyG Kind = iota
	// DGLCPU is DGL v0.8 with CPU sampling.
	DGLCPU
	// DGLUVA is DGL v0.8 with GPU UVA sampling.
	DGLUVA
	// Quiver is torch-quiver v0.1 (UVA sampling + replicated GPU cache).
	Quiver
	// FastGCN is the TensorFlow FastGCN used in Table 7 (CPU layer-wise).
	FastGCN
)

func (k Kind) String() string {
	switch k {
	case PyG:
		return "PyG"
	case DGLCPU:
		return "DGL-CPU"
	case DGLUVA:
		return "DGL-UVA"
	case Quiver:
		return "Quiver"
	case FastGCN:
		return "FastGCN"
	default:
		return "unknown"
	}
}

// Per-system CPU sampling parameters: worker threads per GPU process and
// relative kernel efficiency (PyG's Python-heavy path does less work per
// core-second than DGL's C++ kernels).
const (
	// PyG spawns many Python DataLoader workers per GPU process; they are
	// core-hungry but only half as efficient per core as DGL's C++
	// samplers, so 1-GPU sampling speed matches DGL (paper Table 6) while
	// multi-GPU contention saturates the 64 cores almost immediately
	// (paper: "the GPUs contend for limited CPU threads").
	pygWorkersPerGPU = 48
	pygEfficiency    = 0.5
	// PyG's Python-side feature collation is slower than DGL's.
	pygGatherPenalty = 2.5
	dglWorkersPerGPU = 24
	dglEfficiency    = 1.0
	// Quiver calls cudaMalloc/cudaFree for sampling buffers: one
	// allocation per layer per stage plus the batch assembly.
	quiverMallocsPerLayer = 2
	quiverMallocsPerBatch = 2
	// FastGCN evaluates the layer-wise proposal distribution over every
	// node in the graph for each batch and layer, at this per-core scan
	// rate (nodes/second).
	fastgcnScanRate = 6e6
)

// Baseline is one of the comparison systems on a simulated machine.
type Baseline struct {
	Kind Kind
	Opts train.Options

	m       *hw.Machine
	trainer *train.Trainer
	sched   train.Schedule

	// cacheAllOnGPU: DGL-UVA caches features only when they all fit.
	cacheAllOnGPU bool
	// hot[v]: replicated-cache membership for Quiver.
	hot []bool
	// dedup: reusable block builder for the reference sampler. Safe to share
	// across ranks — sampling runs serially on the engine thread and each
	// BuildBlock fully resets its marks before returning.
	dedup *sample.Deduper
}

// deduper lazily builds the shared block-builder scratch.
func (b *Baseline) deduper() *sample.Deduper {
	if b.dedup == nil {
		b.dedup = sample.NewDeduper(b.Opts.Data.G.NumNodes())
	}
	return b.dedup
}

// New builds a baseline system instance.
func New(kind Kind, opts train.Options) (*Baseline, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	d := opts.Data
	b := &Baseline{Kind: kind, Opts: opts}
	b.m = hw.NewMachineScaled(d.NumGPUs(), opts.GPU, opts.CPU, opts.LatencyScale)
	b.m.Eng.SetParallelism(opts.Parallel)
	b.trainer = train.NewTrainer(opts, comm.New(b.m))
	b.sched = train.NewSchedule(d, opts.BatchSize)
	switch kind {
	case DGLUVA:
		// "DGL-UVA allows feature caching but requires all node features to
		// fit in the memory of a single GPU" — cache everything or nothing.
		if d.FeatureBytes() <= b.m.GPUs[0].MemFree()*9/10 {
			b.cacheAllOnGPU = true
			for _, g := range b.m.GPUs {
				if err := g.Reserve(d.FeatureBytes()); err != nil {
					return nil, err
				}
			}
		}
	case Quiver:
		// Replicated cache of globally hottest rows within one GPU's budget.
		budget := b.m.GPUs[0].MemFree() * 9 / 10
		rows := budget / int64(d.RowBytes())
		b.hot = make([]bool, d.G.NumNodes())
		order := d.G.NodesByDegreeDesc()
		if rows > int64(len(order)) {
			rows = int64(len(order))
		}
		for _, v := range order[:rows] {
			b.hot[v] = true
		}
		for _, g := range b.m.GPUs {
			if err := g.Reserve(rows * int64(d.RowBytes())); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// Name implements train.System.
func (b *Baseline) Name() string { return b.Kind.String() }

// Machine implements train.System.
func (b *Baseline) Machine() *hw.Machine { return b.m }

// Model implements train.System.
func (b *Baseline) Model() *nn.Model {
	if len(b.trainer.Models) == 0 {
		return nil
	}
	return b.trainer.Models[0]
}

// Replicas returns every per-GPU model replica (empty in cost-only mode).
func (b *Baseline) Replicas() []*nn.Model { return b.trainer.Models }

// cpuWorkers returns sampling threads per GPU worker process for the CPU
// systems; total demand beyond the 64 host cores contends FCFS, which is
// exactly why these systems stop scaling with GPU count.
func (b *Baseline) cpuWorkers() (threads int, efficiency float64) {
	if b.Kind == PyG {
		return pygWorkersPerGPU, pygEfficiency
	}
	return dglWorkersPerGPU, dglEfficiency
}

// sampleStage draws the batch's graph sample and charges the system's
// sampling cost.
func (b *Baseline) sampleStage(p *sim.Proc, rank, epoch, step int) *sample.MiniBatch {
	d := b.Opts.Data
	seeds := b.sched.Batch(d, b.Opts.Seed, epoch, step, rank)
	mb := sample.ReferenceInto(b.deduper(), d.G, seeds, b.Opts.Sample, train.BatchSeed(b.Opts.Seed, epoch, step, rank))
	dev := b.m.GPUs[rank]
	switch b.Kind {
	case PyG, DGLCPU:
		threads, eff := b.cpuWorkers()
		work := int64(float64(mb.NumSampledEdges()+int64(len(mb.InputNodes())))/eff) + 1
		b.m.Host.Sample(p, work, threads)
	case DGLUVA, Quiver:
		if b.Kind == Quiver {
			mallocs := quiverMallocsPerBatch + quiverMallocsPerLayer*len(mb.Blocks)
			for i := 0; i < mallocs; i++ {
				dev.Malloc(p)
			}
		}
		for _, blk := range mb.Blocks {
			// Index lookups: one indptr pair per destination node.
			dev.UVARead(p, b.m.Fabric, int64(len(blk.Dst)), 16, hw.TrafficSample)
			if b.Opts.Sample.Biased {
				// Biased UVA sampling must read whole adjacency + weight
				// lists from host memory.
				var adj int64
				for _, v := range blk.Dst {
					adj += int64(d.G.Degree(v))
				}
				dev.UVARead(p, b.m.Fabric, adj, 8, hw.TrafficSample)
			} else {
				// Unbiased: one 4-byte read per sampled edge.
				dev.UVARead(p, b.m.Fabric, int64(blk.NumEdges()), 4, hw.TrafficSample)
			}
			dev.RunKernel(p, hw.KernelSample, int64(blk.NumEdges()))
		}
		// Batch assembly (unique + local index building).
		dev.RunKernel(p, hw.KernelGather, int64(len(mb.InputNodes()))*16)
	case FastGCN:
		b.fastgcnSample(p, mb)
	}
	return mb
}

// fastgcnSample charges FastGCN's CPU layer-wise cost: a full scan of the
// proposal distribution per layer plus the draws.
func (b *Baseline) fastgcnSample(p *sim.Proc, mb *sample.MiniBatch) {
	d := b.Opts.Data
	scanItems := int64(len(mb.Blocks)) * int64(d.G.NumNodes())
	// Convert scan items into Host.Sample work units (which are costed at
	// SampleRate per core) so the scan runs at fastgcnScanRate per core.
	work := int64(float64(scanItems) * b.m.Host.Spec.SampleRate / fastgcnScanRate)
	b.m.Host.Sample(p, work+mb.NumSampledEdges(), b.m.Host.Spec.Cores)
}

// loadStage fetches batch features per the system's placement.
func (b *Baseline) loadStage(p *sim.Proc, rank int, mb *sample.MiniBatch) []float32 {
	d := b.Opts.Data
	dev := b.m.GPUs[rank]
	ids := mb.InputNodes()
	bytes := int64(len(ids)) * int64(d.RowBytes())
	switch b.Kind {
	case PyG, DGLCPU, FastGCN:
		// CPU gather, then staged DMA of features + batch structure.
		threads, _ := b.cpuWorkers()
		gatherBytes := bytes
		if b.Kind == PyG {
			gatherBytes = int64(float64(bytes) * pygGatherPenalty)
		}
		b.m.Host.Gather(p, gatherBytes, threads)
		structure := mb.NumSampledEdges()*4 + int64(len(ids))*4
		b.m.Fabric.HostDMA(p, rank, bytes+structure, hw.TrafficFeature)
	case DGLUVA:
		if b.cacheAllOnGPU {
			dev.RunKernel(p, hw.KernelGather, bytes)
		} else {
			dev.UVARead(p, b.m.Fabric, int64(len(ids)), d.RowBytes(), hw.TrafficFeature)
		}
	case Quiver:
		var hit, miss int64
		for _, v := range ids {
			if b.hot[v] {
				hit++
			} else {
				miss++
			}
		}
		if hit > 0 {
			dev.RunKernel(p, hw.KernelGather, hit*int64(d.RowBytes()))
		}
		if miss > 0 {
			dev.UVARead(p, b.m.Fabric, miss, d.RowBytes(), hw.TrafficFeature)
		}
	}
	if b.Opts.RealCompute {
		return train.GatherFeatures(d, mb)
	}
	return nil
}

// loadedBatch pairs a sample with its features.
type loadedBatch struct {
	mb    *sample.MiniBatch
	feats []float32
}

// RunEpoch implements train.System. Baseline systems execute stages
// sequentially (no producer-consumer pipeline — DSP's contribution).
func (b *Baseline) RunEpoch(epoch int) (train.EpochStats, error) {
	if b.Kind == FastGCN {
		return train.EpochStats{}, fmt.Errorf("baselines: FastGCN supports sampling epochs only (Table 7)")
	}
	return train.RunEpoch(b.m, epoch, false, 1, b.Opts.EffectiveStageOverhead(),
		func(rank int, st *train.EpochStats) pipeline.Stages {
			return pipeline.Stages{
				NumBatches: b.sched.Steps,
				Sample: func(p *sim.Proc, step int) interface{} {
					return b.sampleStage(p, rank, epoch, step)
				},
				Load: func(p *sim.Proc, step int, v interface{}) interface{} {
					mb := v.(*sample.MiniBatch)
					return loadedBatch{mb, b.loadStage(p, rank, mb)}
				},
				Train: func(p *sim.Proc, step int, v interface{}) {
					l := v.(loadedBatch)
					b.trainer.Step(p, b.m.GPUs[rank], rank, l.mb, l.feats, st)
				},
			}
		})
}

// RunSampleEpoch implements train.System (Table 6 / Table 7 measurements).
func (b *Baseline) RunSampleEpoch(epoch int) (train.EpochStats, error) {
	n := b.Opts.Data.NumGPUs()
	eng := b.m.Eng
	start := eng.Now()
	for rank := 0; rank < n; rank++ {
		rank := rank
		eng.Go(fmt.Sprintf("gpu%d/sampler", rank), func(p *sim.Proc) {
			overhead := b.Opts.EffectiveStageOverhead()
			for step := 0; step < b.sched.Steps; step++ {
				p.Sleep(overhead)
				b.sampleStage(p, rank, epoch, step)
			}
		})
	}
	end, err := eng.Run()
	if err != nil {
		return train.EpochStats{}, err
	}
	return train.EpochStats{Epoch: epoch, SampleTime: end - start, EpochTime: end - start}, nil
}

var _ train.System = (*Baseline)(nil)

// SamplesMatchDSP verifies the BSP-equivalence premise: a baseline batch for
// (epoch, step, rank) is the exact sample DSP draws, because both use the
// shared schedule and seeding discipline on the same prepared data.
func (b *Baseline) SamplesMatchDSP(epoch, step, rank int, other *sample.MiniBatch) bool {
	seeds := b.sched.Batch(b.Opts.Data, b.Opts.Seed, epoch, step, rank)
	mine := sample.Reference(b.Opts.Data.G, seeds, b.Opts.Sample, train.BatchSeed(b.Opts.Seed, epoch, step, rank))
	if len(mine.Blocks) != len(other.Blocks) {
		return false
	}
	for l := range mine.Blocks {
		a, o := mine.Blocks[l], other.Blocks[l]
		if len(a.Src) != len(o.Src) {
			return false
		}
		for i := range a.Src {
			if a.Src[i] != o.Src[i] {
				return false
			}
		}
	}
	return true
}
