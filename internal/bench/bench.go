// Package bench regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulated machine. Each experiment returns
// a structured Table that the dspbench CLI and the root testing.B benches
// print and assert on.
//
// Scaling methodology: datasets are scaled stand-ins (internal/gen) and the
// simulated GPU memory shrinks by the same factor, so cache-pressure
// regimes match the paper. Because batch SIZE stays at the paper's 1024
// while batch COUNT shrinks ~25x, per-batch fixed costs (kernel launches,
// cudaMalloc, link latencies) are divided by the same ~25x in benchmark
// runs — otherwise fixed overheads would weigh ~25x more than on the real
// testbed and distort every ratio. Virtual epoch times are therefore
// directly comparable to the paper's after multiplying by the dataset scale
// factor.
package bench

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/train"
)

// RunConfig controls experiment scale.
type RunConfig struct {
	// Shrink divides dataset node counts (1 = benchmark scale; tests use
	// larger values for speed).
	Shrink int
	// Warmup and Measure are epochs discarded / averaged. The paper uses
	// 5/10; the simulator is deterministic, so 1/2 suffices by default.
	Warmup, Measure int
	// Parallel is the OS-thread budget for offloaded simulator data work
	// (train.Options.Parallel); every result is bitwise identical at any
	// value, so it only changes wall-clock time.
	Parallel int
	// JSON switches table output from aligned text to one JSON object per
	// table (machine-readable sweep results).
	JSON bool
	// Telemetry attaches a telemetry hub to the serving sweeps and asserts
	// the burn-rate alert engine stays silent on the healthy baseline
	// configurations (a fired alert fails the sweep).
	Telemetry bool
}

// DefaultConfig is the benchmark-scale configuration.
func DefaultConfig() RunConfig { return RunConfig{Shrink: 1, Warmup: 1, Measure: 2} }

// batchCountScale is the paper-batches / stand-in-batches ratio the fixed
// per-batch costs are divided by (see the package comment).
const batchCountScale = 25

// Table is one experiment's result grid.
type Table struct {
	Title string
	Unit  string
	Cols  []string
	Rows  []string
	Cells [][]float64
	Notes []string
}

// NewTable allocates a rows x cols grid.
func NewTable(title, unit string, rows, cols []string) *Table {
	t := &Table{Title: title, Unit: unit, Rows: rows, Cols: cols}
	t.Cells = make([][]float64, len(rows))
	for i := range t.Cells {
		t.Cells[i] = make([]float64, len(cols))
	}
	return t
}

// Set stores a cell by row/col name, panicking on unknown names (experiment
// code addresses tables it constructed itself, so a miss is a programming
// error). Use SetCell for the error-returning variant.
func (t *Table) Set(row, col string, v float64) {
	if err := t.SetCell(row, col, v); err != nil {
		panic(err)
	}
}

// Get reads a cell by row/col name, panicking on unknown names. Use GetCell
// for the error-returning variant.
func (t *Table) Get(row, col string) float64 {
	v, err := t.GetCell(row, col)
	if err != nil {
		panic(err)
	}
	return v
}

// SetCell stores a cell by row/col name; an unknown name yields an error
// listing the valid ones.
func (t *Table) SetCell(row, col string, v float64) error {
	ri, ci, err := t.cell(row, col)
	if err != nil {
		return err
	}
	t.Cells[ri][ci] = v
	return nil
}

// GetCell reads a cell by row/col name; an unknown name yields an error
// listing the valid ones.
func (t *Table) GetCell(row, col string) (float64, error) {
	ri, ci, err := t.cell(row, col)
	if err != nil {
		return 0, err
	}
	return t.Cells[ri][ci], nil
}

// cell resolves (row, col) names to indices.
func (t *Table) cell(row, col string) (int, int, error) {
	ri := slices.Index(t.Rows, row)
	if ri < 0 {
		return 0, 0, fmt.Errorf("bench: unknown row %q in table %q (rows: %s)",
			row, t.Title, strings.Join(t.Rows, ", "))
	}
	ci := slices.Index(t.Cols, col)
	if ci < 0 {
		return 0, 0, fmt.Errorf("bench: unknown col %q in table %q (cols: %s)",
			col, t.Title, strings.Join(t.Cols, ", "))
	}
	return ri, ci, nil
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(w, " (%s)", t.Unit)
	}
	fmt.Fprintln(w)
	widths := make([]int, len(t.Cols)+1)
	for _, r := range t.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i := range t.Rows {
		cells[i] = make([]string, len(t.Cols))
		for j := range t.Cols {
			cells[i][j] = formatCell(t.Cells[i][j])
		}
	}
	for j, c := range t.Cols {
		widths[j+1] = len(c)
		for i := range t.Rows {
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0], "")
	for j, c := range t.Cols {
		fmt.Fprintf(w, "  %*s", widths[j+1], c)
	}
	fmt.Fprintln(w)
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", widths[0], r)
		for j := range t.Cols {
			fmt.Fprintf(w, "  %*s", widths[j+1], cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// formatCell prints with three significant figures, like the paper.
func formatCell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// --- dataset and preparation caches ---------------------------------------

var (
	cacheMu   sync.Mutex
	dsCache   = map[string]*gen.Dataset{}
	prepCache = map[string]*train.Data{}
)

// dataset returns the (possibly weighted) generated stand-in, cached.
func dataset(name string, shrink int, weighted bool) (*gen.Dataset, gen.Standard) {
	std := gen.StandardDataset(name, shrink)
	key := fmt.Sprintf("%s/%d/%v", name, shrink, weighted)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, std
	}
	d := gen.Generate(std.Config)
	if weighted {
		d.AttachUniformWeights(std.Config.Seed + 7)
	}
	dsCache[key] = d
	return d, std
}

// prepared returns the partitioned, renumbered dataset for nGPU, cached.
func prepared(name string, nGPU, shrink int, weighted, metis bool) *train.Data {
	d, std := dataset(name, shrink, weighted)
	key := fmt.Sprintf("%s/%d/%d/%v/%v", name, nGPU, shrink, weighted, metis)
	cacheMu.Lock()
	if td, ok := prepCache[key]; ok {
		cacheMu.Unlock()
		return td
	}
	cacheMu.Unlock()
	td := train.Prepare(d, nGPU, 13, metis)
	td.ScaleFactor = std.ScaleFactor
	td.GPUMemBytes = std.GPUMemBytes()
	td.BenchBatch = std.BenchBatch
	cacheMu.Lock()
	prepCache[key] = td
	cacheMu.Unlock()
	return td
}

// scaledGPU returns the V100 spec with per-batch fixed costs divided by the
// batch-count ratio (see package comment). Memory is set per dataset by
// Options.Defaults.
func scaledGPU() hw.GPUSpec {
	s := hw.V100()
	s.KernelLaunch /= batchCountScale
	s.MallocOverhead /= batchCountScale
	return s
}

// baseOpts assembles the default paper configuration for a prepared dataset:
// 3-layer GraphSAGE, hidden 256, fan-out [15,10,5], cost-only compute. The
// batch size is the registry's scaled recommendation (steps per epoch stay
// in the paper's regime).
func baseOpts(td *train.Data, cfg RunConfig) train.Options {
	batch := td.BenchBatch
	if batch == 0 {
		batch = 256
	}
	return train.Options{
		Data:         td,
		GPU:          scaledGPU(),
		BatchSize:    batch,
		Pipeline:     true,
		UseCCC:       true,
		Seed:         2023,
		LatencyScale: batchCountScale,
		Parallel:     cfg.Parallel,
		// int8 gradient compression (~3.9x wire cut) keeps gradient traffic
		// in the paper's "much cheaper than sampling and loading" regime,
		// replacing the old wire-scale discount with a codec whose error is
		// actually applied to the reduced values.
		GradCodec: compress.NewInt8(2023),
	}
}

// systemNames in paper order.
var systemNames = []string{"PyG", "DGL-CPU", "Quiver", "DGL-UVA", "DSP"}

// buildSystem instantiates a system by its paper name.
func buildSystem(name string, opts train.Options) (train.System, error) {
	switch name {
	case "DSP":
		return core.New(opts)
	case "DSP-Seq":
		opts.Pipeline = false
		return core.New(opts)
	case "P3":
		opts.Strategy = "p3"
		return core.New(opts)
	case "PyG":
		return baselines.New(baselines.PyG, opts)
	case "DGL-CPU":
		return baselines.New(baselines.DGLCPU, opts)
	case "DGL-UVA":
		return baselines.New(baselines.DGLUVA, opts)
	case "Quiver":
		return baselines.New(baselines.Quiver, opts)
	case "FastGCN":
		return baselines.New(baselines.FastGCN, opts)
	default:
		return nil, fmt.Errorf("bench: unknown system %q", name)
	}
}

// measure runs warmup epochs then averages epoch time over measured epochs.
func measure(sys train.System, cfg RunConfig, sampleOnly bool) (avgEpoch float64, last train.EpochStats, err error) {
	run := func(e int) (train.EpochStats, error) {
		if sampleOnly {
			return sys.RunSampleEpoch(e)
		}
		return sys.RunEpoch(e)
	}
	for e := 0; e < cfg.Warmup; e++ {
		if _, err := run(e); err != nil {
			return 0, train.EpochStats{}, err
		}
	}
	var total float64
	for e := 0; e < cfg.Measure; e++ {
		st, err := run(cfg.Warmup + e)
		if err != nil {
			return 0, train.EpochStats{}, err
		}
		total += float64(st.EpochTime)
		last = st
	}
	return total / float64(cfg.Measure), last, nil
}

// Experiments is the registry for the dspbench CLI: id -> runner.
var Experiments = map[string]func(w io.Writer, cfg RunConfig) error{
	"table1":            runnerFor(Table1),
	"fig1":              runnerFor(Fig1),
	"fig2":              runnerFor(Fig2),
	"table4":            runnerFor(Table4),
	"table5":            runnerFor(Table5),
	"table6":            runnerFor(Table6),
	"table7":            runnerFor(Table7),
	"fig6":              runnerFor(Fig6),
	"fig9":              runnerFor(Fig9),
	"fig10":             runnerFor(Fig10),
	"fig11":             runnerFor(Fig11),
	"fig12":             runnerFor(Fig12),
	"ablation-layout":   runnerFor(AblationPartition),
	"ablation-policy":   runnerFor(AblationCachePolicy),
	"ablation-queue":    runnerFor(AblationQueueCap),
	"ablation-ccc":      runnerFor(AblationCCC),
	"ablation-repcache": runnerFor(AblationReplicatedCache),
	"ablation-fused":    runnerFor(AblationFusedKernels),
	"ablation-workers":  runnerFor(AblationMultiWorker),
	"ext-multimachine":  runnerFor(AblationMultiMachine),
	"ext-gnn-archs":     runnerFor(ExtensionGNNArchs),
	"perf":              Perf,
	// The seven parameter sweeps (serve-load, cache-sweep, compress-sweep,
	// router-sweep, ooc-sweep, strategy-sweep, fault-sweep) register
	// through the Sweeps registry (sweep.go).
}

// ExperimentNames returns the registry keys sorted.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments))
	for k := range Experiments {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func runnerFor(f func(cfg RunConfig) (*Table, error)) func(w io.Writer, cfg RunConfig) error {
	return func(w io.Writer, cfg RunConfig) error {
		t, err := f(cfg)
		if err != nil {
			return err
		}
		return renderTable(w, t, cfg)
	}
}

// sageModel returns the paper's GraphSAGE config for a dataset.
func sageModel(td *train.Data) nn.Config {
	return nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 256, Classes: td.NumClasses, Layers: 3}
}

// gcnModel returns the paper's GCN config for a dataset.
func gcnModel(td *train.Data) nn.Config {
	return nn.Config{Arch: nn.GCN, InDim: td.FeatDim, Hidden: 256, Classes: td.NumClasses, Layers: 3}
}

// defaultFanout is the paper's neighbour-sampling fan-out.
func defaultFanout() sample.Config { return sample.Config{Fanout: []int{15, 10, 5}} }

// colName builds "products/4" style column labels.
func colName(ds string, gpus int) string { return fmt.Sprintf("%s/%d", ds, gpus) }

// dsList are the three evaluation datasets in paper order.
var dsList = gen.StandardNames

// gpuCounts are the evaluated GPU counts.
var gpuCounts = []int{1, 2, 4, 8}

// joinNotes formats a note list.
func joinNotes(parts ...string) string { return strings.Join(parts, "; ") }
