package bench

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/train"
)

// TestOOCSweepFrontier runs the full memory-vs-throughput frontier at a fast
// shrink and asserts the subsystem's headline claims. OOCSweep itself fails
// on the two ISSUE acceptance criteria (>=3x compression, prefetch strictly
// faster at equal budget); the checks below pin the frontier's shape.
func TestOOCSweepFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compute sweep")
	}
	cfg := RunConfig{Shrink: 16, Warmup: 1, Measure: 2}
	tab, err := OOCSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The memory axis is monotone in the intended direction: every ooc point
	// holds fewer resident bytes than flat in-core, and the 50% budget holds
	// fewer than the 75% budget.
	flat := tab.Get("flat in-core", "resident MB")
	for _, row := range []string{"comp in-core", "ooc 50% +pf", "ooc 50% -pf"} {
		if got := tab.Get(row, "resident MB"); got >= flat {
			t.Errorf("%s resident %.2f MB not below flat in-core's %.2f MB", row, got, flat)
		}
	}
	if hi, lo := tab.Get("ooc 75% +pf", "resident MB"), tab.Get("ooc 50% +pf", "resident MB"); lo >= hi {
		t.Errorf("50%% budget resident %.2f MB not below 75%%'s %.2f MB", lo, hi)
	}

	// Out-of-core costs throughput: epoch time rises once the host tier is in
	// the path, and all epochs are positive.
	inCore := tab.Get("comp in-core", "epoch s")
	for _, row := range tab.Rows {
		e := tab.Get(row, "epoch s")
		if e <= 0 {
			t.Errorf("%s epoch %.6fs not positive", row, e)
		}
	}
	for _, row := range []string{"ooc 75% +pf", "ooc 50% +pf"} {
		if e := tab.Get(row, "epoch s"); e <= inCore {
			t.Errorf("%s epoch %.6fs not above in-core %.6fs (tier should cost something)", row, e, inCore)
		}
	}

	// The prefetcher earns its keep through the hit rate, and its accuracy is
	// real (most prefetched blocks get used before eviction).
	for _, frac := range []string{"75%", "50%"} {
		on, off := tab.Get("ooc "+frac+" +pf", "hit%"), tab.Get("ooc "+frac+" -pf", "hit%")
		if on <= off {
			t.Errorf("prefetch-on hit rate %.1f%% not above prefetch-off %.1f%% at %s budget", on, off, frac)
		}
		if acc := tab.Get("ooc "+frac+" +pf", "pf acc%"); acc < 50 {
			t.Errorf("prefetch accuracy %.1f%% below 50%% at %s budget", acc, frac)
		}
	}
}

// TestOOCRunReportByteIdentical is the ISSUE's determinism acceptance: the
// same seed and flags produce byte-identical dsp-runreport/1 output for an
// out-of-core run, including the store section.
func TestOOCRunReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compute run")
	}
	td := prepared("products", 4, 16, false, true)
	compBytes := graph.Compress(td.G).TopologyBytes()
	blockBytes := compBytes + int64(td.G.NumNodes())*int64(td.RowBytes())
	point := oocPoint{name: "det", compress: true, ooc: true, budgetFrac: 0.50, prefetch: true}

	report := func() []byte {
		sys, err := buildSystem("DSP", oocSweepOpts(td, point, blockBytes, RunConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		var epochs []train.EpochStats
		for e := 0; e < 2; e++ {
			st, err := sys.RunEpoch(e)
			if err != nil {
				t.Fatal(err)
			}
			epochs = append(epochs, st)
		}
		rep := train.BuildRunReport(train.ReportInput{
			Command: "dsptrain",
			System:  "DSP",
			Dataset: "products-sim",
			GPUs:    4,
			Seed:    13,
			Shrink:  16,
			Epochs:  epochs,
			Store:   oocStatsOf(sys),
		})
		if err := rep.Validate(); err != nil {
			t.Fatalf("report fails its own validation: %v", err)
		}
		data, err := rep.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	a, b := report(), report()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed+flags produced different dsp-runreport/1 bytes:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if st := report(); !bytes.Equal(a, st) {
		t.Fatal("third run diverges from the first")
	}
}
