package bench

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// TestCompressSweepFrontier asserts the ISSUE's acceptance criteria on the
// accuracy-vs-bytes frontier: at equal epochs, int8 cuts gradient wire by
// at least 3.5x while staying within the documented 5% loss-delta bound,
// and the identity baseline is exactly neutral.
func TestCompressSweepFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compute sweep")
	}
	cfg := RunConfig{Shrink: 8, Warmup: 1, Measure: 1}
	tab, err := CompressSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// fp32 is the baseline row: zero deltas, reduction factor exactly 1.
	if dl := tab.Get("fp32", "dloss%"); dl != 0 {
		t.Errorf("fp32 dloss%% = %g, want 0", dl)
	}
	if gx := tab.Get("fp32", "gradx"); gx != 1 {
		t.Errorf("fp32 gradx = %g, want 1", gx)
	}

	// int8: >= 3.5x gradient wire cut at equal epochs, loss delta within
	// the documented 5% bound (DESIGN.md "Communication compression").
	if gx := tab.Get("int8", "gradx"); gx < 3.5 {
		t.Errorf("int8 gradient wire reduction %.2fx, want >= 3.5x", gx)
	}
	if dl := math.Abs(tab.Get("int8", "dloss%")); dl > 5 {
		t.Errorf("int8 loss delta %.2f%% exceeds the documented 5%% bound", dl)
	}

	// fp16 halves wire bytes with an even tighter loss delta.
	if gx := tab.Get("fp16", "gradx"); math.Abs(gx-2) > 0.05 {
		t.Errorf("fp16 gradient wire reduction %.2fx, want ~2x", gx)
	}
	if dl := math.Abs(tab.Get("fp16", "dloss%")); dl > 5 {
		t.Errorf("fp16 loss delta %.2f%% exceeds 5%%", dl)
	}

	// topk(0.1) is the far end of the frontier: ~5x cut, and the feature
	// wire shrinks too (codec applied to the reply all-to-all).
	if gx := tab.Get("topk0.1", "gradx"); gx < 4.5 {
		t.Errorf("topk gradient wire reduction %.2fx, want >= 4.5x", gx)
	}
	for _, row := range []string{"fp16", "int8", "topk0.1"} {
		if fw, base := tab.Get(row, "feat MB"), tab.Get("fp32", "feat MB"); fw >= base {
			t.Errorf("%s feature wire %.3f MB not below fp32's %.3f MB", row, fw, base)
		}
	}

	// All rows trained: losses are finite and positive.
	for _, row := range tab.Rows {
		if l := tab.Get(row, "loss"); l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			t.Errorf("%s loss = %g", row, l)
		}
	}
}

// TestCompressRunDeterministic asserts same-seed bit-identical runs: the
// frontier point is a pure function of (dataset, codec), including the
// stochastic int8 rounding.
func TestCompressRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compute sweep")
	}
	td := compressData(RunConfig{Shrink: 8})
	codec := compress.NewInt8(2023)
	a, err := compressRun(td, codec, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := compressRun(td, codec, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Loss) != math.Float64bits(b.Loss) {
		t.Errorf("loss not bit-identical: %x vs %x", math.Float64bits(a.Loss), math.Float64bits(b.Loss))
	}
	if a.ValAcc != b.ValAcc {
		t.Errorf("val acc differs: %v vs %v", a.ValAcc, b.ValAcc)
	}
	if a.GradWire != b.GradWire || a.FeatWire != b.FeatWire {
		t.Errorf("wire bytes differ: grad %d/%d feat %d/%d", a.GradWire, b.GradWire, a.FeatWire, b.FeatWire)
	}
	if len(a.Params) != len(b.Params) {
		t.Fatalf("param counts differ: %d vs %d", len(a.Params), len(b.Params))
	}
	for i := range a.Params {
		if math.Float32bits(a.Params[i]) != math.Float32bits(b.Params[i]) {
			t.Fatalf("model params diverge at %d: %x vs %x", i,
				math.Float32bits(a.Params[i]), math.Float32bits(b.Params[i]))
		}
	}
}
