package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/train"
)

// PerfReport runs the canonical perf workload — DSP with the default paper
// configuration on products/4 GPUs — and renders the measured epochs into
// the versioned RunReport schema. This is the document CI diffs against the
// committed BENCH_<pr>.json baseline: same RunConfig, same seed, and the
// simulator's determinism make the two byte-comparable.
func PerfReport(cfg RunConfig) (*prof.RunReport, error) {
	const (
		dsName = "products"
		nGPU   = 4
	)
	td := prepared(dsName, nGPU, cfg.Shrink, false, true)
	opts := baseOpts(td, cfg)
	sys, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	// Warm-up epochs run untraced; the profile covers the measured window.
	for e := 0; e < cfg.Warmup; e++ {
		if _, err := sys.RunEpoch(e); err != nil {
			return nil, err
		}
	}
	tracer := trace.New()
	sys.Machine().SetTracer(tracer)
	var epochs []train.EpochStats
	for e := 0; e < cfg.Measure; e++ {
		st, err := sys.RunEpoch(cfg.Warmup + e)
		if err != nil {
			return nil, err
		}
		epochs = append(epochs, st)
	}
	return train.BuildRunReport(train.ReportInput{
		Command: "dspbench", System: sys.Name(), Dataset: dsName,
		GPUs: nGPU, Seed: opts.Seed, Shrink: cfg.Shrink,
		CachePolicy: opts.DynamicCache,
		Epochs:      epochs,
		Tracer:      tracer, Compression: sys.Compression(),
	}), nil
}

// Perf is the Experiments runner: it executes PerfReport and prints the
// headline numbers (the JSON document itself is written via -report).
func Perf(w io.Writer, cfg RunConfig) error {
	r, err := PerfReport(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "perf: %s on %s/%d (shrink %d, %d measured epochs)\n",
		r.System, r.Dataset, r.GPUs, r.Shrink, len(r.Epochs))
	fmt.Fprintf(w, "  wall time          %.4gs\n", r.WallTime)
	if p := r.Profile; p != nil {
		fmt.Fprintf(w, "  pipeline overlap   %.1f%%\n", 100*p.PipelineOverlap)
		fmt.Fprintf(w, "  comm/compute       %.1f%% hidden\n", 100*p.CommComputeOverlap)
		fmt.Fprintf(w, "  queue wait         %.4gs   ccc wait %.4gs\n",
			p.Stalls.QueueWait, p.Stalls.CCCWait)
		if n := len(p.CriticalPath); n > 0 {
			fmt.Fprintf(w, "  critical path      %d segments", n)
			for _, cat := range []string{"stage", "comm", "kernel", "idle"} {
				if d, ok := p.CriticalPathByCat[cat]; ok {
					fmt.Fprintf(w, "  %s %.3gs", cat, d)
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "  wire MB            sample %.1f  feature %.1f  grad %.1f\n",
		float64(r.Wire.Sample)/(1<<20), float64(r.Wire.Feature)/(1<<20), float64(r.Wire.Grad)/(1<<20))
	return nil
}
