package bench

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/train"
)

// strategySweepWidths are the feature widths the sweep walks, narrow to wide.
// The push-pull exchange moves O(hidden) bytes per input node regardless of
// the feature width, while DSP's gather moves O(F); the sweep brackets the
// crossover from both sides.
var strategySweepWidths = []int{32, 128, 1024}

// strategySweepSystems are the compared systems: the paper layout, the
// dimension-partitioned hybrid, and the strongest baseline as reference.
var strategySweepSystems = []string{"DSP", "P3", "DGL-UVA"}

// StrategySweep compares the execution strategies across feature widths on
// the products stand-in (4 GPUs, hidden-64 GraphSAGE so the activation width
// sits well below the widest feature width). Columns per width: mean epoch
// time and the per-epoch feature-class wire bytes (gather traffic for DSP and
// DGL-UVA, id allgather plus partial-activation push for P3).
//
// The sweep enforces the strategy layer's headline claim and fails loudly if
// it regresses: at the widest features P3 must strictly beat DSP on both
// epoch time and feature wire bytes, and at the narrowest DSP must strictly
// beat P3 on both — the crossover is the point of having two strategies.
func StrategySweep(cfg RunConfig) (*Table, error) {
	var cols []string
	for _, f := range strategySweepWidths {
		cols = append(cols, fmt.Sprintf("f%d epoch s", f), fmt.Sprintf("f%d feat MB", f))
	}
	t := NewTable("Execution strategies: DSP vs P3 across feature widths (products-sim, 4 GPUs)", "mixed", strategySweepSystems, cols)

	type outcome struct {
		epoch float64
		wire  int64
	}
	results := map[string]outcome{}
	for _, f := range strategySweepWidths {
		td := strategySweepData(f, cfg.Shrink)
		for _, name := range strategySweepSystems {
			sys, err := buildSystem(name, strategySweepOpts(td, cfg))
			if err != nil {
				return nil, fmt.Errorf("%s f%d: %w", name, f, err)
			}
			avg, last, err := measure(sys, cfg, false)
			if err != nil {
				return nil, fmt.Errorf("%s f%d: %w", name, f, err)
			}
			t.Set(name, fmt.Sprintf("f%d epoch s", f), avg)
			t.Set(name, fmt.Sprintf("f%d feat MB", f), float64(last.FeatureWire)/1e6)
			results[fmt.Sprintf("%s/%d", name, f)] = outcome{epoch: avg, wire: last.FeatureWire}
		}
	}

	narrow := strategySweepWidths[0]
	wide := strategySweepWidths[len(strategySweepWidths)-1]
	// Claim (a): at the widest features P3 strictly wins both axes.
	dsp, p3 := results[fmt.Sprintf("DSP/%d", wide)], results[fmt.Sprintf("P3/%d", wide)]
	if p3.epoch >= dsp.epoch {
		return nil, fmt.Errorf("strategy-sweep: P3 epoch %.6fs not strictly below DSP %.6fs at width %d",
			p3.epoch, dsp.epoch, wide)
	}
	if p3.wire >= dsp.wire {
		return nil, fmt.Errorf("strategy-sweep: P3 feature wire %d B not strictly below DSP %d B at width %d",
			p3.wire, dsp.wire, wide)
	}
	// Claim (b): at the narrowest features DSP strictly wins both axes.
	dsp, p3 = results[fmt.Sprintf("DSP/%d", narrow)], results[fmt.Sprintf("P3/%d", narrow)]
	if dsp.epoch >= p3.epoch {
		return nil, fmt.Errorf("strategy-sweep: DSP epoch %.6fs not strictly below P3 %.6fs at width %d",
			dsp.epoch, p3.epoch, narrow)
	}
	if dsp.wire >= p3.wire {
		return nil, fmt.Errorf("strategy-sweep: DSP feature wire %d B not strictly below P3 %d B at width %d",
			dsp.wire, p3.wire, narrow)
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("crossover holds: P3 wins epoch time and feature wire at f%d, DSP wins both at f%d", wide, narrow),
		"P3 wire is O(hidden) per input node (id allgather + partial-activation push), DSP wire is O(F)",
	)
	return t, nil
}

// strategySweepData builds the products stand-in at one feature width. The
// width departs from the registry config, so the shared prepared() cache is
// bypassed on purpose — each width is its own dataset. GPU memory is sized
// so both layouts hold their feature residency (a full [#nodes, F/world]
// slice per GPU under P3, the same total bytes as DSP's row partition) with
// headroom — the sweep compares exchange structure, not cache pressure.
func strategySweepData(featDim, shrink int) *train.Data {
	std := gen.StandardDataset("products", shrink)
	c := std.Config
	c.FeatDim = featDim
	c.Name = fmt.Sprintf("%s-f%d", c.Name, featDim)
	td := train.Prepare(gen.Generate(c), 4, 13, true)
	td.ScaleFactor = std.ScaleFactor
	td.GPUMemBytes = std.GPUMemBytes()
	td.BenchBatch = std.BenchBatch
	featBytes := int64(td.G.NumNodes()) * int64(td.RowBytes())
	if mem := 4 * (featBytes/int64(td.NumGPUs()) + td.G.TopologyBytes()); mem > td.GPUMemBytes {
		td.GPUMemBytes = mem
	}
	return td
}

// strategySweepOpts assembles one run's configuration: hidden-64 GraphSAGE
// over the paper fan-out, cost-only compute. The small hidden width keeps
// the push-pull exchange volume well below the widest feature width, which
// is the regime P3 is built for.
func strategySweepOpts(td *train.Data, cfg RunConfig) train.Options {
	opts := baseOpts(td, cfg)
	opts.Model = sageModel(td)
	opts.Model.Hidden = 64
	opts.Sample = defaultFanout()
	return opts
}
