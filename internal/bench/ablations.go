package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/featstore"
	"repro/internal/gen"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/sim"
)

// genDataset builds a mid-size community dataset for harness-internal
// experiments (Figure 9 and ablations).
func genDataset(name string, nodes int) *gen.Dataset {
	return gen.Generate(gen.Config{
		Name: name, Nodes: nodes, AvgDegree: 20, FeatDim: 32,
		NumClasses: 16, Seed: 4242,
	})
}

// AblationPartition compares METIS-style layout against hash partitioning
// (Section 3.1's "well-connected patches" claim): epoch time and sampling
// wire volume on 4 GPUs.
func AblationPartition(cfg RunConfig) (*Table, error) {
	t := NewTable("Ablation: METIS layout vs hash partitioning (4 GPUs)", "",
		[]string{"metis/epoch-s", "hash/epoch-s", "metis/sample-MB", "hash/sample-MB"}, dsList)
	for _, ds := range dsList {
		for _, metis := range []bool{true, false} {
			td := prepared(ds, 4, cfg.Shrink, false, metis)
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, last, err := measure(sys, cfg, false)
			if err != nil {
				return nil, err
			}
			label := "hash"
			if metis {
				label = "metis"
			}
			t.Set(label+"/epoch-s", ds, avg)
			t.Set(label+"/sample-MB", ds, float64(last.SampleWire)/(1<<20))
		}
	}
	t.Notes = append(t.Notes, "expected: METIS cuts sampling communication (local adjacency accesses) and epoch time")
	return t, nil
}

// AblationCachePolicy compares the hot-node criteria of Section 2 (degree,
// PageRank, reverse PageRank) under a tight feature-cache budget.
func AblationCachePolicy(cfg RunConfig) (*Table, error) {
	policies := []featstore.Policy{featstore.ByDegree, featstore.ByPageRank, featstore.ByReversePageRank}
	var rows []string
	for _, p := range policies {
		rows = append(rows, p.String())
	}
	t := NewTable("Ablation: hot-node selection policy (8 GPUs, 25% feature cache)", "PCIe feature MB", rows, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		for _, pol := range policies {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.CachePolicy = int(pol)
			opts.FeatureCacheBudget = td.FeatureBytes() / 4 / 8 // 25% aggregate across 8 GPUs
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			if _, _, err := measure(sys, cfg, false); err != nil {
				return nil, err
			}
			bytes := sys.Machine().Fabric.Counters.PCIeBytes[hw.TrafficFeature]
			t.Set(pol.String(), ds, float64(bytes)/(1<<20))
		}
	}
	t.Notes = append(t.Notes, "lower is better: fewer cold-feature UVA bytes mean the policy ranked truly hot nodes first")
	return t, nil
}

// AblationQueueCap sweeps the pipeline queue capacity (the paper finds 2
// sufficient).
func AblationQueueCap(cfg RunConfig) (*Table, error) {
	caps := []int{1, 2, 4, 8}
	var cols []string
	for _, c := range caps {
		cols = append(cols, fmt.Sprintf("cap=%d", c))
	}
	t := NewTable("Ablation: pipeline queue capacity (8 GPUs)", "sim-s", dsList, cols)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		for i, c := range caps {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.QueueCap = c
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, false)
			if err != nil {
				return nil, err
			}
			t.Set(ds, cols[i], avg)
		}
	}
	t.Notes = append(t.Notes, "expected: capacity 2 captures nearly all of the overlap benefit")
	return t, nil
}

// AblationCCC runs the pipelined system with and without centralized
// communication coordination; without it, concurrent collectives may
// deadlock (reported as -1).
func AblationCCC(cfg RunConfig) (*Table, error) {
	t := NewTable("Ablation: centralized communication coordination (4 GPUs)", "sim-s (-1 = deadlock)",
		[]string{"with-CCC", "without-CCC"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 4, cfg.Shrink, false, true)
		for _, useCCC := range []bool{true, false} {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.UseCCC = useCCC
			row := "without-CCC"
			if useCCC {
				row = "with-CCC"
			}
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, false)
			if err != nil {
				if _, ok := err.(*sim.DeadlockError); ok {
					t.Set(row, ds, -1)
					continue
				}
				return nil, err
			}
			t.Set(row, ds, avg)
		}
	}
	t.Notes = append(t.Notes,
		"without CCC the collectives are ungated; on real hardware inconsistent launch order deadlocks (Figure 8), demonstrated deterministically in pipeline tests")
	return t, nil
}

// AblationReplicatedCache compares DSP's partitioned feature cache against
// Quiver-style replication under the same per-GPU budget.
func AblationReplicatedCache(cfg RunConfig) (*Table, error) {
	t := NewTable("Ablation: partitioned vs replicated feature cache (8 GPUs)", "",
		[]string{"partitioned/epoch-s", "replicated/epoch-s", "partitioned/uva-MB", "replicated/uva-MB"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		for _, repl := range []bool{false, true} {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.ReplicatedCache = repl
			opts.FeatureCacheBudget = td.FeatureBytes() / 4 / 8
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, false)
			if err != nil {
				return nil, err
			}
			label := "partitioned"
			if repl {
				label = "replicated"
			}
			t.Set(label+"/epoch-s", ds, avg)
			uva := sys.Machine().Fabric.Counters.PCIeBytes[hw.TrafficFeature]
			t.Set(label+"/uva-MB", ds, float64(uva)/(1<<20))
		}
	}
	t.Notes = append(t.Notes, "partitioned caching holds 8x more distinct rows, cutting UVA feature traffic")
	return t, nil
}

// AblationFusedKernels compares DSP's fused sample-stage kernel against the
// asynchronous one-kernel-per-task alternative §4.1 rejects.
func AblationFusedKernels(cfg RunConfig) (*Table, error) {
	t := NewTable("Ablation: fused vs per-task sampling kernels (4 GPUs)", "sampling sim-s",
		[]string{"fused", "per-task"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 4, cfg.Shrink, false, true)
		for _, unfused := range []bool{false, true} {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.UnfusedSampling = unfused
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, true)
			if err != nil {
				return nil, err
			}
			row := "fused"
			if unfused {
				row = "per-task"
			}
			t.Set(row, ds, avg)
		}
	}
	t.Notes = append(t.Notes, "per-task launches pay kernel launch overhead thousands of times per batch")
	return t, nil
}

// AblationMultiWorker compares the single-instance pipeline against 2x2
// sampler/loader instances (§5's rejected multi-instance design).
func AblationMultiWorker(cfg RunConfig) (*Table, error) {
	t := NewTable("Ablation: single vs multi-instance workers (8 GPUs)", "epoch sim-s",
		[]string{"1S/1L", "2S/2L", "3S/2L"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		for _, w := range []struct {
			row  string
			s, l int
		}{{"1S/1L", 1, 1}, {"2S/2L", 2, 2}, {"3S/2L", 3, 2}} {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.NumSamplers = w.s
			opts.NumLoaders = w.l
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, false)
			if err != nil {
				return nil, err
			}
			t.Set(w.row, ds, avg)
		}
	}
	t.Notes = append(t.Notes,
		"extra instances hold in-flight buffers in device memory and contend for communication slots (the paper's reasons for a single instance per task)")
	return t, nil
}

// AblationMultiMachine scales DSP across 1-4 simulated machines of 4 GPUs.
func AblationMultiMachine(cfg RunConfig) (*Table, error) {
	t := NewTable("Extension: multi-machine scaling (4 GPUs per machine)", "epoch sim-s",
		[]string{"1 machine", "2 machines", "4 machines"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 4, cfg.Shrink, false, true)
		for _, m := range []int{1, 2, 4} {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			sys, err := core.NewMulti(opts, m, hw.InfiniBandEDR())
			if err != nil {
				return nil, err
			}
			for e := 0; e < cfg.Warmup; e++ {
				if _, err := sys.RunEpoch(e); err != nil {
					return nil, err
				}
			}
			var total float64
			for e := 0; e < cfg.Measure; e++ {
				st, err := sys.RunEpoch(cfg.Warmup + e)
				if err != nil {
					return nil, err
				}
				total += float64(st.EpochTime)
			}
			t.Set(fmt.Sprintf("%d machine%s", m, map[bool]string{true: "s", false: ""}[m > 1]), ds, total/float64(cfg.Measure))
		}
	}
	t.Notes = append(t.Notes, "machines replicate topology + hot features and communicate only cold features and gradients (paper §3.2)")
	return t, nil
}

// ExtensionGNNArchs compares DSP epoch time across GNN architectures at 8
// GPUs: GCN (lightest), GraphSAGE (the default), GAT (heaviest — per-edge
// attention). The paper evaluates GraphSAGE and GCN; GAT is this
// repository's extension.
func ExtensionGNNArchs(cfg RunConfig) (*Table, error) {
	archs := []nn.Arch{nn.GCN, nn.SAGE, nn.GAT}
	var rows []string
	for _, a := range archs {
		rows = append(rows, a.String())
	}
	t := NewTable("Extension: DSP epoch time by GNN architecture (8 GPUs)", "sim-s", rows, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		for _, a := range archs {
			opts := baseOpts(td, cfg)
			opts.Model = nn.Config{Arch: a, InDim: td.FeatDim, Hidden: 256, Classes: td.NumClasses, Layers: 3}
			opts.Sample = defaultFanout()
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, false)
			if err != nil {
				return nil, err
			}
			t.Set(a.String(), ds, avg)
		}
	}
	t.Notes = append(t.Notes, "expected ordering: GCN < GraphSAGE < GAT epoch time")
	return t, nil
}
