package bench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/train"
)

// Table1 validates the fabric model against the paper's Table 1: aggregate
// NVLink and PCIe bandwidth (GB/s) by GPU count.
func Table1(cfg RunConfig) (*Table, error) {
	t := NewTable("Table 1: aggregate bandwidth", "GB/s",
		[]string{"PCIe", "NVLink"},
		[]string{"1-GPU", "2-GPU", "4-GPU", "8-GPU"})
	for _, n := range gpuCounts {
		topo := hw.DGX1(n)
		col := fmt.Sprintf("%d-GPU", n)
		t.Set("PCIe", col, topo.AggregatePCIeBandwidth()/1e9)
		t.Set("NVLink", col, topo.AggregateNVLinkBandwidth()/1e9)
	}
	t.Notes = append(t.Notes, "paper: PCIe 32/32/64/128, NVLink 0/100/400/1200")
	return t, nil
}

// Fig1 measures graph-sampling communication volume on 8 GPUs, normalised
// by the Ideal volume (only the needed bytes, all accesses remote): UVA
// pays full read amplification; CSP pushes tasks instead of pulling data.
func Fig1(cfg RunConfig) (*Table, error) {
	t := NewTable("Figure 1: sampling communication volume (normalized by Ideal)", "x",
		[]string{"UVA", "Ideal", "CSP"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		opts := baseOpts(td, cfg)
		opts.Model = sageModel(td)
		opts.Sample = defaultFanout()

		uva, err := buildSystem("DGL-UVA", opts)
		if err != nil {
			return nil, err
		}
		if _, _, err := measure(uva, RunConfig{Warmup: 0, Measure: 1}, true); err != nil {
			return nil, err
		}
		uvaWire := float64(uva.Machine().Fabric.Counters.TotalWire(hw.TrafficSample))
		ideal := float64(uva.Machine().Fabric.Counters.UsefulBytes[hw.TrafficSample])

		dsp, err := buildSystem("DSP", opts)
		if err != nil {
			return nil, err
		}
		if _, _, err := measure(dsp, RunConfig{Warmup: 0, Measure: 1}, true); err != nil {
			return nil, err
		}
		cspWire := float64(dsp.Machine().Fabric.Counters.TotalWire(hw.TrafficSample))

		t.Set("UVA", ds, uvaWire/ideal)
		t.Set("Ideal", ds, 1)
		t.Set("CSP", ds, cspWire/ideal)
	}
	t.Notes = append(t.Notes,
		"CSP < Ideal because patch-local adjacency accesses are free while Ideal counts every access as remote (paper footnote 1)")
	return t, nil
}

// Fig2 sweeps the thread allocation of the sampling and feature-loading
// kernels: execution time stabilises before all 5120 threads are used.
func Fig2(cfg RunConfig) (*Table, error) {
	threads := []int{256, 512, 1024, 2048, 3072, 4096, 5120}
	cols := make([]string, len(threads))
	for i, th := range threads {
		cols[i] = fmt.Sprintf("%d", th)
	}
	t := NewTable("Figure 2: kernel time vs physical threads (1 GPU)", "ms",
		[]string{"sampling", "feature-loading"}, cols)
	spec := hw.V100()
	const sampleItems = 2_000_000 // sampled edges in a large batch
	const gatherBytes = 100 << 20 // feature bytes gathered per batch
	for i, th := range threads {
		t.Set("sampling", cols[i], 1e3*float64(spec.KernelDuration(hw.KernelSample, sampleItems, th)))
		t.Set("feature-loading", cols[i], 1e3*float64(spec.KernelDuration(hw.KernelGather, gatherBytes, th)))
	}
	t.Notes = append(t.Notes, "paper: both kernels plateau before 5120 threads (memory-bound floor)")
	return t, nil
}

// epochTimeTable runs the full-training epoch-time comparison for a model
// family (Table 4 for GraphSAGE across GPU counts, Table 5 for GCN at 8).
func epochTimeTable(cfg RunConfig, title string, gcn bool, counts []int) (*Table, error) {
	var cols []string
	for _, ds := range dsList {
		for _, n := range counts {
			cols = append(cols, colName(ds, n))
		}
	}
	t := NewTable(title, "sim-s", systemNames, cols)
	for _, ds := range dsList {
		for _, n := range counts {
			td := prepared(ds, n, cfg.Shrink, false, true)
			opts := baseOpts(td, cfg)
			if gcn {
				opts.Model = gcnModel(td)
			} else {
				opts.Model = sageModel(td)
			}
			opts.Sample = defaultFanout()
			for _, name := range systemNames {
				sys, err := buildSystem(name, opts)
				if err != nil {
					return nil, err
				}
				avg, _, err := measure(sys, cfg, false)
				if err != nil {
					return nil, fmt.Errorf("%s on %s/%d: %w", name, ds, n, err)
				}
				t.Set(name, colName(ds, n), avg)
			}
		}
	}
	t.Notes = append(t.Notes,
		"virtual epoch seconds on the scaled stand-ins; multiply by the dataset scale factor (~25-500x) for paper-scale magnitudes",
		"shape to check: DSP fastest everywhere, CPU systems flat with GPU count")
	return t, nil
}

// Table4 is the headline epoch-time comparison (GraphSAGE).
func Table4(cfg RunConfig) (*Table, error) {
	return epochTimeTable(cfg, "Table 4: epoch time, GraphSAGE", false, gpuCounts)
}

// Table5 is the GCN epoch-time comparison at 8 GPUs.
func Table5(cfg RunConfig) (*Table, error) {
	return epochTimeTable(cfg, "Table 5: epoch time, GCN, 8 GPUs", true, []int{8})
}

// Table6 measures sampling-only epoch time for every system.
func Table6(cfg RunConfig) (*Table, error) {
	var cols []string
	for _, ds := range dsList {
		for _, n := range gpuCounts {
			cols = append(cols, colName(ds, n))
		}
	}
	t := NewTable("Table 6: sampling time per epoch", "sim-s", systemNames, cols)
	for _, ds := range dsList {
		for _, n := range gpuCounts {
			td := prepared(ds, n, cfg.Shrink, false, true)
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			for _, name := range systemNames {
				sys, err := buildSystem(name, opts)
				if err != nil {
					return nil, err
				}
				avg, _, err := measure(sys, cfg, true)
				if err != nil {
					return nil, err
				}
				t.Set(name, colName(ds, n), avg)
			}
		}
	}
	t.Notes = append(t.Notes, "shape to check: CSP (DSP) fastest; UVA beats CPU; CPU flat with GPUs")
	return t, nil
}

// Table7 compares layer-wise sampling without replacement: FastGCN on CPU
// vs DSP's CSP on 8 GPUs, fan-out 1000 per layer, batch 1024.
func Table7(cfg RunConfig) (*Table, error) {
	t := NewTable("Table 7: layer-wise sampling time per epoch (without replacement)", "sim-s",
		[]string{"FastGCN", "DSP"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		opts := baseOpts(td, cfg)
		opts.Sample = sample.Config{Fanout: []int{1000, 1000}, LayerWise: true}
		opts.Model = nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 256, Classes: td.NumClasses, Layers: 2}
		for _, name := range []string{"FastGCN", "DSP"} {
			sys, err := buildSystem(name, opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, true)
			if err != nil {
				return nil, err
			}
			t.Set(name, ds, avg)
		}
	}
	t.Notes = append(t.Notes, "paper: FastGCN is 2-4 orders of magnitude slower than DSP")
	return t, nil
}

// Fig6 reports average GPU utilization for sequential vs pipelined DSP.
func Fig6(cfg RunConfig) (*Table, error) {
	var cols []string
	for _, ds := range dsList {
		for _, n := range gpuCounts {
			cols = append(cols, colName(ds, n))
		}
	}
	t := NewTable("Figure 6: GPU utilization, DSP-Seq vs DSP pipeline", "%",
		[]string{"DSP-Seq", "DSP"}, cols)
	for _, ds := range dsList {
		for _, n := range gpuCounts {
			td := prepared(ds, n, cfg.Shrink, false, true)
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			for _, name := range []string{"DSP-Seq", "DSP"} {
				sys, err := buildSystem(name, opts)
				if err != nil {
					return nil, err
				}
				_, last, err := measure(sys, cfg, false)
				if err != nil {
					return nil, err
				}
				var u float64
				for _, x := range last.Utilization {
					u += x
				}
				t.Set(name, colName(ds, n), 100*u/float64(len(last.Utilization)))
			}
		}
	}
	t.Notes = append(t.Notes, "shape to check: pipeline utilization higher, gap widens with GPU count")
	return t, nil
}

// Fig9 trains for real on 8 GPUs and reports validation accuracy against
// cumulative batches and cumulative virtual time for DSP, DGL-UVA and
// Quiver. Accuracy-vs-batch curves coincide exactly (identical samples and
// BSP updates); accuracy-vs-time favours the faster system.
func Fig9(cfg RunConfig) (*Table, error) {
	// A dedicated small stand-in keeps real fp32 training tractable on the
	// host while preserving the comparison (the substitution DESIGN.md
	// documents for Papers100M).
	td := fig9Data(cfg)
	epochs := 6
	systems := []string{"DSP", "DGL-UVA", "Quiver"}
	var rows []string
	for _, s := range systems {
		rows = append(rows, s+"/acc", s+"/time")
	}
	var cols []string
	sched := train.NewSchedule(td, 256)
	for e := 1; e <= epochs; e++ {
		cols = append(cols, fmt.Sprintf("%db", e*sched.Steps*td.NumGPUs()))
	}
	t := NewTable("Figure 9: training quality (accuracy and cumulative sim-time per batch count)", "", rows, cols)
	for _, name := range systems {
		opts := baseOpts(td, cfg)
		opts.BatchSize = 256
		opts.Model = nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 32, Classes: td.NumClasses, Layers: 2}
		opts.Sample = sample.Config{Fanout: []int{10, 5}}
		opts.RealCompute = true
		opts.LR = 0.01
		sys, err := buildSystem(name, opts)
		if err != nil {
			return nil, err
		}
		var elapsed float64
		for e := 0; e < epochs; e++ {
			st, err := sys.RunEpoch(e)
			if err != nil {
				return nil, err
			}
			elapsed += float64(st.EpochTime)
			acc := train.Evaluate(td, sys.Model(), opts.Sample, 1000, 5)
			col := cols[e]
			t.Set(name+"/acc", col, acc)
			t.Set(name+"/time", col, elapsed)
		}
	}
	t.Notes = append(t.Notes,
		"accuracy rows must coincide across systems at equal batch counts (BSP equivalence, Figure 9a)",
		"time rows show DSP reaching any accuracy level first (Figure 9b)")
	return t, nil
}

// fig9Data builds the dedicated Figure 9 stand-in.
func fig9Data(cfg RunConfig) *train.Data {
	key := fmt.Sprintf("fig9/%d", cfg.Shrink)
	cacheMu.Lock()
	if td, ok := prepCache[key]; ok {
		cacheMu.Unlock()
		return td
	}
	cacheMu.Unlock()
	nodes := 20000 / cfg.Shrink
	if nodes < 2000 {
		nodes = 2000
	}
	d := genDataset(fmt.Sprintf("fig9-%d", nodes), nodes)
	td := train.Prepare(d, 8, 13, true)
	td.ScaleFactor = 111e6 / float64(nodes)
	td.GPUMemBytes = int64(16 * float64(1<<30) / td.ScaleFactor)
	cacheMu.Lock()
	prepCache[key] = td
	cacheMu.Unlock()
	return td
}

// Fig10 sweeps the split of a fixed per-GPU cache budget (the paper's 6 GB,
// scaled) between graph topology and node features on 8 GPUs: epoch time
// falls then rises, with the optimum keeping the full topology on GPU.
func Fig10(cfg RunConfig) (*Table, error) {
	fractions := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6, 4.0 / 6, 5.0 / 6, 5.75 / 6}
	var cols []string
	for _, f := range fractions {
		cols = append(cols, fmt.Sprintf("%.1fGB", f*6))
	}
	t := NewTable("Figure 10: epoch time vs feature-cache share of a 6 GB budget (8 GPUs)", "sim-s",
		[]string{"papers", "friendster", "papers/sampling", "friendster/sampling"}, cols)
	for _, ds := range []string{"papers", "friendster"} {
		td := prepared(ds, 8, cfg.Shrink, false, true)
		_, std := dataset(ds, cfg.Shrink, false)
		total := std.CacheBudgetBytes(6 << 30)
		for i, f := range fractions {
			featBudget := int64(f * float64(total))
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			opts.FeatureCacheBudget = featBudget
			opts.TopoCacheBudget = total - featBudget
			// The budget replaces the memory-derived default; make sure the
			// simulated GPU can hold it.
			opts.GPU.MemBytes = total * 2
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, false)
			if err != nil {
				return nil, err
			}
			t.Set(ds, cols[i], avg)
			// The sampler-only time isolates the topology-spill penalty
			// (on scaled stand-ins per-batch input dedup flattens the
			// feature-access skew, so part of the paper's right-flank rise
			// hides under the loader stage — see EXPERIMENTS.md).
			sOnly, _, err := measure(sys, RunConfig{Warmup: 0, Measure: 1}, true)
			if err != nil {
				return nil, err
			}
			t.Set(ds+"/sampling", cols[i], sOnly)
		}
	}
	t.Notes = append(t.Notes,
		"shape to check: U-curve on epoch time; best point keeps the whole topology in GPU memory",
		"the */sampling rows isolate the topology-spill penalty, which rises steeply on the right")
	return t, nil
}

// Fig11 compares CSP's task-push against the data-pull alternative for
// biased sampling on 4 GPUs.
func Fig11(cfg RunConfig) (*Table, error) {
	t := NewTable("Figure 11: biased sampling time per epoch, CSP vs PullData (4 GPUs)", "sim-s",
		[]string{"CSP", "PullData"}, dsList)
	for _, ds := range dsList {
		td := prepared(ds, 4, cfg.Shrink, true, true)
		for _, mode := range []string{"CSP", "PullData"} {
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = sample.Config{Fanout: []int{15, 10, 5}, Biased: true}
			opts.PullData = mode == "PullData"
			sys, err := buildSystem("DSP", opts)
			if err != nil {
				return nil, err
			}
			avg, _, err := measure(sys, cfg, true)
			if err != nil {
				return nil, err
			}
			t.Set(mode, ds, avg)
		}
	}
	t.Notes = append(t.Notes, "paper: CSP cuts PullData sampling time by up to 64%")
	return t, nil
}

// Fig12 reports the epoch-time speedup of the pipeline over DSP-Seq.
func Fig12(cfg RunConfig) (*Table, error) {
	var cols []string
	for _, n := range gpuCounts {
		cols = append(cols, fmt.Sprintf("%d-GPU", n))
	}
	t := NewTable("Figure 12: DSP speedup over DSP-Seq", "x", dsList, cols)
	for _, ds := range dsList {
		for _, n := range gpuCounts {
			td := prepared(ds, n, cfg.Shrink, false, true)
			opts := baseOpts(td, cfg)
			opts.Model = sageModel(td)
			opts.Sample = defaultFanout()
			var times [2]float64
			for i, name := range []string{"DSP-Seq", "DSP"} {
				sys, err := buildSystem(name, opts)
				if err != nil {
					return nil, err
				}
				avg, _, err := measure(sys, cfg, false)
				if err != nil {
					return nil, err
				}
				times[i] = avg
			}
			t.Set(ds, fmt.Sprintf("%d-GPU", n), times[0]/times[1])
		}
	}
	t.Notes = append(t.Notes, "shape to check: speedup grows with GPU count, >1.5x at 8 GPUs")
	return t, nil
}
