package bench

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/train"
)

// oocPoint is one operating point on the memory-vs-throughput frontier the
// ooc-sweep walks: from everything-resident flat CSR down to a tight
// out-of-core block cache, with the prefetcher as the ablation arm.
type oocPoint struct {
	name       string
	compress   bool    // varint-compressed topology
	ooc        bool    // out-of-core tier enabled
	budgetFrac float64 // host block-cache budget as a fraction of block bytes
	prefetch   bool
}

// oocSweepPoints orders the frontier from most to least resident memory.
var oocSweepPoints = []oocPoint{
	{name: "flat in-core"},
	{name: "comp in-core", compress: true},
	{name: "ooc 75% +pf", compress: true, ooc: true, budgetFrac: 0.75, prefetch: true},
	{name: "ooc 75% -pf", compress: true, ooc: true, budgetFrac: 0.75},
	{name: "ooc 50% +pf", compress: true, ooc: true, budgetFrac: 0.50, prefetch: true},
	{name: "ooc 50% -pf", compress: true, ooc: true, budgetFrac: 0.50},
}

// OOCSweep walks the billion-scale storage frontier on the products stand-in:
// flat CSR fully resident, compressed CSR fully resident, then the
// out-of-core tier at shrinking host block-cache budgets with the
// proximity-aware prefetcher on and off. Columns: bytes held resident for
// topology+cache (the memory axis), epoch time (the throughput axis), and the
// store's hit rate, demand-stall time and prefetch accuracy.
//
// The sweep enforces the subsystem's two headline claims and fails loudly if
// either regresses: compressed topology must cut resident topology bytes at
// least 3x versus flat CSR, and at every equal cache budget the prefetcher
// must strictly beat demand-only fetching on epoch time.
func OOCSweep(cfg RunConfig) (*Table, error) {
	td := prepared("products", 4, cfg.Shrink, false, true)
	compBytes := graph.Compress(td.G).TopologyBytes()
	blockBytes := compBytes + int64(td.G.NumNodes())*int64(td.RowBytes())

	cols := []string{"resident MB", "epoch s", "hit%", "stall ms", "pf acc%"}
	rows := make([]string, len(oocSweepPoints))
	for i, p := range oocSweepPoints {
		rows[i] = p.name
	}
	t := NewTable("Out-of-core: memory vs throughput frontier (products-sim, 4 GPUs)", "mixed", rows, cols)

	type outcome struct {
		epoch    float64
		resident int64
	}
	results := map[string]outcome{}
	for _, p := range oocSweepPoints {
		sys, err := buildSystem("DSP", oocSweepOpts(td, p, blockBytes, cfg))
		if err != nil {
			return nil, err
		}
		avg, _, err := measure(sys, cfg, false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		resident := topoResidentOf(sys)
		st := oocStatsOf(sys)
		if p.ooc {
			// The memory axis counts the host block cache alongside the GPU
			// topology residency: that cache is what -ooc-budget buys.
			resident += int64(p.budgetFrac * float64(blockBytes))
		}
		t.Set(p.name, "resident MB", float64(resident)/1e6)
		t.Set(p.name, "epoch s", avg)
		if st.Hits+st.Misses > 0 {
			t.Set(p.name, "hit%", 100*st.HitRate())
			t.Set(p.name, "stall ms", 1e3*float64(st.StallTime))
			t.Set(p.name, "pf acc%", 100*st.PrefetchAccuracy())
		}
		results[p.name] = outcome{epoch: avg, resident: resident}
	}

	// Claim (a): compressed topology cuts resident bytes >= 3x on the
	// standard generator graphs.
	flat := results["flat in-core"].resident
	comp := results["comp in-core"].resident
	if comp <= 0 || float64(flat)/float64(comp) < 3 {
		return nil, fmt.Errorf("ooc-sweep: compression ratio %.2fx below the required 3x (flat %d B, compressed %d B)",
			float64(flat)/float64(comp), flat, comp)
	}
	// Claim (b): at equal block-cache budget, prefetch-on strictly beats
	// prefetch-off epoch time.
	for _, frac := range []string{"75%", "50%"} {
		on := results["ooc "+frac+" +pf"].epoch
		off := results["ooc "+frac+" -pf"].epoch
		if on >= off {
			return nil, fmt.Errorf("ooc-sweep: prefetch-on epoch %.6fs not strictly below prefetch-off %.6fs at %s budget",
				on, off, frac)
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("compression holds the 3x floor: flat %.1f MB vs compressed %.1f MB resident (%.1fx)",
			float64(flat)/1e6, float64(comp)/1e6, float64(flat)/float64(comp)),
		"shape to check: epoch time rises as resident MB falls; +pf rows strictly below -pf rows at equal budget",
	)
	return t, nil
}

// oocSweepOpts assembles one frontier point's configuration. Every point
// shares the workload; only the storage mode varies, so epoch-time deltas are
// attributable to it. The ooc points pin tight GPU topology and feature
// budgets so the host tier actually sees traffic.
func oocSweepOpts(td *train.Data, p oocPoint, blockBytes int64, cfg RunConfig) train.Options {
	opts := baseOpts(td, cfg)
	opts.Model = sageModel(td)
	opts.Sample = defaultFanout()
	opts.CompressTopology = p.compress
	if p.ooc {
		// Three quarters of the patch topology and half the owned feature
		// rows fit on GPU; the remainder lives behind the out-of-core tier.
		// The spill share keeps the device below saturation — the regime a
		// prefetcher is built for (hiding latency, not creating bandwidth).
		opts.TopoCacheBudget = graph.Compress(td.G).TopologyBytes() / int64(td.NumGPUs()) * 3 / 4
		opts.FeatureCacheBudget = int64(td.G.NumNodes()/td.NumGPUs()/2) * int64(td.RowBytes())
		opts.GPU.MemBytes = 4 * (opts.TopoCacheBudget + opts.FeatureCacheBudget)
		opts.OOC = true
		opts.OOCBudget = int64(p.budgetFrac * float64(blockBytes))
		opts.OOCNoPrefetch = !p.prefetch
		// Shrunken stand-ins with the full-scale 4096-node blocks collapse to
		// a handful of blocks; ~32 blocks per tier keeps the cache in the LRU
		// regime a 100M-node graph would see.
		opts.OOCBlockNodes = td.G.NumNodes() / 32
	}
	return opts
}

// oocStatsOf extracts the out-of-core store accounting from a system that has
// one (zero Stats otherwise).
func oocStatsOf(sys train.System) store.Stats {
	if h, ok := sys.(interface{ OOCStats() store.Stats }); ok {
		return h.OOCStats()
	}
	return store.Stats{}
}

// topoResidentOf reads the world's resident topology bytes.
func topoResidentOf(sys train.System) int64 {
	if h, ok := sys.(interface{ TopologyResidentBytes() int64 }); ok {
		return h.TopologyResidentBytes()
	}
	return 0
}
