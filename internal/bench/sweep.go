package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Sweep is the unified entry point for parameter sweeps: one name, one Run.
// The seven serving/storage/strategy sweeps used to be seven ad-hoc
// functions each wired separately into the CLI; they now share this
// interface, one registry (Sweeps, folded into Experiments for dispatch and
// -list) and one table renderer (text or JSON via RunConfig.JSON).
type Sweep interface {
	// Name is the registry id (the dspbench -exp value).
	Name() string
	// Run executes the sweep at cfg's scale and renders its table to w.
	Run(w io.Writer, cfg RunConfig) error
}

// Asserter is the optional invariant hook on a Sweep: after Run, drivers
// (dspbench, CI smokes) call Assert on sweeps that implement it to validate
// the result table beyond "it printed".
type Asserter interface {
	Assert() error
}

// tableSweep adapts a Table-producing sweep function to Sweep and retains
// the last result for Assert.
type tableSweep struct {
	name  string
	f     func(cfg RunConfig) (*Table, error)
	check func(*Table) error // extra sweep-specific invariant (may be nil)
	last  *Table
}

func (s *tableSweep) Name() string { return s.name }

func (s *tableSweep) Run(w io.Writer, cfg RunConfig) error {
	t, err := s.f(cfg)
	if err != nil {
		return err
	}
	s.last = t
	return renderTable(w, t, cfg)
}

// Assert validates the last Run's table: a consistent rows x cols grid of
// finite cells, plus the sweep's own invariant when one is registered.
func (s *tableSweep) Assert() error {
	t := s.last
	if t == nil {
		return fmt.Errorf("bench: sweep %q has no result to assert (Run first)", s.name)
	}
	if len(t.Cells) != len(t.Rows) {
		return fmt.Errorf("bench: sweep %q: %d cell rows for %d row labels", s.name, len(t.Cells), len(t.Rows))
	}
	for i, row := range t.Cells {
		if len(row) != len(t.Cols) {
			return fmt.Errorf("bench: sweep %q row %q: %d cells for %d col labels", s.name, t.Rows[i], len(row), len(t.Cols))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bench: sweep %q cell (%s, %s) is %v", s.name, t.Rows[i], t.Cols[j], v)
			}
		}
	}
	if s.check != nil {
		return s.check(t)
	}
	return nil
}

// Sweeps is the single sweep registry. Each entry also registers under its
// name in Experiments (init below), so dspbench dispatch and -list see one
// namespace.
var Sweeps = []Sweep{
	&tableSweep{name: "serve-load", f: ServeLoad},
	&tableSweep{name: "cache-sweep", f: CacheSweep},
	&tableSweep{name: "compress-sweep", f: CompressSweep},
	&tableSweep{name: "router-sweep", f: RouterSweep},
	&tableSweep{name: "ooc-sweep", f: OOCSweep},
	&tableSweep{name: "strategy-sweep", f: StrategySweep},
	&tableSweep{name: "fault-sweep", f: FaultSweep},
}

// SweepByName returns the registered sweep, or nil.
func SweepByName(name string) Sweep {
	for _, s := range Sweeps {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

func init() {
	for _, s := range Sweeps {
		if _, dup := Experiments[s.Name()]; dup {
			panic(fmt.Sprintf("bench: sweep %q collides with an experiment id", s.Name()))
		}
		Experiments[s.Name()] = s.Run
	}
}

// renderTable is the shared table output path: aligned text, or one JSON
// object when cfg.JSON is set.
func renderTable(w io.Writer, t *Table, cfg RunConfig) error {
	if cfg.JSON {
		return t.WriteJSON(w)
	}
	t.Fprint(w)
	return nil
}

// WriteJSON emits the table as a single machine-readable JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title string      `json:"title"`
		Unit  string      `json:"unit,omitempty"`
		Cols  []string    `json:"cols"`
		Rows  []string    `json:"rows"`
		Cells [][]float64 `json:"cells"`
		Notes []string    `json:"notes,omitempty"`
	}{t.Title, t.Unit, t.Cols, t.Rows, t.Cells, t.Notes})
}
