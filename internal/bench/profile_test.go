package bench

import (
	"io"
	"testing"
)

// BenchmarkPerfEpoch runs the canonical perf workload end to end; it is the
// profiling entry point for simulator wall-clock work (go test -bench
// PerfEpoch -cpuprofile ...). Kept small so CI's -benchtime=1x smoke stays
// fast.
func BenchmarkPerfEpoch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := PerfReport(RunConfig{Shrink: 16, Warmup: 1, Measure: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4EpochTime is the heavy profiling workload: the full §5.2
// epoch-time grid. Skipped in -short mode (CI bench smoke).
func BenchmarkTable4EpochTime(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy profiling benchmark")
	}
	for i := 0; i < b.N; i++ {
		if err := Experiments["table4"](io.Discard, RunConfig{Shrink: 12, Warmup: 1, Measure: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
