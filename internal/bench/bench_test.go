package bench

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// quick is the fast test configuration: heavily shrunk datasets, one
// measured epoch (the simulator is deterministic).
var quick = RunConfig{Shrink: 12, Warmup: 0, Measure: 1}

func TestTable1MatchesPaper(t *testing.T) {
	tab, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]string]float64{
		{"PCIe", "1-GPU"}: 32, {"PCIe", "2-GPU"}: 32, {"PCIe", "4-GPU"}: 64, {"PCIe", "8-GPU"}: 128,
		{"NVLink", "1-GPU"}: 0, {"NVLink", "2-GPU"}: 100, {"NVLink", "4-GPU"}: 400, {"NVLink", "8-GPU"}: 1200,
	}
	for k, v := range want {
		if got := tab.Get(k[0], k[1]); got != v {
			t.Errorf("%v = %v, want %v", k, got, v)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// Time decreases from the first to a middle column, then the last
		// two columns are nearly equal (plateau).
		first := tab.Get(row, tab.Cols[0])
		mid := tab.Get(row, tab.Cols[3])
		last := tab.Get(row, tab.Cols[len(tab.Cols)-1])
		prev := tab.Get(row, tab.Cols[len(tab.Cols)-2])
		if !(first > mid) {
			t.Errorf("%s: no speedup from %v to %v threads", row, tab.Cols[0], tab.Cols[3])
		}
		if math.Abs(last-prev)/prev > 0.05 {
			t.Errorf("%s: no plateau at high thread counts (%v vs %v)", row, prev, last)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tab, err := Fig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		uva := tab.Get("UVA", ds)
		csp := tab.Get("CSP", ds)
		if uva <= 2 {
			t.Errorf("%s: UVA amplification %.2fx, want >2x over Ideal", ds, uva)
		}
		if csp >= 1 {
			t.Errorf("%s: CSP %.2fx not below Ideal (paper footnote: local accesses are free)", ds, csp)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full epoch-time sweep")
	}
	tab, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	t.Log("\n" + buf.String())
	for _, col := range tab.Cols {
		dsp := tab.Get("DSP", col)
		for _, sysName := range []string{"PyG", "DGL-CPU", "Quiver", "DGL-UVA"} {
			if dsp >= tab.Get(sysName, col) {
				t.Errorf("%s: DSP (%.4g) not fastest (vs %s %.4g)", col, dsp, sysName, tab.Get(sysName, col))
			}
		}
	}
	// CPU systems barely scale 1->8 GPUs; DSP scales well.
	for _, ds := range dsList {
		pygScale := tab.Get("PyG", colName(ds, 1)) / tab.Get("PyG", colName(ds, 8))
		dspScale := tab.Get("DSP", colName(ds, 1)) / tab.Get("DSP", colName(ds, 8))
		if dspScale <= pygScale {
			t.Errorf("%s: DSP scaling %.2fx not above PyG %.2fx", ds, dspScale, pygScale)
		}
		if dspScale < 2.5 {
			t.Errorf("%s: DSP 1->8 GPU speedup only %.2fx", ds, dspScale)
		}
		if pygScale > 3 {
			t.Errorf("%s: PyG scales %.2fx 1->8 GPUs; CPU sampling should bottleneck", ds, pygScale)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("epoch-time sweep")
	}
	tab, err := Table5(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tab.Cols {
		dsp := tab.Get("DSP", col)
		for _, sysName := range []string{"PyG", "DGL-CPU", "Quiver", "DGL-UVA"} {
			if dsp >= tab.Get(sysName, col) {
				t.Errorf("%s: DSP not fastest for GCN (vs %s)", col, sysName)
			}
		}
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling sweep")
	}
	tab, err := Table6(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tab.Cols {
		dsp := tab.Get("DSP", col)
		uva := tab.Get("DGL-UVA", col)
		cpu := tab.Get("DGL-CPU", col)
		if dsp >= uva {
			t.Errorf("%s: CSP (%.4g) not faster than UVA (%.4g)", col, dsp, uva)
		}
		if uva >= cpu {
			t.Errorf("%s: UVA (%.4g) not faster than CPU (%.4g)", col, uva, cpu)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	// FastGCN's cost is an O(N) scan per layer, so its disadvantage grows
	// with graph size; run at moderate shrink so N is meaningful.
	tab, err := Table7(RunConfig{Shrink: 4, Warmup: 0, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		fg := tab.Get("FastGCN", ds)
		dsp := tab.Get("DSP", ds)
		if dsp >= fg {
			t.Errorf("%s: DSP layer-wise (%.4g) not faster than FastGCN (%.4g)", ds, dsp, fg)
		}
	}
	// On the larger graphs the gap is at least 5x (paper: orders of
	// magnitude at full scale).
	for _, ds := range []string{"papers", "friendster"} {
		if tab.Get("DSP", ds)*5 >= tab.Get("FastGCN", ds) {
			t.Errorf("%s: layer-wise gap below 5x (DSP %.4g, FastGCN %.4g)", ds, tab.Get("DSP", ds), tab.Get("FastGCN", ds))
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("utilization sweep")
	}
	tab, err := Fig6(RunConfig{Shrink: 6, Warmup: 0, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tab.Cols {
		if tab.Get("DSP", col) <= tab.Get("DSP-Seq", col) {
			t.Errorf("%s: pipeline utilization (%.1f) not above sequential (%.1f)",
				col, tab.Get("DSP", col), tab.Get("DSP-Seq", col))
		}
	}
	// The gap widens with GPU count on the large graphs (products is fully
	// cached and overhead-bound, where the 1-GPU gap is already large).
	for _, ds := range []string{"papers", "friendster"} {
		gap1 := tab.Get("DSP", colName(ds, 1)) - tab.Get("DSP-Seq", colName(ds, 1))
		gap8 := tab.Get("DSP", colName(ds, 8)) - tab.Get("DSP-Seq", colName(ds, 8))
		if gap8 <= gap1 {
			t.Errorf("%s: utilization gap does not widen with GPUs: %.2f at 1, %.2f at 8", ds, gap1, gap8)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("real training")
	}
	tab, err := Fig9(RunConfig{Shrink: 4, Warmup: 0, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Cols[len(tab.Cols)-1]
	// Accuracy-vs-batch identical across systems (BSP equivalence).
	for _, col := range tab.Cols {
		a := tab.Get("DSP/acc", col)
		for _, s := range []string{"DGL-UVA", "Quiver"} {
			if b := tab.Get(s+"/acc", col); math.Abs(a-b) > 1e-9 {
				t.Errorf("%s: accuracy diverges at %s: %v vs %v", s, col, a, b)
			}
		}
	}
	// Learning actually happens.
	if tab.Get("DSP/acc", last) < 2*tab.Get("DSP/acc", tab.Cols[0])/2+0.2 {
		if tab.Get("DSP/acc", last) < 0.3 {
			t.Errorf("no learning: final acc %v", tab.Get("DSP/acc", last))
		}
	}
	// DSP reaches the end in less virtual time.
	for _, s := range []string{"DGL-UVA", "Quiver"} {
		if tab.Get("DSP/time", last) >= tab.Get(s+"/time", last) {
			t.Errorf("DSP cumulative time %v not below %s %v", tab.Get("DSP/time", last), s, tab.Get(s+"/time", last))
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweep")
	}
	tab, err := Fig10(RunConfig{Shrink: 6, Warmup: 0, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	t.Log("\n" + buf.String())
	lastCol := tab.Cols[len(tab.Cols)-1]
	// Papers reproduces the full U: interior optimum on epoch time.
	best := math.Inf(1)
	bestIdx := -1
	for i, c := range tab.Cols {
		if v := tab.Get("papers", c); v < best {
			best, bestIdx = v, i
		}
	}
	if bestIdx == 0 || bestIdx == len(tab.Cols)-1 {
		t.Errorf("papers: optimum at extreme %s", tab.Cols[bestIdx])
	}
	// Both datasets: a starved feature cache hurts (left flank falls)...
	for _, ds := range []string{"papers", "friendster"} {
		if tab.Get(ds, tab.Cols[0]) <= tab.Get(ds, tab.Cols[2]) {
			t.Errorf("%s: left flank does not fall (%.4g vs %.4g)", ds, tab.Get(ds, tab.Cols[0]), tab.Get(ds, tab.Cols[2]))
		}
		// ...and a starved topology cache inflates sampling time steeply
		// (the paper's right-flank mechanism).
		sLeft := tab.Get(ds+"/sampling", tab.Cols[0])
		sRight := tab.Get(ds+"/sampling", lastCol)
		if sRight < 1.3*sLeft {
			t.Errorf("%s: topology spill does not inflate sampling (%.4g -> %.4g)", ds, sLeft, sRight)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		if tab.Get("CSP", ds) >= tab.Get("PullData", ds) {
			t.Errorf("%s: CSP (%.4g) not faster than PullData (%.4g)", ds, tab.Get("CSP", ds), tab.Get("PullData", ds))
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep")
	}
	tab, err := Fig12(RunConfig{Shrink: 6, Warmup: 0, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Rows {
		s1 := tab.Get(ds, "1-GPU")
		s8 := tab.Get(ds, "8-GPU")
		if s8 < 1.15 {
			t.Errorf("%s: 8-GPU pipeline speedup %.2fx, want >1.15x", ds, s8)
		}
		// Speedup grows with GPU count on the large graphs (products is
		// overhead-bound at 1 GPU already).
		if ds != "products" && s8 <= s1 {
			t.Errorf("%s: speedup does not grow with GPUs (%.2f at 1, %.2f at 8)", ds, s1, s8)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps")
	}
	for name, fn := range map[string]func(RunConfig) (*Table, error){
		"layout": AblationPartition,
		"queue":  AblationQueueCap,
		"cache":  AblationReplicatedCache,
	} {
		tab, err := fn(quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 || len(tab.Cols) == 0 {
			t.Fatalf("%s: empty table", name)
		}
	}
}

func TestAblationPartitionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	tab, err := AblationPartition(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		if tab.Get("metis/sample-MB", ds) >= tab.Get("hash/sample-MB", ds) {
			t.Errorf("%s: METIS sampling volume not below hash", ds)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) < 12 {
		t.Fatalf("registry has %d experiments", len(Experiments))
	}
	var buf bytes.Buffer
	if err := Experiments["table1"](&buf, quick); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("runner produced no output")
	}
}

func TestAblationFusedShape(t *testing.T) {
	tab, err := AblationFusedKernels(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		if tab.Get("fused", ds) >= tab.Get("per-task", ds) {
			t.Errorf("%s: fused sampling (%.4g) not faster than per-task (%.4g)",
				ds, tab.Get("fused", ds), tab.Get("per-task", ds))
		}
	}
}

func TestAblationMultiWorkerRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("worker sweep")
	}
	tab, err := AblationMultiWorker(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		for _, row := range tab.Rows {
			if tab.Get(row, ds) <= 0 {
				t.Errorf("%s %s: no epoch time", row, ds)
			}
		}
	}
}

func TestExtensionMultiMachineScales(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab, err := AblationMultiMachine(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		one := tab.Get("1 machine", ds)
		four := tab.Get("4 machines", ds)
		if four >= one {
			t.Errorf("%s: 4 machines (%.4g) not faster than 1 (%.4g)", ds, four, one)
		}
	}
}

func TestExtensionGNNArchOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("arch sweep")
	}
	tab, err := ExtensionGNNArchs(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range tab.Cols {
		gcn, sage, gat := tab.Get("GCN", ds), tab.Get("GraphSAGE", ds), tab.Get("GAT", ds)
		if !(gcn <= sage && sage <= gat) {
			t.Errorf("%s: epoch times not ordered GCN<=SAGE<=GAT: %.4g %.4g %.4g", ds, gcn, sage, gat)
		}
	}
}

func TestServeLoadShape(t *testing.T) {
	tab, err := ServeLoad(quick)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tab.Cols[0], tab.Cols[len(tab.Cols)-1]
	// batch=1 exhibits the hockey stick: tail latency explodes past its
	// saturation point and admission control sheds heavily.
	if s1lo, s1hi := tab.Get("batch=1 p99", lo), tab.Get("batch=1 p99", hi); s1hi < 5*s1lo {
		t.Errorf("batch=1 p99 should explode past saturation: %.3f -> %.3f ms", s1lo, s1hi)
	}
	if shed := tab.Get("batch=1 shed%", hi); shed <= 10 {
		t.Errorf("batch=1 should shed heavily at %s, got %.1f%%", hi, shed)
	}
	// Dynamic micro-batching strictly beats batch=1 at high load on both
	// tail latency and shed rate.
	if d, s := tab.Get("dynamic p99", hi), tab.Get("batch=1 p99", hi); d >= s {
		t.Errorf("dynamic p99 %.3f ms not better than batch=1 %.3f ms at %s", d, s, hi)
	}
	if d, s := tab.Get("dynamic shed%", hi), tab.Get("batch=1 shed%", hi); d >= s {
		t.Errorf("dynamic shed %.1f%% not better than batch=1 %.1f%% at %s", d, s, hi)
	}
	// Fixed-batch strands partial batches at low load.
	if f, d := tab.Get("fixed p99", lo), tab.Get("dynamic p99", lo); f <= d {
		t.Errorf("fixed p99 %.3f ms should exceed dynamic %.3f ms at %s", f, d, lo)
	}
}

func TestFaultSweepShape(t *testing.T) {
	tab, err := FaultSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tab.Cols[0], tab.Cols[len(tab.Cols)-1]
	if dead := tab.Get("dead GPUs", lo); dead != 0 {
		t.Errorf("fault-free column reports %g dead GPUs", dead)
	}
	if dead := tab.Get("dead GPUs", hi); dead < 1 {
		t.Errorf("highest crash rate killed no GPUs")
	}
	// The fleet keeps answering even at the highest crash rate, at reduced
	// but non-zero throughput.
	if thr := tab.Get("throughput req/s", hi); thr <= 0 {
		t.Errorf("no throughput under faults")
	}
	if thr, clean := tab.Get("throughput req/s", hi), tab.Get("throughput req/s", lo); thr >= clean {
		t.Errorf("throughput did not degrade under crashes: %.0f vs fault-free %.0f", thr, clean)
	}
	if mttr := tab.Get("mean MTTR ms", hi); mttr <= 0 {
		t.Errorf("no MTTR recorded despite dead GPUs")
	}
	if un := tab.Get("unanswered %", hi); un < 0 || un >= 100 {
		t.Errorf("unanswered%% %.1f out of range", un)
	}
}

func TestCacheSweepOrdering(t *testing.T) {
	tab, err := CacheSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	static, lfu := tab.Get("static", "hit%"), tab.Get("lfu-decay", "hit%")
	if lfu <= static {
		t.Errorf("lfu-decay hit %.2f%% not above static %.2f%% under drift", lfu, static)
	}
	if tab.Get("static", "migrated MB") != 0 || tab.Get("static", "rebal%") != 0 {
		t.Error("static policy paid migration cost")
	}
	for _, pol := range []string{"lfu-decay", "degree-hybrid"} {
		if tab.Get(pol, "migrated MB") <= 0 {
			t.Errorf("%s migrated nothing", pol)
		}
	}
}

func TestRouterSweepOrdering(t *testing.T) {
	tab, err := RouterSweep(quick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	t.Logf("\n%s", buf.String())
	for _, n := range routerFleetCounts {
		p99 := fmt.Sprintf("%d-fleet p99", n)
		rr := tab.Get("round-robin", p99)
		ll := tab.Get("least-loaded", p99)
		// With a stalling straggler in the replica set, sensing queue depth
		// must beat blind rotation at the tail.
		if !(ll < rr) {
			t.Errorf("%d fleets: least-loaded p99 %.3fms not better than round-robin %.3fms", n, ll, rr)
		}
		for _, row := range tab.Rows {
			if tab.Get(row, fmt.Sprintf("%d-fleet good/s", n)) <= 0 {
				t.Errorf("%s, %d fleets: no goodput", row, n)
			}
		}
	}
}
