package bench

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/train"
)

// compressCodecs are the accuracy-vs-bytes frontier points, paper order:
// the lossless baseline first, then increasingly aggressive codecs.
func compressCodecs() []compress.Codec {
	return []compress.Codec{
		compress.FP32{},
		compress.FP16{},
		compress.NewInt8(2023), // seed matches baseOpts.Seed
		compress.NewTopK(0.1),
	}
}

// compressResult is one frontier point: real training under a codec.
type compressResult struct {
	Loss     float64 // mean training loss of the final epoch
	ValAcc   float64 // final validation accuracy
	GradWire int64   // cumulative gradient wire bytes, all epochs
	FeatWire int64   // cumulative feature wire bytes, all epochs
	Params   []float32
}

// compressEpochs is the fixed training length of every frontier point, so
// rows differ only in codec ("equal epochs").
const compressEpochs = 4

// compressRun trains DSP for real with the given codec on both the gradient
// allreduce and the feature gathers, and reports the frontier point. It is
// a pure function of (td, codec): two calls with the same codec must return
// bit-identical results (asserted by the determinism test).
func compressRun(td *train.Data, codec compress.Codec, cfg RunConfig) (compressResult, error) {
	opts := baseOpts(td, cfg)
	opts.BatchSize = 256
	opts.Model = nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 32, Classes: td.NumClasses, Layers: 2}
	opts.Sample = sample.Config{Fanout: []int{10, 5}}
	opts.RealCompute = true
	opts.LR = 0.01
	opts.GradCodec = codec
	opts.FeatCodec = codec
	sys, err := buildSystem("DSP", opts)
	if err != nil {
		return compressResult{}, err
	}
	sched := train.NewSchedule(td, opts.BatchSize)
	var res compressResult
	for e := 0; e < compressEpochs; e++ {
		st, err := sys.RunEpoch(e)
		if err != nil {
			return compressResult{}, err
		}
		res.GradWire += st.GradWire
		res.FeatWire += st.FeatureWire
		if e == compressEpochs-1 && sched.Steps > 0 {
			res.Loss = st.Loss / float64(sched.Steps)
		}
	}
	res.ValAcc = train.Evaluate(td, sys.Model(), opts.Sample, 1000, 5)
	res.Params = make([]float32, sys.Model().ParamCount())
	sys.Model().ParamVector(res.Params)
	return res, nil
}

// compressData builds the dedicated real-compute stand-in: small enough for
// fp32 training on the host, 4 GPUs so every collective actually moves wire
// bytes.
func compressData(cfg RunConfig) *train.Data {
	key := fmt.Sprintf("compress/%d", cfg.Shrink)
	cacheMu.Lock()
	if td, ok := prepCache[key]; ok {
		cacheMu.Unlock()
		return td
	}
	cacheMu.Unlock()
	nodes := 16000 / cfg.Shrink
	if nodes < 1500 {
		nodes = 1500
	}
	d := genDataset(fmt.Sprintf("compress-%d", nodes), nodes)
	td := train.Prepare(d, 4, 13, true)
	td.ScaleFactor = 111e6 / float64(nodes)
	td.GPUMemBytes = int64(16 * float64(1<<30) / td.ScaleFactor)
	cacheMu.Lock()
	prepCache[key] = td
	cacheMu.Unlock()
	return td
}

// CompressSweep produces the accuracy-vs-bytes frontier: DSP trained for
// real at equal epochs under each codec, applied to both the gradient
// allreduce and the feature-reply all-to-all. Columns: final-epoch mean
// loss and its delta vs fp32, final validation accuracy and its delta,
// cumulative gradient wire MB and the reduction factor vs fp32, and
// cumulative feature wire MB.
//
// Expected shape: fp16/int8 sit within a few percent of the fp32 loss at a
// 2x/3.9x gradient wire cut; topk(0.1) buys the biggest cut at visible
// quality cost. Feature compression changes bytes only — features are
// assembled host-side in real-compute mode, so FeatCodec never perturbs the
// math (see DESIGN.md).
func CompressSweep(cfg RunConfig) (*Table, error) {
	codecs := compressCodecs()
	rows := make([]string, len(codecs))
	for i, c := range codecs {
		rows[i] = c.Name()
	}
	cols := []string{"loss", "dloss%", "val-acc", "dacc", "grad MB", "gradx", "feat MB"}
	t := NewTable("Compression: accuracy-vs-bytes frontier (DSP, 4 GPUs, equal epochs)", "mixed", rows, cols)

	td := compressData(cfg)
	var base compressResult
	for i, codec := range codecs {
		res, err := compressRun(td, codec, cfg)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = res
		}
		name := codec.Name()
		t.Set(name, "loss", res.Loss)
		if base.Loss != 0 {
			t.Set(name, "dloss%", 100*(res.Loss-base.Loss)/math.Abs(base.Loss))
		}
		t.Set(name, "val-acc", res.ValAcc)
		t.Set(name, "dacc", res.ValAcc-base.ValAcc)
		t.Set(name, "grad MB", float64(res.GradWire)/1e6)
		if res.GradWire > 0 {
			t.Set(name, "gradx", float64(base.GradWire)/float64(res.GradWire))
		}
		t.Set(name, "feat MB", float64(res.FeatWire)/1e6)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("every row trains %d epochs on the same seeds; only the codec differs", compressEpochs),
		"int8 must cut gradient wire >= 3.5x with |dloss%| within the documented 5% bound",
		"feature codecs change bytes/time only: real-compute features are assembled host-side (DESIGN.md)",
	)
	return t, nil
}
