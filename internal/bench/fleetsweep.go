package bench

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/train"
)

// routerPolicies is the dispatch-policy grid of the router sweep.
var routerPolicies = []fleet.Policy{
	fleet.RoundRobin, fleet.LeastLoaded, fleet.LatencyAware, fleet.ShardAffinity,
}

// routerFleetCounts is the replica-count grid.
var routerFleetCounts = []int{2, 3}

// routerSLO is the sweep's latency objective (goodput accounting).
const routerSLO = 10e-3

// RouterSweep maps the routing-policy x fleet-count frontier for replicated
// serving under drifting popularity with a persistent straggler: fleet 0's
// GPU 0 stalls periodically, so policies that sense load (least-loaded) or
// latency (latency-aware) divert traffic around it while round-robin keeps
// feeding the slow replica and pays for it at the tail. Reported per cell:
// routed p99 and the within-SLO goodput rate.
func RouterSweep(cfg RunConfig) (*Table, error) {
	cols := make([]string, 0, 2*len(routerFleetCounts))
	for _, n := range routerFleetCounts {
		cols = append(cols, fmt.Sprintf("%d-fleet p99", n), fmt.Sprintf("%d-fleet good/s", n))
	}
	rows := make([]string, len(routerPolicies))
	for i, p := range routerPolicies {
		rows[i] = p.String()
	}
	t := NewTable("Fleet router: policy frontier under drift with a straggler fleet (2 GPUs/fleet)", "ms | req/s", rows, cols)

	td := prepared("products", 2, cfg.Shrink, false, true)
	for _, pol := range routerPolicies {
		for _, n := range routerFleetCounts {
			rep, err := runRouterCell(td, pol, n)
			if err != nil {
				return nil, err
			}
			t.Set(pol.String(), fmt.Sprintf("%d-fleet p99", n), 1e3*rep.Latency.P99())
			t.Set(pol.String(), fmt.Sprintf("%d-fleet good/s", n), rep.Goodput.Rate())
		}
	}
	t.Notes = append(t.Notes,
		"fleet0/gpu0 stalls for 120 ms at t=0.2s and t=0.5s (straggler); popularity drifts every 100 ms",
		fmt.Sprintf("goodput counts completions within the %.0f ms SLO per virtual second", 1e3*routerSLO),
		"load-aware policies route around the straggler; round-robin keeps feeding it")
	return t, nil
}

// runRouterCell runs one (policy, fleet-count) cell of the sweep.
func runRouterCell(td *train.Data, pol fleet.Policy, fleets int) (*fleet.Report, error) {
	const horizon = 0.8
	// The straggler: fleet 0's first GPU stalls for two long 120 ms windows,
	// so replica 0 goes dark for 30% of the run. Scoped faults ride each
	// fleet's own injector, so only replica 0 degrades. Blind policies keep
	// queueing behind it for the whole stall; load-aware ones only leak the
	// requests in flight when the stall lands, then divert.
	var ffs []fault.FleetFault
	for _, at := range []sim.Time{0.2, 0.5} {
		ffs = append(ffs, fault.FleetFault{
			Fleet: 0,
			Fault: fault.Fault{Kind: fault.Stall, GPU: 0, At: at, Duration: 120e-3},
		})
	}
	r, err := fleet.NewRouter(fleet.Config{
		Serve: serve.Config{
			Data:     td,
			Seed:     2023,
			Duration: horizon,
			Rate:     6000,
			Skew:     0.8,
			UseCCC:   true,
			SLO:      routerSLO,
			// Deep queues so blind policies really pay for feeding the
			// straggler instead of being bailed out by admission backpressure.
			QueueDepth: 512,
			DriftEvery: 0.1,
		},
		Fleets: fleets,
		Policy: pol,
		Faults: ffs,
	})
	if err != nil {
		return nil, err
	}
	return r.Run()
}
