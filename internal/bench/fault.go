package bench

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/serve"
)

// faultCrashRates is the crash-arrival grid (expected crashes per virtual
// second) for the degraded-serving sweep. Over the 0.5 s serving horizon on
// 4 GPUs this spans fault-free operation to losing most of the fleet
// (RandomSchedule always leaves one GPU alive).
var faultCrashRates = []float64{0, 2, 4, 8}

// faultStallRate adds a light straggler background (one expected 5 ms stall
// per second) so the sweep also exercises transient slowdowns, not just
// fail-stop deaths.
const (
	faultStallRate = 1.0
	faultStallDur  = 5e-3
)

// FaultSweep serves a fixed offered load under seeded random fault schedules
// of increasing crash rate and reports how gracefully the fleet degrades:
// completed throughput, tail latency, the fraction of arrivals not answered
// (shed at admission plus lost with a dead GPU), re-routed requests, and the
// mean degraded-mode MTTR (crash to next completed request).
func FaultSweep(cfg RunConfig) (*Table, error) {
	cols := make([]string, len(faultCrashRates))
	for i, r := range faultCrashRates {
		cols[i] = fmt.Sprintf("%g cr/s", r)
	}
	rows := []string{"dead GPUs", "throughput req/s", "p99 ms", "unanswered %", "rerouted", "mean MTTR ms"}
	t := NewTable("Serving under faults: graceful degradation vs crash rate (products-sim, 4 GPUs)", "", rows, cols)

	const nGPU = 4
	td := prepared("products", nGPU, cfg.Shrink, false, true)
	for i, crashRate := range faultCrashRates {
		sc := serveConfig(td, serve.BatchDynamic, 4000)
		sc.Faults = fault.RandomSchedule(sc.Seed, nGPU, sc.Duration,
			crashRate, faultStallRate, faultStallDur)
		rep, err := serve.Serve(sc)
		if err != nil {
			return nil, err
		}
		unanswered := 0.0
		if rep.Arrived > 0 {
			unanswered = 100 * float64(rep.Shed+rep.Lost) / float64(rep.Arrived)
		}
		var mttr float64
		for _, rec := range rep.Recoveries {
			mttr += float64(rec.MTTR)
		}
		if n := len(rep.Recoveries); n > 0 {
			mttr /= float64(n)
		}
		t.Set("dead GPUs", cols[i], float64(len(rep.DeadGPUs)))
		t.Set("throughput req/s", cols[i], rep.Throughput)
		t.Set("p99 ms", cols[i], 1e3*rep.Latency.P99())
		t.Set("unanswered %", cols[i], unanswered)
		t.Set("rerouted", cols[i], float64(rep.Rerouted))
		t.Set("mean MTTR ms", cols[i], 1e3*mttr)
	}
	t.Notes = append(t.Notes,
		"seeded Poisson fault schedules (crashes at the column rate plus a 1/s background of 5 ms stalls) over a 0.5 s horizon at 4000 req/s offered",
		"unanswered% = (shed at admission + lost with a dead GPU) / arrived; MTTR = crash instant to the fleet's next completed request")
	return t, nil
}
