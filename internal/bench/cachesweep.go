package bench

import (
	"repro/internal/cache"
	"repro/internal/serve"
	"repro/internal/train"
)

// cacheSweepPolicies are the adaptive-cache policies under comparison.
var cacheSweepPolicies = []cache.Policy{cache.Static, cache.LFUDecay, cache.DegreeHybrid}

// CacheSweep compares the static presample placement against the dynamic
// cache policies on a drifting-popularity serving workload at a deliberately
// tight feature budget. Columns: measured GPU-cache hit rate, host-memory
// read volume (the cost of every miss), migration volume (the price of
// adaptation) and the rebalancer's share of virtual time.
//
// Expected ordering: both dynamic policies beat static on hit rate once the
// popularity drifts away from the degree ranking — the offline placement
// cannot follow the workload, the tracker can. The dynamic policies pay for
// it in migrated bytes and rebalance time; static pays nothing and serves
// ever more reads from host memory.
func CacheSweep(cfg RunConfig) (*Table, error) {
	cols := []string{"hit%", "host MB", "migrated MB", "rebal%"}
	rows := make([]string, len(cacheSweepPolicies))
	for i, p := range cacheSweepPolicies {
		rows[i] = p.String()
	}
	t := NewTable("Serving: cache policy under popularity drift (products-sim, 4 GPUs)", "mixed", rows, cols)

	td := prepared("products", 4, cfg.Shrink, false, true)
	// ~5% of each GPU's owned rows: small enough that placement quality,
	// not capacity, decides the hit rate.
	budget := int64(td.G.NumNodes()/4/20) * int64(td.RowBytes())
	for _, pol := range cacheSweepPolicies {
		rep, err := serve.Serve(cacheSweepConfig(td, pol, budget))
		if err != nil {
			return nil, err
		}
		t.Set(pol.String(), "hit%", 100*rep.CacheHitRate())
		t.Set(pol.String(), "host MB", float64(rep.HostRows*int64(td.RowBytes()))/1e6)
		t.Set(pol.String(), "migrated MB", float64(rep.RebalanceBytes)/1e6)
		if rep.Makespan > 0 {
			t.Set(pol.String(), "rebal%", 100*float64(rep.RebalanceTime)/float64(rep.Makespan))
		}
	}
	t.Notes = append(t.Notes,
		"popularity permutation re-drawn every 0.1 s of virtual time; feature budget ~5% of owned rows per GPU",
		"expected: dynamic policies (lfu-decay, degree-hybrid) above static on hit%, at the cost of migrated MB and rebal%",
	)
	return t, nil
}

// cacheSweepConfig is the drift-serving configuration shared by all rows:
// only the cache policy varies, so hit-rate differences are attributable.
func cacheSweepConfig(td *train.Data, pol cache.Policy, budget int64) serve.Config {
	return serve.Config{
		Data:               td,
		Seed:               2023,
		Duration:           0.5,
		Rate:               4000,
		Skew:               1.2,
		UseCCC:             true,
		FeatureCacheBudget: budget,
		DynamicCache:       pol,
		RebalanceEvery:     5e-3,
		DriftEvery:         0.1,
		CacheTune:          cache.Config{Decay: 0.9},
	}
}
