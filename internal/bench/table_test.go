package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableCellErrors(t *testing.T) {
	tb := NewTable("t", "ms", []string{"r1", "r2"}, []string{"c1", "c2"})
	if err := tb.SetCell("r2", "c1", 4.5); err != nil {
		t.Fatalf("SetCell on known names: %v", err)
	}
	v, err := tb.GetCell("r2", "c1")
	if err != nil || v != 4.5 {
		t.Fatalf("GetCell = %v, %v; want 4.5, nil", v, err)
	}
	if _, err := tb.GetCell("nope", "c1"); err == nil {
		t.Fatal("GetCell with unknown row: want error")
	} else if !strings.Contains(err.Error(), `unknown row "nope"`) || !strings.Contains(err.Error(), "r1, r2") {
		t.Fatalf("unknown-row error should name the row and list valid ones, got: %v", err)
	}
	if err := tb.SetCell("r1", "nope", 1); err == nil {
		t.Fatal("SetCell with unknown col: want error")
	} else if !strings.Contains(err.Error(), `unknown col "nope"`) || !strings.Contains(err.Error(), "c1, c2") {
		t.Fatalf("unknown-col error should name the col and list valid ones, got: %v", err)
	}
	// The panicking wrappers delegate to the same resolution.
	defer func() {
		if recover() == nil {
			t.Fatal("Get with unknown names should panic")
		}
	}()
	tb.Get("nope", "c1")
}

func TestTableWriteJSON(t *testing.T) {
	tb := NewTable("grid", "s", []string{"a"}, []string{"x", "y"})
	tb.Set("a", "y", 2)
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title string      `json:"title"`
		Cols  []string    `json:"cols"`
		Cells [][]float64 `json:"cells"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Title != "grid" || len(got.Cols) != 2 || got.Cells[0][1] != 2 {
		t.Fatalf("unexpected JSON round-trip: %+v", got)
	}
}

func TestSweepRegistry(t *testing.T) {
	want := []string{"serve-load", "cache-sweep", "compress-sweep", "router-sweep",
		"ooc-sweep", "strategy-sweep", "fault-sweep"}
	for _, name := range want {
		s := SweepByName(name)
		if s == nil {
			t.Fatalf("sweep %q not registered", name)
		}
		if s.Name() != name {
			t.Fatalf("sweep %q reports name %q", name, s.Name())
		}
		if _, ok := Experiments[name]; !ok {
			t.Fatalf("sweep %q not folded into Experiments", name)
		}
	}
	if SweepByName("table4") != nil {
		t.Fatal("non-sweep experiment must not resolve as a sweep")
	}
	if _, ok := SweepByName("serve-load").(Asserter); !ok {
		t.Fatal("table sweeps should implement Asserter")
	}
	// Assert before Run reports a clear error rather than passing vacuously.
	if err := (&tableSweep{name: "x", f: ServeLoad}).Assert(); err == nil {
		t.Fatal("Assert before Run: want error")
	}
}
