package bench

import (
	"fmt"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/train"
)

// serveLoads is the offered-load grid (requests per virtual second) for the
// latency-vs-load sweep. The top of the grid sits past the fleet's service
// capacity so the p99 hockey stick and admission-control shedding are both
// visible.
var serveLoads = []float64{250, 1000, 4000, 8000, 16000, 32000, 64000}

// serveModes are the batching policies compared by the ablation, paper-style
// row labels via Batching.String.
var serveModes = []serve.Batching{serve.BatchDynamic, serve.BatchSingle, serve.BatchFixed}

// ServeLoad sweeps offered load on a 4-GPU DGX-1 serving products-sim and
// reports tail latency and shed rate per batching policy. Dynamic
// micro-batching holds the tail flat until saturation; batch=1 pays
// per-round overhead per request and falls over earliest; fixed-batch
// (flush only on a full batch) strands partial batches at low load.
func ServeLoad(cfg RunConfig) (*Table, error) {
	cols := make([]string, len(serveLoads))
	for i, r := range serveLoads {
		cols[i] = fmt.Sprintf("%.0f/s", r)
	}
	rows := make([]string, 0, 2*len(serveModes))
	for _, m := range serveModes {
		rows = append(rows, m.String()+" p99", m.String()+" shed%")
	}
	t := NewTable("Serving: tail latency vs offered load (products-sim, 4 GPUs)", "ms", rows, cols)

	td := prepared("products", 4, cfg.Shrink, false, true)
	for _, mode := range serveModes {
		for i, rate := range serveLoads {
			scfg := serveConfig(td, mode, rate)
			var hub *telemetry.Hub
			if cfg.Telemetry {
				// Fresh hub per run: each Serve builds its own engine and
				// the hub's series registry is single-use.
				hub = telemetry.New(telemetry.Config{})
				scfg.Telemetry = hub
			}
			rep, err := serve.Serve(scfg)
			if err != nil {
				return nil, err
			}
			if hub.Enabled() {
				doc := hub.Finish(rep.Makespan)
				if err := doc.Validate(); err != nil {
					return nil, fmt.Errorf("bench: telemetry (%s @ %.0f req/s): %w", mode, rate, err)
				}
				// The healthy baseline — dynamic batching below saturation —
				// must not burn its error budget; rows past the capacity
				// knee legitimately shed and fire.
				if mode == serve.BatchDynamic && rate <= 4000 && len(doc.Alerts) > 0 {
					return nil, fmt.Errorf("bench: burn-rate alert fired on healthy baseline (%s @ %.0f req/s): %d alert(s)",
						mode, rate, len(doc.Alerts))
				}
			}
			t.Set(mode.String()+" p99", cols[i], 1e3*rep.Latency.P99())
			t.Set(mode.String()+" shed%", cols[i], 100*rep.ShedRate())
		}
	}
	t.Notes = append(t.Notes,
		"p99 in virtual ms over a 0.5 s arrival window; shed% is the fraction rejected by admission control",
		"dynamic flushes on max-batch or max-wait; batch=1 dispatches every request alone; fixed waits for a full batch")
	if cfg.Telemetry {
		t.Notes = append(t.Notes,
			"telemetry attached: burn-rate alerts verified silent on the sub-saturation dynamic-batching rows")
	}
	return t, nil
}

// serveConfig assembles the benchmark serving configuration. Unlike the
// training benchmarks, per-batch fixed costs are NOT divided by
// batchCountScale: serving micro-batches genuinely are small (1..MaxBatch
// requests), so per-round overheads carry their real weight.
func serveConfig(td *train.Data, mode serve.Batching, rate float64) serve.Config {
	return serve.Config{
		Data:     td,
		Seed:     2023,
		Duration: 0.5,
		Rate:     rate,
		Skew:     0.8,
		Batching: mode,
		UseCCC:   true,
	}
}
