package bench

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/sim"
)

// The parallel data-work offload (sim.ParallelGroup) must be unobservable in
// every simulation result: same seed, -parallel 1 vs -parallel 8, identical
// outputs bit for bit. These property tests run the three run modes (train,
// serve, fleet) at both settings and compare complete reports. Run them
// under -race to also catch unsynchronised sharing between offloaded units.

func TestParallelDeterminismTrain(t *testing.T) {
	reportBytes := func(par int) []byte {
		r, err := PerfReport(RunConfig{Shrink: 16, Warmup: 1, Measure: 1, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := reportBytes(1)
	parallel := reportBytes(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("train run report differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestParallelDeterminismServe(t *testing.T) {
	run := func(par int) *serve.Report {
		td := prepared("products", 4, 16, false, true)
		cfg := serveConfig(td, serve.BatchDynamic, 4000)
		cfg.Parallel = par
		rep, err := serve.Serve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serve report differs between -parallel 1 and -parallel 8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestParallelDeterminismFleet(t *testing.T) {
	run := func(par int) *fleet.Report {
		td := prepared("products", 2, 16, false, true)
		r, err := fleet.NewRouter(fleet.Config{
			Serve: serve.Config{
				Data:       td,
				Seed:       2023,
				Duration:   0.3,
				Rate:       3000,
				Skew:       0.8,
				UseCCC:     true,
				SLO:        20e-3,
				QueueDepth: 256,
				Parallel:   par,
			},
			Fleets: 2,
			Policy: fleet.LeastLoaded,
			Faults: []fault.FleetFault{{
				Fleet: 0,
				Fault: fault.Fault{Kind: fault.Stall, GPU: 0, At: sim.Time(0.1), Duration: 60e-3},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fleet report differs between -parallel 1 and -parallel 8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
