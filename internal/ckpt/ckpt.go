// Package ckpt implements periodic checkpoint/restore of training state for
// the fault-tolerance subsystem: model parameters, optimizer state and the
// (epoch, step) cursor, serialised to a small versioned binary format with a
// CRC, plus an in-memory Manager that keeps the last committed checkpoint
// and accounts the virtual-time overhead of taking it.
//
// RNG streams need no explicit state here: the training schedule derives
// every batch permutation and sampling seed as a pure function of
// (runSeed, epoch, step, rank), so restoring the cursor restores the random
// streams bit-identically.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/nn"
	"repro/internal/sim"
)

const (
	magic   = "DSPC"
	version = 1
)

// TrainState is one consistent snapshot of a BSP training job. Under BSP all
// replicas are bit-identical after every step, so rank 0's parameters and
// optimizer state describe the whole fleet.
type TrainState struct {
	// Epoch and Step are the cursor: the next batch to run is (Epoch, Step).
	Epoch, Step int
	// Seed is the run seed the schedule is derived from.
	Seed uint64
	// Model is the architecture (shape check on restore).
	Model nn.Config
	// Params is the flattened parameter vector (empty in cost-only runs).
	Params []float32
	// Optim is the flattened optimizer state.
	Optim nn.OptState
}

// Bytes returns the serialised size, which is also what the virtual-time
// charge model transfers over PCIe per checkpoint.
func (s *TrainState) Bytes() int64 {
	return int64(len(magic)) + 8*4 /* header u32s */ + 8 /* seed */ +
		4 + 4*int64(len(s.Params)) /* count + params */ +
		4 /* optim step */ + 4 + 4*int64(len(s.Optim.Data)) /* count + state */ +
		4 /* crc */
}

// Clone deep-copies the state (the Manager keeps snapshots immune to later
// in-place training updates).
func (s *TrainState) Clone() *TrainState {
	c := *s
	c.Params = append([]float32(nil), s.Params...)
	c.Optim.Data = append([]float32(nil), s.Optim.Data...)
	return &c
}

// Encode writes the state to dst in the versioned binary format: payload
// (magic, header, seed, params, optimizer state) followed by a CRC-32 of the
// payload.
func (s *TrainState) Encode(dst io.Writer) error {
	var buf bytes.Buffer
	buf.Grow(int(s.Bytes()))
	buf.WriteString(magic)
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	for _, v := range []uint32{version, uint32(s.Epoch), uint32(s.Step),
		uint32(s.Model.Arch), uint32(s.Model.InDim), uint32(s.Model.Hidden),
		uint32(s.Model.Classes), uint32(s.Model.Layers)} {
		u32(v)
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], s.Seed)
	buf.Write(b8[:])
	u32(uint32(len(s.Params)))
	for _, v := range s.Params {
		u32(math.Float32bits(v))
	}
	u32(uint32(s.Optim.Step))
	u32(uint32(len(s.Optim.Data)))
	for _, v := range s.Optim.Data {
		u32(math.Float32bits(v))
	}
	u32(crc32.ChecksumIEEE(buf.Bytes()))
	_, err := dst.Write(buf.Bytes())
	return err
}

// Decode reads a state written by Encode, verifying magic, version and CRC.
func Decode(src io.Reader) (*TrainState, error) {
	raw, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(magic)+4 {
		return nil, fmt.Errorf("ckpt: truncated checkpoint (%d bytes)", len(raw))
	}
	payload, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("ckpt: CRC mismatch (file %08x, computed %08x)", got, want)
	}
	if string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", payload[:len(magic)])
	}
	r := payload[len(magic):]
	u32 := func() (uint32, error) {
		if len(r) < 4 {
			return 0, fmt.Errorf("ckpt: truncated checkpoint payload")
		}
		v := binary.LittleEndian.Uint32(r)
		r = r[4:]
		return v, nil
	}
	var hdr [8]uint32
	for i := range hdr {
		v, err := u32()
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	if hdr[0] != version {
		return nil, fmt.Errorf("ckpt: unsupported version %d", hdr[0])
	}
	s := &TrainState{
		Epoch: int(hdr[1]), Step: int(hdr[2]),
		Model: nn.Config{Arch: nn.Arch(hdr[3]), InDim: int(hdr[4]),
			Hidden: int(hdr[5]), Classes: int(hdr[6]), Layers: int(hdr[7])},
	}
	if len(r) < 8 {
		return nil, fmt.Errorf("ckpt: truncated checkpoint payload")
	}
	s.Seed = binary.LittleEndian.Uint64(r)
	r = r[8:]
	np, err := u32()
	if err != nil {
		return nil, err
	}
	if int64(np)*4 > int64(len(r)) {
		return nil, fmt.Errorf("ckpt: implausible param count %d", np)
	}
	s.Params = make([]float32, np)
	for i := range s.Params {
		v, err := u32()
		if err != nil {
			return nil, err
		}
		s.Params[i] = math.Float32frombits(v)
	}
	ot, err := u32()
	if err != nil {
		return nil, err
	}
	s.Optim.Step = int(ot)
	no, err := u32()
	if err != nil {
		return nil, err
	}
	if int64(no)*4 > int64(len(r)) {
		return nil, fmt.Errorf("ckpt: implausible optimizer state size %d", no)
	}
	if no > 0 {
		s.Optim.Data = make([]float32, no)
	}
	for i := range s.Optim.Data {
		v, err := u32()
		if err != nil {
			return nil, err
		}
		s.Optim.Data[i] = math.Float32frombits(v)
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after payload", len(r))
	}
	return s, nil
}

// SaveFile writes the state to path atomically (tmp + rename).
func (s *TrainState) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a state written by SaveFile.
func LoadFile(path string) (*TrainState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Stats accounts checkpointing work for overhead reporting.
type Stats struct {
	// Checkpoints is the number of committed checkpoints.
	Checkpoints int
	// Bytes is the total serialised bytes committed.
	Bytes int64
	// Overhead is the virtual time spent writing checkpoints.
	Overhead sim.Time
}

// OverheadPercent returns checkpoint overhead as a percentage of total
// virtual training time.
func (st Stats) OverheadPercent(total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(st.Overhead) / float64(total)
}

// Manager keeps the last committed checkpoint in memory (the survivable copy
// a real system would push to host RAM or remote storage) and optionally
// mirrors it to a file. Commit order matters for crash consistency: the
// caller captures state, charges the virtual write time, and only then
// commits — a crash mid-write recovers from the previous checkpoint.
type Manager struct {
	// EverySteps is the checkpoint cadence in steps (0 = epoch boundaries
	// only).
	EverySteps int
	// Path, when non-empty, mirrors every committed checkpoint to this file.
	Path string

	last  *TrainState
	stats Stats
}

// Due reports whether a checkpoint should be taken after completing steps
// [from, to) of an epoch (to == stepsPerEpoch is an epoch boundary, always
// due).
func (m *Manager) Due(to, stepsPerEpoch int) bool {
	if to >= stepsPerEpoch {
		return true
	}
	return m.EverySteps > 0 && to%m.EverySteps == 0
}

// SegmentEnd returns the step at which the segment starting at from should
// end: the next checkpoint boundary or the epoch end.
func (m *Manager) SegmentEnd(from, stepsPerEpoch int) int {
	if m.EverySteps <= 0 {
		return stepsPerEpoch
	}
	to := ((from / m.EverySteps) + 1) * m.EverySteps
	if to > stepsPerEpoch {
		to = stepsPerEpoch
	}
	return to
}

// Commit installs st as the last good checkpoint, charging dur of virtual
// write time to the stats and mirroring to Path if configured.
func (m *Manager) Commit(st *TrainState, dur sim.Time) error {
	m.last = st.Clone()
	m.stats.Checkpoints++
	m.stats.Bytes += st.Bytes()
	m.stats.Overhead += dur
	if m.Path != "" {
		return m.last.SaveFile(m.Path)
	}
	return nil
}

// Last returns the most recent committed checkpoint (nil before the first
// commit).
func (m *Manager) Last() *TrainState { return m.last }

// Stats returns the accumulated checkpoint accounting.
func (m *Manager) Stats() Stats { return m.stats }

// WriteCost models the virtual time to commit a checkpoint: a device-to-host
// DMA of the serialised bytes over PCIe at streaming bandwidth plus one
// latency, matching the Fabric.HostDMA cost model.
func WriteCost(bytes int64, pcieBandwidth, pcieLatency float64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	return sim.Time(float64(bytes)/pcieBandwidth) + sim.Time(pcieLatency)
}
