package ckpt

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/nn"
)

func sampleState() *TrainState {
	cfg := nn.Config{Arch: nn.SAGE, InDim: 16, Hidden: 8, Classes: 4, Layers: 2}
	m := nn.NewModel(cfg, 42)
	params := make([]float32, m.ParamCount())
	m.ParamVector(params)
	opt := nn.NewAdam(1e-3)
	for i := range m.Params {
		for j := range m.Params[i].G.Data {
			m.Params[i].G.Data[j] = float32(i+j) * 1e-3
		}
	}
	opt.Step(m)
	return &TrainState{
		Epoch: 3, Step: 17, Seed: 0xDEADBEEF, Model: cfg,
		Params: params, Optim: opt.CaptureState(),
	}
}

func TestEncodeDecodeBitIdentical(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if int64(buf.Len()) != s.Bytes() {
		t.Fatalf("encoded %d bytes, Bytes() says %d", buf.Len(), s.Bytes())
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", s, got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := buf.Bytes()
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Decode(bytes.NewReader(flipped)); err == nil {
		t.Fatalf("decode accepted a corrupted payload")
	}
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-8])); err == nil {
		t.Fatalf("decode accepted a truncated payload")
	}
	bad := append([]byte(nil), raw...)
	copy(bad, "DSPM") // wrong magic: CRC then mismatches too, but try magic-only corruption
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatalf("decode accepted a bad magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := sampleState()
	path := filepath.Join(t.TempDir(), "state.dspc")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestOptimizerRestoreResumesIdentically(t *testing.T) {
	cfg := nn.Config{Arch: nn.SAGE, InDim: 8, Hidden: 4, Classes: 3, Layers: 2}
	grad := func(m *nn.Model, k int) {
		for i := range m.Params {
			for j := range m.Params[i].G.Data {
				m.Params[i].G.Data[j] = float32((i+j+k)%7) * 1e-3
			}
		}
	}
	// Reference: 4 uninterrupted Adam steps.
	ref := nn.NewModel(cfg, 9)
	refOpt := nn.NewAdam(1e-3)
	for k := 0; k < 4; k++ {
		grad(ref, k)
		refOpt.Step(ref)
	}
	// Checkpoint after 2 steps, restore into a fresh model+optimizer, resume.
	m1 := nn.NewModel(cfg, 9)
	o1 := nn.NewAdam(1e-3)
	for k := 0; k < 2; k++ {
		grad(m1, k)
		o1.Step(m1)
	}
	params := make([]float32, m1.ParamCount())
	m1.ParamVector(params)
	st := &TrainState{Model: cfg, Params: params, Optim: o1.CaptureState()}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	m2 := nn.NewModel(cfg, 777) // different init; fully overwritten by restore
	m2.SetParamVector(back.Params)
	o2 := nn.NewAdam(1e-3)
	o2.RestoreState(m2, back.Optim)
	for k := 2; k < 4; k++ {
		grad(m2, k)
		o2.Step(m2)
	}
	want := make([]float32, ref.ParamCount())
	got := make([]float32, m2.ParamCount())
	ref.ParamVector(want)
	m2.ParamVector(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("param %d differs after resume: %g vs %g (resume must be bit-identical)", i, want[i], got[i])
		}
	}
}

func TestManagerCadence(t *testing.T) {
	m := &Manager{EverySteps: 10}
	if got := m.SegmentEnd(0, 25); got != 10 {
		t.Fatalf("SegmentEnd(0) = %d, want 10", got)
	}
	if got := m.SegmentEnd(10, 25); got != 20 {
		t.Fatalf("SegmentEnd(10) = %d, want 20", got)
	}
	if got := m.SegmentEnd(20, 25); got != 25 {
		t.Fatalf("SegmentEnd(20) = %d, want 25 (clamped to epoch end)", got)
	}
	if !m.Due(10, 25) || !m.Due(25, 25) || m.Due(15, 25) {
		t.Fatalf("Due cadence wrong")
	}
	whole := &Manager{}
	if got := whole.SegmentEnd(0, 25); got != 25 {
		t.Fatalf("epoch-boundary manager SegmentEnd = %d, want 25", got)
	}
	s := sampleState()
	if err := m.Commit(s, 0.25); err != nil {
		t.Fatalf("commit: %v", err)
	}
	s.Params[0] = 1e9 // mutating the source must not affect the stored copy
	if m.Last().Params[0] == 1e9 {
		t.Fatalf("manager stored a shallow copy")
	}
	st := m.Stats()
	if st.Checkpoints != 1 || st.Bytes != s.Bytes() || st.Overhead != 0.25 {
		t.Fatalf("stats = %+v", st)
	}
	if pct := st.OverheadPercent(25); pct != 1 {
		t.Fatalf("overhead%% = %g, want 1", pct)
	}
}
