package prof

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Profile is the trace-derived pipeline profile of one window of virtual
// time. All durations are virtual seconds.
type Profile struct {
	Window Window `json:"window"`
	// Lanes is the per-GPU × per-lane busy/stall/utilisation breakdown,
	// sorted by (pid, tid).
	Lanes []LaneStat `json:"lanes,omitempty"`
	// Stalls attributes pipeline waits: queue (full/empty producer-consumer
	// queues) and CCC (leader-ordered communication launch gate).
	Stalls StallReport `json:"stalls"`
	// CriticalPath tiles the window exactly: contiguous segments, each
	// attributed to the span that bounded wall time at that instant (or to
	// idle when nothing was running anywhere).
	CriticalPath []Segment `json:"critical_path,omitempty"`
	// CriticalPathByCat and CriticalPathByLane decompose the critical path
	// by span category and by "GPU 0/trainer stage"-style lane.
	CriticalPathByCat  map[string]float64 `json:"critical_path_by_cat,omitempty"`
	CriticalPathByLane map[string]float64 `json:"critical_path_by_lane,omitempty"`
	// PipelineOverlap is the fraction of stage-busy time during which at
	// least two worker stages of the same GPU ran concurrently — the direct
	// measure of whether the sampler/loader/trainer pipeline overlaps. It is
	// exactly 0 for sequential (DSP-Seq) runs.
	PipelineOverlap float64 `json:"pipeline_overlap"`
	// CommComputeOverlap is the fraction of communication time (NVLink/UVA
	// lanes) during which a compute kernel was simultaneously resident on
	// the same GPU — how much communication the pipeline hides.
	CommComputeOverlap float64 `json:"comm_compute_overlap"`
	// TopSpans ranks normalised span names by self time (time not covered
	// by spans nested inside them on the same lane), capped at TopSpanCap.
	TopSpans []SpanAgg `json:"top_spans,omitempty"`
	// DroppedEvents counts events the tracer's ring cap (-trace-max-events)
	// discarded before analysis: when non-zero the profile under-reports the
	// oldest part of the run, and dspprof validate warns.
	DroppedEvents int `json:"dropped_events,omitempty"`
}

// TopSpanCap bounds the TopSpans table stored in a profile.
const TopSpanCap = 20

// Window is a [Start, End] interval of virtual seconds.
type Window struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Dur returns the window length in seconds.
func (w Window) Dur() float64 { return w.End - w.Start }

// LaneStat is one (GPU, lane) utilisation row.
type LaneStat struct {
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	GPU  string `json:"gpu"`
	Lane string `json:"lane"`
	// Busy is the union of non-stall span time on the lane; Stall the union
	// of stall spans; Util is Busy over the window.
	Busy  float64 `json:"busy"`
	Stall float64 `json:"stall,omitempty"`
	Util  float64 `json:"util"`
	Count int     `json:"count"`
}

// StallReport aggregates pipeline stalls over the window.
type StallReport struct {
	// QueueWait and CCCWait are total stall seconds summed over lanes.
	QueueWait float64 `json:"queue_wait"`
	CCCWait   float64 `json:"ccc_wait"`
	Count     int     `json:"count"`
	// ByLane maps "GPU 0/loader stage" -> stalled seconds.
	ByLane map[string]float64 `json:"by_lane,omitempty"`
	// QueueWaitDist and CCCWaitDist summarise per-stall durations — the
	// per-mini-batch stall attribution (one queue-wait span per blocked
	// queue operation per step).
	QueueWaitDist *LatencySummary `json:"queue_wait_dist,omitempty"`
	CCCWaitDist   *LatencySummary `json:"ccc_wait_dist,omitempty"`
}

// Segment is one critical-path slice: [Start, End] was bounded by the named
// span (Cat "idle" marks fleet-wide idleness).
type Segment struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	GPU   string  `json:"gpu,omitempty"`
	Lane  string  `json:"lane,omitempty"`
	Cat   string  `json:"cat"`
	Name  string  `json:"name"`
}

// SpanAgg aggregates all spans sharing a normalised name.
type SpanAgg struct {
	Name  string  `json:"name"` // digit runs collapsed to '#'
	Cat   string  `json:"cat"`
	Count int     `json:"count"`
	Total float64 `json:"total"` // sum of durations, seconds
	Self  float64 `json:"self"`  // total minus time of spans nested inside
}

// Validate checks the profile's internal consistency: the critical path must
// tile the window exactly (contiguous, covering, in order).
func (p *Profile) Validate() error {
	if p.Window.End < p.Window.Start {
		return fmt.Errorf("prof: profile window inverted [%g, %g]", p.Window.Start, p.Window.End)
	}
	if p.DroppedEvents < 0 {
		return fmt.Errorf("prof: negative dropped-events count %d", p.DroppedEvents)
	}
	if len(p.CriticalPath) == 0 {
		return nil
	}
	const eps = 1e-9
	first, last := p.CriticalPath[0], p.CriticalPath[len(p.CriticalPath)-1]
	if math.Abs(first.Start-p.Window.Start) > eps || math.Abs(last.End-p.Window.End) > eps {
		return fmt.Errorf("prof: critical path [%g, %g] does not span window [%g, %g]",
			first.Start, last.End, p.Window.Start, p.Window.End)
	}
	for i := 1; i < len(p.CriticalPath); i++ {
		if p.CriticalPath[i].Start != p.CriticalPath[i-1].End {
			return fmt.Errorf("prof: critical path gap at segment %d: %g != %g",
				i, p.CriticalPath[i].Start, p.CriticalPath[i-1].End)
		}
	}
	return nil
}

const usec = 1e-6 // trace timestamps are microseconds; profiles report seconds

// Analyze profiles the full trace: the window spans the first event start to
// the last span end.
func Analyze(t *Trace) *Profile {
	spans := t.Spans()
	if len(spans) == 0 {
		return &Profile{Stalls: StallReport{ByLane: map[string]float64{}}, DroppedEvents: t.Dropped}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range spans {
		if e.Ts < lo {
			lo = e.Ts
		}
		if e.Ts+e.Dur > hi {
			hi = e.Ts + e.Dur
		}
	}
	// The window is the span extent: a tracer attached mid-run (e.g. after
	// benchmark warm-up epochs) profiles only what it saw, with no phantom
	// lead-in idle.
	return AnalyzeWindow(t, lo*usec, hi*usec)
}

// AnalyzeWindow profiles the [start, end] window (virtual seconds).
func AnalyzeWindow(t *Trace, start, end float64) *Profile {
	p := &Profile{Window: Window{Start: start, End: end}}
	spans := clipSpans(t.Spans(), start/usec, end/usec)
	p.Lanes = laneStats(t, spans, p.Window)
	p.Stalls = stallReport(t, spans)
	p.CriticalPath = criticalPath(t, spans, p.Window)
	p.CriticalPathByCat = map[string]float64{}
	p.CriticalPathByLane = map[string]float64{}
	for _, seg := range p.CriticalPath {
		p.CriticalPathByCat[seg.Cat] += seg.End - seg.Start
		key := seg.Cat
		if seg.Cat != "idle" {
			key = seg.GPU + "/" + seg.Lane
		}
		p.CriticalPathByLane[key] += seg.End - seg.Start
	}
	p.PipelineOverlap = pipelineOverlap(spans)
	p.CommComputeOverlap = commComputeOverlap(spans)
	p.TopSpans = topSpans(spans, TopSpanCap)
	p.DroppedEvents = t.Dropped
	return p
}

// FilteredTopSpans recomputes the top-span table from a raw trace keeping
// only spans matching cat (empty matches all) and pid (-1 matches all) —
// the dspprof top -cat/-pid narrowing. n <= 0 means no cap.
func FilteredTopSpans(t *Trace, cat string, pid int, n int) []SpanAgg {
	spans := t.Spans()
	kept := make([]trace.Event, 0, len(spans))
	for _, e := range spans {
		if cat != "" && e.Cat != cat {
			continue
		}
		if pid >= 0 && e.Pid != pid {
			continue
		}
		kept = append(kept, e)
	}
	return topSpans(kept, n)
}

// clipSpans restricts spans to the window (µs bounds), trimming partials.
func clipSpans(spans []trace.Event, lo, hi float64) []trace.Event {
	out := make([]trace.Event, 0, len(spans))
	for _, e := range spans {
		s, t := e.Ts, e.Ts+e.Dur
		if t <= lo || s >= hi {
			continue
		}
		if s < lo {
			s = lo
		}
		if t > hi {
			t = hi
		}
		e.Ts, e.Dur = s, t-s
		if e.Dur > 0 {
			out = append(out, e)
		}
	}
	return out
}

// interval is a half-open busy interval in µs.
type interval struct{ lo, hi float64 }

// union merges overlapping intervals, returning them sorted.
func union(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		if last := &out[len(out)-1]; iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func totalDur(ivs []interval) float64 {
	var d float64
	for _, iv := range ivs {
		d += iv.hi - iv.lo
	}
	return d
}

// intersect returns the total overlap between two unioned interval lists.
func intersect(a, b []interval) float64 {
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := math.Max(a[i].lo, b[j].lo)
		hi := math.Min(a[i].hi, b[j].hi)
		if hi > lo {
			d += hi - lo
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return d
}

// laneStats computes per-(pid, tid) busy/stall/utilisation.
func laneStats(t *Trace, spans []trace.Event, w Window) []LaneStat {
	type key struct{ pid, tid int }
	busy := map[key][]interval{}
	stall := map[key][]interval{}
	count := map[key]int{}
	for _, e := range spans {
		k := key{e.Pid, e.Tid}
		iv := interval{e.Ts, e.Ts + e.Dur}
		if e.Cat == "stall" {
			stall[k] = append(stall[k], iv)
		} else {
			busy[k] = append(busy[k], iv)
		}
		count[k]++
	}
	keys := make([]key, 0, len(count))
	for k := range count {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	out := make([]LaneStat, 0, len(keys))
	for _, k := range keys {
		ls := LaneStat{
			Pid: k.pid, Tid: k.tid,
			GPU: t.PidName(k.pid), Lane: t.LaneName(k.pid, k.tid),
			Busy:  totalDur(union(busy[k])) * usec,
			Stall: totalDur(union(stall[k])) * usec,
			Count: count[k],
		}
		if w.Dur() > 0 {
			ls.Util = ls.Busy / w.Dur()
		}
		out = append(out, ls)
	}
	return out
}

// stallReport aggregates the "stall" spans (queue-wait, ccc-wait).
func stallReport(t *Trace, spans []trace.Event) StallReport {
	rep := StallReport{ByLane: map[string]float64{}}
	qd, cd := metrics.New(), metrics.New()
	for _, e := range spans {
		if e.Cat != "stall" {
			continue
		}
		d := e.Dur * usec
		rep.Count++
		rep.ByLane[t.PidName(e.Pid)+"/"+t.LaneName(e.Pid, e.Tid)] += d
		if e.Name == "ccc-wait" {
			rep.CCCWait += d
			cd.Observe(d)
		} else {
			rep.QueueWait += d
			qd.Observe(d)
		}
	}
	rep.QueueWaitDist = Latency(qd)
	rep.CCCWaitDist = Latency(cd)
	return rep
}

// critPriority ranks span categories for critical-path attribution: worker
// stages and serving rounds are the top-level units of work; kernels and
// transfers explain time outside any stage (e.g. cache rebalances); request
// spans include queueing and rank below execution; stalls only surface when
// literally nothing else is active.
func critPriority(cat string) int {
	switch cat {
	case "stage", "serve":
		return 5
	case "kernel":
		return 4
	case "comm":
		return 3
	case "request":
		return 2
	case "stall":
		return 1
	default:
		return 0
	}
}

// criticalPath walks the window backwards: from the end, the span active
// just before the cursor with the highest (priority, latest-start) wins the
// segment down to its own start, and the walk continues from there; when
// nothing is active the gap is attributed to idle, closing at the previous
// span end. By construction the segments tile [start, end] exactly — their
// summed durations reproduce the wall time — so "which stage on which GPU
// bounded the epoch" is read directly off the segment list.
func criticalPath(t *Trace, spans []trace.Event, w Window) []Segment {
	lo, hi := w.Start/usec, w.End/usec
	if hi <= lo {
		return nil
	}
	// Two candidate tiers: top-level spans first, everything else only when
	// no top-level span covers the cursor.
	var tier1, tier2 []trace.Event
	for _, e := range spans {
		if pr := critPriority(e.Cat); pr >= 5 || pr == 1 {
			tier1 = append(tier1, e)
		} else {
			tier2 = append(tier2, e)
		}
	}
	if len(tier1) == 0 {
		tier1, tier2 = tier2, nil
	}
	pick := func(pool []trace.Event, cursor float64) *trace.Event {
		var best *trace.Event
		for i := range pool {
			e := &pool[i]
			if e.Ts >= cursor || e.Ts+e.Dur < cursor {
				continue
			}
			if best == nil || better(e, best) {
				best = e
			}
		}
		return best
	}
	var segs []Segment
	cursor := hi
	for cursor > lo {
		best := pick(tier1, cursor)
		if best == nil {
			best = pick(tier2, cursor)
		}
		if best != nil {
			segStart := math.Max(best.Ts, lo)
			// A higher-priority span ending mid-segment takes over from its
			// end backwards: truncate so the next iteration re-picks there.
			pr := critPriority(best.Cat)
			for _, pool := range [][]trace.Event{tier1, tier2} {
				for _, e := range pool {
					if end := e.Ts + e.Dur; critPriority(e.Cat) > pr && end > segStart && end < cursor {
						segStart = end
					}
				}
			}
			segs = append(segs, Segment{
				Start: segStart * usec, End: cursor * usec,
				Pid: best.Pid, Tid: best.Tid,
				GPU: t.PidName(best.Pid), Lane: t.LaneName(best.Pid, best.Tid),
				Cat: best.Cat, Name: normalizeName(best.Name),
			})
			cursor = segStart
			continue
		}
		// Idle gap: close at the latest span end before the cursor.
		prev := lo
		for _, e := range spans {
			if end := e.Ts + e.Dur; end < cursor && end > prev {
				prev = end
			}
		}
		segs = append(segs, Segment{Start: prev * usec, End: cursor * usec, Cat: "idle", Name: "idle"})
		cursor = prev
	}
	// Reverse into chronological order and stitch float-exact boundaries.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	for i := 1; i < len(segs); i++ {
		segs[i].Start = segs[i-1].End
	}
	if len(segs) > 0 {
		segs[0].Start = w.Start
		segs[len(segs)-1].End = w.End
	}
	return segs
}

// better orders critical-path candidates: priority, then latest start, then
// (pid, tid, name) for determinism.
func better(a, b *trace.Event) bool {
	pa, pb := critPriority(a.Cat), critPriority(b.Cat)
	if pa != pb {
		return pa > pb
	}
	if a.Ts != b.Ts {
		return a.Ts > b.Ts
	}
	if a.Pid != b.Pid {
		return a.Pid < b.Pid
	}
	if a.Tid != b.Tid {
		return a.Tid < b.Tid
	}
	return a.Name < b.Name
}

// pipelineOverlap measures worker-stage concurrency per GPU: the summed time
// ≥2 stage lanes of one GPU were active, over the summed time ≥1 was.
func pipelineOverlap(spans []trace.Event) float64 {
	perGPU := map[int]map[int][]interval{}
	for _, e := range spans {
		if e.Cat != "stage" {
			continue
		}
		if perGPU[e.Pid] == nil {
			perGPU[e.Pid] = map[int][]interval{}
		}
		perGPU[e.Pid][e.Tid] = append(perGPU[e.Pid][e.Tid], interval{e.Ts, e.Ts + e.Dur})
	}
	// Sum in sorted pid order: float accumulation must not depend on map
	// iteration order, or same-seed runs stop being byte-identical.
	pids := make([]int, 0, len(perGPU))
	for pid := range perGPU {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var any, multi float64
	for _, pid := range pids {
		lanes := perGPU[pid]
		// Sweep over lane-union boundaries counting active lanes.
		type edge struct {
			ts    float64
			delta int
		}
		var edges []edge
		for _, ivs := range lanes {
			for _, iv := range union(ivs) {
				edges = append(edges, edge{iv.lo, 1}, edge{iv.hi, -1})
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].ts != edges[j].ts {
				return edges[i].ts < edges[j].ts
			}
			return edges[i].delta < edges[j].delta // close before open at ties
		})
		depth := 0
		var last float64
		for _, ed := range edges {
			if depth >= 1 {
				any += ed.ts - last
			}
			if depth >= 2 {
				multi += ed.ts - last
			}
			depth += ed.delta
			last = ed.ts
		}
	}
	// Abutting spans on different lanes can overlap by ~1 ulp because a
	// span's end is start*1e6 + dur*1e6, not end*1e6. Such slivers are
	// measurement noise, not pipelining: clamp them to an exact zero so a
	// sequential run reports overlap == 0.
	if any == 0 || multi <= any*1e-9 {
		return 0
	}
	return multi / any
}

// commComputeOverlap measures how much communication time (comm-category
// spans) had a compute kernel co-resident on the same GPU.
func commComputeOverlap(spans []trace.Event) float64 {
	comm := map[int][]interval{}
	kern := map[int][]interval{}
	for _, e := range spans {
		iv := interval{e.Ts, e.Ts + e.Dur}
		switch e.Cat {
		case "comm":
			comm[e.Pid] = append(comm[e.Pid], iv)
		case "kernel":
			kern[e.Pid] = append(kern[e.Pid], iv)
		}
	}
	pids := make([]int, 0, len(comm))
	for pid := range comm {
		pids = append(pids, pid)
	}
	sort.Ints(pids) // deterministic float accumulation order
	var commTotal, overlap float64
	for _, pid := range pids {
		cu := union(comm[pid])
		commTotal += totalDur(cu)
		overlap += intersect(cu, union(kern[pid]))
	}
	// Same ulp-sliver clamp as pipelineOverlap: back-to-back comm and
	// kernel spans are not overlap.
	if commTotal == 0 || overlap <= commTotal*1e-9 {
		return 0
	}
	return overlap / commTotal
}

// normalizeName collapses digit runs to '#' so per-step span names
// ("sample step 12", "req 4711") aggregate.
func normalizeName(name string) string {
	var b strings.Builder
	inDigits := false
	for _, r := range name {
		if r >= '0' && r <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(r)
	}
	return b.String()
}

// topSpans ranks normalised span names by self time: each span's duration
// minus the duration of spans nested strictly inside it on the same lane
// (its immediate children — concurrent kernels that merely overlap are not
// subtracted).
func topSpans(spans []trace.Event, n int) []SpanAgg {
	type key struct{ pid, tid int }
	byLane := map[key][]trace.Event{}
	for _, e := range spans {
		k := key{e.Pid, e.Tid}
		byLane[k] = append(byLane[k], e)
	}
	laneKeys := make([]key, 0, len(byLane))
	for k := range byLane {
		laneKeys = append(laneKeys, k)
	}
	sort.Slice(laneKeys, func(i, j int) bool {
		if laneKeys[i].pid != laneKeys[j].pid {
			return laneKeys[i].pid < laneKeys[j].pid
		}
		return laneKeys[i].tid < laneKeys[j].tid
	}) // deterministic float accumulation order
	agg := map[string]*SpanAgg{}
	for _, lk := range laneKeys {
		lane := byLane[lk]
		sort.SliceStable(lane, func(i, j int) bool {
			if lane[i].Ts != lane[j].Ts {
				return lane[i].Ts < lane[j].Ts
			}
			return lane[i].Dur > lane[j].Dur // parents before children at ties
		})
		self := make([]float64, len(lane))
		var stack []int
		for i, e := range lane {
			self[i] = e.Dur
			for len(stack) > 0 && lane[stack[len(stack)-1]].Ts+lane[stack[len(stack)-1]].Dur < e.Ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				if p := stack[len(stack)-1]; e.Ts+e.Dur <= lane[p].Ts+lane[p].Dur {
					self[p] -= e.Dur
					stack = append(stack, i)
					continue
				}
			}
			stack = stack[:0]
			stack = append(stack, i)
		}
		for i, e := range lane {
			k := e.Cat + "/" + normalizeName(e.Name)
			a := agg[k]
			if a == nil {
				a = &SpanAgg{Name: normalizeName(e.Name), Cat: e.Cat}
				agg[k] = a
			}
			a.Count++
			a.Total += e.Dur * usec
			a.Self += self[i] * usec
		}
	}
	out := make([]SpanAgg, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
