// Package prof is the pipeline profiler: it consumes trace.Tracer events
// and computes, deterministically, where a run's virtual time went —
// per-GPU × per-lane busy/idle utilisation, queue-wait and CCC-wait stall
// attribution, the critical path of the run (which stage on which GPU
// bounded wall time), and comm/compute overlap fractions.
//
// It also defines the versioned RunReport JSON schema every CLI emits
// (dsptrain, dspserve, dspbench via -report), replacing the ad-hoc
// per-command report structs with one machine-readable document the
// dspprof analyzer can summarise and A/B-diff as a perf-regression gate.
//
// All quantities are functions of virtual time, so identical seeds produce
// byte-identical reports on any host.
package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
)

// Schema is the RunReport format version. Bump the suffix on any
// backwards-incompatible change; readers reject unknown versions.
const Schema = "dsp-runreport/1"

// RunReport is the canonical run summary shared by every CLI. Optional
// sections are nil/empty when a run has nothing to report there (a serving
// run has no epochs; a fault-free run has no Faults section).
type RunReport struct {
	Schema  string `json:"schema"`
	Command string `json:"command"`           // dsptrain | dspserve | dspbench
	System  string `json:"system,omitempty"`  // DSP, DSP-Seq, DGL-UVA, ...
	Dataset string `json:"dataset,omitempty"` // products, papers, friendster
	GPUs    int    `json:"gpus"`
	Seed    uint64 `json:"seed"`
	Shrink  int    `json:"shrink,omitempty"` // dataset shrink divisor, when known

	// WallTime is the total virtual time of the run in seconds.
	WallTime float64 `json:"wall_time"`
	// Stages sums per-stage busy time across ranks and steps (seconds);
	// under the pipeline these overlap, so their sum exceeds WallTime.
	Stages map[string]float64 `json:"stages,omitempty"`
	// Utilization is each GPU's busy fraction over the last measured window.
	Utilization []float64 `json:"utilization,omitempty"`

	Wire Wire `json:"wire"`
	// Compression maps traffic class -> raw vs wire bytes for collectives
	// that carried a codec.
	Compression map[string]WireStat `json:"compression,omitempty"`

	Cache *CacheReport `json:"cache,omitempty"`
	// Store is the out-of-core tier's accounting (runs with -ooc).
	Store *StoreSection `json:"store,omitempty"`
	// Strategy is the execution strategy's own wire/compute accounting.
	// Only non-default strategies emit it (-strategy p3); DSP runs omit the
	// block so their reports stay byte-identical across the strategy
	// refactor.
	Strategy *StrategySection `json:"strategy,omitempty"`

	// Latency is the end-to-end request latency distribution (serving runs).
	Latency *LatencySummary `json:"latency,omitempty"`
	// StageLatency holds the per-step stage duration distributions of a
	// training run (keys: sample, load, train).
	StageLatency map[string]*LatencySummary `json:"stage_latency,omitempty"`

	Epochs  []EpochReport  `json:"epochs,omitempty"`
	Serving *ServingReport `json:"serving,omitempty"`
	Faults  *FaultReport   `json:"faults,omitempty"`
	// Fleet is the replicated-fleet router section (dspserve -fleets N>1):
	// routing policy, per-fleet outcomes, and autoscaler events.
	Fleet *FleetSection `json:"fleet,omitempty"`

	// Telemetry condenses the live telemetry hub of a -telemetry run:
	// scraper cadence, series/sample counts, the SLO stream, and the
	// burn-rate rule/alert outcome (the full document lives in the
	// dsp-telemetry/1 file; this section is the report-level summary).
	Telemetry *TelemetrySection `json:"telemetry,omitempty"`

	// Profile is the trace-derived pipeline profile (present when the run
	// traced; -report without -trace still records an in-memory trace).
	Profile *Profile `json:"profile,omitempty"`
}

// Wire aggregates fabric traffic by semantic class, in wire bytes.
type Wire struct {
	Sample  int64 `json:"sample"`
	Feature int64 `json:"feature"`
	Grad    int64 `json:"grad"`
	Inter   int64 `json:"inter,omitempty"` // inter-machine NIC traffic
}

// WireStat is raw payload bytes versus bytes actually charged to the fabric.
type WireStat struct {
	Raw  int64 `json:"raw"`
	Wire int64 `json:"wire"`
}

// CacheReport is the tiered feature-read accounting plus adaptive-cache
// adaptation totals (zero under the static policy).
type CacheReport struct {
	Policy        string  `json:"policy,omitempty"`
	Local         int64   `json:"local"`
	Peer          int64   `json:"peer"`
	Host          int64   `json:"host"`
	HitRate       float64 `json:"hit_rate"`
	Promoted      int64   `json:"promoted,omitempty"`
	MovedBytes    int64   `json:"moved_bytes,omitempty"`
	Rebalances    int     `json:"rebalances,omitempty"`
	RebalanceTime float64 `json:"rebalance_time,omitempty"` // seconds
}

// StoreSection is the out-of-core block store's accounting: the block table
// (topology + feature blocks over the spill device), cache residency at run
// end, demand/prefetch traffic, and reader stall time.
type StoreSection struct {
	// Blocks is the total block count; TopoBlocks of them hold topology
	// (compressed when Compressed), the rest feature rows.
	Blocks     int   `json:"blocks"`
	TopoBlocks int   `json:"topo_blocks"`
	BlockBytes int64 `json:"block_bytes"`
	Compressed bool  `json:"compressed,omitempty"`
	// CacheBytes is the host block-cache budget; ResidentBytes the bytes
	// resident at run end; SpilledBytes the remainder on the device.
	CacheBytes    int64 `json:"cache_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	SpilledBytes  int64 `json:"spilled_bytes"`
	// Hits/Misses are block touches; DemandBytes were fetched inline by
	// stalled readers.
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	DemandBytes int64   `json:"demand_bytes"`
	// Prefetcher outcome: issued/used counts, their ratio, and bytes moved.
	PrefetchIssued   int64   `json:"prefetch_issued,omitempty"`
	PrefetchUsed     int64   `json:"prefetch_used,omitempty"`
	PrefetchAccuracy float64 `json:"prefetch_accuracy,omitempty"`
	PrefetchBytes    int64   `json:"prefetch_bytes,omitempty"`
	// StallTime is virtual time readers spent blocked on fetches; Device*
	// are the spill device's totals.
	StallTime   float64 `json:"stall_time"`
	DeviceReads int64   `json:"device_reads"`
	DeviceBytes int64   `json:"device_bytes"`
}

// StrategySection is the execution-strategy accounting block: which layout
// ran, how the feature width was sliced across GPUs, and what the
// strategy-specific exchanges cost. For P3 the push/pull pair is the
// layer-1 activation exchange that replaces DSP's feature gather.
type StrategySection struct {
	Name string `json:"name"` // dsp | p3
	// FeatureDim is the full feature width; SliceDims the per-GPU column
	// slice widths (they sum to FeatureDim).
	FeatureDim int   `json:"feature_dim,omitempty"`
	SliceDims  []int `json:"slice_dims,omitempty"`
	// PushBytes/PullBytes are the wire bytes charged for the forward
	// partial-activation push and the backward activation-gradient pull.
	PushBytes int64 `json:"push_bytes,omitempty"`
	PullBytes int64 `json:"pull_bytes,omitempty"`
	// PartialFlops is the model-parallel first-layer compute; ReduceBytes
	// the partial-activation reduction kernel traffic.
	PartialFlops int64 `json:"partial_flops,omitempty"`
	ReduceBytes  int64 `json:"reduce_bytes,omitempty"`
	// ShardedParams counts first-layer weight elements excluded from the
	// allreduce wire because each replica owns only its column shard.
	ShardedParams int `json:"sharded_params,omitempty"`
}

// LatencySummary is a rendered metrics.Histogram: the conventional
// percentiles plus count/mean/min/max, all in the histogram's native unit.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Latency renders a histogram into its summary (nil for empty histograms).
func Latency(h *metrics.Histogram) *LatencySummary {
	if h == nil || h.Count() == 0 {
		return nil
	}
	return &LatencySummary{
		Count: h.Count(), Mean: h.Mean(),
		P50: h.P50(), P95: h.P95(), P99: h.P99(),
		Min: h.Min(), Max: h.Max(),
	}
}

// EpochReport is one training epoch. Start/End are virtual timestamps when
// the driver recorded them (zero otherwise — e.g. fault-tolerant replays).
type EpochReport struct {
	Epoch       int     `json:"epoch"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	Time        float64 `json:"time"` // virtual seconds
	Acc         float64 `json:"acc,omitempty"`
	ValAcc      float64 `json:"val_acc,omitempty"`
	SampleStage float64 `json:"sample_stage,omitempty"`
	LoadStage   float64 `json:"load_stage,omitempty"`
	TrainStage  float64 `json:"train_stage,omitempty"`
}

// ServingReport carries the serving-only scalars of a dspserve run.
type ServingReport struct {
	Offered         float64 `json:"offered"`
	Throughput      float64 `json:"throughput"`
	Arrived         int     `json:"arrived"`
	Completed       int     `json:"completed"`
	Shed            int     `json:"shed"`
	ShedRate        float64 `json:"shed_rate"`
	Rounds          int     `json:"rounds"`
	MeanBatch       float64 `json:"mean_batch"`
	ExpectedHitRate float64 `json:"expected_hit_rate,omitempty"`
	Rerouted        int     `json:"rerouted,omitempty"`
	Lost            int     `json:"lost,omitempty"`
	DeadGPUs        []int   `json:"dead_gpus,omitempty"`
	// QuotaRejected counts arrivals rejected by per-tenant token buckets
	// (a subset of Shed).
	QuotaRejected int `json:"quota_rejected,omitempty"`
	// Tenants is the per-tenant admission outcome of a multi-tenant run.
	Tenants []TenantReport `json:"tenants,omitempty"`
	// Goodput is the within-SLO completion accounting of an SLO-bearing run.
	Goodput *GoodputReport `json:"goodput,omitempty"`
}

// TenantReport is one tenant's admission outcome totals.
type TenantReport struct {
	Name     string `json:"name"`
	Admitted int    `json:"admitted"`
	Rejected int    `json:"rejected"`
}

// GoodputReport renders a metrics.Goodput counter: how much within-SLO work
// per virtual second the run delivered.
type GoodputReport struct {
	SLO      float64 `json:"slo"`    // seconds
	Window   float64 `json:"window"` // counter bucket width, seconds
	Good     uint64  `json:"good"`
	Total    uint64  `json:"total"`
	Rate     float64 `json:"rate"` // within-SLO completions per virtual second
	Fraction float64 `json:"fraction"`
}

// GoodputFrom renders a goodput counter (nil for nil/empty counters).
func GoodputFrom(g *metrics.Goodput) *GoodputReport {
	if g == nil || g.Total() == 0 {
		return nil
	}
	return &GoodputReport{
		SLO: g.SLO(), Window: g.Window(),
		Good: g.Good(), Total: g.Total(),
		Rate: g.Rate(), Fraction: g.GoodFraction(),
	}
}

// FleetSection is the replicated-fleet router summary: one entry per built
// fleet plus router-level routing and autoscaling outcomes.
type FleetSection struct {
	Policy string `json:"policy"`
	// Built is the number of fleets constructed (autoscaler headroom
	// included); Active the number serving traffic at run end.
	Built  int `json:"built"`
	Active int `json:"active"`
	// Rerouted counts requests rescued from dying fleets by the router;
	// DeadFleets lists fleets killed by whole-fleet faults.
	Rerouted   int                `json:"rerouted,omitempty"`
	DeadFleets []int              `json:"dead_fleets,omitempty"`
	PerFleet   []FleetEntry       `json:"per_fleet"`
	Scale      []ScaleEventReport `json:"scale,omitempty"`
}

// FleetEntry is one fleet's outcome under the router.
type FleetEntry struct {
	ID    int    `json:"id"`
	State string `json:"state"` // active | draining | standby | dead
	// Routed counts requests the router sent here; Completed those answered.
	Routed    int `json:"routed"`
	Completed int `json:"completed"`
	// Rerouted counts requests rescued FROM this fleet (orphaned admissions
	// re-routed at its death, plus intra-fleet GPU-crash reroutes); Lost the
	// dispatched requests it never answered.
	Rerouted int            `json:"rerouted,omitempty"`
	Lost     int            `json:"lost,omitempty"`
	P99      float64        `json:"p99,omitempty"` // seconds
	Goodput  *GoodputReport `json:"goodput,omitempty"`
	DeadGPUs []int          `json:"dead_gpus,omitempty"`
}

// ScaleEventReport is one autoscaler action.
type ScaleEventReport struct {
	At     float64 `json:"at"`     // virtual seconds
	Action string  `json:"action"` // up | drain | standby
	Fleet  int     `json:"fleet"`
	P99    float64 `json:"p99"` // window p99 that triggered the action, seconds
	// Reason marks actions not explained by the p99 band alone — "burn-rate"
	// when a firing page alert forced the decision. Empty for classic
	// SLO-band actions so pre-telemetry reports stay byte-identical.
	Reason string `json:"reason,omitempty"`
}

// TelemetrySection summarises a live-telemetry run inside the run report.
type TelemetrySection struct {
	// Interval is the scraper cadence (virtual seconds); Scrapes how many
	// ticks ran; Series how many sources were registered; Samples the
	// retained ring samples across all series; Dropped the ring-evicted
	// samples.
	Interval float64 `json:"interval"`
	Scrapes  int     `json:"scrapes"`
	Series   int     `json:"series"`
	Samples  int     `json:"samples"`
	Dropped  int     `json:"dropped,omitempty"`
	// Requests/Shed/BadFraction mirror the SLO stream fed to the burn-rate
	// engine; Exemplars counts the latency drill-down records kept.
	Requests    int              `json:"requests"`
	Shed        int              `json:"shed,omitempty"`
	BadFraction float64          `json:"bad_fraction"`
	Exemplars   int              `json:"exemplars,omitempty"`
	Rules       []TelemetryRule  `json:"rules,omitempty"`
	Alerts      []TelemetryAlert `json:"alerts,omitempty"`
}

// TelemetryRule is one burn-rate rule's configuration and outcome.
type TelemetryRule struct {
	Name  string  `json:"name"`
	Short float64 `json:"short"` // seconds
	Long  float64 `json:"long"`  // seconds
	Burn  float64 `json:"burn"`  // threshold, multiples of budget rate
	Fired int     `json:"fired"`
}

// TelemetryAlert is one closed firing interval.
type TelemetryAlert struct {
	Rule  string  `json:"rule"`
	Start float64 `json:"start"` // seconds
	End   float64 `json:"end"`   // seconds
	Peak  float64 `json:"peak"`  // highest burn while firing
}

// FaultReport summarises fault-tolerance outcomes: recoveries with MTTR and
// checkpoint overhead.
type FaultReport struct {
	Recoveries      []RecoveryReport `json:"recoveries,omitempty"`
	MeanMTTR        float64          `json:"mean_mttr,omitempty"` // seconds
	Checkpoints     int              `json:"checkpoints,omitempty"`
	CkptBytes       int64            `json:"ckpt_bytes,omitempty"`
	CkptOverheadPct float64          `json:"ckpt_overhead_pct,omitempty"`
}

// RecoveryReport is one absorbed crash.
type RecoveryReport struct {
	GPU  int     `json:"gpu"`
	At   float64 `json:"at"`   // virtual seconds
	MTTR float64 `json:"mttr"` // seconds (<0: never repaired)
}

// New returns a report with the schema stamped.
func New(command string) *RunReport {
	return &RunReport{Schema: Schema, Command: command}
}

// WriteJSON emits the report as deterministic, indented JSON: struct fields
// in declaration order, map keys sorted by encoding/json, HTML left alone.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// EncodeJSON renders the report to bytes (WriteJSON into a buffer).
func (r *RunReport) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes the report to path.
func (r *RunReport) WriteFile(path string) error {
	data, err := r.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ParseReport decodes and validates a RunReport document.
func ParseReport(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("prof: bad report JSON: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadReportFile loads and validates a RunReport from path.
func ReadReportFile(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseReport(data)
}

// Validate checks the report against its schema: version, required fields,
// and internal consistency of the profile section.
func (r *RunReport) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("prof: unsupported schema %q (want %q)", r.Schema, Schema)
	}
	if r.Command == "" {
		return fmt.Errorf("prof: report missing command")
	}
	if r.GPUs < 0 {
		return fmt.Errorf("prof: negative gpu count %d", r.GPUs)
	}
	if r.WallTime < 0 {
		return fmt.Errorf("prof: negative wall time %g", r.WallTime)
	}
	for name, v := range r.Stages {
		if v < 0 {
			return fmt.Errorf("prof: negative stage time %s=%g", name, v)
		}
	}
	if s := r.Store; s != nil {
		if s.Blocks < 0 || s.TopoBlocks < 0 || s.TopoBlocks > s.Blocks {
			return fmt.Errorf("prof: store block counts inconsistent (blocks %d topo %d)", s.Blocks, s.TopoBlocks)
		}
		if s.Hits < 0 || s.Misses < 0 {
			return fmt.Errorf("prof: negative store hit/miss counts (%d/%d)", s.Hits, s.Misses)
		}
		if s.ResidentBytes < 0 || s.ResidentBytes > s.BlockBytes {
			return fmt.Errorf("prof: store resident bytes %d outside [0, %d]", s.ResidentBytes, s.BlockBytes)
		}
		if s.ResidentBytes+s.SpilledBytes != s.BlockBytes {
			return fmt.Errorf("prof: store resident %d + spilled %d != block bytes %d",
				s.ResidentBytes, s.SpilledBytes, s.BlockBytes)
		}
		if s.PrefetchUsed > s.PrefetchIssued {
			return fmt.Errorf("prof: store prefetch used %d > issued %d", s.PrefetchUsed, s.PrefetchIssued)
		}
		if s.StallTime < 0 {
			return fmt.Errorf("prof: negative store stall time %g", s.StallTime)
		}
	}
	if s := r.Strategy; s != nil {
		switch s.Name {
		case "dsp", "p3":
		default:
			return fmt.Errorf("prof: unknown strategy %q in strategy section", s.Name)
		}
		if s.PushBytes < 0 || s.PullBytes < 0 || s.PartialFlops < 0 || s.ReduceBytes < 0 || s.ShardedParams < 0 {
			return fmt.Errorf("prof: negative strategy counters (push %d pull %d flops %d reduce %d sharded %d)",
				s.PushBytes, s.PullBytes, s.PartialFlops, s.ReduceBytes, s.ShardedParams)
		}
		if s.FeatureDim > 0 && len(s.SliceDims) > 0 {
			sum := 0
			for _, w := range s.SliceDims {
				if w < 0 {
					return fmt.Errorf("prof: negative strategy slice width %d", w)
				}
				sum += w
			}
			if sum != s.FeatureDim {
				return fmt.Errorf("prof: strategy slice widths sum to %d, want feature dim %d", sum, s.FeatureDim)
			}
		}
	}
	if f := r.Fleet; f != nil {
		if f.Policy == "" {
			return fmt.Errorf("prof: fleet section missing policy")
		}
		if f.Built < 1 || f.Active < 0 || f.Active > f.Built {
			return fmt.Errorf("prof: fleet counts inconsistent (built %d active %d)", f.Built, f.Active)
		}
		if len(f.PerFleet) != f.Built {
			return fmt.Errorf("prof: fleet section has %d entries for %d fleets", len(f.PerFleet), f.Built)
		}
	}
	if t := r.Telemetry; t != nil {
		if t.Interval <= 0 {
			return fmt.Errorf("prof: telemetry interval %g must be positive", t.Interval)
		}
		if t.Scrapes < 0 || t.Series < 0 || t.Samples < 0 || t.Dropped < 0 {
			return fmt.Errorf("prof: negative telemetry counters (scrapes %d series %d samples %d dropped %d)",
				t.Scrapes, t.Series, t.Samples, t.Dropped)
		}
		if t.Requests < 0 || t.Shed < 0 {
			return fmt.Errorf("prof: negative telemetry request counts (%d/%d)", t.Requests, t.Shed)
		}
		if t.BadFraction < 0 || t.BadFraction > 1 {
			return fmt.Errorf("prof: telemetry bad_fraction %g outside [0,1]", t.BadFraction)
		}
		rules := make(map[string]int, len(t.Rules))
		for _, ru := range t.Rules {
			if ru.Short <= 0 || ru.Long <= 0 || ru.Short >= ru.Long {
				return fmt.Errorf("prof: telemetry rule %q windows %g/%g must satisfy 0 < short < long",
					ru.Name, ru.Short, ru.Long)
			}
			if ru.Burn <= 0 {
				return fmt.Errorf("prof: telemetry rule %q burn threshold %g must be positive", ru.Name, ru.Burn)
			}
			if ru.Fired < 0 {
				return fmt.Errorf("prof: telemetry rule %q fired %d times", ru.Name, ru.Fired)
			}
			rules[ru.Name] = ru.Fired
		}
		fired := make(map[string]int)
		for _, a := range t.Alerts {
			if _, ok := rules[a.Rule]; !ok {
				return fmt.Errorf("prof: telemetry alert references unknown rule %q", a.Rule)
			}
			if a.Start > a.End {
				return fmt.Errorf("prof: telemetry alert %q starts at %g after its end %g", a.Rule, a.Start, a.End)
			}
			fired[a.Rule]++
		}
		for name, want := range rules {
			if fired[name] != want {
				return fmt.Errorf("prof: telemetry rule %q lists %d fired, %d alerts present", name, want, fired[name])
			}
		}
	}
	if p := r.Profile; p != nil {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}
