package prof_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/prof"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/train"
)

// runTraced executes a 2-GPU, 2-epoch DSP run with tracing and returns the
// tracer plus the per-epoch stats.
func runTraced(t *testing.T, pipelined bool, seed uint64) (*trace.Tracer, []train.EpochStats, *core.DSP) {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "proftest", Nodes: 12000, AvgDegree: 12, FeatDim: 32,
		NumClasses: 8, Seed: 404,
	})
	td := train.Prepare(d, 2, 1, true)
	sys, err := core.New(train.Options{
		Data:      td,
		Model:     nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 32, Classes: td.NumClasses, Layers: 2},
		Sample:    sample.Config{Fanout: []int{10, 8}},
		BatchSize: 256,
		Pipeline:  pipelined,
		UseCCC:    true,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	sys.Machine().SetTracer(tr)
	var stats []train.EpochStats
	for e := 0; e < 2; e++ {
		st, err := sys.RunEpoch(e)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}
	return tr, stats, sys
}

// TestCriticalPathTilesRealRun is the profiler's headline acceptance
// criterion: on a traced 2-GPU, 2-epoch run, the critical-path segments sum
// EXACTLY (not approximately) to the profile window's elapsed virtual time.
func TestCriticalPathTilesRealRun(t *testing.T) {
	tr, _, _ := runTraced(t, true, 7)
	p := prof.Analyze(prof.FromTracer(tr))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.CriticalPath) == 0 {
		t.Fatal("no critical path on a traced run")
	}
	var sum float64
	for i, s := range p.CriticalPath {
		if s.End < s.Start {
			t.Fatalf("segment %d inverted: %+v", i, s)
		}
		if i > 0 && s.Start != p.CriticalPath[i-1].End {
			t.Fatalf("segment %d not contiguous: starts %g, previous ends %g",
				i, s.Start, p.CriticalPath[i-1].End)
		}
		sum += s.End - s.Start
	}
	if sum != p.Window.Dur() {
		t.Fatalf("critical path sums to %g, window elapsed is %g (must be exact)", sum, p.Window.Dur())
	}
	if p.CriticalPath[0].Start != p.Window.Start || p.CriticalPath[len(p.CriticalPath)-1].End != p.Window.End {
		t.Fatal("critical path does not span the window")
	}
	// The by-category decomposition re-sums to the same total.
	var byCat float64
	for _, v := range p.CriticalPathByCat {
		byCat += v
	}
	if math.Abs(byCat-sum) > 1e-12*sum {
		t.Fatalf("by-cat decomposition %g != path total %g", byCat, sum)
	}
}

// TestOverlapPipelinedVsSequential: the pipelined system must show stage
// overlap; the sequential (DSP-Seq) system must show exactly zero.
func TestOverlapPipelinedVsSequential(t *testing.T) {
	trP, _, _ := runTraced(t, true, 7)
	pp := prof.Analyze(prof.FromTracer(trP))
	if pp.PipelineOverlap <= 0 {
		t.Fatalf("pipelined run shows no stage overlap (%g)", pp.PipelineOverlap)
	}
	trS, _, _ := runTraced(t, false, 7)
	ps := prof.Analyze(prof.FromTracer(trS))
	if ps.PipelineOverlap != 0 {
		t.Fatalf("sequential run shows stage overlap %g, want exactly 0", ps.PipelineOverlap)
	}
}

// TestStallAttributionRealRun: the pipelined run records queue-wait spans on
// stage lanes and ccc-wait spans on the CCC lane, and they show up in the
// stall report.
func TestStallAttributionRealRun(t *testing.T) {
	tr, _, _ := runTraced(t, true, 7)
	p := prof.Analyze(prof.FromTracer(tr))
	if p.Stalls.Count == 0 {
		t.Fatal("no stall spans recorded on a pipelined run")
	}
	if p.Stalls.QueueWait <= 0 {
		t.Fatalf("queue-wait total %g, want > 0", p.Stalls.QueueWait)
	}
	if p.Stalls.CCCWait <= 0 {
		t.Fatalf("ccc-wait total %g, want > 0 (CCC is enabled)", p.Stalls.CCCWait)
	}
	if p.Stalls.QueueWaitDist == nil || p.Stalls.QueueWaitDist.Count == 0 {
		t.Fatal("missing per-stall queue-wait distribution")
	}
}

// TestRunReportDeterminism: identical seeds produce byte-identical trace
// JSON and byte-identical RunReport JSON.
func TestRunReportDeterminism(t *testing.T) {
	build := func() ([]byte, []byte) {
		tr, stats, sys := runTraced(t, true, 13)
		var traceBuf bytes.Buffer
		if err := tr.WriteJSON(&traceBuf); err != nil {
			t.Fatal(err)
		}
		rep := train.BuildRunReport(train.ReportInput{
			Command: "dsptrain", System: sys.Name(), Dataset: "proftest",
			GPUs: 2, Seed: 13,
			Epochs: stats, Tracer: tr, Compression: sys.Compression(),
		})
		data, err := rep.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return traceBuf.Bytes(), data
	}
	t1, r1 := build()
	t2, r2 := build()
	if !bytes.Equal(t1, t2) {
		t.Fatal("same-seed traces are not byte-identical")
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("same-seed run reports are not byte-identical")
	}
	// And the report parses back valid.
	if _, err := prof.ParseReport(r1); err != nil {
		t.Fatal(err)
	}
}

// TestProfileFromParsedTraceMatchesLive: analysing a written-then-parsed
// trace file gives the same profile as analysing the live tracer.
func TestProfileFromParsedTraceMatchesLive(t *testing.T) {
	tr, _, _ := runTraced(t, true, 7)
	live := prof.Analyze(prof.FromTracer(tr))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := prof.ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fromFile := prof.Analyze(parsed)
	if live.Window != fromFile.Window {
		t.Fatalf("windows differ: live %+v file %+v", live.Window, fromFile.Window)
	}
	if len(live.CriticalPath) != len(fromFile.CriticalPath) {
		t.Fatalf("critical paths differ: %d vs %d segments",
			len(live.CriticalPath), len(fromFile.CriticalPath))
	}
	if live.PipelineOverlap != fromFile.PipelineOverlap ||
		live.CommComputeOverlap != fromFile.CommComputeOverlap {
		t.Fatal("overlap fractions differ between live and parsed traces")
	}
}
