package prof

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// MetricDelta is one compared metric of an A/B report diff. Pct is the
// relative change from A to B; Regression marks a worse-direction change
// beyond the caller's threshold.
type MetricDelta struct {
	Name string  `json:"name"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	Pct  float64 `json:"pct"` // (B-A)/A, signed; +Inf when A==0, B>0
	// HigherIsBetter records the metric's good direction so renderers can
	// mark improvements vs regressions.
	HigherIsBetter bool `json:"higher_is_better,omitempty"`
	Regression     bool `json:"regression,omitempty"`
}

// DiffResult is the full comparison of two RunReports.
type DiffResult struct {
	Threshold float64       `json:"threshold"`
	Metrics   []MetricDelta `json:"metrics"`
	// Regressions counts metrics whose worse-direction change exceeded the
	// threshold — the CI gate fails when this is nonzero.
	Regressions int `json:"regressions"`
}

// metric describes one comparable scalar extracted from a report.
type metric struct {
	name   string
	get    func(*RunReport) (float64, bool)
	higher bool // true when larger values are better
}

// metrics lists every scalar Diff compares, in report order. A metric only
// appears in the result when both reports carry it.
var diffMetrics = []metric{
	{"wall_time", func(r *RunReport) (float64, bool) { return r.WallTime, r.WallTime > 0 }, false},
	{"throughput", func(r *RunReport) (float64, bool) {
		if r.Serving == nil {
			return 0, false
		}
		return r.Serving.Throughput, true
	}, true},
	{"shed_rate", func(r *RunReport) (float64, bool) {
		if r.Serving == nil {
			return 0, false
		}
		return r.Serving.ShedRate, true
	}, false},
	{"latency_p50", latencyMetric(func(l *LatencySummary) float64 { return l.P50 }), false},
	{"latency_p95", latencyMetric(func(l *LatencySummary) float64 { return l.P95 }), false},
	{"latency_p99", latencyMetric(func(l *LatencySummary) float64 { return l.P99 }), false},
	{"epoch_time", func(r *RunReport) (float64, bool) {
		if len(r.Epochs) == 0 {
			return 0, false
		}
		var sum float64
		for _, e := range r.Epochs {
			sum += e.Time
		}
		return sum / float64(len(r.Epochs)), true
	}, false},
	{"cache_hit_rate", func(r *RunReport) (float64, bool) {
		if r.Cache == nil {
			return 0, false
		}
		return r.Cache.HitRate, true
	}, true},
	{"wire_sample_bytes", wireMetric(func(w Wire) int64 { return w.Sample }), false},
	{"wire_feature_bytes", wireMetric(func(w Wire) int64 { return w.Feature }), false},
	{"wire_grad_bytes", wireMetric(func(w Wire) int64 { return w.Grad }), false},
	{"queue_wait", stallMetric(func(s StallReport) float64 { return s.QueueWait }), false},
	{"ccc_wait", stallMetric(func(s StallReport) float64 { return s.CCCWait }), false},
	{"pipeline_overlap", func(r *RunReport) (float64, bool) {
		if r.Profile == nil {
			return 0, false
		}
		return r.Profile.PipelineOverlap, true
	}, true},
	{"comm_compute_overlap", func(r *RunReport) (float64, bool) {
		if r.Profile == nil {
			return 0, false
		}
		return r.Profile.CommComputeOverlap, true
	}, true},
	{"mean_mttr", func(r *RunReport) (float64, bool) {
		if r.Faults == nil || r.Faults.MeanMTTR <= 0 {
			return 0, false
		}
		return r.Faults.MeanMTTR, true
	}, false},
	{"strategy_push_bytes", strategyMetric(func(s *StrategySection) int64 { return s.PushBytes }), false},
	{"strategy_pull_bytes", strategyMetric(func(s *StrategySection) int64 { return s.PullBytes }), false},
}

func latencyMetric(pick func(*LatencySummary) float64) func(*RunReport) (float64, bool) {
	return func(r *RunReport) (float64, bool) {
		if r.Latency == nil {
			return 0, false
		}
		return pick(r.Latency), true
	}
}

func wireMetric(pick func(Wire) int64) func(*RunReport) (float64, bool) {
	return func(r *RunReport) (float64, bool) {
		v := pick(r.Wire)
		return float64(v), v > 0
	}
}

func strategyMetric(pick func(*StrategySection) int64) func(*RunReport) (float64, bool) {
	return func(r *RunReport) (float64, bool) {
		if r.Strategy == nil {
			return 0, false
		}
		v := pick(r.Strategy)
		return float64(v), v > 0
	}
}

func stallMetric(pick func(StallReport) float64) func(*RunReport) (float64, bool) {
	return func(r *RunReport) (float64, bool) {
		if r.Profile == nil {
			return 0, false
		}
		return pick(r.Profile.Stalls), true
	}
}

// Diff compares baseline a against candidate b. threshold is the tolerated
// relative worsening (0.15 = 15%); metrics beyond it are flagged as
// regressions. Pure stall/overlap metrics are informational only — they are
// diffed but never flagged, since a faster run can legitimately shift where
// it waits; the gate rests on end-to-end metrics (wall time, latency,
// throughput, wire bytes).
func Diff(a, b *RunReport, threshold float64) *DiffResult {
	res := &DiffResult{Threshold: threshold}
	informational := map[string]bool{
		"queue_wait": true, "ccc_wait": true,
		"pipeline_overlap": true, "comm_compute_overlap": true,
		"shed_rate": true, "cache_hit_rate": true,
	}
	for _, m := range diffMetrics {
		va, oka := m.get(a)
		vb, okb := m.get(b)
		if !oka || !okb {
			continue
		}
		d := MetricDelta{Name: m.name, A: va, B: vb, HigherIsBetter: m.higher}
		switch {
		case va != 0:
			d.Pct = (vb - va) / math.Abs(va)
		case vb != 0:
			d.Pct = math.Inf(1)
		}
		if !informational[m.name] {
			worse := d.Pct
			if m.higher {
				worse = -d.Pct
			}
			if worse > threshold {
				d.Regression = true
				res.Regressions++
			}
		}
		res.Metrics = append(res.Metrics, d)
	}
	return res
}

// WriteText renders the diff as an aligned table.
func (d *DiffResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-22s %14s %14s %9s\n", "metric", "baseline", "candidate", "change")
	rows := append([]MetricDelta(nil), d.Metrics...)
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].Regression && !rows[j].Regression
	})
	for _, m := range rows {
		mark := ""
		if m.Regression {
			mark = "  REGRESSION"
		} else if m.Pct != 0 {
			improved := m.Pct > 0 == m.HigherIsBetter
			if improved {
				mark = "  improved"
			}
		}
		fmt.Fprintf(w, "%-22s %14.6g %14.6g %8.1f%%%s\n", m.Name, m.A, m.B, 100*m.Pct, mark)
	}
	if d.Regressions > 0 {
		fmt.Fprintf(w, "\n%d regression(s) beyond %.0f%% threshold\n", d.Regressions, 100*d.Threshold)
	}
}
