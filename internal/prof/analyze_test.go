package prof

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// synthTrace builds a hand-constructed two-GPU trace with known overlap,
// stalls, and a known critical path. Tracer inputs are virtual seconds.
func synthTrace() *Trace {
	tr := trace.New()
	tr.NamePid(0, "GPU 0")
	tr.NamePid(1, "GPU 1")
	for pid := 0; pid < 2; pid++ {
		tr.NameLane(pid, trace.LaneKernels, "kernels")
		tr.NameLane(pid, trace.LaneNVLink, "nvlink")
		tr.NameLane(pid, trace.LaneSampler, "sampler stage")
		tr.NameLane(pid, trace.LaneLoader, "loader stage")
		tr.NameLane(pid, trace.LaneTrainer, "trainer stage")
		tr.NameLane(pid, trace.LaneCCC, "ccc wait")
	}
	// GPU 0: sampler 0-10s, loader 5-20 (overlaps sampler 5-10),
	// trainer 20-40; queue-wait on trainer lane 10-20.
	tr.Complete("sample step 0", "stage", 0, trace.LaneSampler, 0, 10, nil)
	tr.Complete("load step 0", "stage", 0, trace.LaneLoader, 5, 20, nil)
	tr.Complete("queue-wait", "stall", 0, trace.LaneTrainer, 10, 20, map[string]string{"op": "get"})
	tr.Complete("train step 0", "stage", 0, trace.LaneTrainer, 20, 40, nil)
	// Comm 25-35 fully inside a kernel 20-40 on GPU 0 -> hidden.
	tr.Complete("allreduce", "comm", 0, trace.LaneNVLink, 25, 35, nil)
	tr.Complete("mm", "kernel", 0, trace.LaneKernels, 20, 40, nil)
	// GPU 1: one long trainer step 0-30 and a ccc-wait 30-34; comm 30-50
	// with no kernel cover -> exposed.
	tr.Complete("train step 0", "stage", 1, trace.LaneTrainer, 0, 30, nil)
	tr.Complete("ccc-wait", "stall", 1, trace.LaneCCC, 30, 34, nil)
	tr.Complete("allreduce", "comm", 1, trace.LaneNVLink, 30, 50, nil)
	return FromTracer(tr)
}

func TestAnalyzeWindowTilesExactly(t *testing.T) {
	p := Analyze(synthTrace())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Window.Dur(), 50.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("window = %g, want %g", got, want)
	}
	var sum float64
	for _, s := range p.CriticalPath {
		sum += s.End - s.Start
	}
	// Exact equality: segments are stitched so they tile the window.
	if sum != p.Window.Dur() {
		t.Fatalf("critical path sums to %g, window is %g", sum, p.Window.Dur())
	}
	if p.CriticalPath[0].Start != p.Window.Start || p.CriticalPath[len(p.CriticalPath)-1].End != p.Window.End {
		t.Fatalf("critical path does not span window: %+v", p.CriticalPath)
	}
}

func TestCriticalPathPrefersStages(t *testing.T) {
	p := Analyze(synthTrace())
	// The tail [40s, 50s] has only GPU 1's comm span active -> comm seg.
	last := p.CriticalPath[len(p.CriticalPath)-1]
	if last.Cat != "comm" || last.Name != "allreduce" {
		t.Fatalf("tail segment = %+v, want exposed comm", last)
	}
	// Inside [0s, 40s] stages dominate kernels/comm despite overlap.
	for _, s := range p.CriticalPath[:len(p.CriticalPath)-1] {
		if s.Cat != "stage" {
			t.Fatalf("segment %+v: want stage on the critical path", s)
		}
	}
	if p.CriticalPathByCat["stage"] != 40.0 || p.CriticalPathByCat["comm"] != 10.0 {
		t.Fatalf("by-cat decomposition = %v", p.CriticalPathByCat)
	}
}

func TestStallAttribution(t *testing.T) {
	p := Analyze(synthTrace())
	if got := p.Stalls.QueueWait; math.Abs(got-10.0) > 1e-12 {
		t.Fatalf("queue wait = %g, want %g", got, 10.0)
	}
	if got := p.Stalls.CCCWait; math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("ccc wait = %g, want %g", got, 4.0)
	}
	if p.Stalls.Count != 2 {
		t.Fatalf("stall count = %d, want 2", p.Stalls.Count)
	}
	if got := p.Stalls.ByLane["GPU 0/trainer stage"]; math.Abs(got-10.0) > 1e-12 {
		t.Fatalf("by-lane queue wait = %g", got)
	}
}

func TestOverlapFractions(t *testing.T) {
	p := Analyze(synthTrace())
	// GPU 0 stage activity: union [0,40] = 40; ≥2 lanes: [5,10] = 5.
	// GPU 1: union [0,30], no multi. Overlap = 5 / 70.
	if want := 5.0 / 70.0; math.Abs(p.PipelineOverlap-want) > 1e-12 {
		t.Fatalf("pipeline overlap = %g, want %g", p.PipelineOverlap, want)
	}
	// Comm totals 30µs; hidden 10µs (GPU 0's allreduce under its kernel).
	if want := 10.0 / 30.0; math.Abs(p.CommComputeOverlap-want) > 1e-12 {
		t.Fatalf("comm/compute overlap = %g, want %g", p.CommComputeOverlap, want)
	}
}

func TestLaneStats(t *testing.T) {
	p := Analyze(synthTrace())
	find := func(pid, tid int) *LaneStat {
		for i := range p.Lanes {
			if p.Lanes[i].Pid == pid && p.Lanes[i].Tid == tid {
				return &p.Lanes[i]
			}
		}
		return nil
	}
	tl := find(0, trace.LaneTrainer)
	if tl == nil {
		t.Fatal("missing GPU0 trainer lane")
	}
	if math.Abs(tl.Busy-20.0) > 1e-12 || math.Abs(tl.Stall-10.0) > 1e-12 {
		t.Fatalf("trainer lane busy=%g stall=%g", tl.Busy, tl.Stall)
	}
	if math.Abs(tl.Util-20.0/50.0) > 1e-12 {
		t.Fatalf("trainer util = %g", tl.Util)
	}
	// Lanes come out sorted by (pid, tid).
	for i := 1; i < len(p.Lanes); i++ {
		a, b := p.Lanes[i-1], p.Lanes[i]
		if a.Pid > b.Pid || (a.Pid == b.Pid && a.Tid >= b.Tid) {
			t.Fatalf("lanes not sorted: %+v before %+v", a, b)
		}
	}
}

func TestIdleAttribution(t *testing.T) {
	tr := trace.New()
	tr.NamePid(0, "GPU 0")
	tr.NameLane(0, trace.LaneTrainer, "trainer stage")
	tr.Complete("train step 0", "stage", 0, trace.LaneTrainer, 0, 10, nil)
	tr.Complete("train step 1", "stage", 0, trace.LaneTrainer, 30, 40, nil)
	p := Analyze(FromTracer(tr))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.CriticalPathByCat["idle"]; math.Abs(got-20.0) > 1e-12 {
		t.Fatalf("idle = %g, want %g (path %+v)", got, 20.0, p.CriticalPath)
	}
}

func TestSequentialOverlapIsZero(t *testing.T) {
	tr := trace.New()
	tr.NamePid(0, "GPU 0")
	// One stage after another on distinct lanes, never concurrent.
	tr.Complete("sample step 0", "stage", 0, trace.LaneSampler, 0, 10, nil)
	tr.Complete("load step 0", "stage", 0, trace.LaneLoader, 10, 20, nil)
	tr.Complete("train step 0", "stage", 0, trace.LaneTrainer, 20, 30, nil)
	p := Analyze(FromTracer(tr))
	if p.PipelineOverlap != 0 {
		t.Fatalf("sequential pipeline overlap = %g, want exactly 0", p.PipelineOverlap)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"sample step 12":  "sample step #",
		"req 4711 buf 9":  "req # buf #",
		"allreduce":       "allreduce",
		"epoch 3 step 14": "epoch # step #",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTopSpansSelfTime(t *testing.T) {
	tr := trace.New()
	// Parent span 0-100 with a nested child 20-60 on the same lane.
	tr.Complete("train step 0", "stage", 0, trace.LaneTrainer, 0, 100, nil)
	tr.Complete("backward", "kernel", 0, trace.LaneTrainer, 20, 60, nil)
	p := Analyze(FromTracer(tr))
	var parent, child *SpanAgg
	for i := range p.TopSpans {
		switch p.TopSpans[i].Name {
		case "train step #":
			parent = &p.TopSpans[i]
		case "backward":
			child = &p.TopSpans[i]
		}
	}
	if parent == nil || child == nil {
		t.Fatalf("missing aggregates: %+v", p.TopSpans)
	}
	if math.Abs(parent.Self-60.0) > 1e-12 || math.Abs(parent.Total-100.0) > 1e-12 {
		t.Fatalf("parent self=%g total=%g", parent.Self, parent.Total)
	}
	if math.Abs(child.Self-40.0) > 1e-12 {
		t.Fatalf("child self=%g", child.Self)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	p := Analyze(FromTracer(trace.New()))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.CriticalPath) != 0 || p.PipelineOverlap != 0 {
		t.Fatalf("empty trace produced %+v", p)
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	tr := trace.New()
	tr.NamePid(0, "GPU 0")
	tr.NameLane(0, trace.LaneTrainer, "trainer stage")
	tr.Complete("train step 0", "stage", 0, trace.LaneTrainer, 0, 10, map[string]string{"k": "v"})
	tr.Instant("marker", "fault", 0, trace.LaneTrainer, 5, "p", nil)
	var buf = &bytesBuffer{}
	if err := tr.WriteJSON(buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(buf.b)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.PidName(0) != "GPU 0" || parsed.LaneName(0, trace.LaneTrainer) != "trainer stage" {
		t.Fatalf("lost metadata: pids=%v lanes=%v", parsed.Pids, parsed.Lanes)
	}
	spans := parsed.Spans()
	if len(spans) != 1 || spans[0].Args["k"] != "v" {
		t.Fatalf("spans = %+v", spans)
	}
	// Profiles from live tracer and parsed file must agree.
	a, b := Analyze(FromTracer(tr)), Analyze(parsed)
	if a.Window != b.Window || len(a.CriticalPath) != len(b.CriticalPath) {
		t.Fatalf("live %+v != parsed %+v", a.Window, b.Window)
	}
}

// bytesBuffer is a minimal io.Writer accumulating bytes (avoids importing
// bytes just for the test).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

func TestParseTracePreservesDropped(t *testing.T) {
	tr := trace.New()
	tr.SetMaxEvents(2)
	for i := 0; i < 6; i++ {
		tr.Complete("k", "kernel", 0, trace.LaneKernels, float64(i), float64(i)+0.5, nil)
	}
	var buf = &bytesBuffer{}
	if err := tr.WriteJSON(buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(buf.b)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Dropped != 4 {
		t.Fatalf("parsed dropped %d, want 4", parsed.Dropped)
	}
	if p := Analyze(parsed); p.DroppedEvents != 4 {
		t.Fatalf("profile dropped %d, want 4", p.DroppedEvents)
	}
}

func TestFilteredTopSpans(t *testing.T) {
	tr := trace.New()
	tr.Complete("a", "kernel", 0, trace.LaneKernels, 0, 10, nil)
	tr.Complete("b", "kernel", 1, trace.LaneKernels, 0, 20, nil)
	tr.Complete("c", "nvlink", 0, trace.LaneNVLink, 0, 30, nil)
	cap := FromTracer(tr)
	if all := FilteredTopSpans(cap, "", -1, 0); len(all) != 3 {
		t.Fatalf("unfiltered: %d aggregates, want 3", len(all))
	}
	byCat := FilteredTopSpans(cap, "kernel", -1, 0)
	if len(byCat) != 2 || byCat[0].Name != "b" {
		t.Fatalf("cat filter: %+v", byCat)
	}
	byPid := FilteredTopSpans(cap, "", 0, 0)
	if len(byPid) != 2 || byPid[0].Name != "c" {
		t.Fatalf("pid filter: %+v", byPid)
	}
	both := FilteredTopSpans(cap, "kernel", 0, 0)
	if len(both) != 1 || both[0].Name != "a" {
		t.Fatalf("cat+pid filter: %+v", both)
	}
	if capped := FilteredTopSpans(cap, "", -1, 1); len(capped) != 1 {
		t.Fatalf("n cap ignored: %+v", capped)
	}
}
