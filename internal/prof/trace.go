package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

// Trace is the analyzer's view of a recorded run: complete spans plus the
// lane labels, whether captured live from a Tracer or parsed back from a
// Chrome trace-event JSON file.
type Trace struct {
	// Events holds the events sorted by start time; Ts/Dur are in
	// microseconds of virtual time, as recorded.
	Events []trace.Event
	// Pids labels process lanes ("GPU 0"); Lanes labels (pid, tid) threads.
	Pids  map[int]string
	Lanes map[[2]int]string
	// Dropped counts events the tracer's ring cap discarded before this
	// trace was captured (see trace.Tracer.SetMaxEvents).
	Dropped int
}

// FromTracer captures a live tracer's events for analysis.
func FromTracer(t *trace.Tracer) *Trace {
	return &Trace{Events: t.Events(), Pids: t.PidNames(), Lanes: t.LaneNames(), Dropped: t.Dropped()}
}

// ParseTrace decodes a Chrome trace-event JSON array (the trace.WriteJSON
// format), reconstructing spans and lane metadata.
func ParseTrace(data []byte) (*Trace, error) {
	var raw []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		S    string          `json:"s"`
		Args json.RawMessage `json:"args"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("prof: bad trace JSON: %w", err)
	}
	t := &Trace{Pids: map[int]string{}, Lanes: map[[2]int]string{}}
	for _, e := range raw {
		switch e.Ph {
		case "M":
			var meta struct {
				Name    string `json:"name"`
				Dropped int    `json:"dropped"`
			}
			if len(e.Args) > 0 {
				if err := json.Unmarshal(e.Args, &meta); err != nil {
					return nil, fmt.Errorf("prof: bad metadata args: %w", err)
				}
			}
			switch e.Name {
			case "process_name":
				t.Pids[e.Pid] = meta.Name
			case "thread_name":
				t.Lanes[[2]int{e.Pid, e.Tid}] = meta.Name
			case "dropped_events":
				t.Dropped = meta.Dropped
			}
		case "X", "i", "C":
			ev := trace.Event{
				Name: e.Name, Cat: e.Cat, Ph: e.Ph,
				Ts: e.Ts, Dur: e.Dur, Pid: e.Pid, Tid: e.Tid, S: e.S,
			}
			if len(e.Args) > 0 && e.Ph != "C" {
				var args map[string]string
				// Args of X/i events are string maps; ignore mismatches so
				// foreign traces still load.
				if json.Unmarshal(e.Args, &args) == nil {
					ev.Args = args
				}
			}
			t.Events = append(t.Events, ev)
		}
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Ts < t.Events[j].Ts })
	return t, nil
}

// ReadTraceFile loads a Chrome trace JSON file.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTrace(data)
}

// LaneName labels a (pid, tid) lane, synthesising one if unnamed.
func (t *Trace) LaneName(pid, tid int) string {
	if name, ok := t.Lanes[[2]int{pid, tid}]; ok {
		return name
	}
	return fmt.Sprintf("tid %d", tid)
}

// PidName labels a process lane, synthesising one if unnamed.
func (t *Trace) PidName(pid int) string {
	if name, ok := t.Pids[pid]; ok {
		return name
	}
	return fmt.Sprintf("pid %d", pid)
}

// Spans returns the complete ("X") events with positive duration.
func (t *Trace) Spans() []trace.Event {
	out := make([]trace.Event, 0, len(t.Events))
	for _, e := range t.Events {
		if e.Ph == "X" && e.Dur > 0 {
			out = append(out, e)
		}
	}
	return out
}

// IsReportJSON sniffs whether data is a RunReport document (a JSON object)
// rather than a Chrome trace (a JSON array).
func IsReportJSON(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}
