package prof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport(12.5, 3.2)
	r.Stages = map[string]float64{"sample": 1, "load": 2, "train": 3}
	r.Compression = map[string]WireStat{"grad": {Raw: 1000, Wire: 250}}
	r.Cache = &CacheReport{Policy: "adaptive", Local: 10, Peer: 5, Host: 1, HitRate: 0.9}
	r.Epochs = []EpochReport{{Epoch: 0, Time: 6.25}, {Epoch: 1, Time: 6.25}}
	r.Profile = Analyze(synthTrace())
	data, err := r.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.WallTime != r.WallTime || back.Cache.HitRate != 0.9 || len(back.Epochs) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	data2, err := back.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding a parsed report is not byte-identical")
	}
}

func TestReportValidation(t *testing.T) {
	r := New("dsptrain")
	if err := r.Validate(); err != nil {
		t.Fatalf("minimal report invalid: %v", err)
	}
	r.Schema = "dsp-runreport/99"
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("schema version not checked: %v", err)
	}
	r = New("")
	if err := r.Validate(); err == nil {
		t.Fatal("empty command accepted")
	}
	r = New("dsptrain")
	r.WallTime = -1
	if err := r.Validate(); err == nil {
		t.Fatal("negative wall time accepted")
	}
	r = New("dsptrain")
	r.Profile = &Profile{Window: Window{Start: 0, End: 1}, CriticalPath: []Segment{
		{Start: 0, End: 0.4}, {Start: 0.5, End: 1}, // gap 0.4..0.5
	}}
	if err := r.Validate(); err == nil {
		t.Fatal("gapped critical path accepted")
	}
}

func TestIsReportJSON(t *testing.T) {
	if !IsReportJSON([]byte("  \n{\"schema\": \"x\"}")) {
		t.Fatal("object not detected as report")
	}
	if IsReportJSON([]byte("[\n{}\n]")) {
		t.Fatal("array detected as report")
	}
	if IsReportJSON(nil) {
		t.Fatal("empty input detected as report")
	}
}

func TestLatencySummary(t *testing.T) {
	if Latency(nil) != nil || Latency(metrics.New()) != nil {
		t.Fatal("empty histogram should summarise to nil")
	}
	h := metrics.New()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := Latency(h)
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("summary = %+v", s)
	}
	// Histogram buckets are ~2% wide; p50 near 500.
	if s.P50 < 450 || s.P50 > 550 {
		t.Fatalf("p50 = %g", s.P50)
	}
}

func TestReportJSONNoHTMLEscape(t *testing.T) {
	r := New("dsptrain")
	r.System = "a<b>&c"
	data, err := r.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("a<b>&c")) {
		t.Fatalf("HTML-escaped output: %s", data)
	}
}
