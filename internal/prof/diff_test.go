package prof

import (
	"strings"
	"testing"
)

func sampleReport(wall float64, p99 float64) *RunReport {
	r := New("dsptrain")
	r.System = "DSP"
	r.GPUs = 2
	r.WallTime = wall
	r.Latency = &LatencySummary{Count: 100, Mean: p99 / 2, P50: p99 / 3, P95: p99 * 0.9, P99: p99, Min: 1, Max: p99}
	r.Wire = Wire{Sample: 1000, Feature: 2000, Grad: 3000}
	return r
}

func TestDiffNoRegression(t *testing.T) {
	a, b := sampleReport(10, 5), sampleReport(10.5, 5.2)
	d := Diff(a, b, 0.15)
	if d.Regressions != 0 {
		t.Fatalf("unexpected regressions: %+v", d.Metrics)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	a, b := sampleReport(10, 5), sampleReport(13, 5)
	d := Diff(a, b, 0.15)
	if d.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", d.Regressions, d.Metrics)
	}
	for _, m := range d.Metrics {
		if m.Name == "wall_time" && !m.Regression {
			t.Fatalf("wall_time not flagged: %+v", m)
		}
	}
}

func TestDiffHigherIsBetterDirection(t *testing.T) {
	a, b := sampleReport(10, 5), sampleReport(10, 5)
	a.Serving = &ServingReport{Throughput: 100}
	b.Serving = &ServingReport{Throughput: 70} // -30% throughput
	d := Diff(a, b, 0.15)
	if d.Regressions != 1 {
		t.Fatalf("throughput drop not flagged: %+v", d.Metrics)
	}
	// Improvement in the same metric is not a regression.
	b.Serving.Throughput = 200
	if d := Diff(a, b, 0.15); d.Regressions != 0 {
		t.Fatalf("throughput gain flagged: %+v", d.Metrics)
	}
}

func TestDiffInformationalMetricsNeverGate(t *testing.T) {
	a, b := sampleReport(10, 5), sampleReport(10, 5)
	a.Profile = &Profile{Stalls: StallReport{QueueWait: 1}}
	b.Profile = &Profile{Stalls: StallReport{QueueWait: 10}} // 10x more stall
	if d := Diff(a, b, 0.15); d.Regressions != 0 {
		t.Fatalf("informational stall metric gated: %+v", d.Metrics)
	}
}

func TestDiffSkipsMissingSections(t *testing.T) {
	a, b := sampleReport(10, 5), sampleReport(10, 5)
	a.Latency, b.Latency = nil, nil
	d := Diff(a, b, 0.15)
	for _, m := range d.Metrics {
		if strings.HasPrefix(m.Name, "latency") {
			t.Fatalf("latency diffed without data: %+v", m)
		}
	}
}

func TestDiffTextOutput(t *testing.T) {
	a, b := sampleReport(10, 5), sampleReport(13, 5)
	var sb strings.Builder
	Diff(a, b, 0.15).WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "wall_time") {
		t.Fatalf("diff text missing regression marker:\n%s", out)
	}
}
