package comm

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
)

// TestCompressedAllReduceValuesAndBytes checks that an int8 codec both cuts
// gradient wire bytes >= 3.5x and injects bounded quantisation error into
// the reduced values, while all replicas stay bitwise identical.
func TestCompressedAllReduceValuesAndBytes(t *testing.T) {
	const n, elems = 4, 4096
	run := func(codec compress.Codec) (bytes int64, out [][]float32) {
		m, c := newWorld(n)
		out = make([][]float32, n)
		for r := 0; r < n; r++ {
			r := r
			out[r] = make([]float32, elems)
			for i := range out[r] {
				out[r][i] = float32(math.Sin(float64(i*(r+1)))) * 0.1
			}
			m.Eng.Go("rank", func(p *sim.Proc) {
				c.AllReduceSum(p, r, out[r], Compressed(codec, hw.TrafficGradient))
			})
		}
		if _, err := m.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Fabric.Counters.TotalWire(hw.TrafficGradient), out
	}

	rawBytes, exact := run(nil)
	int8Bytes, quant := run(compress.NewInt8(7))

	if ratio := float64(rawBytes) / float64(int8Bytes); ratio < 3.5 {
		t.Errorf("int8 gradient wire reduction %.2fx, want >= 3.5x (%d vs %d bytes)",
			ratio, rawBytes, int8Bytes)
	}
	// Quantisation error must be real but bounded: per element the error of
	// one rank's contribution is < its chunk scale, and n ranks sum.
	var maxErr float64
	anyDiff := false
	for i := range exact[0] {
		err := math.Abs(float64(quant[0][i] - exact[0][i]))
		if err > maxErr {
			maxErr = err
		}
		if err != 0 {
			anyDiff = true
		}
	}
	if !anyDiff {
		t.Error("int8 allreduce produced exact values; quantisation is not being applied")
	}
	// Each contribution spans about [-0.1, 0.1] so chunk scale <= 0.2/255;
	// n summed contributions bound the error by n*scale.
	if bound := float64(n) * 0.2 / 255 * 1.01; maxErr > bound {
		t.Errorf("int8 allreduce error %g exceeds bound %g", maxErr, bound)
	}
	for r := 1; r < n; r++ {
		for i := range quant[0] {
			if quant[r][i] != quant[0][i] {
				t.Fatalf("compressed replicas diverged at rank %d elem %d", r, i)
			}
		}
	}
}

// TestCompressedAllReduceDeterministic runs the same compressed reduction
// twice and requires bit-identical results (seeded stochastic rounding).
func TestCompressedAllReduceDeterministic(t *testing.T) {
	const n, elems = 4, 1024
	run := func() [][]float32 {
		m, c := newWorld(n)
		out := make([][]float32, n)
		for r := 0; r < n; r++ {
			r := r
			out[r] = make([]float32, elems)
			for i := range out[r] {
				out[r][i] = float32(r+1) / float32(i+3)
			}
			m.Eng.Go("rank", func(p *sim.Proc) {
				c.AllReduceSum(p, r, out[r], Compressed(compress.NewInt8(99), hw.TrafficGradient))
			})
		}
		if _, err := m.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for r := range a {
		for i := range a[r] {
			if math.Float32bits(a[r][i]) != math.Float32bits(b[r][i]) {
				t.Fatalf("same-seed compressed allreduce not bit-identical at rank %d elem %d", r, i)
			}
		}
	}
}

// TestCompressedAllToAllRoundtripsValues checks that feature-style float32
// all-to-all segments pass through the codec (fp16 here: cross-GPU values
// are halved in precision, the self segment stays exact).
func TestCompressedAllToAllRoundtripsValues(t *testing.T) {
	const n = 2
	m, c := newWorld(n)
	got := make([][][]float32, n)
	v := float32(1.0009765625) // 1 + 2^-10: representable in fp16? 1+2^-10 yes; use 1+2^-12 to force rounding
	vLossy := float32(1.000244140625)
	for r := 0; r < n; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			out := make([][]float32, n)
			for q := 0; q < n; q++ {
				out[q] = []float32{v, vLossy}
			}
			got[r] = AllToAll(c, p, r, out, Compressed(compress.FP16{}, hw.TrafficFeature))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		self, peer := got[r][r], got[r][1-r]
		if self[0] != v || self[1] != vLossy {
			t.Fatalf("rank %d self segment went through the codec: %v", r, self)
		}
		if peer[0] != v {
			t.Fatalf("rank %d: fp16-exact value changed: %v", r, peer[0])
		}
		if peer[1] == vLossy {
			t.Fatalf("rank %d: fp16 should round 1+2^-12, still exact", r)
		}
	}
	// Wire bytes: each rank sends one 2-element fp16 segment to its peer.
	if gotB := m.Fabric.Counters.NVLinkBytes[hw.TrafficFeature]; gotB != 2*2*2 {
		t.Errorf("fp16 feature bytes %d, want %d", gotB, 2*2*2)
	}
}

// TestCodecOnNonFloat32Panics ensures the misuse is loud, not silent.
func TestCodecOnNonFloat32Panics(t *testing.T) {
	m, c := newWorld(2)
	panicked := make([]bool, 2)
	for r := 0; r < 2; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			defer func() {
				if recover() != nil {
					panicked[r] = true
					// Unblock the peer's barrier by dying loudly is not an
					// option inside the sim; both ranks panic at collect
					// time after the same barrier, so no one is stranded.
				}
			}()
			out := make([][]int32, 2)
			out[1-r] = []int32{1, 2}
			AllToAll(c, p, r, out, Compressed(compress.FP16{}, hw.TrafficSample))
		})
	}
	_, _ = m.Eng.Run()
	if !panicked[0] || !panicked[1] {
		t.Errorf("codec on []int32 should panic on both ranks, got %v", panicked)
	}
}

// TestCompressionStatsAndTrace checks the compressed-vs-raw accounting.
func TestCompressionStatsAndTrace(t *testing.T) {
	const n, elems = 2, 512
	m, c := newWorld(n)
	for r := 0; r < n; r++ {
		r := r
		data := make([]float32, elems)
		m.Eng.Go("rank", func(p *sim.Proc) {
			c.AllReduceSum(p, r, data, Compressed(compress.NewInt8(1), hw.TrafficGradient))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.Compression()[hw.TrafficGradient]
	if st.Raw != int64(n)*4*elems {
		t.Errorf("raw bytes %d, want %d", st.Raw, n*4*elems)
	}
	wantWire := int64(n) * compress.NewInt8(1).WireBytes(elems)
	if st.Wire != wantWire {
		t.Errorf("wire bytes %d, want %d", st.Wire, wantWire)
	}
	if st.Wire >= st.Raw {
		t.Error("compression stats show no savings")
	}
}

// TestCompressedAllReduceUnderFaultInjection kills a rank mid-run and
// checks the survivors' compressed allreduce retries cleanly under the new
// membership view and still matches across the live replicas.
func TestCompressedAllReduceUnderFaultInjection(t *testing.T) {
	const n, elems = 4, 2048
	m, c := newWorld(n)
	view := fault.NewView(n)
	c.SetView(view)
	const victim = 2
	opts := Compressed(compress.NewInt8(5), hw.TrafficGradient)

	results := make([][]float32, n)
	for r := 0; r < n; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				if r == victim && round == 1 {
					return // crashed before its second round
				}
				for {
					data := make([]float32, elems)
					for i := range data {
						data[i] = float32(r+1) * 1e-3 * float32(i%17)
					}
					aborted := func() (ab bool) {
						defer func() {
							if rec := recover(); rec != nil {
								if _, ok := rec.(fault.Aborted); !ok {
									panic(rec)
								}
								ab = true
							}
						}()
						c.Begin(r)
						c.AllReduceSum(p, r, data, opts)
						return false
					}()
					if !aborted {
						results[r] = data
						break
					}
					p.Sleep(1e-6) // back off and retry under the new view
				}
			}
		})
	}
	m.Eng.Go("killer", func(p *sim.Proc) {
		p.Sleep(1e-5)
		view.Kill(victim)
	})
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	var ref []float32
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		if results[r] == nil {
			t.Fatalf("survivor %d never completed", r)
		}
		if ref == nil {
			ref = results[r]
			continue
		}
		for i := range ref {
			if results[r][i] != ref[i] {
				t.Fatalf("survivor %d diverged at %d after fault", r, i)
			}
		}
	}
}
