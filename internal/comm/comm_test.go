package comm

import (
	"fmt"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func newWorld(n int) (*hw.Machine, *Communicator) {
	m := hw.NewMachine(n, hw.V100(), hw.XeonE5())
	return m, New(m)
}

func TestAllToAllDeliversCorrectly(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		m, c := newWorld(n)
		got := make([][][]int32, n)
		for r := 0; r < n; r++ {
			r := r
			m.Eng.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				out := make([][]int32, n)
				for q := 0; q < n; q++ {
					// rank r sends [r*100+q] to q.
					out[q] = []int32{int32(r*100 + q)}
				}
				got[r] = AllToAll(c, p, r, out, Raw(4, hw.TrafficSample))
			})
		}
		if _, err := m.Eng.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r := 0; r < n; r++ {
			for q := 0; q < n; q++ {
				want := int32(q*100 + r)
				if len(got[r][q]) != 1 || got[r][q][0] != want {
					t.Fatalf("n=%d: rank %d from %d got %v, want [%d]", n, r, q, got[r][q], want)
				}
			}
		}
	}
}

func TestAllToAllTimingScalesWithBytes(t *testing.T) {
	run := func(elems int) sim.Time {
		m, c := newWorld(4)
		for r := 0; r < 4; r++ {
			r := r
			m.Eng.Go("rank", func(p *sim.Proc) {
				out := make([][]int32, 4)
				for q := range out {
					if q != r {
						out[q] = make([]int32, elems)
					}
				}
				AllToAll(c, p, r, out, Raw(4, hw.TrafficFeature))
			})
		}
		end, err := m.Eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	small := run(1000)
	big := run(1000000)
	if big < 10*small {
		t.Errorf("1000x payload only %gx slower (%g vs %g)", big/small, big, small)
	}
}

func TestAllToAllAccountsNVLinkBytes(t *testing.T) {
	m, c := newWorld(2)
	for r := 0; r < 2; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			out := make([][]int32, 2)
			out[1-r] = make([]int32, 256)
			AllToAll(c, p, r, out, Raw(4, hw.TrafficSample))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Fabric.Counters.NVLinkBytes[hw.TrafficSample]; got != 2*256*4 {
		t.Errorf("sample bytes %d, want %d", got, 2*256*4)
	}
	if m.Fabric.Counters.PCIeBytes[hw.TrafficSample] != 0 {
		t.Error("all-to-all touched PCIe")
	}
}

func TestAllReduceSumExact(t *testing.T) {
	const n = 4
	m, c := newWorld(n)
	bufs := make([][]float32, n)
	for r := 0; r < n; r++ {
		r := r
		bufs[r] = []float32{float32(r + 1), float32(10 * (r + 1))}
		m.Eng.Go("rank", func(p *sim.Proc) {
			c.AllReduceSum(p, r, bufs[r], Raw(4, hw.TrafficGradient))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if bufs[r][0] != 10 || bufs[r][1] != 100 {
			t.Fatalf("rank %d reduced to %v, want [10 100]", r, bufs[r])
		}
	}
}

func TestAllReduceBitwiseIdenticalAcrossRanks(t *testing.T) {
	// Float addition is order-sensitive; BSP requires all replicas to end
	// identical, so the reduction order must be fixed.
	const n = 8
	m, c := newWorld(n)
	bufs := make([][]float32, n)
	for r := 0; r < n; r++ {
		r := r
		bufs[r] = make([]float32, 100)
		for i := range bufs[r] {
			bufs[r][i] = float32(r) * 0.1 / float32(i+1)
		}
		m.Eng.Go("rank", func(p *sim.Proc) {
			c.AllReduceSum(p, r, bufs[r], Raw(4, hw.TrafficGradient))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		for i := range bufs[0] {
			if bufs[r][i] != bufs[0][i] {
				t.Fatalf("rank %d diverged at %d", r, i)
			}
		}
	}
}

func TestAllGather(t *testing.T) {
	const n = 4
	m, c := newWorld(n)
	got := make([][][]int64, n)
	for r := 0; r < n; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			got[r] = AllGather(c, p, r, []int64{int64(r)}, Raw(8, hw.TrafficOther))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			if len(got[r][q]) != 1 || got[r][q][0] != int64(q) {
				t.Fatalf("rank %d slot %d = %v", r, q, got[r][q])
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	const n = 4
	m, c := newWorld(n)
	got := make([][]float32, n)
	for r := 0; r < n; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			var data []float32
			if r == 2 {
				data = []float32{1, 2, 3}
			}
			got[r] = Broadcast(c, p, r, 2, data, Raw(4, hw.TrafficOther))
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if len(got[r]) != 3 || got[r][2] != 3 {
			t.Fatalf("rank %d got %v", r, got[r])
		}
	}
}

func TestSequentialCollectivesOnOneCommunicator(t *testing.T) {
	// Multiple collectives in program order must not cross-talk.
	const n = 4
	m, c := newWorld(n)
	results := make([][]float32, n)
	for r := 0; r < n; r++ {
		r := r
		m.Eng.Go("rank", func(p *sim.Proc) {
			for round := 0; round < 5; round++ {
				buf := []float32{float32(r + round)}
				c.AllReduceSum(p, r, buf, Raw(4, hw.TrafficGradient))
				results[r] = append(results[r], buf[0])
			}
		})
	}
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for round := 0; round < 5; round++ {
			want := float32(0+1+2+3) + float32(n*round)
			if results[r][round] != want {
				t.Fatalf("rank %d round %d = %v, want %v", r, round, results[r][round], want)
			}
		}
	}
}

func TestSingleGPUCollectivesAreLocal(t *testing.T) {
	m, c := newWorld(1)
	var reduced []float32
	m.Eng.Go("rank", func(p *sim.Proc) {
		out := [][]int32{{42}}
		in := AllToAll(c, p, 0, out, Raw(4, hw.TrafficSample))
		if in[0][0] != 42 {
			t.Error("self all-to-all broken")
		}
		reduced = []float32{7}
		c.AllReduceSum(p, 0, reduced, Raw(4, hw.TrafficGradient))
	})
	end, err := m.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("single-GPU collectives consumed virtual time %g", end)
	}
	if m.Fabric.Counters.TotalAllWire() != 0 {
		t.Error("single-GPU collectives moved wire bytes")
	}
}
