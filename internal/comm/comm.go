// Package comm implements NCCL-style collectives (all-to-all, allreduce,
// allgather, broadcast) over the simulated NVLink fabric.
//
// A Communicator is shared by one group of peer workers (one per GPU) — DSP
// creates one communicator per worker type (sampler, loader, trainer), just
// as the real system creates one NCCL communicator per worker group. Within
// a communicator all ranks must invoke the same collectives in the same
// order; ordering ACROSS communicators on a GPU is the province of the
// centralized communication coordination scheme (internal/pipeline), which
// plugs in through the Gate interface.
//
// Communicators are optionally membership-aware: under a fault.View
// (SetView), barriers release when all LIVE ranks arrive, transfers to dead
// ranks are skipped, and a death mid-collective aborts every in-flight
// participant with a fault.Aborted panic so callers can retry under the new
// view (Begin opens each retryable attempt). This is how degraded-mode
// serving keeps collectives running across GPU crashes.
//
// Collectives move real Go data between ranks (node ids, feature rows,
// gradients) while charging virtual time for the wire transfers, following
// the paper's protocol: each rank first notifies peers of the sizes they
// will receive, then the payload moves via all-to-all over NVLink.
//
// Every collective takes an Opts describing the wire format. When
// Opts.Codec is set (float32 payloads only), the codec determines both the
// charged wire bytes AND the values the receivers observe — payloads are
// round-tripped through Encode/Decode, so a lossy codec degrades the
// training for real rather than only discounting the bill. AllReduceSum
// under a codec quantises each rank's contribution once and has every rank
// decode and sum them in rank order, preserving the BSP guarantee that all
// replicas stay bitwise identical.
package comm

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Opts configures the wire format of one collective call.
type Opts struct {
	// Class tags the traffic for per-purpose byte accounting.
	Class hw.TrafficClass
	// ElemBytes is the raw wire size of one element. Ignored when Codec is
	// set (the codec prices float32 elements itself).
	ElemBytes int
	// Codec, when non-nil, compresses the payload: wire bytes follow
	// Codec.WireBytes and received values are round-tripped through the
	// codec. Only valid for float32 payloads; collectives panic otherwise.
	Codec compress.Codec
	// PriceElems, when positive, caps the element count the WIRE is charged
	// for in AllReduceSum while the full vector still moves and reduces —
	// the values are untouched. This models parameter shards that are
	// replica-local and never ride the ring (P3's dimension-sharded first
	// layer): the BSP sum stays bitwise identical across strategies, only
	// the bill shrinks. Ignored by the other collectives.
	PriceElems int
	// Static promises that the caller's contribution buffer holds content
	// bitwise identical to what the SAME buffer held on the previous
	// AllReduceSum call that also set Static (cost-only training reduces
	// the same all-zero gradient vector every round). The communicator may
	// then reuse the cached encoded image instead of re-quantising. Ignored
	// by the other collectives and without a lossy codec.
	Static bool
}

// Raw returns Opts for an uncompressed payload of elemBytes-sized elements.
func Raw(elemBytes int, class hw.TrafficClass) Opts {
	return Opts{Class: class, ElemBytes: elemBytes}
}

// Compressed returns Opts for a float32 payload under codec (nil codec
// means raw 4-byte floats).
func Compressed(codec compress.Codec, class hw.TrafficClass) Opts {
	return Opts{Class: class, ElemBytes: 4, Codec: codec}
}

// wireBytes prices an n-element payload under o.
func (o Opts) wireBytes(n int) int64 {
	if o.Codec != nil {
		return o.Codec.WireBytes(n)
	}
	return int64(n) * int64(o.ElemBytes)
}

// CompressionStats accumulates, per traffic class, the raw float32 bytes a
// codec-bearing collective would have sent against the bytes it actually
// charged. Raw == Wire when only identity codecs ran.
type CompressionStats struct {
	Raw  int64 // uncompressed payload bytes (4 per float32)
	Wire int64 // bytes actually charged to the fabric
}

// Gate is an optional launch arbiter for communication kernels. When set on
// a communicator, every collective passes through Enter before touching its
// peers and Exit when done — this is where the pipeline package's
// centralized communication coordination (CCC) plugs in.
type Gate interface {
	Enter(p *sim.Proc, gpu int)
	Exit(gpu int)
}

// Communicator coordinates one group of peer processes, one per GPU.
type Communicator struct {
	Machine *hw.Machine
	N       int

	barrier *sim.Barrier
	slots   []any // per-rank posted payload for the in-flight collective
	gate    Gate
	comp    map[hw.TrafficClass]*CompressionStats

	// Allreduce fast path: BSP summation in rank order makes every rank's
	// result bitwise identical, so the reduction is computed ONCE per
	// collective (by the first rank through the post barrier) into a pooled
	// buffer all ranks copy from, instead of N full decode+sum passes.
	pool   arena.Pool         // recycled sum/scratch buffers
	par    *sim.ParallelGroup // offload/segment-parallel data work
	arSum  []float32          // the in-flight collective's shared reduction
	arLive int                // live contributors captured with arSum
	arEnc  []arEncEntry       // per-rank cached encodes for Static reduces

	// Fault-aware membership (serving degraded mode). When view is set,
	// collectives synchronise over the live ranks only and an in-flight
	// collective aborts (panics fault.Aborted) the instant a member dies, so
	// participants can retry under the new view.
	view    *fault.View
	attGen  []int      // per-rank membership generation captured by Begin
	arrived int        // live arrivals in the current barrier cycle
	release int        // completed barrier cycles
	bcond   *sim.Event // trigger-and-replace wakeup for barrier waiters
}

// SetGate installs a communication-kernel launch gate (one per worker
// group). Must be set before any collective runs.
func (c *Communicator) SetGate(g Gate) { c.gate = g }

// SetView makes the communicator membership-aware: barriers release when all
// LIVE ranks have arrived, transfers to dead ranks are skipped, and a death
// mid-collective aborts every participant of the in-flight attempt. Callers
// must bracket each collective sequence with Begin.
func (c *Communicator) SetView(v *fault.View) {
	c.view = v
	c.attGen = make([]int, c.N)
	c.bcond = c.Machine.Eng.NewEvent()
	v.OnChange(func() {
		// A member died: void the in-flight attempt. Arrivals reset, posted
		// payloads are dropped (the shared reduction with them — it is NOT
		// returned to the pool, since an unwinding rank may still hold a
		// reference), and every waiter wakes to observe the stale generation
		// and unwind.
		c.arrived = 0
		for i := range c.slots {
			c.slots[i] = nil
		}
		c.arSum, c.arLive = nil, 0
		c.notify()
	})
}

// Begin opens a collective attempt for rank under the current membership
// generation. Call it before the first collective of each retryable unit of
// work (e.g. one serving round); every collective in the unit aborts if the
// membership changes before the unit completes.
func (c *Communicator) Begin(rank int) {
	if c.view != nil {
		c.attGen[rank] = c.view.Gen()
	}
}

// check unwinds rank's attempt if its membership generation is stale.
func (c *Communicator) check(rank int) {
	if c.view != nil && c.attGen[rank] != c.view.Gen() {
		panic(fault.Aborted{Gen: c.attGen[rank]})
	}
}

// alive reports whether rank q participates in collectives.
func (c *Communicator) alive(q int) bool {
	return c.view == nil || c.view.Alive(q)
}

// notify wakes all barrier waiters (trigger-and-replace).
func (c *Communicator) notify() {
	ev := c.bcond
	c.bcond = c.Machine.Eng.NewEvent()
	ev.Trigger()
}

// arrive is the collective barrier: the plain cyclic barrier without a view,
// or a membership-aware one that releases when all live ranks have arrived
// and aborts waiters whose attempt generation went stale.
func (c *Communicator) arrive(p *sim.Proc, rank int) {
	if c.view == nil {
		c.barrier.Arrive(p)
		return
	}
	c.check(rank)
	c.arrived++
	if c.arrived >= c.view.LiveCount() {
		c.arrived = 0
		c.release++
		c.notify()
		return
	}
	my := c.release
	for c.release == my {
		c.bcond.Wait(p)
		c.check(rank)
	}
}

// enter/exit bracket one collective with the gate, if any.
func (c *Communicator) enter(p *sim.Proc, rank int) {
	c.check(rank)
	if c.gate != nil {
		c.gate.Enter(p, rank)
	}
}

func (c *Communicator) exit(rank int) {
	if c.gate != nil {
		c.gate.Exit(rank)
	}
}

// New creates a communicator over all GPUs of the machine.
func New(m *hw.Machine) *Communicator {
	n := len(m.GPUs)
	return &Communicator{
		Machine: m,
		N:       n,
		barrier: m.Eng.NewBarrier(n),
		slots:   make([]any, n),
		comp:    map[hw.TrafficClass]*CompressionStats{},
	}
}

// Compression returns the accumulated compressed-vs-raw byte totals per
// traffic class for collectives that carried a codec.
func (c *Communicator) Compression() map[hw.TrafficClass]CompressionStats {
	out := make(map[hw.TrafficClass]CompressionStats, len(c.comp))
	for k, v := range c.comp {
		out[k] = *v
	}
	return out
}

// recordCompression accounts elems float32 values sent by rank under o and,
// when tracing, emits a cumulative compressed-vs-raw counter series.
func (c *Communicator) recordCompression(rank int, o Opts, elems int) {
	if o.Codec == nil || elems <= 0 {
		return
	}
	s := c.comp[o.Class]
	if s == nil {
		s = &CompressionStats{}
		c.comp[o.Class] = s
	}
	s.Raw += 4 * int64(elems)
	s.Wire += o.Codec.WireBytes(elems)
	dev := c.Machine.GPUs[rank]
	dev.Tracer.Counter("codec "+o.Class.String(), dev.ID,
		float64(c.Machine.Eng.Now()), map[string]float64{
			"raw":  float64(s.Raw),
			"wire": float64(s.Wire),
		})
}

// roundtrip applies o's codec to a received float32 segment, panicking if a
// codec was set on a non-float32 collective.
func roundtrip[T any](o Opts, seg []T) []T {
	if o.Codec == nil || len(seg) == 0 {
		return seg
	}
	vals, ok := any(seg).([]float32)
	if !ok {
		panic(fmt.Sprintf("comm: codec %q set on non-float32 payload %T", o.Codec.Name(), seg))
	}
	return any(compress.Roundtrip(o.Codec, vals)).([]T)
}

// sizeHeaderBytes is the per-peer size-notification message preceding each
// all-to-all (the "notify the amount of data" step in the paper).
const sizeHeaderBytes = 8

// AllToAll exchanges slices: rank r's out[q] is delivered as the return
// value's [r] on rank q. o describes the wire format; with a codec set,
// every cross-GPU segment is round-tripped through it (the self segment
// never touches the wire and stays exact). Must be called by all ranks.
func AllToAll[T any](c *Communicator, p *sim.Proc, rank int, out [][]T, o Opts) [][]T {
	if len(out) != c.N {
		panic(fmt.Sprintf("comm: rank %d posted %d buffers for %d ranks", rank, len(out), c.N))
	}
	if c.N == 1 {
		return [][]T{out[0]}
	}
	c.enter(p, rank)
	defer c.exit(rank)
	// Post and synchronise so every rank's payload is visible.
	c.slots[rank] = out
	c.arrive(p, rank)
	// Collect (data is valid now; timing is enforced below). Dead ranks
	// contribute nothing — their in[q] stays nil (empty). Cross-GPU
	// segments pass through the codec as the receiver would see them.
	in := make([][]T, c.N)
	for q := 0; q < c.N; q++ {
		if !c.alive(q) || c.slots[q] == nil {
			continue
		}
		seg := c.slots[q].([][]T)[rank]
		if q != rank {
			seg = roundtrip(o, seg)
		}
		in[q] = seg
	}
	// Timed wire movement: size headers then payloads, charged to the
	// sender in deterministic peer order. Nothing is sent to dead ranks.
	dev := c.Machine.GPUs[rank]
	for i := 1; i < c.N; i++ {
		q := (rank + i) % c.N
		if !c.alive(q) {
			continue
		}
		dev.Transfer(p, c.Machine.Fabric, q, sizeHeaderBytes, hw.TrafficOther)
		if n := o.wireBytes(len(out[q])); n > 0 {
			dev.Transfer(p, c.Machine.Fabric, q, n, o.Class)
		}
		c.recordCompression(rank, o, len(out[q]))
	}
	c.arrive(p, rank)
	return in
}

// AllGather delivers every rank's slice to every rank, indexed by rank.
func AllGather[T any](c *Communicator, p *sim.Proc, rank int, data []T, o Opts) [][]T {
	out := make([][]T, c.N)
	for q := range out {
		if q != rank {
			out[q] = data
		}
	}
	in := AllToAll(c, p, rank, out, o)
	in[rank] = data
	return in
}

// arPost is one rank's allreduce contribution: the raw vector plus, under a
// lossy codec, its encoded image (what actually rides the wire). Encoding is
// offloaded; tick's Join is the commit point at which enc is valid.
type arPost struct {
	raw  []float32
	enc  *compress.Buf
	tick *sim.Ticket
}

// arEncEntry caches one rank's encoded contribution for Opts.Static
// allreduces, keyed by the buffer's identity (backing array + length) and
// the codec; the Static contract guarantees the content hasn't changed.
type arEncEntry struct {
	ptr   *float32
	n     int
	codec string
	enc   *compress.Buf
}

// staticEncode returns rank's cached encode of data under o.Codec, encoding
// (inline, once) on the first call or whenever the buffer or codec changes.
func (c *Communicator) staticEncode(rank int, data []float32, o Opts) *compress.Buf {
	if c.arEnc == nil {
		c.arEnc = make([]arEncEntry, c.N)
	}
	e := &c.arEnc[rank]
	if e.enc != nil && e.ptr == &data[0] && e.n == len(data) && e.codec == o.Codec.Name() {
		return e.enc
	}
	*e = arEncEntry{ptr: &data[0], n: len(data), codec: o.Codec.Name(), enc: o.Codec.Encode(data)}
	return e.enc
}

// group lazily binds the communicator to the engine's parallel budget.
func (c *Communicator) group() *sim.ParallelGroup {
	if c.par == nil {
		c.par = c.Machine.Eng.NewParallelGroup()
	}
	return c.par
}

// reduceOnce computes the rank-order sum of all live posted contributions
// into a pooled buffer, decoding lossy contributions first. Called by the
// first rank through the post barrier; every other rank reuses the result
// (bitwise identical to what it would have computed itself). Decodes run
// segment-free but rank-parallel on the worker pool; the summation is
// segment-parallel with the per-element rank order preserved.
func (c *Communicator) reduceOnce(n int, o Opts, lossy bool) {
	live := 0
	posts := make([]*arPost, 0, c.N)
	for q := 0; q < c.N; q++ {
		if !c.alive(q) || c.slots[q] == nil {
			continue
		}
		live++
		posts = append(posts, c.slots[q].(*arPost))
	}
	sum := c.pool.Get(n)
	contribs := make([][]float32, 0, len(posts))
	var scratch [][]float32
	if lossy {
		encs := make([]*compress.Buf, len(posts))
		for i, peer := range posts {
			peer.tick.Join() // enc is valid from here
			encs[i] = peer.enc
		}
		// When every contribution is constant per chunk (scale-0 int8
		// encodes — cost-only training's untouched zero gradients), the sum
		// collapses to one add sequence per chunk instead of per element.
		if compress.SumConstant(encs, sum) {
			c.arSum, c.arLive = sum, live
			return
		}
		var decodes []func()
		for _, enc := range encs {
			dst := c.pool.Get(n)
			scratch = append(scratch, dst)
			enc := enc
			decodes = append(decodes, func() { o.Codec.Decode(enc, dst) })
			contribs = append(contribs, dst)
		}
		c.group().Run(decodes)
	} else {
		for _, peer := range posts {
			contribs = append(contribs, peer.raw)
		}
	}
	// Segment-parallel sum; each element still accumulates in rank order.
	const segElems = 64 << 10
	if n <= segElems || len(contribs) == 0 {
		for _, contrib := range contribs {
			for i, v := range contrib {
				sum[i] += v
			}
		}
	} else {
		var adds []func()
		for lo := 0; lo < n; lo += segElems {
			lo := lo
			hi := lo + segElems
			if hi > n {
				hi = n
			}
			adds = append(adds, func() {
				dst := sum[lo:hi]
				for _, contrib := range contribs {
					seg := contrib[lo:hi]
					for i, v := range seg {
						dst[i] += v
					}
				}
			})
		}
		c.group().Run(adds)
	}
	for _, s := range scratch {
		c.pool.Put(s)
	}
	c.arSum, c.arLive = sum, live
}

// AllReduceSum sums float32 vectors across ranks in place, charging
// ring-allreduce wire time (2(live-1) chunk steps around the ring). Every
// rank computes the same bitwise result (summation in rank order),
// preserving the BSP guarantee that all model replicas stay identical.
//
// With a codec in o, each rank's contribution — including the caller's own
// — is quantised once at the sender and every rank decodes and sums the
// same encoded images, so quantisation error flows into the model while
// replicas remain bitwise equal. Wire bytes per ring chunk shrink by the
// codec's ratio.
func (c *Communicator) AllReduceSum(p *sim.Proc, rank int, data []float32, o Opts) {
	if c.N == 1 {
		return
	}
	c.enter(p, rank)
	defer c.exit(rank)
	post := &arPost{raw: data}
	lossy := o.Codec != nil && !compress.Identity(o.Codec)
	if lossy {
		if o.Static && len(data) > 0 {
			post.enc = c.staticEncode(rank, data, o)
		} else {
			// Quantisation is pure data work keyed by element index and value;
			// offload it so ranks' encodes overlap in real time. data is
			// untouched until the copy-out barrier, well after the Join.
			post.tick = c.group().Submit(func() { post.enc = o.Codec.Encode(data) })
		}
	}
	c.slots[rank] = post
	c.arrive(p, rank)
	// Deterministic rank-order reduction (live ranks only under a
	// membership view), computed once per collective and shared: BSP
	// summation order makes every rank's sum bitwise identical, so the
	// first rank resumed from the barrier reduces for everyone.
	if c.arSum == nil {
		c.reduceOnce(len(data), o, lossy)
	}
	sum, live := c.arSum, c.arLive
	// Timed ring: each rank sends 2(live-1) chunks of the codec-priced
	// vector divided over the live ranks, to its live successor.
	dev := c.Machine.GPUs[rank]
	next := (rank + 1) % c.N
	if c.view != nil {
		next = c.view.NextLive(rank)
	}
	priced := len(data)
	if o.PriceElems > 0 && o.PriceElems < priced {
		priced = o.PriceElems
	}
	wire := o.wireBytes(priced)
	if o.Codec == nil && o.ElemBytes == 0 {
		wire = 4 * int64(priced) // allreduce payloads are always float32
	}
	chunk := wire / int64(live)
	if chunk < 1 {
		chunk = 1
	}
	for step := 0; step < 2*(live-1); step++ {
		dev.Transfer(p, c.Machine.Fabric, next, chunk, o.Class)
	}
	c.recordCompression(rank, o, priced)
	c.arrive(p, rank)
	copy(data, sum)
	c.arrive(p, rank)
	// Every rank has copied out; the first one through recycles the shared
	// buffer for the next collective.
	if c.arSum != nil {
		c.pool.Put(c.arSum)
		c.arSum, c.arLive = nil, 0
	}
}

// Broadcast sends root's slice to all ranks (returned; root gets its own;
// non-root ranks observe the payload through o's codec, if any).
func Broadcast[T any](c *Communicator, p *sim.Proc, rank, root int, data []T, o Opts) []T {
	if c.N == 1 {
		return data
	}
	c.enter(p, rank)
	defer c.exit(rank)
	if rank == root {
		c.slots[root] = data
	}
	c.arrive(p, rank)
	got := c.slots[root].([]T)
	if rank == root {
		dev := c.Machine.GPUs[rank]
		for i := 1; i < c.N; i++ {
			q := (rank + i) % c.N
			if !c.alive(q) {
				continue
			}
			dev.Transfer(p, c.Machine.Fabric, q, o.wireBytes(len(data)), o.Class)
			c.recordCompression(rank, o, len(data))
		}
	} else {
		got = roundtrip(o, got)
	}
	c.arrive(p, rank)
	return got
}

// Barrier synchronises the group without moving data. rank identifies the
// caller for membership-aware synchronisation (ignored without a view).
func (c *Communicator) Barrier(p *sim.Proc, rank int) {
	if c.N == 1 {
		return
	}
	c.arrive(p, rank)
}
