// Package comm implements NCCL-style collectives (all-to-all, allreduce,
// allgather, broadcast) over the simulated NVLink fabric.
//
// A Communicator is shared by one group of peer workers (one per GPU) — DSP
// creates one communicator per worker type (sampler, loader, trainer), just
// as the real system creates one NCCL communicator per worker group. Within
// a communicator all ranks must invoke the same collectives in the same
// order; ordering ACROSS communicators on a GPU is the province of the
// centralized communication coordination scheme (internal/pipeline).
//
// Collectives move real Go data between ranks (node ids, feature rows,
// gradients) while charging virtual time for the wire transfers, following
// the paper's protocol: each rank first notifies peers of the sizes they
// will receive, then the payload moves via all-to-all over NVLink.
package comm

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Gate is an optional launch arbiter for communication kernels. When set on
// a communicator, every collective passes through Enter before touching its
// peers and Exit when done — this is where the pipeline package's
// centralized communication coordination (CCC) plugs in.
type Gate interface {
	Enter(p *sim.Proc, gpu int)
	Exit(gpu int)
}

// Communicator coordinates one group of peer processes, one per GPU.
type Communicator struct {
	Machine *hw.Machine
	N       int

	barrier *sim.Barrier
	slots   []any // per-rank posted payload for the in-flight collective
	gate    Gate

	// Fault-aware membership (serving degraded mode). When view is set,
	// collectives synchronise over the live ranks only and an in-flight
	// collective aborts (panics fault.Aborted) the instant a member dies, so
	// participants can retry under the new view.
	view    *fault.View
	attGen  []int      // per-rank membership generation captured by Begin
	arrived int        // live arrivals in the current barrier cycle
	release int        // completed barrier cycles
	bcond   *sim.Event // trigger-and-replace wakeup for barrier waiters
}

// SetGate installs a communication-kernel launch gate (one per worker
// group). Must be set before any collective runs.
func (c *Communicator) SetGate(g Gate) { c.gate = g }

// SetView makes the communicator membership-aware: barriers release when all
// LIVE ranks have arrived, transfers to dead ranks are skipped, and a death
// mid-collective aborts every participant of the in-flight attempt. Callers
// must bracket each collective sequence with Begin.
func (c *Communicator) SetView(v *fault.View) {
	c.view = v
	c.attGen = make([]int, c.N)
	c.bcond = c.Machine.Eng.NewEvent()
	v.OnChange(func() {
		// A member died: void the in-flight attempt. Arrivals reset, posted
		// payloads are dropped, and every waiter wakes to observe the stale
		// generation and unwind.
		c.arrived = 0
		for i := range c.slots {
			c.slots[i] = nil
		}
		c.notify()
	})
}

// Begin opens a collective attempt for rank under the current membership
// generation. Call it before the first collective of each retryable unit of
// work (e.g. one serving round); every collective in the unit aborts if the
// membership changes before the unit completes.
func (c *Communicator) Begin(rank int) {
	if c.view != nil {
		c.attGen[rank] = c.view.Gen()
	}
}

// check unwinds rank's attempt if its membership generation is stale.
func (c *Communicator) check(rank int) {
	if c.view != nil && c.attGen[rank] != c.view.Gen() {
		panic(fault.Aborted{Gen: c.attGen[rank]})
	}
}

// alive reports whether rank q participates in collectives.
func (c *Communicator) alive(q int) bool {
	return c.view == nil || c.view.Alive(q)
}

// notify wakes all barrier waiters (trigger-and-replace).
func (c *Communicator) notify() {
	ev := c.bcond
	c.bcond = c.Machine.Eng.NewEvent()
	ev.Trigger()
}

// arrive is the collective barrier: the plain cyclic barrier without a view,
// or a membership-aware one that releases when all live ranks have arrived
// and aborts waiters whose attempt generation went stale.
func (c *Communicator) arrive(p *sim.Proc, rank int) {
	if c.view == nil {
		c.barrier.Arrive(p)
		return
	}
	c.check(rank)
	c.arrived++
	if c.arrived >= c.view.LiveCount() {
		c.arrived = 0
		c.release++
		c.notify()
		return
	}
	my := c.release
	for c.release == my {
		c.bcond.Wait(p)
		c.check(rank)
	}
}

// enter/exit bracket one collective with the gate, if any.
func (c *Communicator) enter(p *sim.Proc, rank int) {
	c.check(rank)
	if c.gate != nil {
		c.gate.Enter(p, rank)
	}
}

func (c *Communicator) exit(rank int) {
	if c.gate != nil {
		c.gate.Exit(rank)
	}
}

// New creates a communicator over all GPUs of the machine.
func New(m *hw.Machine) *Communicator {
	n := len(m.GPUs)
	return &Communicator{
		Machine: m,
		N:       n,
		barrier: m.Eng.NewBarrier(n),
		slots:   make([]any, n),
	}
}

// sizeHeaderBytes is the per-peer size-notification message preceding each
// all-to-all (the "notify the amount of data" step in the paper).
const sizeHeaderBytes = 8

// AllToAll exchanges slices: rank r's out[q] is delivered as the return
// value's [r] on rank q. elemBytes is the wire size of one element; class
// tags the traffic for accounting. Must be called by all ranks.
func AllToAll[T any](c *Communicator, p *sim.Proc, rank int, out [][]T, elemBytes int, class hw.TrafficClass) [][]T {
	if len(out) != c.N {
		panic(fmt.Sprintf("comm: rank %d posted %d buffers for %d ranks", rank, len(out), c.N))
	}
	if c.N == 1 {
		return [][]T{out[0]}
	}
	c.enter(p, rank)
	defer c.exit(rank)
	// Post and synchronise so every rank's payload is visible.
	c.slots[rank] = out
	c.arrive(p, rank)
	// Collect (data is valid now; timing is enforced below). Dead ranks
	// contribute nothing — their in[q] stays nil (empty).
	in := make([][]T, c.N)
	for q := 0; q < c.N; q++ {
		if !c.alive(q) || c.slots[q] == nil {
			continue
		}
		in[q] = c.slots[q].([][]T)[rank]
	}
	// Timed wire movement: size headers then payloads, charged to the
	// sender in deterministic peer order. Nothing is sent to dead ranks.
	dev := c.Machine.GPUs[rank]
	for i := 1; i < c.N; i++ {
		q := (rank + i) % c.N
		if !c.alive(q) {
			continue
		}
		dev.Transfer(p, c.Machine.Fabric, q, sizeHeaderBytes, hw.TrafficOther)
		if n := int64(len(out[q])) * int64(elemBytes); n > 0 {
			dev.Transfer(p, c.Machine.Fabric, q, n, class)
		}
	}
	c.arrive(p, rank)
	return in
}

// AllGather delivers every rank's slice to every rank, indexed by rank.
func AllGather[T any](c *Communicator, p *sim.Proc, rank int, data []T, elemBytes int, class hw.TrafficClass) [][]T {
	out := make([][]T, c.N)
	for q := range out {
		if q != rank {
			out[q] = data
		}
	}
	in := AllToAll(c, p, rank, out, elemBytes, class)
	in[rank] = data
	return in
}

// AllReduceSum sums float32 vectors across ranks in place, charging
// ring-allreduce wire time (2(n-1) chunk steps around the ring). Every rank
// computes the same bitwise result (summation in rank order), preserving the
// BSP guarantee that all model replicas stay identical.
func (c *Communicator) AllReduceSum(p *sim.Proc, rank int, data []float32, class hw.TrafficClass) {
	c.AllReduceSumScaled(p, rank, data, class, 1)
}

// AllReduceSumScaled is AllReduceSum with the charged wire bytes divided by
// wireDiv (>= 1). The benchmark harness scales the model-gradient volume by
// the batch-size ratio of its scaled stand-ins so gradient traffic keeps
// its paper-relative weight ("gradient communication is usually much
// cheaper than graph sampling and feature loading").
func (c *Communicator) AllReduceSumScaled(p *sim.Proc, rank int, data []float32, class hw.TrafficClass, wireDiv float64) {
	if c.N == 1 {
		return
	}
	if wireDiv < 1 {
		wireDiv = 1
	}
	c.enter(p, rank)
	defer c.exit(rank)
	c.slots[rank] = data
	c.arrive(p, rank)
	// Deterministic, rank-order reduction into a fresh buffer (live ranks
	// only under a membership view).
	sum := make([]float32, len(data))
	live := 0
	for q := 0; q < c.N; q++ {
		if !c.alive(q) || c.slots[q] == nil {
			continue
		}
		live++
		peer := c.slots[q].([]float32)
		for i, v := range peer {
			sum[i] += v
		}
	}
	// Timed ring: each rank sends 2(live-1) chunks of len/live to its live
	// successor.
	dev := c.Machine.GPUs[rank]
	next := (rank + 1) % c.N
	if c.view != nil {
		next = c.view.NextLive(rank)
	}
	chunk := int64(float64(len(data)) * 4 / float64(live) / wireDiv)
	if chunk < 1 {
		chunk = 1
	}
	for step := 0; step < 2*(live-1); step++ {
		dev.Transfer(p, c.Machine.Fabric, next, chunk, class)
	}
	c.arrive(p, rank)
	copy(data, sum)
	c.arrive(p, rank)
}

// Broadcast sends root's slice to all ranks (returned; root gets its own).
func Broadcast[T any](c *Communicator, p *sim.Proc, rank, root int, data []T, elemBytes int, class hw.TrafficClass) []T {
	if c.N == 1 {
		return data
	}
	c.enter(p, rank)
	defer c.exit(rank)
	if rank == root {
		c.slots[root] = data
	}
	c.arrive(p, rank)
	got := c.slots[root].([]T)
	if rank == root {
		dev := c.Machine.GPUs[rank]
		for i := 1; i < c.N; i++ {
			q := (rank + i) % c.N
			if !c.alive(q) {
				continue
			}
			dev.Transfer(p, c.Machine.Fabric, q, int64(len(data))*int64(elemBytes), class)
		}
	}
	c.arrive(p, rank)
	return got
}

// Barrier synchronises the group without moving data. rank identifies the
// caller for membership-aware synchronisation (ignored without a view).
func (c *Communicator) Barrier(p *sim.Proc, rank int) {
	if c.N == 1 {
		return
	}
	c.arrive(p, rank)
}
