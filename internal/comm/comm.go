// Package comm implements NCCL-style collectives (all-to-all, allreduce,
// allgather, broadcast) over the simulated NVLink fabric.
//
// A Communicator is shared by one group of peer workers (one per GPU) — DSP
// creates one communicator per worker type (sampler, loader, trainer), just
// as the real system creates one NCCL communicator per worker group. Within
// a communicator all ranks must invoke the same collectives in the same
// order; ordering ACROSS communicators on a GPU is the province of the
// centralized communication coordination scheme (internal/pipeline).
//
// Collectives move real Go data between ranks (node ids, feature rows,
// gradients) while charging virtual time for the wire transfers, following
// the paper's protocol: each rank first notifies peers of the sizes they
// will receive, then the payload moves via all-to-all over NVLink.
package comm

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Gate is an optional launch arbiter for communication kernels. When set on
// a communicator, every collective passes through Enter before touching its
// peers and Exit when done — this is where the pipeline package's
// centralized communication coordination (CCC) plugs in.
type Gate interface {
	Enter(p *sim.Proc, gpu int)
	Exit(gpu int)
}

// Communicator coordinates one group of peer processes, one per GPU.
type Communicator struct {
	Machine *hw.Machine
	N       int

	barrier *sim.Barrier
	slots   []any // per-rank posted payload for the in-flight collective
	gate    Gate
}

// SetGate installs a communication-kernel launch gate (one per worker
// group). Must be set before any collective runs.
func (c *Communicator) SetGate(g Gate) { c.gate = g }

// enter/exit bracket one collective with the gate, if any.
func (c *Communicator) enter(p *sim.Proc, rank int) {
	if c.gate != nil {
		c.gate.Enter(p, rank)
	}
}

func (c *Communicator) exit(rank int) {
	if c.gate != nil {
		c.gate.Exit(rank)
	}
}

// New creates a communicator over all GPUs of the machine.
func New(m *hw.Machine) *Communicator {
	n := len(m.GPUs)
	return &Communicator{
		Machine: m,
		N:       n,
		barrier: m.Eng.NewBarrier(n),
		slots:   make([]any, n),
	}
}

// sizeHeaderBytes is the per-peer size-notification message preceding each
// all-to-all (the "notify the amount of data" step in the paper).
const sizeHeaderBytes = 8

// AllToAll exchanges slices: rank r's out[q] is delivered as the return
// value's [r] on rank q. elemBytes is the wire size of one element; class
// tags the traffic for accounting. Must be called by all ranks.
func AllToAll[T any](c *Communicator, p *sim.Proc, rank int, out [][]T, elemBytes int, class hw.TrafficClass) [][]T {
	if len(out) != c.N {
		panic(fmt.Sprintf("comm: rank %d posted %d buffers for %d ranks", rank, len(out), c.N))
	}
	if c.N == 1 {
		return [][]T{out[0]}
	}
	c.enter(p, rank)
	defer c.exit(rank)
	// Post and synchronise so every rank's payload is visible.
	c.slots[rank] = out
	c.barrier.Arrive(p)
	// Collect (data is valid now; timing is enforced below).
	in := make([][]T, c.N)
	for q := 0; q < c.N; q++ {
		in[q] = c.slots[q].([][]T)[rank]
	}
	// Timed wire movement: size headers then payloads, charged to the
	// sender in deterministic peer order.
	dev := c.Machine.GPUs[rank]
	for i := 1; i < c.N; i++ {
		q := (rank + i) % c.N
		dev.Transfer(p, c.Machine.Fabric, q, sizeHeaderBytes, hw.TrafficOther)
		if n := int64(len(out[q])) * int64(elemBytes); n > 0 {
			dev.Transfer(p, c.Machine.Fabric, q, n, class)
		}
	}
	c.barrier.Arrive(p)
	return in
}

// AllGather delivers every rank's slice to every rank, indexed by rank.
func AllGather[T any](c *Communicator, p *sim.Proc, rank int, data []T, elemBytes int, class hw.TrafficClass) [][]T {
	out := make([][]T, c.N)
	for q := range out {
		if q != rank {
			out[q] = data
		}
	}
	in := AllToAll(c, p, rank, out, elemBytes, class)
	in[rank] = data
	return in
}

// AllReduceSum sums float32 vectors across ranks in place, charging
// ring-allreduce wire time (2(n-1) chunk steps around the ring). Every rank
// computes the same bitwise result (summation in rank order), preserving the
// BSP guarantee that all model replicas stay identical.
func (c *Communicator) AllReduceSum(p *sim.Proc, rank int, data []float32, class hw.TrafficClass) {
	c.AllReduceSumScaled(p, rank, data, class, 1)
}

// AllReduceSumScaled is AllReduceSum with the charged wire bytes divided by
// wireDiv (>= 1). The benchmark harness scales the model-gradient volume by
// the batch-size ratio of its scaled stand-ins so gradient traffic keeps
// its paper-relative weight ("gradient communication is usually much
// cheaper than graph sampling and feature loading").
func (c *Communicator) AllReduceSumScaled(p *sim.Proc, rank int, data []float32, class hw.TrafficClass, wireDiv float64) {
	if c.N == 1 {
		return
	}
	if wireDiv < 1 {
		wireDiv = 1
	}
	c.enter(p, rank)
	defer c.exit(rank)
	c.slots[rank] = data
	c.barrier.Arrive(p)
	// Deterministic, rank-order reduction into a fresh buffer.
	sum := make([]float32, len(data))
	for q := 0; q < c.N; q++ {
		peer := c.slots[q].([]float32)
		for i, v := range peer {
			sum[i] += v
		}
	}
	// Timed ring: each rank sends 2(n-1) chunks of len/n to its successor.
	dev := c.Machine.GPUs[rank]
	next := (rank + 1) % c.N
	chunk := int64(float64(len(data)) * 4 / float64(c.N) / wireDiv)
	if chunk < 1 {
		chunk = 1
	}
	for step := 0; step < 2*(c.N-1); step++ {
		dev.Transfer(p, c.Machine.Fabric, next, chunk, class)
	}
	c.barrier.Arrive(p)
	copy(data, sum)
	c.barrier.Arrive(p)
}

// Broadcast sends root's slice to all ranks (returned; root gets its own).
func Broadcast[T any](c *Communicator, p *sim.Proc, rank, root int, data []T, elemBytes int, class hw.TrafficClass) []T {
	if c.N == 1 {
		return data
	}
	c.enter(p, rank)
	defer c.exit(rank)
	if rank == root {
		c.slots[root] = data
	}
	c.barrier.Arrive(p)
	got := c.slots[root].([]T)
	if rank == root {
		dev := c.Machine.GPUs[rank]
		for i := 1; i < c.N; i++ {
			q := (rank + i) % c.N
			dev.Transfer(p, c.Machine.Fabric, q, int64(len(data))*int64(elemBytes), class)
		}
	}
	c.barrier.Arrive(p)
	return got
}

// Barrier synchronises the group without moving data.
func (c *Communicator) Barrier(p *sim.Proc) {
	if c.N == 1 {
		return
	}
	c.barrier.Arrive(p)
}
