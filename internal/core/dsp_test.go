package core_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/train"
)

func testData(t testing.TB, nGPU int) *train.Data {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "itest", Nodes: 20000, AvgDegree: 15, FeatDim: 32,
		NumClasses: 8, Seed: 404,
	})
	td := train.Prepare(d, nGPU, 1, true)
	return td
}

func smallOpts(td *train.Data) train.Options {
	return train.Options{
		Data:      td,
		Model:     nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 32, Classes: td.NumClasses, Layers: 2},
		Sample:    sample.Config{Fanout: []int{10, 8}},
		BatchSize: 512,
		Pipeline:  true,
		UseCCC:    true,
		Seed:      77,
	}
}

func TestDSPRunsAcrossGPUCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		td := testData(t, n)
		sys, err := core.New(smallOpts(td))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if st.EpochTime <= 0 {
			t.Fatalf("n=%d: epoch time %v", n, st.EpochTime)
		}
		if len(st.Utilization) != n {
			t.Fatalf("n=%d: %d utilizations", n, len(st.Utilization))
		}
		if n > 1 && st.SampleWire == 0 {
			t.Errorf("n=%d: no sampling communication recorded", n)
		}
	}
}

func TestDSPPipelineFasterThanSeq(t *testing.T) {
	// Figure 12's direction: the pipeline beats sequential execution, and
	// produces higher GPU utilization (Figure 6).
	td := testData(t, 4)
	run := func(pipelined bool) (epoch train.EpochStats) {
		o := smallOpts(td)
		o.Pipeline = pipelined
		sys, err := core.New(o)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(false)
	pipe := run(true)
	if pipe.EpochTime >= seq.EpochTime {
		t.Fatalf("pipeline (%v) not faster than DSP-Seq (%v)", pipe.EpochTime, seq.EpochTime)
	}
	var pipeU, seqU float64
	for i := range pipe.Utilization {
		pipeU += pipe.Utilization[i]
		seqU += seq.Utilization[i]
	}
	if pipeU <= seqU {
		t.Errorf("pipeline utilization %v not above sequential %v", pipeU/4, seqU/4)
	}
}

func TestDSPBSPReplicasIdentical(t *testing.T) {
	// After real training, every GPU's model replica must be bitwise equal
	// (the BSP guarantee), and pipeline vs sequential must produce the
	// exact same model.
	td := testData(t, 4)
	runModel := func(pipelined bool) []float32 {
		o := smallOpts(td)
		o.Pipeline = pipelined
		o.RealCompute = true
		sys, err := core.New(o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunEpoch(0); err != nil {
			t.Fatal(err)
		}
		// All replicas identical?
		m0 := sys.Model()
		buf0 := make([]float32, m0.ParamCount())
		m0.ParamVector(buf0)
		return buf0
	}
	a := runModel(true)
	b := runModel(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pipeline and sequential models diverge at %d", i)
		}
	}
}

func TestDSPAllReplicasEqualAfterEpoch(t *testing.T) {
	td := testData(t, 2)
	o := smallOpts(td)
	o.RealCompute = true
	sys, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	// Access both replicas through the trainer by re-running Model()
	// per-rank: Model() returns rank 0; compare via exported trainer.
	// Instead verify accuracy is sane and loss finite.
	st, err := sys.RunEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seen == 0 {
		t.Fatal("no seeds trained")
	}
	if st.Acc() <= 0 {
		t.Fatal("zero training accuracy after an epoch")
	}
}

func TestDSPLearnsRealTask(t *testing.T) {
	// Accuracy on validation nodes should clearly beat chance after a few
	// epochs of real multi-GPU training.
	td := testData(t, 2)
	o := smallOpts(td)
	o.RealCompute = true
	sys, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if _, err := sys.RunEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	acc := train.Evaluate(td, sys.Model(), o.Sample, 500, 9)
	chance := 1.0 / float64(td.NumClasses)
	if acc < 3*chance {
		t.Fatalf("validation accuracy %.3f after 3 epochs (chance %.3f)", acc, chance)
	}
}

func TestBaselinesRunAndMatchDSPSamples(t *testing.T) {
	td := testData(t, 2)
	o := smallOpts(td)
	for _, kind := range []baselines.Kind{baselines.PyG, baselines.DGLCPU, baselines.DGLUVA, baselines.Quiver} {
		sys, err := baselines.New(kind, o)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if st.EpochTime <= 0 {
			t.Fatalf("%v: epoch time %v", kind, st.EpochTime)
		}
	}
}

func TestDSPFasterThanAllBaselines(t *testing.T) {
	// Table 4's headline: DSP wins on every dataset/GPU count. Checked here
	// on one mid-size configuration.
	td := testData(t, 4)
	o := smallOpts(td)
	dsp, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	dspStat, err := dsp.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []baselines.Kind{baselines.PyG, baselines.DGLCPU, baselines.DGLUVA, baselines.Quiver} {
		sys, err := baselines.New(kind, o)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		if dspStat.EpochTime >= st.EpochTime {
			t.Errorf("DSP (%v) not faster than %v (%v)", dspStat.EpochTime, kind, st.EpochTime)
		}
	}
}

func TestSamplingEpochOrdering(t *testing.T) {
	// Table 6's direction: CSP sampling beats UVA sampling beats CPU
	// sampling.
	td := testData(t, 4)
	o := smallOpts(td)
	dsp, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	dspStat, err := dsp.RunSampleEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	times := map[baselines.Kind]float64{}
	for _, kind := range []baselines.Kind{baselines.DGLCPU, baselines.DGLUVA} {
		sys, err := baselines.New(kind, o)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunSampleEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		times[kind] = float64(st.SampleTime)
	}
	if float64(dspStat.SampleTime) >= times[baselines.DGLUVA] {
		t.Errorf("CSP sampling (%v) not faster than UVA (%v)", dspStat.SampleTime, times[baselines.DGLUVA])
	}
	if times[baselines.DGLUVA] >= times[baselines.DGLCPU] {
		t.Errorf("UVA sampling (%v) not faster than CPU (%v)", times[baselines.DGLUVA], times[baselines.DGLCPU])
	}
}

func TestDSPSamplingCommBelowUVA(t *testing.T) {
	// Figure 1's direction: CSP moves far fewer wire bytes than UVA
	// sampling for the same batches.
	td := testData(t, 4)
	o := smallOpts(td)
	dsp, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dsp.RunSampleEpoch(0); err != nil {
		t.Fatal(err)
	}
	uva, err := baselines.New(baselines.DGLUVA, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uva.RunSampleEpoch(0); err != nil {
		t.Fatal(err)
	}
	dspWire := dsp.World().SamplingCommVolume()
	uvaSample := uva.Machine().Fabric.Counters.TotalWire(hw.TrafficSample)
	if dspWire >= uvaSample {
		t.Fatalf("CSP wire bytes %d not below UVA %d", dspWire, uvaSample)
	}
}

func TestDSPFeatureCacheBudgetRespected(t *testing.T) {
	td := testData(t, 2)
	o := smallOpts(td)
	o.FeatureCacheBudget = int64(50 * td.RowBytes())
	sys, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if got := sys.Store().CacheBytes(g); got > o.FeatureCacheBudget {
			t.Fatalf("GPU %d cache %d exceeds budget %d", g, got, o.FeatureCacheBudget)
		}
	}
	if _, err := sys.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	// Tiny cache must force UVA feature traffic.
	st, err := sys.RunEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.FeatureWire == 0 {
		t.Error("no feature wire traffic despite tiny cache")
	}
}

func TestDSPMultiEpochStableAndDeterministic(t *testing.T) {
	td := testData(t, 2)
	run := func() []float64 {
		sys, err := core.New(smallOpts(td))
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		for e := 0; e < 3; e++ {
			st, err := sys.RunEpoch(e)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, float64(st.EpochTime))
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d time not reproducible: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBaselineSamplesIdenticalToDSPBatches(t *testing.T) {
	// The Figure 9a premise: same schedule + same seeds = same samples.
	td := testData(t, 2)
	o := smallOpts(td)
	uva, err := baselines.New(baselines.DGLUVA, o)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct a DSP batch with the reference sampler (csp tests prove
	// CSP == Reference) and check the baseline uses the same one.
	sched := train.NewSchedule(td, o.BatchSize)
	seeds := sched.Batch(td, o.Seed, 0, 0, 1)
	mb := sample.Reference(td.G, seeds, o.Sample, train.BatchSeed(o.Seed, 0, 0, 1))
	if !uva.SamplesMatchDSP(0, 0, 1, mb) {
		t.Fatal("baseline batch differs from DSP batch")
	}
}

func TestDSPWithoutCCCStillRunsSequential(t *testing.T) {
	// Without the pipeline there is only one worker per GPU, so even
	// without CCC no deadlock is possible.
	td := testData(t, 2)
	o := smallOpts(td)
	o.Pipeline = false
	o.UseCCC = false
	sys, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
}

func TestDSPReplicatedCacheAblation(t *testing.T) {
	// Partitioned cache yields more aggregate rows and fewer UVA bytes
	// than a replicated cache under the same budget.
	td := testData(t, 4)
	run := func(replicated bool) int64 {
		o := smallOpts(td)
		o.ReplicatedCache = replicated
		o.FeatureCacheBudget = int64(400 * td.RowBytes())
		sys, err := core.New(o)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		_ = st
		return sys.Machine().Fabric.Counters.PCIeBytes[hw.TrafficFeature]
	}
	part := run(false)
	repl := run(true)
	if part >= repl {
		t.Fatalf("partitioned cache PCIe feature bytes %d not below replicated %d", part, repl)
	}
}

func TestRandomWalkEpoch(t *testing.T) {
	td := testData(t, 2)
	sys, err := core.New(smallOpts(td))
	if err != nil {
		t.Fatal(err)
	}
	paths, dur, err := sys.RandomWalkEpoch(5)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("walk consumed no virtual time")
	}
	total := 0
	for _, ps := range paths {
		total += len(ps)
	}
	want := len(td.Shards[0]) + len(td.Shards[1])
	if total != want {
		t.Fatalf("walked %d paths, want %d", total, want)
	}
}

func TestDSPMultiWorkerBSPIdentical(t *testing.T) {
	// Multiple sampler/loader instances must not change training results:
	// the trainer consumes steps in order, so the model is bitwise equal to
	// the single-worker run.
	td := testData(t, 2)
	runModel := func(samplers, loaders int) []float32 {
		o := smallOpts(td)
		o.RealCompute = true
		o.NumSamplers = samplers
		o.NumLoaders = loaders
		sys, err := core.New(o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunEpoch(0); err != nil {
			t.Fatal(err)
		}
		buf := make([]float32, sys.Model().ParamCount())
		sys.Model().ParamVector(buf)
		return buf
	}
	single := runModel(1, 1)
	multi := runModel(3, 2)
	for i := range single {
		if single[i] != multi[i] {
			t.Fatalf("multi-worker model diverges at %d", i)
		}
	}
}

func TestDSPUnfusedSamplingSlower(t *testing.T) {
	// The async (one kernel per task) alternative of §4.1 must lose to the
	// fused design.
	td := testData(t, 4)
	run := func(unfused bool) float64 {
		o := smallOpts(td)
		o.UnfusedSampling = unfused
		sys, err := core.New(o)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunSampleEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.SampleTime)
	}
	fused := run(false)
	unfused := run(true)
	if unfused <= fused {
		t.Fatalf("unfused sampling (%g) not slower than fused (%g)", unfused, fused)
	}
}

func TestDSPTrainsGAT(t *testing.T) {
	// The attention model trains end to end through the full system.
	td := testData(t, 2)
	o := smallOpts(td)
	o.Model = nn.Config{Arch: nn.GAT, InDim: td.FeatDim, Hidden: 16, Classes: td.NumClasses, Layers: 2}
	o.RealCompute = true
	o.LR = 0.01
	sys, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		if _, err := sys.RunEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	acc := train.Evaluate(td, sys.Model(), o.Sample, 400, 4)
	if chance := 1.0 / float64(td.NumClasses); acc < 2*chance {
		t.Fatalf("GAT through DSP stuck at %.3f", acc)
	}
}
