package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/train"
)

func TestMultiDSPRuns(t *testing.T) {
	td := testData(t, 2)
	o := smallOpts(td)
	sys, err := core.NewMulti(o, 2, hw.InfiniBandEDR())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.EpochTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if len(st.Utilization) != 4 {
		t.Fatalf("expected 4 GPU utilizations (2x2), got %d", len(st.Utilization))
	}
	if st.InterWire == 0 {
		t.Error("no inter-machine traffic despite partitioned cold features")
	}
}

func TestMultiDSPSingleMachineMatchesDSP(t *testing.T) {
	// One machine degenerates to the single-machine system bitwise: same
	// batches, same seeds, same model after an epoch.
	td := testData(t, 2)
	o := smallOpts(td)
	o.RealCompute = true

	single, err := core.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	multi, err := core.NewMulti(o, 1, hw.InfiniBandEDR())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	a := make([]float32, single.Model().ParamCount())
	b := make([]float32, multi.Model().ParamCount())
	single.Model().ParamVector(a)
	multi.Model().ParamVector(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("1-machine MultiDSP diverges from DSP at param %d", i)
		}
	}
}

func TestMultiDSPBSPAcrossMachines(t *testing.T) {
	// Training accuracy improves and gradients synchronise globally: two
	// machines see twice the seeds per epoch, and the model still learns.
	td := testData(t, 2)
	o := smallOpts(td)
	o.RealCompute = true
	sys, err := core.NewMulti(o, 2, hw.InfiniBandEDR())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if _, err := sys.RunEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	acc := train.Evaluate(td, sys.Model(), o.Sample, 500, 9)
	if chance := 1.0 / float64(td.NumClasses); acc < 3*chance {
		t.Fatalf("cluster training stuck at %.3f", acc)
	}
}

func TestMultiDSPScalesAcrossMachines(t *testing.T) {
	// Doubling machines roughly halves epoch time (each machine consumes a
	// stride of the seeds), minus NIC costs.
	td := testData(t, 2)
	o := smallOpts(td)
	run := func(machines int) float64 {
		sys, err := core.NewMulti(o, machines, hw.InfiniBandEDR())
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.RunEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.EpochTime)
	}
	one := run(1)
	two := run(2)
	if two >= one {
		t.Fatalf("2 machines (%g) not faster than 1 (%g)", two, one)
	}
	if two < one/3 {
		t.Fatalf("2 machines suspiciously fast: %g vs %g", two, one)
	}
}

func TestMultiDSPOnlyColdAndGradOverNIC(t *testing.T) {
	// Paper: "the machines only communicate for cold features and model
	// synchronization" — sampling never crosses the NIC.
	td := testData(t, 2)
	o := smallOpts(td)
	// Force cold rows to exist: cache only a sliver of the features.
	o.FeatureCacheBudget = int64(100 * td.RowBytes())
	sys, err := core.NewMulti(o, 2, hw.InfiniBandEDR())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	net := sys.Cluster().Net
	if net.Bytes[hw.TrafficSample] != 0 {
		t.Errorf("sampling crossed the NIC: %d bytes", net.Bytes[hw.TrafficSample])
	}
	if net.Bytes[hw.TrafficFeature] == 0 {
		t.Error("no cold-feature NIC traffic")
	}
	if net.Bytes[hw.TrafficGradient] == 0 {
		t.Error("no gradient NIC traffic")
	}
}
