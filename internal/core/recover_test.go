package core_test

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/train"
)

func recoverOpts(td *train.Data, faults []fault.Fault) train.Options {
	return train.Options{
		Data:        td,
		Model:       nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 16, Classes: td.NumClasses, Layers: 2},
		Sample:      sample.Config{Fanout: []int{8, 6}},
		BatchSize:   512,
		Pipeline:    true,
		UseCCC:      true,
		RealCompute: true,
		Seed:        77,
		Faults:      faults,
	}
}

// runFT drives a full FT run and returns the report plus final parameters.
func runFT(t *testing.T, td *train.Data, faults []fault.Fault, epochs, ckptEvery int) (*train.FTReport, []float32) {
	t.Helper()
	build := func() (train.Recoverable, error) {
		return core.New(recoverOpts(td, faults))
	}
	sys, err := build()
	if err != nil {
		t.Fatal(err)
	}
	mgr := &ckpt.Manager{EverySteps: ckptEvery}
	rep, err := train.RunRecoverable(sys, epochs, mgr, build)
	if err != nil {
		t.Fatalf("FT run: %v", err)
	}
	last := mgr.Last()
	if last == nil {
		t.Fatalf("no final checkpoint")
	}
	return rep, last.Params
}

// TestCrashRecoveryMatchesCrashFreeRun is the headline acceptance test: a
// training run with a mid-epoch GPU crash checkpoints, recovers on a rebuilt
// fleet, and converges to the same final parameters — bit for bit — as a
// crash-free run with the same seed and checkpoint cadence.
func TestCrashRecoveryMatchesCrashFreeRun(t *testing.T) {
	td := testData(t, 4)
	crash := []fault.Fault{{Kind: fault.Crash, GPU: 2, At: 0.005}}

	clean, cleanParams := runFT(t, td, nil, 2, 4)
	crashed, crashedParams := runFT(t, td, crash, 2, 4)

	if len(clean.Recoveries) != 0 {
		t.Fatalf("crash-free run recorded %d recoveries", len(clean.Recoveries))
	}
	if len(crashed.Recoveries) == 0 {
		t.Fatalf("crash run recorded no recoveries (fault never fired?)")
	}
	rec := crashed.Recoveries[0]
	if rec.GPU != 2 {
		t.Errorf("recovery blamed GPU %d, want 2", rec.GPU)
	}
	if rec.MTTR <= 0 || rec.RestoreTime <= 0 {
		t.Errorf("recovery stats not populated: %+v", rec)
	}
	if crashed.TotalTime <= clean.TotalTime {
		t.Errorf("crashed run (%v) not slower than clean run (%v)", crashed.TotalTime, clean.TotalTime)
	}
	if len(cleanParams) == 0 || len(cleanParams) != len(crashedParams) {
		t.Fatalf("param vectors missing or mismatched: %d vs %d", len(cleanParams), len(crashedParams))
	}
	for i := range cleanParams {
		if cleanParams[i] != crashedParams[i] {
			t.Fatalf("param %d differs after recovery: %g vs %g (resume must be bit-identical)",
				i, cleanParams[i], crashedParams[i])
		}
	}
	// Epoch training stats are merged segment-by-segment in the same order,
	// so the loss curves match bitwise too.
	for e := range clean.Epochs {
		c, x := clean.Epochs[e], crashed.Epochs[e]
		if c.Loss != x.Loss || c.Correct != x.Correct || c.Seen != x.Seen {
			t.Fatalf("epoch %d stats diverge: clean %+v crashed %+v", e, c, x)
		}
	}
	// A crashed segment never committed, and its replay commits exactly once
	// — so both runs commit the same checkpoint sequence.
	if crashed.Ckpt.Checkpoints != clean.Ckpt.Checkpoints {
		t.Errorf("crashed run committed %d checkpoints, clean %d (want equal)",
			crashed.Ckpt.Checkpoints, clean.Ckpt.Checkpoints)
	}
	if pct := crashed.Ckpt.OverheadPercent(crashed.TotalTime); pct <= 0 || pct >= 50 {
		t.Errorf("checkpoint overhead %.2f%% out of plausible range", pct)
	}
}

// TestRecoverableRunDeterministic pins bit-identical repetition: two
// same-seed FT runs with the same crash schedule agree on every epoch stat,
// every recovery record and the final parameters.
func TestRecoverableRunDeterministic(t *testing.T) {
	td := testData(t, 4)
	crash := []fault.Fault{{Kind: fault.Crash, GPU: 1, At: 0.012}}
	rep1, p1 := runFT(t, td, crash, 2, 4)
	rep2, p2 := runFT(t, td, crash, 2, 4)
	if len(rep1.Recoveries) == 0 {
		t.Fatalf("crash never fired")
	}
	if len(rep1.Recoveries) != len(rep2.Recoveries) {
		t.Fatalf("recovery counts differ: %d vs %d", len(rep1.Recoveries), len(rep2.Recoveries))
	}
	for i := range rep1.Recoveries {
		if rep1.Recoveries[i] != rep2.Recoveries[i] {
			t.Fatalf("recovery %d differs:\n  %+v\n  %+v", i, rep1.Recoveries[i], rep2.Recoveries[i])
		}
	}
	if rep1.TotalTime != rep2.TotalTime {
		t.Fatalf("total time differs: %v vs %v", rep1.TotalTime, rep2.TotalTime)
	}
	for e := range rep1.Epochs {
		a, b := rep1.Epochs[e], rep2.Epochs[e]
		if a.Loss != b.Loss || a.EpochTime != b.EpochTime || a.Correct != b.Correct {
			t.Fatalf("epoch %d differs between same-seed runs", e)
		}
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d differs between same-seed runs", i)
		}
	}
}

// TestStallDelaysButDoesNotDiverge: a transient straggler slows the epoch but
// training completes with identical learning outcomes.
func TestStallDelaysButDoesNotDiverge(t *testing.T) {
	td := testData(t, 2)
	stall := []fault.Fault{{Kind: fault.Stall, GPU: 0, At: 0.002, Duration: 0.02}}
	clean, cleanParams := runFT(t, td, nil, 1, 0)
	slow, slowParams := runFT(t, td, stall, 1, 0)
	if len(slow.Recoveries) != 0 {
		t.Fatalf("stall should not trigger recovery, got %d", len(slow.Recoveries))
	}
	if slow.TotalTime <= clean.TotalTime {
		t.Errorf("stalled run (%v) not slower than clean (%v)", slow.TotalTime, clean.TotalTime)
	}
	for i := range cleanParams {
		if cleanParams[i] != slowParams[i] {
			t.Fatalf("stall changed training outcome at param %d", i)
		}
	}
}
