// Package core implements DSP — Distributed Sampling and Pipelining — the
// paper's multi-GPU GNN training system.
//
// Data layout: the graph topology is METIS-partitioned into patches, one per
// GPU (internal/csp); remaining device memory caches the hottest feature
// rows of each GPU's own patch, forming a partitioned aggregate cache
// (internal/featstore); seed nodes are co-partitioned with the topology.
//
// Per mini-batch, three workers run on every GPU: the sampler builds graph
// samples with the collective sampling primitive, the loader fetches
// features (NVLink all-to-all for hot rows, UVA for cold rows, in
// parallel), and the trainer computes gradients and allreduces them. The
// workers of different mini-batches overlap through bounded queues
// (capacity 2), and all communication kernels launch under centralized
// communication coordination to stay deadlock-free.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/csp"
	"repro/internal/fault"
	"repro/internal/featstore"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/prof"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/train"
)

// Worker ids for communication coordination.
const (
	samplerWorker = iota
	loaderWorker
	trainerWorker
)

// DSP is a configured instance of the system on a simulated machine.
type DSP struct {
	Opts train.Options

	m         *hw.Machine
	world     *csp.World
	store     *featstore.Store
	hostStore *store.Store
	cacheMgr  *cache.Manager
	coord     *pipeline.Coordinator

	loaderComm *comm.Communicator
	trainer    *train.Trainer
	sched      train.Schedule
	inj        *fault.Injector

	// strat owns the per-round gather/forward/backward orchestration
	// (internal/strategy): the migrated DSP path or the P3 push-pull mode.
	strat strategy.ExecutionStrategy

	// Multi-instance worker state (paper §5 ablation): extra sampler
	// worlds and loader communicators, one per instance.
	worlds      []*csp.World
	loaderComms []*comm.Communicator
}

// New builds a DSP instance: machine, partitioned topology, feature cache,
// communicators, coordinator and model replicas.
func New(opts train.Options) (*DSP, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	kind, err := strategy.Parse(opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if kind == strategy.KindP3 {
		// The P3 layout has no hot/cold rows and no per-row holders, so the
		// row-cache machinery and the degraded-mode re-routing built on it
		// do not apply. Reject loudly rather than silently misconfiguring.
		switch {
		case opts.ReplicatedCache:
			return nil, fmt.Errorf("core: -strategy p3 is incompatible with the replicated cache (features are dimension-sliced, not row-cached)")
		case opts.DynamicCache != cache.Static:
			return nil, fmt.Errorf("core: -strategy p3 is incompatible with dynamic cache policy %v (the dimension-sliced layout has no rows to rebalance)", opts.DynamicCache)
		case opts.FeatureCacheBudget > 0:
			return nil, fmt.Errorf("core: -strategy p3 ignores the feature cache budget: each GPU holds the full [#nodes, F/world] slice")
		case len(opts.Faults) > 0:
			return nil, fmt.Errorf("core: -strategy p3 does not support fault injection (no per-row holders to re-route around)")
		case opts.NumSamplers > 1 || opts.NumLoaders > 1:
			return nil, fmt.Errorf("core: -strategy p3 does not support multi-instance workers")
		}
	}
	d := opts.Data
	n := d.NumGPUs()
	s := &DSP{Opts: opts}
	s.m = hw.NewMachineScaled(n, opts.GPU, opts.CPU, opts.LatencyScale)
	s.m.Eng.SetParallelism(opts.Parallel)
	topoBudget := opts.TopoCacheBudget
	if topoBudget <= 0 {
		// Cache the whole patch when it fits; otherwise keep the hottest
		// adjacency lists within 60% of device memory (the paper: "DSP can
		// also handle large graph patches by storing the hot nodes in GPU
		// memory and the other nodes in CPU memory").
		topoBudget = opts.GPU.MemBytes * 6 / 10
	}
	var topo graph.Topology = d.G
	if opts.CompressTopology {
		topo = graph.Compress(d.G)
	}
	world, err := csp.NewWorldBudget(s.m, topo, d.Offsets, topoBudget)
	if err != nil {
		return nil, fmt.Errorf("core: topology layout: %w", err)
	}
	s.world = world
	if opts.OOC {
		hs, err := store.New(s.m.Eng, topo, d.G.NumNodes(), d.RowBytes(), store.Config{
			BlockNodes:   opts.OOCBlockNodes,
			CacheBytes:   opts.OOCBudget,
			Prefetch:     !opts.OOCNoPrefetch,
			LatencyScale: opts.LatencyScale,
		})
		if err != nil {
			return nil, fmt.Errorf("core: out-of-core store: %w", err)
		}
		s.hostStore = hs
		s.world.SetHostStore(hs)
	}

	// Reserve in-flight worker buffers BEFORE sizing the feature cache (see
	// the multi-instance note below): extra sampler/loader instances eat
	// directly into cache memory.
	nS, nL := opts.NumSamplers, opts.NumLoaders
	if nS < 1 {
		nS = 1
	}
	if nL < 1 {
		nL = 1
	}
	qc := opts.QueueCap
	if qc < 1 {
		qc = 2
	}
	// Every extra worker instance holds additional in-flight mini-batches
	// (graph samples + gathered features) in device memory — the first
	// reason the paper gives against the multi-instance design ("it
	// consumes more memory for in-flight works and thus leaves less GPU
	// memory to cache graph topology and node features").
	if extra := (nS - 1) + (nL - 1); extra > 0 {
		slots := int64(extra) * int64(qc)
		perSlot := int64(opts.BatchSize) * 32 * int64(d.RowBytes())
		for g := 0; g < n; g++ {
			dev := s.m.GPUs[g]
			want := slots * perSlot
			// In-flight buffers squeeze the feature cache down to nothing
			// before the build fails outright (leave a 5% floor so the
			// system still assembles; the cache just starves).
			if lim := dev.MemFree() * 95 / 100; want > lim {
				want = lim
			}
			if err := dev.Reserve(want); err != nil {
				return nil, fmt.Errorf("core: in-flight buffers for %d extra workers: %w", extra, err)
			}
		}
	}

	// Feature cache: topology first (the Figure 10 insight), features with
	// the remaining or configured budget.
	budget := opts.FeatureCacheBudget
	if budget <= 0 {
		budget = s.minFreeMem() * 9 / 10 // leave headroom for activations
	}
	policy := featstore.Policy(opts.CachePolicy)
	switch {
	case kind == strategy.KindP3:
		// P3: every GPU holds a full-row [#Nodes, F/world] column slice —
		// no hot/cold split, no budget knob; the slab either fits or the
		// Reserve below fails.
		s.store = featstore.BuildDimSliced(d.Feats, d.FeatDim, n)
	case opts.ReplicatedCache:
		s.store = featstore.BuildReplicated(d.G, d.Feats, d.FeatDim, n, budget, policy)
	default:
		s.store = featstore.BuildPartitioned(d.G, d.Feats, d.FeatDim, d.Offsets, budget, policy)
	}
	for g := 0; g < n; g++ {
		if err := s.m.GPUs[g].Reserve(s.store.CacheBytes(g)); err != nil {
			return nil, fmt.Errorf("core: feature cache: %w", err)
		}
	}
	mcfg := opts.CacheTune
	mcfg.Policy = opts.DynamicCache
	s.cacheMgr = cache.New(s.store, d.G, d.Offsets, mcfg)

	// Distinct CCC worker ids: samplers 0..nS-1, loaders nS..nS+nL-1,
	// trainer last.
	s.coord = pipeline.NewCoordinator(s.m.Eng, n, opts.UseCCC, 2)
	// The CLIs attach tracers to the machine after New returns, so the
	// coordinator resolves the tracer at launch time.
	s.coord.Tracer = func() *trace.Tracer { return s.m.GPUs[0].Tracer }
	s.worlds = []*csp.World{s.world}
	for i := 1; i < nS; i++ {
		s.worlds = append(s.worlds, s.world.Clone())
	}
	for j := 0; j < nL; j++ {
		s.loaderComms = append(s.loaderComms, comm.New(s.m))
	}
	s.loaderComm = s.loaderComms[0]
	trainerComm := comm.New(s.m)
	if opts.UseCCC {
		for i, w := range s.worlds {
			w.Comm.SetGate(s.coord.Gate(i))
		}
		for j, lc := range s.loaderComms {
			lc.SetGate(s.coord.Gate(nS + j))
		}
		trainerComm.SetGate(s.coord.Gate(nS + nL))
	}
	s.trainer = train.NewTrainer(opts, trainerComm)
	if kind == strategy.KindP3 {
		s.strat = strategy.NewP3(opts, s.m, s.store, s.trainer)
	} else {
		s.strat = strategy.NewDSP(opts, s.m, s.cacheMgr, s.hostStore, s.trainer)
	}
	s.sched = train.NewSchedule(d, opts.BatchSize)
	if len(opts.Faults) > 0 {
		inj, err := fault.NewInjector(s.m, opts.Faults)
		if err != nil {
			return nil, fmt.Errorf("core: fault schedule: %w", err)
		}
		s.inj = inj
		s.cacheMgr.SetView(inj.View())
	}
	return s, nil
}

func (s *DSP) minFreeMem() int64 {
	free := s.m.GPUs[0].MemFree()
	for _, g := range s.m.GPUs[1:] {
		if f := g.MemFree(); f < free {
			free = f
		}
	}
	return free
}

// Name implements train.System.
func (s *DSP) Name() string {
	if s.strat != nil && s.strat.Kind() == strategy.KindP3 {
		return "DSP-P3"
	}
	if s.Opts.Pipeline {
		return "DSP"
	}
	return "DSP-Seq"
}

// Strategy exposes the active execution strategy.
func (s *DSP) Strategy() strategy.ExecutionStrategy { return s.strat }

// StrategySection reports the strategy's wire/compute accounting for the
// run report (nil for the default DSP strategy, whose accounting already
// flows through the existing sections).
func (s *DSP) StrategySection() *prof.StrategySection { return s.strat.Section() }

// Machine implements train.System.
func (s *DSP) Machine() *hw.Machine { return s.m }

// AttachTelemetry registers the trainer's scrape sources on the hub and
// starts its scraper daemon on this instance's engine: per-GPU busy
// fractions, per-class wire bytes, cache-tier hit rate and out-of-core
// residency. Call before the first epoch; the scraper daemon survives
// each epoch's Run-to-quiescence, so one hub spans a multi-epoch loop.
func (s *DSP) AttachTelemetry(h *telemetry.Hub) {
	if !h.Enabled() {
		return
	}
	for g := range s.m.GPUs {
		dev := s.m.GPUs[g]
		h.Rate(fmt.Sprintf("gpu%d/busy", g), func(now sim.Time) float64 {
			return float64(dev.BusyAt(now))
		})
	}
	ctr := &s.m.Fabric.Counters
	h.Counter("wire/sample_bytes", func(sim.Time) float64 {
		return float64(ctr.TotalWire(hw.TrafficSample))
	})
	h.Counter("wire/feature_bytes", func(sim.Time) float64 {
		return float64(ctr.TotalWire(hw.TrafficFeature))
	})
	h.Counter("wire/gradient_bytes", func(sim.Time) float64 {
		return float64(ctr.TotalWire(hw.TrafficGradient))
	})
	if s.strat == nil || s.strat.Kind() != strategy.KindP3 {
		h.Gauge("cache/hit_rate", func(sim.Time) float64 {
			return s.cacheMgr.Stats().Tiers.HitRate()
		})
	}
	if s.hostStore != nil {
		h.Gauge("store/resident_bytes", func(sim.Time) float64 {
			return float64(s.hostStore.Stats().ResidentBytes)
		})
	}
	h.Start(s.m.Eng)
}

// Model implements train.System.
func (s *DSP) Model() *nn.Model {
	if len(s.trainer.Models) == 0 {
		return nil
	}
	return s.trainer.Models[0]
}

// Replicas returns every per-GPU model replica (empty in cost-only mode).
func (s *DSP) Replicas() []*nn.Model { return s.trainer.Models }

// Store exposes the feature cache (for cache-layout assertions in tests).
func (s *DSP) Store() *featstore.Store { return s.store }

// World exposes the CSP world (for comm-volume measurements).
func (s *DSP) World() *csp.World { return s.world }

// Compression merges the codec accounting of every communicator the system
// drives — sampler worlds, loader instances, and the gradient allreduce —
// into one per-traffic-class raw-vs-wire byte map.
func (s *DSP) Compression() map[hw.TrafficClass]comm.CompressionStats {
	out := map[hw.TrafficClass]comm.CompressionStats{}
	merge := func(m map[hw.TrafficClass]comm.CompressionStats) {
		for class, cs := range m {
			acc := out[class]
			acc.Raw += cs.Raw
			acc.Wire += cs.Wire
			out[class] = acc
		}
	}
	for _, w := range s.worlds {
		merge(w.Comm.Compression())
	}
	for _, lc := range s.loaderComms {
		merge(lc.Compression())
	}
	merge(s.trainer.Comm.Compression())
	return out
}

// sampleStage builds the step's graph samples via CSP (or the data-pull
// alternative when the Figure 11 ablation is selected).
func (s *DSP) sampleStage(p *sim.Proc, rank, epoch, step int) *sample.MiniBatch {
	return s.sampleStageWith(p, rank, epoch, step, s.world)
}

func (s *DSP) sampleStageWith(p *sim.Proc, rank, epoch, step int, w *csp.World) *sample.MiniBatch {
	seeds := s.sched.Batch(s.Opts.Data, s.Opts.Seed, epoch, step, rank)
	bs := train.BatchSeed(s.Opts.Seed, epoch, step, rank)
	var mb *sample.MiniBatch
	switch {
	case s.Opts.PullData:
		mb = w.PullDataSampleBatch(p, rank, seeds, s.Opts.Sample, bs)
	case s.Opts.UnfusedSampling:
		mb = w.SampleBatchUnfused(p, rank, seeds, s.Opts.Sample, bs)
	default:
		mb = w.SampleBatch(p, rank, seeds, s.Opts.Sample, bs)
	}
	return mb
}

// loadStage runs the active strategy's gather/exchange for the sampled
// batch: DSP's tiered feature fetch (local gather kernel, NVLink all-to-all
// for remote hot rows, UVA for cold rows in parallel) or P3's push-pull
// activation exchange. The orchestration bodies live in internal/strategy.
func (s *DSP) loadStage(p *sim.Proc, rank int, mb *sample.MiniBatch) strategy.Loaded {
	return s.strat.Load(p, rank, mb, s.loaderComm)
}

// RunEpoch implements train.System.
func (s *DSP) RunEpoch(epoch int) (train.EpochStats, error) {
	if s.Opts.Pipeline && (len(s.worlds) > 1 || len(s.loaderComms) > 1) {
		return s.runEpochMulti(epoch)
	}
	return s.RunEpochRange(epoch, 0, s.sched.Steps)
}

// RunEpochRange implements train.Recoverable: steps [from, to) of one epoch.
// When the range completes the epoch and a dynamic cache policy is selected,
// the shard rebalance runs at the boundary and its migration cost is charged
// to the epoch's virtual time.
func (s *DSP) RunEpochRange(epoch, from, to int) (train.EpochStats, error) {
	if len(s.worlds) > 1 || len(s.loaderComms) > 1 {
		return train.EpochStats{}, fmt.Errorf("core: fault tolerance is unsupported with multi-instance workers")
	}
	before := s.cacheMgr.Stats()
	var storeBefore store.Stats
	if s.hostStore != nil {
		storeBefore = s.hostStore.Stats()
	}
	st, err := train.RunEpochSteps(s.m, epoch, from, to, s.Opts.Pipeline, s.Opts.QueueCap, s.Opts.EffectiveStageOverhead(),
		func(rank int, st *train.EpochStats) pipeline.Stages {
			return pipeline.Stages{
				NumBatches: s.sched.Steps,
				Sample: func(p *sim.Proc, step int) interface{} {
					return s.sampleStage(p, rank, epoch, step)
				},
				Load: func(p *sim.Proc, step int, v interface{}) interface{} {
					return s.loadStage(p, rank, v.(*sample.MiniBatch))
				},
				Train: func(p *sim.Proc, step int, v interface{}) {
					s.strat.Train(p, rank, v.(strategy.Loaded), st)
				},
			}
		})
	if err != nil {
		return st, err
	}
	// Epoch-boundary adaptation (only when this range reaches the epoch's
	// end — checkpoint segments mid-epoch do not rebalance). RunEpochSteps
	// measures its own window, so the rebalance runs as a separate engine
	// pass and its duration is added to the epoch time explicitly.
	if to >= s.sched.Steps && s.cacheMgr.Dynamic() {
		t0 := s.m.Eng.Now()
		s.m.Eng.Go("cache/rebalance", func(p *sim.Proc) {
			s.cacheMgr.Rebalance(p, s.m.Fabric)
		})
		end, err := s.m.Eng.Run()
		if err != nil {
			return st, err
		}
		st.EpochTime += end - t0
	}
	after := s.cacheMgr.Stats()
	st.CacheLocal = after.Tiers.Local - before.Tiers.Local
	st.CachePeer = after.Tiers.Peer - before.Tiers.Peer
	st.CacheHost = after.Tiers.Host - before.Tiers.Host
	st.CachePromoted = after.Promoted - before.Promoted
	st.RebalanceBytes = after.MovedBytes - before.MovedBytes
	st.RebalanceTime = after.RebalanceTime - before.RebalanceTime
	if s.hostStore != nil {
		ss := s.hostStore.Stats()
		st.StoreHits = ss.Hits - storeBefore.Hits
		st.StoreMisses = ss.Misses - storeBefore.Misses
		st.StoreDemandBytes = ss.DemandBytes - storeBefore.DemandBytes
		st.StorePrefetchIssued = ss.PrefetchIssued - storeBefore.PrefetchIssued
		st.StorePrefetchUsed = ss.PrefetchUsed - storeBefore.PrefetchUsed
		st.StoreStall = ss.StallTime - storeBefore.StallTime
	}
	return st, nil
}

// OOCStats exposes the out-of-core store's cumulative accounting (zero Stats
// when the OOC tier is disabled).
func (s *DSP) OOCStats() store.Stats {
	if s.hostStore == nil {
		return store.Stats{}
	}
	return s.hostStore.Stats()
}

// TopologyResidentBytes reports the world's total resident topology bytes
// (compressed when Opts.CompressTopology), for memory-frontier assertions.
func (s *DSP) TopologyResidentBytes() int64 { return s.world.TopologyResidentBytes() }

// CacheStats exposes the adaptive cache manager's cumulative accounting.
func (s *DSP) CacheStats() cache.Stats { return s.cacheMgr.Stats() }

// Steps implements train.Recoverable.
func (s *DSP) Steps() int { return s.sched.Steps }

// Injector implements train.Recoverable (nil without an Opts.Faults schedule).
func (s *DSP) Injector() *fault.Injector { return s.inj }

// Snapshot implements train.Recoverable. Under BSP every replica is identical
// between steps, so rank 0's parameters and optimizer describe the fleet; in
// cost-only mode the state is the cursor alone.
func (s *DSP) Snapshot(epoch, step int) *ckpt.TrainState {
	st := &ckpt.TrainState{Epoch: epoch, Step: step, Seed: s.Opts.Seed, Model: s.Opts.Model}
	if len(s.trainer.Models) > 0 {
		m := s.trainer.Models[0]
		st.Params = make([]float32, m.ParamCount())
		m.ParamVector(st.Params)
		if so, ok := s.trainer.Optims[0].(nn.StatefulOptimizer); ok {
			st.Optim = so.CaptureState()
		}
	}
	return st
}

// Restore implements train.Recoverable, broadcasting the checkpoint into
// every replica and optimizer.
func (s *DSP) Restore(st *ckpt.TrainState) error {
	if st == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	if len(s.trainer.Models) == 0 {
		return nil // cost-only: the cursor is the whole state
	}
	if st.Model != s.Opts.Model {
		return fmt.Errorf("core: checkpoint model %+v does not match %+v", st.Model, s.Opts.Model)
	}
	for g, m := range s.trainer.Models {
		if len(st.Params) != m.ParamCount() {
			return fmt.Errorf("core: checkpoint has %d params, model wants %d", len(st.Params), m.ParamCount())
		}
		m.SetParamVector(st.Params)
		if so, ok := s.trainer.Optims[g].(nn.StatefulOptimizer); ok {
			so.RestoreState(m, st.Optim)
		}
	}
	return nil
}

// runEpochMulti runs one epoch with multiple sampler/loader worker
// instances per GPU (the §5 multi-instance ablation).
func (s *DSP) runEpochMulti(epoch int) (train.EpochStats, error) {
	eng := s.m.Eng
	start := eng.Now()
	before := s.m.Fabric.Counters
	for _, g := range s.m.GPUs {
		g.ResetBusy()
	}
	// More worker instances contend for the same host cores, so each
	// stage's framework overhead grows with the total instance count (the
	// paper's second reason: "the resource contention for both CPU and GPU
	// is more severe").
	workers := len(s.worlds) + len(s.loaderComms) + 1
	overhead := s.Opts.EffectiveStageOverhead() * sim.Time(workers) / 3
	stats := make([]train.EpochStats, len(s.m.GPUs))
	var dones []*sim.Event
	for rank := range s.m.GPUs {
		rank := rank
		st := &stats[rank]
		ms := pipeline.MultiStages{NumBatches: s.sched.Steps}
		for _, w := range s.worlds {
			w := w
			ms.Samplers = append(ms.Samplers, func(p *sim.Proc, step int) interface{} {
				p.Sleep(overhead)
				return s.sampleStageWith(p, rank, epoch, step, w)
			})
		}
		for _, lc := range s.loaderComms {
			lc := lc
			ms.Loaders = append(ms.Loaders, func(p *sim.Proc, step int, v interface{}) interface{} {
				p.Sleep(overhead)
				return s.strat.Load(p, rank, v.(*sample.MiniBatch), lc)
			})
		}
		ms.Train = func(p *sim.Proc, step int, v interface{}) {
			p.Sleep(overhead)
			s.strat.Train(p, rank, v.(strategy.Loaded), st)
		}
		done := eng.NewEvent()
		dones = append(dones, done)
		pipeline.RunPipelinedMulti(eng, fmt.Sprintf("gpu%d", rank), ms, s.Opts.QueueCap, done)
	}
	end, err := eng.Run()
	if err != nil {
		return train.EpochStats{}, err
	}
	for _, d := range dones {
		if !d.Fired() {
			return train.EpochStats{}, fmt.Errorf("core: multi-worker epoch incomplete")
		}
	}
	out := train.EpochStats{Epoch: epoch, EpochTime: end - start}
	for _, st := range stats {
		out.Loss += st.Loss
		out.Correct += st.Correct
		out.Seen += st.Seen
	}
	out.Utilization = s.m.Utilization(start, end)
	after := s.m.Fabric.Counters
	out.SampleWire = after.TotalWire(hw.TrafficSample) - before.TotalWire(hw.TrafficSample)
	out.FeatureWire = after.TotalWire(hw.TrafficFeature) - before.TotalWire(hw.TrafficFeature)
	out.GradWire = after.TotalWire(hw.TrafficGradient) - before.TotalWire(hw.TrafficGradient)
	return out, nil
}

// RunSampleEpoch implements train.System: only the samplers run (the
// paper's Table 6 methodology — "running the sampler individually without
// interference from other workers").
func (s *DSP) RunSampleEpoch(epoch int) (train.EpochStats, error) {
	n := s.Opts.Data.NumGPUs()
	eng := s.m.Eng
	start := eng.Now()
	for rank := 0; rank < n; rank++ {
		rank := rank
		eng.Go(fmt.Sprintf("gpu%d/sampler", rank), func(p *sim.Proc) {
			overhead := s.Opts.EffectiveStageOverhead()
			for step := 0; step < s.sched.Steps; step++ {
				p.Sleep(overhead)
				s.sampleStage(p, rank, epoch, step)
			}
		})
	}
	end, err := eng.Run()
	if err != nil {
		return train.EpochStats{}, err
	}
	return train.EpochStats{Epoch: epoch, SampleTime: end - start, EpochTime: end - start}, nil
}

// RandomWalkEpoch runs one pass of random walks from every shard seed (the
// DeepWalk-style workload of the random-walk example).
func (s *DSP) RandomWalkEpoch(length int) (map[int][][]graph.NodeID, sim.Time, error) {
	n := s.Opts.Data.NumGPUs()
	eng := s.m.Eng
	start := eng.Now()
	out := make(map[int][][]graph.NodeID, n)
	for rank := 0; rank < n; rank++ {
		rank := rank
		eng.Go(fmt.Sprintf("gpu%d/walker", rank), func(p *sim.Proc) {
			out[rank] = s.world.RandomWalk(p, rank, s.Opts.Data.Shards[rank], length,
				train.BatchSeed(s.Opts.Seed, 0, 0, rank))
		})
	}
	end, err := eng.Run()
	if err != nil {
		return nil, 0, err
	}
	return out, end - start, nil
}
