package core_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/train"
)

// dynamicOpts is a training config with a tight feature budget and the
// adaptive cache enabled: the regime where epoch-boundary rebalancing moves
// rows.
func dynamicOpts(td *train.Data) train.Options {
	opts := smallOpts(td)
	opts.DynamicCache = cache.LFUDecay
	opts.FeatureCacheBudget = int64(300 * td.FeatDim * 4)
	return opts
}

// TestDSPDynamicCacheAdaptsAcrossEpochs: with a dynamic policy, the
// epoch-boundary rebalance runs, charges migration bytes and time, and the
// tracker's tier counts cover every feature read of the epoch.
func TestDSPDynamicCacheAdaptsAcrossEpochs(t *testing.T) {
	td := testData(t, 4)
	sys, err := core.New(dynamicOpts(td))
	if err != nil {
		t.Fatal(err)
	}
	var promoted int64
	for e := 0; e < 2; e++ {
		st, err := sys.RunEpoch(e)
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheLocal+st.CachePeer+st.CacheHost == 0 {
			t.Fatalf("epoch %d: no tiered reads recorded", e)
		}
		if st.CachePromoted > 0 && (st.RebalanceBytes == 0 || st.RebalanceTime <= 0) {
			t.Fatalf("epoch %d: promotion without cost: %+v", e, st)
		}
		promoted += st.CachePromoted
	}
	if promoted == 0 {
		t.Fatal("dynamic policy never promoted a row over two epochs")
	}
	cs := sys.CacheStats()
	if cs.Rebalances != 2 {
		t.Fatalf("rebalances %d, want one per epoch boundary", cs.Rebalances)
	}
	if cs.MovedBytes == 0 || cs.Tiers.Total() == 0 {
		t.Fatalf("cache stats empty: %+v", cs)
	}
}

// TestDSPDynamicCacheDeterministic: two same-seed dynamic training runs
// produce bit-identical epoch stats, including tier counts, rebalance byte
// totals and epoch times.
func TestDSPDynamicCacheDeterministic(t *testing.T) {
	run := func() []train.EpochStats {
		td := testData(t, 4)
		sys, err := core.New(dynamicOpts(td))
		if err != nil {
			t.Fatal(err)
		}
		var out []train.EpochStats
		for e := 0; e < 2; e++ {
			st, err := sys.RunEpoch(e)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, st)
		}
		return out
	}
	a, b := run(), run()
	for e := range a {
		if a[e].EpochTime != b[e].EpochTime {
			t.Fatalf("epoch %d time diverged: %v vs %v", e, a[e].EpochTime, b[e].EpochTime)
		}
		if a[e].CacheLocal != b[e].CacheLocal || a[e].CachePeer != b[e].CachePeer ||
			a[e].CacheHost != b[e].CacheHost {
			t.Fatalf("epoch %d tiers diverged", e)
		}
		if a[e].CachePromoted != b[e].CachePromoted ||
			a[e].RebalanceBytes != b[e].RebalanceBytes ||
			a[e].RebalanceTime != b[e].RebalanceTime {
			t.Fatalf("epoch %d rebalance accounting diverged", e)
		}
	}
}

// TestDSPStaticCacheUnchanged: the default (static) policy records tier
// counts but never rebalances, and the manager is inert for the replicated
// layout even under a dynamic policy.
func TestDSPStaticCacheUnchanged(t *testing.T) {
	td := testData(t, 2)
	opts := smallOpts(td)
	opts.FeatureCacheBudget = int64(300 * td.FeatDim * 4)
	sys, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.CachePromoted != 0 || st.RebalanceBytes != 0 || st.RebalanceTime != 0 {
		t.Fatalf("static policy adapted: %+v", st)
	}
	if st.CacheLocal+st.CachePeer+st.CacheHost == 0 {
		t.Fatal("static policy recorded no tiered reads")
	}

	ropts := dynamicOpts(testData(t, 2))
	ropts.ReplicatedCache = true
	rsys, err := core.New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	rst, err := rsys.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if rst.CachePromoted != 0 || rst.RebalanceBytes != 0 {
		t.Fatalf("replicated layout rebalanced: %+v", rst)
	}
}
