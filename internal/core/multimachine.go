package core

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/csp"
	"repro/internal/featstore"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/train"
)

// MultiDSP extends DSP to a cluster, following paper §3.2: "DSP replicates
// the graph topology and hot features across the machines and partitions
// the cold features among the machines. Thus, the machines only communicate
// for cold features and model synchronization."
//
// Every machine runs the full single-machine design (partitioned topology
// patches, partitioned hot-feature cache, CSP, pipeline, CCC). Cold feature
// rows are sharded across the machines' CPU memories by node id; fetching a
// row owned by another machine costs a NIC round trip plus the owner's CPU
// gather. Gradients synchronise hierarchically: an intra-machine NVLink
// allreduce, an inter-machine ring over the NICs between machine leaders,
// and an intra-machine broadcast.
type MultiDSP struct {
	Opts        train.Options
	NumMachines int

	cluster *hw.Cluster
	worlds  []*csp.World
	stores  []*featstore.Store
	loaders []*comm.Communicator
	coords  []*pipeline.Coordinator

	// Per-machine intra trainer state; models indexed [machine][rank].
	trainerComms []*comm.Communicator
	models       [][]*nn.Model
	optims       [][]nn.Optimizer
	grads        [][][]float32

	// Inter-machine reduction rendezvous.
	interBarrier *sim.Barrier
	interSlots   [][]float32

	gpusEach int
	steps    int
	zeros    []float32

	// pool recycles gather staging buffers (RealCompute feature assembly);
	// par offloads their fill between DES commit points.
	pool arena.Pool
	par  *sim.ParallelGroup
}

// group lazily binds the offload group to the cluster engine.
func (s *MultiDSP) group() *sim.ParallelGroup {
	if s.par == nil {
		s.par = s.cluster.Eng.NewParallelGroup()
	}
	return s.par
}

// NewMulti builds a cluster-wide DSP instance with machines copies of the
// prepared data's layout. The prepared Data must be partitioned for the
// per-machine GPU count.
func NewMulti(opts train.Options, machines int, net hw.NetworkSpec) (*MultiDSP, error) {
	opts = opts.Defaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if machines < 1 {
		return nil, fmt.Errorf("core: need at least one machine")
	}
	d := opts.Data
	n := d.NumGPUs()
	s := &MultiDSP{Opts: opts, NumMachines: machines, gpusEach: n}
	s.cluster = hw.NewCluster(machines, n, opts.GPU, opts.CPU, net, opts.LatencyScale)
	s.cluster.Eng.SetParallelism(opts.Parallel)
	s.interBarrier = s.cluster.Eng.NewBarrier(machines * n)
	s.interSlots = make([][]float32, machines)

	budget := opts.FeatureCacheBudget
	topoBudget := opts.TopoCacheBudget
	if topoBudget <= 0 {
		topoBudget = opts.GPU.MemBytes * 6 / 10
	}
	for m := 0; m < machines; m++ {
		mach := s.cluster.Machines[m]
		world, err := csp.NewWorldBudget(mach, d.G, d.Offsets, topoBudget)
		if err != nil {
			return nil, fmt.Errorf("core: machine %d topology: %w", m, err)
		}
		s.worlds = append(s.worlds, world)
		b := budget
		if b <= 0 {
			free := mach.GPUs[0].MemFree()
			for _, g := range mach.GPUs[1:] {
				if f := g.MemFree(); f < free {
					free = f
				}
			}
			b = free * 9 / 10
		}
		store := featstore.BuildPartitioned(d.G, d.Feats, d.FeatDim, d.Offsets, b, featstore.Policy(opts.CachePolicy))
		for g := 0; g < n; g++ {
			if err := mach.GPUs[g].Reserve(store.CacheBytes(g)); err != nil {
				return nil, fmt.Errorf("core: machine %d cache: %w", m, err)
			}
		}
		s.stores = append(s.stores, store)
		coord := pipeline.NewCoordinator(s.cluster.Eng, n, opts.UseCCC, 2)
		coord.Tracer = func() *trace.Tracer { return mach.GPUs[0].Tracer }
		s.coords = append(s.coords, coord)
		loader := comm.New(mach)
		trainer := comm.New(mach)
		if opts.UseCCC {
			world.Comm.SetGate(coord.Gate(samplerWorker))
			loader.SetGate(coord.Gate(loaderWorker))
			trainer.SetGate(coord.Gate(trainerWorker))
		}
		s.loaders = append(s.loaders, loader)
		s.trainerComms = append(s.trainerComms, trainer)

		probe := nn.NewModel(opts.Model, opts.Seed)
		var mm []*nn.Model
		var oo []nn.Optimizer
		var gg [][]float32
		for g := 0; g < n; g++ {
			gg = append(gg, make([]float32, probe.ParamCount()))
			if opts.RealCompute {
				mm = append(mm, nn.NewModel(opts.Model, opts.Seed))
				oo = append(oo, nn.NewAdam(opts.LR))
			}
		}
		s.models = append(s.models, mm)
		s.optims = append(s.optims, oo)
		s.grads = append(s.grads, gg)
	}
	// Steps: each machine consumes a 1/machines stride of every shard.
	for _, shard := range d.Shards {
		per := (len(shard) + machines - 1) / machines
		st := (per + opts.BatchSize - 1) / opts.BatchSize
		if st > s.steps {
			s.steps = st
		}
	}
	return s, nil
}

// Name implements train.System-style identification.
func (s *MultiDSP) Name() string { return fmt.Sprintf("DSP-%dx%d", s.NumMachines, s.gpusEach) }

// Cluster exposes the simulated cluster.
func (s *MultiDSP) Cluster() *hw.Cluster { return s.cluster }

// Model returns machine 0 / rank 0's replica (nil in cost-only mode).
func (s *MultiDSP) Model() *nn.Model {
	if len(s.models[0]) == 0 {
		return nil
	}
	return s.models[0][0]
}

// Steps returns batches per epoch per worker.
func (s *MultiDSP) Steps() int { return s.steps }

// batch returns the seeds for (machine, rank) at (epoch, step): the rank's
// shard is shuffled per epoch (the shared permutation) and the machines
// take interleaved batch-sized slices of it.
func (s *MultiDSP) batch(epoch, step, machine, rank int) []graph.NodeID {
	full := train.Schedule{BatchSize: s.Opts.BatchSize, Steps: s.steps}
	return full.Batch(s.Opts.Data, s.Opts.Seed, epoch, step*s.NumMachines+machine, rank)
}

// zeroRows returns a zero payload standing in for feature rows.
func (s *MultiDSP) zeroRows(rows int) []float32 {
	need := rows * s.Opts.Data.FeatDim
	if cap(s.zeros) < need {
		s.zeros = make([]float32, need)
	}
	return s.zeros[:need]
}

// coldOwner returns the machine whose CPU memory holds a cold row.
func (s *MultiDSP) coldOwner(v graph.NodeID) int { return int(v) % s.NumMachines }

// loadStage fetches features on (machine, rank): hot rows exactly as the
// single-machine loader; cold rows via local UVA when this machine owns
// them, and a NIC round trip plus remote CPU gather otherwise.
func (s *MultiDSP) loadStage(p *sim.Proc, machine, rank int, mb *sample.MiniBatch) strategy.Loaded {
	d := s.Opts.Data
	mach := s.cluster.Machines[machine]
	dev := mach.GPUs[rank]
	store := s.stores[machine]
	ids := mb.InputNodes()
	local, remote, host := store.Split(ids, rank)
	n := s.gpusEach

	// Stage the real feature gather on a worker thread so it overlaps the
	// virtual-time NIC/NVLink choreography below; the buffer is pooled and
	// recycled by trainStage once the step has consumed it.
	var feats []float32
	var gather *sim.Ticket
	if s.Opts.RealCompute {
		feats = s.pool.Get(len(ids) * d.FeatDim)
		gather = s.group().Submit(func() { train.GatherFeaturesInto(feats, d, mb) })
	}

	// Cold rows: split by owning machine.
	var mine int64
	foreign := make([]int64, s.NumMachines)
	for _, v := range host {
		if o := s.coldOwner(v); o == machine {
			mine++
		} else {
			foreign[o]++
		}
	}
	uvaDone := s.cluster.Eng.NewEvent()
	if mine > 0 {
		s.cluster.Eng.Go(fmt.Sprintf("m%dg%d/uva", machine, rank), func(cp *sim.Proc) {
			dev.UVARead(cp, mach.Fabric, mine, d.RowBytes(), hw.TrafficFeature)
			uvaDone.Trigger()
		})
	} else {
		uvaDone.Trigger()
	}
	// Remote-machine cold rows, concurrently with the NVLink path.
	netDone := s.cluster.Eng.NewEvent()
	var needNet bool
	for o, cnt := range foreign {
		if cnt > 0 && o != machine {
			needNet = true
		}
	}
	if needNet {
		s.cluster.Eng.Go(fmt.Sprintf("m%dg%d/net", machine, rank), func(cp *sim.Proc) {
			for o, cnt := range foreign {
				if cnt == 0 || o == machine {
					continue
				}
				// Request ids out, owner CPU gathers, rows come back (under
				// the feature codec when one is set — the NIC is the
				// narrowest link, so compression pays off most here), then
				// a staged DMA of the decoded rows into the GPU.
				s.cluster.Net.Send(cp, machine, o, cnt*4, hw.TrafficFeature)
				s.cluster.Machines[o].Host.Gather(cp, cnt*int64(d.RowBytes()), 8)
				s.cluster.Net.Send(cp, o, machine,
					compress.WireBytes(s.Opts.FeatCodec, int(cnt)*d.FeatDim), hw.TrafficFeature)
				mach.Fabric.HostDMA(cp, rank, cnt*int64(d.RowBytes()), hw.TrafficFeature)
			}
			netDone.Trigger()
		})
	} else {
		netDone.Trigger()
	}

	if len(local) > 0 {
		dev.RunKernel(p, hw.KernelGather, int64(len(local))*int64(d.RowBytes()))
	}
	if n > 1 {
		reqIn := comm.AllToAll(s.loaders[machine], p, rank, remote, comm.Raw(4, hw.TrafficFeature))
		var served int64
		for q := 0; q < n; q++ {
			served += int64(len(reqIn[q]))
		}
		if served > 0 {
			dev.RunKernel(p, hw.KernelGather, served*int64(d.RowBytes()))
		}
		replies := make([][]float32, n)
		for q := 0; q < n; q++ {
			replies[q] = s.zeroRows(len(reqIn[q]))
		}
		comm.AllToAll(s.loaders[machine], p, rank, replies, comm.Compressed(s.Opts.FeatCodec, hw.TrafficFeature))
	}
	uvaDone.Wait(p)
	netDone.Wait(p)
	dev.RunKernel(p, hw.KernelGather, int64(len(ids))*int64(d.RowBytes()))
	gather.Join()
	return strategy.Loaded{MB: mb, Feats: feats}
}

// trainStage runs the hierarchical gradient synchronisation.
func (s *MultiDSP) trainStage(p *sim.Proc, machine, rank int, l strategy.Loaded, st *train.EpochStats) {
	mach := s.cluster.Machines[machine]
	dev := mach.GPUs[rank]
	mb := l.MB
	grad := s.grads[machine][rank]
	if s.Opts.RealCompute {
		m := s.models[machine][rank]
		m.ZeroGrads()
		if len(mb.Seeds) > 0 {
			loss, correct, flops := m.TrainStep(mb, l.Feats, train.SeedLabels(s.Opts.Data, mb))
			dev.RunKernel(p, hw.KernelCompute, flops)
			st.Loss += loss
			st.Correct += correct
			st.Seen += len(mb.Seeds)
		}
		m.GradVector(grad)
		if l.Feats != nil {
			s.pool.Put(l.Feats) // the step has consumed the staged gather
		}
	} else {
		if len(mb.Seeds) > 0 {
			dev.RunKernel(p, hw.KernelGather, nn.NominalAggBytes(s.Opts.Model, mb))
			dev.RunKernel(p, hw.KernelCompute, nn.NominalFlops(s.Opts.Model, mb))
		}
	}
	// Intra-machine allreduce over NVLink (codec-aware: the machine sum
	// already carries the gradient codec's quantisation error).
	gradOpts := comm.Compressed(s.Opts.GradCodec, hw.TrafficGradient)
	// Cost-only never writes grad (all-zero every round): encode is reusable.
	gradOpts.Static = !s.Opts.RealCompute
	s.trainerComms[machine].AllReduceSum(p, rank, grad, gradOpts)
	// Inter-machine ring between machine leaders (rank 0), then the global
	// sum is re-established on every replica. The rendezvous is a full
	// cluster barrier: trainer steps are aligned across machines. Each
	// leader posts its machine sum as the remote machines would decode it
	// (codec round-trip), so the cross-machine reduction is lossy exactly
	// once per hop and every replica still sums identical images.
	if s.NumMachines > 1 {
		if rank == 0 {
			posted := compress.Roundtrip(s.Opts.GradCodec, grad)
			s.interSlots[machine] = append(s.interSlots[machine][:0], posted...)
			next := (machine + 1) % s.NumMachines
			bytes := compress.WireBytes(s.Opts.GradCodec, len(grad)) / int64(s.NumMachines)
			if bytes < 1 {
				bytes = 1
			}
			for step := 0; step < 2*(s.NumMachines-1); step++ {
				s.cluster.Net.Send(p, machine, next, bytes, hw.TrafficGradient)
			}
		}
		s.interBarrier.Arrive(p)
		// Deterministic global sum from the posted machine sums.
		for i := range grad {
			var sum float32
			for m := 0; m < s.NumMachines; m++ {
				sum += s.interSlots[m][i]
			}
			grad[i] = sum
		}
		s.interBarrier.Arrive(p)
	}
	if s.Opts.RealCompute {
		inv := float32(1.0) / float32(s.gpusEach*s.NumMachines)
		for i := range grad {
			grad[i] *= inv
		}
		m := s.models[machine][rank]
		m.SetGradVector(grad)
		s.optims[machine][rank].Step(m)
	}
}

// RunEpoch executes one cluster-wide training epoch.
func (s *MultiDSP) RunEpoch(epoch int) (train.EpochStats, error) {
	eng := s.cluster.Eng
	start := eng.Now()
	var netBefore int64
	for i := 0; i < len(s.cluster.Net.Bytes); i++ {
		netBefore += s.cluster.Net.Bytes[i]
	}
	for _, mach := range s.cluster.Machines {
		for _, g := range mach.GPUs {
			g.ResetBusy()
		}
	}
	type wires struct{ s, f, g int64 }
	before := make([]wires, s.NumMachines)
	for m, mach := range s.cluster.Machines {
		before[m] = wires{
			mach.Fabric.Counters.TotalWire(hw.TrafficSample),
			mach.Fabric.Counters.TotalWire(hw.TrafficFeature),
			mach.Fabric.Counters.TotalWire(hw.TrafficGradient),
		}
	}
	stats := make([]train.EpochStats, s.NumMachines*s.gpusEach)
	var dones []*sim.Event
	overhead := s.Opts.EffectiveStageOverhead()
	for m := 0; m < s.NumMachines; m++ {
		for g := 0; g < s.gpusEach; g++ {
			m, g := m, g
			st := &stats[m*s.gpusEach+g]
			stages := pipeline.Stages{
				NumBatches: s.steps,
				Sample: func(p *sim.Proc, step int) interface{} {
					p.Sleep(overhead)
					seeds := s.batch(epoch, step, m, g)
					bs := train.BatchSeed(s.Opts.Seed, epoch, step*s.NumMachines+m, g)
					return s.worlds[m].SampleBatch(p, g, seeds, s.Opts.Sample, bs)
				},
				Load: func(p *sim.Proc, step int, v interface{}) interface{} {
					p.Sleep(overhead)
					return s.loadStage(p, m, g, v.(*sample.MiniBatch))
				},
				Train: func(p *sim.Proc, step int, v interface{}) {
					p.Sleep(overhead)
					s.trainStage(p, m, g, v.(strategy.Loaded), st)
				},
			}
			done := eng.NewEvent()
			dones = append(dones, done)
			name := fmt.Sprintf("m%dg%d", m, g)
			if s.Opts.Pipeline {
				pipeline.RunPipelined(eng, name, stages, s.Opts.QueueCap, done)
			} else {
				pipeline.RunSequential(eng, name, stages, done)
			}
		}
	}
	end, err := eng.Run()
	if err != nil {
		return train.EpochStats{}, err
	}
	for _, d := range dones {
		if !d.Fired() {
			return train.EpochStats{}, fmt.Errorf("core: cluster epoch incomplete")
		}
	}
	out := train.EpochStats{Epoch: epoch, EpochTime: end - start}
	for _, st := range stats {
		out.Loss += st.Loss
		out.Correct += st.Correct
		out.Seen += st.Seen
	}
	for m, mach := range s.cluster.Machines {
		out.Utilization = append(out.Utilization, mach.Utilization(start, end)...)
		out.SampleWire += mach.Fabric.Counters.TotalWire(hw.TrafficSample) - before[m].s
		out.FeatureWire += mach.Fabric.Counters.TotalWire(hw.TrafficFeature) - before[m].f
		out.GradWire += mach.Fabric.Counters.TotalWire(hw.TrafficGradient) - before[m].g
	}
	var netAfter int64
	for i := 0; i < len(s.cluster.Net.Bytes); i++ {
		netAfter += s.cluster.Net.Bytes[i]
	}
	out.InterWire = netAfter - netBefore
	return out, nil
}
