package gen

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func smallCfg() Config {
	return Config{
		Name: "test", Nodes: 2000, AvgDegree: 10, FeatDim: 16,
		NumClasses: 8, Seed: 42,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg())
	b := Generate(smallCfg())
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.G.NumEdges(), b.G.NumEdges())
	}
	for i := range a.G.Indices {
		if a.G.Indices[i] != b.G.Indices[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("features differ at %d", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	d := Generate(smallCfg())
	if err := d.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.G.NumNodes() != 2000 {
		t.Fatalf("n=%d", d.G.NumNodes())
	}
	avg := float64(d.G.NumEdges()) / 2000
	if avg < 8 || avg > 12 {
		t.Fatalf("avg degree %v, want ~10", avg)
	}
	if len(d.Labels) != 2000 || len(d.Features) != 2000*16 {
		t.Fatal("label/feature sizes wrong")
	}
	for _, l := range d.Labels {
		if l < 0 || int(l) >= d.NumClasses {
			t.Fatalf("label %d out of range", l)
		}
	}
	// No isolated nodes.
	for v := 0; v < d.G.NumNodes(); v++ {
		if d.G.Degree(int32(v)) == 0 {
			t.Fatalf("node %d isolated", v)
		}
	}
}

func TestSplitsPartitionNodes(t *testing.T) {
	d := Generate(smallCfg())
	seen := make([]int, d.G.NumNodes())
	for _, v := range d.TrainIdx {
		seen[v]++
	}
	for _, v := range d.ValIdx {
		seen[v]++
	}
	for _, v := range d.TestIdx {
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d in %d splits", v, c)
		}
	}
	frac := float64(len(d.TrainIdx)) / float64(d.G.NumNodes())
	if math.Abs(frac-0.2) > 0.01 {
		t.Fatalf("train frac %v, want ~0.2", frac)
	}
}

func TestPowerLawSkew(t *testing.T) {
	// The top 10% of nodes by degree should hold a disproportionate share
	// of edges — this is what makes hot-node caching effective.
	d := Generate(Config{Name: "t", Nodes: 5000, AvgDegree: 20, FeatDim: 4, NumClasses: 4, Seed: 9})
	order := d.G.NodesByDegreeDesc()
	var hot, total int64
	for i, v := range order {
		deg := int64(d.G.Degree(v))
		total += deg
		if i < len(order)/10 {
			hot += deg
		}
	}
	share := float64(hot) / float64(total)
	if share < 0.3 {
		t.Fatalf("top-10%% degree share %.2f, want >0.3 (power law)", share)
	}
}

func TestCommunityStructure(t *testing.T) {
	// Most adjacency entries should stay within the community.
	d := Generate(smallCfg())
	var intra, total int64
	for v := 0; v < d.G.NumNodes(); v++ {
		for _, u := range d.G.Neighbors(int32(v)) {
			total++
			if d.Labels[u] == d.Labels[v] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	if frac < 0.6 {
		t.Fatalf("intra-community fraction %.2f, want >0.6", frac)
	}
}

func TestFeaturesCarryClassSignal(t *testing.T) {
	// A nearest-centroid classifier on raw features should beat chance by a
	// wide margin (otherwise Figure 9's learning curves would be noise).
	d := Generate(smallCfg())
	dim := d.FeatDim
	centroids := make([][]float64, d.NumClasses)
	counts := make([]int, d.NumClasses)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	for v := 0; v < d.G.NumNodes(); v++ {
		c := d.Labels[v]
		counts[c]++
		f := d.Feature(int32(v))
		for j := 0; j < dim; j++ {
			centroids[c][j] += float64(f[j])
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for v := 0; v < d.G.NumNodes(); v++ {
		f := d.Feature(int32(v))
		best, bestDist := -1, math.Inf(1)
		for c := range centroids {
			var dist float64
			for j := 0; j < dim; j++ {
				diff := float64(f[j]) - centroids[c][j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if int32(best) == d.Labels[v] {
			correct++
		}
	}
	acc := float64(correct) / float64(d.G.NumNodes())
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy %.2f, want >0.5 (chance = %.2f)",
			acc, 1/float64(d.NumClasses))
	}
}

func TestAttachUniformWeights(t *testing.T) {
	d := Generate(smallCfg())
	d.AttachUniformWeights(5)
	if err := d.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.G.Weights) != len(d.G.Indices) {
		t.Fatal("weight length mismatch")
	}
	// Weights are per-node: all edges pointing at the same neighbour carry
	// the same weight.
	seen := map[int32]float32{}
	for i, u := range d.G.Indices {
		if w, ok := seen[u]; ok && w != d.G.Weights[i] {
			t.Fatalf("node %d has inconsistent weights", u)
		}
		seen[u] = d.G.Weights[i]
	}
}

func TestStandardDatasets(t *testing.T) {
	for _, name := range StandardNames {
		s := StandardDataset(name, 10)
		if s.ScaleFactor <= 1 {
			t.Errorf("%s: scale factor %v", name, s.ScaleFactor)
		}
		if s.GPUMemBytes() <= 0 {
			t.Errorf("%s: GPU mem %d", name, s.GPUMemBytes())
		}
		d := Generate(s.Config)
		if err := d.G.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		avg := float64(d.G.NumEdges()) / float64(d.G.NumNodes())
		if math.Abs(avg-s.PaperAvgDeg)/s.PaperAvgDeg > 0.15 {
			t.Errorf("%s: avg degree %.1f, want ~%.1f", name, avg, s.PaperAvgDeg)
		}
	}
}

func TestStandardUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	StandardDataset("nope", 1)
}

func TestCachePressureRegimes(t *testing.T) {
	// Products features fit in 8 scaled GPUs; Papers and Friendster do not
	// fit in ONE scaled GPU (they need the aggregate + host), mirroring the
	// paper's setting where DGL-UVA could not cache them on a single V100.
	for _, name := range StandardNames {
		s := StandardDataset(name, 1)
		featBytes := int64(s.Config.Nodes) * int64(s.Config.FeatDim) * 4
		agg := 8 * s.GPUMemBytes()
		if featBytes >= agg {
			t.Errorf("%s: features (%d) exceed 8-GPU aggregate (%d); cache regimes wrong", name, featBytes, agg)
		}
		if name != "products" {
			if featBytes < s.GPUMemBytes() {
				t.Errorf("%s: features fit one GPU (%d < %d), paper regime requires otherwise",
					name, featBytes, s.GPUMemBytes())
			}
		}
	}
}

func TestWeightedSamplerMatchesWeights(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	s := newWeightedSampler(w)
	r := rng.New(13)
	counts := make([]int, 4)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample(r)]++
	}
	for i, c := range counts {
		want := w[i] / 10 * draws
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("weight %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestGenerateTopologyMatchesCompressedFlat(t *testing.T) {
	for _, bs := range []int{1, 7, 64} {
		cfg := smallCfg()
		stream := GenerateTopology(cfg, bs)
		flat := graph.CompressBlocks(Generate(cfg).G, bs)
		if !reflect.DeepEqual(stream, flat) {
			t.Fatalf("blockSize %d: streaming topology differs from CompressBlocks(Generate().G)", bs)
		}
	}
}

func TestGenerateTopologyAcrossConfigs(t *testing.T) {
	cfgs := []Config{
		{Name: "tiny", Nodes: 37, AvgDegree: 3, FeatDim: 4, NumClasses: 5, Seed: 7},
		{Name: "skewed", Nodes: 1500, AvgDegree: 18, FeatDim: 8, NumClasses: 4,
			PowerLaw: 2.0, IntraProb: 0.5, Seed: 99},
	}
	for _, cfg := range cfgs {
		stream := GenerateTopology(cfg, 16)
		flat := graph.CompressBlocks(Generate(cfg).G, 16)
		if !reflect.DeepEqual(stream, flat) {
			t.Fatalf("%s: streaming topology differs from compressed flat", cfg.Name)
		}
	}
}

func TestGenerateTopologyNeverBuildsFlat(t *testing.T) {
	// The streaming path must match the flat path's neighbour lists when
	// decoded — the round-trip proves the encoder saw the same draws.
	cfg := smallCfg()
	c := GenerateTopology(cfg, 1)
	g := Generate(cfg).G.Sorted()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d edges",
			c.NumNodes(), g.NumNodes(), c.NumEdges(), g.NumEdges())
	}
	for v := 0; v < c.NumNodes(); v++ {
		cn := c.Neighbors(graph.NodeID(v))
		gn := g.Neighbors(graph.NodeID(v))
		if len(cn) != len(gn) {
			t.Fatalf("node %d: degree %d vs %d", v, len(cn), len(gn))
		}
		for i := range cn {
			if cn[i] != gn[i] {
				t.Fatalf("node %d: neighbour %d differs", v, i)
			}
		}
	}
}

func TestGenerateTopologyInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on invalid config")
		}
	}()
	GenerateTopology(Config{Nodes: 0, AvgDegree: 5, NumClasses: 2}, 1)
}
