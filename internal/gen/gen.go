// Package gen generates synthetic graph datasets that stand in for the
// paper's evaluation graphs (OGB Products, OGB Papers100M, Friendster).
//
// The real datasets cannot be downloaded here, so per the substitution rule
// we generate seeded power-law community graphs with matched average degree
// and feature dimension, at node counts scaled down by a per-dataset factor;
// the simulated GPU memory is scaled by the same factor (see internal/bench)
// so the cache-pressure regimes — which drive the paper's results — match.
// Labels are community ids and features are noisy class centroids, so the
// GNN models genuinely learn (Figure 9's accuracy curves are real).
package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Config controls synthetic dataset generation.
type Config struct {
	Name       string
	Nodes      int
	AvgDegree  float64 // directed adjacency entries per node
	FeatDim    int
	NumClasses int
	// PowerLaw is the degree-distribution exponent (typical social/citation
	// graphs: 2.0-2.5; lower = more skew, hotter hot nodes).
	PowerLaw float64
	// IntraProb is the probability an edge endpoint stays inside the
	// community (community structure makes METIS partitioning meaningful).
	IntraProb float64
	// FeatureSignal scales the class centroid relative to unit noise.
	FeatureSignal float64
	// TrainFrac / ValFrac select seed nodes; the rest is test.
	TrainFrac, ValFrac float64
	Seed               uint64
}

// Dataset is a generated graph with features, labels and splits.
type Dataset struct {
	Name       string
	G          *graph.CSR
	FeatDim    int
	Features   []float32 // flat, node-major: Features[v*FeatDim : (v+1)*FeatDim]
	Labels     []int32
	NumClasses int
	TrainIdx   []graph.NodeID
	ValIdx     []graph.NodeID
	TestIdx    []graph.NodeID
}

// Feature returns the feature row of node v (a view).
func (d *Dataset) Feature(v graph.NodeID) []float32 {
	return d.Features[int(v)*d.FeatDim : (int(v)+1)*d.FeatDim]
}

// FeatureBytes returns the total feature storage in bytes.
func (d *Dataset) FeatureBytes() int64 {
	return int64(len(d.Features)) * 4
}

// FeatureRowBytes returns the bytes of one feature vector.
func (d *Dataset) FeatureRowBytes() int { return d.FeatDim * 4 }

// withDefaults fills the zero-value knobs; both generation paths apply it so
// the RNG consumption (and hence the emitted graphs) stay identical.
func (cfg Config) withDefaults() Config {
	if cfg.PowerLaw == 0 {
		cfg.PowerLaw = 2.2
	}
	if cfg.IntraProb == 0 {
		cfg.IntraProb = 0.8
	}
	if cfg.FeatureSignal == 0 {
		cfg.FeatureSignal = 1.0
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.2
	}
	if cfg.ValFrac == 0 {
		cfg.ValFrac = 0.1
	}
	return cfg
}

// topoPlan is the deterministic endpoint-sampling state shared by Generate
// and GenerateTopology: community labels, member lists, Chung-Lu degree
// propensities and the alias samplers over them. Building it consumes exactly
// one r.Perm(n), so both paths stay on the same RNG stream.
type topoPlan struct {
	labels      []int32
	members     [][]graph.NodeID
	prop        []float64
	propSum     float64
	global      *weightedSampler
	community   []*weightedSampler
	targetEdges int64
}

func planTopology(cfg Config, r *rng.RNG) *topoPlan {
	n := cfg.Nodes
	p := &topoPlan{targetEdges: int64(float64(n) * cfg.AvgDegree)}

	// Assign nodes to communities in contiguous runs of randomised length,
	// then shuffle node ids so community != id order (the partitioner has
	// to discover the structure).
	p.labels = make([]int32, n)
	perClass := n / cfg.NumClasses
	for v := 0; v < n; v++ {
		c := v / perClass
		if c >= cfg.NumClasses {
			c = cfg.NumClasses - 1
		}
		p.labels[v] = int32(c)
	}
	// Community member lists.
	p.members = make([][]graph.NodeID, cfg.NumClasses)
	for v := 0; v < n; v++ {
		p.members[p.labels[v]] = append(p.members[p.labels[v]], graph.NodeID(v))
	}

	// Power-law degree propensities (Chung-Lu style): w_i = (i+1)^(-1/(a-1))
	// over a random permutation of nodes, scaled to hit the target edge
	// count in expectation. Hot nodes emerge inside every community.
	alpha := 1.0 / (cfg.PowerLaw - 1.0)
	p.prop = make([]float64, n)
	perm := r.Perm(n)
	for i, v := range perm {
		w := math.Pow(float64(i+1), -alpha)
		p.prop[v] = w
		p.propSum += w
	}

	// Build alias-like cumulative samplers per community and globally, over
	// propensities, for endpoint selection.
	p.global = newWeightedSampler(p.prop)
	p.community = make([]*weightedSampler, cfg.NumClasses)
	for c := 0; c < cfg.NumClasses; c++ {
		w := make([]float64, len(p.members[c]))
		for i, v := range p.members[c] {
			w[i] = p.prop[v]
		}
		p.community[c] = newWeightedSampler(w)
	}
	return p
}

// drawInNeighbors appends node v's in-neighbour draws to buf and returns it.
// Each node receives in-edges proportional to its propensity, from endpoints
// drawn within-community with IntraProb. Draw order is the flat adjacency
// order FromEdges stores, so callers that need the canonical compressed form
// sort the result.
func (p *topoPlan) drawInNeighbors(cfg Config, r *rng.RNG, v int, buf []graph.NodeID) []graph.NodeID {
	share := p.prop[v] / p.propSum
	deg := int(share * float64(p.targetEdges))
	// Probabilistic rounding keeps the total close to target.
	frac := share*float64(p.targetEdges) - float64(deg)
	if r.Float64() < frac {
		deg++
	}
	if deg == 0 {
		deg = 1 // no isolated nodes
	}
	c := p.labels[v]
	for k := 0; k < deg; k++ {
		var u graph.NodeID
		if r.Float64() < cfg.IntraProb {
			u = p.members[c][p.community[c].Sample(r)]
		} else {
			u = graph.NodeID(p.global.Sample(r))
		}
		if u == graph.NodeID(v) {
			u = p.members[c][p.community[c].Sample(r)]
			if u == graph.NodeID(v) {
				continue
			}
		}
		buf = append(buf, u)
	}
	return buf
}

// Generate builds a dataset from the config. The same config (including
// Seed) always produces the same dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Nodes <= 0 || cfg.AvgDegree <= 0 || cfg.FeatDim <= 0 || cfg.NumClasses <= 0 {
		panic(fmt.Sprintf("gen: invalid config %+v", cfg))
	}
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	n := cfg.Nodes

	p := planTopology(cfg, r)
	labels := p.labels
	src := make([]graph.NodeID, 0, p.targetEdges)
	dst := make([]graph.NodeID, 0, p.targetEdges)
	buf := make([]graph.NodeID, 0, 64)
	for v := 0; v < n; v++ {
		buf = p.drawInNeighbors(cfg, r, v, buf[:0])
		for _, u := range buf {
			src = append(src, u)
			dst = append(dst, graph.NodeID(v))
		}
	}
	g := graph.FromEdges(n, src, dst)

	// Features: class centroid + unit Gaussian noise.
	centroids := make([][]float32, cfg.NumClasses)
	cr := r.Split()
	for c := range centroids {
		centroids[c] = make([]float32, cfg.FeatDim)
		for j := range centroids[c] {
			centroids[c][j] = float32(cr.NormFloat64())
		}
	}
	features := make([]float32, n*cfg.FeatDim)
	fr := r.Split()
	for v := 0; v < n; v++ {
		cen := centroids[labels[v]]
		row := features[v*cfg.FeatDim : (v+1)*cfg.FeatDim]
		for j := range row {
			row[j] = float32(cfg.FeatureSignal)*cen[j] + float32(fr.NormFloat64())
		}
	}

	// Splits.
	order := r.Perm(n)
	nTrain := int(cfg.TrainFrac * float64(n))
	nVal := int(cfg.ValFrac * float64(n))
	d := &Dataset{
		Name: cfg.Name, G: g, FeatDim: cfg.FeatDim, Features: features,
		Labels: labels, NumClasses: cfg.NumClasses,
	}
	for i, v := range order {
		switch {
		case i < nTrain:
			d.TrainIdx = append(d.TrainIdx, graph.NodeID(v))
		case i < nTrain+nVal:
			d.ValIdx = append(d.ValIdx, graph.NodeID(v))
		default:
			d.TestIdx = append(d.TestIdx, graph.NodeID(v))
		}
	}
	return d
}

// GenerateTopology emits the exact topology Generate(cfg) would build,
// directly in compressed form, without ever materialising the flat CSR or
// the src/dst edge arrays — the path that scales to 100M+-node graphs where
// flat adjacency alone would need tens of gigabytes. Peak transient memory is
// the O(n) planning state plus one node's adjacency list; the output is the
// varint-encoded stream.
//
// The result is byte-identical to graph.CompressBlocks(Generate(cfg).G,
// blockSize): both paths consume the same RNG stream through planTopology and
// drawInNeighbors, and the per-node sort here matches the canonicalisation
// Compress applies.
func GenerateTopology(cfg Config, blockSize int) *graph.CompressedCSR {
	if cfg.Nodes <= 0 || cfg.AvgDegree <= 0 || cfg.NumClasses <= 0 {
		panic(fmt.Sprintf("gen: invalid config %+v", cfg))
	}
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	n := cfg.Nodes

	p := planTopology(cfg, r)
	enc := graph.NewEncoder(n, blockSize, false)
	buf := make([]graph.NodeID, 0, 64)
	for v := 0; v < n; v++ {
		buf = p.drawInNeighbors(cfg, r, v, buf[:0])
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		enc.AppendNode(buf, nil)
	}
	return enc.Finish()
}

// AttachUniformWeights adds per-edge weights drawn uniformly from (0, 1] for
// biased-sampling experiments (DSP stores neighbour node weights on edges;
// here we derive a stable per-node weight and replicate it per edge).
func (d *Dataset) AttachUniformWeights(seed uint64) {
	r := rng.New(seed)
	n := d.G.NumNodes()
	nodeW := make([]float32, n)
	for i := range nodeW {
		nodeW[i] = float32(r.Float64()) + 1e-3
	}
	w := make([]float32, len(d.G.Indices))
	for i, u := range d.G.Indices {
		w[i] = nodeW[u]
	}
	d.G.Weights = w
}

// weightedSampler draws indices with probability proportional to weights
// using the alias method (O(1) per draw).
type weightedSampler struct {
	prob  []float64
	alias []int
}

func newWeightedSampler(weights []float64) *weightedSampler {
	n := len(weights)
	s := &weightedSampler{prob: make([]float64, n), alias: make([]int, n)}
	if n == 0 {
		return s
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s
}

// Sample draws one index.
func (s *weightedSampler) Sample(r *rng.RNG) int {
	i := r.Intn(len(s.prob))
	if r.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}
