package gen

import "fmt"

// Standard describes one of the paper's evaluation graphs and its scaled
// stand-in. ScaleFactor is paper-nodes / stand-in-nodes; the experiment
// harness divides the 16 GB V100 memory (and the 6 GB Figure 10 cache
// budget) by the same factor so cache-pressure regimes match the paper.
type Standard struct {
	Config      Config
	ScaleFactor float64
	// PaperNodes/PaperEdges/PaperFeatDim document what is being mirrored.
	PaperNodes  int64
	PaperEdges  int64
	PaperAvgDeg float64
	// BenchBatch is the benchmark mini-batch size: scaled below the
	// paper's 1024 so the stand-in keeps a paper-like number of steps per
	// epoch (~16-125 depending on GPU count) — the regime in which the
	// training pipeline is meaningful.
	BenchBatch int
}

// StandardNames lists the three evaluation datasets in paper order.
var StandardNames = []string{"products", "papers", "friendster"}

// StandardDataset returns the scaled stand-in spec for one of the paper's
// datasets ("products", "papers", "friendster"). shrink > 1 reduces the
// stand-in further (used by -short tests); 1 is the benchmark scale.
func StandardDataset(name string, shrink int) Standard {
	if shrink < 1 {
		shrink = 1
	}
	var s Standard
	switch name {
	case "products":
		// Amazon co-purchasing: 2M nodes, 123M edges, avg deg 50.5, dim 100.
		s = Standard{
			Config: Config{
				Name: "products-sim", Nodes: 40000, AvgDegree: 50.5,
				FeatDim: 100, NumClasses: 47, PowerLaw: 2.2, Seed: 1001,
			},
			PaperNodes: 2_000_000, PaperEdges: 123_000_000, PaperAvgDeg: 50.5,
			BenchBatch: 64,
		}
	case "papers":
		// OGB Papers100M citation graph: 111M nodes, 3.2B edges, dim 128.
		s = Standard{
			Config: Config{
				Name: "papers-sim", Nodes: 220000, AvgDegree: 28.8,
				FeatDim: 128, NumClasses: 172, PowerLaw: 2.3, Seed: 1002,
			},
			PaperNodes: 111_000_000, PaperEdges: 3_200_000_000, PaperAvgDeg: 28.8,
			BenchBatch: 256,
		}
	case "friendster":
		// Friendster gaming network: 66M nodes, 3.6B edges, dim 256.
		s = Standard{
			Config: Config{
				Name: "friendster-sim", Nodes: 130000, AvgDegree: 54.5,
				FeatDim: 256, NumClasses: 64, PowerLaw: 2.1, Seed: 1003,
			},
			PaperNodes: 66_000_000, PaperEdges: 3_600_000_000, PaperAvgDeg: 54.5,
			BenchBatch: 192,
		}
	default:
		panic(fmt.Sprintf("gen: unknown standard dataset %q", name))
	}
	s.Config.Nodes /= shrink
	if shrink > 1 {
		// Keep at least a handful of seeds per batch when shrunk further.
		s.BenchBatch /= shrink
		if s.BenchBatch < 16 {
			s.BenchBatch = 16
		}
	}
	if s.Config.NumClasses > s.Config.Nodes/64 {
		// Keep communities large enough to be meaningful after shrinking.
		s.Config.NumClasses = max(2, s.Config.Nodes/64)
	}
	s.ScaleFactor = float64(s.PaperNodes) / float64(s.Config.Nodes)
	return s
}

// GPUMemBytes returns the scaled per-GPU memory budget corresponding to the
// testbed's 16 GB V100s.
func (s Standard) GPUMemBytes() int64 {
	return int64(16 * float64(1<<30) / s.ScaleFactor)
}

// CacheBudgetBytes scales an absolute cache budget from the paper (e.g. the
// 6 GB of Figure 10) into stand-in bytes.
func (s Standard) CacheBudgetBytes(paperBytes int64) int64 {
	return int64(float64(paperBytes) / s.ScaleFactor)
}
