package sim

import (
	"fmt"
	"testing"
)

// runParallelWorkload runs a small pipeline where every process offloads a
// data unit between commit points, and returns a transcript of (virtual
// time, merged value) pairs. The transcript must be identical at any
// parallelism.
func runParallelWorkload(par int) string {
	e := NewEngine()
	e.SetParallelism(par)
	g := e.NewParallelGroup()
	out := ""
	for r := 0; r < 4; r++ {
		rank := r
		e.Go(fmt.Sprintf("rank%d", rank), func(p *Proc) {
			for step := 0; step < 3; step++ {
				buf := make([]int, 64)
				tk := g.Submit(func() {
					for i := range buf {
						buf[i] = rank*1000 + step*100 + i
					}
				})
				// Ranks reach their commit points at distinct virtual times.
				p.Sleep(Time(rank+1) * 0.001)
				tk.Join()
				sum := 0
				for _, v := range buf {
					sum += v
				}
				out += fmt.Sprintf("[t=%g r%d s%d sum=%d]", float64(p.Now()), rank, step, sum)
			}
		})
	}
	if _, err := e.Run(); err != nil {
		return "err: " + err.Error()
	}
	return out
}

// TestParallelGroupDeterministic checks the offload/join schedule is
// byte-identical across parallelism levels, including the scatter path.
func TestParallelGroupDeterministic(t *testing.T) {
	want := runParallelWorkload(1)
	for _, par := range []int{2, 4, 8} {
		if got := runParallelWorkload(par); got != want {
			t.Fatalf("parallelism %d diverged:\n got %s\nwant %s", par, got, want)
		}
	}
}

func TestParallelGroupScatter(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := NewEngine()
		e.SetParallelism(par)
		g := e.NewParallelGroup()
		res := make([]int, 37)
		fns := make([]func(), len(res))
		for i := range fns {
			i := i
			fns[i] = func() { res[i] = i * i }
		}
		g.Run(fns)
		for i, v := range res {
			if v != i*i {
				t.Fatalf("par %d: slot %d = %d", par, i, v)
			}
		}
	}
}

func TestTicketJoinIdempotentForNil(t *testing.T) {
	var tk *Ticket
	tk.Join() // must not panic
}
