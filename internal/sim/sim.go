// Package sim implements a deterministic discrete-event simulation (DES)
// kernel. It is the substrate on which the simulated GPUs, interconnects and
// training workers of this repository execute.
//
// Model: a simulation is a set of processes (Proc) orchestrated by an Engine.
// Each process runs in its own goroutine, but the engine enforces a strict
// handoff — exactly one process executes at any instant, and the order in
// which processes are resumed is a pure function of (virtual time, scheduling
// sequence number). Runs are therefore bit-for-bit reproducible regardless of
// GOMAXPROCS.
//
// Processes advance virtual time with Sleep, synchronise with Event, Barrier
// and Resource, and exchange data through bounded Queues. When no process is
// runnable and no timer is pending but live processes remain parked, Run
// reports a deadlock together with the parked process names — this is used to
// demonstrate the communication-deadlock hazard the paper's CCC scheme
// resolves.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in seconds.
type Time float64

// aborted is the sentinel panic value used to unwind parked processes when
// the engine shuts down early (deadlock or Interrupt).
type abortSignal struct{}

// Engine is a discrete-event simulation scheduler. Create one with NewEngine,
// spawn processes with Go, then call Run.
type Engine struct {
	now     Time
	seq     uint64 // monotonically increasing scheduling tiebreaker
	procSeq uint64 // process spawn counter (deterministic teardown order)
	timers  timerQueue
	ready   []*Proc // FIFO run queue at the current instant
	live    int     // processes started and not yet finished
	liveND  int     // live non-daemon processes
	parked  map[*Proc]string
	yield   chan yieldKind
	intr    error         // pending interrupt; Run tears down and returns it
	par     int           // data-work OS-thread budget (see parallel.go)
	parSem  chan struct{} // worker-slot semaphore shared by all groups
}

type yieldKind int

const (
	yieldParked yieldKind = iota
	yieldFinished
)

// NewEngine returns an empty simulation.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan yieldKind),
		parked: map[*Proc]string{},
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Proc is a simulation process. All Proc methods must be called from within
// the process's own function body (engine context).
type Proc struct {
	eng    *Engine
	name   string
	id     uint64 // spawn order; deterministic tiebreaker
	resume chan struct{}
	abort  bool
	daemon bool
	done   bool
	gen    uint64 // incremented on every resume; used to discard stale wakeups
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Go spawns a new process. It may be called before Run or from inside a
// running process; the new process becomes runnable at the current virtual
// time, after all currently runnable processes.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// GoDaemon spawns a background process that does not keep Run alive: when
// only daemon timers remain and every non-daemon process has finished, Run
// returns and leaves the daemons parked for a later Run call. Fault
// injectors use this so a pending fault scheduled past the end of an epoch
// does not inflate the epoch's virtual time.
func (e *Engine) GoDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	e.procSeq++
	p := &Proc{eng: e, name: name, id: e.procSeq, daemon: daemon, resume: make(chan struct{})}
	e.live++
	if !daemon {
		e.liveND++
	}
	go func() {
		<-p.resume
		if p.abort { // killed before it ever ran
			e.yield <- yieldFinished
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); ok {
					e.yield <- yieldFinished
					return
				}
				panic(r)
			}
		}()
		fn(p)
		e.yield <- yieldFinished
	}()
	e.ready = append(e.ready, p)
	return p
}

// runOne resumes p and blocks until it parks or finishes.
func (e *Engine) runOne(p *Proc) {
	p.resume <- struct{}{}
	kind := <-e.yield
	if kind == yieldFinished {
		p.done = true
		e.live--
		if !p.daemon {
			e.liveND--
		}
		delete(e.parked, p)
	}
}

// park relinquishes control to the engine; it returns when the engine
// resumes this process. why describes what the process is waiting for
// (used in deadlock reports).
func (p *Proc) park(why string) {
	if p.abort {
		// Killed while running: unwind at the next scheduling point.
		panic(abortSignal{})
	}
	p.eng.parked[p] = why
	p.eng.yield <- yieldParked
	<-p.resume
	p.gen++
	delete(p.eng.parked, p)
	if p.abort {
		panic(abortSignal{})
	}
}

// makeReady places p on the run queue for the current instant. Wakeups
// delivered to finished processes (e.g. a resource released by an unwinding
// process admitting a waiter that was itself already aborted) are dropped.
func (e *Engine) makeReady(p *Proc) {
	if p.done {
		return
	}
	e.ready = append(e.ready, p)
}

// Sleep advances the process by d virtual seconds. Negative d sleeps 0.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.seq++
	e.timers.Push(timer{at: e.now + d, seq: e.seq, p: p, gen: p.gen})
	p.park(fmt.Sprintf("sleep until %g", float64(e.now+d)))
}

// DeadlockError reports that the simulation stalled with live processes.
type DeadlockError struct {
	At     Time
	Parked []string // "name: reason" for each stuck process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%g with %d parked processes: %s",
		float64(d.At), len(d.Parked), strings.Join(d.Parked, "; "))
}

// Run executes the simulation until no non-daemon work remains. It returns
// the final virtual time. If non-daemon processes remain parked with no
// pending timers, Run aborts everything and returns a *DeadlockError. If a
// process called Interrupt, Run tears the simulation down deterministically
// and returns the interrupt error. Parked daemon processes survive a clean
// return and resume on the next Run call.
func (e *Engine) Run() (Time, error) {
	for {
		for len(e.ready) > 0 {
			p := e.ready[0]
			e.ready = e.ready[1:]
			if p.done {
				continue
			}
			e.runOne(p)
		}
		if e.intr != nil {
			err := e.intr
			e.intr = nil
			e.teardown()
			return e.now, err
		}
		if e.timers.Len() == 0 {
			break
		}
		t := e.timers.Pop()
		if t.gen != t.p.gen {
			// The process was resumed by another source (e.g. the event half
			// of WaitTimeout) after this timer was registered. Discard the
			// stale timer without advancing virtual time.
			continue
		}
		if t.p.daemon && e.liveND == 0 {
			// Only daemon work remains: stop here without advancing to the
			// daemon's wakeup time. The timer stays registered so the next
			// Run call (same engine, more work spawned) resumes it.
			e.timers.Push(t)
			break
		}
		if t.at > e.now {
			e.now = t.at
		}
		e.makeReady(t.p)
	}
	if e.liveND > 0 {
		derr := &DeadlockError{At: e.now}
		for _, p := range e.parkedByID() {
			derr.Parked = append(derr.Parked, p.name+": "+e.parked[p])
		}
		e.teardown()
		return e.now, derr
	}
	return e.now, nil
}

// Interrupt asks the engine to abort the simulation: once the current
// instant's run queue drains, Run unwinds every live process (daemons
// included), discards all timers and returns err. It models a fatal,
// machine-wide fault (e.g. a GPU crash detected by the training driver) and
// must be called from within a running process. The engine itself remains
// usable: virtual time is preserved and new processes may be spawned for a
// subsequent Run.
func (e *Engine) Interrupt(err error) {
	if err == nil {
		panic("sim: Interrupt requires a non-nil error")
	}
	if e.intr == nil {
		e.intr = err
	}
}

// Kill aborts a single process: parked, queued or not-yet-started processes
// unwind at the current instant; a process that is currently running (for
// example the caller itself) unwinds at its next scheduling point. Killing a
// finished process is a no-op. Pending timers and event registrations of the
// victim are discarded via its generation counter.
func (e *Engine) Kill(p *Proc) {
	if p.done {
		return
	}
	p.abort = true
	for _, q := range e.ready {
		if q == p {
			return // already queued; aborts when resumed
		}
	}
	if _, ok := e.parked[p]; ok {
		e.makeReady(p)
	}
	// Otherwise p is running right now; park's entry check unwinds it.
}

// parkedByID returns the parked processes in spawn order (deterministic).
func (e *Engine) parkedByID() []*Proc {
	procs := make([]*Proc, 0, len(e.parked))
	for p := range e.parked {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	return procs
}

// teardown unwinds every live process in deterministic order (ready queue
// first, then parked processes by spawn id) and clears all timers. Unwinding
// one process may ready others (deferred releases admit waiters); those run
// next, so FIFO admissions stay consistent during shutdown.
func (e *Engine) teardown() {
	e.timers.clear()
	for e.live > 0 {
		var p *Proc
		if len(e.ready) > 0 {
			p = e.ready[0]
			e.ready = e.ready[1:]
			if p.done {
				continue
			}
		} else {
			parked := e.parkedByID()
			if len(parked) == 0 {
				break
			}
			p = parked[0]
		}
		p.abort = true
		e.runOne(p)
	}
	e.ready = nil
	e.parked = map[*Proc]string{}
}

type timer struct {
	at  Time
	seq uint64
	p   *Proc
	gen uint64 // p.gen at registration; stale if p resumed since
}

// Event is a one-shot synchronisation point. Processes Wait on it; a Trigger
// wakes all waiters at the current instant. Waiting on an already-triggered
// event returns immediately.
type Event struct {
	eng     *Engine
	fired   bool
	waiters []eventWaiter
}

type eventWaiter struct {
	p   *Proc
	gen uint64 // p.gen at registration; stale if p resumed since
}

// NewEvent creates an untriggered event.
func (e *Engine) NewEvent() *Event { return &Event{eng: e} }

// Fired reports whether the event has been triggered.
func (ev *Event) Fired() bool { return ev.fired }

// Trigger fires the event, waking all waiters. Triggering twice is a no-op.
func (ev *Event) Trigger() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		if w.gen == w.p.gen { // skip waiters already woken by their timeout
			ev.eng.makeReady(w.p)
		}
	}
	ev.waiters = nil
}

// Wait parks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, eventWaiter{p, p.gen})
	p.park("event")
}

// WaitTimeout parks p until the event fires or d virtual seconds elapse,
// whichever comes first, and reports whether the event has fired. The losing
// wakeup source (the pending timer, or the waiter registration) is discarded
// via the process generation counter, so neither a spurious resume nor an
// inflated end-of-run time can result. Negative d waits 0.
//
// Edge cases are pinned deterministically:
//   - d == 0 parks the process and wakes it at the same instant via its
//     timer, after every currently runnable process has run. A Trigger from
//     any of those processes therefore wins over a zero timeout.
//   - A wake-vs-timeout tie at the same virtual instant resolves in
//     scheduling-sequence order: a Trigger delivered while the waiter is
//     still parked always beats the timeout (the timer becomes stale), and
//     when both sides are driven by timers at the same instant, the timer
//     registered first fires first.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.fired {
		return true
	}
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.seq++
	e.timers.Push(timer{at: e.now + d, seq: e.seq, p: p, gen: p.gen})
	ev.waiters = append(ev.waiters, eventWaiter{p, p.gen})
	p.park(fmt.Sprintf("event or timeout at %g", float64(e.now+d)))
	return ev.fired
}

// Barrier blocks processes until n of them have arrived, then releases the
// whole group and resets for reuse (a cyclic barrier).
type Barrier struct {
	eng   *Engine
	n     int
	count int
	wait  []*Proc
}

// NewBarrier creates a cyclic barrier for n parties.
func (e *Engine) NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{eng: e, n: n}
}

// Arrive parks p until all n parties have arrived in the current generation.
func (b *Barrier) Arrive(p *Proc) {
	b.count++
	if b.count == b.n {
		b.count = 0
		for _, w := range b.wait {
			b.eng.makeReady(w)
		}
		b.wait = nil
		return
	}
	b.wait = append(b.wait, p)
	p.park("barrier")
}

// Resource is a counted resource with FIFO admission (e.g., SM slots on a
// GPU, or a link treated as a single-server queue).
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity.
func (e *Engine) NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Acquire obtains n units, parking p in FIFO order if unavailable.
// It panics if n exceeds the total capacity (would never succeed).
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p, n})
	p.park("resource")
}

// Release returns n units and admits waiting processes in FIFO order.
// Waiters that were killed while parked are dropped without being charged —
// they will never run to release what they'd be granted.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource over-release")
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.p.done || w.p.abort {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			break
		}
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		r.eng.makeReady(w.p)
	}
}

// Use acquires one unit, sleeps for service, then releases: the single-server
// FCFS queue used to model bandwidth-serialised links and serialized kernels.
// The release is deferred so a process killed mid-service still returns its
// units as it unwinds (a dead GPU must not wedge a shared link).
func (r *Resource) Use(p *Proc, n int, service Time) {
	r.Acquire(p, n)
	defer r.Release(n)
	p.Sleep(service)
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueOf is a bounded FIFO of T with virtual-time blocking semantics: Put
// parks while full, Get parks while empty. It implements the
// producer-consumer queues of the training pipeline.
type QueueOf[T any] struct {
	eng      *Engine
	capacity int
	items    []T
	closed   bool
	getters  []*Proc
	putters  []*Proc
}

// Queue is the untyped queue (items of type any), kept as the name existing
// callers use; NewQueue constructs it.
type Queue = QueueOf[any]

// NewQueueOf creates a typed queue with the given capacity (must be
// positive).
func NewQueueOf[T any](e *Engine, capacity int) *QueueOf[T] {
	if capacity <= 0 {
		panic("sim: queue capacity must be positive")
	}
	return &QueueOf[T]{eng: e, capacity: capacity}
}

// NewQueue creates an untyped queue with the given capacity (must be
// positive).
func (e *Engine) NewQueue(capacity int) *Queue {
	return NewQueueOf[any](e, capacity)
}

// Len returns the number of buffered items.
func (q *QueueOf[T]) Len() int { return len(q.items) }

// Cap returns the queue capacity.
func (q *QueueOf[T]) Cap() int { return q.capacity }

// Put appends v, parking while the queue is full. Put on a closed queue
// panics (a pipeline bug).
func (q *QueueOf[T]) Put(p *Proc, v T) {
	for len(q.items) >= q.capacity {
		q.putters = append(q.putters, p)
		p.park("queue full")
	}
	if q.closed {
		panic("sim: put on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeGetters()
}

// Get removes and returns the oldest item, parking while empty. ok is false
// if the queue is closed and drained.
func (q *QueueOf[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 && !q.closed {
		q.getters = append(q.getters, p)
		p.park("queue empty")
	}
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.wakePutters()
	return v, true
}

// Close marks the queue as finished; blocked and future Gets drain remaining
// items and then return ok=false.
func (q *QueueOf[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.wakeGetters()
}

func (q *QueueOf[T]) wakeGetters() {
	for _, g := range q.getters {
		q.eng.makeReady(g)
	}
	q.getters = nil
}

func (q *QueueOf[T]) wakePutters() {
	for _, w := range q.putters {
		q.eng.makeReady(w)
	}
	q.putters = nil
}
