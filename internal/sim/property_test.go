package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestRandomWorkloadsDeterministic builds random process/resource/queue
// workloads and checks that two runs produce identical end times and event
// orders, and that the end time equals the analytic critical path for the
// independent-sleeps case.
func TestRandomWorkloadsDeterministic(t *testing.T) {
	build := func(seed uint64) (Time, []int) {
		r := rng.New(seed)
		e := NewEngine()
		res := e.NewResource(1 + r.Intn(3))
		q := e.NewQueue(1 + r.Intn(3))
		var order []int
		nProd := 1 + r.Intn(3)
		nItems := 1 + r.Intn(8)
		for i := 0; i < nProd; i++ {
			i := i
			d := Time(float64(r.Intn(100)) / 100)
			e.Go("p", func(p *Proc) {
				for j := 0; j < nItems; j++ {
					p.Sleep(d)
					res.Use(p, 1, 0.01)
					q.Put(p, i*100+j)
				}
				if i == 0 {
					// Producer 0 closes after a grace period so other
					// producers have finished (deterministic because the
					// sleep dominates).
					p.Sleep(10)
					q.Close()
				}
			})
		}
		e.Go("c", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				order = append(order, v.(int))
			}
		})
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end, order
	}
	check := func(seed uint64) bool {
		e1, o1 := build(seed)
		e2, o2 := build(seed)
		if e1 != e2 || len(o1) != len(o2) {
			return false
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(s uint16) bool { return check(uint64(s)) },
		&quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIndependentSleepsEndAtMax: with no shared resources, the end time is
// exactly the maximum total sleep.
func TestIndependentSleepsEndAtMax(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		e := NewEngine()
		n := 1 + r.Intn(10)
		var maxTotal Time
		for i := 0; i < n; i++ {
			steps := 1 + r.Intn(5)
			var total Time
			durs := make([]Time, steps)
			for j := range durs {
				durs[j] = Time(float64(r.Intn(1000)) / 250)
				total += durs[j]
			}
			if total > maxTotal {
				maxTotal = total
			}
			e.Go("s", func(p *Proc) {
				for _, d := range durs {
					p.Sleep(d)
				}
			})
		}
		end, err := e.Run()
		if err != nil {
			return false
		}
		diff := end - maxTotal
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(func(s uint16) bool { return check(uint64(s)) },
		&quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
