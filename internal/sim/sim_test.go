package sim

import (
	"strings"
	"testing"
)

func mustRun(t *testing.T, e *Engine) Time {
	t.Helper()
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return end
}

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		woke = p.Now()
	})
	end := mustRun(t, e)
	if woke != 2.5 || end != 2.5 {
		t.Fatalf("woke=%v end=%v, want 2.5", woke, end)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) { p.Sleep(-1) })
	if end := mustRun(t, e); end != 0 {
		t.Fatalf("end=%v, want 0", end)
	}
}

func TestProcessInterleavingDeterministic(t *testing.T) {
	runOnce := func() []string {
		e := NewEngine()
		var order []string
		for _, spec := range []struct {
			name  string
			delay Time
		}{{"a", 3}, {"b", 1}, {"c", 2}, {"d", 1}} {
			spec := spec
			e.Go(spec.name, func(p *Proc) {
				p.Sleep(spec.delay)
				order = append(order, spec.name)
				p.Sleep(spec.delay)
				order = append(order, spec.name+"2")
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := strings.Join(runOnce(), ",")
	for i := 0; i < 5; i++ {
		if got := strings.Join(runOnce(), ","); got != first {
			t.Fatalf("nondeterministic order: %q vs %q", got, first)
		}
	}
	// Equal wake times resolve in spawn order: b before d at t=1.
	if !strings.HasPrefix(first, "b,d,") {
		t.Fatalf("tie-break order wrong: %q", first)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Go("parent", func(p *Proc) {
		p.Sleep(1)
		e.Go("child", func(c *Proc) {
			c.Sleep(1)
			childRan = true
		})
	})
	end := mustRun(t, e)
	if !childRan || end != 2 {
		t.Fatalf("childRan=%v end=%v", childRan, end)
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			ev.Wait(p)
			woke++
		})
	}
	e.Go("trigger", func(p *Proc) {
		p.Sleep(5)
		ev.Trigger()
	})
	end := mustRun(t, e)
	if woke != 3 || end != 5 {
		t.Fatalf("woke=%d end=%v", woke, end)
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	ev.Trigger()
	ran := false
	e.Go("p", func(p *Proc) {
		ev.Wait(p)
		ran = true
	})
	mustRun(t, e)
	if !ran {
		t.Fatal("waiter on fired event did not proceed")
	}
}

func TestDoubleTriggerIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	ev.Trigger()
	ev.Trigger()
	if !ev.Fired() {
		t.Fatal("event not fired")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier(3)
	var release []Time
	for i := 0; i < 3; i++ {
		d := Time(i + 1)
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			b.Arrive(p)
			release = append(release, p.Now())
		})
	}
	mustRun(t, e)
	if len(release) != 3 {
		t.Fatalf("released %d, want 3", len(release))
	}
	for _, r := range release {
		if r != 3 {
			t.Fatalf("release time %v, want 3 (latest arrival)", r)
		}
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	e := NewEngine()
	b := e.NewBarrier(2)
	count := 0
	for i := 0; i < 2; i++ {
		e.Go("w", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(1)
				b.Arrive(p)
				count++
			}
		})
	}
	mustRun(t, e)
	if count != 6 {
		t.Fatalf("count=%d, want 6", count)
	}
}

func TestResourceFCFS(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name)
			p.Sleep(1)
			r.Release(1)
		})
	}
	end := mustRun(t, e)
	if got := strings.Join(order, ","); got != "a,b,c" {
		t.Fatalf("order=%q, want FIFO a,b,c", got)
	}
	if end != 3 {
		t.Fatalf("end=%v, want 3 (serialized)", end)
	}
}

func TestResourceParallelism(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(2)
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) { r.Use(p, 1, 1) })
	}
	if end := mustRun(t, e); end != 2 {
		t.Fatalf("end=%v, want 2 (two waves of two)", end)
	}
}

func TestResourceOverAcquirePanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(2)
	var recovered interface{}
	e.Go("p", func(p *Proc) {
		defer func() { recovered = recover() }()
		r.Acquire(p, 3)
	})
	mustRun(t, e)
	if recovered == nil {
		t.Fatal("acquiring beyond capacity did not panic")
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue(2)
	var putDone Time
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until consumer takes one
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(10)
		if v, ok := q.Get(p); !ok || v.(int) != 1 {
			t.Errorf("got %v,%v", v, ok)
		}
	})
	mustRun(t, e)
	if putDone != 10 {
		t.Fatalf("third Put completed at %v, want 10", putDone)
	}
}

func TestQueueBlocksWhenEmpty(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue(1)
	var got interface{}
	var gotAt Time
	e.Go("consumer", func(p *Proc) {
		got, _ = q.Get(p)
		gotAt = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(4)
		q.Put(p, "x")
	})
	mustRun(t, e)
	if got != "x" || gotAt != 4 {
		t.Fatalf("got=%v at %v", got, gotAt)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue(10)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(1)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	mustRun(t, e)
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueCloseUnblocksGetters(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue(1)
	okSeen := true
	e.Go("consumer", func(p *Proc) {
		_, okSeen = q.Get(p)
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(1)
		q.Close()
	})
	mustRun(t, e)
	if okSeen {
		t.Fatal("Get on closed empty queue returned ok=true")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	evA, evB := e.NewEvent(), e.NewEvent()
	e.Go("one", func(p *Proc) {
		evA.Wait(p)
		evB.Trigger()
	})
	e.Go("two", func(p *Proc) {
		evB.Wait(p)
		evA.Trigger()
	})
	_, err := e.Run()
	derr, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(derr.Parked) != 2 {
		t.Fatalf("parked=%v", derr.Parked)
	}
	if !strings.Contains(derr.Error(), "one") || !strings.Contains(derr.Error(), "two") {
		t.Fatalf("error lacks process names: %v", derr)
	}
}

func TestDeadlockAbortRunsDefers(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	cleaned := false
	e.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		ev.Wait(p)
	})
	if _, err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	if !cleaned {
		t.Fatal("defer did not run on abort")
	}
}

func TestManyProcessesStress(t *testing.T) {
	e := NewEngine()
	const n = 500
	done := 0
	res := e.NewResource(8)
	for i := 0; i < n; i++ {
		e.Go("w", func(p *Proc) {
			res.Use(p, 1, 0.001)
			done++
		})
	}
	mustRun(t, e)
	if done != n {
		t.Fatalf("done=%d, want %d", done, n)
	}
}

func BenchmarkEngineContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Go("spin", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestWaitTimeoutEventFirst(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	var at Time
	e.Go("waiter", func(p *Proc) {
		fired = ev.WaitTimeout(p, 10)
		at = p.Now()
	})
	e.Go("trigger", func(p *Proc) {
		p.Sleep(2)
		ev.Trigger()
	})
	end := mustRun(t, e)
	if !fired || at != 2 {
		t.Fatalf("fired=%v at=%v, want event win at t=2", fired, at)
	}
	// The stale 10s timeout timer must not drag the end time out to 10.
	if end != 2 {
		t.Fatalf("end=%v, want 2 (stale timer inflated the run)", end)
	}
}

func TestWaitTimeoutDeadlineFirst(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	var at Time
	e.Go("waiter", func(p *Proc) {
		fired = ev.WaitTimeout(p, 3)
		at = p.Now()
		// A later Trigger must not resume this process a second time.
		p.Sleep(5)
	})
	e.Go("trigger", func(p *Proc) {
		p.Sleep(6)
		ev.Trigger()
	})
	end := mustRun(t, e)
	if fired || at != 3 {
		t.Fatalf("fired=%v at=%v, want timeout at t=3", fired, at)
	}
	if end != 8 {
		t.Fatalf("end=%v, want 8", end)
	}
}

func TestWaitTimeoutAlreadyFired(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	var at Time
	e.Go("waiter", func(p *Proc) {
		ev.Trigger()
		fired = ev.WaitTimeout(p, 5)
		at = p.Now()
	})
	end := mustRun(t, e)
	if !fired || at != 0 || end != 0 {
		t.Fatalf("fired=%v at=%v end=%v, want immediate return", fired, at, end)
	}
}

func TestWaitTimeoutSameInstantEventWins(t *testing.T) {
	// Event triggered at exactly the deadline instant, but while the ready
	// queue is non-empty: the trigger path runs first and must report fired.
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	e.Go("trigger", func(p *Proc) {
		p.Sleep(1)
		ev.Trigger()
	})
	e.Go("waiter", func(p *Proc) {
		fired = ev.WaitTimeout(p, 1)
	})
	end := mustRun(t, e)
	if end != 1 {
		t.Fatalf("end=%v, want 1", end)
	}
	_ = fired // either wake source is legal at the exact tie; run must not hang
}

func TestWaitTimeoutRepeatedCycles(t *testing.T) {
	// A condition-variable style loop: the consumer repeatedly waits with a
	// timeout while a producer signals via a fresh event each round.
	e := NewEngine()
	var wake *Event
	wake = e.NewEvent()
	rounds := 0
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(0.5)
			old := wake
			wake = e.NewEvent()
			old.Trigger()
		}
	})
	e.Go("consumer", func(p *Proc) {
		for rounds < 5 {
			ev := wake
			if ev.WaitTimeout(p, 10) {
				rounds++
			}
		}
	})
	end := mustRun(t, e)
	if rounds != 5 {
		t.Fatalf("rounds=%d, want 5", rounds)
	}
	if end != 2.5 {
		t.Fatalf("end=%v, want 2.5", end)
	}
}
