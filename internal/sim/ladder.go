package sim

import "slices"

// timerQueue is an indexed bucket ("ladder") priority queue for timers,
// replacing the container/heap implementation that boxed every timer through
// interface{} on Push/Pop. It exploits the DES access pattern — pop times are
// monotonically non-decreasing, and every push is for the current instant or
// later — to make Push amortized O(1) and Pop amortized O(1) plus a sort
// whose total cost is O(n log b) over the life of the queue (b = bucket
// population, typically tiny).
//
// Structure, nearest deadline first:
//
//	bottom — the timers being drained right now, sorted DESCENDING by
//	         (at, seq) so Pop is a constant-time slice truncation.
//	rung   — one ladder rung: buckets of width rungWidth covering
//	         [rungStart, rungStart+len(rung)*rungWidth). Buckets are
//	         unsorted; a bucket is sorted only when it becomes bottom.
//	top    — unsorted far-future overflow past the rung, with its min/max
//	         tracked. When bottom and rung drain, top is scattered into a
//	         fresh rung sized so buckets stay near-constant population.
//
// Ordering is exactly the heap's: ascending (at, seq). The DES invariant
// that a new timer's deadline is never before the last popped deadline means
// a push landing "behind" the drain point can only happen while its bucket
// is already bottom, so such pushes clamp into the current bucket and get
// ordered by the bottom insertion (or the pending bucket sort).
type timerQueue struct {
	n         int
	bottom    []timer // sorted descending by (at, seq); pop from the end
	rung      [][]timer
	rungStart Time
	rungWidth Time
	rungIdx   int // next rung bucket to drain
	top       []timer
	topMin    Time
	topMax    Time
}

// timerBefore is the strict (at, seq) ordering shared with the old heap.
func timerBefore(a, b timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *timerQueue) Len() int { return q.n }

// Push inserts t. The caller guarantees t.at is not before the last popped
// deadline (DES monotonicity).
func (q *timerQueue) Push(t timer) {
	q.n++
	// Nearer than the furthest pending bottom entry: binary-insert into the
	// descending bottom slice so it pops in order.
	if len(q.bottom) > 0 && !timerBefore(q.bottom[0], t) {
		i, _ := slices.BinarySearchFunc(q.bottom, t, func(a, b timer) int {
			if timerBefore(a, b) {
				return 1 // descending order
			}
			return -1 // (at, seq) pairs are unique, never equal
		})
		q.bottom = slices.Insert(q.bottom, i, t)
		return
	}
	if q.rungIdx < len(q.rung) && t.at < q.rungStart+Time(len(q.rung))*q.rungWidth {
		i := int((t.at - q.rungStart) / q.rungWidth)
		// Float rounding or a deadline inside the bucket currently being
		// drained can land before the drain point; clamp (see type comment).
		if i < q.rungIdx {
			i = q.rungIdx
		}
		if i >= len(q.rung) {
			i = len(q.rung) - 1
		}
		q.rung[i] = append(q.rung[i], t)
		return
	}
	if len(q.top) == 0 || t.at < q.topMin {
		q.topMin = t.at
	}
	if len(q.top) == 0 || t.at > q.topMax {
		q.topMax = t.at
	}
	q.top = append(q.top, t)
}

// Pop removes and returns the earliest timer by (at, seq).
func (q *timerQueue) Pop() timer {
	for {
		if len(q.bottom) > 0 {
			q.n--
			t := q.bottom[len(q.bottom)-1]
			q.bottom = q.bottom[:len(q.bottom)-1]
			return t
		}
		if q.rungIdx < len(q.rung) {
			b := q.rung[q.rungIdx]
			q.rung[q.rungIdx] = nil
			q.rungIdx++
			if len(b) > 0 {
				slices.SortFunc(b, func(a, c timer) int {
					if timerBefore(a, c) {
						return 1
					}
					return -1
				})
				q.bottom = b
			}
			continue
		}
		q.rung, q.rungIdx = nil, 0
		if len(q.top) == 0 {
			panic("sim: pop from empty timer queue")
		}
		q.spread()
	}
}

// spread scatters top into a fresh rung sized for ~1 timer per bucket, or
// straight into bottom when all deadlines coincide (or top is small).
func (q *timerQueue) spread() {
	top := q.top
	q.top = nil
	span := q.topMax - q.topMin
	if span <= 0 || len(top) <= 4 {
		slices.SortFunc(top, func(a, c timer) int {
			if timerBefore(a, c) {
				return 1
			}
			return -1
		})
		q.bottom = top
		return
	}
	nb := len(top)
	if nb > 1024 {
		nb = 1024
	}
	q.rung = make([][]timer, nb)
	q.rungStart = q.topMin
	q.rungWidth = span / Time(nb)
	if q.rungWidth <= 0 { // span underflowed the division; degenerate to one bucket
		q.rung = q.rung[:1]
		q.rungWidth = span + 1
	}
	q.rungIdx = 0
	for _, t := range top {
		i := int((t.at - q.rungStart) / q.rungWidth)
		if i >= len(q.rung) {
			i = len(q.rung) - 1
		}
		if i < 0 {
			i = 0
		}
		q.rung[i] = append(q.rung[i], t)
	}
}

// clear drops all pending timers (engine teardown).
func (q *timerQueue) clear() {
	*q = timerQueue{}
}
