package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the old container/heap implementation, kept in tests as the
// ordering oracle for the ladder queue.
type refHeap []timer

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestLadderMatchesHeap drives the ladder queue and the heap with the same
// random push/pop schedule under the DES invariant (a push deadline is never
// before the last popped deadline) and requires identical pop sequences.
func TestLadderMatchesHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var lq timerQueue
		var rh refHeap
		var seq uint64
		var now Time
		pops := 0
		for op := 0; op < 4000; op++ {
			if lq.Len() != rh.Len() {
				t.Fatalf("trial %d: length mismatch %d vs %d", trial, lq.Len(), rh.Len())
			}
			if lq.Len() == 0 || rng.Intn(3) != 0 {
				seq++
				var d Time
				switch rng.Intn(4) {
				case 0:
					d = 0 // same-instant wakeups are the common case
				case 1:
					d = Time(rng.Float64()) * 1e-6
				case 2:
					d = Time(rng.Float64())
				case 3:
					d = Time(rng.Float64()) * 1e3 // far future
				}
				tm := timer{at: now + d, seq: seq}
				lq.Push(tm)
				heap.Push(&rh, tm)
				continue
			}
			got := lq.Pop()
			want := heap.Pop(&rh).(timer)
			if got != want {
				t.Fatalf("trial %d pop %d: got (at=%v seq=%d) want (at=%v seq=%d)",
					trial, pops, got.at, got.seq, want.at, want.seq)
			}
			now = got.at
			pops++
		}
		// Drain both completely.
		for rh.Len() > 0 {
			got := lq.Pop()
			want := heap.Pop(&rh).(timer)
			if got != want {
				t.Fatalf("trial %d drain: got (at=%v seq=%d) want (at=%v seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
			now = got.at
		}
		if lq.Len() != 0 {
			t.Fatalf("trial %d: ladder not empty after drain", trial)
		}
	}
}

// TestLadderCoincidentDeadlines exercises the all-equal-deadline spread path.
func TestLadderCoincidentDeadlines(t *testing.T) {
	var lq timerQueue
	for i := 0; i < 100; i++ {
		lq.Push(timer{at: 5, seq: uint64(i + 1)})
	}
	for i := 0; i < 100; i++ {
		got := lq.Pop()
		if got.seq != uint64(i+1) {
			t.Fatalf("pop %d: seq %d", i, got.seq)
		}
	}
}
