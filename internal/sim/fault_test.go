package sim

import (
	"errors"
	"testing"
)

// --- WaitTimeout edge cases (pinned ordering) ------------------------------

// A zero timeout parks the process and wakes it at the same instant, after
// every currently runnable process has had a chance to run. Virtual time
// must not advance.
func TestWaitTimeoutZeroDoesNotAdvanceTime(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	fired := true
	e.Go("w", func(p *Proc) {
		p.Sleep(0.5)
		fired = ev.WaitTimeout(p, 0)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatalf("zero timeout on unfired event reported fired")
	}
	if end != 0.5 {
		t.Fatalf("end = %g, want 0.5 (zero timeout must not advance time)", float64(end))
	}
}

// A zero timeout still loses to a Trigger performed by a process that was
// already runnable at the same instant: runnable processes execute before
// any timer (including the zero timer) pops.
func TestWaitTimeoutZeroLosesToRunnableTrigger(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	e.Go("w", func(p *Proc) {
		fired = ev.WaitTimeout(p, 0)
	})
	e.Go("t", func(p *Proc) {
		ev.Trigger()
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Fatalf("trigger from a runnable process must beat a zero timeout")
	}
}

// When the event trigger and the timeout are both driven by timers at the
// same virtual instant, the timer registered first (lower scheduling seq)
// wins. Registering the trigger's sleep first → event wins.
func TestWaitTimeoutTieTriggerRegisteredFirst(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	e.Go("t", func(p *Proc) {
		p.Sleep(1.0) // registered first: pops first at t=1
		ev.Trigger()
	})
	e.Go("w", func(p *Proc) {
		fired = ev.WaitTimeout(p, 1.0) // same instant, registered second
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Fatalf("tie at t=1: trigger timer was registered first and must win")
	}
}

// Same tie, reversed registration order: the timeout's timer pops first, the
// waiter wakes unfired, and the later Trigger at the same instant must not
// double-wake it (stale waiter registration).
func TestWaitTimeoutTieTimeoutRegisteredFirst(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent()
	var fired bool
	wakeups := 0
	e.Go("w", func(p *Proc) {
		fired = ev.WaitTimeout(p, 1.0) // registered first: pops first at t=1
		wakeups++
	})
	e.Go("t", func(p *Proc) {
		p.Sleep(1.0)
		ev.Trigger()
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatalf("tie at t=1: timeout timer was registered first and must win")
	}
	if wakeups != 1 {
		t.Fatalf("waiter woke %d times, want exactly 1", wakeups)
	}
}

// The resolution order must be identical across repeated same-seed runs.
func TestWaitTimeoutTieDeterministicAcrossRuns(t *testing.T) {
	run := func() (bool, Time) {
		e := NewEngine()
		ev := e.NewEvent()
		var fired bool
		for i := 0; i < 4; i++ {
			e.Go("noise", func(p *Proc) { p.Sleep(1.0) })
		}
		e.Go("w", func(p *Proc) { fired = ev.WaitTimeout(p, 1.0) })
		e.Go("t", func(p *Proc) { p.Sleep(1.0); ev.Trigger() })
		end, err := e.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return fired, end
	}
	f0, t0 := run()
	for i := 0; i < 10; i++ {
		f, tt := run()
		if f != f0 || tt != t0 {
			t.Fatalf("run %d diverged: fired=%v end=%g vs fired=%v end=%g", i, f, tt, f0, t0)
		}
	}
}

// --- Interrupt / Kill / daemon semantics -----------------------------------

func TestInterruptUnwindsAndReturnsError(t *testing.T) {
	e := NewEngine()
	boom := errors.New("gpu 2 crashed")
	cleaned := 0
	for i := 0; i < 3; i++ {
		e.Go("worker", func(p *Proc) {
			defer func() { cleaned++ }()
			p.Sleep(100)
		})
	}
	e.Go("injector", func(p *Proc) {
		p.Sleep(1.5)
		e.Interrupt(boom)
	})
	end, err := e.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if end != 1.5 {
		t.Fatalf("end = %g, want 1.5", float64(end))
	}
	if cleaned != 3 {
		t.Fatalf("cleaned = %d, want 3 (defers must run during teardown)", cleaned)
	}
	// The engine stays usable after an interrupt: time is preserved.
	e.Go("after", func(p *Proc) { p.Sleep(0.5) })
	end, err = e.Run()
	if err != nil {
		t.Fatalf("run after interrupt: %v", err)
	}
	if end != 2.0 {
		t.Fatalf("end = %g, want 2.0", float64(end))
	}
}

func TestKillParkedSleepingAndUnstarted(t *testing.T) {
	e := NewEngine()
	var sleeper, waiter, unstarted *Proc
	ev := e.NewEvent()
	ran := false
	sleeper = e.Go("sleeper", func(p *Proc) { p.Sleep(100) })
	waiter = e.Go("waiter", func(p *Proc) { ev.Wait(p) })
	e.Go("killer", func(p *Proc) {
		p.Sleep(1)
		unstarted = e.Go("unstarted", func(p *Proc) { ran = true })
		e.Kill(sleeper)
		e.Kill(waiter)
		e.Kill(unstarted)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v (killed procs must not deadlock)", err)
	}
	if end != 1 {
		t.Fatalf("end = %g, want 1 (sleeper's timer must be discarded)", float64(end))
	}
	if ran {
		t.Fatalf("killed-before-start process ran")
	}
	e.Kill(sleeper) // killing a finished process is a no-op
}

// Killing a process that holds a resource must release it (deferred release
// runs during unwinding) without waking already-finished waiters.
func TestKillReleasesHeldResources(t *testing.T) {
	e := NewEngine()
	r := e.NewResource(1)
	var holder *Proc
	acquired := false
	holder = e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		defer r.Release(1)
		p.Sleep(100)
	})
	e.Go("waiter", func(p *Proc) {
		r.Acquire(p, 1)
		acquired = true
		r.Release(1)
	})
	e.Go("killer", func(p *Proc) {
		p.Sleep(1)
		e.Kill(holder)
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !acquired {
		t.Fatalf("waiter never acquired the resource released by the killed holder")
	}
}

// A parked daemon with a pending timer must not keep Run alive or inflate
// the end time once all non-daemon work has finished — and it must resume on
// the next Run call of the same engine.
func TestDaemonDoesNotExtendRun(t *testing.T) {
	e := NewEngine()
	daemonFiredAt := Time(-1)
	e.GoDaemon("injector", func(p *Proc) {
		p.Sleep(5)
		daemonFiredAt = p.Now()
	})
	e.Go("work", func(p *Proc) { p.Sleep(1) })
	end, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if end != 1 {
		t.Fatalf("end = %g, want 1 (daemon timer must not extend the run)", float64(end))
	}
	if daemonFiredAt != -1 {
		t.Fatalf("daemon fired during a run with no overlapping work")
	}
	// More work past the daemon's wakeup: now it fires mid-run.
	e.Go("work2", func(p *Proc) { p.Sleep(9) })
	end, err = e.Run()
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if end != 10 {
		t.Fatalf("end = %g, want 10", float64(end))
	}
	if daemonFiredAt != 5 {
		t.Fatalf("daemon fired at %g, want 5", float64(daemonFiredAt))
	}
}
