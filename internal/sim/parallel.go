package sim

import (
	"sync"
	"sync/atomic"
)

// This file adds real-thread parallelism for *data* work — sampling draws,
// feature gathers, codec encode/decode, GNN math — without perturbing the
// DES. The engine's scheduling stays strictly single-threaded and
// deterministic; what runs on extra OS threads is pure computation whose
// results are merged back into virtual time at well-defined commit points.
//
// The rules that keep this deterministic and virtual-time-exact:
//
//   - A submitted unit must be self-contained: it may not call any engine,
//     Proc, trace or stats API, draw from a shared RNG stream, or mutate
//     state another unit (or the engine thread) reads before its Join.
//     Seeded per-item RNG (rng.New / rng.Mix keyed by node or element ids)
//     is fine — draws are a pure function of the key, not of timing.
//   - Results are written into slots owned by the submitting rank and are
//     merged — along with trace events and counters derived from them — by
//     sim processes in DES order after Join. The merge order is therefore a
//     function of virtual time alone, never of OS scheduling.
//   - Join blocks the engine's OS thread in *real* time only; no virtual
//     time passes and no virtual-time barrier is introduced, so processes
//     that reach their work at different virtual instants stay uncoupled.
//
// Speedup comes from overlap: a process submits its unit, then spends
// virtual time in kernel/transfer sleeps; while the engine thread runs
// *other* processes (which submit their own units), the pool chews through
// everyone's data work concurrently. At parallelism 1 (the default) units
// run inline at Join on the engine thread, byte-identical to the parallel
// schedule by construction.

// SetParallelism sets the number of OS threads ParallelGroup may use for
// offloaded data work, including the engine thread itself. n <= 1 (the
// default) disables offloading: units run inline at Join. Call before or
// between Runs; existing groups pick the new value up on their next Submit.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.par = n
	if n > 1 && (e.parSem == nil || cap(e.parSem) != n-1) {
		e.parSem = make(chan struct{}, n-1)
	}
}

// Parallelism returns the configured data-work thread count (minimum 1).
func (e *Engine) Parallelism() int {
	if e.par < 1 {
		return 1
	}
	return e.par
}

// ParallelGroup executes independent units of real data work on OS worker
// threads between DES commit points (see the file comment for the rules).
// Groups are cheap handles over the engine's shared worker budget; one per
// subsystem (sampler world, communicator, trainer) is typical.
type ParallelGroup struct {
	eng *Engine
}

// NewParallelGroup returns a group drawing on the engine's parallelism.
func (e *Engine) NewParallelGroup() *ParallelGroup { return &ParallelGroup{eng: e} }

// Ticket is a handle for one submitted unit. The zero/nil ticket joins
// immediately.
type Ticket struct {
	fn   func() // inline mode: deferred to Join
	done chan struct{}
}

// Submit schedules fn. At parallelism > 1 it starts on a worker thread
// immediately (bounded by the engine's thread budget) and runs concurrently
// with the simulation; at parallelism 1 it is deferred and runs inline at
// Join. Either way fn's effects may only be observed after Join returns.
func (g *ParallelGroup) Submit(fn func()) *Ticket {
	e := g.eng
	if e.par <= 1 {
		return &Ticket{fn: fn}
	}
	t := &Ticket{done: make(chan struct{})}
	sem := e.parSem
	go func() {
		defer close(t.done)
		sem <- struct{}{}
		defer func() { <-sem }()
		fn()
	}()
	return t
}

// Join waits (real time, zero virtual time) until the unit has run. It is
// safe to call from any sim process — not only the submitter — and at most
// once per ticket from one place; the commit point it marks is where the
// unit's results become visible for deterministic merge.
func (t *Ticket) Join() {
	if t == nil {
		return
	}
	if t.fn != nil {
		fn := t.fn
		t.fn = nil
		fn()
		return
	}
	if t.done != nil {
		<-t.done
	}
}

// Run executes fns as one scatter/gather: all units run (the calling thread
// participates, extra workers join up to the engine's budget) and Run
// returns when every unit is done. Use it for splitting one rank's large
// data task — e.g. segment-parallel reduction — at a single commit point.
func (g *ParallelGroup) Run(fns []func()) {
	e := g.eng
	if e.par <= 1 || len(fns) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(fns) {
				return
			}
			fns[i]()
		}
	}
	workers := e.par - 1
	if workers > len(fns)-1 {
		workers = len(fns) - 1
	}
	var wg sync.WaitGroup
	sem := e.parSem
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				work()
			default:
				// Budget exhausted by other in-flight units; the calling
				// thread still drains everything.
			}
		}()
	}
	work()
	wg.Wait()
}
