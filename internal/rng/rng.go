// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator.
//
// Everything in this repository that needs randomness draws from an explicit
// *rng.RNG so that a single seed reproduces an entire run: the synthetic
// graphs, the graph samples, the model initialisation, and therefore the
// virtual timings. The generator is xoshiro256**, seeded via splitmix64 as
// recommended by its authors.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; derive per-worker streams with Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Split derives an independent child stream. The child is seeded from the
// parent's output, so distinct calls yield distinct streams and the parent
// advances (making the derivation order-sensitive but reproducible).
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponential variate with rate lambda.
func (r *RNG) Exp(lambda float64) float64 {
	return -math.Log(1-r.Float64()) / lambda
}

// Mix hashes a sequence of values into a single 64-bit seed (splitmix64
// finalizer chain). It derives per-(batch, layer, node) sampling seeds so a
// node's neighbour draw is the same no matter which GPU executes it — the
// property that makes distributed CSP results identical to a single-address-
// space reference sampler.
func Mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
