package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
	// Split derivation is reproducible from the same parent seed.
	if New(123).Split().Uint64() != New(123).Split().Uint64() {
		t.Fatal("split not reproducible")
	}
}

func TestShuffleCoverage(t *testing.T) {
	// Every permutation of 3 elements should appear under shuffling.
	r := New(17)
	seen := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		s := []int{0, 1, 2}
		r.ShuffleInts(s)
		seen[[3]int{s[0], s[1], s[2]}]++
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 permutations, saw %d", len(seen))
	}
	for p, c := range seen {
		if c < 700 {
			t.Errorf("permutation %v underrepresented: %d", p, c)
		}
	}
}

func TestExpPositiveAndMean(t *testing.T) {
	r := New(21)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}
