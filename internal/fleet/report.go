package fleet

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Report summarises one routed run: router-level admission and dispatch
// outcomes plus every replica's own serve.Report. Deterministic: same Config
// → bitwise-identical report.
type Report struct {
	Policy   Policy
	Horizon  sim.Time
	Makespan sim.Time
	Offered  float64
	// Throughput is completions across all fleets over the makespan.
	Throughput float64

	// Router admission accounting. Arrived = Completed-sum + Shed + Lost-sum:
	// every arrival is either turned away at the router (quota, no admitting
	// fleet, un-rescuable orphan — all in Shed), completed by some fleet, or
	// lost inside a crashed fleet's pipeline.
	Arrived       int
	Shed          int
	QuotaRejected int
	// Rerouted counts requests rescued from dying fleets onto survivors.
	Rerouted int
	Tenants  []serve.TenantCount

	// Latency and Goodput merge every fleet's distributions (Goodput nil
	// without an SLO).
	Latency *metrics.Histogram
	Goodput *metrics.Goodput
	SLO     sim.Time

	Fleets []FleetStat
	Scale  []ScaleEvent
	// PerFleet holds each replica's full report, indexed by fleet id.
	PerFleet []*serve.Report
}

// FleetStat is one replica's outcome under the router.
type FleetStat struct {
	ID    int
	State State
	// Routed counts requests dispatched here (including rescues routed in);
	// Completed the ones it answered.
	Routed    int
	Completed int
	// Rerouted counts requests rescued FROM this fleet: orphans re-homed at
	// its death plus its own intra-fleet reroutes off dead GPUs. Lost counts
	// dispatched requests it never answered.
	Rerouted int
	Lost     int
	P99      sim.Time
	DeadGPUs []int
}

func (r *Router) report(end sim.Time) (*Report, error) {
	rep := &Report{
		Policy:        r.cfg.Policy,
		Horizon:       r.cfg.Serve.Duration,
		Makespan:      end,
		Offered:       r.cfg.Serve.Rate,
		Arrived:       r.arrived,
		Shed:          r.shed,
		QuotaRejected: r.quotaRej,
		Rerouted:      r.rerouted,
		Tenants:       r.tenants.Counts(),
		Latency:       metrics.New(),
		SLO:           r.cfg.Serve.SLO,
		Scale:         append([]ScaleEvent(nil), r.scale...),
	}
	total := 0
	for f, s := range r.servers {
		fr, err := s.Finish(end)
		if err != nil {
			return nil, fmt.Errorf("fleet %d: %w", f, err)
		}
		rep.PerFleet = append(rep.PerFleet, fr)
		rep.Latency.Merge(fr.Latency)
		if fr.Goodput != nil {
			if rep.Goodput == nil {
				rep.Goodput = metrics.NewGoodput(fr.Goodput.Window(), fr.Goodput.SLO())
			}
			rep.Goodput.Merge(fr.Goodput)
		}
		total += fr.Completed
		st := FleetStat{
			ID:        f,
			State:     r.state[f],
			Routed:    r.routed[f],
			Completed: fr.Completed,
			Rerouted:  r.rescued[f] + fr.Rerouted,
			Lost:      fr.Lost,
			DeadGPUs:  append([]int(nil), fr.DeadGPUs...),
		}
		if fr.Latency.Count() > 0 {
			st.P99 = sim.Time(fr.Latency.P99())
		}
		rep.Fleets = append(rep.Fleets, st)
	}
	if end > 0 {
		rep.Throughput = float64(total) / float64(end)
	}
	return rep, nil
}

// Completed sums completions across fleets.
func (r *Report) Completed() int {
	n := 0
	for _, f := range r.Fleets {
		n += f.Completed
	}
	return n
}

// Lost sums dispatched-but-never-answered requests across fleets.
func (r *Report) Lost() int {
	n := 0
	for _, f := range r.Fleets {
		n += f.Lost
	}
	return n
}

// ShedRate is the fraction of arrivals turned away at the router.
func (r *Report) ShedRate() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Arrived)
}

// DeadFleets lists fleets killed by whole-fleet faults, ascending.
func (r *Report) DeadFleets() []int {
	var out []int
	for _, f := range r.Fleets {
		if f.State == Dead {
			out = append(out, f.ID)
		}
	}
	return out
}

// String renders the operator-facing summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router %s  fleets %d  horizon %.2fs  makespan %.2fs  offered %.0f req/s\n",
		r.Policy, len(r.Fleets), float64(r.Horizon), float64(r.Makespan), r.Offered)
	fmt.Fprintf(&b, "arrived %d  completed %d  shed %d (%.1f%%)  rerouted %d  lost %d\n",
		r.Arrived, r.Completed(), r.Shed, 100*r.ShedRate(), r.Rerouted, r.Lost())
	fmt.Fprintf(&b, "throughput %.0f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency  p50 %.3fms  p95 %.3fms  p99 %.3fms  mean %.3fms",
		1e3*r.Latency.P50(), 1e3*r.Latency.P95(), 1e3*r.Latency.P99(), 1e3*r.Latency.Mean())
	if r.Goodput != nil {
		fmt.Fprintf(&b, "\ngoodput  %d/%d within %.1fms SLO (%.1f%%)  %.0f good req/s",
			r.Goodput.Good(), r.Goodput.Total(), 1e3*float64(r.SLO),
			100*r.Goodput.GoodFraction(), r.Goodput.Rate())
	}
	for _, tc := range r.Tenants {
		fmt.Fprintf(&b, "\ntenant %-10s admitted %d  rejected %d", tc.Name, tc.Admitted, tc.Rejected)
	}
	for _, f := range r.Fleets {
		fmt.Fprintf(&b, "\nfleet%d %-8s routed %-6d completed %-6d p99 %.3fms",
			f.ID, f.State, f.Routed, f.Completed, 1e3*float64(f.P99))
		if f.Rerouted > 0 || f.Lost > 0 {
			fmt.Fprintf(&b, "  rerouted %d  lost %d", f.Rerouted, f.Lost)
		}
		if len(f.DeadGPUs) > 0 {
			fmt.Fprintf(&b, "  dead gpus %v", f.DeadGPUs)
		}
	}
	for _, e := range r.Scale {
		fmt.Fprintf(&b, "\nscale  %s", e)
	}
	return b.String()
}

// RunReport renders the routed run into the canonical dsp-runreport schema:
// merged latency/goodput and aggregate serving scalars at the top level, the
// per-fleet breakdown in the Fleet section.
func (r *Report) RunReport(meta serve.ReportMeta) *prof.RunReport {
	out := prof.New("dspserve")
	out.System = "DSP"
	out.Dataset = meta.Dataset
	out.GPUs = meta.GPUs
	out.Seed = meta.Seed
	out.Shrink = meta.Shrink
	out.WallTime = float64(r.Makespan)
	out.Latency = prof.Latency(r.Latency)
	for _, fr := range r.PerFleet {
		out.Wire.Sample += fr.SampleWire
		out.Wire.Feature += fr.FeatureWire
	}
	sv := &prof.ServingReport{
		Offered:       r.Offered,
		Throughput:    r.Throughput,
		Arrived:       r.Arrived,
		Completed:     r.Completed(),
		Shed:          r.Shed,
		ShedRate:      r.ShedRate(),
		Rerouted:      r.Rerouted,
		Lost:          r.Lost(),
		QuotaRejected: r.QuotaRejected,
		Goodput:       prof.GoodputFrom(r.Goodput),
	}
	var rounds int
	var batch float64
	for _, fr := range r.PerFleet {
		sv.Rounds += fr.Rounds
		rounds += fr.Rounds
		batch += fr.MeanBatch * float64(fr.Rounds)
	}
	if rounds > 0 {
		sv.MeanBatch = batch / float64(rounds)
	}
	for _, tc := range r.Tenants {
		sv.Tenants = append(sv.Tenants, prof.TenantReport{
			Name: tc.Name, Admitted: tc.Admitted, Rejected: tc.Rejected,
		})
	}
	out.Serving = sv

	fs := &prof.FleetSection{
		Policy: r.Policy.String(),
		Built:  len(r.Fleets),
	}
	for i, f := range r.Fleets {
		fr := r.PerFleet[i]
		if f.State == Active {
			fs.Active++
		}
		fs.Rerouted += f.Rerouted
		if f.State == Dead {
			fs.DeadFleets = append(fs.DeadFleets, f.ID)
		}
		fs.PerFleet = append(fs.PerFleet, prof.FleetEntry{
			ID:        f.ID,
			State:     f.State.String(),
			Routed:    f.Routed,
			Completed: f.Completed,
			Rerouted:  f.Rerouted,
			Lost:      f.Lost,
			P99:       float64(f.P99),
			Goodput:   prof.GoodputFrom(fr.Goodput),
			DeadGPUs:  append([]int(nil), f.DeadGPUs...),
		})
	}
	for _, e := range r.Scale {
		fs.Scale = append(fs.Scale, prof.ScaleEventReport{
			At: float64(e.At), Action: e.Action, Fleet: e.Fleet, P99: float64(e.P99),
			Reason: e.Reason,
		})
	}
	out.Fleet = fs
	return out
}
