package fleet

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/sample"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/train"
)

func testData(t testing.TB, nGPU int) *train.Data {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "fleet-t", Nodes: 2000, AvgDegree: 10, FeatDim: 16, NumClasses: 6, Seed: 11,
	})
	return train.Prepare(d, nGPU, 1, true)
}

func testConfig(t testing.TB, fleets int) Config {
	t.Helper()
	return Config{
		Serve: serve.Config{
			Data:     testData(t, 2),
			Sample:   sample.Config{Fanout: []int{6, 4}},
			Seed:     42,
			Duration: 0.05,
			Rate:     4000,
			Skew:     0.8,
			UseCCC:   true,
			SLO:      10e-3,
		},
		Fleets: fleets,
	}
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkAccounting asserts the router-level conservation law: every arrival is
// shed at the router, completed by some fleet, or lost inside a dead one.
func checkAccounting(t *testing.T, rep *Report) {
	t.Helper()
	if got := rep.Completed() + rep.Shed + rep.Lost(); got != rep.Arrived {
		t.Fatalf("accounting: completed %d + shed %d + lost %d = %d != arrived %d",
			rep.Completed(), rep.Shed, rep.Lost(), got, rep.Arrived)
	}
	if rep.Latency.Count() != uint64(rep.Completed()) {
		t.Fatalf("latency observations %d != completed %d", rep.Latency.Count(), rep.Completed())
	}
}

func TestFleetSmoke(t *testing.T) {
	rep := mustRun(t, testConfig(t, 2))
	t.Logf("\n%s", rep)
	if rep.Completed() == 0 {
		t.Fatal("no requests completed")
	}
	checkAccounting(t, rep)
	for _, f := range rep.Fleets {
		if f.Routed == 0 {
			t.Fatalf("fleet%d received no traffic under round-robin", f.ID)
		}
		if f.State != Active {
			t.Fatalf("fleet%d ended %v, want active", f.ID, f.State)
		}
	}
	if rep.Goodput == nil || rep.Goodput.Total() != uint64(rep.Completed()) {
		t.Fatalf("merged goodput missing or incomplete: %v", rep.Goodput)
	}
}

func TestFleetPolicies(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, LatencyAware, ShardAffinity} {
		cfg := testConfig(t, 3)
		cfg.Policy = pol
		rep := mustRun(t, cfg)
		if rep.Completed() == 0 {
			t.Fatalf("%s: no completions", pol)
		}
		checkAccounting(t, rep)
		if rep.Policy != pol {
			t.Fatalf("report policy %v != %v", rep.Policy, pol)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
	}{
		{"", RoundRobin}, {"rr", RoundRobin}, {"least-loaded", LeastLoaded},
		{"la", LatencyAware}, {"shard-affinity", ShardAffinity},
	} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus policy")
	}
}

// TestFleetRunReportDeterminism: the same seed with N fleets produces a
// byte-identical dsp-runreport document across runs.
func TestFleetRunReportDeterminism(t *testing.T) {
	meta := serve.ReportMeta{Dataset: "fleet-t", GPUs: 6, Seed: 42}
	encode := func() []byte {
		cfg := testConfig(t, 3)
		cfg.Policy = LeastLoaded
		rr := mustRun(t, cfg).RunReport(meta)
		if err := rr.Validate(); err != nil {
			t.Fatal(err)
		}
		data, err := rr.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("runreport not byte-identical across runs:\n%s\n---\n%s", a, b)
	}
}

// TestFleetDriftIndependence: each replica derives its own seed, so its
// popularity drift walks through its own phase mappings — no two fleets (and
// neither fleet and the router) share a re-mapping.
func TestFleetDriftIndependence(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.Serve.DriftEvery = 0.01
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := sim.Time(0.015) // phase 1
	maps := [][]int64{}
	for _, s := range r.Servers() {
		m := s.Workload().MappingAt(at)
		ids := make([]int64, len(m))
		for i, v := range m {
			ids[i] = int64(v)
		}
		maps = append(maps, ids)
	}
	same := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := range maps {
		for j := i + 1; j < len(maps); j++ {
			if same(maps[i], maps[j]) {
				t.Fatalf("fleets %d and %d share a drift mapping at phase 1", i, j)
			}
		}
		if p0 := r.Servers()[i].Workload().MappingAt(0); same(maps[i], func() []int64 {
			ids := make([]int64, len(p0))
			for k, v := range p0 {
				ids[k] = int64(v)
			}
			return ids
		}()) {
			t.Fatalf("fleet %d did not drift at phase 1", i)
		}
	}
}

// TestFleetCrashReroute: killing one of three fleets mid-run drains it, the
// router re-homes its queued requests, and the run still completes with the
// loss attributed to the dead replica.
func TestFleetCrashReroute(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.Serve.Rate = 12000 // enough depth that the dying fleet holds queued work
	ffs, err := fault.ParseFleetSpec("crash@fleet1:t=0.02", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = ffs
	rep := mustRun(t, cfg)
	t.Logf("\n%s", rep)
	checkAccounting(t, rep)
	if got := rep.DeadFleets(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("dead fleets %v, want [1]", got)
	}
	dead := rep.Fleets[1]
	if dead.State != Dead {
		t.Fatalf("fleet1 state %v, want dead", dead.State)
	}
	if !rep.PerFleet[1].Killed || rep.PerFleet[1].KilledAt != 0.02 {
		t.Fatalf("fleet1 kill not recorded: killed=%v at=%v",
			rep.PerFleet[1].Killed, rep.PerFleet[1].KilledAt)
	}
	if rep.Rerouted == 0 {
		t.Fatal("no requests were rescued from the dying fleet")
	}
	if dead.Lost == 0 {
		t.Fatal("a fleet killed mid-round should lose its dispatched requests")
	}
	// Survivors keep completing after the crash instant.
	for _, f := range []int{0, 2} {
		after := 0
		for _, req := range rep.PerFleet[f].Requests {
			if req.Done > 0.02 {
				after++
			}
		}
		if after == 0 {
			t.Fatalf("fleet%d completed nothing after the crash", f)
		}
	}
	// The dead fleet must not receive traffic after its death: every routed
	// request either completed, was rescued, or died with it.
	if dead.Routed != dead.Completed+rep.rescuedOf(1)+dead.Lost {
		t.Fatalf("fleet1 routed %d != completed %d + rescued %d + lost %d",
			dead.Routed, dead.Completed, rep.rescuedOf(1), dead.Lost)
	}
}

// rescuedOf extracts the router-rescued component of a fleet's Rerouted count
// (its serve-internal GPU reroutes are the rest).
func (r *Report) rescuedOf(f int) int {
	return r.Fleets[f].Rerouted - r.PerFleet[f].Rerouted
}

// TestFleetTenantQuota: a rate-capped tenant is quota-rejected at the router
// while the uncapped tenant is untouched, and per-tenant counts cover every
// arrival.
func TestFleetTenantQuota(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Serve.Tenants = []serve.TenantSpec{
		{Name: "free", Weight: 4, Rate: 500},
		{Name: "pro", Weight: 1},
	}
	rep := mustRun(t, cfg)
	t.Logf("\n%s", rep)
	checkAccounting(t, rep)
	if rep.QuotaRejected == 0 {
		t.Fatal("capped tenant was never quota-rejected")
	}
	var sum int
	for _, tc := range rep.Tenants {
		sum += tc.Admitted + tc.Rejected
		if tc.Name == "free" && tc.Rejected == 0 {
			t.Fatal("tenant free has quota 500 req/s under 4/5 of 4000 req/s but was never rejected")
		}
		if tc.Name == "pro" && tc.Rejected != 0 {
			t.Fatalf("uncapped tenant pro rejected %d times", tc.Rejected)
		}
	}
	if sum != rep.Arrived {
		t.Fatalf("tenant counts sum to %d, arrived %d", sum, rep.Arrived)
	}
}

// TestFleetAutoscaler: one active fleet under heavy load scales up into its
// standby headroom; after scale-up the new fleet carries traffic.
func TestFleetAutoscaler(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Serve.Rate = 20000
	cfg.Serve.Duration = 0.1
	cfg.Policy = LeastLoaded
	// Up well under the observed single-fleet p99 so saturation trips it.
	cfg.Autoscale = Autoscale{Min: 1, Max: 3, Period: 10e-3, Up: 2e-3}
	rep := mustRun(t, cfg)
	t.Logf("\n%s", rep)
	checkAccounting(t, rep)
	ups := 0
	for _, e := range rep.Scale {
		if e.Action == "up" {
			ups++
		}
	}
	if ups == 0 {
		t.Fatalf("saturated single fleet never scaled up: %+v", rep.Scale)
	}
	carried := 0
	for _, f := range rep.Fleets[1:] {
		carried += f.Routed
	}
	if carried == 0 {
		t.Fatal("scaled-up fleets carried no traffic")
	}
}

// TestFleetAutoscalerDrains: a heavily over-provisioned fleet set under light
// load drains down toward Min.
func TestFleetAutoscalerDrains(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.Serve.Rate = 500
	cfg.Serve.Duration = 0.1
	// Down above the observed light-load p99 so comfort trips a drain.
	cfg.Autoscale = Autoscale{Min: 1, Max: 3, Period: 10e-3, Up: 20e-3, Down: 5e-3}
	rep := mustRun(t, cfg)
	t.Logf("\n%s", rep)
	drains := 0
	for _, e := range rep.Scale {
		if e.Action == "drain" {
			drains++
		}
	}
	if drains == 0 {
		t.Fatalf("idle fleets never drained: %+v", rep.Scale)
	}
}

// TestFleetSingleEqualsServe: a 1-fleet router is the degenerate case — the
// same conservation laws hold and all traffic lands on fleet 0.
func TestFleetSingleEqualsServe(t *testing.T) {
	rep := mustRun(t, testConfig(t, 1))
	checkAccounting(t, rep)
	if rep.Fleets[0].Routed != rep.Arrived-rep.Shed {
		t.Fatalf("fleet0 routed %d != admitted %d", rep.Fleets[0].Routed, rep.Arrived-rep.Shed)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(t, 0)
	if _, err := NewRouter(cfg); err == nil {
		t.Fatal("Fleets=0 accepted")
	}
	cfg = testConfig(t, 3)
	cfg.Autoscale = Autoscale{Min: 1, Max: 2}
	if _, err := NewRouter(cfg); err == nil {
		t.Fatal("Autoscale.Max below Fleets accepted")
	}
	cfg = testConfig(t, 2)
	cfg.Serve.External = true
	if _, err := NewRouter(cfg); err == nil {
		t.Fatal("router-owned template field accepted")
	}
}
