package fleet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// State is one fleet's position in the autoscaler lifecycle.
type State int

const (
	// Active fleets receive routed traffic.
	Active State = iota
	// Draining fleets receive no new traffic but still complete what they
	// hold; once empty they park as Standby.
	Draining
	// Standby fleets are built and idle — scale-up headroom.
	Standby
	// Dead fleets were killed by a whole-fleet fault and never return.
	Dead
)

func (s State) String() string {
	switch s {
	case Draining:
		return "draining"
	case Standby:
		return "standby"
	case Dead:
		return "dead"
	default:
		return "active"
	}
}

// Autoscale configures SLO-band fleet autoscaling. The zero value disables
// it (the fleet set is static).
type Autoscale struct {
	// Min and Max bound the active-fleet count. Autoscaling is enabled when
	// Max > 0; Min defaults to 1.
	Min, Max int
	// Period is the evaluation interval (default 25 ms).
	Period sim.Time
	// Up activates a standby fleet when the window p99 of routed traffic
	// exceeds it (default: the SLO). Down drains the highest-id active fleet
	// when window p99 stays below it (default: Up/4).
	Up, Down sim.Time
}

func (a Autoscale) enabled() bool { return a.Max > 0 }

func (a Autoscale) withDefaults(slo sim.Time) Autoscale {
	if !a.enabled() {
		return a
	}
	if a.Min <= 0 {
		a.Min = 1
	}
	if a.Period <= 0 {
		a.Period = 25e-3
	}
	if a.Up <= 0 {
		if slo > 0 {
			a.Up = slo
		} else {
			a.Up = 5e-3
		}
	}
	if a.Down <= 0 {
		a.Down = a.Up / 4
	}
	return a
}

// ScaleEvent records one autoscaler action.
type ScaleEvent struct {
	At     sim.Time
	Action string // up | drain | standby
	Fleet  int
	// P99 is the window p99 that triggered the action (seconds; 0 for the
	// drain→standby transition, which is emptiness- not latency-driven).
	P99 sim.Time
	// Reason is "burn-rate" when a firing page alert forced the action
	// ahead of the p99 bands; empty for band-driven actions.
	Reason string
}

func (e ScaleEvent) String() string {
	if e.Reason != "" {
		return fmt.Sprintf("%.3fs %s fleet%d (%s, window p99 %.3fms)",
			float64(e.At), e.Action, e.Fleet, e.Reason, 1e3*float64(e.P99))
	}
	return fmt.Sprintf("%.3fs %s fleet%d (window p99 %.3fms)",
		float64(e.At), e.Action, e.Fleet, 1e3*float64(e.P99))
}

// autoscaler is the periodic scaling daemon: each period it merges the
// per-fleet latency windows into the routed-traffic p99, crosses it against
// the SLO bands, and moves at most one fleet per period between states —
// single-step scaling damps oscillation the same way production autoscalers
// use cooldowns. It also completes drains (an empty Draining fleet parks as
// Standby) and finally resets the windows.
func (r *Router) autoscaler(p *sim.Proc) {
	as := r.cfg.Autoscale
	for {
		p.Sleep(as.Period)
		p99 := r.windowP99()
		// A firing page-severity burn-rate alert overrides the p99 bands:
		// it forces a scale-up even when the completion window looks fine
		// (sheds burn the error budget without completing), and it vetoes
		// drains until the budget stops burning.
		burning := r.hub().PageFiring()
		switch {
		case burning && r.countState(Active) < as.Max:
			if f := r.firstState(Standby); f >= 0 {
				r.state[f] = Active
				r.scale = append(r.scale, ScaleEvent{
					At: p.Now(), Action: "up", Fleet: f, P99: p99, Reason: "burn-rate",
				})
			}
		case p99 > sim.Time(0) && p99 > as.Up && r.countState(Active) < as.Max:
			// Saturated: bring one standby fleet into rotation.
			if f := r.firstState(Standby); f >= 0 {
				r.state[f] = Active
				r.scale = append(r.scale, ScaleEvent{At: p.Now(), Action: "up", Fleet: f, P99: p99})
			}
		case p99 > sim.Time(0) && p99 < as.Down && !burning && r.countState(Active) > as.Min:
			// Comfortably under SLO: drain the highest-id active fleet.
			if f := r.lastState(Active); f >= 0 {
				r.state[f] = Draining
				r.scale = append(r.scale, ScaleEvent{At: p.Now(), Action: "drain", Fleet: f, P99: p99})
			}
		}
		for f, st := range r.state {
			if st == Draining && r.servers[f].Outstanding() == 0 {
				r.state[f] = Standby
				r.scale = append(r.scale, ScaleEvent{At: p.Now(), Action: "standby", Fleet: f})
			}
		}
		r.resetWindows()
	}
}

// windowP99 is the p99 of all completions routed anywhere during the current
// window (0 when the window saw none).
func (r *Router) windowP99() sim.Time {
	m := metrics.New()
	for _, h := range r.win {
		m.Merge(h)
	}
	if m.Count() == 0 {
		return 0
	}
	return sim.Time(m.P99())
}

func (r *Router) resetWindows() {
	for f := range r.win {
		r.win[f] = metrics.New()
	}
}

func (r *Router) countState(s State) int {
	n := 0
	for _, st := range r.state {
		if st == s {
			n++
		}
	}
	return n
}

// firstState returns the lowest fleet id in state s, or -1.
func (r *Router) firstState(s State) int {
	for f, st := range r.state {
		if st == s {
			return f
		}
	}
	return -1
}

// lastState returns the highest fleet id in state s, or -1.
func (r *Router) lastState(s State) int {
	for f := len(r.state) - 1; f >= 0; f-- {
		if r.state[f] == s {
			return f
		}
	}
	return -1
}
