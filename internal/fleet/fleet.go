// Package fleet is the replicated-serving router: N independent serve.Server
// fleets (each a full replica of the model and feature cache on its own
// simulated machine) share one virtual clock, and a router in front of them
// admits a single Poisson workload, applies per-tenant token-bucket quotas,
// and dispatches each request to a fleet under a pluggable routing policy.
// An optional autoscaler moves fleets between active/draining/standby as the
// routed p99 crosses SLO bands, and whole-fleet crash faults drain a replica
// mid-run with its traffic re-routed to the survivors.
//
// Everything is deterministic: per-fleet seeds derive from the router seed,
// so each replica drifts through its own popularity phases while the whole
// run stays a pure function of the Config.
package fleet

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config describes one routed serving run. Serve is the per-fleet template:
// its Data/Rate/Duration/Skew describe the router's single arrival process,
// and its Tenants/SLO are enforced at the router. The router owns the fields
// a replica cannot (Engine, Name, External, OnComplete, Faults); setting them
// on the template is an error.
type Config struct {
	Serve serve.Config
	// Fleets is the initially active replica count (required, >= 1).
	Fleets int
	// Policy selects the dispatch rule.
	Policy Policy
	// Autoscale, when enabled, bounds the active set and scales it against
	// the SLO bands. Standby headroom beyond Fleets is built up front (the
	// simulation has no provisioning delay; production would warm instances).
	Autoscale Autoscale
	// Faults is the fleet-scoped schedule: whole-fleet crashes handled by the
	// router plus GPU/link faults handed to each fleet's own injector.
	Faults []fault.FleetFault
}

func (c Config) validate() (Config, error) {
	if c.Fleets < 1 {
		return c, fmt.Errorf("fleet: Config.Fleets must be >= 1")
	}
	if c.Serve.Engine != nil || c.Serve.External || c.Serve.Name != "" ||
		c.Serve.OnComplete != nil || len(c.Serve.Faults) > 0 {
		return c, fmt.Errorf("fleet: Serve template must leave Engine/Name/External/OnComplete/Faults to the router")
	}
	c.Autoscale = c.Autoscale.withDefaults(c.Serve.SLO)
	if c.Autoscale.enabled() {
		if c.Autoscale.Max < c.Fleets {
			return c, fmt.Errorf("fleet: Autoscale.Max %d below initial fleet count %d", c.Autoscale.Max, c.Fleets)
		}
		if c.Autoscale.Min > c.Fleets {
			return c, fmt.Errorf("fleet: Autoscale.Min %d above initial fleet count %d", c.Autoscale.Min, c.Fleets)
		}
	}
	return c, nil
}

// maxFleets is the number of replicas to build (active plus standby headroom).
func (c Config) maxFleets() int {
	if c.Autoscale.enabled() && c.Autoscale.Max > c.Fleets {
		return c.Autoscale.Max
	}
	return c.Fleets
}

// Router owns the shared engine, the replica set and all routing state.
// Build with NewRouter, execute with Run; a Router is single-use.
type Router struct {
	cfg     Config
	eng     *sim.Engine
	servers []*serve.Server
	state   []State
	view    *fault.View // fleet-level membership (whole-fleet crashes)
	whole   []fault.FleetFault

	workload *serve.Workload
	tenants  *serve.TenantTable

	// win is the per-fleet latency window feeding the latency-aware policy
	// and the autoscaler; reset every Autoscale.Period.
	win []*metrics.Histogram

	// routing state and accounting
	rr        int
	scratch   []int // routable() scratch buffer
	nextID    int
	arrived   int
	shed      int
	quotaRej  int
	rerouted  int // requests rescued from dying fleets
	routed    []int
	rescued   []int // per-fleet: orphans rescued FROM it at its death
	completed []int
	scale     []ScaleEvent
}

// hub is the shared telemetry hub from the serve template (nil disables all
// instrumentation; every hub method is nil-safe).
func (r *Router) hub() *telemetry.Hub { return r.cfg.Serve.Telemetry }

// NewRouter builds the shared engine, all replicas (External mode, derived
// seeds, scoped fault schedules) and the router state.
func NewRouter(cfg Config) (*Router, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	n := cfg.maxFleets()
	eng := sim.NewEngine()
	eng.SetParallelism(cfg.Serve.Parallel)
	r := &Router{
		cfg:       cfg,
		eng:       eng,
		state:     make([]State, n),
		view:      fault.NewView(n),
		win:       make([]*metrics.Histogram, n),
		routed:    make([]int, n),
		rescued:   make([]int, n),
		completed: make([]int, n),
	}
	whole, scoped := fault.SplitFleet(cfg.Faults, n)
	r.whole = whole
	for f := 0; f < n; f++ {
		f := f
		scfg := cfg.Serve
		scfg.Engine = r.eng
		scfg.Name = fmt.Sprintf("fleet%d", f)
		scfg.External = true
		// Independent seed stream per replica: each fleet's round seeds,
		// model init and popularity drift are its own.
		scfg.Seed = rng.Mix(cfg.Serve.Seed, 0xF1EE7, uint64(f))
		// Quotas and tenant accounting live at the router, not the replicas.
		scfg.Tenants = nil
		// Per-request tracing across N fleets would interleave pids; the
		// router reports aggregates instead.
		scfg.Tracer = nil
		scfg.Faults = scoped[f]
		scfg.OnComplete = func(req *serve.Request) { r.onComplete(f, req) }
		srv, err := serve.NewServer(scfg)
		if err != nil {
			return nil, fmt.Errorf("fleet %d: %w", f, err)
		}
		r.servers = append(r.servers, srv)
		r.win[f] = metrics.New()
		if f >= cfg.Fleets {
			r.state[f] = Standby
		}
	}
	// The router's own arrival process mirrors a standalone server's: same
	// stream constants, but keyed by the router seed (distinct from every
	// derived fleet seed).
	r.workload = serve.NewWorkload(cfg.Serve.Data, cfg.Serve.Skew)
	if cfg.Serve.DriftEvery > 0 {
		r.workload.EnableDrift(cfg.Serve.DriftEvery, rng.Mix(cfg.Serve.Seed, 0xD21F7))
	}
	r.tenants = serve.NewTenantTable(cfg.Serve.Tenants)
	if hub := r.hub(); hub.Enabled() {
		// Router-level sources on top of each replica's own series (the
		// replicas registered theirs under fleetN/ prefixes in NewServer).
		hub.Gauge("router/active_fleets", func(sim.Time) float64 {
			return float64(r.countState(Active))
		})
		hub.Counter("router/shed", func(sim.Time) float64 {
			return float64(r.shed)
		})
		hub.Counter("router/rerouted", func(sim.Time) float64 {
			return float64(r.rerouted)
		})
	}
	return r, nil
}

// Servers exposes the replica set (tests inspect per-fleet state).
func (r *Router) Servers() []*serve.Server { return r.servers }

// onComplete runs in engine context at each completion: per-fleet counts and
// the latency window the router's policies read.
func (r *Router) onComplete(f int, req *serve.Request) {
	r.completed[f]++
	r.win[f].Observe(float64(req.Latency()))
}

// Run executes the routed serving simulation to completion.
func (r *Router) Run() (*Report, error) {
	for _, s := range r.servers {
		s.Start()
	}
	r.eng.Go("router/generator", r.generate)
	for _, ff := range r.whole {
		ff := ff
		// Non-daemon: the crash must fire even if traffic quiesces first.
		r.eng.Go(fmt.Sprintf("router/fault-fleet%d", ff.Fleet), func(p *sim.Proc) {
			p.Sleep(ff.Fault.At)
			r.killFleet(p, ff.Fleet)
		})
	}
	if r.cfg.Autoscale.enabled() {
		r.eng.GoDaemon("router/autoscale", r.autoscaler)
	} else if r.cfg.Policy == LatencyAware {
		// The latency-aware score reads the same windows the autoscaler
		// resets; without it, a lightweight resetter keeps them recent.
		r.eng.GoDaemon("router/window", func(p *sim.Proc) {
			for {
				p.Sleep(Autoscale{Max: 1}.withDefaults(0).Period)
				r.resetWindows()
			}
		})
	}
	end, err := r.eng.Run()
	if err != nil {
		return nil, err
	}
	return r.report(end)
}

// generate is the router's open-loop arrival process: Poisson gaps at the
// offered rate, node drawn from the router's own (drifting) popularity,
// tenant drawn and charged against its quota, then policy dispatch.
func (r *Router) generate(p *sim.Proc) {
	cfg := r.cfg.Serve
	rg := rng.New(rng.Mix(cfg.Seed, 0xA221A1))
	tr := rng.New(rng.Mix(cfg.Seed, 0x7E4A47))
	for {
		p.Sleep(sim.Time(rg.Exp(cfg.Rate)))
		if p.Now() >= cfg.Duration {
			break
		}
		node := r.workload.Draw(rg, p.Now())
		tenant := 0
		if r.tenants != nil {
			tenant = r.tenants.Draw(tr)
		}
		r.arrived++
		if r.tenants != nil && !r.tenants.TakeToken(tenant, p.Now()) {
			r.shed++
			r.hub().ObserveShed(p.Now())
			r.quotaRej++
			r.tenants.Reject(tenant)
			continue
		}
		f := r.route(node)
		if f < 0 {
			// No routable fleet: the router sheds before any server sees the
			// request (a server-side Admit failure feeds the hub itself).
			r.shed++
			r.hub().ObserveShed(p.Now())
			if r.tenants != nil {
				r.tenants.Reject(tenant)
			}
			continue
		}
		if !r.servers[f].Admit(p.Now(), r.nextID, node, tenant) {
			r.shed++
			if r.tenants != nil {
				r.tenants.Reject(tenant)
			}
			continue
		}
		r.nextID++
		r.routed[f]++
		if r.tenants != nil {
			r.tenants.Accept(tenant)
		}
	}
	for _, s := range r.servers {
		s.CloseIntake()
	}
}

// killFleet applies a whole-fleet crash: the replica's processes die at this
// instant, its admission-queued requests are rescued onto surviving fleets
// (dispatched ones are lost with it), and it leaves the routable set for good.
func (r *Router) killFleet(p *sim.Proc, f int) {
	if r.state[f] == Dead {
		return
	}
	r.state[f] = Dead
	r.view.Kill(f)
	r.hub().RecordEvent(p.Now(), "router/fleet-killed",
		fmt.Sprintf("fleet%d crashed; rescuing admission-queued requests", f))
	orphans := r.servers[f].Shutdown(p)
	for _, o := range orphans {
		t := r.route(o.Node)
		if t >= 0 && r.servers[t].Admit(p.Now(), o.ID, o.Node, o.Tenant) {
			r.rerouted++
			r.rescued[f]++
			r.routed[t]++
			continue
		}
		// No survivor can take it: it dies with the fleet.
		r.shed++
		if t < 0 {
			r.hub().ObserveShed(p.Now())
		}
	}
}
