package fleet

import (
	"fmt"

	"repro/internal/graph"
)

// Policy selects how the router picks a fleet for each admitted request.
type Policy int

const (
	// RoundRobin rotates over the routable fleets — the baseline that ignores
	// load and latency entirely.
	RoundRobin Policy = iota
	// LeastLoaded picks the routable fleet with the fewest outstanding
	// requests (admission-queued plus dispatched-uncompleted).
	LeastLoaded
	// LatencyAware scores each routable fleet by its recent-window p99
	// multiplied by (1 + outstanding) and picks the minimum — load shed away
	// from fleets that are currently slow, not merely deep.
	LatencyAware
	// ShardAffinity hashes the target node over the routable fleets, so
	// repeated requests for a node keep hitting the same replica (warm cache).
	ShardAffinity
)

func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case LatencyAware:
		return "latency-aware"
	case ShardAffinity:
		return "shard-affinity"
	default:
		return "round-robin"
	}
}

// ParsePolicy parses a routing policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "round-robin", "rr":
		return RoundRobin, nil
	case "least-loaded", "ll":
		return LeastLoaded, nil
	case "latency-aware", "la":
		return LatencyAware, nil
	case "shard-affinity", "affinity", "sa":
		return ShardAffinity, nil
	}
	return 0, fmt.Errorf("fleet: unknown routing policy %q (want round-robin|least-loaded|latency-aware|shard-affinity)", s)
}

// routable returns the fleets eligible for new traffic that can currently
// admit node, in ascending id order (deterministic tie-breaking).
func (r *Router) routable(node graph.NodeID) []int {
	cands := r.scratch[:0]
	for f, st := range r.state {
		if st == Active && r.servers[f].CanAdmit(node) {
			cands = append(cands, f)
		}
	}
	r.scratch = cands
	return cands
}

// route picks the destination fleet for node under the configured policy, or
// -1 when no active fleet can admit it (the request is shed at the router).
func (r *Router) route(node graph.NodeID) int {
	cands := r.routable(node)
	if len(cands) == 0 {
		return -1
	}
	switch r.cfg.Policy {
	case LeastLoaded:
		best := cands[0]
		for _, f := range cands[1:] {
			if r.servers[f].Outstanding() < r.servers[best].Outstanding() {
				best = f
			}
		}
		return best
	case LatencyAware:
		best, bestScore := -1, 0.0
		for _, f := range cands {
			s := r.score(f)
			if best < 0 || s < bestScore {
				best, bestScore = f, s
			}
		}
		return best
	case ShardAffinity:
		return cands[int(uint64(node)%uint64(len(cands)))]
	default: // RoundRobin
		f := cands[r.rr%len(cands)]
		r.rr++
		return f
	}
}

// score is the latency-aware routing score: recent-window p99 (seconds)
// scaled by queue depth. A fleet with no completions in the window scores by
// depth alone at a nominal 1 ms p99, so cold fleets attract probes instead of
// being starved forever.
func (r *Router) score(f int) float64 {
	p99 := 1e-3
	if h := r.win[f]; h.Count() > 0 {
		p99 = h.P99()
	}
	return p99 * float64(1+r.servers[f].Outstanding())
}
