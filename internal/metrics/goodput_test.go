package metrics

import (
	"testing"

	"repro/internal/rng"
)

func TestGoodputBasics(t *testing.T) {
	g := NewGoodput(0.1, 10e-3)
	// Window 0: two in-SLO, one late. Window 3: one in-SLO.
	g.Observe(0.01, 5e-3)
	g.Observe(0.05, 9e-3)
	g.Observe(0.09, 20e-3)
	g.Observe(0.35, 10e-3) // exactly at SLO counts as good
	if g.Total() != 4 {
		t.Fatalf("total %d != 4", g.Total())
	}
	if g.Good() != 3 {
		t.Fatalf("good %d != 3", g.Good())
	}
	if f := g.GoodFraction(); f != 0.75 {
		t.Fatalf("fraction %g != 0.75", f)
	}
	// Span covers windows 0..3 inclusive = 0.4s; rate = 3/0.4.
	if s := g.Span(); s != 0.4 {
		t.Fatalf("span %g != 0.4", s)
	}
	if r := g.Rate(); r != 3/0.4 {
		t.Fatalf("rate %g != %g", r, 3/0.4)
	}
	// Interior empty windows (1, 2) drive the worst-window rate to zero.
	if w := g.WorstWindowRate(); w != 0 {
		t.Fatalf("worst window rate %g != 0", w)
	}
}

func TestGoodputEmpty(t *testing.T) {
	g := NewGoodput(1, 1)
	if g.Rate() != 0 || g.Good() != 0 || g.Total() != 0 || g.Span() != 0 ||
		g.GoodFraction() != 0 || g.WorstWindowRate() != 0 {
		t.Fatal("empty counter not all-zero")
	}
	g.Merge(nil)
	g.Merge(NewGoodput(2, 3)) // empty other: config mismatch tolerated like Histogram
	if g.Total() != 0 {
		t.Fatal("merge of empty changed state")
	}
}

// TestGoodputMergeLossless mirrors the Histogram merge property: splitting an
// observation stream across k counters and merging reproduces exactly the
// counter that observed the whole stream.
func TestGoodputMergeLossless(t *testing.T) {
	r := rng.New(7)
	whole := NewGoodput(0.05, 8e-3)
	parts := []*Goodput{NewGoodput(0.05, 8e-3), NewGoodput(0.05, 8e-3), NewGoodput(0.05, 8e-3)}
	for i := 0; i < 5000; i++ {
		at := r.Float64() * 2
		lat := r.Float64() * 16e-3
		whole.Observe(at, lat)
		parts[i%3].Observe(at, lat)
	}
	merged := NewGoodput(0.05, 8e-3)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Total() != whole.Total() || merged.Good() != whole.Good() {
		t.Fatalf("merge lost observations: %d/%d vs %d/%d",
			merged.Good(), merged.Total(), whole.Good(), whole.Total())
	}
	if merged.Span() != whole.Span() || merged.Rate() != whole.Rate() ||
		merged.WorstWindowRate() != whole.WorstWindowRate() {
		t.Fatalf("merge changed derived stats: %v vs %v", merged, whole)
	}
}

// TestGoodputWindowEdges pins the bucketing rule at exact window
// boundaries: completion at k*window lands in window k (lower-inclusive,
// upper-exclusive buckets). Window width 0.25 is exactly representable
// in binary so k*window divides without float fuzz.
func TestGoodputWindowEdges(t *testing.T) {
	g := NewGoodput(0.25, 1e-2)
	g.Observe(0, 1e-3)    // edge of window 0
	g.Observe(0.25, 1e-3) // exactly on the 0/1 boundary → window 1
	g.Observe(0.5, 1e-3)  // exactly on the 1/2 boundary → window 2
	if g.Span() != 0.75 {
		t.Fatalf("span %g != 0.75: boundary observations mis-bucketed", g.Span())
	}
	// Each of windows 0, 1, 2 holds exactly one in-SLO completion, so the
	// worst window matches the average: 1 good per 0.25 s.
	if w, r := g.WorstWindowRate(), g.Rate(); w != 4 || r != 4 {
		t.Fatalf("worst %g rate %g, want 4 and 4", w, r)
	}
	// Negative completion times clamp into window 0 rather than going to
	// a negative bucket index.
	g.Observe(-1, 1e-3)
	if g.Span() != 0.75 {
		t.Fatalf("span %g after negative-time observe, want unchanged 0.75", g.Span())
	}
}

func TestGoodputZeroWindowPanics(t *testing.T) {
	for _, tc := range []struct {
		name        string
		window, slo float64
	}{
		{"zero window", 0, 1e-2},
		{"negative window", -0.1, 1e-2},
		{"zero slo", 0.1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: NewGoodput did not panic", tc.name)
				}
			}()
			NewGoodput(tc.window, tc.slo)
		})
	}
}

// TestGoodputMergeMisaligned merges two counters whose observed window
// ranges neither overlap nor touch: the merged span must cover the hull
// including the interior windows nobody observed, and those empty
// interior windows must drag the worst-window rate to zero.
func TestGoodputMergeMisaligned(t *testing.T) {
	a := NewGoodput(0.25, 1e-2)
	a.Observe(0.1, 1e-3) // window 0
	a.Observe(0.3, 1e-3) // window 1
	b := NewGoodput(0.25, 1e-2)
	b.Observe(1.3, 1e-3)  // window 5
	b.Observe(1.8, 20e-3) // window 7, over SLO
	a.Merge(b)
	if a.Total() != 4 || a.Good() != 3 {
		t.Fatalf("merged counts good=%d total=%d, want 3/4", a.Good(), a.Total())
	}
	// Hull is windows 0..7 inclusive = 8 * 0.25 s.
	if a.Span() != 2 {
		t.Fatalf("merged span %g != 2", a.Span())
	}
	if w := a.WorstWindowRate(); w != 0 {
		t.Fatalf("worst window rate %g != 0: empty interior windows ignored", w)
	}
	if r := a.Rate(); r != 1.5 {
		t.Fatalf("merged rate %g != 1.5 (3 good over 2 s)", r)
	}
	// Merging in the other direction (low range into high range) must
	// extend minW downward too.
	c := NewGoodput(0.25, 1e-2)
	c.Observe(1.3, 1e-3)
	d := NewGoodput(0.25, 1e-2)
	d.Observe(0.1, 1e-3)
	c.Merge(d)
	if c.Span() != 1.5 {
		t.Fatalf("reverse merge span %g != 1.5 (windows 0..5)", c.Span())
	}
}

func TestGoodputMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a := NewGoodput(0.1, 1e-2)
	b := NewGoodput(0.2, 1e-2)
	b.Observe(0, 1e-3)
	a.Merge(b)
}
