package metrics

import (
	"testing"

	"repro/internal/rng"
)

func TestGoodputBasics(t *testing.T) {
	g := NewGoodput(0.1, 10e-3)
	// Window 0: two in-SLO, one late. Window 3: one in-SLO.
	g.Observe(0.01, 5e-3)
	g.Observe(0.05, 9e-3)
	g.Observe(0.09, 20e-3)
	g.Observe(0.35, 10e-3) // exactly at SLO counts as good
	if g.Total() != 4 {
		t.Fatalf("total %d != 4", g.Total())
	}
	if g.Good() != 3 {
		t.Fatalf("good %d != 3", g.Good())
	}
	if f := g.GoodFraction(); f != 0.75 {
		t.Fatalf("fraction %g != 0.75", f)
	}
	// Span covers windows 0..3 inclusive = 0.4s; rate = 3/0.4.
	if s := g.Span(); s != 0.4 {
		t.Fatalf("span %g != 0.4", s)
	}
	if r := g.Rate(); r != 3/0.4 {
		t.Fatalf("rate %g != %g", r, 3/0.4)
	}
	// Interior empty windows (1, 2) drive the worst-window rate to zero.
	if w := g.WorstWindowRate(); w != 0 {
		t.Fatalf("worst window rate %g != 0", w)
	}
}

func TestGoodputEmpty(t *testing.T) {
	g := NewGoodput(1, 1)
	if g.Rate() != 0 || g.Good() != 0 || g.Total() != 0 || g.Span() != 0 ||
		g.GoodFraction() != 0 || g.WorstWindowRate() != 0 {
		t.Fatal("empty counter not all-zero")
	}
	g.Merge(nil)
	g.Merge(NewGoodput(2, 3)) // empty other: config mismatch tolerated like Histogram
	if g.Total() != 0 {
		t.Fatal("merge of empty changed state")
	}
}

// TestGoodputMergeLossless mirrors the Histogram merge property: splitting an
// observation stream across k counters and merging reproduces exactly the
// counter that observed the whole stream.
func TestGoodputMergeLossless(t *testing.T) {
	r := rng.New(7)
	whole := NewGoodput(0.05, 8e-3)
	parts := []*Goodput{NewGoodput(0.05, 8e-3), NewGoodput(0.05, 8e-3), NewGoodput(0.05, 8e-3)}
	for i := 0; i < 5000; i++ {
		at := r.Float64() * 2
		lat := r.Float64() * 16e-3
		whole.Observe(at, lat)
		parts[i%3].Observe(at, lat)
	}
	merged := NewGoodput(0.05, 8e-3)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Total() != whole.Total() || merged.Good() != whole.Good() {
		t.Fatalf("merge lost observations: %d/%d vs %d/%d",
			merged.Good(), merged.Total(), whole.Good(), whole.Total())
	}
	if merged.Span() != whole.Span() || merged.Rate() != whole.Rate() ||
		merged.WorstWindowRate() != whole.WorstWindowRate() {
		t.Fatalf("merge changed derived stats: %v vs %v", merged, whole)
	}
}

func TestGoodputMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a := NewGoodput(0.1, 1e-2)
	b := NewGoodput(0.2, 1e-2)
	b.Observe(0, 1e-3)
	a.Merge(b)
}
