package metrics

import "fmt"

// Goodput is a windowed within-SLO completion counter: observations are
// bucketed by completion time into fixed-width windows of virtual time, and
// each window tracks how many requests completed at all versus how many
// completed within the latency SLO. It answers "how much useful work per
// virtual second did the fleet deliver", which a plain throughput number
// cannot (late answers count for nothing against an SLO).
//
// Like Histogram, Goodput merges losslessly: merging two counters built from
// disjoint observation streams yields exactly the counter that would have
// observed the union (per-window counts are additive). Counters only merge
// when their window width and SLO agree — merging mismatched configurations
// would silently corrupt the accounting, so it panics.
type Goodput struct {
	window float64
	slo    float64
	good   map[int]uint64
	total  map[int]uint64
	minW   int
	maxW   int
	count  uint64
}

// NewGoodput returns an empty counter with the given window width (virtual
// seconds per bucket) and latency SLO. Both must be positive.
func NewGoodput(window, slo float64) *Goodput {
	if window <= 0 {
		panic("metrics: goodput window must be positive")
	}
	if slo <= 0 {
		panic("metrics: goodput SLO must be positive")
	}
	return &Goodput{
		window: window,
		slo:    slo,
		good:   map[int]uint64{},
		total:  map[int]uint64{},
	}
}

// Window returns the bucket width in virtual seconds.
func (g *Goodput) Window() float64 { return g.window }

// SLO returns the latency objective.
func (g *Goodput) SLO() float64 { return g.slo }

func (g *Goodput) windowOf(doneAt float64) int {
	if doneAt < 0 {
		doneAt = 0
	}
	return int(doneAt / g.window)
}

// Observe records one completed request: doneAt is its completion instant in
// virtual seconds, latency its end-to-end latency. The request counts toward
// goodput iff latency <= SLO.
func (g *Goodput) Observe(doneAt, latency float64) {
	w := g.windowOf(doneAt)
	if g.count == 0 || w < g.minW {
		g.minW = w
	}
	if g.count == 0 || w > g.maxW {
		g.maxW = w
	}
	g.total[w]++
	if latency <= g.slo {
		g.good[w]++
	}
	g.count++
}

// Total returns the number of completions observed.
func (g *Goodput) Total() uint64 { return g.count }

// Good returns the number of completions within SLO.
func (g *Goodput) Good() uint64 {
	var n uint64
	for _, c := range g.good {
		n += c
	}
	return n
}

// GoodFraction is the fraction of completions within SLO (0 if empty).
func (g *Goodput) GoodFraction() float64 {
	if g.count == 0 {
		return 0
	}
	return float64(g.Good()) / float64(g.count)
}

// Span is the virtual-time extent covered by the observed windows (whole
// windows, so an observer that saw a single request still spans one window).
func (g *Goodput) Span() float64 {
	if g.count == 0 {
		return 0
	}
	return float64(g.maxW-g.minW+1) * g.window
}

// Rate is the goodput in within-SLO completions per virtual second, averaged
// over the observed span (0 if empty).
func (g *Goodput) Rate() float64 {
	span := g.Span()
	if span == 0 {
		return 0
	}
	return float64(g.Good()) / span
}

// WorstWindowRate is the lowest per-window goodput rate over the observed
// span, including interior windows that saw no completions at all (a stalled
// fleet's empty window is the worst case, not a gap in the data).
func (g *Goodput) WorstWindowRate() float64 {
	if g.count == 0 {
		return 0
	}
	worst := -1.0
	for w := g.minW; w <= g.maxW; w++ {
		r := float64(g.good[w]) / g.window
		if worst < 0 || r < worst {
			worst = r
		}
	}
	return worst
}

// Merge adds all observations recorded in other into g. Merging is lossless
// (per-window counts are additive). It panics if the two counters disagree
// on window width or SLO — Histogram.Merge semantics over compatible
// configurations.
func (g *Goodput) Merge(other *Goodput) {
	if other == nil || other.count == 0 {
		return
	}
	if other.window != g.window || other.slo != g.slo {
		panic(fmt.Sprintf("metrics: goodput merge mismatch: window %g/%g slo %g/%g",
			g.window, other.window, g.slo, other.slo))
	}
	if g.count == 0 || other.minW < g.minW {
		g.minW = other.minW
	}
	if g.count == 0 || other.maxW > g.maxW {
		g.maxW = other.maxW
	}
	for w, c := range other.good {
		g.good[w] += c
	}
	for w, c := range other.total {
		g.total[w] += c
	}
	g.count += other.count
}

// String summarises the counter for logs.
func (g *Goodput) String() string {
	return fmt.Sprintf("good=%d/%d (%.1f%%) rate=%.4g/s slo=%.4g window=%.4g",
		g.Good(), g.count, 100*g.GoodFraction(), g.Rate(), g.slo, g.window)
}
