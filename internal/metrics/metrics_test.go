package metrics

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not inert: %s", h)
	}
}

func TestSingleValue(t *testing.T) {
	h := New()
	h.Observe(0.042)
	if h.Min() != 0.042 || h.Max() != 0.042 || h.Mean() != 0.042 {
		t.Fatalf("min/max/mean wrong: %s", h)
	}
	// Every quantile of a single observation is that observation (the clamp
	// to [min, max] makes this exact despite bucketing).
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.042 {
			t.Fatalf("Quantile(%g) = %g, want 0.042", q, got)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Uniform values over [1ms, 100ms]: quantiles must land within the
	// bucket resolution of the true value.
	h := New()
	const n = 10000
	for i := 0; i < n; i++ {
		h.Observe(0.001 + 0.099*float64(i)/(n-1))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.0505}, {0.95, 0.09505}, {0.99, 0.09901},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.03 {
			t.Errorf("Quantile(%g) = %g, want %g ±3%% (err %.2f%%)",
				tc.q, got, tc.want, 100*rel)
		}
	}
}

func TestZeroAndNegativeObservations(t *testing.T) {
	h := New()
	h.Observe(0)
	h.Observe(-1)
	h.Observe(5)
	if h.Count() != 3 || h.Min() != -1 || h.Max() != 5 {
		t.Fatalf("stats wrong: %s", h)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median of {-1,0,5} est = %g, want 0", got)
	}
}

func TestMergeEquivalentToCombinedStream(t *testing.T) {
	r := rng.New(7)
	a, b, both := New(), New(), New()
	for i := 0; i < 5000; i++ {
		v := r.Exp(1000) // exponential latencies, mean 1ms
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merged stats differ: %s vs %s", a, both)
	}
	// Sum differs only by float addition order.
	if math.Abs(a.Sum()-both.Sum()) > 1e-12*both.Sum() {
		t.Fatalf("merged sum %g != combined %g", a.Sum(), both.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("Quantile(%g): merged %g != combined %g",
				q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	h := New()
	h.Observe(1)
	h.Merge(nil)
	h.Merge(New())
	if h.Count() != 1 || h.Min() != 1 {
		t.Fatalf("merge with empty corrupted state: %s", h)
	}
	e := New()
	e.Merge(h)
	if e.Count() != 1 || e.Min() != 1 || e.Max() != 1 {
		t.Fatalf("merge into empty lost state: %s", e)
	}
}

func TestDeterministicQueries(t *testing.T) {
	build := func() *Histogram {
		h := New()
		r := rng.New(3)
		for i := 0; i < 1000; i++ {
			h.Observe(r.Exp(500))
		}
		return h
	}
	h1, h2 := build(), build()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if h1.Quantile(q) != h2.Quantile(q) {
			t.Fatal("identical streams gave different quantiles")
		}
	}
	if h1.String() != h2.String() {
		t.Fatal("identical streams gave different summaries")
	}
}

// TestMergeQuantileProperty is the property test behind the profiler's
// latency aggregation: for any shard count, distribution and seed, merging
// per-shard histograms then querying quantiles must agree exactly with
// observing the combined stream into one histogram (the merge is lossless),
// and both must sit within the bucket scheme's ~2% relative error of the
// true sample quantile.
func TestMergeQuantileProperty(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rng.RNG) float64
	}{
		{"uniform", func(r *rng.RNG) float64 { return 1e-4 + r.Float64() }},
		{"exponential", func(r *rng.RNG) float64 { return r.Exp(1000) }},
		{"lognormal", func(r *rng.RNG) float64 { return math.Exp(r.NormFloat64()) }},
		{"bimodal", func(r *rng.RNG) float64 {
			if r.Intn(10) == 0 {
				return 100 + r.Float64() // slow tail
			}
			return 1 + r.Float64()
		}},
	}
	quantiles := []float64{0.05, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, dist := range dists {
		for _, nShards := range []int{2, 3, 8, 16} {
			for seed := uint64(1); seed <= 3; seed++ {
				const n = 4000
				r := rng.New(seed*7919 + uint64(nShards))
				shards := make([]*Histogram, nShards)
				for i := range shards {
					shards[i] = New()
				}
				all := New()
				values := make([]float64, 0, n)
				for i := 0; i < n; i++ {
					v := dist.gen(r)
					shards[r.Intn(nShards)].Observe(v)
					all.Observe(v)
					values = append(values, v)
				}
				merged := New()
				for _, s := range shards {
					merged.Merge(s)
				}
				sort.Float64s(values)
				for _, q := range quantiles {
					mq, aq := merged.Quantile(q), all.Quantile(q)
					if mq != aq {
						t.Fatalf("%s shards=%d seed=%d: Quantile(%g) merged %g != observe-all %g",
							dist.name, nShards, seed, q, mq, aq)
					}
					idx := int(q*float64(len(values)-1) + 0.5)
					exact := values[idx]
					if relErr := math.Abs(mq-exact) / exact; relErr > 0.02 {
						t.Fatalf("%s shards=%d seed=%d: Quantile(%g)=%g vs exact %g (err %.2f%% > 2%%)",
							dist.name, nShards, seed, q, mq, exact, 100*relErr)
					}
				}
				if merged.Count() != all.Count() || merged.Min() != all.Min() || merged.Max() != all.Max() {
					t.Fatalf("%s shards=%d seed=%d: merged stats %s != observe-all %s",
						dist.name, nShards, seed, merged, all)
				}
			}
		}
	}
}
