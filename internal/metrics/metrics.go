// Package metrics provides a small streaming latency histogram with
// log-spaced buckets: constant memory, ~2% relative quantile error, and
// lossless merging across instances (e.g. one histogram per GPU merged into
// a fleet-wide view). It backs the serving-path latency percentiles and the
// per-stage epoch timing distributions of the trainer.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// growth is the geometric bucket width: each bucket covers values within a
// factor of growth of its neighbours, bounding relative quantile error to
// growth-1 (~2%).
const growth = 1.02

var invLogGrowth = 1 / math.Log(growth)

// underflowBucket collects non-positive observations (virtual-time deltas
// can be exactly zero when stages complete at the same instant).
const underflowBucket = math.MinInt32

// Histogram is a mergeable streaming histogram. The zero value is NOT ready
// to use; create with New. All methods are deterministic: identical
// observation sequences produce identical state and identical query results.
type Histogram struct {
	counts map[int]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{counts: map[int]uint64{}}
}

func bucketOf(v float64) int {
	if v <= 0 {
		return underflowBucket
	}
	return int(math.Floor(math.Log(v) * invLogGrowth))
}

// bucketValue is the representative value reported for a bucket: the
// geometric midpoint of its bounds (the underflow bucket reports 0).
func bucketValue(b int) float64 {
	if b == underflowBucket {
		return 0
	}
	return math.Pow(growth, float64(b)+0.5)
}

// BucketOf exposes the log-spaced bucket index for v. The telemetry
// layer keys its latency exemplars by the same bucket a histogram
// observation lands in, so a drill-down can be linked back to the
// distribution that surfaced it.
func BucketOf(v float64) int { return bucketOf(v) }

// BucketValue is the representative value of bucket b (inverse of
// BucketOf up to the ~2% bucket width).
func BucketValue(b int) float64 { return bucketValue(b) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) with relative
// error bounded by the bucket growth factor, clamped to [Min, Max]. Returns
// 0 if the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based: ceil(q * count), at least 1.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var seen uint64
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= rank {
			v := bucketValue(k)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P95 and P99 are the conventional latency percentiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge adds all observations recorded in other into h. Merging is lossless:
// the result is identical to having observed both streams into one histogram
// (the per-bucket counts are additive and min/max/sum combine exactly).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	for k, c := range other.counts {
		h.counts[k] += c
	}
	h.count += other.count
	h.sum += other.sum
}

// String summarises the histogram for logs: count, mean and tail quantiles.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		h.count, h.Mean(), h.P50(), h.P95(), h.P99(), h.max)
}
