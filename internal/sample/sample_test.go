package sample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func lineGraph(n int) *graph.CSR {
	// Node v has in-neighbours {0..n-1} \ {v} (complete graph) — handy for
	// exact distribution tests.
	var src, dst []graph.NodeID
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u != v {
				src = append(src, graph.NodeID(u))
				dst = append(dst, graph.NodeID(v))
			}
		}
	}
	return graph.FromEdges(n, src, dst)
}

func TestUniformSubsetAndSize(t *testing.T) {
	r := rng.New(1)
	adj := []graph.NodeID{10, 20, 30, 40, 50}
	if err := quick.Check(func(f uint8) bool {
		fanout := int(f%8) + 1
		out := Uniform(rng.New(uint64(f)), adj, fanout, nil)
		want := fanout
		if want > len(adj) {
			want = len(adj)
		}
		if len(out) != want {
			return false
		}
		seen := map[graph.NodeID]bool{}
		for _, v := range out {
			if seen[v] {
				return false // replacement in no-replacement draw
			}
			seen[v] = true
			ok := false
			for _, a := range adj {
				if a == v {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestUniformIsUniform(t *testing.T) {
	adj := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts := make([]int, 10)
	r := rng.New(2)
	const trials = 60000
	for i := 0; i < trials; i++ {
		for _, v := range Uniform(r, adj, 3, nil) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("node %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestUniformWithReplacementExactCount(t *testing.T) {
	adj := []graph.NodeID{1, 2}
	out := UniformWithReplacement(rng.New(3), adj, 10, nil)
	if len(out) != 10 {
		t.Fatalf("got %d, want 10", len(out))
	}
}

func TestEmptyAdjacency(t *testing.T) {
	if out := Uniform(rng.New(1), nil, 5, nil); len(out) != 0 {
		t.Fatal("sampled from empty adjacency")
	}
	if out := Weighted(rng.New(1), nil, nil, 5, nil); len(out) != 0 {
		t.Fatal("weighted sampled from empty adjacency")
	}
}

func TestWeightedFollowsWeights(t *testing.T) {
	adj := []graph.NodeID{0, 1, 2, 3}
	w := []float32{1, 2, 3, 4}
	counts := make([]float64, 4)
	r := rng.New(5)
	const trials = 100000
	for i := 0; i < trials; i++ {
		for _, v := range Weighted(r, adj, w, 1, nil) {
			counts[v]++
		}
	}
	for v := 0; v < 4; v++ {
		want := float64(w[v]) / 10 * trials
		if math.Abs(counts[v]-want)/want > 0.05 {
			t.Errorf("node %d: %v draws, want ~%v", v, counts[v], want)
		}
	}
}

func TestWeightedZeroWeightNeverDrawn(t *testing.T) {
	adj := []graph.NodeID{0, 1, 2}
	w := []float32{1, 0, 1}
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		for _, v := range Weighted(r, adj, w, 2, nil) {
			if v == 1 {
				t.Fatal("zero-weight neighbour drawn")
			}
		}
	}
}

func TestWeightedWithReplacementDistribution(t *testing.T) {
	adj := []graph.NodeID{0, 1}
	w := []float32{1, 3}
	counts := make([]float64, 2)
	r := rng.New(7)
	const trials = 100000
	for i := 0; i < trials; i++ {
		for _, v := range WeightedWithReplacement(r, adj, w, 1, nil) {
			counts[v]++
		}
	}
	if math.Abs(counts[1]/trials-0.75) > 0.01 {
		t.Errorf("weight-3 node drawn %.3f, want ~0.75", counts[1]/trials)
	}
}

func TestLayerBudgetSumsToBudget(t *testing.T) {
	r := rng.New(8)
	masses := []float64{1, 2, 3, 4}
	for _, n := range []int{0, 1, 10, 1000} {
		counts := LayerBudget(r, masses, n)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != n {
			t.Fatalf("budget %d split into %d", n, sum)
		}
	}
}

func TestLayerBudgetProportional(t *testing.T) {
	r := rng.New(9)
	masses := []float64{1, 4}
	total := [2]float64{}
	for i := 0; i < 300; i++ {
		c := LayerBudget(r, masses, 100)
		total[0] += float64(c[0])
		total[1] += float64(c[1])
	}
	frac := total[1] / (total[0] + total[1])
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("mass-4 share %.3f, want ~0.8", frac)
	}
}

func TestLayerBudgetWithoutReplacementRespectsCapacity(t *testing.T) {
	r := rng.New(10)
	masses := []float64{10, 1, 1}
	capacity := []int{2, 5, 5}
	counts := LayerBudgetWithoutReplacement(r, masses, capacity, 10)
	sum := 0
	for i, c := range counts {
		if c > capacity[i] {
			t.Fatalf("count %d exceeds capacity %d", c, capacity[i])
		}
		sum += c
	}
	if sum != 10 {
		t.Fatalf("budget not met: %d (capacity allows 12)", sum)
	}
}

func TestLayerBudgetWithoutReplacementExhaustsCapacity(t *testing.T) {
	r := rng.New(11)
	counts := LayerBudgetWithoutReplacement(r, []float64{1, 1}, []int{2, 3}, 100)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts %v, want full capacity [2 3]", counts)
	}
}

func testDataset() *gen.Dataset {
	return gen.Generate(gen.Config{
		Name: "t", Nodes: 3000, AvgDegree: 12, FeatDim: 4, NumClasses: 6, Seed: 99,
	})
}

func TestReferenceNodeWiseStructure(t *testing.T) {
	d := testDataset()
	seeds := d.TrainIdx[:64]
	cfg := Config{Fanout: []int{5, 3, 2}}
	mb := Reference(d.G, seeds, cfg, 1234)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mb.Blocks) != 3 {
		t.Fatalf("blocks=%d", len(mb.Blocks))
	}
	// Fan-out respected per dst in the output block (fanout[0]=5 is the
	// first hop from seeds = last block).
	out := mb.Blocks[2]
	for i, v := range out.Dst {
		n := int(out.SrcPtr[i+1] - out.SrcPtr[i])
		wantMax := 5
		if d.G.Degree(v) < wantMax {
			wantMax = d.G.Degree(v)
		}
		if n != wantMax {
			t.Fatalf("seed %d sampled %d, want %d", v, n, wantMax)
		}
	}
	// All samples are true neighbours.
	for l, b := range mb.Blocks {
		for i, v := range b.Dst {
			adj := d.G.Neighbors(v)
			for _, s := range b.Src[b.SrcPtr[i]:b.SrcPtr[i+1]] {
				found := false
				for _, a := range adj {
					if a == s {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("block %d: %d sampled non-neighbour %d", l, v, s)
				}
			}
		}
	}
}

func TestReferenceDeterministicPerBatchSeed(t *testing.T) {
	d := testDataset()
	seeds := d.TrainIdx[:32]
	cfg := Config{Fanout: []int{4, 4}}
	a := Reference(d.G, seeds, cfg, 7)
	b := Reference(d.G, seeds, cfg, 7)
	c := Reference(d.G, seeds, cfg, 8)
	if a.NumSampledEdges() != b.NumSampledEdges() {
		t.Fatal("same seed, different sample size")
	}
	for l := range a.Blocks {
		for i := range a.Blocks[l].Src {
			if a.Blocks[l].Src[i] != b.Blocks[l].Src[i] {
				t.Fatal("same seed, different samples")
			}
		}
	}
	diff := false
	if c.NumSampledEdges() != a.NumSampledEdges() {
		diff = true
	} else {
		for l := range a.Blocks {
			for i := range a.Blocks[l].Src {
				if a.Blocks[l].Src[i] != c.Blocks[l].Src[i] {
					diff = true
					break
				}
			}
		}
	}
	if !diff {
		t.Fatal("different batch seeds produced identical samples")
	}
}

func TestReferenceBiased(t *testing.T) {
	d := testDataset()
	d.AttachUniformWeights(3)
	seeds := d.TrainIdx[:32]
	cfg := Config{Fanout: []int{5, 5}, Biased: true}
	mb := Reference(d.G, seeds, cfg, 77)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceLayerWise(t *testing.T) {
	d := testDataset()
	seeds := d.TrainIdx[:32]
	for _, withRepl := range []bool{true, false} {
		cfg := Config{Fanout: []int{50, 50}, LayerWise: true, WithReplacement: withRepl}
		mb := Reference(d.G, seeds, cfg, 55)
		if err := mb.Validate(); err != nil {
			t.Fatalf("withRepl=%v: %v", withRepl, err)
		}
		// Layer budget: sampled edges per block at most the budget.
		for l, b := range mb.Blocks {
			if b.NumEdges() > 50 {
				t.Fatalf("withRepl=%v block %d has %d edges > budget 50", withRepl, l, b.NumEdges())
			}
		}
		if !withRepl {
			// Without replacement: within one dst, samples are distinct.
			for _, b := range mb.Blocks {
				for i := range b.Dst {
					seen := map[graph.NodeID]bool{}
					for _, s := range b.Src[b.SrcPtr[i]:b.SrcPtr[i+1]] {
						if seen[s] {
							t.Fatal("duplicate sample without replacement")
						}
						seen[s] = true
					}
				}
			}
		}
	}
}

func TestBuildBlockLocalIndices(t *testing.T) {
	dst := []graph.NodeID{5, 9}
	counts := []int32{2, 1}
	samples := []graph.NodeID{9, 7, 5}
	b := BuildBlock(dst, counts, samples)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// InputNodes: dst first {5,9}, then new src {7}.
	want := []graph.NodeID{5, 9, 7}
	if len(b.InputNodes) != 3 {
		t.Fatalf("input nodes %v", b.InputNodes)
	}
	for i, v := range want {
		if b.InputNodes[i] != v {
			t.Fatalf("input nodes %v, want %v", b.InputNodes, want)
		}
	}
	// SrcLocal: samples {9,7,5} -> {1,2,0}.
	wantLocal := []int32{1, 2, 0}
	for i := range wantLocal {
		if b.SrcLocal[i] != wantLocal[i] {
			t.Fatalf("src local %v, want %v", b.SrcLocal, wantLocal)
		}
	}
}

func TestBuildBlockMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on count/sample mismatch")
		}
	}()
	BuildBlock([]graph.NodeID{1}, []int32{2}, []graph.NodeID{3})
}

func TestDrawNodeLocationIndependent(t *testing.T) {
	// The core CSP-equivalence property: DrawNode on a patch (same
	// adjacency content) equals DrawNode on the full graph.
	d := testDataset()
	full := d.G
	v := d.TrainIdx[0]
	cfg := Config{Fanout: []int{6}}
	a := DrawNode(full, v, 0, 6, cfg, 42, nil)
	// Simulate the owner GPU's local CSR holding just v's adjacency: the
	// adjacency slice is patch-local, but the seeding id stays global.
	patch := graph.ExtractPatch(full, []graph.NodeID{v})
	b := DrawAdj(patch.Adj.Neighbors(0), patch.Adj.NeighborWeights(0), v, 0, 6, cfg, 42, nil)
	if len(a) != len(b) {
		t.Fatalf("draws differ in size: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draws differ: %v vs %v", a, b)
		}
	}
}
