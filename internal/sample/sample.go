// Package sample implements the graph-sampling kernels and mini-batch
// sample structures of sampling-based GNN training.
//
// The low-level kernels (uniform/weighted neighbour draws, layer-wise budget
// splitting) operate on adjacency slices and are shared by every system:
// DSP's collective sampling primitive runs them on the GPU owning the
// adjacency list, the UVA baselines run them after pulling adjacency over
// PCIe, and the CPU baselines run them on host cores.
//
// Seeding discipline: the neighbour draw for node v in layer l of a batch
// with seed s uses rng.New(rng.Mix(s, l, v)). Sampling is therefore a pure
// function of (batch seed, layer, node), independent of which device
// executes it — this is what lets the tests assert that multi-GPU CSP
// produces bit-identical samples to a single-address-space sampler.
package sample

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// NodeSeed derives the deterministic RNG for (batchSeed, layer, node).
func NodeSeed(batchSeed uint64, layer int, v graph.NodeID) *rng.RNG {
	return rng.New(rng.Mix(batchSeed, uint64(layer), uint64(uint32(v))))
}

// Uniform draws min(fanout, len(adj)) neighbours without replacement,
// appending to out. This matches DGL's default neighbour sampling (all
// neighbours are taken when the degree is at most the fan-out).
func Uniform(r *rng.RNG, adj []graph.NodeID, fanout int, out []graph.NodeID) []graph.NodeID {
	d := len(adj)
	if d == 0 {
		return out
	}
	if d <= fanout {
		return append(out, adj...)
	}
	// Floyd's algorithm: k distinct indices from [0, d).
	base := len(out)
	for i := d - fanout; i < d; i++ {
		t := r.Intn(i + 1)
		picked := false
		for _, v := range out[base:] {
			if v == adj[t] {
				picked = true
				break
			}
		}
		if picked {
			out = append(out, adj[i])
		} else {
			out = append(out, adj[t])
		}
	}
	return out
}

// UniformWithReplacement draws exactly fanout neighbours with replacement.
func UniformWithReplacement(r *rng.RNG, adj []graph.NodeID, fanout int, out []graph.NodeID) []graph.NodeID {
	d := len(adj)
	if d == 0 {
		return out
	}
	for i := 0; i < fanout; i++ {
		out = append(out, adj[r.Intn(d)])
	}
	return out
}

// Weighted draws min(fanout, len(adj)) neighbours without replacement with
// probability proportional to weights (A-ES / Efraimidis-Spirakis keys).
func Weighted(r *rng.RNG, adj []graph.NodeID, weights []float32, fanout int, out []graph.NodeID) []graph.NodeID {
	d := len(adj)
	if d == 0 {
		return out
	}
	if d <= fanout {
		return append(out, adj...)
	}
	// key_i = u^(1/w_i); take the top fanout keys. Equivalent: take the
	// smallest -ln(u)/w_i (exponential race).
	cands := make([]cand, 0, d)
	for i := 0; i < d; i++ {
		w := float64(weights[i])
		if w <= 0 {
			continue
		}
		cands = append(cands, cand{r.Exp(w), i})
	}
	if len(cands) <= fanout {
		for _, c := range cands {
			out = append(out, adj[c.idx])
		}
		return out
	}
	// Partial selection of the fanout smallest keys.
	selectSmallest(cands, fanout)
	for i := 0; i < fanout; i++ {
		out = append(out, adj[cands[i].idx])
	}
	return out
}

// WeightedWithReplacement draws exactly fanout neighbours with replacement,
// proportional to weights (linear CDF walk; adjacency lists are short-lived
// so no alias table is built).
func WeightedWithReplacement(r *rng.RNG, adj []graph.NodeID, weights []float32, fanout int, out []graph.NodeID) []graph.NodeID {
	d := len(adj)
	if d == 0 {
		return out
	}
	var total float64
	for _, w := range weights {
		total += float64(w)
	}
	if total <= 0 {
		return out
	}
	for k := 0; k < fanout; k++ {
		x := r.Float64() * total
		var acc float64
		idx := d - 1
		for i, w := range weights {
			acc += float64(w)
			if x < acc {
				idx = i
				break
			}
		}
		out = append(out, adj[idx])
	}
	return out
}

// cand is a keyed candidate for weighted reservoir selection.
type cand struct {
	key float64
	idx int
}

// selectSmallest partially sorts cands so the k smallest keys occupy the
// first k slots (quickselect with deterministic median-of-three pivots).
func selectSmallest(cands []cand, k int) {
	lo, hi := 0, len(cands)-1
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if cands[mid].key < cands[lo].key {
			cands[mid], cands[lo] = cands[lo], cands[mid]
		}
		if cands[hi].key < cands[lo].key {
			cands[hi], cands[lo] = cands[lo], cands[hi]
		}
		if cands[hi].key < cands[mid].key {
			cands[hi], cands[mid] = cands[mid], cands[hi]
		}
		pivot := cands[mid].key
		i, j := lo, hi
		for i <= j {
			for cands[i].key < pivot {
				i++
			}
			for cands[j].key > pivot {
				j--
			}
			if i <= j {
				cands[i], cands[j] = cands[j], cands[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// LayerBudget implements the paper's Eq. (2) frontier-budget split for
// layer-wise sampling with replacement: draw the layer budget n times from
// the frontier-mass distribution p_u = W_u / sum(W), where W_u is the total
// neighbour weight of frontier node u; the returned counts say how many
// neighbours each frontier node must sample.
func LayerBudget(r *rng.RNG, masses []float64, n int) []int {
	counts := make([]int, len(masses))
	var total float64
	for _, m := range masses {
		total += m
	}
	if total <= 0 || n <= 0 {
		return counts
	}
	// CDF for binary search.
	cdf := make([]float64, len(masses))
	var acc float64
	for i, m := range masses {
		acc += m
		cdf[i] = acc
	}
	for k := 0; k < n; k++ {
		x := r.Float64() * total
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[lo]++
	}
	return counts
}

// LayerBudgetWithoutReplacement splits the budget like LayerBudget but caps
// each frontier node's count at its distinct-neighbour capacity and
// redistributes the excess (the appendix procedure referenced by the paper:
// repeated capped multinomial rounds until the budget is exhausted or all
// capacity is used).
func LayerBudgetWithoutReplacement(r *rng.RNG, masses []float64, capacity []int, n int) []int {
	counts := make([]int, len(masses))
	remaining := n
	free := make([]float64, len(masses))
	copy(free, masses)
	for remaining > 0 {
		var total float64
		for i, m := range free {
			if counts[i] < capacity[i] {
				total += m
			}
		}
		if total <= 0 {
			break
		}
		draw := LayerBudget(r, maskedMasses(free, counts, capacity), remaining)
		progressed := false
		for i, c := range draw {
			if c == 0 {
				continue
			}
			room := capacity[i] - counts[i]
			if c > room {
				c = room
			}
			if c > 0 {
				counts[i] += c
				remaining -= c
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return counts
}

func maskedMasses(masses []float64, counts, capacity []int) []float64 {
	out := make([]float64, len(masses))
	for i, m := range masses {
		if counts[i] < capacity[i] {
			out[i] = m
		}
	}
	return out
}
