package sample

import (
	"fmt"

	"repro/internal/graph"
)

// Block is one layer of a mini-batch sample: a bipartite graph from sampled
// source nodes to the destination nodes whose next-layer embeddings it
// computes (the DGL "block" structure DSP inherits).
type Block struct {
	// Dst are the unique nodes computed by this block (global ids).
	Dst []graph.NodeID
	// SrcPtr/Src form a CSR: sampled neighbours of Dst[i] are
	// Src[SrcPtr[i]:SrcPtr[i+1]] (global ids, duplicates possible).
	SrcPtr []int32
	Src    []graph.NodeID

	// InputNodes are the unique nodes whose previous-layer embeddings this
	// block consumes: Dst first (self connections), then the remaining
	// unique Src nodes.
	InputNodes []graph.NodeID
	// SrcLocal maps each Src entry to its InputNodes index; DstLocal maps
	// each Dst entry likewise (DstLocal[i] == i by construction).
	SrcLocal []int32
	DstLocal []int32
}

// NumEdges returns the number of sampled (src, dst) pairs.
func (b *Block) NumEdges() int { return len(b.Src) }

// Deduper assembles blocks with a reusable direct-address mark table instead
// of a per-call hash map — the dominant cost of BuildBlock on the hot
// sampling path. One Deduper serves one rank (it is not safe for concurrent
// use); node ids must stay below the numNodes it was sized for.
type Deduper struct {
	mark []int32 // mark[v] = local index + 1 for the in-flight block
}

// NewDeduper returns a deduper for global ids in [0, numNodes).
func NewDeduper(numNodes int) *Deduper {
	return &Deduper{mark: make([]int32, numNodes)}
}

// BuildBlock is identical in results to the package-level BuildBlock but
// reuses the deduper's mark table for the unique-input-node index.
func (d *Deduper) BuildBlock(dst []graph.NodeID, counts []int32, samples []graph.NodeID) *Block {
	if len(dst) != len(counts) {
		panic("sample: dst/counts length mismatch")
	}
	b := &Block{Dst: dst, Src: samples}
	b.SrcPtr = make([]int32, len(dst)+1)
	var total int32
	for i, c := range counts {
		total += c
		b.SrcPtr[i+1] = total
	}
	if int(total) != len(samples) {
		panic(fmt.Sprintf("sample: %d samples for counts summing to %d", len(samples), total))
	}
	// InputNodes: dst first, then unseen src nodes.
	mark := d.mark
	b.InputNodes = make([]graph.NodeID, 0, len(dst)+len(samples)/2)
	b.DstLocal = make([]int32, len(dst))
	for i, v := range dst {
		mark[v] = int32(i) + 1
		b.InputNodes = append(b.InputNodes, v)
		b.DstLocal[i] = int32(i)
	}
	b.SrcLocal = make([]int32, len(samples))
	for i, v := range samples {
		li := mark[v]
		if li == 0 {
			li = int32(len(b.InputNodes)) + 1
			mark[v] = li
			b.InputNodes = append(b.InputNodes, v)
		}
		b.SrcLocal[i] = li - 1
	}
	// Reset only the touched entries so the table is clean for the next
	// block at O(unique) cost.
	for _, v := range b.InputNodes {
		mark[v] = 0
	}
	return b
}

// BuildBlock assembles a block from per-destination sample lists and
// computes the unique input-node set and local index mappings.
func BuildBlock(dst []graph.NodeID, counts []int32, samples []graph.NodeID) *Block {
	if len(dst) != len(counts) {
		panic("sample: dst/counts length mismatch")
	}
	b := &Block{Dst: dst, Src: samples}
	b.SrcPtr = make([]int32, len(dst)+1)
	var total int32
	for i, c := range counts {
		total += c
		b.SrcPtr[i+1] = total
	}
	if int(total) != len(samples) {
		panic(fmt.Sprintf("sample: %d samples for counts summing to %d", len(samples), total))
	}
	// InputNodes: dst first, then unseen src nodes.
	index := make(map[graph.NodeID]int32, len(dst)+len(samples))
	b.InputNodes = make([]graph.NodeID, 0, len(dst)+len(samples)/2)
	b.DstLocal = make([]int32, len(dst))
	for i, v := range dst {
		index[v] = int32(i)
		b.InputNodes = append(b.InputNodes, v)
		b.DstLocal[i] = int32(i)
	}
	b.SrcLocal = make([]int32, len(samples))
	for i, v := range samples {
		li, ok := index[v]
		if !ok {
			li = int32(len(b.InputNodes))
			index[v] = li
			b.InputNodes = append(b.InputNodes, v)
		}
		b.SrcLocal[i] = li
	}
	return b
}

// Validate checks block invariants.
func (b *Block) Validate() error {
	if len(b.SrcPtr) != len(b.Dst)+1 {
		return fmt.Errorf("sample: srcptr length %d for %d dst", len(b.SrcPtr), len(b.Dst))
	}
	if int(b.SrcPtr[len(b.Dst)]) != len(b.Src) {
		return fmt.Errorf("sample: srcptr end %d != %d srcs", b.SrcPtr[len(b.Dst)], len(b.Src))
	}
	seen := make(map[graph.NodeID]bool, len(b.InputNodes))
	for _, v := range b.InputNodes {
		if seen[v] {
			return fmt.Errorf("sample: duplicate input node %d", v)
		}
		seen[v] = true
	}
	for i, v := range b.Dst {
		if b.InputNodes[b.DstLocal[i]] != v {
			return fmt.Errorf("sample: dst local index broken at %d", i)
		}
	}
	for i, v := range b.Src {
		if b.InputNodes[b.SrcLocal[i]] != v {
			return fmt.Errorf("sample: src local index broken at %d", i)
		}
	}
	return nil
}

// MiniBatch is a complete multi-layer graph sample for a set of seeds.
// Blocks[0] is input-most: its InputNodes require raw features; Blocks[K-1]
// computes seed embeddings. Adjacent blocks chain: Blocks[l+1]'s InputNodes
// equal Blocks[l]'s Dst.
type MiniBatch struct {
	Seeds  []graph.NodeID
	Blocks []*Block
	// Epoch/Step identify the batch; Seed is the batch sampling seed.
	Epoch, Step int
	Seed        uint64
}

// InputNodes returns the nodes whose raw features the batch needs.
func (mb *MiniBatch) InputNodes() []graph.NodeID {
	return mb.Blocks[0].InputNodes
}

// NumSampledEdges returns total sampled edges across layers (the sampling
// work volume).
func (mb *MiniBatch) NumSampledEdges() int64 {
	var t int64
	for _, b := range mb.Blocks {
		t += int64(b.NumEdges())
	}
	return t
}

// Validate checks the chaining invariants between blocks.
func (mb *MiniBatch) Validate() error {
	if len(mb.Blocks) == 0 {
		return fmt.Errorf("sample: empty minibatch")
	}
	for l, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("block %d: %w", l, err)
		}
	}
	last := mb.Blocks[len(mb.Blocks)-1]
	if len(last.Dst) != len(mb.Seeds) {
		return fmt.Errorf("sample: output block computes %d nodes for %d seeds", len(last.Dst), len(mb.Seeds))
	}
	for i, s := range mb.Seeds {
		if last.Dst[i] != s {
			return fmt.Errorf("sample: output dst %d != seed %d", last.Dst[i], s)
		}
	}
	for l := 0; l+1 < len(mb.Blocks); l++ {
		upper := mb.Blocks[l+1]
		lower := mb.Blocks[l]
		if len(upper.InputNodes) != len(lower.Dst) {
			return fmt.Errorf("sample: chain broken at %d: %d vs %d", l, len(upper.InputNodes), len(lower.Dst))
		}
		for i := range lower.Dst {
			if upper.InputNodes[i] != lower.Dst[i] {
				return fmt.Errorf("sample: chain mismatch at block %d pos %d", l, i)
			}
		}
	}
	return nil
}

// Config mirrors the paper's Table 2: the configurable parameters of the
// collective sampling primitive.
type Config struct {
	// Fanout[l] is the per-node fan-out (node-wise) or the layer budget
	// (layer-wise) for hop l; len(Fanout) is the number of layers.
	Fanout []int
	// LayerWise selects layer-wise (FastGCN-style) over node-wise sampling.
	LayerWise bool
	// Biased uses edge weights; requires the graph to carry weights.
	Biased bool
	// WithReplacement controls the layer-wise variant (and, for node-wise,
	// whether draws may repeat).
	WithReplacement bool
}

// Layers returns the number of sampling hops.
func (c Config) Layers() int { return len(c.Fanout) }

// Reference samples a mini-batch on a single address space — the oracle the
// distributed CSP implementation must match exactly, and the kernel the
// single-GPU / CPU baselines execute. It consumes the Topology interface, so
// flat and compressed graphs sample identically when their adjacency lists
// agree (compressed lists are canonically sorted; see graph.Sorted).
func Reference(g graph.Topology, seeds []graph.NodeID, cfg Config, batchSeed uint64) *MiniBatch {
	return ReferenceInto(nil, g, seeds, cfg, batchSeed)
}

// ReferenceInto is Reference with a reusable Deduper (nil falls back to the
// map-based block builder) so hot callers skip per-block map churn.
func ReferenceInto(d *Deduper, g graph.Topology, seeds []graph.NodeID, cfg Config, batchSeed uint64) *MiniBatch {
	mb := &MiniBatch{Seeds: seeds, Seed: batchSeed}
	dst := seeds
	blocks := make([]*Block, 0, cfg.Layers())
	for l := 0; l < cfg.Layers(); l++ {
		var block *Block
		if cfg.LayerWise {
			block = sampleLayerWise(d, g, dst, l, cfg, batchSeed)
		} else {
			block = sampleNodeWise(d, g, dst, l, cfg, batchSeed)
		}
		blocks = append(blocks, block)
		dst = block.InputNodes
	}
	// Reverse: Blocks[0] input-most.
	for i, j := 0, len(blocks)-1; i < j; i, j = i+1, j-1 {
		blocks[i], blocks[j] = blocks[j], blocks[i]
	}
	mb.Blocks = blocks
	return mb
}

// buildWith dispatches to the reusable Deduper when one is supplied.
func buildWith(d *Deduper, dst []graph.NodeID, counts []int32, samples []graph.NodeID) *Block {
	if d != nil {
		return d.BuildBlock(dst, counts, samples)
	}
	return BuildBlock(dst, counts, samples)
}

func sampleNodeWise(d *Deduper, g graph.Topology, dst []graph.NodeID, layer int, cfg Config, batchSeed uint64) *Block {
	counts := make([]int32, len(dst))
	var samples []graph.NodeID
	fanout := cfg.Fanout[layer]
	for i, v := range dst {
		before := len(samples)
		samples = DrawNode(g, v, layer, fanout, cfg, batchSeed, samples)
		counts[i] = int32(len(samples) - before)
	}
	return buildWith(d, dst, counts, samples)
}

// DrawNode draws the neighbour sample for one (node, layer) on a full-graph
// topology. It delegates to DrawAdj with v as both the adjacency index and
// the seeding id.
func DrawNode(g graph.Topology, v graph.NodeID, layer int, fanout int, cfg Config, batchSeed uint64, out []graph.NodeID) []graph.NodeID {
	return DrawAdj(g.Neighbors(v), g.NeighborWeights(v), v, layer, fanout, cfg, batchSeed, out)
}

// DrawAdj is THE local sampling kernel: it draws from an adjacency slice,
// seeding the generator with the node's GLOBAL id. The distributed CSP calls
// it with a patch-local adjacency slice but the global id, which makes its
// draws bit-identical to the single-address-space Reference sampler.
func DrawAdj(adj []graph.NodeID, weights []float32, globalID graph.NodeID, layer int, fanout int, cfg Config, batchSeed uint64, out []graph.NodeID) []graph.NodeID {
	r := NodeSeed(batchSeed, layer, globalID)
	if cfg.Biased {
		if cfg.WithReplacement {
			return WeightedWithReplacement(r, adj, weights, fanout, out)
		}
		return Weighted(r, adj, weights, fanout, out)
	}
	if cfg.WithReplacement {
		return UniformWithReplacement(r, adj, fanout, out)
	}
	return Uniform(r, adj, fanout, out)
}

// sampleLayerWise implements Eq. (2): split the layer budget across the
// frontier proportionally to neighbour weight mass, then node-wise sample
// the assigned counts.
func sampleLayerWise(d *Deduper, g graph.Topology, dst []graph.NodeID, layer int, cfg Config, batchSeed uint64) *Block {
	masses := make([]float64, len(dst))
	for i, v := range dst {
		masses[i] = g.WeightSum(v)
	}
	budget := cfg.Fanout[layer]
	// The budget split is a per-(batch, layer) draw, not per-node.
	r := NodeSeed(batchSeed, layer, graph.NodeID(-1))
	var perNode []int
	if cfg.WithReplacement {
		perNode = LayerBudget(r, masses, budget)
	} else {
		capacity := make([]int, len(dst))
		for i, v := range dst {
			capacity[i] = g.Degree(v)
		}
		perNode = LayerBudgetWithoutReplacement(r, masses, capacity, budget)
	}
	counts := make([]int32, len(dst))
	var samples []graph.NodeID
	for i, v := range dst {
		if perNode[i] == 0 {
			continue
		}
		before := len(samples)
		samples = DrawNode(g, v, layer, perNode[i], cfg, batchSeed, samples)
		counts[i] = int32(len(samples) - before)
	}
	return buildWith(d, dst, counts, samples)
}
