// Package strategy defines the execution-strategy layer: the per-round
// gather/forward/backward orchestration that sits between the pipeline
// (which decides WHEN stages run) and the substrate (hw devices, comm
// collectives, featstore placement — which decide what they COST).
//
// Two strategies are provided. DSP is the paper's layout — row-partitioned
// hot/cold feature caching with an all-to-all gather — migrated verbatim
// from internal/core so same-seed runs stay byte-identical to pre-refactor
// reports. P3 is the hybrid-parallel alternative of the P3-GNN line of
// work: each GPU holds a [#Nodes, F/world] dimension slice of EVERY
// feature row, the first layer runs model-parallel over those slices, and
// the layer-1 boundary is a push-pull exchange (push partial activations
// forward, pull activation gradients back) instead of a feature gather.
// Which layout wins depends on feature width: P3's exchange volume is
// O(hidden) per input node regardless of F, DSP's is O(F) on the cache-miss
// fraction — dspbench strategy-sweep measures the crossover.
//
// Both strategies run IDENTICAL real math (the canonical full-width gather
// and dense layers under RealCompute): the layout changes what the
// simulated wire and kernels cost, never the values, so same-seed runs of
// DSP and P3 reach bit-identical parameters.
package strategy

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/prof"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/train"
)

// Kind names a selectable execution strategy.
type Kind string

const (
	// KindDSP is the paper's row-partitioned hot/cold layout (default).
	KindDSP Kind = "dsp"
	// KindP3 is the dimension-partitioned push-pull layout.
	KindP3 Kind = "p3"
)

// Parse resolves a -strategy flag value, case-insensitively ("" means dsp).
func Parse(s string) (Kind, error) {
	switch Kind(strings.ToLower(s)) {
	case "", KindDSP:
		return KindDSP, nil
	case KindP3:
		return KindP3, nil
	default:
		return "", fmt.Errorf("strategy: unknown strategy %q (want dsp or p3)", s)
	}
}

// Loaded is the loader-to-trainer payload: the sampled batch plus, under
// RealCompute, its gathered input features.
type Loaded struct {
	MB    *sample.MiniBatch
	Feats []float32
}

// ExecutionStrategy owns one round's gather/forward/backward orchestration
// on one rank. Sampling stays with the CSP world — both layouts sample the
// same way over the same partitioned topology — so the strategy's surface
// is the two stages whose cost the layout actually changes.
type ExecutionStrategy interface {
	// Kind identifies the strategy.
	Kind() Kind
	// Load fetches (DSP) or exchanges (P3) what the forward pass needs for
	// one sampled batch, over the given loader communicator.
	Load(p *sim.Proc, rank int, mb *sample.MiniBatch, lc *comm.Communicator) Loaded
	// Train runs one training step: forward remainder, backward, and the
	// gradient allreduce.
	Train(p *sim.Proc, rank int, l Loaded, st *train.EpochStats)
	// Section reports the strategy's wire/compute accounting for the run
	// report. DSP returns nil: its accounting already flows through the
	// existing sections, and omitting the block keeps DSP reports
	// byte-identical to pre-refactor baselines.
	Section() *prof.StrategySection
}
