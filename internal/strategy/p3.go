package strategy

import (
	"repro/internal/arena"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/featstore"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/prof"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/train"
)

// P3 is the hybrid-parallel execution strategy: features live
// dimension-partitioned ([#Nodes, F/world] slab per GPU, featstore's
// DimSliced layout), the first layer runs model-parallel over the column
// slices, and the layer-1 boundary exchanges activations instead of
// features — push partial activations to each batch's owner in the forward
// pass, pull activation gradients back to each W1-shard holder in the
// backward pass. Cross-GPU volume per input node is O(hidden), independent
// of the feature width, which is the whole bet against DSP's O(F) gather.
//
// The math is canonical: under RealCompute the full-width features are
// gathered and the standard dense layers run, so P3 reaches parameters
// bit-identical to DSP at the same seed. Only the simulated wire and
// kernel costs follow the P3 layout.
type P3 struct {
	Opts    train.Options
	M       *hw.Machine
	Store   *featstore.Store // DimSliced
	Trainer *train.Trainer

	// Cumulative exchange accounting for StrategySection and the trace
	// counter series (mutated from per-GPU procs; the DES is cooperative).
	pushWire     int64
	pullWire     int64
	partialFlops int64
	reduceBytes  int64

	// zeros backs the activation payloads (timing without real copies).
	zeros []float32
	// pool recycles gather staging buffers; par offloads their fill.
	pool arena.Pool
	par  *sim.ParallelGroup
}

// group lazily binds the strategy to the engine's parallel budget.
func (s *P3) group() *sim.ParallelGroup {
	if s.par == nil {
		s.par = s.M.Eng.NewParallelGroup()
	}
	return s.par
}

// NewP3 assembles the P3 strategy over a DimSliced store.
func NewP3(opts train.Options, m *hw.Machine, fs *featstore.Store, trainer *train.Trainer) *P3 {
	return &P3{Opts: opts, M: m, Store: fs, Trainer: trainer}
}

// Kind implements ExecutionStrategy.
func (s *P3) Kind() Kind { return KindP3 }

// hidden0 is the first layer's output width — the per-node element count
// both exchanges carry.
func (s *P3) hidden0() int {
	if s.Opts.Model.Layers == 1 {
		return s.Opts.Model.Classes
	}
	return s.Opts.Model.Hidden
}

// zeroAct returns a zero-backed payload standing in for n activation values.
func (s *P3) zeroAct(n int) []float32 {
	if cap(s.zeros) < n {
		s.zeros = make([]float32, n)
	}
	return s.zeros[:n]
}

// denseFactor is the flops-per-(node x in x out) coefficient of one dense
// layer: SAGE projects self and neighbour separately.
func denseFactor(arch nn.Arch) int64 {
	if arch == nn.SAGE {
		return 4
	}
	return 2
}

// ForwardStats accounts one forward push-pull exchange.
type ForwardStats struct {
	PushWire     int64 // partial-activation wire bytes charged
	PartialFlops int64 // model-parallel first-layer flops
	ReduceBytes  int64 // partial-activation reduction kernel bytes
}

// P3Forward runs the forward half of the push-pull exchange for one batch on
// one rank: allgather of every batch's input ids, local slab gathers plus
// partial first-layer projections for all of them, the partial-activation
// push all-to-all home to each batch's owner, and the local reduction of the
// incoming partials. Shared by the training loader stage and the serving
// executor, which differ only in where the accounting lands.
func P3Forward(p *sim.Proc, m *hw.Machine, c *comm.Communicator, rank int, fs *featstore.Store, arch nn.Arch, h0 int, codec compress.Codec, ids []graph.NodeID, zeros func(int) []float32) ForwardStats {
	var out ForwardStats
	dev := m.GPUs[rank]
	n := c.N
	if n == 1 {
		// A single GPU holds the full width: a plain local gather.
		dev.RunKernel(p, hw.KernelGather, int64(len(ids))*int64(fs.RowBytes()))
		return out
	}
	slice := fs.SliceDim(rank)
	// Every rank learns every batch's input set (the ids ride the feature
	// class, like DSP's request all-to-all).
	idsIn := comm.AllGather(c, p, rank, ids, comm.Raw(4, hw.TrafficFeature))
	// Model-parallel first layer: gather the local column slice of every
	// batch's inputs and project through the local W1 column shard.
	push := make([][]float32, n)
	factor := denseFactor(arch)
	for q := 0; q < n; q++ {
		mq := len(idsIn[q])
		if mq == 0 {
			continue
		}
		dev.RunKernel(p, hw.KernelGather, int64(mq)*int64(slice)*4)
		flops := factor * int64(mq) * int64(slice) * int64(h0)
		dev.RunKernel(p, hw.KernelCompute, flops)
		out.PartialFlops += flops
		if q != rank {
			push[q] = zeros(mq * h0)
		}
	}
	// Push the partial activations home to each batch's owner.
	comm.AllToAll(c, p, rank, push, comm.Compressed(codec, hw.TrafficFeature))
	for q := 0; q < n; q++ {
		if q != rank {
			out.PushWire += compress.WireBytes(codec, len(push[q]))
		}
	}
	// Reduce the n-1 incoming partials into the locally computed one.
	if len(ids) > 0 {
		red := int64(n-1) * int64(len(ids)) * int64(h0) * 4
		dev.RunKernel(p, hw.KernelGather, red)
		out.ReduceBytes += red
	}
	return out
}

// Load implements ExecutionStrategy: the P3 forward exchange stands where
// DSP's feature gather would be.
func (s *P3) Load(p *sim.Proc, rank int, mb *sample.MiniBatch, lc *comm.Communicator) Loaded {
	ids := mb.InputNodes()
	// Stage the real feature gather on a worker thread so it overlaps the
	// virtual-time push/partial/reduce choreography of the first layer.
	var feats []float32
	var gather *sim.Ticket
	if s.Opts.RealCompute {
		feats = s.pool.Get(len(ids) * s.Opts.Data.FeatDim)
		gather = s.group().Submit(func() { train.GatherFeaturesInto(feats, s.Opts.Data, mb) })
	}
	fst := P3Forward(p, s.M, lc, rank, s.Store, s.Opts.Model.Arch, s.hidden0(), s.Opts.FeatCodec, ids, s.zeroAct)
	s.pushWire += fst.PushWire
	s.partialFlops += fst.PartialFlops
	s.reduceBytes += fst.ReduceBytes
	if lc.N > 1 {
		s.traceCounter(s.M.GPUs[rank], "p3 push", s.pushWire)
	}
	gather.Join()
	return Loaded{MB: mb, Feats: feats}
}

// Train implements ExecutionStrategy: pull the layer-1 activation gradients
// back to every W1-shard holder, then run the data-parallel remainder with
// the sharded first-layer weights priced off the allreduce ring.
func (s *P3) Train(p *sim.Proc, rank int, l Loaded, st *train.EpochStats) {
	t := s.Trainer
	dev := s.M.GPUs[rank]
	mb := l.MB
	n := t.Comm.N
	h0 := s.hidden0()
	if n > 1 {
		// Backward pull: the batch owner's layer-1 activation gradients go
		// to every peer, each of which grinds out its W1 column shard's
		// gradient for that batch.
		ids := mb.InputNodes()
		out := make([][]float32, n)
		for q := 0; q < n; q++ {
			if q != rank {
				out[q] = s.zeroAct(len(ids) * h0)
			}
		}
		in := comm.AllToAll(t.Comm, p, rank, out, comm.Compressed(s.Opts.GradCodec, hw.TrafficGradient))
		factor := denseFactor(s.Opts.Model.Arch)
		slice := int64(s.Store.SliceDim(rank))
		for q := 0; q < n; q++ {
			if q == rank {
				continue
			}
			s.pullWire += compress.WireBytes(s.Opts.GradCodec, len(out[q]))
			// The received segment length recovers peer q's batch size.
			if mq := len(in[q]) / h0; mq > 0 {
				dev.RunKernel(p, hw.KernelCompute, factor*int64(mq)*slice*int64(h0))
			}
		}
		s.traceCounter(dev, "p3 pull", s.pullWire)
	}
	gradOpts := comm.Opts{Class: hw.TrafficGradient, ElemBytes: 4, Codec: s.Opts.GradCodec, PriceElems: s.priceElems()}
	if s.Opts.RealCompute {
		// The canonical math of train.Trainer.Step: full-width features,
		// full dense layers, full-vector allreduce. Only the wire PRICE of
		// the sharded first-layer weights changes (PriceElems above) — the
		// values reduced are identical to DSP's, so replicas of the two
		// strategies stay bitwise equal at the same seed.
		m := t.Models[rank]
		m.ZeroGrads()
		if len(mb.Seeds) > 0 {
			loss, correct, flops := m.TrainStep(mb, l.Feats, train.SeedLabels(s.Opts.Data, mb))
			dev.RunKernel(p, hw.KernelCompute, flops)
			st.Loss += loss
			st.Correct += correct
			st.Seen += len(mb.Seeds)
		}
		if l.Feats != nil {
			s.pool.Put(l.Feats) // the step has consumed the staged gather
		}
		m.GradVector(t.Grad[rank])
		t.Comm.AllReduceSum(p, rank, t.Grad[rank], gradOpts)
		inv := float32(1.0) / float32(t.Comm.N)
		for i := range t.Grad[rank] {
			t.Grad[rank][i] *= inv
		}
		m.SetGradVector(t.Grad[rank])
		t.Optims[rank].Step(m)
		return
	}
	if len(mb.Seeds) > 0 {
		dev.RunKernel(p, hw.KernelGather, nn.NominalAggBytes(s.Opts.Model, mb))
		dev.RunKernel(p, hw.KernelCompute, s.residualFlops(mb))
	}
	gradOpts.Static = true // cost-only never writes Grad; encode is reusable
	t.Comm.AllReduceSum(p, rank, t.Grad[rank], gradOpts)
}

// priceElems is the allreduce element count the wire is charged for: the
// full gradient vector minus the first layer's dimension-sharded dense
// weights, which are replica-local under P3 and never ride the ring.
func (s *P3) priceElems() int {
	pe := len(s.Trainer.Grad[0]) - s.shardedParams()
	if pe < 1 {
		pe = 1
	}
	return pe
}

// shardedParams counts the first-layer dense weight elements P3 shards by
// column: SAGE projects self and neighbour separately (two InDim x h0
// matrices); the other archs have one. Biases and attention vectors stay
// replicated.
func (s *P3) shardedParams() int {
	k := 1
	if s.Opts.Model.Arch == nn.SAGE {
		k = 2
	}
	return k * s.Opts.Model.InDim * s.hidden0()
}

// residualFlops is P3's cost-only trainer kernel: the first layer's dense
// work is already charged in the loader (partial projections) and the pull
// (weight-gradient shards), so layer 0 contributes only its aggregation
// terms; deeper layers run data-parallel exactly as in DSP's NominalFlops.
func (s *P3) residualFlops(mb *sample.MiniBatch) int64 {
	cfg := s.Opts.Model
	var total int64
	for l, b := range mb.Blocks {
		in, out := layerDims(cfg, l)
		var dense, agg int64
		switch cfg.Arch {
		case nn.GAT:
			dense = 2 * int64(len(b.InputNodes)) * int64(in) * int64(out)
			agg = 12 * int64(len(b.Src)) * int64(out)
		case nn.SAGE:
			dense = 4 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		default:
			dense = 2 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		}
		if l == 0 {
			total += 2 * agg
		} else {
			total += 3*dense + 2*agg
		}
	}
	return total
}

// P3ResidualForwardFlops is the forward-only analogue of residualFlops for
// the serving path: nn.NominalForwardFlops net of the first layer's dense
// term, which the push exchange has already charged as partial projections.
func P3ResidualForwardFlops(cfg nn.Config, mb *sample.MiniBatch) int64 {
	var total int64
	for l, b := range mb.Blocks {
		in, out := layerDims(cfg, l)
		var dense, agg int64
		switch cfg.Arch {
		case nn.GAT:
			dense = 2 * int64(len(b.InputNodes)) * int64(in) * int64(out)
			agg = 12 * int64(len(b.Src)) * int64(out)
		case nn.SAGE:
			dense = 4 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		default:
			dense = 2 * int64(len(b.Dst)) * int64(in) * int64(out)
			agg = 2 * int64(len(b.Src)) * int64(in)
		}
		if l == 0 {
			total += agg
		} else {
			total += dense + agg
		}
	}
	return total
}

// layerDims mirrors nn.Config's per-layer dimensions.
func layerDims(cfg nn.Config, l int) (in, out int) {
	in = cfg.Hidden
	if l == 0 {
		in = cfg.InDim
	}
	out = cfg.Hidden
	if l == cfg.Layers-1 {
		out = cfg.Classes
	}
	return in, out
}

// traceCounter emits the cumulative push/pull wire-byte counter series so
// dspprof charts and diffs the exchange volume like any other path.
func (s *P3) traceCounter(dev *hw.Device, name string, bytes int64) {
	dev.Tracer.Counter(name, dev.ID, float64(s.M.Eng.Now()), map[string]float64{
		"bytes": float64(bytes),
	})
}

// Section implements ExecutionStrategy.
func (s *P3) Section() *prof.StrategySection {
	sec := &prof.StrategySection{
		Name:          string(KindP3),
		FeatureDim:    s.Opts.Data.FeatDim,
		PushBytes:     s.pushWire,
		PullBytes:     s.pullWire,
		PartialFlops:  s.partialFlops,
		ReduceBytes:   s.reduceBytes,
		ShardedParams: s.shardedParams(),
	}
	for g := 0; g < s.Store.NumGPUs; g++ {
		sec.SliceDims = append(sec.SliceDims, s.Store.SliceDim(g))
	}
	return sec
}
