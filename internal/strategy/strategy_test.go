package strategy_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/train"
)

func testData(t testing.TB, nGPU int) *train.Data {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "stest", Nodes: 16000, AvgDegree: 12, FeatDim: 32,
		NumClasses: 6, Seed: 808,
	})
	return train.Prepare(d, nGPU, 1, true)
}

func realOpts(td *train.Data, strat string) train.Options {
	return train.Options{
		Data:        td,
		Model:       nn.Config{Arch: nn.SAGE, InDim: td.FeatDim, Hidden: 24, Classes: td.NumClasses, Layers: 2},
		Sample:      sample.Config{Fanout: []int{8, 6}},
		BatchSize:   512,
		Pipeline:    true,
		UseCCC:      true,
		RealCompute: true,
		Seed:        77,
		Strategy:    strat,
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want strategy.Kind
		err  bool
	}{
		{"", strategy.KindDSP, false},
		{"dsp", strategy.KindDSP, false},
		{"p3", strategy.KindP3, false},
		{"P3", strategy.KindP3, false},
		{"pipeline", "", true},
	} {
		got, err := strategy.Parse(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("Parse(%q): err = %v, want err %v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestStrategiesBitIdenticalParams pins the strategy layer's canonical-math
// contract: DSP and P3 differ only in their simulated wire and kernel cost
// model, so at the same seed both reach bitwise-equal parameters. Lossy
// codecs are off — they are part of the training math, not the strategy.
func TestStrategiesBitIdenticalParams(t *testing.T) {
	td := testData(t, 4)
	run := func(strat string) *nn.Model {
		sys, err := core.New(realOpts(td, strat))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for e := 0; e < 2; e++ {
			if _, err := sys.RunEpoch(e); err != nil {
				t.Fatalf("%s epoch %d: %v", strat, e, err)
			}
		}
		return sys.Model()
	}
	dsp, p3 := run("dsp"), run("p3")
	if len(dsp.Params) != len(p3.Params) {
		t.Fatalf("param tensor count: dsp %d, p3 %d", len(dsp.Params), len(p3.Params))
	}
	for i := range dsp.Params {
		a, b := dsp.Params[i].W.Data, p3.Params[i].W.Data
		if len(a) != len(b) {
			t.Fatalf("param %d (%s): len %d vs %d", i, dsp.Params[i].Name, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %d (%s) element %d: dsp %v, p3 %v — strategies diverged",
					i, dsp.Params[i].Name, j, a[j], b[j])
			}
		}
	}
}

// TestP3EpochAndSection: a P3 run reports a consistent strategy section —
// named, slice widths tiling the feature dim, and nonzero exchange volume on
// a multi-GPU fleet — while the DSP strategy reports none (its reports stay
// byte-identical to the pre-strategy-layer schema).
func TestP3EpochAndSection(t *testing.T) {
	td := testData(t, 4)
	sys, err := core.New(realOpts(td, "p3"))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "DSP-P3" {
		t.Fatalf("Name() = %q, want DSP-P3", sys.Name())
	}
	if _, err := sys.RunEpoch(0); err != nil {
		t.Fatal(err)
	}
	sec := sys.StrategySection()
	if sec == nil || sec.Name != "p3" {
		t.Fatalf("strategy section = %+v, want name p3", sec)
	}
	sum := 0
	for _, w := range sec.SliceDims {
		sum += w
	}
	if sum != td.FeatDim || len(sec.SliceDims) != 4 {
		t.Fatalf("slice dims %v do not tile feature dim %d", sec.SliceDims, td.FeatDim)
	}
	if sec.PushBytes <= 0 || sec.PullBytes <= 0 || sec.PartialFlops <= 0 {
		t.Fatalf("exchange accounting not populated: %+v", sec)
	}

	dsp, err := core.New(realOpts(td, "dsp"))
	if err != nil {
		t.Fatal(err)
	}
	if s := dsp.StrategySection(); s != nil {
		t.Fatalf("dsp strategy section = %+v, want nil", s)
	}
}

// TestP3RejectsIncompatibleOptions: the p3 layout has no per-row cache, so
// row-policy knobs and fault injection are configuration errors, not silent
// no-ops.
func TestP3RejectsIncompatibleOptions(t *testing.T) {
	td := testData(t, 2)
	for name, mutate := range map[string]func(*train.Options){
		"dynamic cache":   func(o *train.Options) { o.DynamicCache = cache.LFUDecay },
		"cache budget":    func(o *train.Options) { o.FeatureCacheBudget = 1 << 20 },
		"replicated":      func(o *train.Options) { o.ReplicatedCache = true },
		"unknown variant": func(o *train.Options) { o.Strategy = "p4" },
	} {
		o := realOpts(td, "p3")
		mutate(&o)
		if _, err := core.New(o); err == nil {
			t.Errorf("%s: core.New accepted an incompatible p3 config", name)
		}
	}
}
