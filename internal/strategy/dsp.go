package strategy

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/train"
)

// DSP is the paper's execution strategy, migrated verbatim from
// internal/core: local cache hits via a gather kernel, remote hot rows via
// all-to-all over NVLink, cold rows via UVA (in parallel on different
// links), then the standard data-parallel train step.
type DSP struct {
	Opts    train.Options
	M       *hw.Machine
	Cache   *cache.Manager
	Host    *store.Store // out-of-core host tier (nil unless Opts.OOC)
	Trainer *train.Trainer

	// zeros backs loader reply payloads (transfer timing without copying
	// real rows twice).
	zeros []float32
	// pool recycles gather staging buffers (RealCompute feature assembly);
	// par offloads their fill between DES commit points.
	pool arena.Pool
	par  *sim.ParallelGroup
}

// group lazily binds the strategy to the engine's parallel budget.
func (s *DSP) group() *sim.ParallelGroup {
	if s.par == nil {
		s.par = s.M.Eng.NewParallelGroup()
	}
	return s.par
}

// NewDSP assembles the DSP strategy over an already-built substrate.
func NewDSP(opts train.Options, m *hw.Machine, cacheMgr *cache.Manager, host *store.Store, trainer *train.Trainer) *DSP {
	return &DSP{Opts: opts, M: m, Cache: cacheMgr, Host: host, Trainer: trainer}
}

// Kind implements ExecutionStrategy.
func (s *DSP) Kind() Kind { return KindDSP }

// zeroRows returns a zero-backed payload standing in for rows feature rows
// (cost-only mode sends these so transfer timing stays exact without
// copying real rows twice).
func (s *DSP) zeroRows(rows int) []float32 {
	need := rows * s.Opts.Data.FeatDim
	if cap(s.zeros) < need {
		s.zeros = make([]float32, need)
	}
	return s.zeros[:need]
}

// Load implements ExecutionStrategy: fetch features for the sampled batch —
// local cache hits via a gather kernel, remote hot rows via all-to-all over
// NVLink, cold rows via UVA — hot and cold fetches run in parallel on
// different links, as in the paper.
func (s *DSP) Load(p *sim.Proc, rank int, mb *sample.MiniBatch, lc *comm.Communicator) Loaded {
	d := s.Opts.Data
	dev := s.M.GPUs[rank]
	ids := mb.InputNodes()
	// Stage the real feature gather on a worker thread so it overlaps the
	// virtual-time NVLink/UVA choreography below; the buffer is pooled and
	// recycled by Train once the step has consumed it.
	var feats []float32
	var gather *sim.Ticket
	if s.Opts.RealCompute {
		feats = s.pool.Get(len(ids) * d.FeatDim)
		gather = s.group().Submit(func() { train.GatherFeaturesInto(feats, d, mb) })
	}
	// The manager's Split records row hotness for the epoch-boundary
	// rebalancer and re-routes dead-holder rows to the host tier.
	local, remote, host := s.Cache.Split(ids, rank)
	s.Cache.Account(rank, cache.CountTiers(local, remote, host))
	n := lc.N

	// Feature tier of the frontier walk: the split names exactly the
	// host-tier rows the UVA side path is about to read — prefetch their
	// blocks now (MaxInflight-way parallel, non-blocking) so the spill reads
	// overlap the NVLink path instead of serialising in the toucher.
	if s.Host != nil && len(host) > 0 {
		s.Host.PrefetchFeatures(host)
	}

	// Cold rows via UVA, concurrently with the NVLink path.
	uvaDone := s.M.Eng.NewEvent()
	if len(host) > 0 {
		s.M.Eng.Go(fmt.Sprintf("gpu%d/uva", rank), func(cp *sim.Proc) {
			// Host rows must be cache-resident before UVA can read them:
			// the out-of-core tier stalls this side path (not the NVLink
			// path) on any spill-device fetch.
			if s.Host != nil {
				s.Host.TouchFeatures(cp, host)
			}
			dev.UVARead(cp, s.M.Fabric, int64(len(host)), d.RowBytes(), hw.TrafficFeature)
			uvaDone.Trigger()
		})
	} else {
		uvaDone.Trigger()
	}

	// Local cache hits: one gather kernel.
	if len(local) > 0 {
		dev.RunKernel(p, hw.KernelGather, int64(len(local))*int64(d.RowBytes()))
	}

	// Remote hot rows: request ids, owners gather, rows come back.
	if n > 1 {
		reqIn := comm.AllToAll(lc, p, rank, remote, comm.Raw(4, hw.TrafficFeature))
		var served int64
		for q := 0; q < n; q++ {
			served += int64(len(reqIn[q]))
		}
		if served > 0 {
			dev.RunKernel(p, hw.KernelGather, served*int64(d.RowBytes()))
		}
		replies := make([][]float32, n)
		for q := 0; q < n; q++ {
			replies[q] = s.zeroRows(len(reqIn[q]))
		}
		comm.AllToAll(lc, p, rank, replies, comm.Compressed(s.Opts.FeatCodec, hw.TrafficFeature))
	}

	uvaDone.Wait(p)
	// Assemble the contiguous input-feature buffer.
	dev.RunKernel(p, hw.KernelGather, int64(len(ids))*int64(d.RowBytes()))
	gather.Join()
	return Loaded{MB: mb, Feats: feats}
}

// Train implements ExecutionStrategy: the standard data-parallel step.
func (s *DSP) Train(p *sim.Proc, rank int, l Loaded, st *train.EpochStats) {
	s.Trainer.Step(p, s.M.GPUs[rank], rank, l.MB, l.Feats, st)
	if l.Feats != nil {
		s.pool.Put(l.Feats) // the step has consumed the staged gather
	}
}

// Section implements ExecutionStrategy. DSP reports through the existing
// sections; returning nil keeps its run reports byte-identical to
// pre-refactor baselines.
func (s *DSP) Section() *prof.StrategySection { return nil }
