// Package arena provides size-classed buffer pools for the simulator's hot
// data paths (gather staging, allreduce scratch). The steady state of an
// epoch re-requests the same few buffer shapes thousands of times; pooling
// them removes the per-round allocation and the GC pressure of multi-MB
// float32 slices without changing any computed value — Get returns zeroed
// memory, exactly like make.
//
// Pools are NOT safe for concurrent use. Each owner (a communicator, a
// strategy instance) keeps its own pool and touches it only from simulation
// processes, which the DES engine runs strictly one at a time; offloaded
// data units (sim.ParallelGroup) must never Get/Put — they only fill
// buffers their submitting process obtained beforehand.
package arena

import "math/bits"

// maxClass covers buffers up to 2^32 elements; anything is representable.
const maxClass = 33

// Pool recycles []float32 buffers keyed by power-of-two capacity class.
type Pool struct {
	buckets [maxClass][][]float32
}

// sizeClass returns the bucket index for a capacity: the largest k with
// 2^k <= c, so every buffer in bucket k has capacity >= 2^k.
func sizeClass(c int) int {
	if c <= 1 {
		return 0
	}
	k := bits.Len(uint(c)) - 1
	if k >= maxClass {
		k = maxClass - 1
	}
	return k
}

// Get returns a zeroed buffer of length n, reusing pooled capacity when a
// large-enough buffer is available.
func (p *Pool) Get(n int) []float32 {
	if n == 0 {
		return nil
	}
	// A buffer that can hold n lives in class ceil(log2 n) or above.
	k := sizeClass(n)
	if 1<<uint(k) < n {
		k++
	}
	if k >= maxClass {
		return make([]float32, n)
	}
	for c := k; c < maxClass; c++ {
		if m := len(p.buckets[c]); m > 0 {
			b := p.buckets[c][m-1]
			p.buckets[c] = p.buckets[c][:m-1]
			b = b[:n]
			clear(b)
			return b
		}
	}
	return make([]float32, n, 1<<uint(k))
}

// Put recycles b's capacity. Putting nil or zero-capacity slices is a no-op.
// The caller must not retain b.
func (p *Pool) Put(b []float32) {
	c := cap(b)
	if c == 0 {
		return
	}
	k := sizeClass(c)
	p.buckets[k] = append(p.buckets[k], b[:0])
}
