package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of an ASCII sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkWidth is the rendered width of every sparkline column.
const sparkWidth = 60

// Sparkline renders values as a fixed-width block-character strip. The
// series is resampled to width columns (max over each column's bucket,
// so short spikes survive downsampling) and scaled to the series' own
// min..max range. An empty or constant series renders as a flat line.
func Sparkline(values []float64, width int) string {
	if width <= 0 {
		width = sparkWidth
	}
	if len(values) == 0 {
		return strings.Repeat(" ", width)
	}
	cols := resampleMax(values, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range cols {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// resampleMax maps values onto width columns, each column taking the max
// of its share of the input.
func resampleMax(values []float64, width int) []float64 {
	out := make([]float64, width)
	if len(values) <= width {
		// Stretch: column i reads value i*len/width.
		for i := range out {
			out[i] = values[i*len(values)/width]
		}
		return out
	}
	for i := range out {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		m := values[lo]
		for _, v := range values[lo:hi] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

// Render writes the full dashboard: one sparkline row per series, the
// request/stage summary with the p99 exemplar drill-down, the alert
// timeline and any recorded events.
func (d *Doc) Render(w io.Writer) error {
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format, args...)
	}
	p("telemetry %s  horizon %.6gs  interval %.6gs  scrapes %d  slo %.6gs  target %.4g\n",
		d.Schema, d.Horizon, d.Interval, d.Scrapes, d.SLO, d.Target)
	p("\nseries\n")
	for _, s := range d.Series {
		var lo, hi, last float64
		if len(s.Values) > 0 {
			lo, hi = math.Inf(1), math.Inf(-1)
			for _, v := range s.Values {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			last = s.Values[len(s.Values)-1]
		}
		dropNote := ""
		if s.Dropped > 0 {
			dropNote = fmt.Sprintf("  (dropped %d)", s.Dropped)
		}
		p("  %-32s %-7s %s  min %-12.6g max %-12.6g last %-12.6g%s\n",
			s.Name, s.Kind, Sparkline(s.Values, sparkWidth), lo, hi, last, dropNote)
	}

	r := d.Requests
	p("\nrequests  observed %d  good %d  bad %d  shed %d  bad-fraction %.4f\n",
		r.Observed, r.Good, r.Bad, r.Shed, r.BadFraction)
	if r.Latency.Count > 0 {
		p("latency   mean %.6gs  p50 %.6gs  p95 %.6gs  p99 %.6gs  max %.6gs\n",
			r.Latency.Mean, r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
	}
	for _, st := range r.Stages {
		frac := 0.0
		if r.Observed > 0 {
			frac = float64(st.Critical) / float64(r.Observed)
		}
		p("  stage %-8s critical %5.1f%%  mean %.6gs  p99 %.6gs\n",
			st.Name, 100*frac, st.Duration.Mean, st.Duration.P99)
	}
	if len(r.Exemplars) > 0 {
		p("\np99 drill-down (worst request per latency bucket, highest first)\n")
		for _, ex := range r.Exemplars {
			p("  req %-6d gpu %d round %-5d lat %.6gs  critical=%-8s queue %.6gs sample %.6gs gather %.6gs forward %.6gs\n",
				ex.ID, ex.GPU, ex.Round, ex.Latency, ex.Critical, ex.Queue, ex.Sample, ex.Gather, ex.Forward)
		}
	}

	p("\nalerts\n")
	if len(d.Alerts) == 0 {
		p("  none fired\n")
	}
	for _, a := range d.Alerts {
		sev := "ticket"
		if a.Page {
			sev = "PAGE"
		}
		p("  %-6s %-8s [%s]  %.6gs → %.6gs  peak burn %.3gx\n",
			sev, a.Rule, alertTimeline(a, d.Horizon, sparkWidth), a.Start, a.End, a.Peak)
	}
	for _, ru := range d.Rules {
		p("  rule %-8s short %.6gs long %.6gs burn>%.4gx  fired %d\n",
			ru.Name, ru.Short, ru.Long, ru.Burn, ru.Fired)
	}

	if len(d.Events) > 0 {
		p("\nevents\n")
		for _, e := range d.Events {
			p("  %.6gs  %-12s %s\n", e.At, e.Name, e.Detail)
		}
	}
	return nil
}

// alertTimeline draws one alert's firing interval on a [0,horizon]
// strip.
func alertTimeline(a AlertDoc, horizon float64, width int) string {
	if horizon <= 0 {
		return strings.Repeat("·", width)
	}
	lo := int(a.Start / horizon * float64(width))
	hi := int(a.End / horizon * float64(width))
	if hi >= width {
		hi = width - 1
	}
	if lo > hi {
		lo = hi
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		if i >= lo && i <= hi {
			b.WriteRune('█')
		} else {
			b.WriteRune('·')
		}
	}
	return b.String()
}
