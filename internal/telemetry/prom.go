package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// promName sanitizes a series name into a Prometheus metric name:
// lower-cased, every non-alphanumeric run collapsed to one underscore,
// prefixed with dsp_. "fleet0/gpu1/busy" becomes "dsp_fleet0_gpu1_busy".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dsp_")
	prevUnderscore := false
	for _, r := range strings.ToLower(name) {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		if ok {
			b.WriteRune(r)
			prevUnderscore = false
		} else if !prevUnderscore {
			b.WriteByte('_')
			prevUnderscore = true
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// WriteProm exports the document in Prometheus text exposition format:
// the final sample of every series (counters get a _total suffix), the
// request totals, and per-rule firing gauges/counters. Timestamps are
// omitted — the document is a virtual-time artifact.
func (d *Doc) WriteProm(w io.Writer) error {
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format, args...)
	}
	for _, s := range d.Series {
		name := promName(s.Name)
		typ := "gauge"
		if s.Kind == "counter" {
			name += "_total"
			typ = "counter"
		}
		var last float64
		if len(s.Values) > 0 {
			last = s.Values[len(s.Values)-1]
		}
		p("# TYPE %s %s\n", name, typ)
		p("%s %g\n", name, last)
	}
	p("# TYPE dsp_requests_total counter\n")
	p("dsp_requests_total %d\n", d.Requests.Observed)
	p("# TYPE dsp_requests_good_total counter\n")
	p("dsp_requests_good_total %d\n", d.Requests.Good)
	p("# TYPE dsp_requests_bad_total counter\n")
	p("dsp_requests_bad_total %d\n", d.Requests.Bad)
	p("# TYPE dsp_requests_shed_total counter\n")
	p("dsp_requests_shed_total %d\n", d.Requests.Shed)
	p("# TYPE dsp_request_latency_p99 gauge\n")
	p("dsp_request_latency_p99 %g\n", d.Requests.Latency.P99)
	p("# TYPE dsp_alerts_fired_total counter\n")
	for _, ru := range d.Rules {
		p("dsp_alerts_fired_total{rule=%q} %d\n", ru.Name, ru.Fired)
	}
	return nil
}
