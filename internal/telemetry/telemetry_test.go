package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// runScrapes drives a hub through a workload on a real engine: fn runs as
// a sim process alongside the scraper daemon, and the engine's final time
// is returned.
func runScrapes(h *Hub, fn func(p *sim.Proc)) sim.Time {
	eng := sim.NewEngine()
	h.Start(eng)
	eng.Go("workload", fn)
	end, err := eng.Run()
	if err != nil {
		panic(err)
	}
	return end
}

func TestScrapeCadenceAndKinds(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	busy := 0.0
	h.Gauge("g", func(now sim.Time) float64 { return float64(now) })
	h.Counter("c", func(now sim.Time) float64 { return busy })
	h.Rate("r", func(now sim.Time) float64 { return busy })
	end := runScrapes(h, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1e-3)
			busy += 2e-3 // cumulative source grows 2e-3 per 1ms tick
		}
	})
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	// The workload spans 10ms; the scraper ticks every 1ms starting at
	// t=1ms. The daemon's own pending sleep does not extend the run.
	if doc.Scrapes < 9 || doc.Scrapes > 11 {
		t.Fatalf("scrapes %d, want ~10 over a 10ms run at 1ms cadence", doc.Scrapes)
	}
	byName := map[string]SeriesDoc{}
	for _, s := range doc.Series {
		byName[s.Name] = s
	}
	g := byName["g"]
	if g.Kind != "gauge" || len(g.Values) != doc.Scrapes {
		t.Fatalf("gauge series %+v", g)
	}
	// Gauge sample i was taken at (i+1)*interval and reads the clock.
	if got, want := g.Values[4], 5e-3; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("gauge value at tick 5 = %g, want %g", got, want)
	}
	// Rate: cumulative +2e-3 per 1ms tick → rate 2.0 once warm. The first
	// tick's delta depends on scheduling order; check a middle tick.
	r := byName["r"]
	if r.Kind != "rate" {
		t.Fatalf("rate series kind %q", r.Kind)
	}
	if got := r.Values[5]; got < 1.9 || got > 2.1 {
		t.Fatalf("rate value at tick 6 = %g, want ~2.0", got)
	}
	c := byName["c"]
	if c.Kind != "counter" || c.Values[len(c.Values)-1] < c.Values[0] {
		t.Fatalf("counter series not monotone: %+v", c.Values)
	}
}

func TestRingCapDropsOldSamples(t *testing.T) {
	h := New(Config{Interval: 1e-3, RingCap: 4})
	h.Gauge("g", func(now sim.Time) float64 { return float64(now) })
	end := runScrapes(h, func(p *sim.Proc) { p.Sleep(10e-3) })
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	s := doc.Series[0]
	if len(s.Values) != 4 {
		t.Fatalf("ring kept %d samples, cap 4", len(s.Values))
	}
	if s.Dropped != doc.Scrapes-4 || s.First != s.Dropped {
		t.Fatalf("dropped %d first %d with %d scrapes", s.Dropped, s.First, doc.Scrapes)
	}
	// The retained samples are the most recent ones, in order: the last
	// value must read the latest clock.
	last := s.Values[len(s.Values)-1]
	if prev := s.Values[len(s.Values)-2]; prev >= last {
		t.Fatalf("ring unroll out of order: %v", s.Values)
	}
}

func TestRegisterAfterScrapePanics(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	h.Gauge("g", func(now sim.Time) float64 { return 0 })
	runScrapes(h, func(p *sim.Proc) { p.Sleep(2e-3) })
	defer func() {
		if recover() == nil {
			t.Fatal("late registration did not panic")
		}
	}()
	h.Gauge("late", func(now sim.Time) float64 { return 0 })
}

// feed drives the SLO stream: each virtual-time tick completes good
// in-SLO requests and bad over-SLO requests.
func feed(h *Hub, p *sim.Proc, ticks, good, bad int) {
	id := 0
	for i := 0; i < ticks; i++ {
		p.Sleep(1e-3)
		now := p.Now()
		for j := 0; j < good; j++ {
			h.ObserveRequest(RequestSample{
				ID: id, Arrival: now - 1e-3, Dispatch: now - 0.8e-3,
				Sampled: now - 0.6e-3, Loaded: now - 0.3e-3, Done: now,
			})
			id++
		}
		for j := 0; j < bad; j++ {
			h.ObserveRequest(RequestSample{
				ID: id, Arrival: now - 50e-3, Dispatch: now - 40e-3,
				Sampled: now - 30e-3, Loaded: now - 10e-3, Done: now,
			})
			id++
		}
	}
}

func TestBurnRateFiresOnBadStream(t *testing.T) {
	h := New(Config{Interval: 1e-3, SLO: 20e-3, Target: 0.99})
	var fired bool
	end := runScrapes(h, func(p *sim.Proc) {
		feed(h, p, 20, 9, 1) // 10% bad = burn 10x: above page 14.4? no — 10 < 14.4
		feed(h, p, 50, 1, 4) // 80% bad = burn 80x: pages
		if h.PageFiring() {
			fired = true
		}
		feed(h, p, 100, 10, 0) // recovery: page resets once windows drain
	})
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("PageFiring never true during the mostly-bad incident")
	}
	pages := 0
	for _, a := range doc.Alerts {
		if a.Page {
			pages++
			if a.Peak <= 14.4 {
				t.Fatalf("page alert peak burn %g not above threshold", a.Peak)
			}
			if a.End <= a.Start {
				t.Fatalf("alert interval [%g, %g] empty", a.Start, a.End)
			}
		}
	}
	if pages == 0 {
		t.Fatalf("no page alert in %+v", doc.Alerts)
	}
	if h.Firing() {
		t.Fatal("still firing after 100 clean ticks")
	}
}

func TestBurnRateSilentOnHealthyStream(t *testing.T) {
	h := New(Config{Interval: 1e-3, SLO: 20e-3, Target: 0.99})
	end := runScrapes(h, func(p *sim.Proc) {
		feed(h, p, 200, 10, 0)
	})
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(doc.Alerts) != 0 {
		t.Fatalf("healthy stream fired %d alert(s): %+v", len(doc.Alerts), doc.Alerts)
	}
	if doc.Requests.BadFraction != 0 {
		t.Fatalf("bad fraction %g on all-good stream", doc.Requests.BadFraction)
	}
}

func TestBurnRateEmptyWindowCannotFire(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	// Scrapes happen but no requests resolve at all: rules must stay
	// silent (burnOver reports ok=false on an empty window).
	end := runScrapes(h, func(p *sim.Proc) { p.Sleep(50e-3) })
	doc := h.Finish(end)
	if len(doc.Alerts) != 0 {
		t.Fatalf("alerts fired with zero traffic: %+v", doc.Alerts)
	}
}

func TestShedsSpendBudget(t *testing.T) {
	h := New(Config{Interval: 1e-3, SLO: 20e-3, Target: 0.99})
	end := runScrapes(h, func(p *sim.Proc) {
		// All completions are in-SLO, but 80% of offered load sheds: the
		// page must fire on shed spend alone.
		for i := 0; i < 50; i++ {
			p.Sleep(1e-3)
			now := p.Now()
			h.ObserveRequest(RequestSample{
				ID: i, Arrival: now - 1e-3, Dispatch: now - 0.8e-3,
				Sampled: now - 0.6e-3, Loaded: now - 0.3e-3, Done: now,
			})
			for j := 0; j < 4; j++ {
				h.ObserveShed(now)
			}
		}
	})
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if doc.Requests.Shed != 200 || doc.Requests.Observed != 50 {
		t.Fatalf("shed %d observed %d, want 200/50", doc.Requests.Shed, doc.Requests.Observed)
	}
	if len(doc.Alerts) == 0 {
		t.Fatal("80% shed rate fired no alert")
	}
}

func TestCriticalStageAttribution(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	end := runScrapes(h, func(p *sim.Proc) {
		p.Sleep(1e-3)
		now := p.Now()
		// Gather dominates: 0.1/0.1/0.6/0.2 of a 1ms request.
		h.ObserveRequest(RequestSample{
			ID: 0, GPU: 1, Round: 7,
			Arrival: now - 1e-3, Dispatch: now - 0.9e-3,
			Sampled: now - 0.8e-3, Loaded: now - 0.2e-3, Done: now,
		})
	})
	doc := h.Finish(end)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, st := range doc.Requests.Stages {
		want := 0
		if st.Name == "gather" {
			want = 1
		}
		if st.Critical != want {
			t.Fatalf("stage %s critical %d, want %d", st.Name, st.Critical, want)
		}
	}
	if len(doc.Requests.Exemplars) != 1 {
		t.Fatalf("exemplars %+v", doc.Requests.Exemplars)
	}
	ex := doc.Requests.Exemplars[0]
	if ex.Critical != "gather" || ex.GPU != 1 || ex.Round != 7 {
		t.Fatalf("exemplar %+v", ex)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	build := func() []byte {
		h := New(Config{Interval: 1e-3, RingCap: 8})
		n := 0.0
		h.Gauge("q", func(now sim.Time) float64 { return n })
		h.Counter("c", func(now sim.Time) float64 { return 3 * n })
		end := runScrapes(h, func(p *sim.Proc) {
			feed(h, p, 30, 3, 2)
			n += 1
		})
		h.RecordEvent(end, "done", "workload finished")
		b, err := h.Finish(end).EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs encoded differently")
	}
	// Round trip: parse back and re-validate + re-encode byte-identically.
	doc, err := ParseDoc(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := doc.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("parse → encode round trip not byte-identical")
	}
}

func TestNilHubSafe(t *testing.T) {
	var h *Hub
	if h.Enabled() {
		t.Fatal("nil hub enabled")
	}
	h.Gauge("g", nil)
	h.Counter("c", nil)
	h.Rate("r", nil)
	h.Start(nil)
	h.ObserveRequest(RequestSample{})
	h.ObserveShed(0)
	h.RecordEvent(0, "e", "")
	if h.Firing() || h.PageFiring() {
		t.Fatal("nil hub firing")
	}
	if h.Finish(1) != nil {
		t.Fatal("nil hub finished to a doc")
	}
}

func TestFinishIdempotent(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	end := runScrapes(h, func(p *sim.Proc) { p.Sleep(5e-3) })
	d1 := h.Finish(end)
	d2 := h.Finish(end + 1)
	if d1 != d2 {
		t.Fatal("repeated Finish built a new document")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 5); got != "     " {
		t.Fatalf("empty sparkline %q", got)
	}
	flat := Sparkline([]float64{2, 2, 2}, 6)
	if flat != strings.Repeat("▁", 6) {
		t.Fatalf("constant sparkline %q", flat)
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if []rune(ramp)[0] != '▁' || []rune(ramp)[7] != '█' {
		t.Fatalf("ramp sparkline %q", ramp)
	}
	// Max-resample keeps a single spike visible when downsampling 100→10.
	vals := make([]float64, 100)
	vals[57] = 9
	spike := Sparkline(vals, 10)
	if !strings.ContainsRune(spike, '█') {
		t.Fatalf("downsampled spike lost: %q", spike)
	}
}

func TestRenderAndProm(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	h.Gauge("serve/queue_depth", func(now sim.Time) float64 { return 4 })
	h.Counter("wire/sample_bytes", func(now sim.Time) float64 { return 1e6 })
	end := runScrapes(h, func(p *sim.Proc) {
		feed(h, p, 60, 1, 4) // fires the page rule
	})
	doc := h.Finish(end)
	var dash bytes.Buffer
	if err := doc.Render(&dash); err != nil {
		t.Fatal(err)
	}
	out := dash.String()
	for _, want := range []string{"serve/queue_depth", "wire/sample_bytes", "PAGE", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	var prom bytes.Buffer
	if err := doc.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	pout := prom.String()
	for _, want := range []string{
		"# TYPE dsp_serve_queue_depth gauge",
		"dsp_wire_sample_bytes_total",
		"dsp_requests_total",
		"dsp_alerts_fired_total{rule=\"page\"}",
	} {
		if !strings.Contains(pout, want) {
			t.Fatalf("prom export missing %q:\n%s", want, pout)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := New(Config{Interval: 1e-3})
	end := runScrapes(h, func(p *sim.Proc) { feed(h, p, 10, 2, 1) })
	good := h.Finish(end)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(d *Doc){
		"accounting": func(d *Doc) { d.Requests.Good++ },
		"schema":     func(d *Doc) { d.Schema = "dsp-telemetry/0" },
		"critical":   func(d *Doc) { d.Requests.Stages[0].Critical += 3 },
		"rule-fired": func(d *Doc) { d.Rules[0].Fired++ },
		"series":     func(d *Doc) { d.Series = append(d.Series, SeriesDoc{Name: "x", Kind: "sum"}) },
	} {
		b, err := good.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		d, err := ParseDoc(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		mutate(d)
		if d.Validate() == nil {
			t.Fatalf("%s corruption passed validation", name)
		}
	}
}

func TestSection(t *testing.T) {
	h := New(Config{Interval: 1e-3, RingCap: 4})
	h.Gauge("g", func(now sim.Time) float64 { return 1 })
	end := runScrapes(h, func(p *sim.Proc) { feed(h, p, 10, 2, 0) })
	sec := h.Finish(end).Section()
	if sec == nil || sec.Series != 1 || sec.Requests != 20 || len(sec.Rules) != 2 {
		t.Fatalf("section %+v", sec)
	}
	if sec.Samples != 4 || sec.Dropped != sec.Scrapes-4 {
		t.Fatalf("section samples %d dropped %d scrapes %d", sec.Samples, sec.Dropped, sec.Scrapes)
	}
}
