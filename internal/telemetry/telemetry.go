// Package telemetry is the live observability layer for the simulated
// stack: a metrics registry whose sources are scraped on the virtual
// clock into fixed-cadence ring-buffer series, per-request stage spans
// with critical-path attribution and p99 exemplar drill-downs, and a
// multi-window SLO burn-rate alert engine consumed by the fleet
// autoscaler.
//
// Everything runs inside the discrete-event simulation: the scraper is a
// sim daemon, every observation happens at a virtual-time instant, and
// the exported document is byte-identical for a given seed at any
// -parallel setting (offloaded data work never touches hub state).
//
// A nil *Hub is a valid no-op receiver on every method, so call sites
// instrument unconditionally and pay nothing when telemetry is off.
package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Kind classifies how a series source is sampled.
type Kind int

const (
	// Gauge samples the source value as-is at each scrape tick.
	Gauge Kind = iota
	// Counter samples a cumulative monotone value as-is; rendering and
	// Prometheus export treat it as a running total.
	Counter
	// Rate samples the per-tick delta of a cumulative source divided by
	// the scrape interval. A cumulative busy-time source becomes a busy
	// fraction in [0,1]; a cumulative byte counter becomes bytes/s.
	Rate
)

// String returns the document encoding of the kind.
func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Counter:
		return "counter"
	case Rate:
		return "rate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config tunes the hub. Zero values take the defaults documented on each
// field.
type Config struct {
	// Interval is the scrape cadence on the virtual clock.
	// Default 2ms of virtual time.
	Interval sim.Time
	// RingCap bounds each series to its most recent RingCap samples;
	// older samples are dropped and counted. Default 2048.
	RingCap int
	// SLO is the per-request latency objective fed to the burn-rate
	// engine: completions over it (and shed requests) spend error
	// budget. Default 20ms of virtual time.
	SLO sim.Time
	// Target is the availability objective; the error budget is
	// 1 - Target. Default 0.99 (1% budget).
	Target float64
	// Rules are the burn-rate alert rules. Default DefaultRules().
	Rules []Rule
	// MaxExemplars caps how many latency-bucket exemplars the document
	// keeps (the highest buckets win — the p99 drill-down). Default 8.
	MaxExemplars int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2e-3
	}
	if c.RingCap <= 0 {
		c.RingCap = 2048
	}
	if c.SLO <= 0 {
		c.SLO = 20e-3
	}
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = 0.99
	}
	if c.Rules == nil {
		c.Rules = DefaultRules()
	}
	if c.MaxExemplars <= 0 {
		c.MaxExemplars = 8
	}
	return c
}

// Series is one scraped time series: a fixed-cadence ring buffer of
// samples. Sample with global index i (0-based) was taken at virtual
// time (i+1)*Interval; the ring retains the most recent RingCap samples
// and counts the rest as dropped.
type Series struct {
	name    string
	kind    Kind
	fn      func(now sim.Time) float64
	prev    float64 // last cumulative value seen (Rate only)
	samples []float64
	head    int // next overwrite position once the ring is full
	total   int // samples ever taken
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the sampling kind.
func (s *Series) Kind() Kind { return s.kind }

// Total returns how many samples were ever taken.
func (s *Series) Total() int { return s.total }

// Dropped returns how many old samples the ring has discarded. It equals
// the global index of the first retained sample.
func (s *Series) Dropped() int { return s.total - len(s.samples) }

// Values returns the retained samples in chronological order.
func (s *Series) Values() []float64 {
	out := make([]float64, 0, len(s.samples))
	out = append(out, s.samples[s.head:]...)
	out = append(out, s.samples[:s.head]...)
	return out
}

func (s *Series) push(v float64, capN int) {
	if len(s.samples) < capN {
		s.samples = append(s.samples, v)
	} else {
		s.samples[s.head] = v
		s.head = (s.head + 1) % capN
	}
	s.total++
}

// Stage indexes the per-request pipeline stages tracked by the hub.
type Stage int

const (
	// StageQueue is admission to round dispatch (queueing + batching
	// wait).
	StageQueue Stage = iota
	// StageSample is round dispatch to sampling done (CSP sample rounds
	// + executor handoff backpressure).
	StageSample
	// StageGather is feature gather: executor pickup through feature
	// load done.
	StageGather
	// StageForward is the forward pass to completion.
	StageForward

	numStages
)

// StageNames are the document encodings of the stages, indexed by Stage.
var StageNames = [numStages]string{"queue", "sample", "gather", "forward"}

// RequestSample carries one completed request's span timestamps through
// the pipeline. The hub derives stage durations, SLO goodness, the
// critical (dominant) stage and latency-bucket exemplars from it.
type RequestSample struct {
	ID    int
	GPU   int
	Round int
	// Arrival .. Done are the span boundaries, in causal order:
	// Arrival (admission), Dispatch (round formed), Sampled (sampling
	// done, handed to executor), Loaded (features gathered), Done
	// (forward complete).
	Arrival  sim.Time
	Dispatch sim.Time
	Sampled  sim.Time
	Loaded   sim.Time
	Done     sim.Time
}

// stages returns the four stage durations, clamped non-negative.
func (rs RequestSample) stages() [numStages]sim.Time {
	clamp := func(d sim.Time) sim.Time {
		if d < 0 {
			return 0
		}
		return d
	}
	return [numStages]sim.Time{
		clamp(rs.Dispatch - rs.Arrival),
		clamp(rs.Sampled - rs.Dispatch),
		clamp(rs.Loaded - rs.Sampled),
		clamp(rs.Done - rs.Loaded),
	}
}

// Exemplar is the worst (highest-latency) request observed in one
// latency histogram bucket — the drill-down target linked from the
// latency distribution.
type Exemplar struct {
	Bucket  int
	ID      int
	GPU     int
	Round   int
	Latency sim.Time
	Done    sim.Time
	// Critical is the dominant stage name for this request.
	Critical string
	// Stages are the four stage durations, indexed like StageNames.
	Stages [numStages]sim.Time
}

// Event is a point annotation on the timeline (degraded-mode entry,
// fleet kill, recovery) surfaced in the rendered dashboard.
type Event struct {
	At     sim.Time
	Name   string
	Detail string
}

// Hub is the live telemetry registry. Register sources before the first
// scrape, Start it on the engine that runs the workload, feed it
// requests and sheds as they happen, then Finish it once the run ends to
// obtain the exported document.
//
// All methods are nil-safe no-ops so instrumentation can stay
// unconditional.
type Hub struct {
	cfg Config

	eng     *sim.Engine
	started bool

	series []*Series
	names  map[string]bool

	// SLO stream (cumulative): good = completions within SLO,
	// bad = completions over SLO + shed requests.
	good, bad int
	shed      int
	observed  int

	latency   *metrics.Histogram
	stageHist [numStages]*metrics.Histogram
	critical  [numStages]int
	exemplars map[int]Exemplar

	ticks []tick
	rules []ruleState

	alerts []Alert
	events []Event

	finished bool
	doc      *Doc
}

// New builds a hub with cfg's knobs (zero values take defaults).
func New(cfg Config) *Hub {
	cfg = cfg.withDefaults()
	h := &Hub{
		cfg:       cfg,
		names:     make(map[string]bool),
		latency:   metrics.New(),
		exemplars: make(map[int]Exemplar),
	}
	for i := range h.stageHist {
		h.stageHist[i] = metrics.New()
	}
	h.rules = make([]ruleState, len(cfg.Rules))
	for i, r := range cfg.Rules {
		h.rules[i] = ruleState{Rule: r}
	}
	return h
}

// Enabled reports whether the hub is live (non-nil).
func (h *Hub) Enabled() bool { return h != nil }

// Config returns the hub's resolved configuration.
func (h *Hub) Config() Config {
	if h == nil {
		return Config{}.withDefaults()
	}
	return h.cfg
}

func (h *Hub) register(name string, kind Kind, fn func(now sim.Time) float64) {
	if h == nil {
		return
	}
	if h.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate series %q", name))
	}
	if len(h.ticks) > 0 {
		panic(fmt.Sprintf("telemetry: series %q registered after the first scrape", name))
	}
	h.names[name] = true
	h.series = append(h.series, &Series{name: name, kind: kind, fn: fn})
}

// Gauge registers an instantaneous source sampled as-is each tick.
func (h *Hub) Gauge(name string, fn func(now sim.Time) float64) {
	h.register(name, Gauge, fn)
}

// Counter registers a cumulative monotone source sampled as-is.
func (h *Hub) Counter(name string, fn func(now sim.Time) float64) {
	h.register(name, Counter, fn)
}

// Rate registers a cumulative source sampled as per-interval rate: each
// tick stores (value - previous value) / Interval.
func (h *Hub) Rate(name string, fn func(now sim.Time) float64) {
	h.register(name, Rate, fn)
}

// Start launches the scraper daemon on eng. It is idempotent; repeated
// calls (one per fleet sharing a hub) are no-ops after the first. The
// daemon survives clean Run returns, so a hub spans multi-epoch training
// loops, but it does not survive Engine.Interrupt teardown — attach a
// fresh hub per engine.
func (h *Hub) Start(eng *sim.Engine) {
	if h == nil || h.started {
		return
	}
	h.started = true
	h.eng = eng
	eng.GoDaemon("telemetry/scraper", func(p *sim.Proc) {
		for {
			p.Sleep(h.cfg.Interval)
			h.scrape(p.Now())
		}
	})
}

// scrape samples every registered source and advances the alert engine.
// It runs in engine context at a virtual-time instant, so no locking is
// needed and the sample order (registration order) is deterministic.
func (h *Hub) scrape(now sim.Time) {
	for _, s := range h.series {
		v := s.fn(now)
		if s.kind == Rate {
			d := v - s.prev
			s.prev = v
			v = d / float64(h.cfg.Interval)
		}
		s.push(v, h.cfg.RingCap)
	}
	h.ticks = append(h.ticks, tick{at: now, good: h.good, bad: h.bad})
	h.evalRules(now)
}

// ObserveRequest feeds one completed request: latency and stage
// histograms, SLO good/bad stream, critical-stage attribution and
// exemplar upkeep.
func (h *Hub) ObserveRequest(rs RequestSample) {
	if h == nil {
		return
	}
	lat := rs.Done - rs.Arrival
	if lat < 0 {
		lat = 0
	}
	h.observed++
	h.latency.Observe(float64(lat))
	if lat <= h.cfg.SLO {
		h.good++
	} else {
		h.bad++
	}
	st := rs.stages()
	crit := Stage(0)
	for i := range st {
		h.stageHist[i].Observe(float64(st[i]))
		if st[i] > st[crit] {
			crit = Stage(i)
		}
	}
	h.critical[crit]++
	b := metrics.BucketOf(float64(lat))
	if ex, ok := h.exemplars[b]; !ok || lat > ex.Latency {
		h.exemplars[b] = Exemplar{
			Bucket:   b,
			ID:       rs.ID,
			GPU:      rs.GPU,
			Round:    rs.Round,
			Latency:  lat,
			Done:     rs.Done,
			Critical: StageNames[crit],
			Stages:   st,
		}
	}
}

// ObserveShed feeds one shed (rejected or dropped) request; sheds spend
// error budget immediately.
func (h *Hub) ObserveShed(now sim.Time) {
	if h == nil {
		return
	}
	_ = now
	h.shed++
	h.bad++
}

// RecordEvent annotates the timeline (degraded-mode entries, fleet
// kills). Rendered by dspmon under the series dashboard.
func (h *Hub) RecordEvent(at sim.Time, name, detail string) {
	if h == nil {
		return
	}
	h.events = append(h.events, Event{At: at, Name: name, Detail: detail})
}

// topExemplars returns up to max exemplars, highest latency bucket
// first — the p99 drill-down list.
func (h *Hub) topExemplars(max int) []Exemplar {
	buckets := make([]int, 0, len(h.exemplars))
	for b := range h.exemplars {
		buckets = append(buckets, b)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(buckets)))
	if len(buckets) > max {
		buckets = buckets[:max]
	}
	out := make([]Exemplar, len(buckets))
	for i, b := range buckets {
		out[i] = h.exemplars[b]
	}
	return out
}
