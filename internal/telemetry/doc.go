package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/sim"
)

// DocSchema versions the exported telemetry document.
const DocSchema = "dsp-telemetry/1"

// Doc is the finished telemetry export: every series, the request span
// summary with exemplars, the rule table and the alert timeline.
// Encoding is canonical (stable key order via struct fields, no HTML
// escaping, two-space indent), so same-seed runs produce byte-identical
// files at any -parallel setting.
type Doc struct {
	Schema   string      `json:"schema"`
	Interval float64     `json:"interval"`
	Horizon  float64     `json:"horizon"`
	SLO      float64     `json:"slo"`
	Target   float64     `json:"target"`
	Scrapes  int         `json:"scrapes"`
	Series   []SeriesDoc `json:"series"`
	Requests RequestsDoc `json:"requests"`
	Rules    []RuleDoc   `json:"rules"`
	Alerts   []AlertDoc  `json:"alerts"`
	Events   []EventDoc  `json:"events,omitempty"`
}

// SeriesDoc is one exported ring-buffer series. Values[i] was sampled at
// virtual time (First+i+1)*Interval; First > 0 means the ring dropped
// the oldest First samples.
type SeriesDoc struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	First   int       `json:"first"`
	Dropped int       `json:"dropped,omitempty"`
	Values  []float64 `json:"values"`
}

// SummaryDoc condenses a latency distribution.
type SummaryDoc struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func summarize(h *metrics.Histogram) SummaryDoc {
	if h.Count() == 0 {
		return SummaryDoc{}
	}
	return SummaryDoc{
		Count: int(h.Count()),
		Mean:  h.Mean(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
		Max:   h.Max(),
	}
}

// StageDoc is one pipeline stage's duration distribution plus how many
// requests it dominated (was the critical-path stage for).
type StageDoc struct {
	Name     string     `json:"name"`
	Critical int        `json:"critical"`
	Duration SummaryDoc `json:"duration"`
}

// RequestsDoc summarizes the per-request span stream.
type RequestsDoc struct {
	Observed    int           `json:"observed"`
	Good        int           `json:"good"`
	Bad         int           `json:"bad"`
	Shed        int           `json:"shed,omitempty"`
	BadFraction float64       `json:"bad_fraction"`
	Latency     SummaryDoc    `json:"latency"`
	Stages      []StageDoc    `json:"stages"`
	Exemplars   []ExemplarDoc `json:"exemplars,omitempty"`
}

// ExemplarDoc is one latency-bucket exemplar: the worst request in its
// histogram bucket, with its full stage breakdown.
type ExemplarDoc struct {
	Bucket   int     `json:"bucket"`
	ID       int     `json:"id"`
	GPU      int     `json:"gpu"`
	Round    int     `json:"round"`
	Latency  float64 `json:"latency"`
	Done     float64 `json:"done"`
	Critical string  `json:"critical"`
	Queue    float64 `json:"queue"`
	Sample   float64 `json:"sample"`
	Gather   float64 `json:"gather"`
	Forward  float64 `json:"forward"`
}

// RuleDoc is one burn-rate rule plus how many alerts it fired.
type RuleDoc struct {
	Name  string  `json:"name"`
	Short float64 `json:"short"`
	Long  float64 `json:"long"`
	Burn  float64 `json:"burn"`
	Page  bool    `json:"page,omitempty"`
	Fired int     `json:"fired"`
}

// AlertDoc is one closed firing interval.
type AlertDoc struct {
	Rule  string  `json:"rule"`
	Page  bool    `json:"page,omitempty"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Peak  float64 `json:"peak"`
}

// EventDoc is one timeline annotation.
type EventDoc struct {
	At     float64 `json:"at"`
	Name   string  `json:"name"`
	Detail string  `json:"detail,omitempty"`
}

// Finish closes the hub at virtual time end and builds the export
// document: open alerts are closed at end, series rings are unrolled,
// and the request stream is summarized. Finish is idempotent — repeated
// calls return the same document.
func (h *Hub) Finish(end sim.Time) *Doc {
	if h == nil {
		return nil
	}
	if h.finished {
		return h.doc
	}
	h.finished = true
	for ri := range h.rules {
		if h.rules[ri].firing {
			h.closeAlert(&h.rules[ri], end)
		}
	}

	d := &Doc{
		Schema:   DocSchema,
		Interval: float64(h.cfg.Interval),
		Horizon:  float64(end),
		SLO:      float64(h.cfg.SLO),
		Target:   h.cfg.Target,
		Scrapes:  len(h.ticks),
		Series:   make([]SeriesDoc, 0, len(h.series)),
		Rules:    make([]RuleDoc, 0, len(h.rules)),
		Alerts:   make([]AlertDoc, 0, len(h.alerts)),
	}
	for _, s := range h.series {
		d.Series = append(d.Series, SeriesDoc{
			Name:    s.name,
			Kind:    s.kind.String(),
			First:   s.Dropped(),
			Dropped: s.Dropped(),
			Values:  s.Values(),
		})
	}

	req := RequestsDoc{
		Observed: h.observed,
		Good:     h.good,
		Bad:      h.bad,
		Shed:     h.shed,
		Latency:  summarize(h.latency),
		Stages:   make([]StageDoc, numStages),
	}
	if h.good+h.bad > 0 {
		req.BadFraction = float64(h.bad) / float64(h.good+h.bad)
	}
	for i := 0; i < int(numStages); i++ {
		req.Stages[i] = StageDoc{
			Name:     StageNames[i],
			Critical: h.critical[i],
			Duration: summarize(h.stageHist[i]),
		}
	}
	for _, ex := range h.topExemplars(h.cfg.MaxExemplars) {
		req.Exemplars = append(req.Exemplars, ExemplarDoc{
			Bucket:   ex.Bucket,
			ID:       ex.ID,
			GPU:      ex.GPU,
			Round:    ex.Round,
			Latency:  float64(ex.Latency),
			Done:     float64(ex.Done),
			Critical: ex.Critical,
			Queue:    float64(ex.Stages[StageQueue]),
			Sample:   float64(ex.Stages[StageSample]),
			Gather:   float64(ex.Stages[StageGather]),
			Forward:  float64(ex.Stages[StageForward]),
		})
	}
	d.Requests = req

	for i := range h.rules {
		rs := &h.rules[i]
		d.Rules = append(d.Rules, RuleDoc{
			Name:  rs.Rule.Name,
			Short: float64(rs.Rule.Short),
			Long:  float64(rs.Rule.Long),
			Burn:  rs.Rule.Burn,
			Page:  rs.Rule.Page,
			Fired: rs.fired,
		})
	}
	for _, a := range h.alerts {
		d.Alerts = append(d.Alerts, AlertDoc{
			Rule:  a.Rule,
			Page:  a.Page,
			Start: float64(a.Start),
			End:   float64(a.End),
			Peak:  a.Peak,
		})
	}
	for _, e := range h.events {
		d.Events = append(d.Events, EventDoc{At: float64(e.At), Name: e.Name, Detail: e.Detail})
	}
	h.doc = d
	return d
}

// WriteJSON writes the canonical encoding to w.
func (d *Doc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// EncodeJSON returns the canonical encoding as bytes.
func (d *Doc) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes the canonical encoding to path.
func (d *Doc) WriteFile(path string) error {
	b, err := d.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ParseDoc decodes a dsp-telemetry/1 document from r.
func ParseDoc(r io.Reader) (*Doc, error) {
	var d Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("telemetry: parse: %w", err)
	}
	if d.Schema != DocSchema {
		return nil, fmt.Errorf("telemetry: unsupported schema %q (want %q)", d.Schema, DocSchema)
	}
	return &d, nil
}

// ReadDocFile loads a dsp-telemetry/1 document from path.
func ReadDocFile(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseDoc(f)
}

// Validate checks the document's internal arithmetic.
func (d *Doc) Validate() error {
	if d.Schema != DocSchema {
		return fmt.Errorf("telemetry: schema %q, want %q", d.Schema, DocSchema)
	}
	if d.Interval <= 0 {
		return fmt.Errorf("telemetry: interval %v must be positive", d.Interval)
	}
	if d.Horizon < 0 {
		return fmt.Errorf("telemetry: negative horizon %v", d.Horizon)
	}
	if d.Scrapes < 0 {
		return fmt.Errorf("telemetry: negative scrape count %d", d.Scrapes)
	}
	for _, s := range d.Series {
		switch s.Kind {
		case "gauge", "counter", "rate":
		default:
			return fmt.Errorf("telemetry: series %q has unknown kind %q", s.Name, s.Kind)
		}
		if s.First < 0 || s.Dropped < 0 {
			return fmt.Errorf("telemetry: series %q has negative first/dropped", s.Name)
		}
		if s.First != s.Dropped {
			return fmt.Errorf("telemetry: series %q first %d != dropped %d", s.Name, s.First, s.Dropped)
		}
		if got := s.First + len(s.Values); got > d.Scrapes {
			return fmt.Errorf("telemetry: series %q spans %d samples, document has %d scrapes", s.Name, got, d.Scrapes)
		}
	}
	r := d.Requests
	if r.Observed < 0 || r.Good < 0 || r.Bad < 0 || r.Shed < 0 {
		return fmt.Errorf("telemetry: negative request counts")
	}
	if r.Good+r.Bad != r.Observed+r.Shed {
		return fmt.Errorf("telemetry: good %d + bad %d != observed %d + shed %d",
			r.Good, r.Bad, r.Observed, r.Shed)
	}
	if r.BadFraction < 0 || r.BadFraction > 1 {
		return fmt.Errorf("telemetry: bad_fraction %v outside [0,1]", r.BadFraction)
	}
	crit := 0
	for _, st := range r.Stages {
		if st.Critical < 0 {
			return fmt.Errorf("telemetry: stage %q has negative critical count", st.Name)
		}
		crit += st.Critical
	}
	if len(r.Stages) > 0 && crit != r.Observed {
		return fmt.Errorf("telemetry: critical-stage counts sum to %d, observed %d", crit, r.Observed)
	}
	rules := make(map[string]bool, len(d.Rules))
	for _, ru := range d.Rules {
		if ru.Short <= 0 || ru.Long <= 0 || ru.Short >= ru.Long {
			return fmt.Errorf("telemetry: rule %q windows %v/%v must satisfy 0 < short < long", ru.Name, ru.Short, ru.Long)
		}
		if ru.Burn <= 0 {
			return fmt.Errorf("telemetry: rule %q burn threshold %v must be positive", ru.Name, ru.Burn)
		}
		if ru.Fired < 0 {
			return fmt.Errorf("telemetry: rule %q fired %d times", ru.Name, ru.Fired)
		}
		rules[ru.Name] = true
	}
	fired := make(map[string]int)
	for _, a := range d.Alerts {
		if !rules[a.Rule] {
			return fmt.Errorf("telemetry: alert references unknown rule %q", a.Rule)
		}
		if a.Start > a.End {
			return fmt.Errorf("telemetry: alert %q starts at %v after its end %v", a.Rule, a.Start, a.End)
		}
		if a.End > d.Horizon {
			return fmt.Errorf("telemetry: alert %q ends at %v past horizon %v", a.Rule, a.End, d.Horizon)
		}
		fired[a.Rule]++
	}
	for _, ru := range d.Rules {
		if fired[ru.Name] != ru.Fired {
			return fmt.Errorf("telemetry: rule %q lists %d fired, %d alerts present", ru.Name, ru.Fired, fired[ru.Name])
		}
	}
	return nil
}

// Section condenses the document into the run-report telemetry section.
func (d *Doc) Section() *prof.TelemetrySection {
	if d == nil {
		return nil
	}
	sec := &prof.TelemetrySection{
		Interval:    d.Interval,
		Series:      len(d.Series),
		Scrapes:     d.Scrapes,
		Requests:    d.Requests.Observed,
		Shed:        d.Requests.Shed,
		BadFraction: d.Requests.BadFraction,
		Exemplars:   len(d.Requests.Exemplars),
	}
	for _, s := range d.Series {
		sec.Samples += len(s.Values)
		sec.Dropped += s.Dropped
	}
	for _, ru := range d.Rules {
		sec.Rules = append(sec.Rules, prof.TelemetryRule{
			Name:  ru.Name,
			Short: ru.Short,
			Long:  ru.Long,
			Burn:  ru.Burn,
			Fired: ru.Fired,
		})
	}
	for _, a := range d.Alerts {
		sec.Alerts = append(sec.Alerts, prof.TelemetryAlert{
			Rule:  a.Rule,
			Start: a.Start,
			End:   a.End,
			Peak:  a.Peak,
		})
	}
	return sec
}
