package telemetry

import "repro/internal/sim"

// Rule is one multi-window burn-rate alert rule in the Google SRE style:
// it fires when the error-budget burn rate exceeds Burn over BOTH the
// short and the long lookback window. The short window makes the alert
// reset quickly once the incident ends; the long window keeps one noisy
// tick from paging.
//
// Burn rate is (window error fraction) / (error budget), where the
// error fraction counts over-SLO completions and shed requests against
// all requests resolved in the window, and the budget is 1 - Target.
// A burn of 1 means the budget is being spent exactly at the sustainable
// rate; Burn thresholds well above 1 catch fast incidents.
type Rule struct {
	Name string
	// Short and Long are the two lookback windows (virtual time).
	Short sim.Time
	Long  sim.Time
	// Burn is the threshold both windows must exceed.
	Burn float64
	// Page marks the rule as paging severity: the fleet autoscaler
	// treats a firing page as an immediate scale-up signal and
	// suppresses drains while it fires.
	Page bool
}

// DefaultRules are the classic fast-page + slow-ticket pair, scaled from
// wall-clock SRE practice (5m/1h at 14.4x, 30m/6h at 6x) onto the
// sub-second virtual timelines the simulator runs: the window ratio and
// burn thresholds are preserved, the absolute durations shrink by the
// same factor the workloads do.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "page", Short: 5e-3, Long: 60e-3, Burn: 14.4, Page: true},
		{Name: "ticket", Short: 30e-3, Long: 360e-3, Burn: 6, Page: false},
	}
}

// Alert is one closed firing interval of a rule.
type Alert struct {
	Rule  string
	Page  bool
	Start sim.Time
	End   sim.Time
	// Peak is the highest burn rate (min of the two windows) seen while
	// firing.
	Peak float64
}

// tick snapshots the cumulative SLO stream at one scrape instant.
type tick struct {
	at        sim.Time
	good, bad int
}

// ruleState is the live evaluation state of one rule.
type ruleState struct {
	Rule   Rule
	firing bool
	start  sim.Time
	peak   float64
	fired  int
}

func (h *Hub) budget() float64 { return 1 - h.cfg.Target }

// burnOver computes the burn rate over the lookback window w ending at
// tick index i. The window is clamped to available history (a 60ms
// window 10ms into the run looks at the whole 10ms). The second return
// is false when the window resolved no requests at all — a rule cannot
// fire on an empty window.
func (h *Hub) burnOver(i int, w sim.Time) (float64, bool) {
	steps := int(float64(w)/float64(h.cfg.Interval) + 0.5)
	if steps < 1 {
		steps = 1
	}
	var g0, b0 int
	if j := i - steps; j >= 0 {
		g0, b0 = h.ticks[j].good, h.ticks[j].bad
	}
	g := h.ticks[i].good - g0
	b := h.ticks[i].bad - b0
	if g+b == 0 {
		return 0, false
	}
	return float64(b) / float64(g+b) / h.budget(), true
}

// evalRules advances every rule's firing state at the scrape that just
// appended tick len(ticks)-1.
func (h *Hub) evalRules(now sim.Time) {
	i := len(h.ticks) - 1
	for ri := range h.rules {
		rs := &h.rules[ri]
		bs, okS := h.burnOver(i, rs.Rule.Short)
		bl, okL := h.burnOver(i, rs.Rule.Long)
		firing := okS && okL && bs > rs.Rule.Burn && bl > rs.Rule.Burn
		burn := bs
		if bl < burn {
			burn = bl
		}
		switch {
		case firing && !rs.firing:
			rs.firing, rs.start, rs.peak = true, now, burn
		case firing:
			if burn > rs.peak {
				rs.peak = burn
			}
		case rs.firing:
			h.closeAlert(rs, now)
		}
	}
}

func (h *Hub) closeAlert(rs *ruleState, end sim.Time) {
	rs.firing = false
	rs.fired++
	h.alerts = append(h.alerts, Alert{
		Rule:  rs.Rule.Name,
		Page:  rs.Rule.Page,
		Start: rs.start,
		End:   end,
		Peak:  rs.peak,
	})
}

// Firing reports whether any rule is firing as of the last scrape.
func (h *Hub) Firing() bool {
	if h == nil {
		return false
	}
	for i := range h.rules {
		if h.rules[i].firing {
			return true
		}
	}
	return false
}

// PageFiring reports whether any paging-severity rule is firing as of
// the last scrape. The fleet autoscaler consumes this: a firing page
// forces a scale-up and suppresses drains.
func (h *Hub) PageFiring() bool {
	if h == nil {
		return false
	}
	for i := range h.rules {
		if h.rules[i].firing && h.rules[i].Rule.Page {
			return true
		}
	}
	return false
}
