// Package featstore implements node-feature placement and lookup: the
// feature position lists of the paper's implementation section.
//
// DSP uses a *partitioned* cache: each GPU caches the hottest feature rows
// of its own graph patch (hot nodes selected by in-degree by default), so the
// GPUs jointly form one large NVLink-reachable aggregate cache; cold rows
// stay in CPU memory and are read via UVA. Quiver-style systems instead
// *replicate* one globally-hot set on every GPU, bounded by a single GPU's
// budget. Both layouts are provided so the caching ablations can compare
// them under identical budgets.
package featstore

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Policy selects the hot-node ranking criterion.
type Policy int

const (
	// ByDegree ranks nodes by in-degree (the paper's default).
	ByDegree Policy = iota
	// ByPageRank ranks by PageRank score.
	ByPageRank
	// ByReversePageRank ranks by PageRank on the reversed graph.
	ByReversePageRank
)

func (p Policy) String() string {
	switch p {
	case ByDegree:
		return "degree"
	case ByPageRank:
		return "pagerank"
	case ByReversePageRank:
		return "reverse-pagerank"
	default:
		return "unknown"
	}
}

// Layout distinguishes the cache organisations under comparison.
type Layout int

const (
	// Partitioned: each GPU caches different rows (DSP).
	Partitioned Layout = iota
	// Replicated: every GPU caches the same globally-hot rows (Quiver).
	Replicated
	// HostOnly: no GPU cache at all (DGL-UVA on graphs whose features do
	// not fit a single GPU, as in the paper's experiments).
	HostOnly
	// DimSliced: every GPU holds ALL rows restricted to a contiguous
	// [#Nodes, F/world] column slice (P3's hybrid-parallel layout). There
	// are no hot/cold rows and no host tier — every read is GPU-local, and
	// cross-GPU traffic moves first-layer activations instead of features.
	DimSliced
)

// Store is the feature placement for one machine. Node ids are layout ids
// (after renumbering); features are stored in the same order.
type Store struct {
	Layout   Layout
	Dim      int
	NumGPUs  int
	features []float32

	// cacheGPU[v] is the GPU holding v's cached row under the Partitioned
	// layout (-1 = not cached). Under Replicated, hot[v] says the row is on
	// every GPU. This is the "feature position list".
	cacheGPU []int8
	hot      []bool

	// CachedRows[g] counts rows cached on GPU g (memory accounting).
	CachedRows []int64
}

// RowBytes returns the wire size of one feature row.
func (s *Store) RowBytes() int { return s.Dim * 4 }

// Row returns node v's feature row (a view into backing storage).
func (s *Store) Row(v graph.NodeID) []float32 {
	return s.features[int(v)*s.Dim : (int(v)+1)*s.Dim]
}

// Gather copies the rows of ids into a contiguous buffer — the real data
// work the simulated gather kernels account for.
func (s *Store) Gather(ids []graph.NodeID) []float32 {
	out := make([]float32, len(ids)*s.Dim)
	for i, v := range ids {
		copy(out[i*s.Dim:(i+1)*s.Dim], s.Row(v))
	}
	return out
}

// CacheBytes returns the cache footprint on GPU g. Under DimSliced the
// footprint is the full-row-count slab at the GPU's slice width rather than
// a cached-row count at full width.
func (s *Store) CacheBytes(g int) int64 {
	if s.Layout == DimSliced {
		return int64(s.NumRows()) * int64(s.SliceDim(g)) * 4
	}
	return s.CachedRows[g] * int64(s.RowBytes())
}

// SliceRange returns GPU g's contiguous feature-column range [lo, hi) under
// the DimSliced layout: a ceil split, so the first Dim%NumGPUs GPUs hold one
// extra column.
func (s *Store) SliceRange(g int) (lo, hi int) {
	if s.Layout != DimSliced {
		panic("featstore: SliceRange is only defined for the DimSliced layout")
	}
	base, rem := s.Dim/s.NumGPUs, s.Dim%s.NumGPUs
	lo = g * base
	if g < rem {
		lo += g
	} else {
		lo += rem
	}
	hi = lo + base
	if g < rem {
		hi++
	}
	return lo, hi
}

// SliceDim returns the width of GPU g's column slice under DimSliced.
func (s *Store) SliceDim(g int) int {
	lo, hi := s.SliceRange(g)
	return hi - lo
}

// Placement classifies where node v's feature row is read from by GPU g.
type Placement int

const (
	// LocalGPU: cached on the requesting GPU.
	LocalGPU Placement = iota
	// RemoteGPU: cached on another GPU, fetched over NVLink.
	RemoteGPU
	// HostMemory: cold row, fetched from CPU memory via UVA.
	HostMemory
)

// Locate returns the placement of v's row relative to requesting GPU g, and
// for RemoteGPU the holder id.
func (s *Store) Locate(v graph.NodeID, g int) (Placement, int) {
	switch s.Layout {
	case Replicated:
		if s.hot[v] {
			return LocalGPU, g
		}
		return HostMemory, -1
	case HostOnly:
		return HostMemory, -1
	case DimSliced:
		// Every GPU holds a slice of every row; the row read is local and
		// the exchange happens at the activation level, not here.
		return LocalGPU, g
	default:
		holder := s.cacheGPU[v]
		switch {
		case holder < 0:
			return HostMemory, -1
		case int(holder) == g:
			return LocalGPU, g
		default:
			return RemoteGPU, int(holder)
		}
	}
}

// NumRows returns the number of feature rows in the store.
func (s *Store) NumRows() int { return len(s.features) / s.Dim }

// Holder returns the GPU caching v's row under the Partitioned layout
// (-1 = not cached). It panics on other layouts, which have no per-row
// holder.
func (s *Store) Holder(v graph.NodeID) int {
	if s.Layout != Partitioned {
		panic("featstore: Holder is only defined for the Partitioned layout")
	}
	return int(s.cacheGPU[v])
}

// Promote caches v's row on GPU g (Partitioned layout only). The caller is
// responsible for budget accounting: pair every promotion of a full cache
// with a Demote, as the adaptive rebalancer does.
func (s *Store) Promote(v graph.NodeID, g int) {
	if s.Layout != Partitioned {
		panic("featstore: Promote is only defined for the Partitioned layout")
	}
	if old := s.cacheGPU[v]; old >= 0 {
		if int(old) == g {
			return
		}
		s.CachedRows[old]--
	}
	s.cacheGPU[v] = int8(g)
	s.CachedRows[g]++
}

// Demote evicts v's cached row (Partitioned layout only; evicting an
// uncached row is a no-op). The master copy in host memory remains readable
// via UVA.
func (s *Store) Demote(v graph.NodeID) {
	if s.Layout != Partitioned {
		panic("featstore: Demote is only defined for the Partitioned layout")
	}
	if old := s.cacheGPU[v]; old >= 0 {
		s.CachedRows[old]--
		s.cacheGPU[v] = -1
	}
}

// Split partitions requested ids by placement for requesting GPU g:
// local rows, per-remote-GPU rows, and host rows.
func (s *Store) Split(ids []graph.NodeID, g int) (local []graph.NodeID, remote [][]graph.NodeID, host []graph.NodeID) {
	remote = make([][]graph.NodeID, s.NumGPUs)
	for _, v := range ids {
		switch p, holder := s.Locate(v, g); p {
		case LocalGPU:
			local = append(local, v)
		case RemoteGPU:
			remote[holder] = append(remote[holder], v)
		default:
			host = append(host, v)
		}
	}
	return local, remote, host
}

// CachedFraction returns the weight-fraction of expected feature reads that
// any GPU cache can serve (LocalGPU or RemoteGPU placements), given a
// per-node access weight (e.g. a serving workload's popularity
// distribution). A nil weights slice weighs all nodes equally. This is the
// expected GPU-cache hit rate of the placement under that access pattern.
func (s *Store) CachedFraction(weights []float64) float64 {
	n := len(s.features) / s.Dim
	var total, hit float64
	for v := 0; v < n; v++ {
		w := 1.0
		if weights != nil {
			w = weights[v]
		}
		total += w
		if p, _ := s.Locate(graph.NodeID(v), 0); p != HostMemory {
			hit += w
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// Scores computes the policy ranking scores for all nodes.
func Scores(g *graph.CSR, policy Policy) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	switch policy {
	case ByDegree:
		for v := 0; v < n; v++ {
			scores[v] = float64(g.Degree(graph.NodeID(v)))
		}
	case ByPageRank:
		copy(scores, g.PageRank(0.85, 20))
	case ByReversePageRank:
		copy(scores, g.Reverse().PageRank(0.85, 20))
	default:
		panic(fmt.Sprintf("featstore: unknown policy %d", policy))
	}
	return scores
}

// BuildPartitioned builds DSP's partitioned cache: GPU g caches the
// highest-scoring rows of its own id range [offsets[g], offsets[g+1]) up to
// budgetPerGPU bytes. The graph must already be in layout order.
func BuildPartitioned(g *graph.CSR, features []float32, dim int, offsets []int64, budgetPerGPU int64, policy Policy) *Store {
	numGPUs := len(offsets) - 1
	s := &Store{
		Layout: Partitioned, Dim: dim, NumGPUs: numGPUs,
		features:   features,
		cacheGPU:   make([]int8, g.NumNodes()),
		CachedRows: make([]int64, numGPUs),
	}
	for i := range s.cacheGPU {
		s.cacheGPU[i] = -1
	}
	scores := Scores(g, policy)
	rowBytes := int64(dim * 4)
	capRows := budgetPerGPU / rowBytes
	for gpu := 0; gpu < numGPUs; gpu++ {
		lo, hi := offsets[gpu], offsets[gpu+1]
		ids := make([]graph.NodeID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			ids = append(ids, graph.NodeID(v))
		}
		sort.SliceStable(ids, func(a, b int) bool {
			sa, sb := scores[ids[a]], scores[ids[b]]
			if sa != sb {
				return sa > sb
			}
			return ids[a] < ids[b]
		})
		take := int64(len(ids))
		if take > capRows {
			take = capRows
		}
		for _, v := range ids[:take] {
			s.cacheGPU[v] = int8(gpu)
		}
		s.CachedRows[gpu] = take
	}
	return s
}

// BuildReplicated builds the Quiver-style replicated cache: the globally
// highest-scoring rows that fit in ONE GPU's budget, present on every GPU.
func BuildReplicated(g *graph.CSR, features []float32, dim int, numGPUs int, budgetPerGPU int64, policy Policy) *Store {
	s := &Store{
		Layout: Replicated, Dim: dim, NumGPUs: numGPUs,
		features:   features,
		hot:        make([]bool, g.NumNodes()),
		CachedRows: make([]int64, numGPUs),
	}
	scores := Scores(g, policy)
	ids := make([]graph.NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		sa, sb := scores[ids[a]], scores[ids[b]]
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	capRows := budgetPerGPU / int64(dim*4)
	take := int64(len(ids))
	if take > capRows {
		take = capRows
	}
	for _, v := range ids[:take] {
		s.hot[v] = true
	}
	for gpu := range s.CachedRows {
		s.CachedRows[gpu] = take
	}
	return s
}

// BuildDimSliced builds P3's dimension-partitioned layout: every GPU holds
// the full row set restricted to its contiguous [#Nodes, F/world] column
// slice. CachedRows counts all rows on every GPU (each holds a slice of
// each), so the per-GPU byte footprint comes from CacheBytes, which prices
// the slice width.
func BuildDimSliced(features []float32, dim, numGPUs int) *Store {
	s := &Store{
		Layout: DimSliced, Dim: dim, NumGPUs: numGPUs,
		features:   features,
		CachedRows: make([]int64, numGPUs),
	}
	rows := int64(len(features) / dim)
	for g := range s.CachedRows {
		s.CachedRows[g] = rows
	}
	return s
}

// BuildHostOnly keeps every row in CPU memory (DGL-UVA without caching).
func BuildHostOnly(n int, features []float32, dim, numGPUs int) *Store {
	return &Store{
		Layout: HostOnly, Dim: dim, NumGPUs: numGPUs,
		features:   features,
		CachedRows: make([]int64, numGPUs),
	}
}

// AggregateCachedRows returns the number of DISTINCT rows cached across all
// GPUs — the partitioned layout's headline advantage over replication.
func (s *Store) AggregateCachedRows() int64 {
	switch s.Layout {
	case Partitioned:
		var t int64
		for _, c := range s.CachedRows {
			t += c
		}
		return t
	case Replicated:
		if s.NumGPUs == 0 {
			return 0
		}
		return s.CachedRows[0]
	case DimSliced:
		// Each row is jointly held by all GPUs (one slice each): every
		// distinct row is GPU-resident exactly once at full width.
		return int64(s.NumRows())
	default:
		return 0
	}
}
