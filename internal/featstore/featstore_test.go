package featstore

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

type fixture struct {
	d       *gen.Dataset
	g       *graph.CSR
	feats   []float32
	offsets []int64
	k       int
}

func build(t *testing.T, k int) *fixture {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "t", Nodes: 2000, AvgDegree: 10, FeatDim: 8, NumClasses: 4, Seed: 3,
	})
	res := partition.Metis(d.G, k, 1)
	ren := partition.BuildRenumbering(res)
	return &fixture{
		d:       d,
		g:       ren.ApplyToGraph(d.G),
		feats:   ren.ApplyToFeatures(d.Features, d.FeatDim),
		offsets: ren.Offsets,
		k:       k,
	}
}

func TestPartitionedRespectsBudgetAndOwnership(t *testing.T) {
	f := build(t, 4)
	budget := int64(200 * f.d.FeatDim * 4) // 200 rows per GPU
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree)
	for g := 0; g < 4; g++ {
		if s.CachedRows[g] != 200 {
			t.Errorf("GPU %d cached %d rows, want 200", g, s.CachedRows[g])
		}
		if s.CacheBytes(g) > budget {
			t.Errorf("GPU %d over budget", g)
		}
	}
	// Cached nodes live in their holder's id range.
	for v := 0; v < f.g.NumNodes(); v++ {
		h := s.cacheGPU[v]
		if h < 0 {
			continue
		}
		if int64(v) < f.offsets[h] || int64(v) >= f.offsets[h+1] {
			t.Fatalf("node %d cached on GPU %d outside its range", v, h)
		}
	}
	if s.AggregateCachedRows() != 800 {
		t.Errorf("aggregate %d, want 800", s.AggregateCachedRows())
	}
}

func TestPartitionedCachesHottestFirst(t *testing.T) {
	f := build(t, 2)
	budget := int64(100 * f.d.FeatDim * 4)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree)
	// Every cached node on a GPU has degree >= every uncached node there.
	for g := 0; g < 2; g++ {
		minCached, maxUncached := 1<<30, -1
		for v := f.offsets[g]; v < f.offsets[g+1]; v++ {
			deg := f.g.Degree(graph.NodeID(v))
			if s.cacheGPU[v] == int8(g) {
				if deg < minCached {
					minCached = deg
				}
			} else if deg > maxUncached {
				maxUncached = deg
			}
		}
		if minCached < maxUncached {
			t.Errorf("GPU %d: cached min degree %d < uncached max %d", g, minCached, maxUncached)
		}
	}
}

func TestReplicatedVsPartitionedAggregate(t *testing.T) {
	// Same per-GPU budget: the partitioned cache holds k times more
	// distinct rows.
	f := build(t, 4)
	budget := int64(150 * f.d.FeatDim * 4)
	p := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree)
	r := BuildReplicated(f.g, f.feats, f.d.FeatDim, 4, budget, ByDegree)
	if p.AggregateCachedRows() != 4*r.AggregateCachedRows() {
		t.Errorf("partitioned %d distinct rows vs replicated %d",
			p.AggregateCachedRows(), r.AggregateCachedRows())
	}
}

func TestLocatePartitioned(t *testing.T) {
	f := build(t, 4)
	budget := int64(100 * f.d.FeatDim * 4)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree)
	seenLocal, seenRemote, seenHost := false, false, false
	for v := 0; v < f.g.NumNodes(); v++ {
		p, holder := s.Locate(graph.NodeID(v), 0)
		switch p {
		case LocalGPU:
			seenLocal = true
			if s.cacheGPU[v] != 0 {
				t.Fatal("local placement for row not cached on GPU 0")
			}
		case RemoteGPU:
			seenRemote = true
			if holder == 0 || holder >= 4 {
				t.Fatalf("bad holder %d", holder)
			}
		case HostMemory:
			seenHost = true
		}
	}
	if !seenLocal || !seenRemote || !seenHost {
		t.Fatalf("placements not all exercised: %v %v %v", seenLocal, seenRemote, seenHost)
	}
}

func TestLocateReplicatedNeverRemote(t *testing.T) {
	f := build(t, 4)
	s := BuildReplicated(f.g, f.feats, f.d.FeatDim, 4, int64(100*f.d.FeatDim*4), ByDegree)
	for v := 0; v < f.g.NumNodes(); v++ {
		for g := 0; g < 4; g++ {
			if p, _ := s.Locate(graph.NodeID(v), g); p == RemoteGPU {
				t.Fatal("replicated cache produced a remote placement")
			}
		}
	}
}

func TestHostOnlyAlwaysHost(t *testing.T) {
	f := build(t, 2)
	s := BuildHostOnly(f.g.NumNodes(), f.feats, f.d.FeatDim, 2)
	for v := 0; v < 100; v++ {
		if p, _ := s.Locate(graph.NodeID(v), 0); p != HostMemory {
			t.Fatal("host-only store cached something")
		}
	}
	if s.AggregateCachedRows() != 0 {
		t.Fatal("host-only store reports cached rows")
	}
}

func TestSplitPartitionsRequest(t *testing.T) {
	f := build(t, 4)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, int64(100*f.d.FeatDim*4), ByDegree)
	var ids []graph.NodeID
	for v := 0; v < f.g.NumNodes(); v += 3 {
		ids = append(ids, graph.NodeID(v))
	}
	local, remote, host := s.Split(ids, 1)
	total := len(local) + len(host)
	for g, r := range remote {
		if g == 1 && len(r) > 0 {
			t.Fatal("own GPU listed as remote")
		}
		total += len(r)
	}
	if total != len(ids) {
		t.Fatalf("split lost ids: %d of %d", total, len(ids))
	}
	for _, v := range local {
		if p, _ := s.Locate(v, 1); p != LocalGPU {
			t.Fatal("misclassified local")
		}
	}
	for _, v := range host {
		if p, _ := s.Locate(v, 1); p != HostMemory {
			t.Fatal("misclassified host")
		}
	}
}

func TestGatherCopiesRows(t *testing.T) {
	f := build(t, 2)
	s := BuildHostOnly(f.g.NumNodes(), f.feats, f.d.FeatDim, 2)
	ids := []graph.NodeID{5, 0, 17}
	out := s.Gather(ids)
	if len(out) != 3*f.d.FeatDim {
		t.Fatalf("gather size %d", len(out))
	}
	for i, v := range ids {
		row := s.Row(v)
		for j := 0; j < f.d.FeatDim; j++ {
			if out[i*f.d.FeatDim+j] != row[j] {
				t.Fatalf("gather mismatch id %d dim %d", v, j)
			}
		}
	}
}

func TestPolicies(t *testing.T) {
	f := build(t, 2)
	for _, pol := range []Policy{ByDegree, ByPageRank, ByReversePageRank} {
		scores := Scores(f.g, pol)
		if len(scores) != f.g.NumNodes() {
			t.Fatalf("%v: %d scores", pol, len(scores))
		}
		var sum float64
		for _, sc := range scores {
			if sc < 0 {
				t.Fatalf("%v: negative score", pol)
			}
			sum += sc
		}
		if sum == 0 {
			t.Fatalf("%v: all-zero scores", pol)
		}
		s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, int64(50*f.d.FeatDim*4), pol)
		if s.AggregateCachedRows() != 100 {
			t.Fatalf("%v: aggregate %d", pol, s.AggregateCachedRows())
		}
	}
}

func TestHotTrafficConcentration(t *testing.T) {
	// Power-law access: a degree-ranked cache of 20% of rows should cover
	// well over 20% of neighbour occurrences (the premise of hot caching).
	f := build(t, 1)
	budget := int64(f.g.NumNodes()/5) * int64(f.d.FeatDim*4)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree)
	var hits, total int64
	for v := 0; v < f.g.NumNodes(); v++ {
		for _, u := range f.g.Neighbors(graph.NodeID(v)) {
			total++
			if p, _ := s.Locate(u, 0); p == LocalGPU {
				hits++
			}
		}
	}
	if frac := float64(hits) / float64(total); frac < 0.4 {
		t.Errorf("20%% cache covers only %.2f of accesses", frac)
	}
}

func TestSplitProperty(t *testing.T) {
	// For random request sets and requesting GPUs, Split is a partition of
	// the request consistent with Locate.
	f := build(t, 4)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, int64(120*f.d.FeatDim*4), ByDegree)
	if err := quick.Check(func(seed uint64, gRaw uint8) bool {
		r := rng.New(seed)
		g := int(gRaw) % 4
		n := f.g.NumNodes()
		ids := make([]graph.NodeID, 1+r.Intn(200))
		for i := range ids {
			ids[i] = graph.NodeID(r.Intn(n))
		}
		local, remote, host := s.Split(ids, g)
		total := len(local) + len(host)
		for _, rr := range remote {
			total += len(rr)
		}
		if total != len(ids) {
			return false
		}
		for _, v := range local {
			if p, _ := s.Locate(v, g); p != LocalGPU {
				return false
			}
		}
		for holder, rr := range remote {
			for _, v := range rr {
				if p, h := s.Locate(v, g); p != RemoteGPU || h != holder {
					return false
				}
			}
		}
		for _, v := range host {
			if p, _ := s.Locate(v, g); p != HostMemory {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitExactPartitionAllLayouts: for every layout — partitioned,
// replicated, host-only, and a zero-budget partitioned store — Split's three
// outputs are exactly a permutation of the input multiset: concatenated they
// have the same length and the same per-id multiplicity, with no id invented
// or dropped.
func TestSplitExactPartitionAllLayouts(t *testing.T) {
	f := build(t, 4)
	budget := int64(120 * f.d.FeatDim * 4)
	stores := map[string]*Store{
		"partitioned": BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree),
		"replicated":  BuildReplicated(f.g, f.feats, f.d.FeatDim, 4, budget, ByDegree),
		"hostonly":    BuildHostOnly(f.g.NumNodes(), f.feats, f.d.FeatDim, 4),
		"zerobudget":  BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, 0, ByDegree),
		"dimsliced":   BuildDimSliced(f.feats, f.d.FeatDim, 4),
	}
	for name, s := range stores {
		s := s
		check := func(seed uint64, gRaw uint8) bool {
			r := rng.New(seed)
			g := int(gRaw) % 4
			n := f.g.NumNodes()
			// Random ids, duplicates included on purpose.
			ids := make([]graph.NodeID, r.Intn(300))
			for i := range ids {
				ids[i] = graph.NodeID(r.Intn(n))
			}
			want := map[graph.NodeID]int{}
			for _, v := range ids {
				want[v]++
			}
			local, remote, host := s.Split(ids, g)
			got := map[graph.NodeID]int{}
			total := 0
			add := func(part []graph.NodeID) {
				for _, v := range part {
					got[v]++
					total++
				}
			}
			add(local)
			add(host)
			for _, rr := range remote {
				add(rr)
			}
			if total != len(ids) || len(got) != len(want) {
				return false
			}
			for v, c := range want {
				if got[v] != c {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestDimSlicedExactPartition: the column slices of a DimSliced store tile
// [0, Dim) exactly — contiguous, disjoint, widths within one of each other —
// and the derived accounting (CacheBytes, AggregateCachedRows, Locate) is
// consistent with every GPU holding all rows of its slice.
func TestDimSlicedExactPartition(t *testing.T) {
	f := build(t, 4)
	check := func(dimRaw, gpusRaw uint8) bool {
		dim := 1 + int(dimRaw)%257
		gpus := 1 + int(gpusRaw)%8
		feats := make([]float32, 10*dim)
		s := BuildDimSliced(feats, dim, gpus)
		lo0, _ := s.SliceRange(0)
		if lo0 != 0 {
			return false
		}
		prev := 0
		base := dim / gpus
		var bytes int64
		for g := 0; g < gpus; g++ {
			lo, hi := s.SliceRange(g)
			if lo != prev || hi < lo {
				return false
			}
			if w := hi - lo; w != base && w != base+1 {
				return false
			}
			if s.SliceDim(g) != hi-lo {
				return false
			}
			if s.CacheBytes(g) != int64(s.NumRows())*int64(hi-lo)*4 {
				return false
			}
			bytes += s.CacheBytes(g)
			prev = hi
		}
		if prev != dim {
			return false
		}
		if bytes != int64(s.NumRows())*int64(dim)*4 {
			return false
		}
		if s.AggregateCachedRows() != int64(s.NumRows()) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	// Every row reads local on every GPU: the slice holds all rows.
	s := BuildDimSliced(f.feats, f.d.FeatDim, 4)
	for g := 0; g < 4; g++ {
		for _, v := range []graph.NodeID{0, graph.NodeID(f.g.NumNodes() / 2), graph.NodeID(f.g.NumNodes() - 1)} {
			if p, h := s.Locate(v, g); p != LocalGPU || h != g {
				t.Fatalf("Locate(%d, gpu%d) = (%v, %d), want local", v, g, p, h)
			}
		}
	}
}

func TestPromoteDemoteHolder(t *testing.T) {
	f := build(t, 2)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, int64(50*f.d.FeatDim*4), ByDegree)
	var cold graph.NodeID = -1
	for v := f.offsets[0]; v < f.offsets[1]; v++ {
		if s.Holder(graph.NodeID(v)) < 0 {
			cold = graph.NodeID(v)
			break
		}
	}
	if cold < 0 {
		t.Fatal("no cold row in fixture")
	}
	before := s.CachedRows[0]
	s.Promote(cold, 0)
	if s.Holder(cold) != 0 || s.CachedRows[0] != before+1 {
		t.Fatalf("promote: holder %d rows %d", s.Holder(cold), s.CachedRows[0])
	}
	if p, _ := s.Locate(cold, 0); p != LocalGPU {
		t.Fatal("promoted row not local")
	}
	s.Promote(cold, 0) // idempotent
	if s.CachedRows[0] != before+1 {
		t.Fatal("re-promotion double-counted")
	}
	s.Demote(cold)
	if s.Holder(cold) >= 0 || s.CachedRows[0] != before {
		t.Fatalf("demote: holder %d rows %d", s.Holder(cold), s.CachedRows[0])
	}
	s.Demote(cold) // demoting an uncached row is a no-op
	if s.CachedRows[0] != before {
		t.Fatal("double demotion changed accounting")
	}
	if p, _ := s.Locate(cold, 0); p != HostMemory {
		t.Fatal("demoted row not host")
	}
}

func TestZeroBudgetCachesNothing(t *testing.T) {
	f := build(t, 2)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, 0, ByDegree)
	if s.AggregateCachedRows() != 0 {
		t.Fatalf("zero budget cached %d rows", s.AggregateCachedRows())
	}
	for v := 0; v < 50; v++ {
		if p, _ := s.Locate(graph.NodeID(v), 0); p != HostMemory {
			t.Fatal("zero-budget store not host-only in effect")
		}
	}
}

func TestHugeBudgetCachesEverything(t *testing.T) {
	f := build(t, 2)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, 1<<40, ByDegree)
	if int(s.AggregateCachedRows()) != f.g.NumNodes() {
		t.Fatalf("cached %d of %d rows", s.AggregateCachedRows(), f.g.NumNodes())
	}
	for v := 0; v < f.g.NumNodes(); v += 37 {
		if p, _ := s.Locate(graph.NodeID(v), 1); p == HostMemory {
			t.Fatal("row left on host despite infinite budget")
		}
	}
}

func TestCachedFractionWeighted(t *testing.T) {
	f := build(t, 2)
	n := f.g.NumNodes()
	// Budget for a quarter of the rows per GPU.
	budget := int64(n/4) * int64(f.d.FeatDim*4)
	s := BuildPartitioned(f.g, f.feats, f.d.FeatDim, f.offsets, budget, ByDegree)

	uni := s.CachedFraction(nil)
	if uni <= 0 || uni >= 1 {
		t.Fatalf("uniform cached fraction %g out of (0,1)", uni)
	}
	// Weighting by degree (the cache policy itself) must not lower the hit
	// rate versus uniform access: the cache holds the highest-degree rows.
	w := make([]float64, n)
	for v := 0; v < n; v++ {
		w[v] = float64(f.g.Degree(graph.NodeID(v))) + 1
	}
	if hot := s.CachedFraction(w); hot < uni {
		t.Fatalf("degree-weighted fraction %g < uniform %g", hot, uni)
	}
	// All-mass-on-one-node is exactly its Locate result.
	solo := make([]float64, n)
	solo[0] = 1
	p, _ := s.Locate(0, 0)
	want := 0.0
	if p != HostMemory {
		want = 1.0
	}
	if got := s.CachedFraction(solo); got != want {
		t.Fatalf("solo fraction %g, want %g", got, want)
	}
}
