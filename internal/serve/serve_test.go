package serve

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/train"
)

func testData(t testing.TB, nGPU int) *train.Data {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "serve-t", Nodes: 3000, AvgDegree: 12, FeatDim: 16, NumClasses: 6, Seed: 11,
	})
	return train.Prepare(d, nGPU, 1, true)
}

func testConfig(t testing.TB, nGPU int) Config {
	t.Helper()
	return Config{
		Data:     testData(t, nGPU),
		Sample:   sample.Config{Fanout: []int{6, 4}},
		Seed:     42,
		Duration: 0.05,
		Rate:     4000,
		Skew:     0.8,
		UseCCC:   true,
	}
}

func TestServeSmoke(t *testing.T) {
	rep, err := Serve(testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Completed+rep.Shed != rep.Arrived {
		t.Fatalf("accounting: completed %d + shed %d != arrived %d",
			rep.Completed, rep.Shed, rep.Arrived)
	}
	if rep.Latency.Count() != uint64(rep.Completed) {
		t.Fatalf("latency observations %d != completed %d", rep.Latency.Count(), rep.Completed)
	}
	for _, req := range rep.Requests {
		if req.Done < req.Start || req.Start < req.Arrival {
			t.Fatalf("request %d timestamps out of order: %+v", req.ID, req)
		}
	}
}

// TestServeDeterminism: same seed → bitwise-identical per-request latency
// trace and predictions; different seed → different arrival process.
func TestServeDeterminism(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.RealCompute = true
	a, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrived != b.Arrived || a.Completed != b.Completed || a.Shed != b.Shed {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			a.Arrived, a.Completed, a.Shed, b.Arrived, b.Completed, b.Shed)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request traces differ in length: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.ID != rb.ID || ra.Node != rb.Node || ra.GPU != rb.GPU ||
			ra.Arrival != rb.Arrival || ra.Start != rb.Start || ra.Done != rb.Done ||
			ra.Round != rb.Round || ra.Batch != rb.Batch || ra.Pred != rb.Pred {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, ra, rb)
		}
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespan differs: %v vs %v", a.Makespan, b.Makespan)
	}

	cfg.Seed = 43
	c, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrived == a.Arrived && c.Makespan == a.Makespan {
		t.Fatal("different seed produced identical run")
	}
}

// TestServeOverloadSheds: far past saturation the bounded admission queues
// must shed, and accounting must still balance.
func TestServeOverloadSheds(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Rate = 200000
	cfg.QueueDepth = 8
	rep, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("no shedding at %vx overload:\n%s", cfg.Rate, rep)
	}
	if rep.Completed+rep.Shed != rep.Arrived {
		t.Fatalf("accounting: completed %d + shed %d != arrived %d",
			rep.Completed, rep.Shed, rep.Arrived)
	}
	if rep.ShedRate() <= 0.2 {
		t.Fatalf("expected heavy shedding, got %.1f%%", 100*rep.ShedRate())
	}
}

// TestServeBatchingAblation: at high offered load dynamic micro-batching
// must beat batch=1 on tail latency (batch=1 pays per-round overhead per
// request and saturates earlier).
func TestServeBatchingAblation(t *testing.T) {
	base := testConfig(t, 4)
	base.Rate = 8000
	run := func(b Batching) *Report {
		cfg := base
		cfg.Batching = b
		rep, err := Serve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	dyn := run(BatchDynamic)
	single := run(BatchSingle)
	t.Logf("dynamic: p99 %.3fms shed %.1f%%", 1e3*dyn.Latency.P99(), 100*dyn.ShedRate())
	t.Logf("batch=1: p99 %.3fms shed %.1f%%", 1e3*single.Latency.P99(), 100*single.ShedRate())
	if dyn.Latency.P99() >= single.Latency.P99() {
		t.Fatalf("dynamic p99 %.3fms not better than batch=1 p99 %.3fms",
			1e3*dyn.Latency.P99(), 1e3*single.Latency.P99())
	}
	if dyn.MeanBatch <= 1.0 {
		t.Fatalf("dynamic mean batch %.2f should exceed 1", dyn.MeanBatch)
	}
}

// TestServeTraceEvents: a traced run emits per-request spans, round spans,
// queue-depth counters, and (under overload) shed instants.
func TestServeTraceEvents(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Rate = 100000
	cfg.QueueDepth = 8
	tr := trace.New()
	cfg.Tracer = tr
	rep, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var spans, rounds, counters, sheds int
	for _, e := range tr.Events() {
		switch {
		case e.Ph == "X" && e.Cat == "request":
			spans++
		case e.Ph == "X" && e.Cat == "serve":
			rounds++
		case e.Ph == "C" && e.Name == "admission-queue":
			counters++
		case e.Ph == "i" && e.Name == "shed":
			sheds++
		}
	}
	if spans != rep.Completed {
		t.Fatalf("request spans %d != completed %d", spans, rep.Completed)
	}
	if rounds == 0 || counters == 0 {
		t.Fatalf("missing round spans (%d) or counters (%d)", rounds, counters)
	}
	if rep.Shed > 0 && sheds != rep.Shed {
		t.Fatalf("shed instants %d != shed count %d", sheds, rep.Shed)
	}
}
