package serve

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/train"
)

// Workload is a seeded open-loop request source: Poisson arrivals whose
// target nodes follow a power-law popularity over the degree ranking —
// production GNN serving concentrates on hub entities (popular items,
// high-follower accounts), and on the synthetic power-law datasets the
// degree ranking is exactly that hot-node concentration.
type Workload struct {
	// ranked[i] is the i-th most popular node (layout id).
	ranked []graph.NodeID
	// cum[i] is the cumulative popularity mass of ranked[0..i].
	cum []float64
	// weights[v] is node v's popularity mass (indexed by node id).
	weights []float64
	offsets []int64

	// Drifting popularity: every driftEvery of virtual time the rank→node
	// assignment is re-drawn (the mass profile stays fixed, but which nodes
	// are hot changes), modelling trending-content churn in production
	// serving. Phase 0 is the identity mapping, so an un-drifted workload
	// (driftEvery == 0) is bit-identical to the original.
	driftEvery sim.Time
	driftSeed  uint64
	phase      int
	phased     []graph.NodeID // current phase's rank→node mapping
}

// NewWorkload ranks d's nodes by degree and assigns popularity mass
// proportional to 1/(rank+1)^skew. skew 0 is uniform; ~1 matches the
// heavy-tailed access patterns of production feature stores.
func NewWorkload(d *train.Data, skew float64) *Workload {
	w := &Workload{
		ranked:  d.G.NodesByDegreeDesc(),
		offsets: d.Offsets,
		weights: make([]float64, d.G.NumNodes()),
	}
	w.cum = make([]float64, len(w.ranked))
	var total float64
	for i, v := range w.ranked {
		mass := 1.0
		if skew != 0 {
			mass = math.Pow(float64(i+1), -skew)
		}
		total += mass
		w.cum[i] = total
		w.weights[v] = mass
	}
	return w
}

// EnableDrift re-draws the rank→node assignment every interval of virtual
// time, from a stream independent of the arrival process (so drift does not
// perturb arrival timing). interval <= 0 disables drift.
func (w *Workload) EnableDrift(interval sim.Time, seed uint64) {
	w.driftEvery = interval
	w.driftSeed = seed
}

// DriftInterval returns the configured drift period (0 = static popularity).
func (w *Workload) DriftInterval() sim.Time { return w.driftEvery }

// mapping returns the rank→node assignment in effect at virtual time now.
func (w *Workload) mapping(now sim.Time) []graph.NodeID {
	if w.driftEvery <= 0 {
		return w.ranked
	}
	phase := int(now / w.driftEvery)
	if phase == 0 {
		return w.ranked
	}
	if w.phased == nil || phase != w.phase {
		// Fisher-Yates over a fresh copy, seeded by (driftSeed, phase): the
		// mapping is a pure function of the phase index, so out-of-order or
		// repeated queries are consistent.
		if w.phased == nil {
			w.phased = make([]graph.NodeID, len(w.ranked))
		}
		copy(w.phased, w.ranked)
		r := rng.New(rng.Mix(w.driftSeed, uint64(phase)))
		for i := len(w.phased) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			w.phased[i], w.phased[j] = w.phased[j], w.phased[i]
		}
		w.phase = phase
	}
	return w.phased
}

// MappingAt returns a copy of the rank→node assignment in effect at virtual
// time now (index = popularity rank). Tests use it to check that fleets with
// independent seeds drift through independent phase mappings.
func (w *Workload) MappingAt(now sim.Time) []graph.NodeID {
	return append([]graph.NodeID(nil), w.mapping(now)...)
}

// Draw samples one target node from the popularity distribution in effect at
// virtual time now.
func (w *Workload) Draw(r *rng.RNG, now sim.Time) graph.NodeID {
	u := r.Float64() * w.cum[len(w.cum)-1]
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.ranked) {
		i = len(w.ranked) - 1
	}
	return w.mapping(now)[i]
}

// Owner returns the GPU owning node v under the layout partitioning.
func (w *Workload) Owner(v graph.NodeID) int {
	// offsets[g] <= v < offsets[g+1]
	return sort.Search(len(w.offsets)-1, func(g int) bool {
		return w.offsets[g+1] > int64(v)
	})
}

// Weights exposes the per-node popularity mass (for expected cache-hit-rate
// estimates via featstore.Store.CachedFraction).
func (w *Workload) Weights() []float64 { return w.weights }
