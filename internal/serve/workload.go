package serve

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/train"
)

// Workload is a seeded open-loop request source: Poisson arrivals whose
// target nodes follow a power-law popularity over the degree ranking —
// production GNN serving concentrates on hub entities (popular items,
// high-follower accounts), and on the synthetic power-law datasets the
// degree ranking is exactly that hot-node concentration.
type Workload struct {
	// ranked[i] is the i-th most popular node (layout id).
	ranked []graph.NodeID
	// cum[i] is the cumulative popularity mass of ranked[0..i].
	cum []float64
	// weights[v] is node v's popularity mass (indexed by node id).
	weights []float64
	offsets []int64
}

// NewWorkload ranks d's nodes by degree and assigns popularity mass
// proportional to 1/(rank+1)^skew. skew 0 is uniform; ~1 matches the
// heavy-tailed access patterns of production feature stores.
func NewWorkload(d *train.Data, skew float64) *Workload {
	w := &Workload{
		ranked:  d.G.NodesByDegreeDesc(),
		offsets: d.Offsets,
		weights: make([]float64, d.G.NumNodes()),
	}
	w.cum = make([]float64, len(w.ranked))
	var total float64
	for i, v := range w.ranked {
		mass := 1.0
		if skew != 0 {
			mass = math.Pow(float64(i+1), -skew)
		}
		total += mass
		w.cum[i] = total
		w.weights[v] = mass
	}
	return w
}

// Draw samples one target node from the popularity distribution.
func (w *Workload) Draw(r *rng.RNG) graph.NodeID {
	u := r.Float64() * w.cum[len(w.cum)-1]
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.ranked) {
		i = len(w.ranked) - 1
	}
	return w.ranked[i]
}

// Owner returns the GPU owning node v under the layout partitioning.
func (w *Workload) Owner(v graph.NodeID) int {
	// offsets[g] <= v < offsets[g+1]
	return sort.Search(len(w.offsets)-1, func(g int) bool {
		return w.offsets[g+1] > int64(v)
	})
}

// Weights exposes the per-node popularity mass (for expected cache-hit-rate
// estimates via featstore.Store.CachedFraction).
func (w *Workload) Weights() []float64 { return w.weights }
