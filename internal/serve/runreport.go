package serve

import (
	"repro/internal/prof"
	"repro/internal/store"
	"repro/internal/trace"
)

// ReportMeta carries the run identity a Report does not know about itself.
type ReportMeta struct {
	Dataset string
	GPUs    int
	Seed    uint64
	Shrink  int
	// Tracer, when enabled, contributes the trace-derived pipeline profile.
	Tracer *trace.Tracer
	// Telemetry, when set, embeds the scrape/alert summary produced by
	// telemetry.Hub.Section after Finish.
	Telemetry *prof.TelemetrySection
}

// RunReport renders the serving report into the canonical prof.RunReport
// schema shared by every CLI.
func (r *Report) RunReport(meta ReportMeta) *prof.RunReport {
	out := prof.New("dspserve")
	out.System = "DSP"
	if r.Strategy == "p3" {
		out.System = "DSP-P3"
		out.Strategy = &prof.StrategySection{
			Name:       r.Strategy,
			FeatureDim: r.FeatureDim,
			SliceDims:  append([]int(nil), r.SliceDims...),
			PushBytes:  r.PushWire,
		}
	}
	out.Dataset = meta.Dataset
	out.GPUs = meta.GPUs
	out.Seed = meta.Seed
	out.Shrink = meta.Shrink
	out.WallTime = float64(r.Makespan)
	out.Wire = prof.Wire{Sample: r.SampleWire, Feature: r.FeatureWire}
	for class, cs := range r.Compression {
		if cs.Raw == 0 && cs.Wire == 0 {
			continue
		}
		if out.Compression == nil {
			out.Compression = map[string]prof.WireStat{}
		}
		out.Compression[class.String()] = prof.WireStat{Raw: cs.Raw, Wire: cs.Wire}
	}
	out.Latency = prof.Latency(r.Latency)
	if total := r.LocalRows + r.RemoteRows + r.HostRows; total > 0 {
		out.Cache = &prof.CacheReport{
			Policy:        r.CachePolicy.String(),
			Local:         r.LocalRows,
			Peer:          r.RemoteRows,
			Host:          r.HostRows,
			HitRate:       r.CacheHitRate(),
			Promoted:      r.PromotedRows,
			MovedBytes:    r.RebalanceBytes,
			Rebalances:    r.Rebalances,
			RebalanceTime: float64(r.RebalanceTime),
		}
	}
	out.Store = store.Section(r.StoreStats)
	sv := ServingRunReport(r)
	out.Serving = &sv
	if len(r.Recoveries) > 0 || len(r.DeadGPUs) > 0 {
		fr := &prof.FaultReport{}
		var sum float64
		var repaired int
		for _, rec := range r.Recoveries {
			fr.Recoveries = append(fr.Recoveries, prof.RecoveryReport{
				GPU: rec.GPU, At: float64(rec.At), MTTR: float64(rec.MTTR),
			})
			if rec.MTTR >= 0 {
				sum += float64(rec.MTTR)
				repaired++
			}
		}
		if repaired > 0 {
			fr.MeanMTTR = sum / float64(repaired)
		}
		out.Faults = fr
	}
	out.Telemetry = meta.Telemetry
	if meta.Tracer.Enabled() {
		out.Profile = prof.Analyze(prof.FromTracer(meta.Tracer))
	}
	return out
}

// ServingRunReport extracts the serving-only scalar section.
func ServingRunReport(r *Report) prof.ServingReport {
	sv := prof.ServingReport{
		Offered:         r.Offered,
		Throughput:      r.Throughput,
		Arrived:         r.Arrived,
		Completed:       r.Completed,
		Shed:            r.Shed,
		ShedRate:        r.ShedRate(),
		Rounds:          r.Rounds,
		MeanBatch:       r.MeanBatch,
		ExpectedHitRate: r.ExpectedHitRate,
		Rerouted:        r.Rerouted,
		Lost:            r.Lost,
		DeadGPUs:        append([]int(nil), r.DeadGPUs...),
		QuotaRejected:   r.QuotaRejected,
		Goodput:         prof.GoodputFrom(r.Goodput),
	}
	for _, tc := range r.Tenants {
		sv.Tenants = append(sv.Tenants, prof.TenantReport{
			Name: tc.Name, Admitted: tc.Admitted, Rejected: tc.Rejected,
		})
	}
	return sv
}
