package serve

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/sim"
)

// driftConfig is a serving run under popularity drift with a tight feature
// budget: the regime where the offline degree placement decays and adaptive
// caching has something to win.
func driftConfig(t testing.TB) Config {
	cfg := testConfig(t, 4)
	cfg.Duration = 0.3
	cfg.Rate = 3000
	cfg.Skew = 1.5
	cfg.DriftEvery = 0.1 // 3 popularity phases over the horizon
	cfg.RebalanceEvery = 5e-3
	// Slow decay: the tracker remembers most of a phase, not just the last
	// couple of rounds, so promotion decisions are not sampling noise.
	cfg.CacheTune = cache.Config{Decay: 0.9}

	// ~80 rows per GPU out of ~750 owned: heavy cache pressure.
	cfg.FeatureCacheBudget = int64(80 * cfg.Data.FeatDim * 4)
	return cfg
}

// TestDynamicCacheBeatsStaticUnderDrift is the PR's acceptance regression:
// under a drifting-popularity workload at equal budget, the LFU-decay policy
// achieves a strictly higher aggregate GPU-cache hit rate than the static
// presample baseline, and the adaptation is visibly charged (rebalances ran,
// bytes migrated).
func TestDynamicCacheBeatsStaticUnderDrift(t *testing.T) {
	st := driftConfig(t)
	st.DynamicCache = cache.Static
	static, err := Serve(st)
	if err != nil {
		t.Fatal(err)
	}
	dy := driftConfig(t)
	dy.DynamicCache = cache.LFUDecay
	lfu, err := Serve(dy)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static hit %.3f  lfu hit %.3f  rebalances %d  migrated %d B  overhead %v",
		static.CacheHitRate(), lfu.CacheHitRate(),
		lfu.Rebalances, lfu.RebalanceBytes, lfu.RebalanceTime)
	if lfu.CacheHitRate() <= static.CacheHitRate() {
		t.Fatalf("LFU-decay hit rate %.4f not above static %.4f under drift",
			lfu.CacheHitRate(), static.CacheHitRate())
	}
	if lfu.Rebalances == 0 || lfu.PromotedRows == 0 || lfu.RebalanceBytes == 0 {
		t.Fatalf("dynamic run did not adapt: %d rebalances, %d rows, %d bytes",
			lfu.Rebalances, lfu.PromotedRows, lfu.RebalanceBytes)
	}
	if lfu.RebalanceTime <= 0 {
		t.Fatal("rebalance overhead not charged to virtual time")
	}
	if static.Rebalances != 0 || static.RebalanceBytes != 0 {
		t.Fatalf("static run rebalanced: %+v", static.Rebalances)
	}
}

// TestDynamicCacheDeterminism: two same-seed dynamic runs produce
// bit-identical reports, including per-tier counts, per-GPU tier components
// and rebalance byte totals.
func TestDynamicCacheDeterminism(t *testing.T) {
	run := func() *Report {
		cfg := driftConfig(t)
		cfg.DynamicCache = cache.DegreeHybrid
		rep, err := Serve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Tiers != b.Tiers {
		t.Fatalf("fleet tiers diverged: %+v vs %+v", a.Tiers, b.Tiers)
	}
	for g := range a.PerGPUTiers {
		if a.PerGPUTiers[g] != b.PerGPUTiers[g] {
			t.Fatalf("GPU %d tiers diverged: %+v vs %+v", g, a.PerGPUTiers[g], b.PerGPUTiers[g])
		}
	}
	if a.Rebalances != b.Rebalances || a.PromotedRows != b.PromotedRows ||
		a.RebalanceBytes != b.RebalanceBytes || a.RebalanceTime != b.RebalanceTime {
		t.Fatalf("rebalance accounting diverged: %d/%d/%d/%v vs %d/%d/%d/%v",
			a.Rebalances, a.PromotedRows, a.RebalanceBytes, a.RebalanceTime,
			b.Rebalances, b.PromotedRows, b.RebalanceBytes, b.RebalanceTime)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request traces differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i].Done != b.Requests[i].Done || a.Requests[i].Node != b.Requests[i].Node {
			t.Fatalf("request %d diverged", i)
		}
	}
	if a.Rebalances == 0 {
		t.Fatal("determinism run never rebalanced")
	}
}

// TestReportTierConsistency: the flat row counts, the Tiers struct and the
// per-GPU components all agree, and the derived hit rate matches.
func TestReportTierConsistency(t *testing.T) {
	cfg := driftConfig(t)
	cfg.DynamicCache = cache.LFUDecay
	rep, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiers.Local != rep.LocalRows || rep.Tiers.Peer != rep.RemoteRows ||
		rep.Tiers.Host != rep.HostRows {
		t.Fatalf("flat counts disagree with Tiers: %+v vs %d/%d/%d",
			rep.Tiers, rep.LocalRows, rep.RemoteRows, rep.HostRows)
	}
	var sum cache.Tiers
	for _, pg := range rep.PerGPUTiers {
		sum.Add(pg)
	}
	if sum != rep.Tiers {
		t.Fatalf("per-GPU tiers sum %+v != fleet %+v", sum, rep.Tiers)
	}
	if rep.Tiers.Total() == 0 {
		t.Fatal("no reads accounted")
	}
	if got, want := rep.CacheHitRate(), rep.Tiers.HitRate(); got != want {
		t.Fatalf("derived hit rate %g != tiers hit rate %g", got, want)
	}
}

// TestWorkloadDrift: phase 0 is the identity mapping (no behaviour change
// when drift is off), later phases permute it, and the mapping is a pure
// function of (seed, phase).
func TestWorkloadDrift(t *testing.T) {
	d := testData(t, 2)
	plain := NewWorkload(d, 0.9)
	drift := NewWorkload(d, 0.9)
	drift.EnableDrift(0.1, 7)

	ra, rb := rng.New(3), rng.New(3)
	for i := 0; i < 200; i++ {
		now := sim.Time(i) * 4e-4 // stays inside phase 0
		if plain.Draw(ra, now) != drift.Draw(rb, now) {
			t.Fatal("phase 0 is not the identity mapping")
		}
	}
	// Later phases change which nodes are hot: the head of the ranking (the
	// bulk of the mass under skew) must not map to the same nodes.
	same := 0
	const probe = 50
	for i := 0; i < probe; i++ {
		ra, rb := rng.New(uint64(i)), rng.New(uint64(i))
		if drift.Draw(ra, 0.05) == drift.Draw(rb, 0.15) {
			same++
		}
	}
	if same == probe {
		t.Fatal("drift phase 1 identical to phase 0")
	}
	// Pure function of phase: re-querying an earlier phase after a later one
	// reproduces it exactly.
	r1, r2 := rng.New(99), rng.New(99)
	first := drift.Draw(r1, 0.15)
	_ = drift.Draw(rng.New(1), 0.25) // advance to phase 2
	if again := drift.Draw(r2, 0.15); again != first {
		t.Fatalf("phase 1 not reproducible: %d vs %d", first, again)
	}
}
