package serve

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TenantSpec describes one tenant of a multi-tenant serving run: its share
// of the arrival stream and its admission quota.
type TenantSpec struct {
	Name string
	// Weight is the tenant's share of arrivals (relative; defaults to 1).
	Weight float64
	// Rate is the tenant's admission quota in requests per virtual second
	// (token-bucket refill rate; 0 = unlimited).
	Rate float64
	// Burst is the token-bucket depth (defaults to max(1, Rate/100): a 10 ms
	// burst allowance).
	Burst float64
}

// TenantCount is one tenant's admission outcome totals.
type TenantCount struct {
	Name     string
	Admitted int
	Rejected int
}

// ParseTenants parses a comma-separated tenant spec:
//
//	name:weight[:rate[:burst]]
//
// e.g. "free:4:500,pro:1" — tenant "free" gets 4/5 of arrivals capped at
// 500 req/s, tenant "pro" 1/5 uncapped. An empty spec yields nil (untenanted).
func ParseTenants(spec string) ([]TenantSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []TenantSpec
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("serve: tenant entry %q has no name", entry)
		}
		t := TenantSpec{Name: parts[0], Weight: 1}
		if seen[t.Name] {
			return nil, fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		fields := []*float64{&t.Weight, &t.Rate, &t.Burst}
		if len(parts)-1 > len(fields) {
			return nil, fmt.Errorf("serve: tenant entry %q has too many fields (want name:weight[:rate[:burst]])", entry)
		}
		for i, p := range parts[1:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("serve: tenant entry %q: bad value %q", entry, p)
			}
			*fields[i] = v
		}
		if t.Weight <= 0 {
			return nil, fmt.Errorf("serve: tenant %q needs a positive weight", t.Name)
		}
		out = append(out, t)
	}
	return out, nil
}

// FormatTenants renders specs in the grammar accepted by ParseTenants.
func FormatTenants(specs []TenantSpec) string {
	parts := make([]string, len(specs))
	for i, t := range specs {
		s := fmt.Sprintf("%s:%g", t.Name, t.Weight)
		if t.Rate > 0 {
			s += fmt.Sprintf(":%g", t.Rate)
			if t.Burst > 0 {
				s += fmt.Sprintf(":%g", t.Burst)
			}
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// TenantTable is the runtime admission state of a tenant set: a seeded
// weight-proportional tenant draw, one token bucket per quota-bearing tenant,
// and per-tenant admitted/rejected counts. All methods run in engine context.
type TenantTable struct {
	specs  []TenantSpec
	cum    []float64 // cumulative weights for Draw
	tokens []float64
	last   []sim.Time
	counts []TenantCount
}

// NewTenantTable builds the runtime table (nil for an empty spec set).
func NewTenantTable(specs []TenantSpec) *TenantTable {
	if len(specs) == 0 {
		return nil
	}
	t := &TenantTable{
		specs:  specs,
		cum:    make([]float64, len(specs)),
		tokens: make([]float64, len(specs)),
		last:   make([]sim.Time, len(specs)),
		counts: make([]TenantCount, len(specs)),
	}
	var total float64
	for i, s := range specs {
		total += s.Weight
		t.cum[i] = total
		t.counts[i].Name = s.Name
		t.tokens[i] = t.burst(i) // buckets start full
	}
	return t
}

// burst is tenant i's effective bucket depth.
func (t *TenantTable) burst(i int) float64 {
	s := t.specs[i]
	if s.Rate <= 0 {
		return 0
	}
	if s.Burst > 0 {
		return s.Burst
	}
	b := s.Rate / 100
	if b < 1 {
		b = 1
	}
	return b
}

// N returns the tenant count.
func (t *TenantTable) N() int { return len(t.specs) }

// Name returns tenant id's name.
func (t *TenantTable) Name(id int) string { return t.specs[id].Name }

// Draw samples a tenant id proportionally to the spec weights.
func (t *TenantTable) Draw(r *rng.RNG) int {
	u := r.Float64() * t.cum[len(t.cum)-1]
	for i, c := range t.cum {
		if u < c {
			return i
		}
	}
	return len(t.cum) - 1
}

// TakeToken charges one request against tenant id's quota at virtual time
// now, reporting whether the quota admits it. Tenants without a Rate always
// pass. The bucket refills continuously at Rate up to Burst.
func (t *TenantTable) TakeToken(id int, now sim.Time) bool {
	s := t.specs[id]
	if s.Rate <= 0 {
		return true
	}
	if now > t.last[id] {
		t.tokens[id] += float64(now-t.last[id]) * s.Rate
		if max := t.burst(id); t.tokens[id] > max {
			t.tokens[id] = max
		}
		t.last[id] = now
	}
	if t.tokens[id] < 1 {
		return false
	}
	t.tokens[id]--
	return true
}

// Accept records an admitted request for tenant id.
func (t *TenantTable) Accept(id int) { t.counts[id].Admitted++ }

// Reject records a rejected request (quota or queue shed) for tenant id.
func (t *TenantTable) Reject(id int) { t.counts[id].Rejected++ }

// Counts returns a copy of the per-tenant outcome totals.
func (t *TenantTable) Counts() []TenantCount {
	if t == nil {
		return nil
	}
	return append([]TenantCount(nil), t.counts...)
}
