// Package serve implements online GNN inference serving on the same
// simulated multi-GPU fleet the trainer uses — the first step from "paper
// reproduction" toward a system that serves live traffic.
//
// Architecture: a seeded open-loop workload generator produces Poisson
// request arrivals with power-law node popularity. Requests are admitted
// into bounded per-GPU queues (routed to the GPU owning the target node's
// patch); arrivals beyond the bound are shed. A frontend controller batches
// admitted requests into dispatch rounds — flushing when any queue reaches
// MaxBatch or the oldest admitted request has waited MaxWait virtual time —
// and every round executes collectively on all GPUs: CSP
// shuffle/sample/reshuffle builds the multi-hop neighbourhoods (GPUs with no
// requests this round still serve remote sampling tasks), the feature
// loader fetches rows from the partitioned cache (NVLink all-to-all for
// remote hot rows, UVA for cold rows), and a forward-only pass produces the
// predictions. Sampling and execution pipeline over consecutive rounds
// through bounded queues, with all collective launches ordered by CCC so
// concurrent rounds cannot deadlock — exactly the paper's training-side
// machinery, repurposed for latency-bounded inference.
package serve

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/csp"
	"repro/internal/fault"
	"repro/internal/featstore"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/train"
)

// Batching selects the micro-batching policy of the frontend controller.
type Batching int

const (
	// BatchDynamic flushes when a queue reaches MaxBatch OR the oldest
	// admitted request has waited MaxWait — large batches under load, low
	// latency when idle (the serving default).
	BatchDynamic Batching = iota
	// BatchSingle dispatches at most one request per GPU per round (no
	// batching — the latency-optimal policy at very low load, collapsing
	// under high load since every request pays the full round overhead).
	BatchSingle
	// BatchFixed flushes only full MaxBatch batches (throughput-optimal
	// under saturation, pathological at low load: partial batches wait
	// until the run drains).
	BatchFixed
)

func (b Batching) String() string {
	switch b {
	case BatchSingle:
		return "batch=1"
	case BatchFixed:
		return "fixed"
	default:
		return "dynamic"
	}
}

// Worker ids for communication coordination (one gated communicator per
// worker group, as in training).
const (
	samplerWorker = iota
	execWorker
)

// Config describes one serving run. Data, Duration and Rate are required.
type Config struct {
	Data *train.Data
	GPU  hw.GPUSpec
	CPU  hw.CPUSpec
	// Engine, when set, builds the fleet's machine on an existing simulation
	// engine so several Server instances share one virtual clock (replicated
	// fleets behind a router). The caller then owns the run loop: it must use
	// Start/Finish rather than Run.
	Engine *sim.Engine
	// Name prefixes the server's process names (disambiguates fleets that
	// share an engine). Empty = no prefix.
	Name string
	// External disables the internal arrival generator: requests enter
	// through Admit and the intake is ended with CloseIntake (router mode).
	// Duration, Rate and Skew then describe the router's arrival process, not
	// this server's.
	External bool
	// Model is the forward pass served; defaults to a 2-layer GraphSAGE
	// sized to the dataset.
	Model nn.Config
	// Sample is the neighbourhood expansion per request; defaults to
	// fan-out [10, 5].
	Sample sample.Config
	// RealCompute runs the actual fp32 forward math and records argmax
	// predictions; false charges nominal kernel costs only.
	RealCompute bool
	Seed        uint64
	// Parallel is the OS-thread budget for offloaded data work between DES
	// commit points (sim.SetParallelism); results are bitwise identical at
	// any value. Ignored when Engine is set (the engine owner configures it).
	Parallel int

	// Duration is the virtual-time horizon of the arrival process.
	Duration sim.Time
	// Rate is the offered load in requests per virtual second.
	Rate float64
	// Skew is the power-law popularity exponent (0 = uniform).
	Skew float64

	Batching Batching
	// MaxBatch bounds per-GPU requests per round (default 32).
	MaxBatch int
	// MaxWait bounds queueing delay before a dynamic flush (default 2 ms).
	MaxWait sim.Time
	// QueueDepth bounds each GPU's admission queue; arrivals beyond it are
	// shed (default 4×MaxBatch).
	QueueDepth int
	// QueueCap is the sampler→executor pipeline depth (default 2).
	QueueCap int
	UseCCC   bool

	FeatureCacheBudget int64
	TopoCacheBudget    int64
	// CompressTopology stores the partitioned topology varint-compressed
	// (resident bytes at the encoded size, a decode kernel per sampled row).
	CompressTopology bool
	// OOC enables the out-of-core tier below host memory (internal/store);
	// OOCBudget is its block-cache byte budget (<=0: half the block bytes)
	// and OOCNoPrefetch disables the proximity-aware prefetcher.
	OOC           bool
	OOCBudget     int64
	OOCNoPrefetch bool
	// OOCBlockNodes overrides the store block width in nodes (0 = default).
	OOCBlockNodes int
	// CachePolicy selects the hot-node criterion (0 = by degree).
	CachePolicy int
	// DynamicCache selects the adaptive cache policy (cache.Static keeps the
	// offline placement). Non-static policies rebalance each GPU's feature
	// shard every RebalanceEvery of virtual time, promoting observed-hot rows
	// and demoting cold ones at constant budget.
	DynamicCache cache.Policy
	// RebalanceEvery is the rebalance period (default 25 ms when a dynamic
	// policy is selected).
	RebalanceEvery sim.Time
	// CacheTune tunes the adaptive manager (decay, move cap, degree weight);
	// zero values take the cache package defaults.
	CacheTune cache.Config
	// DriftEvery re-draws the workload's popularity assignment at this virtual
	// period (0 = static popularity). Drift is what dynamic caching adapts to.
	DriftEvery sim.Time
	// StageOverhead is the host-side cost per worker stage per round
	// (default 0.5 ms; negative disables). Divided by LatencyScale.
	StageOverhead sim.Time
	// LatencyScale divides per-message link latencies (benchmark scaling).
	LatencyScale float64
	// FeatCodec compresses the NVLink feature-reply all-to-all between GPUs
	// (nil = raw fp32 rows). UVA host reads are zero-copy and uncompressed.
	FeatCodec compress.Codec

	// Tenants partitions the arrival stream into named tenants: each arrival
	// draws a tenant proportionally to the spec weights (from a stream
	// independent of arrival timing), and tenants with a Rate are admission-
	// limited by a token bucket. Quota rejections count into Shed and into
	// the per-tenant rejected totals. Empty = single implicit tenant,
	// bit-identical to the pre-tenant behaviour.
	Tenants []TenantSpec
	// SLO is the end-to-end latency objective. When positive, the run keeps
	// a windowed goodput counter (requests completed within SLO per virtual
	// second) reported alongside the latency histogram.
	SLO sim.Time
	// GoodputWindow is the goodput counter's bucket width (default 10 ms).
	GoodputWindow sim.Time
	// OnComplete, when set, is invoked in engine context at each request's
	// completion instant (after its latency is recorded). The fleet router
	// uses it to feed routing and autoscaling state.
	OnComplete func(*Request)

	// Tracer, when set, records per-request spans, round spans, queue-depth
	// counters and shed markers.
	Tracer *trace.Tracer

	// Faults is the injected fault schedule. A GPU crash switches the fleet
	// to degraded mode: the dead GPU's workers stop, its admitted requests
	// re-route to the next live GPU, in-flight collectives abort and retry
	// under the reduced membership, and reads of its patch and feature shard
	// fall back to host memory. The schedule must leave at least one GPU
	// alive.
	Faults []fault.Fault

	// Strategy selects the execution strategy: "" or "dsp" serves off the
	// row-partitioned hot/cold cache; "p3" dimension-slices the features
	// ([#Nodes, F/world] per GPU) and replaces the feature gather with the
	// first layer's partial-activation push exchange (internal/strategy).
	Strategy string

	// Telemetry, when set, receives scrape sources (queue depth, per-GPU
	// busy fractions, cache hit rate, wire bytes), per-request stage spans
	// and shed/degraded events from this server. A nil hub disables all
	// instrumentation. Fleet routers share one hub across replicas; the
	// Name prefix keeps series names distinct.
	Telemetry *telemetry.Hub
}

func (c Config) defaults() Config {
	if c.GPU.Threads == 0 {
		c.GPU = hw.V100()
	}
	if c.Data != nil && c.Data.GPUMemBytes > 0 {
		c.GPU.MemBytes = c.Data.GPUMemBytes
	}
	if c.CPU.Cores == 0 {
		c.CPU = hw.XeonE5()
	}
	if c.Model.Layers == 0 {
		c.Model = nn.Config{Arch: nn.SAGE, InDim: c.Data.FeatDim, Hidden: 64,
			Classes: c.Data.NumClasses, Layers: 2}
	}
	if c.Model.InDim == 0 {
		c.Model.InDim = c.Data.FeatDim
	}
	if c.Model.Classes == 0 {
		c.Model.Classes = c.Data.NumClasses
	}
	if len(c.Sample.Fanout) == 0 {
		c.Sample.Fanout = []int{10, 5}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2e-3
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2
	}
	if c.RebalanceEvery <= 0 {
		c.RebalanceEvery = 25e-3
	}
	if c.GoodputWindow <= 0 {
		c.GoodputWindow = 10e-3
	}
	return c
}

func (c Config) validate() error {
	if c.Data == nil {
		return fmt.Errorf("serve: Config.Data is required")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("serve: Config.Duration must be positive")
	}
	if c.Rate <= 0 {
		return fmt.Errorf("serve: Config.Rate must be positive")
	}
	if len(c.Sample.Fanout) != 0 && c.Model.Layers != 0 &&
		len(c.Sample.Fanout) != c.Model.Layers {
		return fmt.Errorf("serve: fan-out depth %d != model layers %d",
			len(c.Sample.Fanout), c.Model.Layers)
	}
	kind, err := strategy.Parse(c.Strategy)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if kind == strategy.KindP3 {
		// The P3 layout has no per-row holders: degraded-mode re-routing and
		// row-cache rebalancing are meaningless over a dimension slice.
		if len(c.Faults) > 0 {
			return fmt.Errorf("serve: -strategy p3 does not support fault injection (no per-row holders to re-route around)")
		}
		if c.DynamicCache != cache.Static {
			return fmt.Errorf("serve: -strategy p3 is incompatible with dynamic cache policy %v (the dimension-sliced layout has no rows to rebalance)", c.DynamicCache)
		}
		if c.FeatureCacheBudget > 0 {
			return fmt.Errorf("serve: -strategy p3 ignores the feature cache budget: each GPU holds the full [#nodes, F/world] slice")
		}
	}
	return nil
}

// effectiveOverhead mirrors train.Options.EffectiveStageOverhead with a
// serving-appropriate 0.5 ms default (an inference server launches rounds
// from a compiled runtime, not a Python training loop).
func (c Config) effectiveOverhead() sim.Time {
	ov := c.StageOverhead
	switch {
	case ov < 0:
		return 0
	case ov == 0:
		ov = 0.5e-3
	}
	if c.LatencyScale > 1 {
		ov /= sim.Time(c.LatencyScale)
	}
	return ov
}

// Request is one node-classification inference request and its lifecycle
// timestamps (virtual seconds).
type Request struct {
	ID      int
	Node    graph.NodeID
	GPU     int
	Tenant  int // index into Config.Tenants (0 when untenanted)
	Arrival sim.Time
	Start   sim.Time // round dispatch time
	Done    sim.Time
	Round   int
	Batch   int   // number of requests in its round on its GPU
	Pred    int32 // argmax class (RealCompute), else -1
}

// Latency is the end-to-end request latency.
func (r *Request) Latency() sim.Time { return r.Done - r.Arrival }

// round is one collective dispatch: every GPU samples and executes it, with
// reqs[g] the requests admitted to GPU g (possibly empty).
type round struct {
	id    int
	seed  uint64
	start sim.Time
	reqs  [][]*Request
}

// execItem carries a sampled round from the sampler to the executor.
type execItem struct {
	rd *round
	mb *sample.MiniBatch
	// sampledAt is when the CSP sample round finished — the boundary
	// between the sample and gather stages of each request's span.
	sampledAt sim.Time
}

// Server is a configured single-run serving instance. Build with NewServer,
// execute with Run (or use the Serve convenience wrapper).
type Server struct {
	cfg       Config
	m         *hw.Machine
	world     *csp.World
	store     *featstore.Store
	hostStore *store.Store
	cacheMgr  *cache.Manager
	coord     *pipeline.Coordinator
	execComm  *comm.Communicator
	workload  *Workload
	models    []*nn.Model
	overhead  sim.Time

	// fault tolerance
	inj  *fault.Injector
	view *fault.View

	// multi-tenancy and SLO accounting
	tenants *TenantTable
	goodput *metrics.Goodput

	// run state
	wake      *sim.Event
	genDone   bool
	started   bool
	pending   [][]*Request
	sampQ     []*sim.Queue
	execQ     []*sim.Queue
	dones     []*sim.Event
	genProc   *sim.Proc
	ctrlProc  *sim.Proc
	rebProc   *sim.Proc
	sampProcs []*sim.Proc
	execProcs []*sim.Proc
	nextRound int
	nextID    int

	// whole-fleet crash state (router-driven Shutdown)
	dead     bool
	killedAt sim.Time

	// accounting
	arrived, shed int
	quotaRejected int
	rerouted      int
	rounds        int
	batchSum      int64
	crashes       []Recovery
	completed     []*Request
	latency       []*metrics.Histogram
	zeros         []float32

	// p3 strategy state: dimension-sliced features replace the row cache,
	// and the first layer runs as a partial-activation push exchange.
	p3       bool
	pushWire int64
}

// NewServer builds the serving fleet: machine, partitioned topology,
// partitioned feature cache, gated communicators and model replicas — the
// same data layout the trainer uses, now serving reads.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.Data
	n := d.NumGPUs()
	s := &Server{cfg: cfg, overhead: cfg.effectiveOverhead()}
	if cfg.Engine != nil {
		s.m = hw.NewMachineOn(cfg.Engine, n, cfg.GPU, cfg.CPU, cfg.LatencyScale)
	} else {
		s.m = hw.NewMachineScaled(n, cfg.GPU, cfg.CPU, cfg.LatencyScale)
		s.m.Eng.SetParallelism(cfg.Parallel)
	}
	s.tenants = NewTenantTable(cfg.Tenants)
	if cfg.SLO > 0 {
		s.goodput = metrics.NewGoodput(float64(cfg.GoodputWindow), float64(cfg.SLO))
	}
	if cfg.Tracer.Enabled() {
		s.m.SetTracer(cfg.Tracer)
		for g := 0; g < n; g++ {
			cfg.Tracer.NameLane(g, 20, "requests")
			cfg.Tracer.NameLane(g, 21, "serve rounds")
		}
		cfg.Tracer.NamePid(n, "frontend")
	}

	topoBudget := cfg.TopoCacheBudget
	if topoBudget <= 0 {
		topoBudget = cfg.GPU.MemBytes * 6 / 10
	}
	var topo graph.Topology = d.G
	if cfg.CompressTopology {
		topo = graph.Compress(d.G)
	}
	world, err := csp.NewWorldBudget(s.m, topo, d.Offsets, topoBudget)
	if err != nil {
		return nil, fmt.Errorf("serve: topology layout: %w", err)
	}
	s.world = world
	if cfg.OOC {
		hs, err := store.New(s.m.Eng, topo, d.G.NumNodes(), d.RowBytes(), store.Config{
			BlockNodes:   cfg.OOCBlockNodes,
			CacheBytes:   cfg.OOCBudget,
			Prefetch:     !cfg.OOCNoPrefetch,
			LatencyScale: cfg.LatencyScale,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: out-of-core store: %w", err)
		}
		s.hostStore = hs
		s.world.SetHostStore(hs)
	}

	kind, _ := strategy.Parse(cfg.Strategy) // validated above
	s.p3 = kind == strategy.KindP3
	if s.p3 {
		// Dimension-sliced layout: every GPU holds all rows of an F/world
		// column slice, so there is no hot/cold split and no row cache.
		s.store = featstore.BuildDimSliced(d.Feats, d.FeatDim, n)
	} else {
		budget := cfg.FeatureCacheBudget
		if budget <= 0 {
			budget = s.minFreeMem() * 9 / 10
		}
		s.store = featstore.BuildPartitioned(d.G, d.Feats, d.FeatDim, d.Offsets,
			budget, featstore.Policy(cfg.CachePolicy))
	}
	for g := 0; g < n; g++ {
		if err := s.m.GPUs[g].Reserve(s.store.CacheBytes(g)); err != nil {
			return nil, fmt.Errorf("serve: feature cache: %w", err)
		}
	}
	mcfg := cfg.CacheTune
	mcfg.Policy = cfg.DynamicCache
	s.cacheMgr = cache.New(s.store, d.G, d.Offsets, mcfg)
	if cfg.Tracer.Enabled() {
		s.cacheMgr.SetTracer(cfg.Tracer, n) // frontend lane
	}

	s.coord = pipeline.NewCoordinator(s.m.Eng, n, cfg.UseCCC, 2)
	s.coord.Tracer = func() *trace.Tracer { return s.m.GPUs[0].Tracer }
	s.execComm = comm.New(s.m)
	if cfg.UseCCC {
		s.world.Comm.SetGate(s.coord.Gate(samplerWorker))
		s.execComm.SetGate(s.coord.Gate(execWorker))
	}
	if cfg.RealCompute {
		for g := 0; g < n; g++ {
			// Identical replicas (same init seed) — any GPU serves any
			// request, as after BSP training.
			s.models = append(s.models, nn.NewModel(cfg.Model, cfg.Seed))
		}
	}
	s.workload = NewWorkload(d, cfg.Skew)
	if cfg.DriftEvery > 0 {
		s.workload.EnableDrift(cfg.DriftEvery, rng.Mix(cfg.Seed, 0xD21F7))
	}
	if len(cfg.Faults) > 0 {
		inj, err := fault.NewInjector(s.m, cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("serve: fault schedule: %w", err)
		}
		s.inj = inj
		s.view = inj.View()
		// Membership-aware collectives and leader failover: barriers release
		// on the live count, a death aborts in-flight rounds, and the lowest
		// live GPU takes over grant ordering.
		s.world.SetView(s.view)
		s.execComm.SetView(s.view)
		s.coord.SetView(s.view)
		s.cacheMgr.SetView(s.view)
		inj.OnCrash(func(p *sim.Proc, f fault.Fault) { s.onCrash(p, f.GPU) })
	}
	if s.cfg.Telemetry.Enabled() {
		s.registerTelemetry(n)
	}
	return s, nil
}

// registerTelemetry registers this server's scrape sources on the hub.
// Registration happens at build time, before the hub's first scrape, so
// fleets constructed together (including autoscaler standbys) all appear
// in the series set even if they start serving later. Closures guard
// against being sampled before Start wires the run state.
func (s *Server) registerTelemetry(n int) {
	h := s.cfg.Telemetry
	h.Gauge(s.pname("serve/queue_depth"), func(sim.Time) float64 {
		total := 0
		for _, q := range s.pending {
			total += len(q)
		}
		return float64(total)
	})
	h.Gauge(s.pname("serve/outstanding"), func(sim.Time) float64 {
		return float64(s.Outstanding())
	})
	h.Counter(s.pname("serve/arrived"), func(sim.Time) float64 {
		return float64(s.arrived)
	})
	h.Counter(s.pname("serve/shed"), func(sim.Time) float64 {
		return float64(s.shed)
	})
	h.Counter(s.pname("serve/completed"), func(sim.Time) float64 {
		return float64(len(s.completed))
	})
	for g := 0; g < n; g++ {
		dev := s.m.GPUs[g]
		h.Rate(s.pname(fmt.Sprintf("gpu%d/busy", g)), func(now sim.Time) float64 {
			return float64(dev.BusyAt(now))
		})
	}
	if !s.p3 {
		h.Gauge(s.pname("cache/hit_rate"), func(sim.Time) float64 {
			return s.cacheMgr.Stats().Tiers.HitRate()
		})
	}
	ctr := &s.m.Fabric.Counters
	h.Counter(s.pname("wire/sample_bytes"), func(sim.Time) float64 {
		return float64(ctr.TotalWire(hw.TrafficSample))
	})
	h.Counter(s.pname("wire/feature_bytes"), func(sim.Time) float64 {
		return float64(ctr.TotalWire(hw.TrafficFeature))
	})
	if s.hostStore != nil {
		h.Gauge(s.pname("store/resident_bytes"), func(sim.Time) float64 {
			return float64(s.hostStore.Stats().ResidentBytes)
		})
	}
	if s.goodput != nil {
		h.Gauge(s.pname("serve/goodput"), func(sim.Time) float64 {
			return s.goodput.Rate()
		})
	}
}

// alive reports whether GPU g still participates in serving.
func (s *Server) alive(g int) bool {
	return s.view == nil || s.view.Alive(g)
}

// onCrash is the degraded-mode fail-over, run in engine context at the crash
// instant (the membership view already reflects the death, and every
// in-flight collective has been voided). It stops the dead GPU's workers,
// drains its pipeline queues so the controller cannot wedge on them, and
// re-routes its admitted-but-undispatched requests to the next live GPU.
// Requests already dispatched to the dead GPU are lost (counted at report
// time); live GPUs' slices of those rounds complete normally.
func (s *Server) onCrash(p *sim.Proc, g int) {
	eng := s.m.Eng
	s.crashes = append(s.crashes, Recovery{GPU: g, At: p.Now()})
	s.cfg.Telemetry.RecordEvent(p.Now(), s.pname("degraded"),
		fmt.Sprintf("gpu %d crashed; re-routing to next live GPU", g))
	if s.sampProcs != nil {
		eng.Kill(s.sampProcs[g])
		eng.Kill(s.execProcs[g])
		for _, q := range []*sim.Queue{s.sampQ[g], s.execQ[g]} {
			q := q
			eng.GoDaemon(fmt.Sprintf("fault/drain-gpu%d", g), func(dp *sim.Proc) {
				for {
					if _, ok := q.Get(dp); !ok {
						return
					}
				}
			})
		}
	}
	if s.pending != nil {
		t := s.view.NextLive(g)
		for _, r := range s.pending[g] {
			if len(s.pending[t]) >= s.cfg.QueueDepth {
				s.shed++
				s.cfg.Telemetry.ObserveShed(p.Now())
				continue
			}
			r.GPU = t
			s.pending[t] = append(s.pending[t], r)
			s.rerouted++
		}
		s.pending[g] = nil
		s.signal()
	}
}

func (s *Server) minFreeMem() int64 {
	free := s.m.GPUs[0].MemFree()
	for _, g := range s.m.GPUs[1:] {
		if f := g.MemFree(); f < free {
			free = f
		}
	}
	return free
}

// Machine exposes the simulated fleet (for utilization inspection).
func (s *Server) Machine() *hw.Machine { return s.m }

// Store exposes the feature placement (for cache assertions).
func (s *Server) Store() *featstore.Store { return s.store }

// Workload exposes the popularity model.
func (s *Server) Workload() *Workload { return s.workload }

// ExpectedCacheHitRate is the weight-fraction of feature reads the GPU
// caches can serve under this workload's popularity distribution.
func (s *Server) ExpectedCacheHitRate() float64 {
	return s.store.CachedFraction(s.workload.Weights())
}

// pname prefixes a process name with the server's fleet name, if any.
func (s *Server) pname(base string) string {
	if s.cfg.Name == "" {
		return base
	}
	return s.cfg.Name + "/" + base
}

// Start spawns the serving pipeline's processes on the engine without running
// it: the generator (unless External), the frontend controller, per-GPU
// sampler and executor workers, the fault injector and the cache-rebalance
// daemon. Callers that share an engine across servers Start each of them and
// then drive Engine.Run themselves, finishing each with Finish.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	n := s.cfg.Data.NumGPUs()
	eng := s.m.Eng
	s.wake = eng.NewEvent()
	s.pending = make([][]*Request, n)
	for g := 0; g < n; g++ {
		s.sampQ = append(s.sampQ, eng.NewQueue(1))
		s.execQ = append(s.execQ, eng.NewQueue(s.cfg.QueueCap))
		s.latency = append(s.latency, metrics.New())
		s.dones = append(s.dones, eng.NewEvent())
	}
	if !s.cfg.External {
		s.genProc = eng.Go(s.pname("serve/generator"), s.generator)
	}
	s.ctrlProc = eng.Go(s.pname("serve/controller"), s.controller)
	for g := 0; g < n; g++ {
		g := g
		s.sampProcs = append(s.sampProcs,
			eng.Go(s.pname(fmt.Sprintf("gpu%d/serve-sampler", g)), func(p *sim.Proc) { s.sampler(p, g) }))
		s.execProcs = append(s.execProcs,
			eng.Go(s.pname(fmt.Sprintf("gpu%d/serve-exec", g)), func(p *sim.Proc) { s.executor(p, g) }))
	}
	if s.inj != nil {
		s.inj.Arm()
	}
	if s.cacheMgr.Dynamic() {
		// Daemon: rebalances happen while request work is in flight, but a
		// drained fleet does not stay alive just to keep adapting.
		s.rebProc = eng.GoDaemon(s.pname("cache/rebalance"), func(p *sim.Proc) {
			for {
				p.Sleep(s.cfg.RebalanceEvery)
				s.cacheMgr.Rebalance(p, s.m.Fabric)
			}
		})
	}
	// Idempotent: in fleet mode every replica shares one hub and the first
	// Start spawns the scraper daemon.
	s.cfg.Telemetry.Start(eng)
}

// Finish validates pipeline completion and builds the report after the
// engine has run to quiescence at virtual time end.
func (s *Server) Finish(end sim.Time) (*Report, error) {
	if !s.dead {
		for g, d := range s.dones {
			if !s.alive(g) {
				continue // killed mid-run; its dispatched requests are lost
			}
			if !d.Fired() {
				return nil, fmt.Errorf("serve: GPU %d executor did not finish", g)
			}
		}
	}
	return s.report(end), nil
}

// Run executes the serving simulation to completion and reports results.
// A Server is single-use: Run consumes the virtual machine.
func (s *Server) Run() (*Report, error) {
	s.Start()
	end, err := s.m.Eng.Run()
	if err != nil {
		return nil, err
	}
	return s.Finish(end)
}

// Outstanding is the number of admitted requests not yet completed: queued in
// admission plus dispatched into the sample/execute pipeline. It is the
// least-loaded routing signal of the fleet router.
func (s *Server) Outstanding() int {
	n := 0
	for _, q := range s.pending {
		n += len(q)
	}
	return n + int(s.batchSum) - len(s.completed)
}

// Dead reports whether the whole server was killed by Shutdown.
func (s *Server) Dead() bool { return s.dead }

// targetGPU resolves the admission queue for a node: its patch owner, or the
// next live GPU when the owner is dead (counted as a reroute).
func (s *Server) targetGPU(node graph.NodeID) int {
	g := s.workload.Owner(node)
	if !s.alive(g) {
		g = s.view.NextLive(g)
		s.rerouted++
	}
	return g
}

// CanAdmit reports whether a request for node would currently be admitted
// (its target GPU's queue has room). Routers call it before Admit so that a
// rejected probe does not inflate this server's arrival accounting.
func (s *Server) CanAdmit(node graph.NodeID) bool {
	if s.dead || !s.started {
		return false
	}
	g := s.workload.Owner(node)
	if !s.alive(g) {
		g = s.view.NextLive(g)
	}
	return len(s.pending[g]) < s.cfg.QueueDepth
}

// Admit injects one externally generated request (router mode) at virtual
// time now and reports whether it was admitted. The request is owned by this
// server from admission to completion; a false return means the target GPU's
// admission queue was full and the request was shed here.
func (s *Server) Admit(now sim.Time, id int, node graph.NodeID, tenant int) bool {
	if s.dead {
		return false
	}
	s.arrived++
	g := s.targetGPU(node)
	if len(s.pending[g]) >= s.cfg.QueueDepth {
		s.shed++
		s.cfg.Telemetry.ObserveShed(now)
		if s.tenants != nil {
			s.tenants.Reject(tenant)
		}
		return false
	}
	s.pending[g] = append(s.pending[g], &Request{
		ID: id, Node: node, GPU: g, Tenant: tenant, Arrival: now, Pred: -1,
	})
	if s.tenants != nil {
		s.tenants.Accept(tenant)
	}
	s.traceDepth(now)
	s.signal()
	return true
}

// CloseIntake marks the external arrival stream finished (router mode): the
// controller drains the remaining admitted requests and the pipeline shuts
// down. Must be called in engine context.
func (s *Server) CloseIntake() {
	if s.genDone {
		return
	}
	s.genDone = true
	s.signal()
}

// Shutdown kills the whole server at the current instant — the fleet-level
// crash of the router's fault model. Every worker process is killed (their
// held resources release as they unwind), the fault injector and rebalance
// daemon stop, and the admitted-but-undispatched requests are returned to
// the caller for re-routing to surviving fleets. Requests already dispatched
// into the pipeline are lost (Report.Lost). Idempotent.
func (s *Server) Shutdown(p *sim.Proc) []*Request {
	if s.dead {
		return nil
	}
	s.dead = true
	s.killedAt = p.Now()
	s.cfg.Telemetry.RecordEvent(p.Now(), s.pname("fleet-killed"),
		"whole-server crash: workers killed, admitted requests re-routed")
	eng := s.m.Eng
	if s.inj != nil {
		s.inj.Stop()
	}
	for _, pr := range []*sim.Proc{s.genProc, s.ctrlProc, s.rebProc} {
		if pr != nil {
			eng.Kill(pr)
		}
	}
	for g := range s.sampProcs {
		eng.Kill(s.sampProcs[g])
		eng.Kill(s.execProcs[g])
	}
	var orphans []*Request
	for g := range s.pending {
		orphans = append(orphans, s.pending[g]...)
		s.pending[g] = nil
	}
	return orphans
}

// Serve builds and runs a server in one call.
func Serve(cfg Config) (*Report, error) {
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// signal wakes the controller: trigger-and-replace, the event-based
// condition variable pattern (events are one-shot).
func (s *Server) signal() {
	old := s.wake
	s.wake = s.m.Eng.NewEvent()
	old.Trigger()
}

// generator is the open-loop arrival process: Poisson gaps at cfg.Rate until
// the horizon, each arrival routed to its owner GPU's admission queue or
// shed when that queue is full.
func (s *Server) generator(p *sim.Proc) {
	cfg := s.cfg
	r := rng.New(rng.Mix(cfg.Seed, 0xA221A1))
	// Tenant assignment draws from its own stream so configuring tenants
	// perturbs neither arrival timing nor node popularity.
	tr := rng.New(rng.Mix(cfg.Seed, 0x7E4A47))
	n := cfg.Data.NumGPUs()
	for {
		p.Sleep(sim.Time(r.Exp(cfg.Rate)))
		if p.Now() >= cfg.Duration {
			break
		}
		node := s.workload.Draw(r, p.Now())
		tenant := 0
		if s.tenants != nil {
			tenant = s.tenants.Draw(tr)
		}
		s.arrived++
		if s.tenants != nil && !s.tenants.TakeToken(tenant, p.Now()) {
			// Quota rejection: admission control turned the request away
			// before it reached any queue.
			s.shed++
			s.cfg.Telemetry.ObserveShed(p.Now())
			s.quotaRejected++
			s.tenants.Reject(tenant)
			cfg.Tracer.Instant("quota-reject", "serve", n, 0, float64(p.Now()), "t",
				map[string]string{"tenant": s.tenants.Name(tenant)})
			continue
		}
		g := s.targetGPU(node)
		if len(s.pending[g]) >= cfg.QueueDepth {
			s.shed++
			s.cfg.Telemetry.ObserveShed(p.Now())
			if s.tenants != nil {
				s.tenants.Reject(tenant)
			}
			cfg.Tracer.Instant("shed", "serve", n, 0, float64(p.Now()), "t",
				map[string]string{"node": fmt.Sprint(node), "gpu": fmt.Sprint(g)})
			continue
		}
		s.pending[g] = append(s.pending[g], &Request{
			ID: s.nextID, Node: node, GPU: g, Tenant: tenant, Arrival: p.Now(), Pred: -1,
		})
		s.nextID++
		if s.tenants != nil {
			s.tenants.Accept(tenant)
		}
		s.traceDepth(p.Now())
		s.signal()
	}
	s.genDone = true
	s.signal()
}

// traceDepth samples every GPU's admission-queue depth as one counter event.
func (s *Server) traceDepth(now sim.Time) {
	tr := s.cfg.Tracer
	if !tr.Enabled() {
		return
	}
	vals := make(map[string]float64, len(s.pending))
	for g := range s.pending {
		vals[fmt.Sprintf("gpu%d", g)] = float64(len(s.pending[g]))
	}
	tr.Counter("admission-queue", len(s.pending), float64(now), vals)
}

// controller is the frontend micro-batcher: it watches the admission queues
// and dispatches collective rounds according to the batching policy.
func (s *Server) controller(p *sim.Proc) {
	for {
		total := 0
		for g := range s.pending {
			total += len(s.pending[g])
		}
		if total == 0 {
			if s.genDone {
				break
			}
			s.wake.Wait(p)
			continue
		}
		flush, deadline := s.flushDecision(p.Now())
		if !flush && !s.genDone {
			if deadline < 0 {
				s.wake.Wait(p) // no deadline: wait for arrivals (BatchFixed)
				continue
			}
			// Only sleep if the timer actually advances virtual time;
			// a deadline at (or within one float ulp of) now must flush
			// instead, or the controller would spin at a frozen instant.
			if d := deadline - p.Now(); d > 0 && p.Now()+d > p.Now() {
				s.wake.WaitTimeout(p, d)
				continue
			}
		}
		// flush — or the arrival process ended, in which case partial
		// batches drain so no admitted request is stranded.
		s.dispatch(p)
	}
	for g := range s.sampQ {
		s.sampQ[g].Close()
	}
}

// flushDecision applies the batching policy: whether to dispatch now, and if
// not, the virtual deadline at which to re-check (-1 = none, wait for
// arrivals).
func (s *Server) flushDecision(now sim.Time) (flush bool, deadline sim.Time) {
	cfg := s.cfg
	switch cfg.Batching {
	case BatchSingle:
		return true, -1
	case BatchFixed:
		for g := range s.pending {
			if len(s.pending[g]) >= cfg.MaxBatch {
				return true, -1
			}
		}
		return false, -1
	default: // BatchDynamic
		oldest := sim.Time(-1)
		for g := range s.pending {
			if len(s.pending[g]) >= cfg.MaxBatch {
				return true, -1
			}
			if len(s.pending[g]) > 0 {
				if a := s.pending[g][0].Arrival; oldest < 0 || a < oldest {
					oldest = a
				}
			}
		}
		// Compare against the same expression used as the wake deadline
		// (oldest+MaxWait, not now-oldest vs MaxWait) so a timer that fires
		// exactly at the deadline is always seen as expired.
		if oldest >= 0 && now >= oldest+cfg.MaxWait {
			return true, -1
		}
		return false, oldest + cfg.MaxWait
	}
}

// dispatch takes up to MaxBatch (or 1 for BatchSingle) requests off every
// admission queue and hands the round to all samplers. The Put into each
// capacity-1 sampler queue is the backpressure point: the controller stalls
// while both pipeline slots are occupied.
func (s *Server) dispatch(p *sim.Proc) {
	cfg := s.cfg
	take := cfg.MaxBatch
	if cfg.Batching == BatchSingle {
		take = 1
	}
	rd := &round{
		id:    s.nextRound,
		seed:  rng.Mix(cfg.Seed, 0x5E12E, uint64(s.nextRound)),
		start: p.Now(),
		reqs:  make([][]*Request, len(s.pending)),
	}
	s.nextRound++
	dispatched := 0
	for g := range s.pending {
		k := take
		if k > len(s.pending[g]) {
			k = len(s.pending[g])
		}
		rd.reqs[g] = s.pending[g][:k:k]
		s.pending[g] = s.pending[g][k:]
		dispatched += k
		s.batchSum += int64(k)
	}
	s.rounds++
	s.traceDepth(p.Now())
	for g := range s.sampQ {
		if s.alive(g) {
			s.sampQ[g].Put(p, rd)
		}
	}
}

// retryBackoff is the deterministic pause before re-running a round whose
// collective attempt was aborted by a membership change (scaled linearly by
// attempt number). It models the reinitialisation of the communicator under
// the reduced fleet.
const retryBackoff sim.Time = 50e-6

// runRound executes one retryable unit of collective work: body runs under a
// membership generation opened by begin, and is re-run from scratch (after a
// deterministic backoff) whenever a mid-round death voids the attempt. The
// round-level retry is consistent because every collective ends in a single
// barrier release: at any crash instant, either all live ranks already passed
// the round's last collective (only local work remains) or all of them abort
// and repeat the round together under the new membership. Kill-unwinds of the
// dead GPU's own workers (not fault.Aborted) pass through untouched.
func runRound(p *sim.Proc, begin func(), body func()) {
	for attempt := 0; ; attempt++ {
		if func() (done bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(fault.Aborted); !ok {
						panic(r)
					}
					p.Sleep(retryBackoff * sim.Time(attempt+1))
				}
			}()
			begin()
			body()
			return true
		}() {
			return
		}
	}
}

// sampler is GPU g's sampling worker: every round is a collective CSP call
// (idle GPUs pass empty seed sets but still serve remote tasks), seeded by
// the controller's round seed so all ranks agree without a seed exchange.
func (s *Server) sampler(p *sim.Proc, g int) {
	for {
		v, ok := s.sampQ[g].Get(p)
		if !ok {
			s.execQ[g].Close()
			return
		}
		rd := v.(*round)
		runRound(p, func() { s.world.Comm.Begin(g) }, func() {
			p.Sleep(s.overhead)
			seeds := make([]graph.NodeID, len(rd.reqs[g]))
			for i, r := range rd.reqs[g] {
				seeds[i] = r.Node
			}
			mb := s.world.SampleBatchShared(p, g, seeds, s.cfg.Sample, rd.seed)
			s.execQ[g].Put(p, &execItem{rd: rd, mb: mb, sampledAt: p.Now()})
		})
	}
}

// executor is GPU g's execution worker: feature load (local gather + NVLink
// all-to-all + UVA, in parallel) then the forward-only pass, completing
// every request of the round.
func (s *Server) executor(p *sim.Proc, g int) {
	for {
		v, ok := s.execQ[g].Get(p)
		if !ok {
			s.dones[g].Trigger()
			return
		}
		it := v.(*execItem)
		var preds []int32
		// Tier counts accumulate per attempt and commit only on success (the
		// report counts each served request's rows once); the fabric byte
		// counters have no such rollback — an aborted round's wire traffic
		// really crossed the links. The manager's hotness counters likewise
		// record every attempt inside Split: the accesses are real.
		var rc cache.Tiers
		var loaded sim.Time
		runRound(p, func() {
			s.execComm.Begin(g)
			rc = cache.Tiers{}
		}, func() {
			p.Sleep(s.overhead)
			var feats []float32
			if s.p3 {
				feats = s.loadFeaturesP3(p, g, it.mb)
			} else {
				feats = s.loadFeatures(p, g, it.mb, &rc)
			}
			loaded = p.Now()
			preds = s.forward(p, g, it.mb, feats)
		})
		s.cacheMgr.Account(g, rc)
		now := p.Now()
		batch := len(it.rd.reqs[g])
		for i, req := range it.rd.reqs[g] {
			req.Start = it.rd.start
			req.Done = now
			req.Round = it.rd.id
			req.Batch = batch
			if preds != nil {
				req.Pred = preds[i]
			}
			s.latency[g].Observe(float64(req.Latency()))
			if s.goodput != nil {
				s.goodput.Observe(float64(now), float64(req.Latency()))
			}
			s.completed = append(s.completed, req)
			s.cfg.Telemetry.ObserveRequest(telemetry.RequestSample{
				ID: req.ID, GPU: g, Round: it.rd.id,
				Arrival: req.Arrival, Dispatch: it.rd.start,
				Sampled: it.sampledAt, Loaded: loaded, Done: now,
			})
			if s.cfg.OnComplete != nil {
				s.cfg.OnComplete(req)
			}
			s.cfg.Tracer.Complete(fmt.Sprintf("req %d", req.ID), "request",
				g, 20, float64(req.Arrival), float64(now),
				map[string]string{"node": fmt.Sprint(req.Node), "round": fmt.Sprint(req.Round)})
		}
		s.cfg.Tracer.Complete(fmt.Sprintf("round %d", it.rd.id), "serve",
			g, 21, float64(it.rd.start), float64(now),
			map[string]string{"batch": fmt.Sprint(batch)})
	}
}

// loadFeatures mirrors the trainer's loader stage: split by placement, cold
// rows via UVA concurrently with the NVLink hot-row exchange, then assemble.
// The cache manager's Split both records row hotness and re-routes rows
// cached on a dead GPU to host memory (UVA) — the shard is unreachable but
// the master copy in host RAM is not.
func (s *Server) loadFeatures(p *sim.Proc, g int, mb *sample.MiniBatch, rc *cache.Tiers) []float32 {
	d := s.cfg.Data
	dev := s.m.GPUs[g]
	ids := mb.InputNodes()
	local, remote, host := s.cacheMgr.Split(ids, g)
	rc.Add(cache.CountTiers(local, remote, host))
	n := s.execComm.N

	// Feature tier of the frontier walk: prefetch the host rows' blocks
	// (non-blocking, MaxInflight-way parallel) so spill reads overlap the
	// NVLink exchange instead of serialising in the UVA side path.
	if s.hostStore != nil && len(host) > 0 {
		s.hostStore.PrefetchFeatures(host)
	}

	uvaDone := s.m.Eng.NewEvent()
	if len(host) > 0 {
		s.m.Eng.Go(fmt.Sprintf("gpu%d/serve-uva", g), func(cp *sim.Proc) {
			// Host rows must be block-cache-resident before UVA reads them;
			// the out-of-core tier stalls this side path on spill fetches.
			if s.hostStore != nil {
				s.hostStore.TouchFeatures(cp, host)
			}
			dev.UVARead(cp, s.m.Fabric, int64(len(host)), d.RowBytes(), hw.TrafficFeature)
			uvaDone.Trigger()
		})
	} else {
		uvaDone.Trigger()
	}
	if len(local) > 0 {
		dev.RunKernel(p, hw.KernelGather, int64(len(local))*int64(d.RowBytes()))
	}
	if n > 1 {
		reqIn := comm.AllToAll(s.execComm, p, g, remote, comm.Raw(4, hw.TrafficFeature))
		var served int64
		for q := 0; q < n; q++ {
			served += int64(len(reqIn[q]))
		}
		if served > 0 {
			dev.RunKernel(p, hw.KernelGather, served*int64(d.RowBytes()))
		}
		replies := make([][]float32, n)
		for q := 0; q < n; q++ {
			replies[q] = s.zeroRows(len(reqIn[q]))
		}
		comm.AllToAll(s.execComm, p, g, replies, comm.Compressed(s.cfg.FeatCodec, hw.TrafficFeature))
	}
	uvaDone.Wait(p)
	dev.RunKernel(p, hw.KernelGather, int64(len(ids))*int64(d.RowBytes()))
	if s.cfg.RealCompute {
		return train.GatherFeatures(d, mb)
	}
	return nil
}

// loadFeaturesP3 is the executor's feature stage under the p3 strategy: the
// first layer's partial-activation push exchange (strategy.P3Forward) stands
// where the hot/cold row gather would be. Under RealCompute the full-width
// features are still materialised so the forward math is canonical.
func (s *Server) loadFeaturesP3(p *sim.Proc, g int, mb *sample.MiniBatch) []float32 {
	h0 := s.cfg.Model.Hidden
	if s.cfg.Model.Layers == 1 {
		h0 = s.cfg.Model.Classes
	}
	fst := strategy.P3Forward(p, s.m, s.execComm, g, s.store, s.cfg.Model.Arch,
		h0, s.cfg.FeatCodec, mb.InputNodes(), s.zeroAct)
	s.pushWire += fst.PushWire
	if s.execComm.N > 1 {
		dev := s.m.GPUs[g]
		dev.Tracer.Counter("p3 push", dev.ID, float64(p.Now()), map[string]float64{
			"bytes": float64(s.pushWire),
		})
	}
	if s.cfg.RealCompute {
		return train.GatherFeatures(s.cfg.Data, mb)
	}
	return nil
}

// forward runs the inference pass and returns per-seed argmax predictions
// (nil in cost-only mode).
func (s *Server) forward(p *sim.Proc, g int, mb *sample.MiniBatch, feats []float32) []int32 {
	if len(mb.Seeds) == 0 {
		return nil
	}
	dev := s.m.GPUs[g]
	dev.RunKernel(p, hw.KernelGather, nn.NominalAggBytes(s.cfg.Model, mb))
	flops := nn.NominalForwardFlops(s.cfg.Model, mb)
	if s.p3 {
		// The first layer's dense work already ran as partial projections in
		// the push exchange; charge only the residual here.
		flops = strategy.P3ResidualForwardFlops(s.cfg.Model, mb)
	}
	dev.RunKernel(p, hw.KernelCompute, flops)
	if !s.cfg.RealCompute {
		return nil
	}
	logits, _ := s.models[g].Forward(mb, feats)
	preds := make([]int32, logits.R)
	for i := 0; i < logits.R; i++ {
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		preds[i] = int32(best)
	}
	return preds
}

func (s *Server) zeroRows(rows int) []float32 {
	need := rows * s.cfg.Data.FeatDim
	if cap(s.zeros) < need {
		s.zeros = make([]float32, need)
	}
	return s.zeros[:need]
}

// zeroAct returns a zero-backed payload standing in for n activation values
// (shared backing with zeroRows; the payloads only carry timing).
func (s *Server) zeroAct(n int) []float32 {
	if cap(s.zeros) < n {
		s.zeros = make([]float32, n)
	}
	return s.zeros[:n]
}
