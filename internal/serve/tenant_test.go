package serve

import (
	"testing"
)

func TestParseTenants(t *testing.T) {
	specs, err := ParseTenants("free:4:500,pro:1,batch:2:100:50")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantSpec{
		{Name: "free", Weight: 4, Rate: 500},
		{Name: "pro", Weight: 1},
		{Name: "batch", Weight: 2, Rate: 100, Burst: 50},
	}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	// Round-trip through FormatTenants.
	again, err := ParseTenants(FormatTenants(specs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("round-trip spec %d = %+v, want %+v", i, again[i], want[i])
		}
	}
	for _, bad := range []string{":2", "a:1,a:2", "a:-1", "a:1:2:3:4", "a:0"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
	if specs, err := ParseTenants(""); err != nil || specs != nil {
		t.Fatalf("empty spec: %v, %v", specs, err)
	}
}

// TestServeTenantQuota: a rate-capped tenant's overflow is rejected by its
// token bucket (counted into Shed and QuotaRejected), per-tenant counts cover
// every arrival, and request tenancy is recorded on completions.
func TestServeTenantQuota(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Tenants = []TenantSpec{
		{Name: "free", Weight: 4, Rate: 500},
		{Name: "pro", Weight: 1},
	}
	rep, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if rep.Completed+rep.Shed != rep.Arrived {
		t.Fatalf("accounting: completed %d + shed %d != arrived %d",
			rep.Completed, rep.Shed, rep.Arrived)
	}
	if rep.QuotaRejected == 0 {
		t.Fatal("capped tenant never quota-rejected at 4/5 of 4000 req/s vs 500 req/s")
	}
	if rep.QuotaRejected > rep.Shed {
		t.Fatalf("quota rejections %d exceed shed %d", rep.QuotaRejected, rep.Shed)
	}
	var sum int
	for _, tc := range rep.Tenants {
		sum += tc.Admitted + tc.Rejected
		if tc.Name == "pro" && tc.Rejected > rep.Shed-rep.QuotaRejected {
			t.Fatalf("uncapped tenant rejected %d beyond queue sheds", tc.Rejected)
		}
	}
	if sum != rep.Arrived {
		t.Fatalf("tenant counts sum to %d, arrived %d", sum, rep.Arrived)
	}
	seen := map[int]bool{}
	for _, req := range rep.Requests {
		seen[req.Tenant] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("completions do not span both tenants: %v", seen)
	}
}

// TestServeTenantsPreserveTiming: the tenant stream is independent of arrival
// timing, so configuring unlimited tenants must not change which requests
// arrive or when they complete.
func TestServeTenantsPreserveTiming(t *testing.T) {
	base, err := Serve(testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 4)
	cfg.Tenants = []TenantSpec{{Name: "a", Weight: 1}, {Name: "b", Weight: 3}}
	tn, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Arrived != tn.Arrived || base.Completed != tn.Completed || base.Makespan != tn.Makespan {
		t.Fatalf("tenanting perturbed the run: %d/%d/%v vs %d/%d/%v",
			base.Arrived, base.Completed, base.Makespan, tn.Arrived, tn.Completed, tn.Makespan)
	}
	for i := range base.Requests {
		a, b := base.Requests[i], tn.Requests[i]
		if a.ID != b.ID || a.Node != b.Node || a.Arrival != b.Arrival || a.Done != b.Done {
			t.Fatalf("request %d differs under tenanting:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestServeGoodput: with an SLO the report carries a goodput counter that
// covers every completion, agrees with the latency histogram, and lands in
// the run-report document.
func TestServeGoodput(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.SLO = 5e-3
	rep, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goodput == nil {
		t.Fatal("no goodput counter with SLO set")
	}
	if rep.Goodput.Total() != uint64(rep.Completed) {
		t.Fatalf("goodput observed %d completions, report has %d",
			rep.Goodput.Total(), rep.Completed)
	}
	var within uint64
	for _, req := range rep.Requests {
		if req.Latency() <= cfg.SLO {
			within++
		}
	}
	if rep.Goodput.Good() != within {
		t.Fatalf("goodput good %d != %d requests within SLO", rep.Goodput.Good(), within)
	}
	rr := rep.RunReport(ReportMeta{GPUs: 4, Seed: cfg.Seed})
	if rr.Serving.Goodput == nil || rr.Serving.Goodput.Good != within {
		t.Fatalf("run report goodput missing or wrong: %+v", rr.Serving.Goodput)
	}
	if err := rr.Validate(); err != nil {
		t.Fatal(err)
	}
}
