package serve

import (
	"testing"

	"repro/internal/fault"
)

// TestServeDegradedSurvivesCrash: a GPU crash mid-run switches the fleet to
// degraded mode — the dead GPU's requests re-route, in-flight rounds retry
// under the reduced membership, and the fleet keeps answering. Crashing GPU 0
// also exercises CCC leader failover (the grant leader is the lowest live
// rank).
func TestServeDegradedSurvivesCrash(t *testing.T) {
	cfg := testConfig(t, 4)
	crashAt := 0.02
	cfg.Faults = []fault.Fault{{Kind: fault.Crash, GPU: 0, At: 0.02}}
	rep, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if len(rep.DeadGPUs) != 1 || rep.DeadGPUs[0] != 0 {
		t.Fatalf("dead GPUs = %v, want [0]", rep.DeadGPUs)
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(rep.Recoveries))
	}
	rec := rep.Recoveries[0]
	if rec.GPU != 0 || float64(rec.At) != crashAt {
		t.Errorf("recovery %+v, want crash of gpu0 at %v", rec, crashAt)
	}
	if rec.MTTR <= 0 {
		t.Errorf("MTTR %v: fleet never completed a request after the crash", rec.MTTR)
	}
	// The fleet must keep answering after the crash, and nothing may land on
	// the dead GPU.
	after := 0
	for _, req := range rep.Requests {
		if req.Done > rec.At {
			after++
			if req.GPU == 0 {
				t.Fatalf("request %d completed on dead GPU 0", req.ID)
			}
		}
	}
	if after == 0 {
		t.Fatal("no requests completed after the crash")
	}
	if rep.Rerouted == 0 {
		t.Error("no requests rerouted away from the dead GPU")
	}
	// Every arrival is accounted for exactly once: answered, shed at
	// admission, or lost with the dead GPU.
	if rep.Completed+rep.Shed+rep.Lost != rep.Arrived {
		t.Fatalf("accounting: completed %d + shed %d + lost %d != arrived %d",
			rep.Completed, rep.Shed, rep.Lost, rep.Arrived)
	}
	if rep.Lost < 0 {
		t.Fatalf("negative lost count %d", rep.Lost)
	}
}

// TestServeDegradedDeterministic: degraded-mode runs are as reproducible as
// healthy ones — same seed and fault schedule give a bitwise-identical
// per-request trace, loss/reroute accounting and recovery records.
func TestServeDegradedDeterministic(t *testing.T) {
	mk := func() *Report {
		cfg := testConfig(t, 4)
		cfg.RealCompute = true
		cfg.Faults = []fault.Fault{{Kind: fault.Crash, GPU: 2, At: 0.015}}
		rep, err := Serve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(), mk()
	if len(a.Recoveries) != 1 || len(b.Recoveries) != 1 || a.Recoveries[0] != b.Recoveries[0] {
		t.Fatalf("recovery records differ: %+v vs %+v", a.Recoveries, b.Recoveries)
	}
	if a.Makespan != b.Makespan || a.Completed != b.Completed ||
		a.Shed != b.Shed || a.Lost != b.Lost || a.Rerouted != b.Rerouted {
		t.Fatalf("degraded accounting differs:\n%s\n---\n%s", a, b)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if *ra != *rb {
			t.Fatalf("request %d differs:\n  %+v\n  %+v", i, *ra, *rb)
		}
	}
}

// TestServeLinkFaultsSlowButComplete: transient link faults (outage and
// degradation) delay serving without changing what is answered.
func TestServeLinkFaultsSlowButComplete(t *testing.T) {
	base := testConfig(t, 4)
	clean, err := Serve(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 4)
	cfg.Faults = []fault.Fault{
		{Kind: fault.LinkDown, GPU: 0, Peer: 1, At: 0.01, Duration: 0.01},
		{Kind: fault.LinkDegrade, GPU: 2, Peer: 3, At: 0.02, Duration: 0.02, Factor: 4},
	}
	faulty, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty.DeadGPUs) != 0 || len(faulty.Recoveries) != 0 {
		t.Fatalf("link faults must not kill GPUs: dead %v recoveries %v",
			faulty.DeadGPUs, faulty.Recoveries)
	}
	if faulty.Completed == 0 {
		t.Fatal("no requests completed under link faults")
	}
	if faulty.Completed+faulty.Shed != faulty.Arrived {
		t.Fatalf("accounting: completed %d + shed %d != arrived %d",
			faulty.Completed, faulty.Shed, faulty.Arrived)
	}
	if faulty.Latency.Mean() <= clean.Latency.Mean() {
		t.Errorf("link faults did not raise mean latency: %.3fms vs clean %.3fms",
			1e3*faulty.Latency.Mean(), 1e3*clean.Latency.Mean())
	}
	t.Logf("clean mean %.3fms, faulty mean %.3fms",
		1e3*clean.Latency.Mean(), 1e3*faulty.Latency.Mean())
}
