package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
)

// Report summarises one serving run. All quantities are deterministic
// functions of the Config (same seed → bitwise-identical report, including
// every per-request latency in Requests).
type Report struct {
	// Horizon is the configured arrival window; Makespan the virtual time
	// at which the last round drained.
	Horizon  sim.Time
	Makespan sim.Time
	// Offered is the configured arrival rate (req/s); Throughput the
	// completed-request rate over the makespan.
	Offered    float64
	Throughput float64

	Arrived   int
	Completed int
	Shed      int
	Rounds    int
	// MeanBatch is the mean number of requests per round per GPU slot that
	// carried at least one request.
	MeanBatch float64

	// Latency is the fleet-wide end-to-end latency distribution (seconds);
	// PerGPU the per-GPU components it was merged from.
	Latency *metrics.Histogram
	PerGPU  []*metrics.Histogram

	// Feature-read placement counts across all rounds (rows): the fleet
	// totals of Tiers. Kept as flat fields for existing consumers; the tiered
	// breakdown (per requesting GPU) is in PerGPUTiers.
	LocalRows, RemoteRows, HostRows int64
	// Tiers is the fleet-total tiered read accounting; PerGPUTiers the
	// per-requesting-GPU components it sums from.
	Tiers       cache.Tiers
	PerGPUTiers []cache.Tiers
	// ExpectedHitRate is the popularity-weighted fraction of reads the GPU
	// caches should serve under this workload's phase-0 popularity
	// (featstore.CachedFraction).
	ExpectedHitRate float64

	// Adaptive-cache accounting (zero under the static policy).
	CachePolicy    cache.Policy
	Rebalances     int
	PromotedRows   int64
	RebalanceBytes int64
	RebalanceTime  sim.Time

	// StoreStats is the out-of-core tier's accounting (zero without
	// Config.OOC).
	StoreStats store.Stats

	// Execution-strategy accounting ("dsp" unless Config.Strategy picked
	// another). Under p3 the tier counts above stay zero — every read lands in
	// the local dimension slice — and PushWire carries the partial-activation
	// exchange volume instead.
	Strategy   string
	FeatureDim int
	SliceDims  []int
	PushWire   int64

	// Wire traffic totals accumulated over the run (wire bytes) and the
	// per-traffic-class codec accounting of the run's communicators.
	SampleWire, FeatureWire int64
	Compression             map[hw.TrafficClass]comm.CompressionStats

	// Tenants is the per-tenant admission outcome (empty without
	// Config.Tenants). Admitted+Rejected summed over tenants equals Arrived.
	Tenants []TenantCount
	// QuotaRejected counts arrivals turned away by per-tenant token buckets
	// (a subset of Shed).
	QuotaRejected int

	// Goodput is the windowed within-SLO completion counter (nil without
	// Config.SLO); SLO echoes the configured objective.
	Goodput *metrics.Goodput
	SLO     sim.Time

	// Requests holds every completed request sorted by ID — the per-request
	// latency trace used by the determinism tests.
	Requests []*Request

	// Killed marks a whole-server crash (router fleet fault): the fleet died
	// at KilledAt, its undispatched requests were handed back for re-routing
	// and its dispatched ones are in Lost.
	Killed   bool
	KilledAt sim.Time

	// Degraded-mode accounting (empty for fault-free runs).
	//
	// DeadGPUs lists GPUs that crashed mid-run. Rerouted counts requests
	// redirected away from a dead owner (both admitted-then-rescued and
	// arrivals after the crash). Lost counts requests that were dispatched to
	// a GPU that died before completing them — admitted but never answered.
	DeadGPUs   []int
	Rerouted   int
	Lost       int
	Recoveries []Recovery
}

// Recovery records one crash the serving fleet absorbed. MTTR is the
// degraded-mode recovery time: from the crash instant until the fleet next
// completed a request (-1 if it never did).
type Recovery struct {
	GPU  int
	At   sim.Time
	MTTR sim.Time
}

func (s *Server) report(end sim.Time) *Report {
	cs := s.cacheMgr.Stats()
	r := &Report{
		Horizon:         s.cfg.Duration,
		Makespan:        end,
		Offered:         s.cfg.Rate,
		Arrived:         s.arrived,
		Completed:       len(s.completed),
		Shed:            s.shed,
		Rounds:          s.rounds,
		Latency:         metrics.New(),
		PerGPU:          s.latency,
		LocalRows:       cs.Tiers.Local,
		RemoteRows:      cs.Tiers.Peer,
		HostRows:        cs.Tiers.Host,
		Tiers:           cs.Tiers,
		PerGPUTiers:     cs.PerGPU,
		ExpectedHitRate: s.ExpectedCacheHitRate(),
		CachePolicy:     s.cacheMgr.Policy(),
		Rebalances:      cs.Rebalances,
		PromotedRows:    cs.Promoted,
		RebalanceBytes:  cs.MovedBytes,
		RebalanceTime:   cs.RebalanceTime,
		Requests:        s.completed,
		Tenants:         s.tenants.Counts(),
		QuotaRejected:   s.quotaRejected,
		Goodput:         s.goodput,
		SLO:             s.cfg.SLO,
		Killed:          s.dead,
		KilledAt:        s.killedAt,
	}
	if s.hostStore != nil {
		r.StoreStats = s.hostStore.Stats()
	}
	r.Strategy = "dsp"
	if s.p3 {
		r.Strategy = "p3"
		r.FeatureDim = s.cfg.Data.FeatDim
		r.PushWire = s.pushWire
		for g := 0; g < s.store.NumGPUs; g++ {
			r.SliceDims = append(r.SliceDims, s.store.SliceDim(g))
		}
	}
	for _, h := range s.latency {
		r.Latency.Merge(h)
	}
	ctr := s.m.Fabric.Counters
	r.SampleWire = ctr.TotalWire(hw.TrafficSample)
	r.FeatureWire = ctr.TotalWire(hw.TrafficFeature)
	r.Compression = map[hw.TrafficClass]comm.CompressionStats{}
	for _, c := range []*comm.Communicator{s.world.Comm, s.execComm} {
		for class, cs := range c.Compression() {
			acc := r.Compression[class]
			acc.Raw += cs.Raw
			acc.Wire += cs.Wire
			r.Compression[class] = acc
		}
	}
	if end > 0 {
		r.Throughput = float64(len(s.completed)) / float64(end)
	}
	if s.rounds > 0 {
		r.MeanBatch = float64(s.batchSum) / float64(s.rounds*len(s.latency))
	}
	sort.Slice(r.Requests, func(i, j int) bool { return r.Requests[i].ID < r.Requests[j].ID })
	if s.view != nil || s.dead {
		if s.view != nil {
			r.DeadGPUs = s.view.Dead()
		}
		r.Rerouted = s.rerouted
		r.Lost = int(s.batchSum) - len(s.completed)
		r.Recoveries = append([]Recovery(nil), s.crashes...)
		for i := range r.Recoveries {
			r.Recoveries[i].MTTR = -1
			for _, req := range r.Requests {
				if req.Done > r.Recoveries[i].At &&
					(r.Recoveries[i].MTTR < 0 || req.Done-r.Recoveries[i].At < r.Recoveries[i].MTTR) {
					r.Recoveries[i].MTTR = req.Done - r.Recoveries[i].At
				}
			}
		}
	}
	return r
}

// ShedRate is the fraction of arrivals rejected by admission control.
func (r *Report) ShedRate() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Arrived)
}

// CacheHitRate is the measured fraction of feature rows served from any GPU
// cache (local or NVLink-remote) rather than host memory.
func (r *Report) CacheHitRate() float64 {
	total := r.LocalRows + r.RemoteRows + r.HostRows
	if total == 0 {
		return 0
	}
	return float64(r.LocalRows+r.RemoteRows) / float64(total)
}

// String renders the operator-facing summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon %.2fs  makespan %.2fs  offered %.0f req/s\n",
		float64(r.Horizon), float64(r.Makespan), r.Offered)
	fmt.Fprintf(&b, "arrived %d  completed %d  shed %d (%.1f%%)  rounds %d  mean batch %.1f\n",
		r.Arrived, r.Completed, r.Shed, 100*r.ShedRate(), r.Rounds, r.MeanBatch)
	fmt.Fprintf(&b, "throughput %.0f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency  p50 %.3fms  p95 %.3fms  p99 %.3fms  mean %.3fms  max %.3fms\n",
		1e3*r.Latency.P50(), 1e3*r.Latency.P95(), 1e3*r.Latency.P99(),
		1e3*r.Latency.Mean(), 1e3*r.Latency.Max())
	fmt.Fprintf(&b, "feature reads  local %d  nvlink %d  host %d  (gpu-cache hit %.1f%%, expected %.1f%%)",
		r.LocalRows, r.RemoteRows, r.HostRows, 100*r.CacheHitRate(), 100*r.ExpectedHitRate)
	if r.Goodput != nil {
		fmt.Fprintf(&b, "\ngoodput  %d/%d within %.1fms SLO (%.1f%%)  %.0f good req/s",
			r.Goodput.Good(), r.Goodput.Total(), 1e3*float64(r.SLO),
			100*r.Goodput.GoodFraction(), r.Goodput.Rate())
	}
	for _, tc := range r.Tenants {
		fmt.Fprintf(&b, "\ntenant %-10s admitted %d  rejected %d", tc.Name, tc.Admitted, tc.Rejected)
	}
	if r.CachePolicy != cache.Static {
		fmt.Fprintf(&b, "\ncache %s  rebalances %d  promoted %d rows  migrated %.2f MB  overhead %.3fms",
			r.CachePolicy, r.Rebalances, r.PromotedRows,
			float64(r.RebalanceBytes)/1e6, 1e3*float64(r.RebalanceTime))
	}
	if r.Strategy == "p3" {
		fmt.Fprintf(&b, "\nstrategy p3  slices %v  push %.2f MB",
			r.SliceDims, float64(r.PushWire)/1e6)
	}
	if ss := r.StoreStats; ss.Hits+ss.Misses > 0 {
		fmt.Fprintf(&b, "\nooc store  hit %.1f%%  demand %.2f MB  prefetch acc %.1f%%  stall %.3fms",
			100*ss.HitRate(), float64(ss.DemandBytes)/1e6,
			100*ss.PrefetchAccuracy(), 1e3*float64(ss.StallTime))
	}
	if r.Killed {
		fmt.Fprintf(&b, "\nfleet killed at %.3fs  lost %d", float64(r.KilledAt), r.Lost)
	}
	if len(r.Recoveries) > 0 {
		fmt.Fprintf(&b, "\ndegraded  dead gpus %v  rerouted %d  lost %d", r.DeadGPUs, r.Rerouted, r.Lost)
		for _, rec := range r.Recoveries {
			fmt.Fprintf(&b, "\n  crash gpu%d at %.3fs  mttr %.3fms", rec.GPU, float64(rec.At), 1e3*rec.MTTR)
		}
	}
	return b.String()
}
