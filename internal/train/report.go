package train

import (
	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/store"
	"repro/internal/trace"
)

// ReportInput collects everything a training CLI knows about a finished run;
// BuildRunReport renders it into the canonical prof.RunReport document.
type ReportInput struct {
	Command string // emitting binary, e.g. "dsptrain"
	System  string // system under test, e.g. "DSP"
	Dataset string
	GPUs    int
	Seed    uint64
	Shrink  int

	CachePolicy cache.Policy
	Epochs      []EpochStats
	// ValAcc carries the per-epoch validation accuracies the driver measured
	// (indexed like Epochs; shorter is fine).
	ValAcc []float64
	// FT is the fault-tolerant driver's report, when that path ran.
	FT *FTReport
	// Tracer, when enabled, contributes the trace-derived pipeline profile.
	Tracer *trace.Tracer
	// Compression is the merged codec accounting of the run's communicators
	// (see core.DSP.Compression).
	Compression map[hw.TrafficClass]comm.CompressionStats
	// Store is the out-of-core tier's cumulative accounting (zero Stats
	// without -ooc; the section is omitted when it saw no traffic).
	Store store.Stats
	// Strategy is the execution strategy's accounting (nil for the default
	// DSP strategy, whose reports stay byte-identical pre/post refactor).
	Strategy *prof.StrategySection
	// Telemetry is the scrape/alert summary (nil without -telemetry).
	Telemetry *prof.TelemetrySection
}

// BuildRunReport renders a training run into the versioned RunReport schema.
// Deterministic: same stats in, same report out.
func BuildRunReport(in ReportInput) *prof.RunReport {
	r := prof.New(in.Command)
	r.System = in.System
	r.Dataset = in.Dataset
	r.GPUs = in.GPUs
	r.Seed = in.Seed
	r.Shrink = in.Shrink

	sampleDist, loadDist, trainDist := metrics.New(), metrics.New(), metrics.New()
	var cacheLocal, cachePeer, cacheHost, promoted, moved int64
	var rebalances int
	var rebalanceTime float64
	var cum float64
	for i, st := range in.Epochs {
		cum += float64(st.EpochTime)
		er := prof.EpochReport{
			Epoch:       st.Epoch,
			Time:        float64(st.EpochTime),
			Acc:         st.Acc(),
			SampleStage: float64(st.SampleStage),
			LoadStage:   float64(st.LoadStage),
			TrainStage:  float64(st.TrainStage),
		}
		if i < len(in.ValAcc) {
			er.ValAcc = in.ValAcc[i]
		}
		r.Epochs = append(r.Epochs, er)
		r.Wire.Sample += st.SampleWire
		r.Wire.Feature += st.FeatureWire
		r.Wire.Grad += st.GradWire
		r.Wire.Inter += st.InterWire
		if st.SampleDist != nil {
			sampleDist.Merge(st.SampleDist)
		}
		if st.LoadDist != nil {
			loadDist.Merge(st.LoadDist)
		}
		if st.TrainDist != nil {
			trainDist.Merge(st.TrainDist)
		}
		cacheLocal += st.CacheLocal
		cachePeer += st.CachePeer
		cacheHost += st.CacheHost
		promoted += st.CachePromoted
		moved += st.RebalanceBytes
		if st.RebalanceTime > 0 {
			rebalances++
		}
		rebalanceTime += float64(st.RebalanceTime)
	}
	r.WallTime = cum
	if len(in.Epochs) > 0 {
		last := in.Epochs[len(in.Epochs)-1]
		r.Utilization = append([]float64(nil), last.Utilization...)
		var stages map[string]float64
		for _, st := range in.Epochs {
			if stages == nil {
				stages = map[string]float64{}
			}
			stages["sample"] += float64(st.SampleStage)
			stages["load"] += float64(st.LoadStage)
			stages["train"] += float64(st.TrainStage)
		}
		r.Stages = stages
	}
	if s := prof.Latency(sampleDist); s != nil {
		if r.StageLatency == nil {
			r.StageLatency = map[string]*prof.LatencySummary{}
		}
		r.StageLatency["sample"] = s
	}
	if s := prof.Latency(loadDist); s != nil {
		if r.StageLatency == nil {
			r.StageLatency = map[string]*prof.LatencySummary{}
		}
		r.StageLatency["load"] = s
	}
	if s := prof.Latency(trainDist); s != nil {
		if r.StageLatency == nil {
			r.StageLatency = map[string]*prof.LatencySummary{}
		}
		r.StageLatency["train"] = s
	}
	if total := cacheLocal + cachePeer + cacheHost; total > 0 {
		r.Cache = &prof.CacheReport{
			Policy:        in.CachePolicy.String(),
			Local:         cacheLocal,
			Peer:          cachePeer,
			Host:          cacheHost,
			HitRate:       float64(cacheLocal+cachePeer) / float64(total),
			Promoted:      promoted,
			MovedBytes:    moved,
			Rebalances:    rebalances,
			RebalanceTime: rebalanceTime,
		}
	}
	for class, cs := range in.Compression {
		if cs.Raw == 0 && cs.Wire == 0 {
			continue
		}
		if r.Compression == nil {
			r.Compression = map[string]prof.WireStat{}
		}
		r.Compression[class.String()] = prof.WireStat{Raw: cs.Raw, Wire: cs.Wire}
	}
	if ft := in.FT; ft != nil {
		r.WallTime = float64(ft.TotalTime)
		fr := &prof.FaultReport{
			MeanMTTR:        float64(ft.MTTR()),
			Checkpoints:     ft.Ckpt.Checkpoints,
			CkptBytes:       ft.Ckpt.Bytes,
			CkptOverheadPct: ft.Ckpt.OverheadPercent(ft.TotalTime),
		}
		for _, rec := range ft.Recoveries {
			fr.Recoveries = append(fr.Recoveries, prof.RecoveryReport{
				GPU: rec.GPU, At: float64(rec.CrashAt), MTTR: float64(rec.MTTR),
			})
		}
		r.Faults = fr
	}
	r.Store = store.Section(in.Store)
	r.Strategy = in.Strategy
	r.Telemetry = in.Telemetry
	if in.Tracer.Enabled() {
		r.Profile = prof.Analyze(prof.FromTracer(in.Tracer))
	}
	return r
}
