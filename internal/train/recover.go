package train

import (
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Recoverable is a System that additionally supports partial-epoch execution
// and checkpoint/restore — what the fault-tolerant driver needs. DSP's
// training recovery follows the fail-stop restart model: a GPU crash kills
// the whole BSP job, the fleet is rebuilt at full width, state is restored
// from the last checkpoint and the lost steps replay. Because every batch
// permutation and sampling seed is a pure function of (runSeed, epoch, step,
// rank), the replayed steps reproduce the lost ones bit for bit.
type Recoverable interface {
	System
	// RunEpochRange executes steps [from, to) of one epoch.
	RunEpochRange(epoch, from, to int) (EpochStats, error)
	// Steps returns the schedule's steps per epoch.
	Steps() int
	// Snapshot captures a consistent checkpoint whose cursor says the next
	// batch to run is (epoch, step). Safe only between steps (BSP keeps all
	// replicas identical there).
	Snapshot(epoch, step int) *ckpt.TrainState
	// Restore installs a checkpoint into every model replica and optimizer.
	Restore(st *ckpt.TrainState) error
	// Injector returns the configured fault injector (nil without faults).
	Injector() *fault.Injector
}

// RecoveryStats records one crash-recovery cycle.
type RecoveryStats struct {
	// GPU is the crashed GPU; CrashAt the global virtual time of the crash.
	GPU     int
	CrashAt sim.Time
	// RestoreTime is the virtual cost of reading the checkpoint back in.
	RestoreTime sim.Time
	// ReplaySteps counts the steps of lost work re-executed.
	ReplaySteps int
	// MTTR is the mean-time-to-repair contribution of this crash: failure
	// detection (immediate under fail-stop), restore, and replay of the
	// virtual time lost between the last checkpoint and the crash.
	MTTR sim.Time
}

// FTReport is the outcome of a fault-tolerant training run.
type FTReport struct {
	Epochs     []EpochStats
	Recoveries []RecoveryStats
	Ckpt       ckpt.Stats
	// TotalTime is the global virtual time of the whole run, across fleet
	// incarnations, including checkpoint writes and recovery.
	TotalTime sim.Time
}

// MTTR returns the mean time to repair across all recoveries (0 if none).
func (r *FTReport) MTTR() sim.Time {
	if len(r.Recoveries) == 0 {
		return 0
	}
	var t sim.Time
	for _, rec := range r.Recoveries {
		t += rec.MTTR
	}
	return t / sim.Time(len(r.Recoveries))
}

// maxRecoveries bounds restart attempts so a fault schedule that crashes the
// fleet faster than it can replay terminates with an error instead of looping.
const maxRecoveries = 64

// RunRecoverable drives epochs epochs of sys under the checkpoint manager,
// recovering from injected GPU crashes by rebuilding the fleet (rebuild must
// return a fresh system with identical options and seed) and replaying from
// the last checkpoint. Two same-seed invocations — and a crash-free run with
// the same checkpoint cadence — produce bit-identical model parameters and
// epoch Loss/Correct/Seen.
func RunRecoverable(sys Recoverable, epochs int, mgr *ckpt.Manager, rebuild func() (Recoverable, error)) (*FTReport, error) {
	steps := sys.Steps()
	rep := &FTReport{}
	var base sim.Time // global virtual time of the current fleet's t=0
	if inj := sys.Injector(); inj != nil {
		inj.Base = 0
		inj.Arm()
	}
	topo := sys.Machine().Fabric.Topo

	// Commit the initial state so the first segment is covered.
	if err := mgr.Commit(sys.Snapshot(0, 0), 0); err != nil {
		return nil, err
	}

	// segs holds the committed segment stats of the epoch in progress; a
	// crash truncates nothing (only committed segments are in it) and replay
	// appends the re-run segment exactly once.
	var segs []EpochStats
	epoch, from := 0, 0
	for epoch < epochs {
		segStart := sys.Machine().Eng.Now()
		to := mgr.SegmentEnd(from, steps)
		st, err := sys.RunEpochRange(epoch, from, to)
		if err == nil {
			// Capture state, charge the write, then commit — a crash between
			// capture and commit recovers from the PREVIOUS checkpoint, like
			// a real system whose in-flight checkpoint write is torn.
			nextEp, nextStep := epoch, to
			if to >= steps {
				nextEp, nextStep = epoch+1, 0
			}
			snap := sys.Snapshot(nextEp, nextStep)
			dur := ckpt.WriteCost(snap.Bytes(), topo.PCIeBandwidth, topo.PCIeLatency)
			err = chargeTime(sys, dur)
			if err == nil {
				if cerr := mgr.Commit(snap, dur); cerr != nil {
					return nil, cerr
				}
				segs = append(segs, st)
				from = to
				if from >= steps {
					rep.Epochs = append(rep.Epochs, mergeSegments(epoch, segs))
					segs = nil
					epoch, from = epoch+1, 0
				}
				continue
			}
		}
		var crash *fault.CrashError
		if !errors.As(err, &crash) {
			return nil, err
		}
		if len(rep.Recoveries) >= maxRecoveries {
			return nil, fmt.Errorf("train: gave up after %d recoveries (fault schedule outruns replay)", maxRecoveries)
		}
		// Fail-stop recovery: fold the dead fleet's clock into the global
		// base, rebuild at full width, restore the last checkpoint and rerun
		// the segment. Faults already delivered stay in the past (the
		// injector skips entries before Base).
		crashLocal := sys.Machine().Eng.Now()
		base += crashLocal
		last := mgr.Last()
		fresh, rerr := rebuild()
		if rerr != nil {
			return nil, fmt.Errorf("train: rebuild after crash: %w", rerr)
		}
		sys = fresh
		topo = sys.Machine().Fabric.Topo
		if inj := sys.Injector(); inj != nil {
			inj.Base = base
			inj.Arm()
		}
		if err := sys.Restore(last); err != nil {
			return nil, fmt.Errorf("train: restore checkpoint: %w", err)
		}
		restore := ckpt.WriteCost(last.Bytes(), topo.PCIeBandwidth, topo.PCIeLatency)
		if err := chargeTime(sys, restore); err != nil {
			return nil, err
		}
		lost := crashLocal - segStart // virtual work time lost to the crash
		rep.Recoveries = append(rep.Recoveries, RecoveryStats{
			GPU: crash.GPU, CrashAt: base,
			RestoreTime: restore,
			ReplaySteps: to - last.Step,
			MTTR:        restore + lost,
		})
		// Resume at the checkpoint cursor. The cursor never moves backwards
		// across an epoch boundary mid-epoch (epoch ends always commit), so
		// the committed segs of the in-progress epoch remain valid.
		epoch, from = last.Epoch, last.Step
	}
	rep.Ckpt = mgr.Stats()
	rep.TotalTime = base + sys.Machine().Eng.Now()
	return rep, nil
}

// chargeTime advances the fleet's virtual clock by dur (checkpoint I/O). The
// fault injector keeps running, so a crash scheduled inside the window still
// fires — returned as the engine error.
func chargeTime(sys Recoverable, dur sim.Time) error {
	if dur <= 0 {
		return nil
	}
	eng := sys.Machine().Eng
	eng.Go("ckpt/io", func(p *sim.Proc) { p.Sleep(dur) })
	_, err := eng.Run()
	return err
}

// mergeSegments folds per-segment stats into one EpochStats. The merge order
// is the segment order, which is identical between a crash-free run and a
// crashed-and-replayed run with the same cadence — keeping epoch Loss sums
// bit-identical.
func mergeSegments(epoch int, segs []EpochStats) EpochStats {
	out := EpochStats{Epoch: epoch}
	for _, st := range segs {
		out.EpochTime += st.EpochTime
		out.Loss += st.Loss
		out.Correct += st.Correct
		out.Seen += st.Seen
		out.SampleWire += st.SampleWire
		out.FeatureWire += st.FeatureWire
		out.GradWire += st.GradWire
		out.InterWire += st.InterWire
		out.SampleStage += st.SampleStage
		out.LoadStage += st.LoadStage
		out.TrainStage += st.TrainStage
		if out.SampleDist == nil {
			out.SampleDist, out.LoadDist, out.TrainDist = st.SampleDist, st.LoadDist, st.TrainDist
		} else if st.SampleDist != nil {
			out.SampleDist.Merge(st.SampleDist)
			out.LoadDist.Merge(st.LoadDist)
			out.TrainDist.Merge(st.TrainDist)
		}
		// Utilization of the last segment stands for the epoch (per-segment
		// busy windows are not directly mergeable).
		out.Utilization = st.Utilization
	}
	return out
}
