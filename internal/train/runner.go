package train

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RunEpoch spawns per-GPU workers built by stagesFor and runs the engine to
// completion, collecting timing, utilization and communication-volume stats.
// pipelined selects the producer-consumer pipeline; otherwise stages run
// back to back (DSP-Seq and all baseline systems). Each stage is preceded
// by the host-side framework overhead; in pipelined mode the three workers
// pay it concurrently, which is part of what the pipeline hides.
func RunEpoch(m *hw.Machine, epoch int, pipelined bool, queueCap int, overhead sim.Time,
	stagesFor func(rank int, st *EpochStats) pipeline.Stages) (EpochStats, error) {
	return RunEpochSteps(m, epoch, 0, -1, pipelined, queueCap, overhead, stagesFor)
}

// RunEpochSteps is RunEpoch restricted to steps [from, to) — the partial-epoch
// replay primitive of the fault-tolerance driver. to < 0 keeps the stage
// builder's NumBatches (a full epoch from from).
func RunEpochSteps(m *hw.Machine, epoch, from, to int, pipelined bool, queueCap int, overhead sim.Time,
	stagesFor func(rank int, st *EpochStats) pipeline.Stages) (EpochStats, error) {
	n := len(m.GPUs)
	eng := m.Eng
	start := eng.Now()
	before := m.Fabric.Counters
	for _, g := range m.GPUs {
		g.ResetBusy()
	}
	stats := make([]EpochStats, n)
	for rank := range stats {
		stats[rank].SampleDist = metrics.New()
		stats[rank].LoadDist = metrics.New()
		stats[rank].TrainDist = metrics.New()
	}
	var dones []*sim.Event
	for rank := 0; rank < n; rank++ {
		stages := stagesFor(rank, &stats[rank])
		stages.FirstBatch = from
		if to >= 0 {
			stages.NumBatches = to
		}
		stages = withOverhead(stages, overhead)
		stages = withStageTiming(stages, &stats[rank])
		if tr := m.GPUs[rank].Tracer; tr.Enabled() {
			stages = withTraceSpans(stages, tr, rank)
		}
		done := eng.NewEvent()
		dones = append(dones, done)
		name := fmt.Sprintf("gpu%d", rank)
		if pipelined {
			pipeline.RunPipelined(eng, name, stages, queueCap, done)
		} else {
			pipeline.RunSequential(eng, name, stages, done)
		}
	}
	end, err := eng.Run()
	if err != nil {
		return EpochStats{}, err
	}
	for _, d := range dones {
		if !d.Fired() {
			return EpochStats{}, fmt.Errorf("train: epoch did not complete on all GPUs")
		}
	}
	out := EpochStats{
		Epoch: epoch, EpochTime: end - start,
		SampleDist: metrics.New(), LoadDist: metrics.New(), TrainDist: metrics.New(),
	}
	for _, st := range stats {
		out.Loss += st.Loss
		out.Correct += st.Correct
		out.Seen += st.Seen
		out.SampleStage += st.SampleStage
		out.LoadStage += st.LoadStage
		out.TrainStage += st.TrainStage
		out.SampleDist.Merge(st.SampleDist)
		out.LoadDist.Merge(st.LoadDist)
		out.TrainDist.Merge(st.TrainDist)
	}
	out.Utilization = m.Utilization(start, end)
	after := m.Fabric.Counters
	out.SampleWire = after.TotalWire(hw.TrafficSample) - before.TotalWire(hw.TrafficSample)
	out.FeatureWire = after.TotalWire(hw.TrafficFeature) - before.TotalWire(hw.TrafficFeature)
	out.GradWire = after.TotalWire(hw.TrafficGradient) - before.TotalWire(hw.TrafficGradient)
	return out, nil
}

// withOverhead prefixes every stage with the host-side framework cost.
func withOverhead(s pipeline.Stages, overhead sim.Time) pipeline.Stages {
	if overhead <= 0 {
		return s
	}
	sample, load, train := s.Sample, s.Load, s.Train
	s.Sample = func(p *sim.Proc, step int) interface{} {
		p.Sleep(overhead)
		return sample(p, step)
	}
	s.Load = func(p *sim.Proc, step int, v interface{}) interface{} {
		p.Sleep(overhead)
		return load(p, step, v)
	}
	s.Train = func(p *sim.Proc, step int, v interface{}) {
		p.Sleep(overhead)
		train(p, step, v)
	}
	return s
}

// withStageTiming accumulates per-stage virtual durations into st: running
// totals plus per-step distributions (metrics.Histogram) for tail analysis.
func withStageTiming(s pipeline.Stages, st *EpochStats) pipeline.Stages {
	sample, load, train := s.Sample, s.Load, s.Train
	s.Sample = func(p *sim.Proc, step int) interface{} {
		t0 := p.Now()
		v := sample(p, step)
		st.SampleStage += p.Now() - t0
		st.SampleDist.Observe(float64(p.Now() - t0))
		return v
	}
	s.Load = func(p *sim.Proc, step int, v interface{}) interface{} {
		t0 := p.Now()
		out := load(p, step, v)
		st.LoadStage += p.Now() - t0
		st.LoadDist.Observe(float64(p.Now() - t0))
		return out
	}
	s.Train = func(p *sim.Proc, step int, v interface{}) {
		t0 := p.Now()
		train(p, step, v)
		st.TrainStage += p.Now() - t0
		st.TrainDist.Observe(float64(p.Now() - t0))
	}
	return s
}

// withTraceSpans records one span per worker stage per step and arms the
// pipeline's queue-wait stall tracing on the same lanes.
func withTraceSpans(s pipeline.Stages, tr *trace.Tracer, rank int) pipeline.Stages {
	s.Tracer = tr
	s.Pid = rank
	sample, load, train := s.Sample, s.Load, s.Train
	s.Sample = func(p *sim.Proc, step int) interface{} {
		t0 := p.Now()
		v := sample(p, step)
		tr.Complete(fmt.Sprintf("sample step %d", step), "stage", rank, trace.LaneSampler, float64(t0), float64(p.Now()), nil)
		return v
	}
	s.Load = func(p *sim.Proc, step int, v interface{}) interface{} {
		t0 := p.Now()
		out := load(p, step, v)
		tr.Complete(fmt.Sprintf("load step %d", step), "stage", rank, trace.LaneLoader, float64(t0), float64(p.Now()), nil)
		return out
	}
	s.Train = func(p *sim.Proc, step int, v interface{}) {
		t0 := p.Now()
		train(p, step, v)
		tr.Complete(fmt.Sprintf("train step %d", step), "stage", rank, trace.LaneTrainer, float64(t0), float64(p.Now()), nil)
	}
	return s
}

// Trainer is the data-parallel trainer worker shared by DSP and every
// baseline: forward/backward (real or nominal-cost), gradient allreduce,
// synchronous update. All systems execute the same BSP training logic —
// which is why their accuracy-versus-batch curves coincide (Figure 9a).
type Trainer struct {
	Opts   Options
	Comm   *comm.Communicator
	Models []*nn.Model
	Optims []nn.Optimizer
	Grad   [][]float32
}

// NewTrainer builds per-rank model replicas (identical seeds) when
// RealCompute is set; in cost-only mode it allocates real-size gradient
// buffers so allreduce wire volume stays exact.
func NewTrainer(opts Options, c *comm.Communicator) *Trainer {
	t := &Trainer{Opts: opts, Comm: c}
	n := opts.Data.NumGPUs()
	probe := nn.NewModel(opts.Model, opts.Seed)
	for g := 0; g < n; g++ {
		t.Grad = append(t.Grad, make([]float32, probe.ParamCount()))
		if opts.RealCompute {
			t.Models = append(t.Models, nn.NewModel(opts.Model, opts.Seed))
			t.Optims = append(t.Optims, nn.NewAdam(opts.LR))
		}
	}
	return t
}

// Step runs one mini-batch training step on rank's GPU.
func (t *Trainer) Step(p *sim.Proc, dev *hw.Device, rank int, mb *sample.MiniBatch, feats []float32, st *EpochStats) {
	if t.Opts.RealCompute {
		m := t.Models[rank]
		m.ZeroGrads()
		if len(mb.Seeds) > 0 {
			loss, correct, flops := m.TrainStep(mb, feats, SeedLabels(t.Opts.Data, mb))
			dev.RunKernel(p, hw.KernelCompute, flops)
			st.Loss += loss
			st.Correct += correct
			st.Seen += len(mb.Seeds)
		}
		m.GradVector(t.Grad[rank])
		t.Comm.AllReduceSum(p, rank, t.Grad[rank], comm.Compressed(t.Opts.GradCodec, hw.TrafficGradient))
		inv := float32(1.0) / float32(t.Comm.N)
		for i := range t.Grad[rank] {
			t.Grad[rank][i] *= inv
		}
		m.SetGradVector(t.Grad[rank])
		t.Optims[rank].Step(m)
		return
	}
	// Cost-only: charge nominal kernel work; gradients still move for real.
	if len(mb.Seeds) > 0 {
		dev.RunKernel(p, hw.KernelGather, nn.NominalAggBytes(t.Opts.Model, mb))
		dev.RunKernel(p, hw.KernelCompute, nn.NominalFlops(t.Opts.Model, mb))
	}
	// The cost-only path never writes Grad (it stays all-zero), so the
	// communicator may reuse its cached encode round over round.
	o := comm.Compressed(t.Opts.GradCodec, hw.TrafficGradient)
	o.Static = true
	t.Comm.AllReduceSum(p, rank, t.Grad[rank], o)
}
