// Package train holds the infrastructure shared by the DSP system
// (internal/core) and the baseline systems (internal/baselines): prepared
// datasets in layout order, the System interface, per-epoch statistics, the
// batch schedule, and the evaluation helper.
package train

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/sim"
)

// Data is a dataset prepared for an n-GPU run: renumbered into layout order
// with per-GPU ownership ranges and co-partitioned seed shards. Every system
// consumes the same Data so graph samples — and therefore learning curves —
// are bitwise identical across systems (the paper's Figure 9a).
type Data struct {
	Name       string
	G          *graph.CSR
	FeatDim    int
	Feats      []float32
	Labels     []int32
	NumClasses int
	Offsets    []int64
	Shards     [][]graph.NodeID // per-GPU training seeds
	Val        []graph.NodeID
	// ScaleFactor and GPUMemBytes carry the dataset-registry scaling (see
	// gen.Standard); zero GPUMemBytes means "use the spec default".
	ScaleFactor float64
	GPUMemBytes int64
	// BenchBatch is the registry-recommended mini-batch size (0 = none).
	BenchBatch int
}

// Prepare partitions, renumbers and shards a generated dataset for nGPU
// GPUs. useMetis selects METIS-style partitioning (DSP's layout); false uses
// hash partitioning (the locality ablation).
func Prepare(d *gen.Dataset, nGPU int, seed uint64, useMetis bool) *Data {
	var res *partition.Result
	if useMetis {
		res = partition.Metis(d.G, nGPU, seed)
	} else {
		res = partition.Hash(d.G, nGPU)
	}
	ren := partition.BuildRenumbering(res)
	td := &Data{
		Name:       d.Name,
		G:          ren.ApplyToGraph(d.G),
		FeatDim:    d.FeatDim,
		Feats:      ren.ApplyToFeatures(d.Features, d.FeatDim),
		Labels:     ren.ApplyToLabels(d.Labels),
		NumClasses: d.NumClasses,
		Offsets:    ren.Offsets,
		Val:        ren.ApplyToIDs(d.ValIdx),
	}
	trainIDs := ren.ApplyToIDs(d.TrainIdx)
	for g := 0; g < nGPU; g++ {
		td.Shards = append(td.Shards, ren.SortOwned(trainIDs, g))
	}
	return td
}

// NumGPUs returns the shard count.
func (d *Data) NumGPUs() int { return len(d.Shards) }

// FeatureBytes returns the total feature footprint.
func (d *Data) FeatureBytes() int64 { return int64(len(d.Feats)) * 4 }

// RowBytes returns one feature row's size.
func (d *Data) RowBytes() int { return d.FeatDim * 4 }

// Schedule is the per-epoch batch plan: all ranks execute the same number of
// steps so collectives stay aligned; ranks whose shard is exhausted
// participate with empty seed sets.
type Schedule struct {
	BatchSize int
	Steps     int
}

// NewSchedule computes the step count for the epoch (max over shards).
func NewSchedule(d *Data, batchSize int) Schedule {
	steps := 0
	for _, s := range d.Shards {
		n := (len(s) + batchSize - 1) / batchSize
		if n > steps {
			steps = n
		}
	}
	return Schedule{BatchSize: batchSize, Steps: steps}
}

// Batch returns rank's seed slice for (epoch, step), shuffled per epoch with
// a deterministic permutation shared by every system.
func (s Schedule) Batch(d *Data, runSeed uint64, epoch, step, rank int) []graph.NodeID {
	shard := d.Shards[rank]
	perm := rng.New(rng.Mix(runSeed, 0xE0C, uint64(epoch), uint64(rank))).Perm(len(shard))
	lo := step * s.BatchSize
	if lo >= len(shard) {
		return nil
	}
	hi := lo + s.BatchSize
	if hi > len(shard) {
		hi = len(shard)
	}
	out := make([]graph.NodeID, 0, hi-lo)
	for _, idx := range perm[lo:hi] {
		out = append(out, shard[idx])
	}
	return out
}

// BatchSeed derives the sampling seed for (epoch, step, rank).
func BatchSeed(runSeed uint64, epoch, step, rank int) uint64 {
	return rng.Mix(runSeed, 0x5EED, uint64(epoch), uint64(step), uint64(rank))
}

// EpochStats reports one measured epoch.
type EpochStats struct {
	Epoch int
	// EpochTime is the virtual wall time of the epoch.
	EpochTime sim.Time
	// SampleTime is the sampler-only epoch time when measured standalone
	// (Table 6); zero in full training runs.
	SampleTime sim.Time
	// Loss/Correct/Seen aggregate training progress (real-compute runs).
	Loss    float64
	Correct int
	Seen    int
	// Utilization is each GPU's busy fraction during the epoch.
	Utilization []float64
	// Comm volumes in wire bytes accumulated during the epoch.
	SampleWire, FeatureWire, GradWire int64
	// InterWire is inter-machine NIC traffic (multi-machine runs only).
	InterWire int64
	// Tiered feature-read counts for the epoch (rows read from the local
	// GPU cache, a peer GPU over NVLink, and host memory), recorded by the
	// adaptive cache manager's tracker (internal/cache).
	CacheLocal, CachePeer, CacheHost int64
	// Epoch-boundary cache adaptation: rows promoted into GPU shards, the
	// migration bytes charged to PCIe, and the virtual time the rebalance
	// added to the epoch. All zero under the static policy.
	CachePromoted, RebalanceBytes int64
	RebalanceTime                 sim.Time
	// Out-of-core store activity for the epoch (OOC runs only; zero
	// otherwise): block-touch hits/misses against the host block cache,
	// demand bytes fetched inline from the spill device, prefetcher
	// issue/used counts, and the virtual time readers stalled on fetches.
	StoreHits, StoreMisses                 int64
	StoreDemandBytes                       int64
	StorePrefetchIssued, StorePrefetchUsed int64
	StoreStall                             sim.Time
	// Stage time totals (virtual seconds summed across ranks and steps,
	// including the host-side stage overhead): how long the epoch spent in
	// each worker. Under the pipeline these overlap, so their sum exceeds
	// EpochTime.
	SampleStage, LoadStage, TrainStage sim.Time
	// Per-step stage duration distributions (virtual seconds; one
	// observation per rank per step), merged across ranks by RunEpoch.
	SampleDist, LoadDist, TrainDist *metrics.Histogram
}

// Acc returns training accuracy for the epoch.
func (e EpochStats) Acc() float64 {
	if e.Seen == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Seen)
}

// System is a GNN training system under evaluation.
type System interface {
	Name() string
	// RunEpoch executes one full training epoch and reports stats.
	RunEpoch(epoch int) (EpochStats, error)
	// RunSampleEpoch executes only the sampler workload of one epoch
	// (the Table 6 measurement).
	RunSampleEpoch(epoch int) (EpochStats, error)
	// Machine exposes the simulated server for inspection.
	Machine() *hw.Machine
	// Model returns rank 0's model replica (nil in cost-only mode).
	Model() *nn.Model
}

// Options configures a system build. Zero values get defaults from Default.
type Options struct {
	Data      *Data
	GPU       hw.GPUSpec
	CPU       hw.CPUSpec
	Model     nn.Config
	Sample    sample.Config
	BatchSize int
	// RealCompute runs the actual forward/backward math (Figure 9 and the
	// examples); false charges nominal kernel costs only, which is how the
	// large timing sweeps run paper-scale hidden sizes on a laptop host.
	RealCompute bool
	LR          float64
	Seed        uint64

	// DSP-specific knobs (ignored by baselines):
	Pipeline bool // producer-consumer pipeline vs DSP-Seq
	QueueCap int
	UseCCC   bool
	// FeatureCacheBudget is the per-GPU byte budget for cached features
	// (<=0: use all memory left after the topology patch).
	FeatureCacheBudget int64
	// ReplicatedCache switches DSP to a Quiver-style replicated cache (the
	// caching ablation).
	ReplicatedCache bool
	// TopoCacheBudget is the per-GPU byte budget for the topology patch
	// (<=0: cache the whole patch). Smaller budgets spill low-degree
	// adjacency lists to CPU memory (Figure 10).
	TopoCacheBudget int64
	// CachePolicy selects the hot-node criterion (0 = by degree).
	CachePolicy int
	// DynamicCache selects the adaptive feature-cache policy
	// (internal/cache): non-static policies rebalance each GPU's shard at
	// epoch boundaries, promoting rows the tracker observed as hot. Ignored
	// by baselines and by the replicated layout.
	DynamicCache cache.Policy
	// CacheTune tunes the adaptive manager (decay, move cap, degree
	// weight); zero values take the cache package defaults.
	CacheTune cache.Config
	// CompressTopology stores the partitioned topology varint-compressed
	// (delta-sorted gap encoding, internal/graph.CompressedCSR): resident
	// topology bytes shrink ~4x and sampling pays a decode kernel per
	// accessed adjacency row.
	CompressTopology bool
	// OOC enables the out-of-core tier (internal/store): topology and
	// feature blocks live on a simulated NVMe spill device below host
	// memory, with an LRU block cache and a proximity-aware prefetcher that
	// walks the sampling frontier.
	OOC bool
	// OOCBudget is the host block-cache byte budget (<=0: half the block
	// bytes, forcing real spill traffic).
	OOCBudget int64
	// OOCNoPrefetch disables the prefetcher (the ooc-sweep ablation arm).
	OOCNoPrefetch bool
	// OOCBlockNodes overrides the store's block width in nodes (0 = the
	// store's default). Experiments on shrunken stand-ins lower it so the
	// block count stays in the regime a full-scale graph would see.
	OOCBlockNodes int
	// PullData switches CSP to the data-pull paradigm (Figure 11 ablation).
	PullData bool
	// UnfusedSampling switches CSP's sample stage to one kernel per task —
	// the rejected asynchronous design of §4.1 (ablation).
	UnfusedSampling bool
	// NumSamplers/NumLoaders run multiple worker instances per stage — the
	// rejected multi-instance pipeline of §5 (ablation). 0 or 1 = single.
	NumSamplers, NumLoaders int
	// LatencyScale divides per-message link latencies (the benchmark
	// harness matches it to the batch-count scaling; 0 = 1).
	LatencyScale float64
	// GradCodec compresses the gradient allreduce (nil = raw fp32). The
	// codec shapes both wire bytes and the reduced values — quantisation
	// error flows into the model — while replicas stay bitwise identical.
	GradCodec compress.Codec
	// FeatCodec compresses peer-to-peer feature transfers: the NVLink
	// all-to-all replies of the load stage and the inter-machine NIC sends
	// (nil = raw fp32). UVA host reads are zero-copy and never compressed.
	FeatCodec compress.Codec
	// StageOverhead is the host-side framework cost per worker stage per
	// batch (Python/driver bookkeeping; the GPU is idle during it). It is
	// divided by LatencyScale like other per-batch fixed costs. 0 selects
	// the 2 ms default; negative disables it.
	StageOverhead sim.Time
	// Faults is the injected fault schedule (fault-tolerance runs). The
	// system builds the injector; the FT driver arms it. Fault times are
	// GLOBAL virtual time — a rebuilt fleet skips faults already delivered.
	Faults []fault.Fault
	// Strategy selects the execution strategy: "" or "dsp" is the paper's
	// row-partitioned hot/cold layout, "p3" the dimension-partitioned
	// push-pull layout (internal/strategy). A plain string so this package
	// stays below internal/strategy in the import graph; core validates it.
	Strategy string
	// Parallel is the OS-thread budget for offloaded data work (sampling
	// draws, codec encodes, reductions) between DES commit points
	// (sim.SetParallelism). Results are bitwise identical at any value;
	// <=1 runs everything inline on the engine thread.
	Parallel int
}

// EffectiveStageOverhead resolves the per-stage host cost after scaling.
func (o Options) EffectiveStageOverhead() sim.Time {
	ov := o.StageOverhead
	switch {
	case ov < 0:
		return 0
	case ov == 0:
		ov = 2e-3
	}
	if o.LatencyScale > 1 {
		ov /= sim.Time(o.LatencyScale)
	}
	return ov
}

// Defaults fills unset fields: V100 GPUs (memory possibly scaled by the
// dataset), Xeon host, paper model (3-layer, hidden 256), fan-out [15,10,5],
// batch 1024.
func (o Options) Defaults() Options {
	if o.GPU.Threads == 0 {
		o.GPU = hw.V100()
	}
	if o.Data != nil && o.Data.GPUMemBytes > 0 {
		o.GPU.MemBytes = o.Data.GPUMemBytes
	}
	if o.CPU.Cores == 0 {
		o.CPU = hw.XeonE5()
	}
	if o.Model.Layers == 0 {
		o.Model = nn.Config{Arch: nn.SAGE, InDim: o.Data.FeatDim, Hidden: 256, Classes: o.Data.NumClasses, Layers: 3}
	}
	if o.Model.InDim == 0 {
		o.Model.InDim = o.Data.FeatDim
	}
	if o.Model.Classes == 0 {
		o.Model.Classes = o.Data.NumClasses
	}
	if len(o.Sample.Fanout) == 0 {
		o.Sample.Fanout = []int{15, 10, 5}
	}
	if o.BatchSize == 0 {
		o.BatchSize = 1024
	}
	if o.LR == 0 {
		o.LR = 0.003
	}
	if o.QueueCap == 0 {
		o.QueueCap = 2
	}
	return o
}

// Validate rejects inconsistent options.
func (o Options) Validate() error {
	if o.Data == nil {
		return fmt.Errorf("train: options missing Data")
	}
	if len(o.Sample.Fanout) != o.Model.Layers {
		return fmt.Errorf("train: %d fan-outs for %d model layers", len(o.Sample.Fanout), o.Model.Layers)
	}
	return nil
}

// GatherFeatures copies the raw features of a batch's input nodes in order
// (the real data work behind the loader).
func GatherFeatures(d *Data, mb *sample.MiniBatch) []float32 {
	inputs := mb.InputNodes()
	return GatherFeaturesInto(make([]float32, len(inputs)*d.FeatDim), d, mb)
}

// GatherFeaturesInto is GatherFeatures into a caller-owned buffer of exactly
// len(mb.InputNodes())*FeatDim elements (e.g. an arena-pooled one); every
// element is overwritten. It is pure data work, safe to offload on a
// sim.Ticket.
func GatherFeaturesInto(out []float32, d *Data, mb *sample.MiniBatch) []float32 {
	inputs := mb.InputNodes()
	if len(out) != len(inputs)*d.FeatDim {
		panic(fmt.Sprintf("train: gather buffer %d for %d rows x %d dims", len(out), len(inputs), d.FeatDim))
	}
	for i, v := range inputs {
		copy(out[i*d.FeatDim:(i+1)*d.FeatDim], d.Feats[int(v)*d.FeatDim:(int(v)+1)*d.FeatDim])
	}
	return out
}

// SeedLabels returns the labels of a batch's seeds in order.
func SeedLabels(d *Data, mb *sample.MiniBatch) []int32 {
	out := make([]int32, len(mb.Seeds))
	for i, s := range mb.Seeds {
		out[i] = d.Labels[s]
	}
	return out
}

// Evaluate computes validation accuracy of a model with the reference
// sampler (host-side, untimed).
func Evaluate(d *Data, m *nn.Model, cfg sample.Config, maxNodes int, seed uint64) float64 {
	val := d.Val
	if maxNodes > 0 && len(val) > maxNodes {
		val = val[:maxNodes]
	}
	if len(val) == 0 {
		return 0
	}
	correct := 0
	const chunk = 512
	dedup := sample.NewDeduper(d.G.NumNodes())
	for lo := 0; lo < len(val); lo += chunk {
		hi := lo + chunk
		if hi > len(val) {
			hi = len(val)
		}
		mb := sample.ReferenceInto(dedup, d.G, val[lo:hi], cfg, rng.Mix(seed, 0xE7A1, uint64(lo)))
		feats := GatherFeatures(d, mb)
		labels := SeedLabels(d, mb)
		_, c := m.Evaluate(mb, feats, labels)
		correct += c
	}
	return float64(correct) / float64(len(val))
}
