package train

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/sim"
)

func testDataset() *gen.Dataset {
	return gen.Generate(gen.Config{
		Name: "tr", Nodes: 4000, AvgDegree: 10, FeatDim: 8, NumClasses: 4, Seed: 71,
	})
}

func TestPrepareShardsCoverTrainSet(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 4, 1, true)
	total := 0
	for g, shard := range td.Shards {
		total += len(shard)
		lo, hi := td.Offsets[g], td.Offsets[g+1]
		for _, v := range shard {
			if int64(v) < lo || int64(v) >= hi {
				t.Fatalf("shard %d contains foreign seed %d", g, v)
			}
		}
	}
	if total != len(d.TrainIdx) {
		t.Fatalf("shards cover %d of %d train nodes", total, len(d.TrainIdx))
	}
}

func TestPrepareLayoutConsistent(t *testing.T) {
	// Features and labels must follow the renumbering: node v's label in
	// layout order equals the original node's label.
	d := testDataset()
	td := Prepare(d, 2, 1, true)
	// Community structure is invariant: label distribution unchanged.
	counts := map[int32]int{}
	for _, l := range td.Labels {
		counts[l]++
	}
	orig := map[int32]int{}
	for _, l := range d.Labels {
		orig[l]++
	}
	for k, v := range orig {
		if counts[k] != v {
			t.Fatalf("label %d count changed: %d vs %d", k, counts[k], v)
		}
	}
	if err := td.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareHashVsMetis(t *testing.T) {
	d := testDataset()
	metis := Prepare(d, 4, 1, true)
	hash := Prepare(d, 4, 1, false)
	if metis.G.NumEdges() != hash.G.NumEdges() {
		t.Fatal("partitioning changed the graph")
	}
}

func TestScheduleCoversEveryShardOnce(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 4, 1, true)
	sched := NewSchedule(td, 64)
	for rank := range td.Shards {
		seen := map[graph.NodeID]int{}
		for step := 0; step < sched.Steps; step++ {
			for _, v := range sched.Batch(td, 9, 0, step, rank) {
				seen[v]++
			}
		}
		if len(seen) != len(td.Shards[rank]) {
			t.Fatalf("rank %d: epoch covered %d of %d seeds", rank, len(seen), len(td.Shards[rank]))
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("rank %d: seed %d appeared %d times", rank, v, c)
			}
		}
	}
}

func TestScheduleEpochsShuffleDifferently(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 2, 1, true)
	sched := NewSchedule(td, 32)
	a := sched.Batch(td, 9, 0, 0, 0)
	b := sched.Batch(td, 9, 1, 0, 0)
	same := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("epochs not reshuffled")
	}
	// Same epoch is reproducible.
	c := sched.Batch(td, 9, 0, 0, 0)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("batch not reproducible")
		}
	}
}

func TestBatchSeedDistinct(t *testing.T) {
	if err := quick.Check(func(e1, s1, r1, e2, s2, r2 uint8) bool {
		if e1 == e2 && s1 == s2 && r1 == r2 {
			return true
		}
		return BatchSeed(1, int(e1), int(s1), int(r1)) != BatchSeed(1, int(e2), int(s2), int(r2))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 2, 1, true)
	o := Options{Data: td}.Defaults()
	if o.Model.Hidden != 256 || o.Model.Layers != 3 {
		t.Errorf("default model %+v", o.Model)
	}
	if len(o.Sample.Fanout) != 3 || o.Sample.Fanout[0] != 15 {
		t.Errorf("default fanout %v", o.Sample.Fanout)
	}
	if o.BatchSize != 1024 || o.QueueCap != 2 {
		t.Errorf("defaults: batch %d queue %d", o.BatchSize, o.QueueCap)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidateRejectsMismatch(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 2, 1, true)
	o := Options{
		Data:   td,
		Model:  nn.Config{Arch: nn.SAGE, InDim: 8, Hidden: 8, Classes: 4, Layers: 3},
		Sample: sample.Config{Fanout: []int{5, 5}}, // 2 != 3 layers
	}
	if o.Validate() == nil {
		t.Fatal("fanout/layers mismatch accepted")
	}
	if (Options{}).Validate() == nil {
		t.Fatal("missing data accepted")
	}
}

func TestEffectiveStageOverhead(t *testing.T) {
	if got := (Options{}).EffectiveStageOverhead(); got != 2e-3 {
		t.Errorf("default overhead %v", got)
	}
	if got := (Options{StageOverhead: -1}).EffectiveStageOverhead(); got != 0 {
		t.Errorf("disabled overhead %v", got)
	}
	if got := (Options{LatencyScale: 10}).EffectiveStageOverhead(); got != 2e-4 {
		t.Errorf("scaled overhead %v", got)
	}
}

func TestGatherFeaturesAndLabels(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 2, 1, true)
	seeds := td.Shards[0][:16]
	mb := sample.Reference(td.G, seeds, sample.Config{Fanout: []int{4, 4}}, 3)
	feats := GatherFeatures(td, mb)
	if len(feats) != len(mb.InputNodes())*td.FeatDim {
		t.Fatalf("gather size %d", len(feats))
	}
	for i, v := range mb.InputNodes()[:10] {
		for j := 0; j < td.FeatDim; j++ {
			if feats[i*td.FeatDim+j] != td.Feats[int(v)*td.FeatDim+j] {
				t.Fatalf("feature mismatch node %d", v)
			}
		}
	}
	labels := SeedLabels(td, mb)
	for i, s := range mb.Seeds {
		if labels[i] != td.Labels[s] {
			t.Fatalf("label mismatch seed %d", s)
		}
	}
}

func TestEvaluateUntrainedNearChance(t *testing.T) {
	d := testDataset()
	td := Prepare(d, 2, 1, true)
	m := nn.NewModel(nn.Config{Arch: nn.SAGE, InDim: 8, Hidden: 8, Classes: 4, Layers: 2}, 1)
	acc := Evaluate(td, m, sample.Config{Fanout: []int{4, 4}}, 400, 7)
	if acc < 0.02 || acc > 0.8 {
		t.Fatalf("untrained accuracy %v implausible", acc)
	}
}

func TestEpochStatsAcc(t *testing.T) {
	if (EpochStats{}).Acc() != 0 {
		t.Error("empty stats accuracy not 0")
	}
	st := EpochStats{Correct: 3, Seen: 4}
	if st.Acc() != 0.75 {
		t.Errorf("acc %v", st.Acc())
	}
}

func TestRunEpochPopulatesStageDistributions(t *testing.T) {
	m := hw.NewMachine(2, hw.V100(), hw.XeonE5())
	const steps = 4
	stats, err := RunEpoch(m, 0, true, 2, 0, func(rank int, st *EpochStats) pipeline.Stages {
		return pipeline.Stages{
			NumBatches: steps,
			Sample:     func(p *sim.Proc, step int) interface{} { p.Sleep(0.001); return step },
			Load:       func(p *sim.Proc, step int, v interface{}) interface{} { p.Sleep(0.002); return v },
			Train:      func(p *sim.Proc, step int, v interface{}) { p.Sleep(0.003) },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]*metrics.Histogram{
		"sample": stats.SampleDist, "load": stats.LoadDist, "train": stats.TrainDist,
	} {
		if h.Count() != 2*steps {
			t.Fatalf("%s dist has %d observations, want %d", name, h.Count(), 2*steps)
		}
	}
	// The distributions carry the per-step stage durations: the sums must
	// reconcile with the running totals.
	if got, want := stats.SampleDist.Sum(), float64(stats.SampleStage); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sample dist sum %g != stage total %g", got, want)
	}
	if p50 := stats.TrainDist.P50(); math.Abs(p50-0.003) > 0.0002 {
		t.Fatalf("train p50 %g, want ~0.003", p50)
	}
}
