// Package csp implements the paper's Collective Sampling Primitive: graph
// sampling executed jointly by all GPUs on a topology partitioned across
// them.
//
// Each sampling layer runs in three stages:
//
//	shuffle   — every frontier node is sent to the GPU holding its
//	            adjacency list (a task of 8 bytes: node id + fan-out);
//	sample    — each GPU executes ALL tasks it received in one fused
//	            kernel, drawing neighbours from its local patch;
//	reshuffle — the sampled neighbour ids travel back to the requesting
//	            GPU, which assembles the mini-batch block.
//
// This is the task-push paradigm: only frontier ids and sampled ids cross
// the fabric, never adjacency lists. The PullData function implements the
// data-pull alternative (fetch whole adjacency + weight lists, sample
// locally) that Figure 11 compares against. RandomWalk implements walks as
// fan-out-1 sampling whose tasks migrate with the walk (no reshuffle).
//
// Sampling results are bit-identical to sample.Reference on the unpartitioned
// graph because every neighbour draw is seeded by (batch seed, layer, global
// node id) regardless of the executing GPU.
package csp

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sample"
	"repro/internal/sim"
)

// PatchStore is one GPU's share of the partitioned topology: the adjacency
// lists of its owned id range, with local indptr and GLOBAL neighbour ids
// (the paper stores global ids to avoid converting sampled nodes back).
//
// OnHost is the adjacency position list of the paper's §6: when the
// topology-cache budget is smaller than the patch, the lowest-degree nodes'
// adjacency lists live in CPU memory and are read through UVA during the
// sample stage. GPUBytes is the device-resident share.
type PatchStore struct {
	Lo, Hi   graph.NodeID
	Adj      graph.CSR
	OnHost   []bool
	GPUBytes int64
	// Comp, when non-nil, is the patch's delta/varint encoding: the run was
	// built from a compressed topology, so resident bytes are charged at the
	// compressed size and every sampled row pays a decode kernel. The
	// in-process data plane stays the decoded Adj for correctness.
	Comp *graph.CompressedCSR
}

// rowBytes returns the device-resident size of local node v's adjacency row
// under the active representation.
func (ps *PatchStore) rowBytes(v graph.NodeID) int64 {
	if ps.Comp != nil {
		b := ps.Comp.NodeBytes(v)
		if ps.Comp.Weights != nil {
			b += int64(ps.Comp.Degree(v)) * 4
		}
		return b
	}
	perEdge := int64(4)
	if ps.Adj.Weights != nil {
		perEdge = 8
	}
	return int64(ps.Adj.Degree(v)) * perEdge
}

// applyBudget marks the lowest-degree nodes host-resident until the
// GPU-resident share fits budget (<=0 keeps everything on the GPU).
func (ps *PatchStore) applyBudget(budget int64) {
	n := ps.Adj.NumNodes()
	ps.OnHost = make([]bool, n)
	total := ps.Adj.TopologyBytes()
	if ps.Comp != nil {
		total = ps.Comp.TopologyBytes()
	}
	ps.GPUBytes = total
	if budget <= 0 || total <= budget {
		return
	}
	order := ps.Adj.NodesByDegreeDesc()
	// Walk from the hottest node down, keeping rows until budget runs out.
	used := int64(n+1) * 8 // indptr / position list stays resident
	for _, v := range order {
		rowBytes := ps.rowBytes(v)
		if used+rowBytes <= budget {
			used += rowBytes
		} else {
			ps.OnHost[v] = true
		}
	}
	ps.GPUBytes = used
}

// Local converts a global id owned by this patch to its local index.
func (ps *PatchStore) Local(v graph.NodeID) int32 { return int32(v - ps.Lo) }

// Neighbors returns the adjacency list of global node v (owned here).
func (ps *PatchStore) Neighbors(v graph.NodeID) []graph.NodeID {
	return ps.Adj.Neighbors(ps.Local(v))
}

// NeighborWeights returns the weight list of global node v (owned here).
func (ps *PatchStore) NeighborWeights(v graph.NodeID) []float32 {
	return ps.Adj.NeighborWeights(ps.Local(v))
}

// HostStore is the out-of-core tier's view from the sampler (implemented by
// internal/store): host-resident adjacency reads touch it — paying disk I/O
// and decode when the block is not resident — and each assembled layer's
// frontier feeds its proximity-aware prefetcher.
type HostStore interface {
	TouchTopology(p *sim.Proc, ids []graph.NodeID)
	PrefetchTopology(ids []graph.NodeID)
}

// World is the collective sampling state shared by all sampler workers.
type World struct {
	M       *hw.Machine
	Comm    *comm.Communicator
	Offsets []int64
	Patches []*PatchStore

	// hostStore, when set, is the out-of-core tier below host memory: UVA
	// reads of host-resident adjacency first ensure the backing block is in
	// the host block cache (fetching it from the spill device otherwise).
	hostStore HostStore

	// view, when set, enables degraded-mode sampling: tasks whose owner GPU
	// is dead are kept on the requesting GPU and executed against the host
	// master copy of the dead GPU's patch (charged as UVA reads), so sampling
	// results stay bit-identical while the fleet runs short-handed.
	view *fault.View

	// par offloads the owner-side neighbour draws to worker threads between
	// the shuffle and reshuffle commit points; dedup holds one per-rank
	// reusable block-assembly table. Both are lazily built.
	par   *sim.ParallelGroup
	dedup []*sample.Deduper
}

// group lazily binds the world to the engine's parallel worker budget.
func (w *World) group() *sim.ParallelGroup {
	if w.par == nil {
		w.par = w.M.Eng.NewParallelGroup()
	}
	return w.par
}

// deduper returns rank's reusable block-assembly table.
func (w *World) deduper(rank int) *sample.Deduper {
	if w.dedup == nil {
		w.dedup = make([]*sample.Deduper, w.Comm.N)
	}
	if w.dedup[rank] == nil {
		w.dedup[rank] = sample.NewDeduper(int(w.Offsets[len(w.Offsets)-1]))
	}
	return w.dedup[rank]
}

// SetHostStore attaches the out-of-core tier (nil detaches it).
func (w *World) SetHostStore(hs HostStore) { w.hostStore = hs }

// hostResident reports whether reading v's adjacency goes through host
// memory: its owner is dead (degraded mode) or its row was spilled by the
// topology budget. The prefetcher uses it to walk the next sampling frontier
// without issuing fetches for GPU-resident rows.
func (w *World) hostResident(v graph.NodeID) bool {
	o := w.Owner(v)
	if w.view != nil && !w.view.Alive(o) {
		return true
	}
	ps := w.Patches[o]
	return ps.OnHost != nil && ps.OnHost[ps.Local(v)]
}

// SetView makes the world fleet-membership-aware: its communicator
// synchronises over live ranks only, and sampling tasks owned by dead GPUs
// fall back to the requester's cold path.
func (w *World) SetView(v *fault.View) {
	w.view = v
	w.Comm.SetView(v)
}

// routeOwner returns the GPU a task for node v is sent to: the owner, or the
// requester itself when the owner is dead (cold-path fallback).
func (w *World) routeOwner(v graph.NodeID, rank int) int {
	o := w.Owner(v)
	if w.view != nil && !w.view.Alive(o) {
		return rank
	}
	return o
}

// NewWorld partitions a layout-ordered graph into per-GPU patches and
// reserves device memory for them. The graph must already be renumbered so
// GPU g owns ids [offsets[g], offsets[g+1]).
func NewWorld(m *hw.Machine, g graph.Topology, offsets []int64) (*World, error) {
	return NewWorldBudget(m, g, offsets, 0)
}

// NewWorldBudget is NewWorld with a per-GPU topology-cache budget in bytes:
// patches larger than the budget keep their hottest adjacency lists on the
// GPU and leave the rest in CPU memory, accessed via UVA during sampling
// (budget <= 0 caches the full patch). This enables the Figure 10
// topology/feature cache-split experiment.
//
// When g is a *graph.CompressedCSR the patches stay compressed on the GPU:
// resident bytes are charged at the encoded size and the sample stage pays a
// decode kernel per accessed row.
func NewWorldBudget(m *hw.Machine, g graph.Topology, offsets []int64, topoBudget int64) (*World, error) {
	n := len(m.GPUs)
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("csp: %d offsets for %d GPUs", len(offsets), n)
	}
	_, compressed := g.(*graph.CompressedCSR)
	w := &World{M: m, Comm: comm.New(m), Offsets: offsets}
	for gpu := 0; gpu < n; gpu++ {
		lo, hi := graph.NodeID(offsets[gpu]), graph.NodeID(offsets[gpu+1])
		nodes := make([]graph.NodeID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			nodes = append(nodes, v)
		}
		patch := graph.ExtractPatch(g, nodes)
		ps := &PatchStore{Lo: lo, Hi: hi, Adj: patch.Adj}
		if compressed {
			ps.Comp = graph.Compress(&ps.Adj)
		}
		ps.applyBudget(topoBudget)
		if err := m.GPUs[gpu].Reserve(ps.GPUBytes); err != nil {
			return nil, fmt.Errorf("csp: patch for GPU %d: %w", gpu, err)
		}
		w.Patches = append(w.Patches, ps)
	}
	return w, nil
}

// TopologyResidentBytes sums the per-GPU device-resident topology bytes —
// the compressed encoding when the world was built from one. The memory side
// of the compression frontier.
func (w *World) TopologyResidentBytes() int64 {
	var b int64
	for _, ps := range w.Patches {
		b += ps.GPUBytes
	}
	return b
}

// Owner returns the GPU owning global node v (range check over <=8 parts).
func (w *World) Owner(v graph.NodeID) int {
	id := int64(v)
	for g := 0; g < len(w.Offsets)-1; g++ {
		if id < w.Offsets[g+1] {
			return g
		}
	}
	panic(fmt.Sprintf("csp: node %d out of range", v))
}

// task is a shuffled sampling request: draw Count neighbours of Node.
type task struct {
	Node  graph.NodeID
	Count int32
}

const taskBytes = 8
const idBytes = 4

// Clone returns a view of the world sharing the topology patches but with
// its own communicator — one per sampler worker instance when the pipeline
// runs multiple samplers (each worker group needs its own NCCL
// communicator, as in the real system).
func (w *World) Clone() *World {
	return &World{M: w.M, Comm: comm.New(w.M), Offsets: w.Offsets, Patches: w.Patches,
		hostStore: w.hostStore}
}

// SampleBatch collectively samples a mini-batch for this rank's seeds.
// All ranks must call it together (same cfg); ranks with no seeds this step
// pass an empty slice but still serve remote tasks. batchSeed is this rank's
// own batch seed.
func (w *World) SampleBatch(p *sim.Proc, rank int, seeds []graph.NodeID, cfg sample.Config, batchSeed uint64) *sample.MiniBatch {
	return w.sampleBatch(p, rank, seeds, cfg, batchSeed, true)
}

// SampleBatchUnfused is the asynchronous-operation alternative discussed in
// §4.1: instead of executing all received tasks of a layer in one fused
// kernel, each task launches its own small kernel. The paper observes this
// design "has poor efficiency as the communication and sampling tasks of a
// single GPU are small" — the per-kernel launch overhead dominates.
func (w *World) SampleBatchUnfused(p *sim.Proc, rank int, seeds []graph.NodeID, cfg sample.Config, batchSeed uint64) *sample.MiniBatch {
	return w.sampleBatch(p, rank, seeds, cfg, batchSeed, false)
}

// SampleBatchShared is SampleBatch for callers whose ranks already agree on
// one batch seed (e.g. the serving path, where a central controller stamps
// each dispatch round): it skips the seed AllGather — one less collective
// per round on the latency-critical path — and otherwise runs the identical
// shuffle/sample/reshuffle sequence. All ranks must call it together with
// the same sharedSeed.
func (w *World) SampleBatchShared(p *sim.Proc, rank int, seeds []graph.NodeID, cfg sample.Config, sharedSeed uint64) *sample.MiniBatch {
	peerSeed := make([]uint64, w.Comm.N)
	for q := range peerSeed {
		peerSeed[q] = sharedSeed
	}
	return w.sampleLayers(p, rank, seeds, cfg, sharedSeed, peerSeed, true)
}

func (w *World) sampleBatch(p *sim.Proc, rank int, seeds []graph.NodeID, cfg sample.Config, batchSeed uint64, fused bool) *sample.MiniBatch {
	// Exchange batch seeds so owners can seed draws for any requester.
	seedsAll := comm.AllGather(w.Comm, p, rank, []uint64{batchSeed}, comm.Raw(8, hw.TrafficOther))
	peerSeed := make([]uint64, w.Comm.N)
	for q := range peerSeed {
		peerSeed[q] = seedsAll[q][0]
	}
	return w.sampleLayers(p, rank, seeds, cfg, batchSeed, peerSeed, fused)
}

func (w *World) sampleLayers(p *sim.Proc, rank int, seeds []graph.NodeID, cfg sample.Config, batchSeed uint64, peerSeed []uint64, fused bool) *sample.MiniBatch {
	mb := &sample.MiniBatch{Seeds: seeds, Seed: batchSeed}
	dst := seeds
	blocks := make([]*sample.Block, 0, cfg.Layers())
	for l := 0; l < cfg.Layers(); l++ {
		var counts []int32
		if cfg.LayerWise {
			info := w.fetchMasses(p, rank, dst)
			counts = layerCounts(dst, info, cfg, l, batchSeed)
		} else {
			counts = make([]int32, len(dst))
			for i := range counts {
				counts[i] = int32(cfg.Fanout[l])
			}
		}
		block := w.sampleLayer(p, rank, dst, counts, cfg, l, peerSeed, fused)
		blocks = append(blocks, block)
		dst = block.InputNodes
		// Proximity-aware prefetch (BGL-style): the next layer will read the
		// adjacency of this frontier, so warm the out-of-core tier for its
		// host-resident rows while this rank continues sampling.
		if w.hostStore != nil && l+1 < cfg.Layers() {
			var ahead []graph.NodeID
			for _, v := range dst {
				if w.hostResident(v) {
					ahead = append(ahead, v)
				}
			}
			if len(ahead) > 0 {
				w.hostStore.PrefetchTopology(ahead)
			}
		}
	}
	for i, j := 0, len(blocks)-1; i < j; i, j = i+1, j-1 {
		blocks[i], blocks[j] = blocks[j], blocks[i]
	}
	mb.Blocks = blocks
	return mb
}

// massInfo carries a frontier node's neighbour weight mass and degree back
// to the requester for the layer-wise budget split.
type massInfo struct {
	Mass float64
	Deg  int32
}

const massInfoBytes = 12

// layerCounts performs the Eq. (2) budget split locally on the requester.
func layerCounts(dst []graph.NodeID, info []massInfo, cfg sample.Config, layer int, batchSeed uint64) []int32 {
	r := sample.NodeSeed(batchSeed, layer, graph.NodeID(-1))
	budget := cfg.Fanout[layer]
	masses := make([]float64, len(dst))
	for i := range info {
		masses[i] = info[i].Mass
	}
	var perNode []int
	if cfg.WithReplacement {
		perNode = sample.LayerBudget(r, masses, budget)
	} else {
		capacity := make([]int, len(dst))
		for i := range info {
			capacity[i] = int(info[i].Deg)
		}
		perNode = sample.LayerBudgetWithoutReplacement(r, masses, capacity, budget)
	}
	counts := make([]int32, len(dst))
	for i, c := range perNode {
		counts[i] = int32(c)
	}
	return counts
}

// fetchMasses retrieves each frontier node's neighbour weight mass and
// degree from its owner (one round of shuffle/reply with tiny payloads).
func (w *World) fetchMasses(p *sim.Proc, rank int, dst []graph.NodeID) []massInfo {
	n := w.Comm.N
	outIDs := make([][]graph.NodeID, n)
	where := make([][2]int32, len(dst)) // (owner, index in owner's list)
	for i, v := range dst {
		o := w.routeOwner(v, rank)
		where[i] = [2]int32{int32(o), int32(len(outIDs[o]))}
		outIDs[o] = append(outIDs[o], v)
	}
	inIDs := comm.AllToAll(w.Comm, p, rank, outIDs, comm.Raw(idBytes, hw.TrafficSample))
	// Owner side: compute masses with a small kernel. Nodes of a dead GPU's
	// patch are looked up in the host master copy (one UVA item each).
	replies := make([][]massInfo, n)
	var work, hostItems int64
	var hostNodes []graph.NodeID
	for q := 0; q < n; q++ {
		work += int64(len(inIDs[q]))
		for _, v := range inIDs[q] {
			if w.Owner(v) != rank {
				hostItems++
				hostNodes = append(hostNodes, v)
			}
		}
	}
	if work > 0 {
		w.M.GPUs[rank].RunKernel(p, hw.KernelSample, work)
	}
	if len(hostNodes) > 0 && w.hostStore != nil {
		w.hostStore.TouchTopology(p, hostNodes)
	}
	if hostItems > 0 {
		w.M.GPUs[rank].UVARead(p, w.M.Fabric, hostItems, massInfoBytes, hw.TrafficSample)
	}
	for q := 0; q < n; q++ {
		replies[q] = make([]massInfo, len(inIDs[q]))
		for i, v := range inIDs[q] {
			ps := w.Patches[w.Owner(v)]
			lv := ps.Local(v)
			replies[q][i] = massInfo{Mass: ps.Adj.WeightSum(lv), Deg: int32(ps.Adj.Degree(lv))}
		}
	}
	back := comm.AllToAll(w.Comm, p, rank, replies, comm.Raw(massInfoBytes, hw.TrafficSample))
	info := make([]massInfo, len(dst))
	for i := range dst {
		o, j := where[i][0], where[i][1]
		info[i] = back[o][j]
	}
	return info
}

// sampleLayer runs one shuffle/sample/reshuffle round and assembles the
// requester-side block. fused selects one kernel for all received tasks
// (DSP's design) versus one kernel per task (the async alternative).
func (w *World) sampleLayer(p *sim.Proc, rank int, dst []graph.NodeID, counts []int32, cfg sample.Config, layer int, peerSeed []uint64, fused bool) *sample.Block {
	n := w.Comm.N
	dev := w.M.GPUs[rank]

	// --- shuffle: route tasks to owners -------------------------------
	outTasks := make([][]task, n)
	where := make([][2]int32, len(dst))
	for i, v := range dst {
		if counts[i] == 0 {
			where[i] = [2]int32{-1, -1}
			continue
		}
		o := w.routeOwner(v, rank)
		where[i] = [2]int32{int32(o), int32(len(outTasks[o]))}
		outTasks[o] = append(outTasks[o], task{Node: v, Count: counts[i]})
	}
	inTasks := comm.AllToAll(w.Comm, p, rank, outTasks, comm.Raw(taskBytes, hw.TrafficSample))

	// --- sample: one fused kernel over every received task ------------
	// The actual neighbour draws are pure data work (each draw is seeded by
	// (requester seed, layer, node id), independent of execution order), so
	// they are offloaded to the worker pool here and joined at the
	// reshuffle commit point below; the timed kernel/UVA charges in between
	// overlap the draws in real time.
	replyCounts := make([][]int32, n)
	replySamples := make([][]graph.NodeID, n)
	draws := w.group().Submit(func() {
		for q := 0; q < n; q++ {
			replyCounts[q] = make([]int32, len(inTasks[q]))
			var buf []graph.NodeID
			for i, t := range inTasks[q] {
				tps := w.Patches[w.Owner(t.Node)]
				before := len(buf)
				buf = sample.DrawAdj(tps.Neighbors(t.Node), tps.NeighborWeights(t.Node),
					t.Node, layer, int(t.Count), cfg, peerSeed[q], buf)
				replyCounts[q][i] = int32(len(buf) - before)
			}
			replySamples[q] = buf
		}
	})
	var fusedWork, hostItems, decodeBytes int64
	var hostNodes []graph.NodeID
	for q := 0; q < n; q++ {
		for _, t := range inTasks[q] {
			fusedWork += int64(t.Count)
			tps := w.Patches[w.Owner(t.Node)]
			if tps.Comp != nil {
				decodeBytes += tps.Comp.NodeBytes(tps.Local(t.Node))
			}
			if tps != w.Patches[rank] || (tps.OnHost != nil && tps.OnHost[tps.Local(t.Node)]) {
				// Host-resident adjacency — either spilled by the topology
				// budget or belonging to a dead GPU's patch (degraded mode
				// reads the host master copy): the kernel reads the sampled
				// entries (plus the position lookup) through UVA.
				hostItems += int64(t.Count) + 1
				hostNodes = append(hostNodes, t.Node)
			}
		}
	}
	if len(hostNodes) > 0 && w.hostStore != nil {
		// The out-of-core tier sits below host memory: host-resident rows
		// whose backing block was spilled to disk must be fetched (and
		// decoded) into the host block cache before the UVA read can serve.
		w.hostStore.TouchTopology(p, hostNodes)
	}
	if hostItems > 0 {
		dev.UVARead(p, w.M.Fabric, hostItems, 4, hw.TrafficSample)
	}
	if decodeBytes > 0 {
		// Compressed patches pay the varint expansion of every accessed row.
		dev.RunKernel(p, hw.KernelDecode, decodeBytes)
	}
	if fused {
		if fusedWork > 0 {
			dev.RunKernel(p, hw.KernelSample, fusedWork)
		}
	} else {
		for q := 0; q < n; q++ {
			for _, t := range inTasks[q] {
				dev.RunKernel(p, hw.KernelSample, int64(t.Count))
			}
		}
	}
	// --- reshuffle: results travel back to requesters ------------------
	draws.Join() // commit point: replyCounts/replySamples valid from here
	backCounts := comm.AllToAll(w.Comm, p, rank, replyCounts, comm.Raw(4, hw.TrafficSample))
	backSamples := comm.AllToAll(w.Comm, p, rank, replySamples, comm.Raw(idBytes, hw.TrafficSample))

	// --- assembly on the requester -------------------------------------
	// Per-owner cursors into the concatenated sample buffers.
	starts := make([][]int32, n)
	for o := 0; o < n; o++ {
		starts[o] = make([]int32, len(backCounts[o])+1)
		for i, c := range backCounts[o] {
			starts[o][i+1] = starts[o][i] + c
		}
	}
	outCounts := make([]int32, len(dst))
	var samples []graph.NodeID
	for i := range dst {
		o, j := where[i][0], where[i][1]
		if o < 0 {
			continue
		}
		seg := backSamples[o][starts[o][j]:starts[o][j+1]]
		samples = append(samples, seg...)
		outCounts[i] = int32(len(seg))
	}
	// The block-assembly kernel (unique + index building) is bandwidth
	// work proportional to the gathered ids.
	if len(samples) > 0 {
		dev.RunKernel(p, hw.KernelGather, int64(len(samples))*16)
	}
	return w.deduper(rank).BuildBlock(dst, outCounts, samples)
}

// SamplingCommVolume reports the sample-class wire bytes accumulated so far
// (Figure 1 / Figure 11 measurements read this).
func (w *World) SamplingCommVolume() int64 {
	return w.M.Fabric.Counters.TotalWire(hw.TrafficSample)
}
