package csp

import (
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sample"
	"repro/internal/sim"
)

// PullDataSampleBatch samples a mini-batch using the data-pull paradigm the
// paper compares against in Figure 11: instead of pushing sampling tasks to
// the owning GPU, the requester pulls each remote frontier node's ENTIRE
// adjacency list (and weight list for biased sampling) over NVLink and
// samples locally. Results are bit-identical to SampleBatch — only the
// communication volume and timing differ, because adjacency lists are much
// longer than the sampled neighbour sets.
func (w *World) PullDataSampleBatch(p *sim.Proc, rank int, seeds []graph.NodeID, cfg sample.Config, batchSeed uint64) *sample.MiniBatch {
	// Batch seeds still need no exchange: sampling happens on the
	// requester, but keep the collective structure aligned across ranks.
	mb := &sample.MiniBatch{Seeds: seeds, Seed: batchSeed}
	dst := seeds
	blocks := make([]*sample.Block, 0, cfg.Layers())
	for l := 0; l < cfg.Layers(); l++ {
		adjs, wts := w.pullAdjacency(p, rank, dst, cfg.Biased)
		var counts []int32
		if cfg.LayerWise {
			info := make([]massInfo, len(dst))
			for i := range dst {
				var mass float64
				if cfg.Biased {
					for _, x := range wts[i] {
						mass += float64(x)
					}
				} else {
					mass = float64(len(adjs[i]))
				}
				info[i] = massInfo{Mass: mass, Deg: int32(len(adjs[i]))}
			}
			counts = layerCounts(dst, info, cfg, l, batchSeed)
		} else {
			counts = make([]int32, len(dst))
			for i := range counts {
				counts[i] = int32(cfg.Fanout[l])
			}
		}
		// Local sampling kernel over the pulled lists.
		var work int64
		for _, c := range counts {
			work += int64(c)
		}
		if work > 0 {
			w.M.GPUs[rank].RunKernel(p, hw.KernelSample, work)
		}
		outCounts := make([]int32, len(dst))
		var samples []graph.NodeID
		for i, v := range dst {
			if counts[i] == 0 {
				continue
			}
			before := len(samples)
			samples = sample.DrawAdj(adjs[i], wts[i], v, l, int(counts[i]), cfg, batchSeed, samples)
			outCounts[i] = int32(len(samples) - before)
		}
		if len(samples) > 0 {
			w.M.GPUs[rank].RunKernel(p, hw.KernelGather, int64(len(samples))*16)
		}
		block := sample.BuildBlock(dst, outCounts, samples)
		blocks = append(blocks, block)
		dst = block.InputNodes
	}
	for i, j := 0, len(blocks)-1; i < j; i, j = i+1, j-1 {
		blocks[i], blocks[j] = blocks[j], blocks[i]
	}
	mb.Blocks = blocks
	return mb
}

// pullAdjacency fetches the adjacency (and weight) lists of dst nodes from
// their owners, paying full list transfer for remote nodes.
func (w *World) pullAdjacency(p *sim.Proc, rank int, dst []graph.NodeID, biased bool) ([][]graph.NodeID, [][]float32) {
	n := w.Comm.N
	outIDs := make([][]graph.NodeID, n)
	where := make([][2]int32, len(dst))
	for i, v := range dst {
		o := w.Owner(v)
		where[i] = [2]int32{int32(o), int32(len(outIDs[o]))}
		outIDs[o] = append(outIDs[o], v)
	}
	inIDs := comm.AllToAll(w.Comm, p, rank, outIDs, comm.Raw(idBytes, hw.TrafficSample))
	// Owner side: serve adjacency lists (a gather over the patch CSR).
	ps := w.Patches[rank]
	replyCounts := make([][]int32, n)
	replyAdj := make([][]graph.NodeID, n)
	replyW := make([][]float32, n)
	var served int64
	for q := 0; q < n; q++ {
		replyCounts[q] = make([]int32, len(inIDs[q]))
		for i, v := range inIDs[q] {
			adj := ps.Neighbors(v)
			replyCounts[q][i] = int32(len(adj))
			replyAdj[q] = append(replyAdj[q], adj...)
			if biased {
				replyW[q] = append(replyW[q], ps.NeighborWeights(v)...)
			}
			served += int64(len(adj))
		}
	}
	if served > 0 {
		w.M.GPUs[rank].RunKernel(p, hw.KernelGather, served*4)
	}
	backCounts := comm.AllToAll(w.Comm, p, rank, replyCounts, comm.Raw(4, hw.TrafficSample))
	backAdj := comm.AllToAll(w.Comm, p, rank, replyAdj, comm.Raw(idBytes, hw.TrafficSample))
	var backW [][]float32
	if biased {
		backW = comm.AllToAll(w.Comm, p, rank, replyW, comm.Raw(4, hw.TrafficSample))
	}
	// Reassemble per-dst views.
	starts := make([][]int32, n)
	for o := 0; o < n; o++ {
		starts[o] = make([]int32, len(backCounts[o])+1)
		for i, c := range backCounts[o] {
			starts[o][i+1] = starts[o][i] + c
		}
	}
	adjs := make([][]graph.NodeID, len(dst))
	wts := make([][]float32, len(dst))
	for i := range dst {
		o, j := where[i][0], where[i][1]
		adjs[i] = backAdj[o][starts[o][j]:starts[o][j+1]]
		if biased {
			wts[i] = backW[o][starts[o][j]:starts[o][j+1]]
		}
	}
	return adjs, wts
}
