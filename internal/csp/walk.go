package csp

import (
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/sample"
	"repro/internal/sim"
)

// walkTask is a random walk in flight: it migrates to the GPU owning the
// walk's current node (the task-push paradigm with fan-out 1 and no
// reshuffle stage, as described in §4.2).
type walkTask struct {
	WalkID int32
	Origin int32
	Cur    graph.NodeID
}

const walkTaskBytes = 12

// walkResult reports one hop of a walk back to its origin GPU.
type walkResult struct {
	WalkID int32
	Step   int32
	Node   graph.NodeID
}

const walkResultBytes = 12

// RandomWalk runs one random walk of the given length from each start node,
// collectively across all ranks. On weighted graphs the next hop is drawn
// proportionally to edge weight (biased walks, as in DeepWalk/node2vec);
// otherwise uniformly. Walks terminate early at nodes with no neighbours (a
// termination condition evaluated in the shuffle stage). paths[i][0] is
// starts[i]; shorter paths indicate early termination. All ranks must call
// RandomWalk together.
func (w *World) RandomWalk(p *sim.Proc, rank int, starts []graph.NodeID, length int, batchSeed uint64) [][]graph.NodeID {
	n := w.Comm.N
	seedsAll := comm.AllGather(w.Comm, p, rank, []uint64{batchSeed}, comm.Raw(8, hw.TrafficOther))
	peerSeed := make([]uint64, n)
	for q := range peerSeed {
		peerSeed[q] = seedsAll[q][0]
	}

	paths := make([][]graph.NodeID, len(starts))
	for i, v := range starts {
		paths[i] = append(paths[i], v)
	}
	// Route initial tasks to the owners of the start nodes.
	active := make([]walkTask, len(starts))
	for i, v := range starts {
		active[i] = walkTask{WalkID: int32(i), Origin: int32(rank), Cur: v}
	}
	cfg := sample.Config{WithReplacement: true, Fanout: []int{1}}
	if w.Patches[rank].Adj.Weights != nil {
		cfg.Biased = true
	}
	for step := 0; step < length; step++ {
		// Shuffle stage: send each active task to the owner of its node.
		out := make([][]walkTask, n)
		for _, t := range active {
			o := w.Owner(t.Cur)
			out[o] = append(out[o], t)
		}
		in := comm.AllToAll(w.Comm, p, rank, out, comm.Raw(walkTaskBytes, hw.TrafficSample))
		// Sample stage: one fused fan-out-1 kernel over received tasks.
		var work int64
		for q := 0; q < n; q++ {
			work += int64(len(in[q]))
		}
		if work > 0 {
			w.M.GPUs[rank].RunKernel(p, hw.KernelSample, work)
		}
		ps := w.Patches[rank]
		results := make([][]walkResult, n)
		active = active[:0]
		for q := 0; q < n; q++ {
			for _, t := range in[q] {
				adj := ps.Neighbors(t.Cur)
				next := sample.DrawAdj(adj, ps.NeighborWeights(t.Cur), t.Cur,
					step, 1, cfg, peerSeed[t.Origin], nil)
				if len(next) == 0 {
					continue // dead end: the walk terminates here
				}
				results[t.Origin] = append(results[t.Origin],
					walkResult{WalkID: t.WalkID, Step: int32(step), Node: next[0]})
				// The continuing task stays with this GPU's outbox for the
				// next shuffle (it will be routed to next[0]'s owner).
				active = append(active, walkTask{WalkID: t.WalkID, Origin: t.Origin, Cur: next[0]})
			}
		}
		// Hop results stream back to the origins (tiny messages; this
		// replaces the reshuffle stage).
		back := comm.AllToAll(w.Comm, p, rank, results, comm.Raw(walkResultBytes, hw.TrafficSample))
		for q := 0; q < n; q++ {
			for _, r := range back[q] {
				paths[r.WalkID] = append(paths[r.WalkID], r.Node)
			}
		}
	}
	return paths
}
