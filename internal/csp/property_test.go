package csp

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/hw"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/sim"
)

// TestCSPEquivalenceProperty drives CSP across randomised configurations
// (graph shape, GPU count, fan-outs, bias, batch seeds) and checks
// bit-equality with the reference sampler every time.
func TestCSPEquivalenceProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nGPU := []int{2, 3, 4, 5, 8}[r.Intn(5)]
		nodes := 300 + r.Intn(1200)
		deg := 4 + r.Intn(12)
		layers := 1 + r.Intn(3)
		fanout := make([]int, layers)
		for i := range fanout {
			fanout[i] = 1 + r.Intn(7)
		}
		biased := r.Intn(2) == 1
		d := gen.Generate(gen.Config{
			Name: "prop", Nodes: nodes, AvgDegree: float64(deg),
			FeatDim: 2, NumClasses: 4, Seed: seed,
		})
		if biased {
			d.AttachUniformWeights(seed + 1)
		}
		res := partition.Metis(d.G, nGPU, seed)
		ren := partition.BuildRenumbering(res)
		gl := ren.ApplyToGraph(d.G)
		m := hw.NewMachine(nGPU, hw.V100(), hw.XeonE5())
		w, err := NewWorld(m, gl, ren.Offsets)
		if err != nil {
			t.Log(err)
			return false
		}
		cfg := sample.Config{Fanout: fanout, Biased: biased}
		train := ren.ApplyToIDs(d.TrainIdx)
		seeds := make([][]int32, nGPU)
		bseeds := make([]uint64, nGPU)
		for g := 0; g < nGPU; g++ {
			owned := ren.SortOwned(train, g)
			if len(owned) > 20 {
				owned = owned[:20]
			}
			seeds[g] = owned
			bseeds[g] = rng.Mix(seed, uint64(g))
		}
		got := make([]*sample.MiniBatch, nGPU)
		for g := 0; g < nGPU; g++ {
			g := g
			m.Eng.Go(fmt.Sprintf("s%d", g), func(p *sim.Proc) {
				got[g] = w.SampleBatch(p, g, seeds[g], cfg, bseeds[g])
			})
		}
		if _, err := m.Eng.Run(); err != nil {
			t.Log(err)
			return false
		}
		for g := 0; g < nGPU; g++ {
			want := sample.Reference(gl, seeds[g], cfg, bseeds[g])
			if err := sameBatch(got[g], want); err != nil {
				t.Logf("seed %d gpu %d: %v", seed, g, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(func(s uint16) bool { return check(uint64(s)) }, cfg); err != nil {
		t.Fatal(err)
	}
}
