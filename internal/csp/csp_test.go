package csp

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/sim"
)

type world struct {
	m      *hw.Machine
	w      *World
	g      *graph.CSR // layout-ordered full graph (the reference oracle)
	ren    *partition.Renumbering
	seeds  [][]graph.NodeID // per-rank co-partitioned seeds
	bseeds []uint64
}

func buildWorld(t testing.TB, nGPU int, biased bool) *world {
	t.Helper()
	d := gen.Generate(gen.Config{
		Name: "t", Nodes: 3000, AvgDegree: 14, FeatDim: 4, NumClasses: 6, Seed: 21,
	})
	if biased {
		d.AttachUniformWeights(77)
	}
	res := partition.Metis(d.G, nGPU, 5)
	ren := partition.BuildRenumbering(res)
	gl := ren.ApplyToGraph(d.G)
	m := hw.NewMachine(nGPU, hw.V100(), hw.XeonE5())
	w, err := NewWorld(m, gl, ren.Offsets)
	if err != nil {
		t.Fatal(err)
	}
	train := ren.ApplyToIDs(d.TrainIdx)
	out := &world{m: m, w: w, g: gl, ren: ren}
	for r := 0; r < nGPU; r++ {
		owned := ren.SortOwned(train, r)
		if len(owned) > 64 {
			owned = owned[:64]
		}
		out.seeds = append(out.seeds, owned)
		out.bseeds = append(out.bseeds, rng.Mix(99, uint64(r)))
	}
	return out
}

func sameBatch(a, b *sample.MiniBatch) error {
	if len(a.Blocks) != len(b.Blocks) {
		return fmt.Errorf("block counts %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for l := range a.Blocks {
		ba, bb := a.Blocks[l], b.Blocks[l]
		if len(ba.Dst) != len(bb.Dst) || len(ba.Src) != len(bb.Src) {
			return fmt.Errorf("block %d sizes differ: dst %d/%d src %d/%d",
				l, len(ba.Dst), len(bb.Dst), len(ba.Src), len(bb.Src))
		}
		for i := range ba.Dst {
			if ba.Dst[i] != bb.Dst[i] {
				return fmt.Errorf("block %d dst[%d]: %d vs %d", l, i, ba.Dst[i], bb.Dst[i])
			}
		}
		for i := range ba.Src {
			if ba.Src[i] != bb.Src[i] {
				return fmt.Errorf("block %d src[%d]: %d vs %d", l, i, ba.Src[i], bb.Src[i])
			}
		}
		for i := range ba.SrcPtr {
			if ba.SrcPtr[i] != bb.SrcPtr[i] {
				return fmt.Errorf("block %d srcptr[%d]", l, i)
			}
		}
	}
	return nil
}

func runCollective(t *testing.T, tw *world, fn func(p *sim.Proc, rank int) *sample.MiniBatch) []*sample.MiniBatch {
	t.Helper()
	n := len(tw.m.GPUs)
	got := make([]*sample.MiniBatch, n)
	for r := 0; r < n; r++ {
		r := r
		tw.m.Eng.Go(fmt.Sprintf("sampler%d", r), func(p *sim.Proc) {
			got[r] = fn(p, r)
		})
	}
	if _, err := tw.m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCSPMatchesReferenceNodeWise(t *testing.T) {
	for _, nGPU := range []int{1, 2, 4, 8} {
		tw := buildWorld(t, nGPU, false)
		cfg := sample.Config{Fanout: []int{5, 3, 2}}
		got := runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
			return tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
		})
		for r := 0; r < nGPU; r++ {
			want := sample.Reference(tw.g, tw.seeds[r], cfg, tw.bseeds[r])
			if err := sameBatch(got[r], want); err != nil {
				t.Fatalf("nGPU=%d rank=%d: %v", nGPU, r, err)
			}
			if err := got[r].Validate(); err != nil {
				t.Fatalf("nGPU=%d rank=%d: %v", nGPU, r, err)
			}
		}
	}
}

func TestCSPMatchesReferenceBiased(t *testing.T) {
	tw := buildWorld(t, 4, true)
	cfg := sample.Config{Fanout: []int{6, 4}, Biased: true}
	got := runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
		return tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
	})
	for r := 0; r < 4; r++ {
		want := sample.Reference(tw.g, tw.seeds[r], cfg, tw.bseeds[r])
		if err := sameBatch(got[r], want); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestCSPMatchesReferenceLayerWise(t *testing.T) {
	for _, withRepl := range []bool{true, false} {
		tw := buildWorld(t, 4, false)
		cfg := sample.Config{Fanout: []int{40, 40}, LayerWise: true, WithReplacement: withRepl}
		got := runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
			return tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
		})
		for r := 0; r < 4; r++ {
			want := sample.Reference(tw.g, tw.seeds[r], cfg, tw.bseeds[r])
			if err := sameBatch(got[r], want); err != nil {
				t.Fatalf("withRepl=%v rank %d: %v", withRepl, r, err)
			}
		}
	}
}

func TestPullDataMatchesReference(t *testing.T) {
	tw := buildWorld(t, 4, true)
	cfg := sample.Config{Fanout: []int{5, 3}, Biased: true}
	got := runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
		return tw.w.PullDataSampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
	})
	for r := 0; r < 4; r++ {
		want := sample.Reference(tw.g, tw.seeds[r], cfg, tw.bseeds[r])
		if err := sameBatch(got[r], want); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTaskPushBeatsDataPullOnVolume(t *testing.T) {
	// Figure 11's premise: CSP moves far fewer bytes than pulling
	// adjacency+weight lists for biased sampling.
	cfg := sample.Config{Fanout: []int{10, 10}, Biased: true}
	volume := func(pull bool) int64 {
		tw := buildWorld(t, 4, true)
		runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
			if pull {
				return tw.w.PullDataSampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
			}
			return tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
		})
		return tw.w.SamplingCommVolume()
	}
	push := volume(false)
	pull := volume(true)
	if push >= pull {
		t.Fatalf("task push volume %d not below data pull %d", push, pull)
	}
}

func TestCSPSingleGPUNoCommunication(t *testing.T) {
	tw := buildWorld(t, 1, false)
	cfg := sample.Config{Fanout: []int{5, 5}}
	runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
		return tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
	})
	if tw.m.Fabric.Counters.TotalAllWire() != 0 {
		t.Fatal("single-GPU CSP moved wire bytes")
	}
}

func TestCSPEmptySeedRankStillServes(t *testing.T) {
	tw := buildWorld(t, 4, false)
	cfg := sample.Config{Fanout: []int{5, 3}}
	// Rank 2 contributes no seeds but must participate.
	tw.seeds[2] = nil
	got := runCollective(t, tw, func(p *sim.Proc, r int) *sample.MiniBatch {
		return tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
	})
	if got[2].NumSampledEdges() != 0 {
		t.Fatal("empty-seed rank produced samples")
	}
	for _, r := range []int{0, 1, 3} {
		want := sample.Reference(tw.g, tw.seeds[r], cfg, tw.bseeds[r])
		if err := sameBatch(got[r], want); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestPatchesReserveDeviceMemory(t *testing.T) {
	tw := buildWorld(t, 4, false)
	for g, dev := range tw.m.GPUs {
		if dev.MemUsed() == 0 {
			t.Errorf("GPU %d reserved no memory for its patch", g)
		}
	}
	// A machine with tiny GPUs must fail to host the patches.
	spec := hw.V100()
	spec.MemBytes = 10
	m2 := hw.NewMachine(4, spec, hw.XeonE5())
	if _, err := NewWorld(m2, tw.g, tw.ren.Offsets); err == nil {
		t.Fatal("NewWorld fit a graph into 10-byte GPUs")
	}
}

func TestOwnerRangeCheck(t *testing.T) {
	tw := buildWorld(t, 4, false)
	for r := 0; r < 4; r++ {
		lo, hi := tw.ren.OwnedRange(r)
		if tw.w.Owner(lo) != r || tw.w.Owner(hi-1) != r {
			t.Fatalf("owner lookup wrong for rank %d", r)
		}
	}
}

func TestRandomWalkValidPaths(t *testing.T) {
	tw := buildWorld(t, 4, false)
	const length = 8
	paths := make([][][]graph.NodeID, 4)
	n := 4
	for r := 0; r < n; r++ {
		r := r
		tw.m.Eng.Go("walker", func(p *sim.Proc) {
			starts := tw.seeds[r][:8]
			paths[r] = tw.w.RandomWalk(p, r, starts, length, tw.bseeds[r])
		})
	}
	if _, err := tw.m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if len(paths[r]) != 8 {
			t.Fatalf("rank %d: %d paths", r, len(paths[r]))
		}
		for i, path := range paths[r] {
			if path[0] != tw.seeds[r][i] {
				t.Fatalf("path %d does not start at its seed", i)
			}
			if len(path) > length+1 {
				t.Fatalf("path %d too long: %d", i, len(path))
			}
			// Every consecutive pair is a real edge.
			for h := 1; h < len(path); h++ {
				found := false
				for _, u := range tw.g.Neighbors(path[h-1]) {
					if u == path[h] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("path %d hop %d not an edge: %d->%d", i, h, path[h-1], path[h])
				}
			}
		}
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	run := func() [][]graph.NodeID {
		tw := buildWorld(t, 2, false)
		out := make([][][]graph.NodeID, 2)
		for r := 0; r < 2; r++ {
			r := r
			tw.m.Eng.Go("walker", func(p *sim.Proc) {
				out[r] = tw.w.RandomWalk(p, r, tw.seeds[r][:4], 6, tw.bseeds[r])
			})
		}
		if _, err := tw.m.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("walk %d length differs", i)
		}
		for h := range a[i] {
			if a[i][h] != b[i][h] {
				t.Fatalf("walk %d hop %d differs", i, h)
			}
		}
	}
}

func TestCSPDeterministicVirtualTime(t *testing.T) {
	run := func() sim.Time {
		tw := buildWorld(t, 4, false)
		cfg := sample.Config{Fanout: []int{5, 3, 2}}
		for r := 0; r < 4; r++ {
			r := r
			tw.m.Eng.Go("s", func(p *sim.Proc) {
				tw.w.SampleBatch(p, r, tw.seeds[r], cfg, tw.bseeds[r])
			})
		}
		end, err := tw.m.Eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("virtual time not reproducible: %v vs %v", a, b)
	}
}

func TestRandomWalkBiasedFollowsWeights(t *testing.T) {
	// On a weighted graph, walks favour heavy edges: construct a 3-node
	// graph where node 0's neighbours are {1 (weight 9), 2 (weight 1)} and
	// check the first-hop distribution.
	g := graph.FromEdges(3,
		[]graph.NodeID{1, 2, 0, 0},
		[]graph.NodeID{0, 0, 1, 2})
	g.Weights = []float32{9, 1, 1, 1}
	m := hw.NewMachine(1, hw.V100(), hw.XeonE5())
	w, err := NewWorld(m, g, []int64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[graph.NodeID]int{}
	m.Eng.Go("walker", func(p *sim.Proc) {
		starts := make([]graph.NodeID, 400)
		// Distinct batch seeds per walk round would need distinct start
		// nodes; instead run many walks from node 0 under different seeds.
		for round := 0; round < 50; round++ {
			for i := range starts {
				starts[i] = 0
			}
			paths := w.RandomWalk(p, 0, starts[:8], 1, rng.Mix(99, uint64(round)))
			for _, path := range paths {
				if len(path) > 1 {
					counts[path[1]]++
				}
			}
		}
	})
	if _, err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	total := counts[1] + counts[2]
	if total == 0 {
		t.Fatal("no hops recorded")
	}
	frac := float64(counts[1]) / float64(total)
	if frac < 0.8 {
		t.Fatalf("heavy edge taken %.2f of the time, want ~0.9", frac)
	}
}

func TestSampleBatchSharedMatchesReference(t *testing.T) {
	// The serving path's shared-seed variant must produce exactly the
	// batches a single-address-space sampler seeded with the same shared
	// seed would: per rank, Reference(seeds[r], sharedSeed).
	tw := buildWorld(t, 4, false)
	cfg := sample.Config{Fanout: []int{6, 4}}
	shared := rng.Mix(4242, 1)
	got := runCollective(t, tw, func(p *sim.Proc, rank int) *sample.MiniBatch {
		return tw.w.SampleBatchShared(p, rank, tw.seeds[rank], cfg, shared)
	})
	for r := range got {
		want := sample.Reference(tw.g, tw.seeds[r], cfg, shared)
		if err := sameBatch(got[r], want); err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestSampleBatchSharedEmptyRank(t *testing.T) {
	// Serving rounds routinely dispatch work to a subset of GPUs; idle
	// ranks pass empty seed slices but must still serve remote tasks.
	tw := buildWorld(t, 4, false)
	cfg := sample.Config{Fanout: []int{6, 4}}
	shared := rng.Mix(4242, 2)
	got := runCollective(t, tw, func(p *sim.Proc, rank int) *sample.MiniBatch {
		seeds := tw.seeds[rank]
		if rank != 1 {
			seeds = nil
		}
		return tw.w.SampleBatchShared(p, rank, seeds, cfg, shared)
	})
	want := sample.Reference(tw.g, tw.seeds[1], cfg, shared)
	if err := sameBatch(got[1], want); err != nil {
		t.Errorf("rank 1: %v", err)
	}
	for _, r := range []int{0, 2, 3} {
		if len(got[r].Seeds) != 0 {
			t.Errorf("idle rank %d produced seeds", r)
		}
	}
}
