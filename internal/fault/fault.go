// Package fault provides a seeded, deterministic fault injector for the
// simulated multi-GPU machine: scheduled GPU crashes, transient stalls
// (stragglers), and NVLink degradation or partition. Faults are described by
// a compact spec string (CLI-friendly), applied by an Injector daemon
// process running inside the simulation engine, and observed by the rest of
// the system through a shared membership View. Because every schedule is
// explicit virtual times and every random schedule is derived from a seed,
// recovery runs are bit-for-bit reproducible.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Crash permanently fails a GPU at a virtual instant.
	Crash Kind = iota
	// Stall seizes all of a GPU's threads for a duration (a straggler).
	Stall
	// LinkDown takes an NVLink link out of service for a duration; traffic
	// routed over it queues behind the outage (a partition that heals).
	LinkDown
	// LinkDegrade divides an NVLink link's bandwidth by Factor for a
	// duration.
	LinkDegrade
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case LinkDown:
		return "linkdown"
	case LinkDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault.
type Fault struct {
	Kind Kind
	// GPU is the target GPU (Crash, Stall) or the link's first endpoint
	// (LinkDown, LinkDegrade).
	GPU int
	// Peer is the link's second endpoint (link faults only).
	Peer int
	// At is the injection instant in virtual seconds from the start of the
	// run.
	At sim.Time
	// Duration is how long the fault persists (zero for Crash: permanent).
	Duration sim.Time
	// Factor is the bandwidth division for LinkDegrade (e.g. 4 = quarter
	// bandwidth).
	Factor float64
}

// String renders the fault in the spec grammar accepted by ParseSpec.
func (f Fault) String() string {
	switch f.Kind {
	case Crash:
		return fmt.Sprintf("crash@gpu%d:t=%g", f.GPU, float64(f.At))
	case Stall:
		return fmt.Sprintf("stall@gpu%d:t=%g+%s", f.GPU, float64(f.At), formatDur(f.Duration))
	case LinkDown:
		return fmt.Sprintf("linkdown@gpu%d-gpu%d:t=%g+%s", f.GPU, f.Peer, float64(f.At), formatDur(f.Duration))
	case LinkDegrade:
		return fmt.Sprintf("degrade@gpu%d-gpu%d:t=%g+%s:x%g", f.GPU, f.Peer, float64(f.At), formatDur(f.Duration), f.Factor)
	default:
		return fmt.Sprintf("fault(%d)", int(f.Kind))
	}
}

func formatDur(d sim.Time) string {
	ms := float64(d) * 1e3
	if ms == float64(int64(ms)) {
		return fmt.Sprintf("%dms", int64(ms))
	}
	return fmt.Sprintf("%gs", float64(d))
}

// FormatSpec renders a schedule as a spec string (inverse of ParseSpec).
func FormatSpec(faults []Fault) string {
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault schedule, e.g.
//
//	crash@gpu2:t=1.5,stall@gpu0:t=0.8+50ms
//	linkdown@gpu0-gpu1:t=0.5+10ms,degrade@gpu1-gpu2:t=0.3+20ms:x4
//
// Grammar per entry: kind@target:t=<seconds>[+<duration>][:x<factor>] where
// kind is crash|stall|linkdown|degrade, target is gpuN (crash, stall) or
// gpuN-gpuM (link faults), duration accepts s/ms/us suffixes, and x<factor>
// is the LinkDegrade bandwidth divisor (default 4). nGPU bounds the valid
// GPU ids.
func ParseSpec(spec string, nGPU int) ([]Fault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Fault
	for _, entry := range strings.Split(spec, ",") {
		f, err := parseEntry(strings.TrimSpace(entry), nGPU)
		if err != nil {
			return nil, fmt.Errorf("fault: bad entry %q: %w", entry, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseEntry(s string, nGPU int) (Fault, error) {
	var f Fault
	kindTarget, rest, ok := strings.Cut(s, ":")
	if !ok {
		return f, fmt.Errorf("missing ':t=' clause")
	}
	kind, target, ok := strings.Cut(kindTarget, "@")
	if !ok {
		return f, fmt.Errorf("missing '@gpuN' target")
	}
	switch kind {
	case "crash":
		f.Kind = Crash
	case "stall":
		f.Kind = Stall
	case "linkdown":
		f.Kind = LinkDown
	case "degrade":
		f.Kind = LinkDegrade
	default:
		return f, fmt.Errorf("unknown kind %q (want crash, stall, linkdown or degrade)", kind)
	}

	isLink := f.Kind == LinkDown || f.Kind == LinkDegrade
	if isLink {
		a, b, ok := strings.Cut(target, "-")
		if !ok {
			return f, fmt.Errorf("link fault target must be gpuN-gpuM, got %q", target)
		}
		var err error
		if f.GPU, err = parseGPU(a, nGPU); err != nil {
			return f, err
		}
		if f.Peer, err = parseGPU(b, nGPU); err != nil {
			return f, err
		}
		if f.GPU == f.Peer {
			return f, fmt.Errorf("link endpoints must differ")
		}
	} else {
		var err error
		if f.GPU, err = parseGPU(target, nGPU); err != nil {
			return f, err
		}
	}

	// rest: t=<sec>[+<dur>][:x<factor>]
	tPart := rest
	if f.Kind == LinkDegrade {
		f.Factor = 4
		if base, fac, ok := strings.Cut(rest, ":"); ok {
			tPart = base
			if !strings.HasPrefix(fac, "x") {
				return f, fmt.Errorf("degrade factor must look like x4, got %q", fac)
			}
			v, err := strconv.ParseFloat(fac[1:], 64)
			if err != nil || v <= 1 {
				return f, fmt.Errorf("degrade factor must be a number > 1, got %q", fac)
			}
			f.Factor = v
		}
	}
	if !strings.HasPrefix(tPart, "t=") {
		return f, fmt.Errorf("expected t=<seconds>, got %q", tPart)
	}
	tv := tPart[2:]
	durStr := ""
	if base, d, ok := strings.Cut(tv, "+"); ok {
		tv, durStr = base, d
	}
	at, err := strconv.ParseFloat(tv, 64)
	if err != nil || at < 0 {
		return f, fmt.Errorf("bad injection time %q (want non-negative seconds)", tv)
	}
	f.At = sim.Time(at)
	if durStr != "" {
		d, err := parseDur(durStr)
		if err != nil {
			return f, err
		}
		f.Duration = d
	}
	switch f.Kind {
	case Crash:
		if f.Duration != 0 {
			return f, fmt.Errorf("crash is permanent; it takes no +duration")
		}
	default:
		if f.Duration <= 0 {
			return f, fmt.Errorf("%s needs a positive +duration (e.g. +50ms)", f.Kind)
		}
	}
	return f, nil
}

func parseGPU(s string, nGPU int) (int, error) {
	if !strings.HasPrefix(s, "gpu") {
		return 0, fmt.Errorf("target must look like gpuN, got %q", s)
	}
	id, err := strconv.Atoi(s[3:])
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad GPU id %q", s)
	}
	if nGPU > 0 && id >= nGPU {
		return 0, fmt.Errorf("gpu%d out of range (machine has %d GPUs)", id, nGPU)
	}
	return id, nil
}

func parseDur(s string) (sim.Time, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, s = 1e-3, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		mult, s = 1e-6, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad duration %q (want e.g. 50ms, 0.05s)", s)
	}
	return sim.Time(v * mult), nil
}

// Sort orders a schedule by injection time (stable, so equal-time faults
// keep spec order). The injector applies faults in this order.
func Sort(faults []Fault) {
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
}

// RandomSchedule derives a reproducible Poisson fault schedule from a seed:
// crashes at crashRate per virtual second and stalls at stallRate per
// virtual second over [0, horizon), targets drawn uniformly over the n GPUs.
// At least one GPU is always left alive (excess crash arrivals are dropped).
func RandomSchedule(seed uint64, n int, horizon sim.Time, crashRate, stallRate float64, stallDur sim.Time) []Fault {
	var out []Fault
	dead := make([]bool, n)
	deadCount := 0
	r := rng.New(rng.Mix(seed, 0xFA117))
	for t := sim.Time(0); crashRate > 0; {
		t += sim.Time(r.Exp(crashRate))
		if t >= horizon {
			break
		}
		g := r.Intn(n)
		if dead[g] || deadCount == n-1 {
			continue
		}
		dead[g] = true
		deadCount++
		out = append(out, Fault{Kind: Crash, GPU: g, At: t})
	}
	r = rng.New(rng.Mix(seed, 0x57A11))
	for t := sim.Time(0); stallRate > 0; {
		t += sim.Time(r.Exp(stallRate))
		if t >= horizon {
			break
		}
		out = append(out, Fault{Kind: Stall, GPU: r.Intn(n), At: t, Duration: stallDur})
	}
	Sort(out)
	return out
}

// CrashError reports a fatal GPU crash that interrupted the run. The
// training driver recovers from it by restoring a checkpoint and replaying.
type CrashError struct {
	GPU int
	At  sim.Time
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: gpu%d crashed at t=%g", e.GPU, float64(e.At))
}

// Aborted is the panic value used to unwind a collective participant whose
// group membership changed mid-operation (a peer crashed). Degraded-mode
// callers recover it and retry the operation under the new view; anything
// else propagating it is a bug.
type Aborted struct {
	// Gen is the membership generation the aborted attempt started under.
	Gen int
}

func (a Aborted) Error() string {
	return fmt.Sprintf("fault: collective aborted (membership generation %d superseded)", a.Gen)
}
