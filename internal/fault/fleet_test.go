package fault

import (
	"strings"
	"testing"
)

func TestParseFleetSpec(t *testing.T) {
	spec := "crash@fleet1:t=0.2,stall@fleet0/gpu1:t=0.1+50ms,linkdown@fleet2/gpu0-gpu1:t=0.3+10ms"
	ffs, err := ParseFleetSpec(spec, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ffs) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(ffs))
	}
	if !ffs[0].Whole || ffs[0].Fleet != 1 || ffs[0].Fault.Kind != Crash || ffs[0].Fault.At != 0.2 {
		t.Fatalf("whole-fleet crash mis-parsed: %+v", ffs[0])
	}
	if ffs[1].Whole || ffs[1].Fleet != 0 || ffs[1].Fault.Kind != Stall ||
		ffs[1].Fault.GPU != 1 || ffs[1].Fault.Duration != 50e-3 {
		t.Fatalf("scoped stall mis-parsed: %+v", ffs[1])
	}
	if ffs[2].Fleet != 2 || ffs[2].Fault.Kind != LinkDown ||
		ffs[2].Fault.GPU != 0 || ffs[2].Fault.Peer != 1 {
		t.Fatalf("scoped linkdown mis-parsed: %+v", ffs[2])
	}

	// Round-trip through String.
	for _, ff := range ffs {
		again, err := ParseFleetSpec(ff.String(), 3, 4)
		if err != nil {
			t.Fatalf("round-trip %q: %v", ff.String(), err)
		}
		if len(again) != 1 || again[0] != ff {
			t.Fatalf("round-trip %q: got %+v want %+v", ff.String(), again[0], ff)
		}
	}
}

func TestParseFleetSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"stall@fleet0:t=0.1+50ms", "whole-fleet faults must be crash"},
		{"crash@fleet9:t=0.1", "out of range"},
		{"crash@fleet0/gpu7:t=0.1", "out of range"},
		{"crash@gpu0:t=0.1", "must start with fleetF"},
		{"crash@fleet0", "missing ':t='"},
		{"crash@fleetx:t=0.1", "bad fleet id"},
	}
	for _, c := range cases {
		if _, err := ParseFleetSpec(c.spec, 3, 4); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %v does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestSplitFleet(t *testing.T) {
	ffs, err := ParseFleetSpec("stall@fleet2/gpu0:t=0.1+5ms,crash@fleet1:t=0.3,crash@fleet0:t=0.2", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	whole, scoped := SplitFleet(ffs, 3)
	if len(whole) != 2 || whole[0].Fleet != 0 || whole[1].Fleet != 1 {
		t.Fatalf("whole-fleet crashes wrong or unsorted: %+v", whole)
	}
	if len(scoped[2]) != 1 || scoped[2][0].Kind != Stall || len(scoped[0]) != 0 || len(scoped[1]) != 0 {
		t.Fatalf("scoped split wrong: %+v", scoped)
	}
}
