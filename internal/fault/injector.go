package fault

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Applied records one fault the injector actually fired (for reports).
type Applied struct {
	Fault Fault
	At    sim.Time // global virtual time of application (Base + local time)
}

// Injector schedules a fault list onto a machine. It runs as a daemon
// process inside the simulation engine: it sleeps to each fault's instant
// and applies it, so faults interleave deterministically with the workload.
//
// Crash handling has two modes. With no OnCrash handler registered
// (training), a crash interrupts the whole engine with a *CrashError — the
// fail-stop model where the job dies and the driver restores a checkpoint.
// With handlers registered (serving), the crash only updates the membership
// View and runs the handlers; the fleet keeps running degraded.
type Injector struct {
	m      *hw.Machine
	faults []Fault // sorted by At
	view   *View

	// Base is the global virtual time already consumed by previous
	// incarnations of the machine (training recovery rebuilds the fleet on a
	// fresh engine). Fault times are global; the injector subtracts Base and,
	// when Base is non-zero, skips faults at or before it — the crash that set
	// Base (and anything scheduled up to that instant) was already delivered
	// to the previous incarnation.
	Base sim.Time

	armed   bool
	proc    *sim.Proc
	onCrash []func(p *sim.Proc, f Fault)
	applied []Applied
}

// NewInjector validates the schedule against the machine and returns an
// unarmed injector. Link faults must name NVLink-adjacent GPU pairs.
func NewInjector(m *hw.Machine, faults []Fault) (*Injector, error) {
	n := len(m.GPUs)
	sorted := append([]Fault(nil), faults...)
	Sort(sorted)
	for _, f := range sorted {
		if f.GPU < 0 || f.GPU >= n {
			return nil, fmt.Errorf("fault: gpu%d out of range (machine has %d GPUs)", f.GPU, n)
		}
		if f.Kind == LinkDown || f.Kind == LinkDegrade {
			if f.Peer < 0 || f.Peer >= n {
				return nil, fmt.Errorf("fault: gpu%d out of range (machine has %d GPUs)", f.Peer, n)
			}
			if m.Fabric.Topo.NVLinkIndex(f.GPU, f.Peer) < 0 {
				return nil, fmt.Errorf("fault: no direct NVLink between gpu%d and gpu%d", f.GPU, f.Peer)
			}
		}
	}
	return &Injector{m: m, faults: sorted, view: NewView(n)}, nil
}

// View returns the injector's membership view (shared with communicators,
// coordinators and servers).
func (in *Injector) View() *View { return in.view }

// OnCrash registers a degraded-mode crash handler, called in engine context
// at the crash instant after the View reflects the death. Registering any
// handler disables the default engine interrupt.
func (in *Injector) OnCrash(fn func(p *sim.Proc, f Fault)) {
	in.onCrash = append(in.onCrash, fn)
}

// Applied returns the faults fired so far, in order.
func (in *Injector) Applied() []Applied { return in.applied }

// Arm spawns the injector daemon if it is not already running and faults
// remain. Safe to call before every Engine.Run.
func (in *Injector) Arm() {
	if in.armed || len(in.faults) == 0 {
		return
	}
	in.armed = true
	in.proc = in.m.Eng.GoDaemon("fault/injector", in.run)
}

// Stop kills the injector daemon (end of run; remaining faults never fire).
func (in *Injector) Stop() {
	if in.proc != nil {
		in.m.Eng.Kill(in.proc)
		in.proc = nil
	}
	in.armed = false
}

func (in *Injector) run(p *sim.Proc) {
	for _, f := range in.faults {
		at := f.At - in.Base
		if at < 0 || (at == 0 && in.Base > 0) {
			// Fired during a previous incarnation of the machine; the
			// rebuilt fleet starts healthy (fail-stop restart model).
			continue
		}
		if at > p.Now() {
			p.Sleep(at - p.Now())
		}
		in.apply(p, f)
	}
}

func (in *Injector) apply(p *sim.Proc, f Fault) {
	eng := in.m.Eng
	now := eng.Now()
	in.applied = append(in.applied, Applied{Fault: f, At: now + in.Base})
	in.instant(f.GPU, f.String())
	switch f.Kind {
	case Crash:
		if !in.view.Alive(f.GPU) {
			return
		}
		in.view.Kill(f.GPU)
		if len(in.onCrash) == 0 {
			eng.Interrupt(&CrashError{GPU: f.GPU, At: now + in.Base})
			return
		}
		for _, fn := range in.onCrash {
			fn(p, f)
		}
	case Stall:
		if !in.view.Alive(f.GPU) {
			return
		}
		dev := in.m.GPUs[f.GPU]
		eng.GoDaemon(fmt.Sprintf("fault/stall-gpu%d", f.GPU), func(sp *sim.Proc) {
			start := sp.Now()
			dev.Seize(sp, f.Duration)
			in.span(f.GPU, fmt.Sprintf("stall gpu%d", f.GPU), start, sp.Now())
		})
	case LinkDown:
		li := in.m.Fabric.Topo.NVLinkIndex(f.GPU, f.Peer)
		eng.GoDaemon(fmt.Sprintf("fault/linkdown-gpu%d-gpu%d", f.GPU, f.Peer), func(sp *sim.Proc) {
			start := sp.Now()
			in.m.Fabric.SeizeLink(sp, li, f.Duration)
			in.span(f.GPU, fmt.Sprintf("linkdown gpu%d-gpu%d", f.GPU, f.Peer), start, sp.Now())
		})
	case LinkDegrade:
		li := in.m.Fabric.Topo.NVLinkIndex(f.GPU, f.Peer)
		in.m.Fabric.SetLinkScale(li, 1/f.Factor)
		eng.GoDaemon(fmt.Sprintf("fault/degrade-gpu%d-gpu%d", f.GPU, f.Peer), func(sp *sim.Proc) {
			start := sp.Now()
			sp.Sleep(f.Duration)
			in.m.Fabric.SetLinkScale(li, 1)
			in.span(f.GPU, fmt.Sprintf("degrade gpu%d-gpu%d x%g", f.GPU, f.Peer, f.Factor), start, sp.Now())
		})
	}
}

// faultLane is the trace lane faults render on (distinct from kernel and
// transfer lanes).
const faultLane = 20

func (in *Injector) instant(gpu int, name string) {
	tr := in.m.GPUs[gpu].Tracer
	// Process-scoped: a fault marker concerns the whole GPU, not one lane.
	tr.Instant(name, "fault", gpu, faultLane, float64(in.m.Eng.Now()), "p", nil)
}

func (in *Injector) span(gpu int, name string, start, end sim.Time) {
	tr := in.m.GPUs[gpu].Tracer
	tr.Complete(name, "fault", gpu, faultLane, float64(start), float64(end), nil)
}
