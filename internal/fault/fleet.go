package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FleetFault is one scheduled fault in a replicated-fleet serving run. It is
// either a whole-fleet crash (the entire replica drains and its traffic
// re-routes) or an ordinary GPU/link fault scoped to one fleet's machine.
type FleetFault struct {
	// Fleet is the target fleet id.
	Fleet int
	// Whole marks a whole-fleet crash: Fault carries only Kind (Crash) and At.
	Whole bool
	// Fault is the scoped fault, with GPU ids local to the fleet's machine.
	Fault Fault
}

// String renders the fault in the grammar accepted by ParseFleetSpec.
func (f FleetFault) String() string {
	if f.Whole {
		return fmt.Sprintf("crash@fleet%d:t=%g", f.Fleet, float64(f.Fault.At))
	}
	// Re-scope the inner fault's rendering under the fleet prefix.
	inner := f.Fault.String()
	return strings.Replace(inner, "@gpu", fmt.Sprintf("@fleet%d/gpu", f.Fleet), 1)
}

// ParseFleetSpec parses a comma-separated fleet-scoped fault schedule, e.g.
//
//	crash@fleet1:t=0.2                       whole-fleet crash
//	stall@fleet0/gpu1:t=0.1+50ms             straggler inside fleet 0
//	linkdown@fleet2/gpu0-gpu1:t=0.3+10ms     link outage inside fleet 2
//
// Grammar per entry: kind@fleetF[/target]:clauses, where a bare fleetF target
// is only valid for crash (a whole-fleet death) and a /target suffix scopes
// the ordinary ParseSpec grammar to that fleet's machine. nFleet bounds the
// valid fleet ids and gpusPer the per-fleet GPU ids.
func ParseFleetSpec(spec string, nFleet, gpusPer int) ([]FleetFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []FleetFault
	for _, entry := range strings.Split(spec, ",") {
		f, err := parseFleetEntry(strings.TrimSpace(entry), nFleet, gpusPer)
		if err != nil {
			return nil, fmt.Errorf("fault: bad fleet entry %q: %w", entry, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseFleetEntry(s string, nFleet, gpusPer int) (FleetFault, error) {
	var ff FleetFault
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return ff, fmt.Errorf("missing '@fleetF' target")
	}
	if !strings.HasPrefix(rest, "fleet") {
		return ff, fmt.Errorf("target must start with fleetF, got %q", rest)
	}
	rest = rest[len("fleet"):]
	// Fleet id runs up to the first '/' (scoped) or ':' (whole-fleet).
	idEnd := strings.IndexAny(rest, "/:")
	if idEnd < 0 {
		return ff, fmt.Errorf("missing ':t=' clause")
	}
	id, err := strconv.Atoi(rest[:idEnd])
	if err != nil || id < 0 {
		return ff, fmt.Errorf("bad fleet id %q", rest[:idEnd])
	}
	if nFleet > 0 && id >= nFleet {
		return ff, fmt.Errorf("fleet%d out of range (router has %d fleets)", id, nFleet)
	}
	ff.Fleet = id
	if rest[idEnd] == ':' {
		// Whole-fleet fault: only crash makes sense (a fleet has no single
		// link to down or thread pool to stall).
		if kind != "crash" {
			return ff, fmt.Errorf("whole-fleet faults must be crash; scope %s to a GPU with fleet%d/gpuN", kind, id)
		}
		ff.Whole = true
		inner, err := parseEntry("crash@gpu0"+rest[idEnd:], 1)
		if err != nil {
			return ff, err
		}
		inner.GPU = 0
		ff.Fault = inner
		return ff, nil
	}
	// Scoped fault: everything after "fleetF/" is the ordinary grammar.
	inner, err := parseEntry(kind+"@"+rest[idEnd+1:], gpusPer)
	if err != nil {
		return ff, err
	}
	ff.Fault = inner
	return ff, nil
}

// SortFleet orders a fleet schedule by injection time (stable).
func SortFleet(faults []FleetFault) {
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].Fault.At < faults[j].Fault.At })
}

// SplitFleet separates a schedule into the whole-fleet crashes (handled by
// the router) and the per-fleet scoped schedules (handed to each fleet's own
// injector). nFleet sizes the per-fleet slice.
func SplitFleet(faults []FleetFault, nFleet int) (whole []FleetFault, scoped [][]Fault) {
	scoped = make([][]Fault, nFleet)
	for _, f := range faults {
		if f.Whole {
			whole = append(whole, f)
			continue
		}
		scoped[f.Fleet] = append(scoped[f.Fleet], f.Fault)
	}
	SortFleet(whole)
	return whole, scoped
}
